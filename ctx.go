package cedar

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/perfect"
)

// interruptEvery is how many kernel events pass between context checks
// in a ctx-aware run: frequent enough that cancellation lands within
// microseconds of wall-clock, rare enough to be invisible in the event
// loop's profile.
const interruptEvery = 1024

// SimulateRunCtx is SimulateRunErr with cooperative cancellation: the
// kernel checks ctx between events (every few hundred dispatches), and
// a canceled or expired context stops the run with an error matching
// both sim.ErrCanceled and ctx.Err() (errors.Is). A context that never
// fires cannot perturb the simulation — the check runs between events,
// never inside one — so results remain byte-identical to
// SimulateRunErr's. This is the entry point long-running services use
// to enforce per-job deadlines on simulations that only know virtual
// time.
func SimulateRunCtx(ctx context.Context, app perfect.App, cfg arch.Config, opts Options) (*Run, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("cedar: not starting %s on %s: %w", app.Name, cfg.Name, err)
	}
	opts.cancelFrom = ctx
	return SimulateRunErr(app, cfg, opts)
}

// SimulateCtx is SimulateRunCtx returning just the analysis result.
func SimulateCtx(ctx context.Context, app perfect.App, cfg arch.Config, opts Options) (*core.Result, error) {
	run, err := SimulateRunCtx(ctx, app, cfg, opts)
	if run == nil {
		return nil, err
	}
	return run.Result, err
}

// SweepConfigsCtx is SweepConfigs with cooperative cancellation
// threaded through the worker pool and into every simulation kernel:
// once ctx is done no further configuration starts, running
// simulations stop at their next context check, and the first error
// is returned. A completed sweep is byte-identical to SweepConfigs'.
func SweepConfigsCtx(ctx context.Context, app perfect.App, cfgs []arch.Config, opts Options) (*core.Sweep, error) {
	type outT struct {
		res *core.Result
		err error
	}
	results, err := engine.MapCtx(ctx, opts.Parallel, cfgs,
		func(ctx context.Context, _ int, cfg arch.Config) outT {
			res, rerr := SimulateCtx(ctx, app, cfg, opts)
			return outT{res, rerr}
		})
	if err != nil {
		return nil, err
	}
	for i, o := range results {
		if o.err != nil {
			return nil, fmt.Errorf("cedar: sweep %s on %s: %w", app.Name, cfgs[i].Name, o.err)
		}
	}
	s := &core.Sweep{App: app.Name, Results: map[int]*core.Result{}}
	for i, cfg := range cfgs {
		s.Results[cfg.CEs()] = results[i].res
	}
	normalize(s)
	return s, nil
}

// SweepCtx is Sweep with cooperative cancellation (the paper's five
// configurations through SweepConfigsCtx).
func SweepCtx(ctx context.Context, app perfect.App, opts Options) (*core.Sweep, error) {
	return SweepConfigsCtx(ctx, app, arch.PaperConfigs(), opts)
}
