// Command cedarbench runs the declarative scenario suite and gates it
// against the committed historical capture.
//
// A scenario directory (testdata/scenarios/ in this repo) holds one
// .scenario file per experiment — app, machine configuration, weak
// scale, fault plan, seed, cycle budget, and the metrics to extract
// (see internal/scenario for the format). cedarbench executes every
// scenario through the simulation facade's worker pool, writes the
// canonical BENCH_scenarios.json capture, and — when -old names the
// committed previous capture — diffs the fresh records against it with
// per-metric gates: deterministic model outputs (completion time, the
// Table-2 overhead decomposition, kernel event counts) must match
// exactly, wall-clock throughput within its tolerance.
//
//	cedarbench -dir testdata/scenarios -old BENCH_scenarios.json
//
// reads the baseline first and then overwrites it with the fresh
// capture (the CI scenarios job uploads that file as an artifact), so
// updating the committed baseline after an intentional model change is
// just committing the rewritten file. -out redirects the fresh capture
// elsewhere; -out '' skips writing.
//
// -run restricts the suite to matching scenario names. A subset run
// gates against the baseline's matching records only, and writes no
// capture unless -out is given explicitly — a partial capture must
// never silently replace the committed full baseline.
//
// Because the default metric set is fully deterministic, running the
// suite twice from the same tree produces byte-identical captures —
// the property the gate's exact mode relies on. -wallclock adds the
// nondeterministic events/sec measurement for local trend-watching;
// never commit a capture produced with it.
//
// Exit status: 0 when every gated record passes, 1 on any gate miss
// (drifted exact value, throughput regression, record missing from the
// fresh run, empty intersection), 2 on bad invocation or a scenario
// that fails to parse or run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"regexp"

	"repro/internal/scenario"
)

func main() {
	dir := flag.String("dir", "testdata/scenarios", "scenario directory (*.scenario files)")
	out := flag.String("out", "BENCH_scenarios.json", "write the fresh capture here ('' = don't write)")
	oldPath := flag.String("old", "", "baseline capture to gate against ('' = run without gating)")
	parallel := flag.Int("parallel", 0, "scenario worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	wallclock := flag.Bool("wallclock", false, "also record wall-clock events/sec (nondeterministic; never commit such a capture)")
	run := flag.String("run", "", "only run scenarios whose name matches this regexp")
	list := flag.Bool("list", false, "list the scenarios and their metric sets, run nothing")
	flag.Parse()
	outSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})
	if *run != "" && !outSet {
		// A subset capture silently replacing the committed full
		// baseline is a footgun; write one only on an explicit -out.
		*out = ""
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cedarbench: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "cedarbench: -parallel %d must be >= 0\n", *parallel)
		os.Exit(2)
	}

	scs, err := scenario.LoadDir(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarbench: %v\n", err)
		os.Exit(2)
	}
	if *run != "" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cedarbench: -run: %v\n", err)
			os.Exit(2)
		}
		kept := scs[:0]
		for _, sc := range scs {
			if re.MatchString(sc.Name) {
				kept = append(kept, sc)
			}
		}
		scs = kept
		if len(scs) == 0 {
			fmt.Fprintf(os.Stderr, "cedarbench: -run %q matches no scenario\n", *run)
			os.Exit(2)
		}
	}
	if *list {
		for _, sc := range scs {
			plan := sc.Plan.String()
			if plan == "" {
				plan = "-"
			}
			fmt.Printf("%-32s app=%s config=%s scale=%d steps=%d plan=%s\n",
				sc.Name, sc.AppName(), sc.Config, sc.ScaleFactor(), sc.Steps, plan)
		}
		return
	}

	// Read the baseline before writing anything: -old and -out may be
	// the same committed file.
	var oldRecs []scenario.Record
	if *oldPath != "" {
		oldRecs, err = scenario.LoadCapture(*oldPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cedarbench: %v\n", err)
			os.Exit(2)
		}
		if *run != "" {
			// Gate a subset run against the baseline's matching slice
			// only — the unselected scenarios didn't run, so their
			// records are absent by construction, not regressions.
			selected := map[string]bool{}
			for _, sc := range scs {
				selected[sc.Name] = true
			}
			kept := oldRecs[:0]
			for _, r := range oldRecs {
				if selected[r.Scenario] {
					kept = append(kept, r)
				}
			}
			oldRecs = kept
		}
	}

	recs, err := scenario.RunAll(context.Background(), scs, *parallel, *wallclock)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarbench: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("ran %d scenario(s), %d record(s)\n", len(scs), len(recs))

	if *out != "" {
		if err := scenario.WriteCaptureFile(*out, recs); err != nil {
			fmt.Fprintf(os.Stderr, "cedarbench: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *oldPath != "" {
		rep, err := scenario.Diff(oldRecs, recs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cedarbench: %v\n", err)
			os.Exit(2)
		}
		rep.WriteTable(os.Stdout, "old", "new")
		if err := rep.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "cedarbench: %v against %s\n", err, *oldPath)
			os.Exit(1)
		}
		fmt.Printf("all %d gated record(s) match %s\n", rep.Common, *oldPath)
	}
}
