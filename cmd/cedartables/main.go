// Command cedartables regenerates every table and figure of the
// paper's evaluation from fresh simulation runs:
//
//	Table 1    — completion times, speedups, average concurrency
//	Figure 3   — completion-time breakdown (user/system/interrupt/spin)
//	Figures 5-9 — user-time breakdown per task
//	Table 2    — detailed OS overhead characterization (32 processors)
//	Table 3    — average parallel loop concurrency
//	Table 4    — global memory and network contention overhead
//
// With -paper, each table is followed by the paper's published values
// for side-by-side comparison.
//
// Usage:
//
//	cedartables [-app FLO52,...] [-steps N] [-paper] [-parallel N]
//
// The application × configuration grid is simulated through the
// deterministic parallel engine: -parallel bounds the worker count
// (default GOMAXPROCS; 1 forces sequential). Every simulation owns its
// kernel and seed and tables are assembled in input order, so the
// output — including -csv, which CI diffs byte-for-byte against the
// golden snapshot — is identical at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/metricreg"
	"repro/internal/perfect"
)

// writeRegistrySnapshots simulates each app on the 32-CE configuration
// and writes its metric registry snapshot (ct, concurrency, the OS
// breakdown distribution, per-CE accounts) as <app>_32proc.metrics.json
// under dir.
func writeRegistrySnapshots(dir string, apps []perfect.App, opts cedar.Options) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "cedartables: %v\n", err)
		os.Exit(1)
	}
	for _, app := range apps {
		run := cedar.SimulateRun(app, arch.Cedar32, opts)
		path := filepath.Join(dir, strings.ToLower(app.Name)+"_32proc.metrics.json")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cedartables: %v\n", err)
			os.Exit(1)
		}
		werr := metricreg.WriteJSON(f, run.Metrics().Snapshot())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "cedartables: writing %s: %v\n", path, werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cedartables: wrote %s\n", path)
	}
}

func main() {
	appsFlag := flag.String("app", "", "comma-separated app names (default: all five)")
	steps := flag.Int("steps", 0, "override timestep count (0 = app default)")
	paper := flag.Bool("paper", false, "print the paper's published values after each table")
	csv := flag.Bool("csv", false, "emit machine-readable CSV instead of formatted tables")
	metricsDir := flag.String("metrics", "", "write each app's 32-CE run metric registry snapshot as JSON into this directory")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = sequential; output is identical at any setting)")
	flag.Parse()

	apps := perfect.Apps()
	if *appsFlag != "" {
		apps = nil
		for _, name := range strings.Split(*appsFlag, ",") {
			a, ok := perfect.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "cedartables: unknown application %q\n", name)
				os.Exit(2)
			}
			apps = append(apps, a)
		}
	}

	opts := cedar.Options{Steps: *steps, Parallel: *parallel}
	names := make([]string, len(apps))
	for i, app := range apps {
		names[i] = app.Name
	}
	fmt.Fprintf(os.Stderr, "simulating %s across configurations...\n", strings.Join(names, ", "))
	sweeps := cedar.Sweeps(apps, opts)

	if *metricsDir != "" {
		// Re-run each app's 32-CE configuration with the same seed — the
		// kernel is deterministic, so this reproduces the sweep's run —
		// and export the full metric registry snapshot: the same source
		// of truth the tables fold (registry files go to their own
		// directory; table output above stays byte-identical).
		writeRegistrySnapshots(*metricsDir, apps, opts)
	}

	if *csv {
		var at32 []*core.Result
		for _, s := range sweeps {
			if r, ok := s.Results[32]; ok {
				at32 = append(at32, r)
			}
		}
		fmt.Print(core.Table1CSV(sweeps))
		fmt.Print(core.Figure3CSV(sweeps))
		fmt.Print(core.UserTimeCSV(sweeps))
		fmt.Print(core.Table2CSV(at32))
		fmt.Print(core.Table3CSV(sweeps))
		fmt.Print(core.Table4CSV(sweeps))
		return
	}

	fmt.Println(core.FormatTable1(sweeps))
	if *paper {
		printPaperTable1(sweeps)
	}
	fmt.Println()

	for _, s := range sweeps {
		fmt.Println(core.FormatFigure3(s))
	}
	for _, s := range sweeps {
		fmt.Println(core.FormatUserTime(s))
	}

	var at32 []*core.Result
	for _, s := range sweeps {
		if r, ok := s.Results[32]; ok {
			at32 = append(at32, r)
		}
	}
	if len(at32) > 0 {
		fmt.Println(core.FormatTable2(at32))
		if *paper {
			printPaperTable2(at32)
		}
		fmt.Println()
	}

	fmt.Println(core.FormatTable3(sweeps))
	if *paper {
		printPaperTable3(sweeps)
	}
	fmt.Println()
	fmt.Println(core.FormatTable4(sweeps))
	if *paper {
		printPaperTable4(sweeps)
	}
}

func printPaperTable1(sweeps []*core.Sweep) {
	fmt.Println("  [paper] Table 1:")
	for _, s := range sweeps {
		row, ok := perfect.PaperTable1[s.App]
		if !ok {
			continue
		}
		fmt.Printf("  %-8s CT(s):", s.App)
		for _, p := range []int{1, 4, 8, 16, 32} {
			fmt.Printf(" %7.0f", row.CT[p])
		}
		fmt.Printf("\n  %-8s Speedup:", "")
		for _, p := range []int{4, 8, 16, 32} {
			fmt.Printf(" %7.2f", row.Speedup[p])
		}
		fmt.Printf("\n  %-8s Concurr:", "")
		for _, p := range []int{4, 8, 16, 32} {
			fmt.Printf(" %7.2f", row.Concurr[p])
		}
		fmt.Println()
	}
}

func printPaperTable2(results []*core.Result) {
	fmt.Println("  [paper] Table 2 (s, %):")
	for _, r := range results {
		rows, ok := perfect.PaperTable2[r.App]
		if !ok {
			continue
		}
		fmt.Printf("  %-8s", r.App)
		for _, label := range []string{"cpi", "ctx", "pg flt (c)", "pg flt (s)",
			"Cr Sect (clus)", "Cr Sect (glbl)", "clus syscall", "glbl syscall", "ast"} {
			row := rows[label]
			fmt.Printf(" %s=%.2f/%.2f%%", label, row.Seconds, row.Percent)
		}
		fmt.Println()
	}
}

func printPaperTable3(sweeps []*core.Sweep) {
	fmt.Println("  [paper] Table 3 (per task/cluster):")
	for _, s := range sweeps {
		rows, ok := perfect.PaperTable3[s.App]
		if !ok {
			continue
		}
		fmt.Printf("  %-8s", s.App)
		for _, p := range []int{4, 8, 16, 32} {
			fmt.Printf(" %dp=%v", p, rows[p])
		}
		fmt.Println()
	}
}

func printPaperTable4(sweeps []*core.Sweep) {
	fmt.Println("  [paper] Table 4 Ov_cont (%):")
	for _, s := range sweeps {
		row, ok := perfect.PaperTable4[s.App]
		if !ok {
			continue
		}
		fmt.Printf("  %-8s", s.App)
		for _, p := range []int{4, 8, 16, 32} {
			fmt.Printf(" %dp=%.1f", p, row.OvCont[p])
		}
		fmt.Println()
	}
}
