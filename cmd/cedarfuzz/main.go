// Command cedarfuzz is the fault-scenario regression and fuzzing
// driver: it replays the checked-in corpus (every entry must meet its
// declared expectation, twice, with byte-identical statfx output) and
// then sweeps randomized fail-stop schedules across the page-fault
// windows of a healthy run — the schedule family that exposed the
// fail-stop page-fault deadlock. Any scenario that errors is
// delta-debugged down to a minimal reproduction and printed as a
// ready-to-paste corpus line.
//
// Usage:
//
//	cedarfuzz [-corpus testdata/faultcorpus] [-quick] [-n 25]
//	          [-seed S] [-app FLO52] [-config 8proc] [-steps 1]
//	          [-shrink 60] [-parallel N]
//	cedarfuzz -apps [-scenarios testdata/scenarios] [-quick] [-n 25]
//	          [-seed S] [-config 8proc] [-shrink 60] [-promote dir]
//
// Without -quick only the corpus is replayed (cheap, deterministic —
// the CI regression gate). With -quick the randomized sweep runs too;
// its seed defaults to the wall clock so every run covers fresh
// schedules, and is always printed so a failure can be reproduced by
// re-running with -seed. Exit status: 0 all scenarios behaved, 1
// otherwise, 2 bad invocation.
//
// -apps switches from fault schedules to workload space. The corpus
// leg runs every scenario in -scenarios that declares a pathology:
// class and verifies the run still exhibits it (the detectors in
// cedar.Run.Pathologies — hot-spot modules, barrier convoys, page
// storms). The -quick leg samples the parametric workload generator
// (internal/perfect/gen) with seeds derived from the logged master
// seed, runs every sample, and ddmin-shrinks each pathological one to
// a minimal reproduction, printed as a ready-to-commit inline-workload
// scenario — or written into -promote's directory. Sweep findings are
// the point, not failures; only samples that error count against the
// exit status.
//
// Corpus replays and sweep scenarios are independent simulations and
// run through the deterministic parallel engine; -parallel bounds the
// worker count (default GOMAXPROCS, 1 forces sequential). Results are
// reported in corpus/schedule order, so the gate's output and exit
// status are identical at any setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/faults/replay"
	"repro/internal/perfect"
)

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cedarfuzz: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	corpusDir := flag.String("corpus", "testdata/faultcorpus", "regression corpus directory (*.scenario files)")
	quick := flag.Bool("quick", false, "also run the bounded randomized sweep (fault schedules, or generator samples with -apps)")
	n := flag.Int("n", 25, "sweep: number of randomized scenarios (or generator samples)")
	seed := flag.Int64("seed", 0, "sweep: RNG seed (0 = wall clock; the used seed is always printed)")
	appName := flag.String("app", "FLO52", "sweep: application")
	configName := flag.String("config", "8proc", "sweep: machine configuration")
	steps := flag.Int("steps", 1, "sweep: timestep count")
	shrinkRuns := flag.Int("shrink", 60, "max replays spent shrinking a failing scenario (or pathological workload)")
	parallel := flag.Int("parallel", 0, "concurrent replays (0 = GOMAXPROCS, 1 = sequential; output is identical at any setting)")
	apps := flag.Bool("apps", false, "app-space mode: gate the pathology scenarios, then (with -quick) sweep the workload generator")
	scenariosDir := flag.String("scenarios", "testdata/scenarios", "app-space mode: scenario directory with pathology: declarations")
	promote := flag.String("promote", "", "app-space mode: write each shrunk pathological workload into this directory as a .scenario file")
	flag.Parse()
	if flag.NArg() > 0 {
		fatalf(2, "unexpected arguments %v", flag.Args())
	}

	failures := 0
	if *apps {
		failures += appsCorpus(*scenariosDir, *parallel)
		if *quick {
			failures += appsSweep(*configName, *seed, *n, *shrinkRuns, *parallel, *promote)
		}
	} else {
		failures += replayCorpus(*corpusDir, *parallel)
		if *quick {
			failures += sweep(*appName, *configName, *steps, *seed, *n, *shrinkRuns, *parallel)
		}
	}
	if failures > 0 {
		fatalf(1, "%d scenario(s) misbehaved", failures)
	}
}

// replayCorpus replays every checked-in scenario twice: the outcome
// must match the entry's expectation and the two runs must produce
// byte-identical statfx output (the record/replay contract). Entries
// run concurrently through the engine pool; results print in corpus
// order.
func replayCorpus(dir string, parallel int) (failures int) {
	entries, err := replay.LoadCorpus(dir)
	if err != nil {
		fatalf(2, "%v", err)
	}
	if len(entries) == 0 {
		fmt.Printf("corpus %s: empty\n", dir)
		return 0
	}
	for _, cr := range cedar.CheckCorpus(entries, parallel) {
		if cr.Err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "cedarfuzz: %s:%d: %v\n", cr.Entry.File, cr.Entry.Line, cr.Err)
			continue
		}
		fmt.Printf("corpus %s:%d: %s ok\n", cr.Entry.File, cr.Entry.Line, cr.Entry.Scenario.Expectation())
	}
	fmt.Printf("corpus %s: %d scenario(s), %d failure(s)\n", dir, len(entries), failures)
	return failures
}

// sweep fuzzes fail-stop schedules across the page-fault windows of a
// healthy run. Failing scenarios are shrunk and printed as corpus
// lines. Scenarios (including any shrinking, which is per-scenario
// deterministic) run concurrently; results print in schedule order.
func sweep(appName, configName string, steps int, seed int64, n, shrinkRuns, parallel int) (failures int) {
	app, ok := perfect.ByName(appName)
	if !ok {
		fatalf(2, "unknown application %q", appName)
	}
	cfg, ok := arch.FamilyByName(configName)
	if !ok {
		fatalf(2, "unknown configuration %q", configName)
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	fmt.Printf("sweep: %s on %s, %d scenario(s), seed %d (reproduce with -seed %d)\n",
		appName, cfg.Name, n, seed, seed)

	opts := cedar.Options{Steps: steps}
	windows, err := cedar.FaultWindows(app, cfg, opts)
	if err != nil {
		fatalf(1, "healthy window-discovery run failed: %v", err)
	}
	if len(windows) == 0 {
		fatalf(1, "no page-fault windows on the healthy run; nothing to aim at")
	}
	fmt.Printf("sweep: %d page-fault window(s), first [%d, %d]\n",
		len(windows), int64(windows[0].Start), int64(windows[0].End))

	// CE 0 leads the main task; killing it deadlocks the machine by
	// design (the helpers starve), which would drown real hand-off bugs
	// in expected failures. Kill any other CE.
	var ces []int
	for ce := 1; ce < cfg.CEs(); ce++ {
		ces = append(ces, ce)
	}
	base := cedar.RecordScenario(app, cfg, opts)
	scenarios := replay.SweepTimes(base, windows, ces, cfg.GMModules, seed, n)
	for _, sc := range scenarios {
		if err := sc.Plan.Validate(cfg); err != nil {
			fatalf(1, "sweep generated an invalid plan: %v", err)
		}
	}
	type outcome struct {
		sc     replay.Scenario
		err    error
		shrunk replay.Scenario
		runs   int
		serr   error
	}
	results := engine.Map(parallel, scenarios, func(_ int, sc replay.Scenario) outcome {
		o := outcome{sc: sc}
		if _, o.err = cedar.ReplayErr(sc); o.err != nil {
			o.shrunk, o.runs, o.serr = cedar.ShrinkErr(sc, shrinkRuns)
		}
		return o
	})
	for i, o := range results {
		if o.err == nil {
			fmt.Printf("sweep %3d/%d: ok  %s\n", i+1, n, o.sc.Plan)
			continue
		}
		failures++
		fmt.Fprintf(os.Stderr, "cedarfuzz: sweep %d/%d FAILED (%v)\n  scenario: %s\n",
			i+1, n, o.err, o.sc)
		if o.serr != nil {
			fmt.Fprintf(os.Stderr, "  shrink failed: %v\n", o.serr)
			continue
		}
		fmt.Fprintf(os.Stderr, "  shrunk (%d replays): %s\n  add it to the corpus with a comment naming the bug\n",
			o.runs, o.shrunk)
	}
	return failures
}
