package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/perfect"
	"repro/internal/perfect/gen"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// appsCorpus is the app-space regression gate: every scenario in the
// directory that declares a pathology: class is run and its run must
// actually exhibit that pathology (cedar.Run.Pathologies). A promoted
// pathological workload that quietly heals — a model change, a
// detector drift — fails the gate instead of rotting in the corpus.
// Scenarios run concurrently; results print in directory order.
func appsCorpus(dir string, parallel int) (failures int) {
	scs, err := scenario.LoadDir(dir)
	if err != nil {
		fatalf(2, "%v", err)
	}
	var gated []*scenario.Scenario
	for _, sc := range scs {
		if sc.Pathology != "" {
			gated = append(gated, sc)
		}
	}
	if len(gated) == 0 {
		fmt.Printf("apps corpus %s: no pathology declarations\n", dir)
		return 0
	}
	errs := engine.Map(parallel, gated, func(_ int, sc *scenario.Scenario) error {
		got, err := detectScenario(sc)
		if err != nil {
			return err
		}
		for _, p := range got {
			if p == sc.Pathology {
				return nil
			}
		}
		return fmt.Errorf("declared pathology %q not detected (run shows %v)", sc.Pathology, got)
	})
	for i, err := range errs {
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "cedarfuzz: apps corpus %s: %v\n", gated[i].Name, err)
			continue
		}
		fmt.Printf("apps corpus %s: %s ok\n", gated[i].Name, gated[i].Pathology)
	}
	fmt.Printf("apps corpus %s: %d scenario(s), %d failure(s)\n", dir, len(gated), failures)
	return failures
}

// detectScenario runs one pathology scenario and returns the detected
// classes.
func detectScenario(sc *scenario.Scenario) ([]string, error) {
	app, cfg, err := sc.Resolve()
	if err != nil {
		return nil, err
	}
	run, err := cedar.SimulateRunErr(app, cfg, cedar.Options{
		Steps: sc.Steps, Seed: sc.Seed, Faults: sc.Plan, MaxCycles: sim.Time(sc.MaxCycles),
	})
	if err != nil {
		return nil, err
	}
	return run.Pathologies(), nil
}

// appsOutcome is one generator sample's verdict.
type appsOutcome struct {
	spec   gen.Spec
	paths  []string    // pathologies of the raw sample
	shrunk perfect.App // minimized reproduction (set when paths is non-empty)
	runs   int         // keep invocations the shrink spent
	err    error
}

// appsSweep samples the generator space for pathological workloads:
// every sample that trips a detector is ddmin-shrunk (phases, then
// knobs) while its first pathology keeps reproducing, and printed as a
// ready-to-promote inline-workload scenario. Sample seeds derive from
// the master seed, so a finding reproduces from the logged -seed
// alone. Findings are the sweep's purpose, not failures — only a
// sample that errors counts against the exit status.
func appsSweep(configName string, seed int64, n, shrinkRuns, parallel int, promoteDir string) (failures int) {
	cfg, ok := arch.FamilyByName(configName)
	if !ok {
		fatalf(2, "unknown configuration %q", configName)
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	fmt.Printf("apps sweep: %d sample(s) on %s, seed %d (reproduce with -apps -quick -seed %d)\n",
		n, cfg.Name, seed, seed)

	specs := make([]gen.Spec, n)
	for i := range specs {
		sp := gen.Default()
		sp.Seed = seed + int64(i)
		// Alternate the sampling bias so every sweep hunts each corner:
		// odd samples aim at module hot-spots, every fourth allows full
		// work jitter (the barrier-convoy regime).
		if i%2 == 1 {
			sp.Hot = 1
		}
		if i%4 == 3 {
			sp.Jitter = 1
		}
		specs[i] = sp
	}
	results := engine.Map(parallel, specs, func(_ int, sp gen.Spec) appsOutcome {
		o := appsOutcome{spec: sp}
		app := gen.Generate(sp)
		detect := func(a perfect.App) []string {
			run, err := cedar.SimulateRunErr(a, cfg, cedar.Options{})
			if err != nil {
				return nil
			}
			return run.Pathologies()
		}
		o.paths = detect(app)
		if len(o.paths) == 0 {
			return o
		}
		target := o.paths[0]
		o.shrunk, o.runs = gen.ShrinkApp(app, func(c perfect.App) bool {
			for _, p := range detect(c) {
				if p == target {
					return true
				}
			}
			return false
		}, shrinkRuns)
		return o
	})

	found := 0
	for i, o := range results {
		if o.err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "cedarfuzz: apps sweep %d/%d (%s): %v\n", i+1, n, o.spec, o.err)
			continue
		}
		if len(o.paths) == 0 {
			continue
		}
		found++
		fmt.Printf("apps sweep %d/%d: %s -> %s (shrunk to %d phase(s) in %d run(s))\n",
			i+1, n, o.spec, strings.Join(o.paths, ","), len(o.shrunk.Phases), o.runs)
		doc := promotedScenario(o, cfg.Name, seed)
		if promoteDir != "" {
			path := filepath.Join(promoteDir, promotedName(o)+scenario.Ext)
			if err := os.WriteFile(path, doc, 0o644); err != nil {
				fatalf(1, "promoting %s: %v", path, err)
			}
			fmt.Printf("  promoted to %s\n", path)
		} else {
			fmt.Printf("%s", indent(doc, "  "))
		}
	}
	fmt.Printf("apps sweep: %d of %d sample(s) pathological\n", found, n)
	return failures
}

// promotedName is the scenario name a finding is promoted under:
// pathology class plus the sample seed that reproduces it.
func promotedName(o appsOutcome) string {
	return fmt.Sprintf("fuzz-%s-%d", o.paths[0], o.spec.Seed)
}

// promotedScenario renders a finding as a committable .scenario file:
// provenance comment, the pathology: declaration the apps corpus gate
// enforces, and the shrunk workload inline (the document IS the app —
// no registry entry, no external file).
func promotedScenario(o appsOutcome, cfgName string, masterSeed int64) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "# Found by cedarfuzz -apps -quick -seed %d (sample %s),\n", masterSeed, o.spec)
	fmt.Fprintf(&b, "# shrunk to this minimal reproduction. The pathology: line makes\n")
	fmt.Fprintf(&b, "# cedarfuzz -apps re-verify the workload still exhibits it.\n")
	fmt.Fprintf(&b, "name: %s\n", promotedName(o))
	fmt.Fprintf(&b, "config: %s\n", cfgName)
	fmt.Fprintf(&b, "scale: 1\n")
	fmt.Fprintf(&b, "pathology: %s\n", o.paths[0])
	fmt.Fprintf(&b, "workload:\n")
	b.Write(indent(perfect.PrintWorkload(o.shrunk), "  "))
	return b.Bytes()
}

// indent prefixes every non-empty line.
func indent(doc []byte, prefix string) []byte {
	var b bytes.Buffer
	for _, line := range strings.Split(strings.TrimRight(string(doc), "\n"), "\n") {
		if line == "" {
			b.WriteByte('\n')
			continue
		}
		b.WriteString(prefix)
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.Bytes()
}
