package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/perfect"
	"repro/internal/serve"
)

// runStatfx runs the selected simulation locally and prints only its
// canonical statfx accounting block — the byte-stable text a
// cedarserved job returns for the same invocation, so the two are
// directly diffable. A -metrics path still works here (written to its
// own file; drop warnings go to stderr), keeping stdout byte-stable.
func runStatfx(app perfect.App, cfg arch.Config, opts cedar.Options, faultSpec string, exp exporter) {
	if faultSpec != "" {
		plan, err := faults.Parse(faultSpec)
		if err != nil {
			usageErr("%v", err)
		}
		if err := plan.Validate(cfg); err != nil {
			usageErr("%v", err)
		}
		opts.Faults = plan
	}
	run, err := cedar.SimulateRunErr(app, cfg, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(run.StatfxText())
	exp.write(run)
}

// runRemote submits the invocation to a cedarserved instance as a
// simulate job, polls it to a terminal state, and prints the job's
// canonical statfx result — byte-identical to what -statfx prints
// locally for the same app, configuration, steps, and plan. A
// non-empty workload is the inline document or gen: spec to submit in
// place of the registry name, so the server never resolves (or caches
// under) a name it doesn't know.
func runRemote(server string, app perfect.App, workload string, cfg arch.Config, steps int, faultSpec string) {
	base := strings.TrimRight(server, "/")
	spec := serve.JobSpec{
		Type:   serve.TypeSimulate,
		Config: cfg.Name,
		Steps:  steps,
		Plan:   faultSpec,
	}
	if workload != "" {
		spec.Workload = workload
	} else {
		spec.App = app.Name
	}
	body, err := json.Marshal(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: %v\n", err)
		os.Exit(1)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: submitting to %s: %v\n", server, err)
		os.Exit(1)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		retry := resp.Header.Get("Retry-After")
		fmt.Fprintf(os.Stderr, "cedarsim: server busy (%s, retry after %ss): %s\n",
			resp.Status, retry, strings.TrimSpace(string(raw)))
		os.Exit(1)
	default:
		fmt.Fprintf(os.Stderr, "cedarsim: submit rejected (%s): %s\n",
			resp.Status, strings.TrimSpace(string(raw)))
		os.Exit(1)
	}
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(raw, &sub); err != nil || sub.ID == "" {
		fmt.Fprintf(os.Stderr, "cedarsim: bad submit response: %s\n", raw)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cedarsim: job %s %s\n", sub.ID, sub.State)

	// Poll to a terminal state (a cache hit arrives already done).
	state := sub.State
	var jobErr, jobPanic string
	for state == "queued" || state == "running" {
		time.Sleep(100 * time.Millisecond)
		jr, err := http.Get(base + "/jobs/" + sub.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cedarsim: polling job %s: %v\n", sub.ID, err)
			os.Exit(1)
		}
		var view struct {
			State string `json:"state"`
			Error string `json:"error"`
			Panic string `json:"panic"`
		}
		jerr := json.NewDecoder(jr.Body).Decode(&view)
		jr.Body.Close()
		if jerr != nil {
			fmt.Fprintf(os.Stderr, "cedarsim: polling job %s: %v\n", sub.ID, jerr)
			os.Exit(1)
		}
		state, jobErr, jobPanic = view.State, view.Error, view.Panic
	}
	if state != "done" {
		msg := jobErr
		if jobPanic != "" {
			msg = fmt.Sprintf("%s (panic: %s)", msg, jobPanic)
		}
		fmt.Fprintf(os.Stderr, "cedarsim: job %s %s: %s\n", sub.ID, state, msg)
		os.Exit(1)
	}
	rr, err := http.Get(base + "/jobs/" + sub.ID + "/result")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: fetching result: %v\n", err)
		os.Exit(1)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		payload, _ := io.ReadAll(rr.Body)
		fmt.Fprintf(os.Stderr, "cedarsim: result %s: %s\n", rr.Status, payload)
		os.Exit(1)
	}
	if _, err := io.Copy(os.Stdout, rr.Body); err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: %v\n", err)
		os.Exit(1)
	}
}
