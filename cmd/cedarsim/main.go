// Command cedarsim runs one application on one Cedar configuration
// with full instrumentation and prints the complete measurement
// report: completion time, speedup-relevant statistics, the
// completion-time breakdown, the user-time breakdown per task, the
// detailed OS overhead table, and the contention estimate (when the
// 1-processor baseline is also run).
//
// Usage:
//
//	cedarsim [-app FLO52 | -workload file.workload | -gen seed=7,hot=1]
//	         [-list-apps] [-scenario file.scenario]
//	         [-ces 32] [-steps N] [-flat] [-no-baseline]
//	         [-config 64proc] [-clusters N -ces-per-cluster N
//	          -gm-modules N -stages N -degree N] [-list-configs]
//	         [-fault ce:2@1e6,module:17@5e5]
//	         [-record-scenario corpus.scenario]
//	         [-replay 'app=FLO52 config=8proc ... plan=ce:1@76414']
//	         [-trace out.json] [-profile out.folded] [-series out.csv|out.prom]
//	         [-metrics out.prom|out.json|out.csv]
//	         [-parallel N] [-statfx] [-server http://host:8344]
//
// Independent simulations within one invocation — the measured run and
// its 1-processor baseline, the healthy/degraded pair of a -fault
// comparison, and every scenario of a -replay corpus file — execute
// through the deterministic parallel engine; -parallel bounds the
// worker count (default GOMAXPROCS, 1 forces sequential). Each
// simulation owns its kernel and seed, so the printed report is
// identical at any setting.
//
// The machine defaults to the paper configuration selected by -ces
// (1, 4, 8, 16, or 32 — the closed list the paper measures). -config
// selects any named family member (see -list-configs), and the
// parametric flags build a custom machine validated by
// arch.Config.Validate, whose error names the violated topology
// constraint.
//
// With -fault, the run is repeated healthy and degraded and a
// baseline-vs-degraded overhead-decomposition delta table is printed.
// -record-scenario appends the fault run as a canonical replay
// scenario line (app, config, steps, resolved seed, plan, observed
// outcome) to a corpus file; -replay takes such a line — or a path to
// a .scenario corpus file — and re-runs it bit-identically, verifying
// any expect= declaration. The simulation is deterministic in virtual
// time, so a recorded line is a complete, stable reproduction of the
// run it came from.
//
// The application is a workload source: -app takes a registry name
// (see -list-apps) or a single-line gen: spec, -workload runs a
// .workload document file, and -gen samples the parametric generator
// (internal/perfect/gen). -scenario runs one .scenario file and prints
// its canonical record capture — byte-diffable against cedarbench and
// a cedarserved bench job of the same document.
//
// -statfx prints only the run's canonical statfx accounting block
// (Run.StatfxText). -server submits the same invocation to a running
// cedarserved instance (see cmd/cedarserved) and prints the job's
// result — byte-identical to the -statfx output for the same app,
// configuration, steps, and fault plan. Generated and document
// workloads travel to the server inline (the canonical document text),
// so their results cache under the full workload identity.
//
// The observability flags arm the obs layer: -trace writes a
// Chrome/Perfetto trace-event file (load it at ui.perfetto.dev),
// -profile writes folded stacks weighted by virtual cycles (feed to
// flamegraph.pl or inferno), and -series writes the sampled time
// series as CSV, or as Prometheus text exposition when the path ends
// in .prom. With -fault they export the degraded run. -metrics writes
// the run's full metric registry snapshot — the same source of truth
// StatfxText and cedarserved's /metrics render — in the format the
// extension selects (.prom, .json, or CSV); unlike the other three it
// works without arming the obs layer. Whenever a bounded
// instrumentation buffer overflowed, a one-line warning on stderr
// reports the total dropped-event count.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/faults/replay"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perfect"
	"repro/internal/profio"
	"repro/internal/scenario"
	"repro/internal/sim"

	// Link the generator so -gen and gen: app sources resolve.
	_ "repro/internal/perfect/gen"
)

// supportedCEs lists the CE counts of the paper configurations, for
// error messages.
func supportedCEs() string {
	var counts []int
	for _, c := range arch.PaperConfigs() {
		counts = append(counts, c.CEs())
	}
	sort.Ints(counts)
	parts := make([]string, len(counts))
	for i, n := range counts {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, ", ")
}

// printConfigs lists every named member of the machine family with its
// topology (the -list-configs output).
func printConfigs() {
	fmt.Printf("%-10s %5s %9s %5s %8s %7s %7s\n",
		"name", "CEs", "clusters", "CE/cl", "GM mods", "stages", "degree")
	for _, c := range arch.Families() {
		note := ""
		if c.Unclustered {
			note = "  (unclustered)"
		}
		fmt.Printf("%-10s %5d %9d %5d %8d %7d %7d%s\n",
			c.Name, c.CEs(), c.Clusters, c.CEsPerCluster,
			c.GMModules, c.NetStages, c.SwitchDegree, note)
	}
}

// printApps lists the built-in application registry — the names the
// resolver accepts as bare -app values (the -list-apps output).
func printApps() {
	fmt.Printf("%-12s %6s %7s %11s %12s\n",
		"name", "steps", "phases", "iterations", "data words")
	for _, a := range perfect.Registry() {
		fmt.Printf("%-12s %6d %7d %11d %12d\n",
			a.Name, a.Steps, len(a.Phases), a.TotalIterations(), a.DataWords)
	}
}

// runScenario executes one .scenario file and prints its canonical
// record capture — byte-diffable against the same scenario's records
// in a cedarbench capture or a cedarserved bench job result.
func runScenario(path string, parallel int) {
	sc, err := scenario.LoadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: %v\n", err)
		os.Exit(2)
	}
	recs, err := scenario.RunAll(context.Background(), []*scenario.Scenario{sc}, parallel, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: %v\n", err)
		os.Exit(1)
	}
	out, err := scenario.EncodeCapture(recs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(out)
}

// usageErr prints the message plus flag usage and exits with status 2
// (bad invocation).
func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cedarsim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	appName := flag.String("app", "FLO52", "application: a registry name (see -list-apps) or a gen: spec")
	workloadPath := flag.String("workload", "", "run a .workload document file instead of -app")
	genSpec := flag.String("gen", "", "generate the app from a gen: spec, e.g. seed=7,hot=1 (see internal/perfect/gen)")
	listApps := flag.Bool("list-apps", false, "print the built-in application registry and exit")
	scenarioPath := flag.String("scenario", "", "run one .scenario file and print its canonical record capture")
	ces := flag.Int("ces", 32, "processor count: 1, 4, 8, 16, or 32")
	configName := flag.String("config", "", "named machine family member (see -list-configs)")
	clusters := flag.Int("clusters", 0, "custom machine: cluster count")
	cesPer := flag.Int("ces-per-cluster", 0, "custom machine: CEs per cluster")
	gmModules := flag.Int("gm-modules", 0, "custom machine: global memory modules (default 32)")
	stages := flag.Int("stages", 0, "custom machine: network stages (default 2)")
	degree := flag.Int("degree", 0, "custom machine: crossbar switch degree (default 8)")
	listConfigs := flag.Bool("list-configs", false, "print all named machine configurations and exit")
	steps := flag.Int("steps", 0, "override timestep count (0 = app default)")
	flat := flag.Bool("flat", false, "run the unclustered 32-processor machine (Section 6 discussion)")
	noBase := flag.Bool("no-baseline", false, "skip the 1-processor baseline (no contention estimate)")
	chunk := flag.Int("chunk", 0, "XDOALL pickup chunk size (>1 amortizes the iteration lock)")
	tree := flag.Int("tree", 0, "combining-tree fanout for the flat machine's barriers (>1 enables)")
	faultSpec := flag.String("fault", "", "fault plan, e.g. ce:2@1e6,module:17@5e5 (see internal/faults)")
	replayArg := flag.String("replay", "", "replay a recorded fault scenario: a scenario line, or a path to a .scenario corpus file")
	recordPath := flag.String("record-scenario", "", "with -fault: append the run's replay scenario line to this corpus file")
	tracePath := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON file")
	profilePath := flag.String("profile", "", "write a folded-stack profile weighted by virtual cycles")
	cpuProfile := flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the simulator process (wall-clock, not virtual cycles)")
	memProfile := flag.String("memprofile", "", "write a runtime/pprof heap profile at exit")
	seriesPath := flag.String("series", "", "write the sampled time series (CSV, or Prometheus text if *.prom)")
	metricsPath := flag.String("metrics", "", "write the run's metric registry snapshot (Prometheus text if *.prom, JSON if *.json, CSV otherwise)")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = sequential; output is identical at any setting)")
	serverURL := flag.String("server", "", "submit the run to a cedarserved instance at this URL and print its canonical statfx result")
	statfx := flag.Bool("statfx", false, "run locally and print only the canonical statfx accounting block (byte-diffable against a -server run)")
	flag.Parse()

	if *listConfigs {
		printConfigs()
		return
	}
	if *listApps {
		printApps()
		return
	}
	if *scenarioPath != "" {
		runScenario(*scenarioPath, *parallel)
		return
	}
	stopProf, err := profio.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: %v\n", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "cedarsim: profile: %v\n", err)
		}
	}()
	if *replayArg != "" {
		// A scenario carries its own app, config, steps, and seed; the
		// selection flags do not apply to a replay.
		runReplay(*replayArg, *parallel)
		return
	}
	if *recordPath != "" && *faultSpec == "" {
		usageErr("-record-scenario needs a -fault plan to record")
	}
	if *steps < 0 {
		usageErr("-steps %d is negative", *steps)
	}
	if *chunk < 0 {
		usageErr("-chunk %d is negative", *chunk)
	}
	if *tree < 0 {
		usageErr("-tree %d is negative", *tree)
	}
	if *flat {
		// -flat fixes the machine at 32 unclustered CEs; an explicit
		// contradictory -ces is a mistake, not something to ignore.
		explicitCEs := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "ces" {
				explicitCEs = true
			}
		})
		if explicitCEs && *ces != 32 {
			usageErr("-flat implies 32 CEs; contradictory -ces %d", *ces)
		}
	}

	// The three workload sources are mutually exclusive; -app only
	// conflicts when set explicitly (it has a default).
	explicitApp := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "app" {
			explicitApp = true
		}
	})
	if *workloadPath != "" && *genSpec != "" {
		usageErr("-workload and -gen are mutually exclusive")
	}
	if explicitApp && (*workloadPath != "" || *genSpec != "") {
		usageErr("-app conflicts with -workload and -gen")
	}
	// remoteWorkload is the inline source a -server run submits instead
	// of a registry name: the gen: spec verbatim, or the canonical
	// document text of a -workload file (the server must not read
	// client-side paths).
	var app perfect.App
	var remoteWorkload string
	switch {
	case *genSpec != "":
		src := *genSpec
		if !strings.HasPrefix(src, perfect.GenPrefix) {
			src = perfect.GenPrefix + src
		}
		if app, err = (perfect.Resolver{}).Resolve(src); err != nil {
			usageErr("%v", err)
		}
		remoteWorkload = src
	case *workloadPath != "":
		if app, err = perfect.LoadWorkload(*workloadPath); err != nil {
			usageErr("%v", err)
		}
		remoteWorkload = string(perfect.PrintWorkload(app))
	default:
		if app, err = (perfect.Resolver{AllowFiles: true}).Resolve(*appName); err != nil {
			usageErr("%v", err)
		}
		if strings.Contains(*appName, "\n") || strings.HasSuffix(*appName, perfect.WorkloadExt) || strings.HasPrefix(*appName, perfect.GenPrefix) {
			remoteWorkload = string(perfect.PrintWorkload(app))
		}
	}

	custom := *clusters != 0 || *cesPer != 0 || *gmModules != 0 || *stages != 0 || *degree != 0
	var cfg arch.Config
	switch {
	case custom:
		// A custom parametric machine: unset dimensions keep Cedar's
		// values, and arch.Config.Validate names any violated topology
		// constraint.
		if *configName != "" {
			usageErr("-config %s conflicts with the parametric machine flags", *configName)
		}
		if *flat {
			usageErr("-flat conflicts with the parametric machine flags")
		}
		cfg = arch.Cedar32
		if *clusters > 0 {
			cfg.Clusters = *clusters
		}
		if *cesPer > 0 {
			cfg.CEsPerCluster = *cesPer
		}
		if *gmModules > 0 {
			cfg.GMModules = *gmModules
		}
		if *stages > 0 {
			cfg.NetStages = *stages
		}
		if *degree > 0 {
			cfg.SwitchDegree = *degree
		}
		cfg.Name = fmt.Sprintf("custom-%dx%d", cfg.Clusters, cfg.CEsPerCluster)
		if err := cfg.Validate(); err != nil {
			usageErr("%v", err)
		}
	case *configName != "":
		if *flat {
			usageErr("-flat conflicts with -config")
		}
		var ok bool
		cfg, ok = arch.FamilyByName(*configName)
		if !ok {
			usageErr("unknown configuration %q (see -list-configs)", *configName)
		}
	case *flat:
		cfg = arch.Unclustered32
	default:
		found := false
		for _, c := range arch.PaperConfigs() {
			if c.CEs() == *ces {
				cfg, found = c, true
				break
			}
		}
		if !found {
			usageErr("no paper configuration with %d CEs (supported: %s; use -config or the parametric flags for scaled machines)", *ces, supportedCEs())
		}
	}

	opts := cedar.Options{Steps: *steps, XdoallChunk: *chunk, TreeFanout: *tree, Parallel: *parallel}

	// The service modes print the canonical statfx block and nothing
	// else, so a local and a remote run of the same invocation diff
	// byte-for-byte.
	if *serverURL != "" {
		if custom {
			usageErr("-server needs a named configuration the service knows (see -list-configs)")
		}
		runRemote(*serverURL, app, remoteWorkload, cfg, *steps, *faultSpec)
		return
	}
	if *statfx {
		runStatfx(app, cfg, opts, *faultSpec, exporter{metrics: *metricsPath})
		return
	}

	exp := exporter{trace: *tracePath, profile: *profilePath, series: *seriesPath, metrics: *metricsPath}
	if exp.enabled() {
		// Arm the obs layer; the trace export also needs the hpm
		// monitor for runtime-structure spans.
		opts.Observe = &obs.Options{}
		if exp.trace != "" && opts.TraceCapacity == 0 {
			opts.TraceCapacity = 1 << 22
		}
	}

	if *faultSpec != "" {
		runFaulted(app, cfg, opts, *faultSpec, *recordPath, exp)
		return
	}

	// The measured run and the 1-processor baseline are independent
	// simulations; run them through the engine pool.
	var runX *cedar.Run
	var base *core.Result
	jobs := []func(){
		func() { runX = cedar.SimulateRun(app, cfg, opts) },
	}
	if !*noBase && cfg.CEs() > 1 {
		jobs = append(jobs, func() { base = cedar.Simulate(app, arch.Cedar1, opts) })
	}
	engine.Do(*parallel, jobs...)
	res := runX.Result
	exp.write(runX)

	if base != nil {
		// Normalize both to the paper's CT1 for readable seconds.
		if paper := perfect.PaperCT1(app.Name); paper > 0 {
			scale := paper / arch.Seconds(int64(base.CT))
			base.Scale, res.Scale = scale, scale
		}
	}

	fmt.Printf("%s on %s (%d CEs, %d clusters)\n", app.Name, cfg.Name, cfg.CEs(), cfg.Clusters)
	fmt.Printf("completion time: %.1f s (%.0f cycles)\n", res.CTSeconds(), float64(res.CT))
	if base != nil {
		fmt.Printf("speedup over 1 processor: %.2f\n", res.Speedup(base))
	}
	fmt.Printf("average concurrency: %.2f (sampled: %.2f)\n",
		res.MachineConcurrency(), res.SampledConcurrency)
	fmt.Printf("OS share of CT (machine average): %.1f%%\n\n", res.OSShare()*100)

	fmt.Println("Completion-time breakdown per cluster task (Figure 3 view):")
	for c := 0; c < cfg.Clusters; c++ {
		b := res.ClusterBreakdown(c)
		fmt.Printf("  cluster %d: user %.1f%%  system %.1f%%  interrupt %.1f%%  spin %.2f%%\n",
			c, b.User*100, b.System*100, b.Interrupt*100, b.Spin*100)
	}
	fmt.Println()

	fmt.Println("User-time breakdown per task (Figures 4-9 view, % of CT):")
	for _, t := range res.Tasks() {
		name := "main"
		if !t.IsMain {
			name = fmt.Sprintf("helper%d", t.Cluster)
		}
		fmt.Printf("  %-8s serial %.1f  mc %.1f  iters %.1f  setup %.1f  pick %.1f  barrier %.1f  hwait %.1f  | overhead %.1f\n",
			name, t.Serial*100, t.MCLoop*100, t.Iter*100,
			t.Setup*100, t.Pick*100, t.Barrier*100, t.HelperWait*100,
			t.OverheadFraction()*100)
	}
	fmt.Println()

	fmt.Println("Detailed OS overheads (Table 2 view, per-CE average):")
	for _, row := range res.OSDetail() {
		fmt.Printf("  %-16s %8.2f s  %5.2f%%  (%d events)\n",
			row.Category, row.Seconds, row.Percent, row.Count)
	}
	fmt.Println()

	pf := make([]float64, cfg.Clusters)
	for c := range pf {
		pf[c] = res.ParallelFraction(c)
	}
	fmt.Printf("parallel fraction per cluster: %.3f\n", pf)
	fmt.Printf("parallel loop concurrency per cluster (Table 3): %.2f\n", res.ParallelLoopConcurrency())

	if base != nil {
		cont, err := core.ContentionOverhead(base, res)
		if err != nil {
			fmt.Fprintf(os.Stderr, "contention estimate failed: %v\n", err)
		} else {
			fmt.Printf("\nGM & network contention (Table 4 view):\n")
			fmt.Printf("  Tp_actual %.0f s   Tp_ideal %.0f s   Ov_cont %.1f%% of CT\n",
				res.Seconds(cont.TpActual), res.Seconds(cont.TpIdeal), cont.OvCont)
		}
	}

	var spin float64
	for _, a := range res.Accounts {
		spin += float64(a.Get(metrics.CatOSSpin))
	}
	fmt.Printf("\nkernel lock spin (machine total): %.3f%% of CT x CEs\n",
		spin/float64(int64(res.CT)*int64(cfg.CEs()))*100)
}

// exporter writes the observability outputs of a run to the paths the
// flags selected (empty paths are skipped).
type exporter struct {
	trace, profile, series, metrics string
}

// enabled reports whether a flag needs the obs layer armed. -metrics
// alone does not: the registry also covers unobserved runs.
func (e exporter) enabled() bool { return e.trace != "" || e.profile != "" || e.series != "" }

// write exports the run's trace, profile, series, and metric registry
// files, then checks the run's drop counters. Export failures are
// fatal: an invocation that asked for an artifact and cannot produce
// it should not exit 0.
func (e exporter) write(run *cedar.Run) {
	if e.trace != "" {
		e.toFile(e.trace, func(f *os.File) error {
			return obs.WriteTrace(f, run.TraceBundle())
		})
	}
	if e.profile != "" {
		e.toFile(e.profile, func(f *os.File) error {
			return obs.WriteFolded(f, run.Result.App, run.Result.CT, run.Machine.Accounts())
		})
	}
	if e.series != "" {
		e.toFile(e.series, func(f *os.File) error {
			if strings.HasSuffix(e.series, ".prom") {
				return obs.WriteProm(f, run.Series, map[string]string{
					"app": run.Result.App, "config": run.Machine.Cfg.Name,
				})
			}
			return obs.WriteCSV(f, run.Series)
		})
	}
	if e.metrics != "" {
		snap := run.Metrics().Snapshot()
		e.toFile(e.metrics, func(f *os.File) error {
			switch {
			case strings.HasSuffix(e.metrics, ".prom"):
				return metricreg.WriteProm(f, snap, map[string]string{
					"app": run.Result.App, "config": run.Machine.Cfg.Name,
				})
			case strings.HasSuffix(e.metrics, ".json"):
				return metricreg.WriteJSON(f, snap)
			default:
				return metricreg.WriteCSV(f, snap)
			}
		})
	}
	warnDropped(run)
}

// warnDroppedOnce keeps the drop warning to one line per invocation
// even when several runs (baseline, degraded) dropped events.
var warnDroppedOnce sync.Once

// warnDropped warns on stderr when a run's bounded instrumentation
// buffers overflowed — silent drops would skew any fold over the trace
// (the Figure 4 decompositions). Stderr keeps -statfx stdout
// byte-identical.
func warnDropped(run *cedar.Run) {
	n := run.DroppedEvents()
	if n == 0 {
		return
	}
	warnDroppedOnce.Do(func() {
		fmt.Fprintf(os.Stderr,
			"cedarsim: warning: %d instrumentation event(s) dropped (trace or series buffer full); raise the trace capacity or series capacity before trusting trace folds\n", n)
	})
}

func (e exporter) toFile(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: %v\n", err)
		os.Exit(1)
	}
	werr := fn(f)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: writing %s: %v\n", path, werr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "cedarsim: wrote %s\n", path)
}

// runReplay re-runs one recorded scenario — or every scenario in a
// corpus file — and verifies each declared expectation (each replayed
// twice for bit-identity, concurrently per -parallel, reported in
// corpus order). Exit status 1 when any scenario misses its
// expectation.
func runReplay(arg string, parallel int) {
	var entries []replay.CorpusEntry
	if strings.Contains(arg, "plan=") {
		sc, err := replay.Parse(arg)
		if err != nil {
			usageErr("%v", err)
		}
		entries = append(entries, replay.CorpusEntry{Scenario: sc, File: "command line"})
	} else {
		data, err := os.ReadFile(arg)
		if err != nil {
			usageErr("-replay %s: %v", arg, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			sc, err := replay.Parse(line)
			if err != nil {
				usageErr("%s:%d: %v", arg, i+1, err)
			}
			entries = append(entries, replay.CorpusEntry{Scenario: sc, File: arg, Line: i + 1})
		}
		if len(entries) == 0 {
			usageErr("-replay %s: no scenarios in file", arg)
		}
	}
	failed := 0
	for _, cr := range cedar.CheckCorpus(entries, parallel) {
		where := cr.Entry.File
		if cr.Entry.Line > 0 {
			where = fmt.Sprintf("%s:%d", cr.Entry.File, cr.Entry.Line)
		}
		fmt.Printf("replay %s\n  %s\n", where, cr.Entry.Scenario)
		if cr.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "cedarsim: %v\n", cr.Err)
			continue
		}
		if cr.Run != nil && cr.Entry.Scenario.Expectation() == replay.ExpectOK {
			fmt.Printf("  outcome: ok (ct=%d, seq faults=%d, conc faults=%d)\n",
				int64(cr.Run.Result.CT), cr.Run.OS.SeqFaults(), cr.Run.OS.ConcFaults())
		} else {
			fmt.Printf("  outcome: %s, as expected\n", cr.Entry.Scenario.Expectation())
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "cedarsim: %d of %d scenario(s) missed their expectation\n",
			failed, len(entries))
		os.Exit(1)
	}
}

// runFaulted runs the degraded-vs-baseline comparison for one fault
// plan and prints the decomposition delta table. With recordPath, the
// run is appended to that corpus file as a replay scenario line
// carrying its observed outcome.
func runFaulted(app perfect.App, cfg arch.Config, opts cedar.Options, spec, recordPath string, exp exporter) {
	plan, err := faults.Parse(spec)
	if err != nil {
		usageErr("%v", err)
	}
	if err := plan.Validate(cfg); err != nil {
		usageErr("%v", err)
	}

	fmt.Printf("%s on %s (%d CEs), fault plan %s\n\n", app.Name, cfg.Name, cfg.CEs(), plan)
	reports, err := cedar.FaultSweep(app, cfg, []faults.Plan{plan}, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarsim: baseline run failed: %v\n", err)
		os.Exit(1)
	}
	fr := reports[0]
	if fr.Run != nil {
		// Export the degraded run: its trace shows the fault windows.
		exp.write(fr.Run)
	}
	if fr.Run != nil && fr.Run.Injector != nil {
		fmt.Println("Fault activations:")
		for _, a := range fr.Run.Injector.Applied() {
			fmt.Printf("  cycle %-12d %s\n", int64(a.At), a.Note)
		}
		fmt.Println()
	}
	if recordPath != "" {
		// Record the degraded run — deadlocks very much included: a
		// schedule that wedges the machine is exactly what the corpus
		// exists to pin.
		po := opts
		po.Faults = plan
		sc := cedar.RecordScenario(app, cfg, po)
		sc.Expect = cedar.Outcome(fr.Err)
		if err := replay.AppendCorpus(recordPath, sc, ""); err != nil {
			fmt.Fprintf(os.Stderr, "cedarsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cedarsim: recorded to %s: %s\n", recordPath, sc)
	}
	if fr.Err != nil {
		switch {
		case errors.Is(fr.Err, sim.ErrDeadlock):
			fmt.Fprintf(os.Stderr, "cedarsim: degraded run deadlocked: %v\n", fr.Err)
		case errors.Is(fr.Err, sim.ErrCycleBudget):
			fmt.Fprintf(os.Stderr, "cedarsim: degraded run exceeded cycle budget: %v\n", fr.Err)
		default:
			fmt.Fprintf(os.Stderr, "cedarsim: degraded run failed: %v\n", fr.Err)
		}
		os.Exit(1)
	}
	fmt.Print(core.FormatDegraded(fr.Report))
}
