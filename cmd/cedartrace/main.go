// Command cedartrace runs an application with the cedarhpm monitor
// armed and prints the event trace (or a per-event summary), the way
// the paper's trace buffers were offloaded to a workstation for
// analysis.
//
// Usage:
//
//	cedartrace [-app FLO52] [-ces 16] [-config 64proc] [-list-configs]
//	           [-steps 1] [-max 200] [-summary [-json]] [-hw] [-obs]
//
// -ces selects among the paper's closed configuration list; -config
// selects any named family member, including the scaled machines
// (-list-configs prints them all).
//
// -summary prints per-event counts and pair durations; with -json the
// same summary is emitted as a JSON object for scripting. -hw prints
// hardware counters. -obs arms the observability recorder and prints a
// span/series digest: spans per category, the slowest spans, and the
// sampled time series with mean and final values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/hpm"
	"repro/internal/obs"
	"repro/internal/perfect"
)

// supportedCEs lists the CE counts of the paper configurations, for
// error messages.
func supportedCEs() string {
	var counts []int
	for _, c := range arch.PaperConfigs() {
		counts = append(counts, c.CEs())
	}
	sort.Ints(counts)
	parts := make([]string, len(counts))
	for i, n := range counts {
		parts[i] = fmt.Sprint(n)
	}
	return strings.Join(parts, ", ")
}

func main() {
	appName := flag.String("app", "FLO52", "application name")
	ces := flag.Int("ces", 16, "processor count: 1, 4, 8, 16, or 32")
	configName := flag.String("config", "", "named machine family member (see -list-configs)")
	listConfigs := flag.Bool("list-configs", false, "print all named machine configurations and exit")
	steps := flag.Int("steps", 1, "timesteps to run (trace volume grows fast)")
	max := flag.Int("max", 200, "maximum trace records to print")
	summary := flag.Bool("summary", false, "print per-event counts and pair durations only")
	jsonOut := flag.Bool("json", false, "with -summary: emit the summary as JSON")
	hw := flag.Bool("hw", false, "print hardware counters (module utilization, hot ports, cache)")
	obsMode := flag.Bool("obs", false, "arm the obs recorder and print a span/series digest")
	flag.Parse()

	if *listConfigs {
		for _, c := range arch.Families() {
			fmt.Printf("%-10s %3d CEs  %2d clusters x %2d  GM %3d  %d-stage degree-%d\n",
				c.Name, c.CEs(), c.Clusters, c.CEsPerCluster,
				c.GMModules, c.NetStages, c.SwitchDegree)
		}
		return
	}
	if *jsonOut && !*summary {
		fmt.Fprintln(os.Stderr, "cedartrace: -json requires -summary")
		os.Exit(2)
	}

	app, ok := perfect.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "cedartrace: unknown application %q\n", *appName)
		os.Exit(2)
	}
	// Exact-match the configuration: a -ces value that matches no paper
	// configuration must not fall through to the zero arch.Config
	// (an empty machine would "run" and report nonsense). -config opens
	// the full named family, scaled machines included.
	var cfg arch.Config
	found := false
	if *configName != "" {
		cfg, found = arch.FamilyByName(*configName)
		if !found {
			fmt.Fprintf(os.Stderr, "cedartrace: unknown configuration %q (use -list-configs)\n", *configName)
			os.Exit(2)
		}
	} else {
		for _, c := range arch.PaperConfigs() {
			if c.CEs() == *ces {
				cfg, found = c, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "cedartrace: no paper configuration with %d CEs (supported: %s; -config opens the scaled machines)\n",
				*ces, supportedCEs())
			os.Exit(2)
		}
	}

	opts := cedar.Options{
		Steps:         *steps,
		TraceCapacity: 1 << 22,
	}
	if *obsMode {
		opts.Observe = &obs.Options{}
	}
	run := cedar.SimulateRun(app, cfg, opts)
	mon := run.Monitor

	if *summary && *jsonOut {
		printJSONSummary(run)
		return
	}

	fmt.Printf("%s on %s: %d cycles, %d trace records (%d dropped)\n\n",
		app.Name, cfg.Name, run.Result.CT, len(mon.Trace()), mon.Dropped())

	if *obsMode {
		printObsDigest(run)
		return
	}

	if *hw {
		ct := run.Result.CT
		gm := run.Result.GM
		fmt.Printf("global memory: %d accesses, %d words; request-to-completion total %d cycles\n",
			gm.Accesses, gm.Words, gm.StallTotal)
		fmt.Println("module utilization (busy fraction over the run):")
		util := run.Machine.GM.ModuleUtilization(ct)
		for i, u := range util {
			fmt.Printf(" m%02d %5.1f%%", i, u*100)
			if (i+1)%8 == 0 {
				fmt.Println()
			}
		}
		hotName, hotDelay := run.Machine.GM.Net().MaxPortDelay()
		st := run.Machine.GM.Net().Stats()
		fmt.Printf("network: %d port reservations, %d delayed; aggregate queueing %d cycles\n",
			st.Reservations, st.Delayed, st.DelayTotal)
		fmt.Printf("hottest port: %s with %d cycles of queueing\n", hotName, hotDelay)
		fmt.Println("\nper-cluster shared cache:")
		for _, cl := range run.Machine.Clusters {
			fmt.Printf("  cluster %d: util %.1f%%  hits %d  misses %d  queued %d cycles\n",
				cl.ID, cl.Cache.Utilization(ct)*100,
				cl.Cache.Hits(), cl.Cache.Misses(), cl.Cache.QueuedTotal())
		}
		fmt.Printf("\nOS: %d sequential faults, %d concurrent fault participations\n",
			run.OS.SeqFaults(), run.OS.ConcFaults())
		return
	}

	if *summary {
		fmt.Println("event counts:")
		for ev := hpm.EventID(0); ev < hpm.NumEvents; ev++ {
			if n := mon.Count(ev); n > 0 {
				fmt.Printf("  %-14s %10d\n", ev, n)
			}
		}
		fmt.Println("\nbarrier time per CE (barrier-enter .. barrier-exit):")
		for ce, d := range hpm.PairDurations(mon.Trace(), hpm.EvBarrierEnter, hpm.EvBarrierExit) {
			fmt.Printf("  ce%-3d %12d cycles\n", ce, d)
		}
		fmt.Println("\nhelper wait per CE (wait-start .. wait-end):")
		for ce, d := range hpm.PairDurations(mon.Trace(), hpm.EvWaitStart, hpm.EvWaitEnd) {
			fmt.Printf("  ce%-3d %12d cycles\n", ce, d)
		}
		return
	}

	for i, rec := range mon.Trace() {
		if i >= *max {
			fmt.Printf("... (%d more)\n", len(mon.Trace())-i)
			break
		}
		fmt.Printf("%12d  ce%-3d %-14s aux=%d\n", rec.At, rec.CE, rec.Event, rec.Aux)
	}
}

// jsonSummary is the -summary -json document: run identity, per-event
// counts, and the barrier/helper-wait pair durations per CE.
type jsonSummary struct {
	App         string           `json:"app"`
	Config      string           `json:"config"`
	CEs         int              `json:"ces"`
	Cycles      int64            `json:"cycles"`
	Records     int              `json:"records"`
	Dropped     uint64           `json:"dropped"`
	EventCounts map[string]int64 `json:"event_counts"`
	BarrierCyc  map[string]int64 `json:"barrier_cycles_per_ce"`
	HelperWait  map[string]int64 `json:"helper_wait_cycles_per_ce"`
}

func printJSONSummary(run *cedar.Run) {
	mon := run.Monitor
	s := jsonSummary{
		App:         run.Result.App,
		Config:      run.Machine.Cfg.Name,
		CEs:         run.Machine.Cfg.CEs(),
		Cycles:      int64(run.Result.CT),
		Records:     len(mon.Trace()),
		Dropped:     mon.Dropped(),
		EventCounts: map[string]int64{},
		BarrierCyc:  map[string]int64{},
		HelperWait:  map[string]int64{},
	}
	for ev := hpm.EventID(0); ev < hpm.NumEvents; ev++ {
		if n := mon.Count(ev); n > 0 {
			s.EventCounts[ev.String()] = int64(n)
		}
	}
	for ce, d := range hpm.PairDurations(mon.Trace(), hpm.EvBarrierEnter, hpm.EvBarrierExit) {
		s.BarrierCyc[fmt.Sprintf("ce%d", ce)] = int64(d)
	}
	for ce, d := range hpm.PairDurations(mon.Trace(), hpm.EvWaitStart, hpm.EvWaitEnd) {
		s.HelperWait[fmt.Sprintf("ce%d", ce)] = int64(d)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s); err != nil {
		fmt.Fprintf(os.Stderr, "cedartrace: %v\n", err)
		os.Exit(1)
	}
}

// printObsDigest summarizes the obs recorder's spans and the sampled
// time series for a quick look without exporting files.
func printObsDigest(run *cedar.Run) {
	bundle := run.TraceBundle()
	byCat := map[string]int{}
	catTotal := map[string]int64{}
	for _, s := range bundle.Spans {
		byCat[s.Cat]++
		catTotal[s.Cat] += int64(s.End - s.Start)
	}
	fmt.Printf("observability digest: %d spans, %d instants (%d dropped at capacity)\n\n",
		len(bundle.Spans), len(bundle.Instants), run.Obs.Dropped())

	fmt.Println("spans per category:")
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Printf("  %-8s %8d spans  %14d span-cycles\n", c, byCat[c], catTotal[c])
	}

	slow := append([]obs.Span(nil), bundle.Spans...)
	sort.Slice(slow, func(i, j int) bool {
		return slow[i].End-slow[i].Start > slow[j].End-slow[j].Start
	})
	if len(slow) > 10 {
		slow = slow[:10]
	}
	fmt.Println("\nslowest spans:")
	for _, s := range slow {
		track := fmt.Sprintf("ce%d", s.Track)
		if s.Track == obs.TrackMachine {
			track = "machine"
		}
		fmt.Printf("  %-8s %-24s %12d cycles  @%d\n", track, s.Name, int64(s.End-s.Start), int64(s.Start))
	}

	fmt.Println("\ntime series (mean / last):")
	for _, name := range run.Series.Names() {
		mean, err := run.Series.Mean(name)
		if err != nil {
			continue
		}
		_, vals, ok := run.Series.Last()
		last := 0.0
		if ok {
			for i, n := range run.Series.Names() {
				if n == name {
					last = vals[i]
					break
				}
			}
		}
		fmt.Printf("  %-22s %12.2f / %-12.2f (%d samples)\n", name, mean, last, run.Series.Len())
	}
}
