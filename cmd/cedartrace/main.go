// Command cedartrace runs an application with the cedarhpm monitor
// armed and prints the event trace (or a per-event summary), the way
// the paper's trace buffers were offloaded to a workstation for
// analysis.
//
// Usage:
//
//	cedartrace [-app FLO52] [-ces 16] [-steps 1] [-max 200] [-summary]
package main

import (
	"flag"
	"fmt"
	"os"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/hpm"
	"repro/internal/perfect"
)

func main() {
	appName := flag.String("app", "FLO52", "application name")
	ces := flag.Int("ces", 16, "processor count")
	steps := flag.Int("steps", 1, "timesteps to run (trace volume grows fast)")
	max := flag.Int("max", 200, "maximum trace records to print")
	summary := flag.Bool("summary", false, "print per-event counts and pair durations only")
	hw := flag.Bool("hw", false, "print hardware counters (module utilization, hot ports, cache)")
	flag.Parse()

	app, ok := perfect.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "cedartrace: unknown application %q\n", *appName)
		os.Exit(2)
	}
	var cfg arch.Config
	for _, c := range arch.PaperConfigs() {
		if c.CEs() == *ces {
			cfg = c
		}
	}
	if cfg.Name == "" {
		fmt.Fprintf(os.Stderr, "cedartrace: no configuration with %d CEs\n", *ces)
		os.Exit(2)
	}

	run := cedar.SimulateRun(app, cfg, cedar.Options{
		Steps:         *steps,
		TraceCapacity: 1 << 22,
	})
	mon := run.Monitor

	fmt.Printf("%s on %s: %d cycles, %d trace records (%d dropped)\n\n",
		app.Name, cfg.Name, run.Result.CT, len(mon.Trace()), mon.Dropped())

	if *hw {
		ct := run.Result.CT
		gm := run.Result.GM
		fmt.Printf("global memory: %d accesses, %d words; request-to-completion total %d cycles\n",
			gm.Accesses, gm.Words, gm.StallTotal)
		fmt.Println("module utilization (busy fraction over the run):")
		util := run.Machine.GM.ModuleUtilization(ct)
		for i, u := range util {
			fmt.Printf(" m%02d %5.1f%%", i, u*100)
			if (i+1)%8 == 0 {
				fmt.Println()
			}
		}
		hotName, hotDelay := run.Machine.GM.Net().MaxPortDelay()
		st := run.Machine.GM.Net().Stats()
		fmt.Printf("network: %d port reservations, %d delayed; aggregate queueing %d cycles\n",
			st.Reservations, st.Delayed, st.DelayTotal)
		fmt.Printf("hottest port: %s with %d cycles of queueing\n", hotName, hotDelay)
		fmt.Println("\nper-cluster shared cache:")
		for _, cl := range run.Machine.Clusters {
			fmt.Printf("  cluster %d: util %.1f%%  hits %d  misses %d  queued %d cycles\n",
				cl.ID, cl.Cache.Utilization(ct)*100,
				cl.Cache.Hits(), cl.Cache.Misses(), cl.Cache.QueuedTotal())
		}
		fmt.Printf("\nOS: %d sequential faults, %d concurrent fault participations\n",
			run.OS.SeqFaults(), run.OS.ConcFaults())
		return
	}

	if *summary {
		fmt.Println("event counts:")
		for ev := hpm.EventID(0); ev < hpm.NumEvents; ev++ {
			if n := mon.Count(ev); n > 0 {
				fmt.Printf("  %-14s %10d\n", ev, n)
			}
		}
		fmt.Println("\nbarrier time per CE (barrier-enter .. barrier-exit):")
		for ce, d := range hpm.PairDurations(mon.Trace(), hpm.EvBarrierEnter, hpm.EvBarrierExit) {
			fmt.Printf("  ce%-3d %12d cycles\n", ce, d)
		}
		fmt.Println("\nhelper wait per CE (wait-start .. wait-end):")
		for ce, d := range hpm.PairDurations(mon.Trace(), hpm.EvWaitStart, hpm.EvWaitEnd) {
			fmt.Printf("  ce%-3d %12d cycles\n", ce, d)
		}
		return
	}

	for i, rec := range mon.Trace() {
		if i >= *max {
			fmt.Printf("... (%d more)\n", len(mon.Trace())-i)
			break
		}
		fmt.Printf("%12d  ce%-3d %-14s aux=%d\n", rec.At, rec.CE, rec.Event, rec.Aux)
	}
}
