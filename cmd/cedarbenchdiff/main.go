// Command cedarbenchdiff gates benchmark regressions against committed
// baselines. It parses `go test -json` benchmark logs — one or more
// baselines (committed at the repo root) and a fresh run — converts
// each benchmark's ns/op into events per second, and fails when a
// benchmark got slower than its baseline by more than the tolerance:
//
//	cedarbenchdiff -old BENCH_kernel.json -old BENCH_bigconfig.json \
//	    -new bench_new.json [-tol 0.5]
//
// -old repeats (or takes a comma-separated list), so CI gates the
// kernel micro-benchmarks and the big-configuration run in one
// invocation. A benchmark name appearing in two baselines is an error:
// it would be ambiguous which number gates.
//
// Results are keyed on the event's Test field (which carries no
// -GOMAXPROCS suffix), so a baseline recorded on an 8-core machine
// still gates a 4-core CI runner. The default tolerance is
// deliberately loose (50%): across
// machine generations only order-of-magnitude regressions — an
// accidentally quadratic queue, a lost zero-allocation property — are
// unambiguous, and those are exactly what the gate is for. Benchmarks
// present only in the baseline are reported but not fatal (a renamed
// benchmark should update the baseline); a new run with no common
// benchmarks fails, since that means the gate matched nothing.
//
// -min-speedup inverts the gate for opt-in speedup checks: when set
// above zero, every common benchmark must beat its baseline events/sec
// by at least that factor (e.g. -min-speedup 1.3 demands the fresh run
// is 1.3x the baseline). This is how the CEDAR_SPEEDUP_GATE CI step
// proves an optimization PR actually outruns the pre-refactor capture.
//
// Exit status: 0 when every common benchmark passes, 1 on regression,
// missed speedup, or empty intersection, 2 on bad invocation.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// nsOp matches the measurement line of a benchmark result inside a
// -json Output field, e.g. " 4507105\t       542.3 ns/op\t...". The
// benchmark's name arrives separately in the event's Test field.
var nsOp = regexp.MustCompile(`^\s*\d+\t\s*([0-9.]+) ns/op`)

// testEvent is the subset of the `go test -json` schema we read.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// parse extracts benchmark name → ns/op from a go test -json log. A
// benchmark appearing more than once keeps its last value.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Action != "output" || ev.Test == "" {
			continue
		}
		m := nsOp.FindStringSubmatch(ev.Output)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[1], 64)
		if err != nil || ns <= 0 {
			continue
		}
		out[ev.Test] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// multiFlag collects a repeatable -old flag; each occurrence may also
// carry a comma-separated list.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	for _, p := range strings.Split(v, ",") {
		if p != "" {
			*m = append(*m, p)
		}
	}
	return nil
}

func main() {
	var oldPaths multiFlag
	flag.Var(&oldPaths, "old", "baseline go test -json benchmark log (repeatable, or comma-separated; default BENCH_kernel.json)")
	newPath := flag.String("new", "", "fresh go test -json benchmark log to gate")
	tol := flag.Float64("tol", 0.5, "allowed slowdown fraction before failing (0.5 = new may be half the baseline's events/sec)")
	minSpeedup := flag.Float64("min-speedup", 0, "when > 0, require every common benchmark's new/old events/sec ratio to reach this factor")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "cedarbenchdiff: -new is required")
		flag.Usage()
		os.Exit(2)
	}
	if *tol < 0 || *tol >= 1 {
		fmt.Fprintf(os.Stderr, "cedarbenchdiff: -tol %v out of range [0,1)\n", *tol)
		os.Exit(2)
	}
	if *minSpeedup < 0 {
		fmt.Fprintf(os.Stderr, "cedarbenchdiff: -min-speedup %v must be >= 0\n", *minSpeedup)
		os.Exit(2)
	}
	if len(oldPaths) == 0 {
		oldPaths = multiFlag{"BENCH_kernel.json"}
	}

	oldNS := map[string]float64{}
	oldSrc := map[string]string{}
	for _, path := range oldPaths {
		m, err := parse(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cedarbenchdiff: %v\n", err)
			os.Exit(2)
		}
		for n, ns := range m {
			if prev, dup := oldSrc[n]; dup {
				fmt.Fprintf(os.Stderr, "cedarbenchdiff: benchmark %q appears in both %s and %s; ambiguous baseline\n",
					n, prev, path)
				os.Exit(2)
			}
			oldNS[n] = ns
			oldSrc[n] = path
		}
	}
	newNS, err := parse(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarbenchdiff: %v\n", err)
		os.Exit(2)
	}

	var names []string
	for n := range oldNS {
		names = append(names, n)
	}
	sort.Strings(names)

	fmt.Printf("%-44s %14s %14s %8s\n", "benchmark", "old ev/s", "new ev/s", "ratio")
	common, failed := 0, 0
	for _, n := range names {
		oldEv := 1e9 / oldNS[n]
		ns, ok := newNS[n]
		if !ok {
			fmt.Printf("%-44s %14.4g %14s %8s\n", n, oldEv, "missing", "-")
			continue
		}
		common++
		newEv := 1e9 / ns
		ratio := newEv / oldEv
		verdict := ""
		switch {
		case ratio < 1.0-*tol:
			verdict = "  REGRESSION"
			failed++
		case *minSpeedup > 0 && ratio < *minSpeedup:
			verdict = fmt.Sprintf("  BELOW %.2fx", *minSpeedup)
			failed++
		}
		fmt.Printf("%-44s %14.4g %14.4g %7.2fx%s\n", n, oldEv, newEv, ratio, verdict)
	}
	for n := range newNS {
		if _, ok := oldNS[n]; !ok {
			fmt.Printf("%-44s %14s %14.4g %8s\n", n, "(no baseline)", 1e9/newNS[n], "-")
		}
	}

	switch {
	case common == 0:
		fmt.Fprintln(os.Stderr, "cedarbenchdiff: no benchmark appears in both logs; the gate matched nothing")
		os.Exit(1)
	case failed > 0:
		if *minSpeedup > 0 {
			fmt.Fprintf(os.Stderr, "cedarbenchdiff: %d of %d benchmark(s) missed the gate (tolerance %.0f%%, min speedup %.2fx)\n",
				failed, common, *tol*100, *minSpeedup)
		} else {
			fmt.Fprintf(os.Stderr, "cedarbenchdiff: %d of %d benchmark(s) regressed beyond %.0f%% of the baseline events/sec\n",
				failed, common, *tol*100)
		}
		os.Exit(1)
	}
	if *minSpeedup > 0 {
		fmt.Printf("all %d common benchmark(s) within %.0f%% of baseline and at least %.2fx faster\n",
			common, *tol*100, *minSpeedup)
	} else {
		fmt.Printf("all %d common benchmark(s) within %.0f%% of baseline\n", common, *tol*100)
	}
}
