// Command cedarbenchdiff gates benchmark regressions against committed
// baselines. It parses `go test -json` benchmark logs — one or more
// baselines (committed at the repo root) and a fresh run — converts
// each benchmark's ns/op into events per second, and fails when a
// benchmark got slower than its baseline by more than the tolerance:
//
//	cedarbenchdiff -old BENCH_kernel.json -old BENCH_bigconfig.json \
//	    -new bench_new.json [-tol 0.5]
//
// -old repeats (or takes a comma-separated list), so CI gates the
// kernel micro-benchmarks and the big-configuration run in one
// invocation. A benchmark name appearing in two baselines is an error:
// it would be ambiguous which number gates.
//
// Results are keyed on the event's Test field (which carries no
// -GOMAXPROCS suffix), so a baseline recorded on an 8-core machine
// still gates a 4-core CI runner. The default tolerance is
// deliberately loose (50%): across
// machine generations only order-of-magnitude regressions — an
// accidentally quadratic queue, a lost zero-allocation property — are
// unambiguous, and those are exactly what the gate is for. In this
// plain tolerance mode, benchmarks present only in the baseline are
// reported but not fatal (a renamed benchmark should update the
// baseline); a new run with no common benchmarks fails, since that
// means the gate matched nothing.
//
// -min-speedup inverts the gate for opt-in speedup checks: when set
// above zero, every common benchmark must beat its baseline events/sec
// by at least that factor (e.g. -min-speedup 1.3 demands the fresh run
// is 1.3x the baseline). This is how the CEDAR_SPEEDUP_GATE CI step
// proves an optimization PR actually outruns the pre-refactor capture.
// Under -min-speedup a benchmark present in a baseline but missing
// from -new IS fatal (listed as MISSING): the mode exists to prove a
// property of specific benchmarks, and a gate whose subject silently
// vanished from the fresh log would pass vacuously, proving nothing.
//
// The comparison semantics live in internal/benchcmp, shared with the
// cedarbench scenario-suite gate.
//
// Exit status: 0 when every gated benchmark passes, 1 on regression,
// missed speedup, missing-under-min-speedup, or empty intersection,
// 2 on bad invocation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchcmp"
)

func main() {
	var oldPaths benchcmp.PathList
	flag.Var(&oldPaths, "old", "baseline go test -json benchmark log (repeatable, or comma-separated; default BENCH_kernel.json)")
	newPath := flag.String("new", "", "fresh go test -json benchmark log to gate")
	tol := flag.Float64("tol", 0.5, "allowed slowdown fraction before failing (0.5 = new may be half the baseline's events/sec)")
	minSpeedup := flag.Float64("min-speedup", 0, "when > 0, require every common benchmark's new/old events/sec ratio to reach this factor (a gated benchmark missing from -new is then fatal)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "cedarbenchdiff: -new is required")
		flag.Usage()
		os.Exit(2)
	}
	if *tol < 0 || *tol >= 1 {
		fmt.Fprintf(os.Stderr, "cedarbenchdiff: -tol %v out of range [0,1)\n", *tol)
		os.Exit(2)
	}
	if *minSpeedup < 0 {
		fmt.Fprintf(os.Stderr, "cedarbenchdiff: -min-speedup %v must be >= 0\n", *minSpeedup)
		os.Exit(2)
	}
	if len(oldPaths) == 0 {
		oldPaths = benchcmp.PathList{"BENCH_kernel.json"}
	}

	oldNS, err := benchcmp.LoadBaselines(oldPaths)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarbenchdiff: %v\n", err)
		os.Exit(2)
	}
	newNS, err := benchcmp.LoadNsOp(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarbenchdiff: %v\n", err)
		os.Exit(2)
	}

	spec := benchcmp.Spec{Tol: *tol, MinSpeedup: *minSpeedup}
	rep := benchcmp.Compare(
		benchcmp.EventsPerSec(oldNS), benchcmp.EventsPerSec(newNS),
		func(string) benchcmp.Spec { return spec },
		*minSpeedup > 0)
	rep.WriteTable(os.Stdout, "old ev/s", "new ev/s")

	if err := rep.Err(); err != nil {
		if *minSpeedup > 0 {
			fmt.Fprintf(os.Stderr, "cedarbenchdiff: %v (tolerance %.0f%%, min speedup %.2fx)\n",
				err, *tol*100, *minSpeedup)
		} else {
			fmt.Fprintf(os.Stderr, "cedarbenchdiff: %v (tolerance %.0f%%)\n", err, *tol*100)
		}
		os.Exit(1)
	}
	if *minSpeedup > 0 {
		fmt.Printf("all %d common benchmark(s) within %.0f%% of baseline and at least %.2fx faster\n",
			rep.Common, *tol*100, *minSpeedup)
	} else {
		fmt.Printf("all %d common benchmark(s) within %.0f%% of baseline\n", rep.Common, *tol*100)
	}
}
