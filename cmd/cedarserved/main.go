// Command cedarserved is the hardened, long-running sweep service: an
// HTTP/JSON daemon that accepts simulate, sweep, replay, and corpus
// jobs, runs them on a bounded worker pool through the deterministic
// engine, memoizes results in a crash-safe content-addressed cache,
// and survives the operational failure modes a batch CLI never meets —
// overload (bounded queue, 429 + Retry-After), wedged jobs (per-job
// wall-clock deadlines threaded into the simulation kernel), crashing
// jobs (panic isolation with the stack in the job record), flaky I/O
// (retry with exponential backoff and jitter), and restarts (SIGTERM
// drains running jobs and persists the pending queue; the next process
// resumes it).
//
// Usage:
//
//	cedarserved [-addr :8344] [-cache-dir DIR] [-state-dir DIR]
//	            [-queue-depth N] [-workers N] [-deadline 2m]
//	            [-max-retries N] [-drain-timeout 30s] [-version V]
//
// Endpoints (see internal/serve):
//
//	POST   /jobs              submit; GET /jobs lists; GET /jobs/{id}
//	GET    /jobs/{id}/result  canonical statfx result text
//	GET    /jobs/{id}/events  NDJSON progress stream
//	POST   /jobs/{id}/cancel  cancel queued or running work
//	GET    /metrics           Prometheus text exposition
//	GET    /healthz           200 serving / 503 draining
//
// Submit jobs with cedarsim -server http://host:8344, or curl:
//
//	curl -d '{"type":"simulate","app":"FLO52","config":"8proc"}' :8344/jobs
//
// On SIGTERM or SIGINT the daemon stops admission (503), drains
// running jobs up to -drain-timeout, cancels stragglers, persists the
// pending queue under -state-dir, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8344", "listen address")
	cacheDir := flag.String("cache-dir", "", "result-cache directory (empty = caching off)")
	stateDir := flag.String("state-dir", "", "state directory for the persisted pending queue (empty = no persistence)")
	queueDepth := flag.Int("queue-depth", 0, "pending-job queue bound (0 = default 64); a full queue answers 429")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = GOMAXPROCS)")
	deadline := flag.Duration("deadline", 0, "default per-attempt wall-clock deadline (0 = 2m)")
	maxDeadline := flag.Duration("max-deadline", 0, "cap on client-requested deadlines (0 = 10m)")
	maxRetries := flag.Int("max-retries", 0, "transient-failure retries per job (0 = default 3)")
	drainTimeout := flag.Duration("drain-timeout", 0, "how long SIGTERM waits for running jobs (0 = 30s)")
	version := flag.String("version", "dev", "code version stamped into cache keys")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "cedarserved: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	s, err := serve.New(serve.Config{
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxRetries:      *maxRetries,
		DrainTimeout:    *drainTimeout,
		CacheDir:        *cacheDir,
		StateDir:        *stateDir,
		Version:         *version,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarserved: %v\n", err)
		os.Exit(1)
	}
	s.Start()

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, os.Interrupt)

	select {
	case err := <-serveErr:
		// The listener died on its own — that is a crash, not a drain.
		fmt.Fprintf(os.Stderr, "cedarserved: %v\n", err)
		os.Exit(1)
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "cedarserved: %v: draining (queue persists to %q)\n", sig, *stateDir)
	}

	// Drain first so admission stops and running jobs settle, then shut
	// the listener down under its own short deadline (the API answers
	// 503 throughout).
	drainErr := s.Drain(context.Background())
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		hs.Close()
	}
	<-serveErr
	if drainErr != nil {
		fmt.Fprintf(os.Stderr, "cedarserved: drain: %v\n", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "cedarserved: drained cleanly")
}
