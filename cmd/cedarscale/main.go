// Command cedarscale runs the paper's Section-7 overhead decomposition
// as a capacity-planning tool: one application across the 32-processor
// Cedar and the scaled family members (64, 128, 256 CEs), reporting
// how completion time, speedup, average concurrency, the OS share,
// barrier cost, and the estimated global-memory/network contention
// (Ov_cont) trend as the machine grows.
//
// Usage:
//
//	cedarscale [-app FLO52] [-configs 32proc,64proc,128proc,256proc]
//	           [-steps N] [-weak] [-csv] [-parallel N]
//
// The study's runs — one 1-processor base per distinct problem size
// plus one run per machine — are independent simulations and execute
// through the deterministic parallel engine; -parallel bounds the
// worker count (default GOMAXPROCS). Rows are assembled in -configs
// order, so the report is identical at any setting.
//
// By default the run is a strong-scaling study: the same
// paper-calibrated application on ever larger machines, so the fixed
// problem's loop counts divide across more CEs and the overhead share
// grows. With -weak each machine runs the application weak-scaled by
// ceil(CEs/32) — parallel iteration counts and data footprint grow
// with the machine while serial sections stay fixed — and each scaled
// problem is compared against its own 1-processor run.
//
// All paper-calibrated unit costs (memory module cycles, OS service
// times, synchronization instruction costs) are held fixed across the
// family; see EXPERIMENTS.md, "Scaling study".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/perfect"
	"repro/internal/profio"
)

// row is one machine's line of the study.
type row struct {
	cfg     arch.Config
	res     *core.Result
	speedup float64
	ovCont  float64 // percent of CT; negative when unavailable
}

func main() {
	appName := flag.String("app", "FLO52", "application: FLO52, ARC2D, MDG, OCEAN, ADM")
	configList := flag.String("configs", "32proc,64proc,128proc,256proc",
		"comma-separated named configurations (see cedarsim -list-configs)")
	steps := flag.Int("steps", 0, "override timestep count (0 = app default)")
	weak := flag.Bool("weak", false, "weak-scale the problem by ceil(CEs/32) per machine")
	csv := flag.Bool("csv", false, "emit the study as CSV")
	parallel := flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS, 1 = sequential; output is identical at any setting)")
	cpuProfile := flag.String("cpuprofile", "", "write a runtime/pprof CPU profile of the simulator process")
	memProfile := flag.String("memprofile", "", "write a runtime/pprof heap profile at exit")
	flag.Parse()

	stopProf, err := profio.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cedarscale: %v\n", err)
		os.Exit(2)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintf(os.Stderr, "cedarscale: profile: %v\n", err)
		}
	}()

	app, ok := perfect.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "cedarscale: unknown application %q\n", *appName)
		os.Exit(2)
	}

	var cfgs []arch.Config
	for _, name := range strings.Split(*configList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cfg, ok := arch.FamilyByName(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "cedarscale: unknown configuration %q (see cedarsim -list-configs)\n", name)
			os.Exit(2)
		}
		if err := cfg.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "cedarscale: %v\n", err)
			os.Exit(2)
		}
		cfgs = append(cfgs, cfg)
	}
	if len(cfgs) == 0 {
		fmt.Fprintln(os.Stderr, "cedarscale: -configs selected no configurations")
		os.Exit(2)
	}

	opts := cedar.Options{Steps: *steps, Parallel: *parallel}
	mode := "strong"
	if *weak {
		mode = "weak"
	}
	if !*csv {
		fmt.Printf("%s %s-scaling study (paper-calibrated unit costs held fixed)\n\n", app.Name, mode)
	}

	// One 1-processor base per distinct problem size: strong scaling
	// shares a single base; weak scaling needs one per scale factor so
	// Ov_cont compares each machine against its own problem. The
	// factors are known up front, so the bases run as one parallel
	// batch (factor 1 is always included: it anchors the paper
	// normalization below).
	factorOf := func(cfg arch.Config) int {
		if *weak {
			return perfect.ScaleFactorFor(cfg.CEs())
		}
		return 1
	}
	factors := []int{1}
	seen := map[int]bool{1: true}
	for _, cfg := range cfgs {
		if f := factorOf(cfg); !seen[f] {
			seen[f] = true
			factors = append(factors, f)
		}
	}
	baseResults := engine.Map(*parallel, factors, func(_ int, f int) *core.Result {
		return cedar.Simulate(app.Scaled(f), arch.Cedar1, opts)
	})
	bases := map[int]*core.Result{}
	for i, f := range factors {
		bases[f] = baseResults[i]
	}

	// Normalize seconds the way Sweep does — the unscaled 1-processor
	// run matches the paper's CT1 — so every row reads in Table-1
	// units. One shared scale keeps rows comparable across problem
	// sizes in weak mode.
	scale := 1.0
	if paper := perfect.PaperCT1(app.Name); paper > 0 {
		if raw := arch.Seconds(int64(bases[1].CT)); raw > 0 {
			scale = paper / raw
		}
	}

	rows := engine.Map(*parallel, cfgs, func(_ int, cfg arch.Config) row {
		factor := factorOf(cfg)
		base := bases[factor]
		res := cedar.Simulate(app.Scaled(factor), cfg, opts)
		res.Scale = scale
		r := row{cfg: cfg, res: res, speedup: res.Speedup(base), ovCont: -1}
		if cont, err := core.ContentionOverhead(base, res); err == nil {
			r.ovCont = cont.OvCont
		}
		return r
	})

	if *csv {
		fmt.Println("app,mode,config,ces,ct_seconds,speedup,concurrency,os_share_pct,barrier_pct,ov_cont_pct")
		for _, r := range rows {
			fmt.Printf("%s,%s,%s,%d,%.2f,%.3f,%.2f,%.2f,%.2f,%s\n",
				app.Name, mode, r.cfg.Name, r.cfg.CEs(), r.res.CTSeconds(),
				r.speedup, r.res.MachineConcurrency(), r.res.OSShare()*100,
				r.res.Task(0).Barrier*100, fmtCont(r.ovCont))
		}
		return
	}

	fmt.Printf("%-10s %5s %10s %9s %12s %9s %10s %9s\n",
		"config", "CEs", "CT (s)", "speedup", "concurrency", "OS share", "barrier", "Ov_cont")
	for _, r := range rows {
		fmt.Printf("%-10s %5d %10.1f %9.2f %12.2f %8.1f%% %9.1f%% %8s%%\n",
			r.cfg.Name, r.cfg.CEs(), r.res.CTSeconds(), r.speedup,
			r.res.MachineConcurrency(), r.res.OSShare()*100,
			r.res.Task(0).Barrier*100, fmtCont(r.ovCont))
	}

	fmt.Println("\nreading the trend:")
	fmt.Println("  - speedup below concurrency: overheads eat active time (paper Table 1)")
	fmt.Println("  - OS share and barrier cost grow with the CE count (paper Sections 5-6)")
	fmt.Println("  - Ov_cont is the Section-7 T_p_ideal estimate of GM/network contention")
}

// fmtCont renders an Ov_cont percentage, or "-" when the estimate was
// unavailable (e.g. a 1-CE row).
func fmtCont(v float64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", v)
}
