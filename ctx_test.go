package cedar

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/perfect"
	"repro/internal/sim"
)

// A canceled context stops a running simulation promptly with an error
// matching both the sim and context sentinels, and a context canceled
// before the run refuses to start at all.
func TestSimulateRunCtxCancel(t *testing.T) {
	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SimulateRunCtx(pre, perfect.FLO52(), arch.Cedar8, Options{Steps: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled ctx: err = %v, want context.Canceled", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	// ~3 s of work uncanceled; the cancel must cut it short.
	run, err := SimulateRunCtx(ctx, perfect.ADM(), arch.Cedar32, Options{Steps: 500})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if !errors.Is(err, sim.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want sim.ErrCanceled and context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("canceled run took %v to return", elapsed)
	}
	// The partial run is still inspectable, like other abnormal ends.
	if run == nil || run.Result == nil {
		t.Fatal("canceled run did not return partial accounting")
	}
}

// A deadline context behaves the same way, matching DeadlineExceeded.
func TestSimulateRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := SimulateRunCtx(ctx, perfect.ADM(), arch.Cedar32, Options{Steps: 500})
	if !errors.Is(err, sim.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want sim.ErrCanceled and context.DeadlineExceeded", err)
	}
}

// An uncanceled context cannot perturb results: the ctx path is
// byte-identical to the plain path, per configuration.
func TestSweepConfigsCtxIdentical(t *testing.T) {
	app := perfect.FLO52()
	cfgs := []arch.Config{arch.Cedar1, arch.Cedar4, arch.Cedar8}
	opts := Options{Steps: 2, Parallel: 2}
	plain := SweepConfigs(app, cfgs, opts)
	viaCtx, err := SweepConfigsCtx(context.Background(), app, cfgs, opts)
	if err != nil {
		t.Fatalf("SweepConfigsCtx: %v", err)
	}
	for _, cfg := range cfgs {
		a, b := plain.Results[cfg.CEs()], viaCtx.Results[cfg.CEs()]
		if a.CT != b.CT || a.Scale != b.Scale {
			t.Fatalf("%s: ctx path diverged: CT %d vs %d, scale %g vs %g",
				cfg.Name, a.CT, b.CT, a.Scale, b.Scale)
		}
	}
}

// Canceling a sweep mid-flight stops claiming configurations and
// returns promptly.
func TestSweepConfigsCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	cfgs := []arch.Config{arch.Cedar32, arch.Cedar32, arch.Cedar32, arch.Cedar32}
	_, err := SweepConfigsCtx(ctx, perfect.ADM(), cfgs, Options{Steps: 500, Parallel: 2})
	if err == nil {
		t.Fatal("canceled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("canceled sweep took %v to return", d)
	}
}
