package cedar

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index):
//
//	BenchmarkTable1_SpeedupConcurrency
//	BenchmarkFigure3_CTBreakdown
//	BenchmarkTable2_OSDetail
//	BenchmarkFigures5to9_UserTimeBreakdown
//	BenchmarkTable3_ParallelLoopConcurrency
//	BenchmarkTable4_ContentionOverhead
//
// plus the ablation studies from the paper's Section 6 discussion:
//
//	BenchmarkAblation_Clustering      (clustered vs 32 independent CEs)
//	BenchmarkAblation_CombiningTree   (flat spin barrier vs ref [16])
//	BenchmarkAblation_LoopMerging     (merging adjacent SDOALLs)
//	BenchmarkAblation_XdoallVsSdoall  (construct choice vs CE count)
//
// The five-application, five-configuration instrumented sweep is
// simulated once per process and shared by the table benchmarks (the
// measured quantity is the analysis/regeneration step); the ablation
// and end-to-end benchmarks simulate inside the timed loop. Run with
// -v to see every regenerated table.
import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/perfect"
)

var (
	sweepOnce sync.Once
	sweeps    []*core.Sweep
)

func paperSweeps(b *testing.B) []*core.Sweep {
	b.Helper()
	sweepOnce.Do(func() {
		for _, app := range perfect.Apps() {
			sweeps = append(sweeps, Sweep(app, Options{}))
		}
	})
	return sweeps
}

func BenchmarkTable1_SpeedupConcurrency(b *testing.B) {
	ss := paperSweeps(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = core.FormatTable1(ss)
	}
	b.StopTimer()
	b.Log("\n" + out)
}

func BenchmarkFigure3_CTBreakdown(b *testing.B) {
	ss := paperSweeps(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = ""
		for _, s := range ss {
			out += core.FormatFigure3(s)
		}
	}
	b.StopTimer()
	b.Log("\n" + out)
}

func BenchmarkTable2_OSDetail(b *testing.B) {
	ss := paperSweeps(b)
	var at32 []*core.Result
	for _, s := range ss {
		at32 = append(at32, s.Results[32])
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = core.FormatTable2(at32)
	}
	b.StopTimer()
	b.Log("\n" + out)
}

func BenchmarkFigures5to9_UserTimeBreakdown(b *testing.B) {
	ss := paperSweeps(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = ""
		for _, s := range ss {
			out += core.FormatUserTime(s)
		}
	}
	b.StopTimer()
	b.Log("\n" + out)
}

func BenchmarkTable3_ParallelLoopConcurrency(b *testing.B) {
	ss := paperSweeps(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = core.FormatTable3(ss)
	}
	b.StopTimer()
	b.Log("\n" + out)
}

func BenchmarkTable4_ContentionOverhead(b *testing.B) {
	ss := paperSweeps(b)
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		out = core.FormatTable4(ss)
	}
	b.StopTimer()
	b.Log("\n" + out)
}

// BenchmarkEndToEnd_FLO52Sweep times a full instrumented sweep of one
// application across all five configurations — the cost of
// regenerating the paper's columns from scratch.
func BenchmarkEndToEnd_FLO52Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := Sweep(perfect.FLO52(), Options{})
		if s.Results[32].CT == 0 {
			b.Fatal("no completion time")
		}
	}
}

// BenchmarkPaperSweep times the full five-application paper sweep —
// every table's raw material — through the parallel engine at fixed
// worker counts. The parallel-1 sub-benchmark is the sequential
// baseline; parallel-4 is what the CI benchmark job compares it
// against (the wall-clock speedup gate lives in
// TestParallelSweepSpeedup). The per-simulation virtual-time results
// are identical at every worker count, so the sub-benchmarks measure
// pure scheduling, not different work.
func BenchmarkPaperSweep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("parallel-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ss := AllSweeps(Options{Parallel: workers})
				if len(ss) != len(perfect.Apps()) {
					b.Fatalf("AllSweeps returned %d sweeps", len(ss))
				}
			}
		})
	}
}

// BenchmarkAblation_Clustering compares the real clustered Cedar with
// the hypothetical machine of 32 independent processors (Section 6:
// "was clustering a good idea?"), in both granularity regimes.
func BenchmarkAblation_Clustering(b *testing.B) {
	for _, app := range []perfect.App{perfect.FineGrained(), perfect.CoarseGrained()} {
		app := app
		b.Run(app.Name, func(b *testing.B) {
			var ctC, ctF float64
			for i := 0; i < b.N; i++ {
				clustered := Simulate(app, arch.Cedar32, Options{})
				flat := Simulate(app, arch.Unclustered32, Options{})
				ctC = float64(clustered.CT)
				ctF = float64(flat.CT)
			}
			b.ReportMetric(ctF/ctC, "flat/clustered-CT")
			b.Logf("%s: clustered CT %.0f cycles, flat CT %.0f cycles (ratio %.2f)",
				app.Name, ctC, ctF, ctF/ctC)
		})
	}
}

// BenchmarkAblation_CombiningTree compares the flat busy-wait barrier
// with the software combining tree of reference [16] on the
// unclustered machine, reporting the hot-spot reduction.
func BenchmarkAblation_CombiningTree(b *testing.B) {
	app := perfect.FineGrained()
	for _, fanout := range []int{0, 2, 4, 8} {
		fanout := fanout
		name := "flat-spin"
		if fanout > 1 {
			name = fmt.Sprintf("tree-fanout%d", fanout)
		}
		b.Run(name, func(b *testing.B) {
			var ct float64
			var hot float64
			for i := 0; i < b.N; i++ {
				run := SimulateRun(app, arch.Unclustered32, Options{TreeFanout: fanout})
				ct = float64(run.Result.CT)
				_, d := run.Machine.GM.Net().MaxPortDelay()
				hot = float64(d)
			}
			b.ReportMetric(ct, "CT-cycles")
			b.ReportMetric(hot, "hot-port-delay")
			b.Logf("%s: CT %.0f cycles, worst-port queueing %.0f cycles", name, ct, hot)
		})
	}
}

// BenchmarkAblation_LoopMerging quantifies the Section-6 suggestion of
// merging adjacent independent SDOALLs to eliminate barriers: k
// separate loops versus one merged loop with k times the iterations.
func BenchmarkAblation_LoopMerging(b *testing.B) {
	// k fine-grained adjacent SDOALLs versus one merged SDOALL with k
	// times the spread iterations: merging removes k-1 barrier
	// synchronizations and work-posting rounds per step. Identical
	// total work, iteration shape, and data footprint.
	// Pure-compute bodies isolate the synchronization cost (no paging
	// or traffic differences between the two layouts).
	const k = 12
	split := perfect.SyntheticSpec{
		Name: "split", Steps: 4, LoopsPerStep: k,
		Outer: 4, Inner: 8, Work: 500, ClusWords: 32,
		DataWords: 16 * 1024,
	}.App()
	merged := perfect.SyntheticSpec{
		Name: "merged", Steps: 4, LoopsPerStep: 1,
		Outer: 4 * k, Inner: 8, Work: 500, ClusWords: 32,
		DataWords: 16 * 1024,
	}.App()
	var ctSplit, ctMerged, bwSplit, bwMerged float64
	for i := 0; i < b.N; i++ {
		rs := Simulate(split, arch.Cedar32, Options{})
		rm := Simulate(merged, arch.Cedar32, Options{})
		ctSplit, ctMerged = float64(rs.CT), float64(rm.CT)
		bwSplit = rs.Task(0).Barrier + rs.Task(1).HelperWait
		bwMerged = rm.Task(0).Barrier + rm.Task(1).HelperWait
	}
	b.ReportMetric(ctSplit/ctMerged, "split/merged-CT")
	b.Logf("%d separate sdoalls: CT %.0f cycles (barrier+hwait %.1f%%); merged: CT %.0f cycles (%.1f%%); %.1f%% of CT saved",
		k, ctSplit, bwSplit*100, ctMerged, bwMerged*100, (1-ctMerged/ctSplit)*100)
}

// BenchmarkAblation_XdoallVsSdoall compares the two constructs on the
// same loop across CE counts — the Section-6 finding that the flat
// construct's distribution overhead grows with processors while the
// hierarchical construct's stays negligible.
func BenchmarkAblation_XdoallVsSdoall(b *testing.B) {
	mk := func(kind perfect.PhaseKind) perfect.App {
		return perfect.SyntheticSpec{
			Name: "construct", Steps: 4, LoopsPerStep: 4, Kind: kind,
			Outer: 16, Inner: 16, Work: 1500, GMWords: 48,
		}.App()
	}
	// The paper's finding is about the distribution overhead: picking
	// iterations through the global lock costs the flat construct more
	// as processors are added, while the hierarchical construct's
	// pickup stays negligible. (Total completion time can still favor
	// XDOALL when its global self-scheduling balances load better —
	// which is exactly why "the xdoalls were often used for
	// convenience".)
	pickShare := func(r *core.Result) float64 {
		var pick float64
		for _, a := range r.Accounts {
			pick += float64(a.Get(metrics.CatPickIter))
		}
		return pick / (float64(r.CT) * float64(r.Cfg.CEs()))
	}
	for _, cfg := range []arch.Config{arch.Cedar4, arch.Cedar8, arch.Cedar32} {
		cfg := cfg
		b.Run(cfg.Name, func(b *testing.B) {
			var pickS, pickX, ctS, ctX float64
			for i := 0; i < b.N; i++ {
				rs := Simulate(mk(perfect.PhaseSX), cfg, Options{})
				rx := Simulate(mk(perfect.PhaseX), cfg, Options{})
				pickS, pickX = pickShare(rs), pickShare(rx)
				ctS, ctX = float64(rs.CT), float64(rx.CT)
			}
			b.ReportMetric(pickX*100, "xdoall-pick-%")
			b.ReportMetric(pickS*100, "sdoall-pick-%")
			b.Logf("%s: pick overhead sdoall %.2f%% vs xdoall %.2f%% of CT; CT ratio x/s %.3f",
				cfg.Name, pickS*100, pickX*100, ctX/ctS)
		})
	}
}

// BenchmarkAblation_XdoallChunking measures the standard mitigation
// for the flat construct's distribution overhead: claiming chunks of
// iterations per global-lock pickup. Chunk 1 is the Cedar runtime the
// paper measured.
func BenchmarkAblation_XdoallChunking(b *testing.B) {
	app := perfect.SyntheticSpec{
		Name: "chunking", Steps: 4, LoopsPerStep: 6, Kind: perfect.PhaseX,
		Outer: 1, Inner: 256, Work: 900, GMWords: 32,
	}.App()
	pickShare := func(r *core.Result) float64 {
		var pick float64
		for _, a := range r.Accounts {
			pick += float64(a.Get(metrics.CatPickIter))
		}
		return pick / (float64(r.CT) * float64(r.Cfg.CEs()))
	}
	for _, chunk := range []int{1, 4, 16} {
		chunk := chunk
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			var ct, pick float64
			for i := 0; i < b.N; i++ {
				r := Simulate(app, arch.Cedar32, Options{XdoallChunk: chunk})
				ct = float64(r.CT)
				pick = pickShare(r)
			}
			b.ReportMetric(ct, "CT-cycles")
			b.ReportMetric(pick*100, "pick-%")
			b.Logf("chunk %d: CT %.0f cycles, pick overhead %.2f%% of CT", chunk, ct, pick*100)
		})
	}
}
