package cedar

import (
	"repro/internal/metrics"
)

// Workload pathology classes the detectors below recognize. The names
// are the values a scenario's pathology: key declares (see
// internal/scenario) and the labels cedarfuzz -apps promotes under.
const (
	// PathologyHotSpot: the global-memory traffic concentrates on a
	// few modules (strided access aliasing the word-interleaved
	// mapping), so one module's queue serializes the machine.
	PathologyHotSpot = "hotspot"
	// PathologyBarrierConvoy: main tasks spend an outsized share of
	// the run spinning at loop finish barriers — uneven iteration
	// granularity turns every barrier into a convoy behind the
	// slowest straggler.
	PathologyBarrierConvoy = "barrier-convoy"
	// PathologyPageStorm: concurrent page-fault handling dominates the
	// OS activity profile — the footprint-to-locality ratio makes the
	// machine fault continuously instead of computing.
	PathologyPageStorm = "page-storm"
)

// Detector thresholds, tuned against the paper workloads (none of
// which trip any detector) and the generator's pathological corners
// (which must). See TestPathologyDetectors and the calibration notes
// in internal/perfect/gen.
const (
	// hotSpotSkew is the min hottest-module / mean-module utilization
	// ratio. Uniform word-interleaved traffic sits near 1 (the paper
	// apps measure <= 1.6); a stride aliasing all accesses onto few of
	// 32 modules drives it toward the module count.
	hotSpotSkew = 4.0
	// hotSpotMinUtil keeps near-idle memories from counting: with a
	// handful of accesses the skew is sampling noise, so the hottest
	// module must carry real traffic.
	hotSpotMinUtil = 0.01
	// convoyIterShare gates the convoy detector on parallel-loop
	// iteration work actually dominating the run (machine-average
	// share of CT x CEs in iteration bodies).
	convoyIterShare = 0.25
	// convoyExcessFrac is the min straggler excess: how much of the
	// completion time the busiest CE spends in iteration bodies beyond
	// the machine average. Balanced apps (the paper's have no work
	// jitter) sit near 0; a convoy serializes every barrier behind the
	// straggler.
	convoyExcessFrac = 0.20
	// stormFrac is the min concurrent+sequential page-fault share of
	// completion time, per-CE average. Table 2's worst real case
	// (FLO52's pg flt (c)) is ~11%.
	stormFrac = 0.25
)

// Pathologies inspects a completed run's accounting and returns the
// pathology classes it exhibits, in the constants' declaration order
// (an empty slice for a healthy run). Detection is deterministic: the
// same run yields the same labels, which is what lets cedarfuzz shrink
// a generated workload against "still pathological" as the predicate.
func (r *Run) Pathologies() []string {
	var out []string
	if r.hotSpot() {
		out = append(out, PathologyHotSpot)
	}
	if r.barrierConvoy() {
		out = append(out, PathologyBarrierConvoy)
	}
	if r.pageStorm() {
		out = append(out, PathologyPageStorm)
	}
	return out
}

// hotSpot reports whether global-memory traffic concentrated on few
// modules: whole-run busy fractions come from the module calendars at
// the kernel's final time.
func (r *Run) hotSpot() bool {
	us := r.Machine.GM.ModuleUtilization(r.Machine.Kernel.Now())
	if len(us) == 0 {
		return false
	}
	var sum, max float64
	for _, u := range us {
		sum += u
		if u > max {
			max = u
		}
	}
	mean := sum / float64(len(us))
	return mean > 0 && max >= hotSpotMinUtil && max/mean >= hotSpotSkew
}

// barrierConvoy reports whether the run's parallel loops serialize
// behind a straggler. The signature in the accounting is iteration-
// time imbalance: every other CE runs out of iterations and sits at
// the finish barrier (lead barrier-wait, helper idle) while the
// busiest CE keeps executing, so the straggler's iteration time runs
// far past the machine average.
func (r *Run) barrierConvoy() bool {
	res := r.Result
	if res.CT <= 0 || len(res.Accounts) == 0 {
		return false
	}
	var sum, max float64
	for _, a := range res.Accounts {
		li := float64(a.Get(metrics.CatLoopIter))
		sum += li
		if li > max {
			max = li
		}
	}
	mean := sum / float64(len(res.Accounts))
	ct := float64(res.CT)
	return mean/ct >= convoyIterShare && (max-mean)/ct >= convoyExcessFrac
}

// pageStorm reports whether page-fault handling dominates the OS
// profile: the per-CE average share of completion time spent in
// concurrent or sequential fault service.
func (r *Run) pageStorm() bool {
	res := r.Result
	if res.CT <= 0 {
		return false
	}
	flt := float64(res.OS.Time[metrics.OSPgFltConc] + res.OS.Time[metrics.OSPgFltSeq])
	perCE := flt / float64(res.Cfg.CEs())
	return perCE/float64(res.CT) >= stormFrac
}
