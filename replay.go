package cedar

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/faults/replay"
	"repro/internal/obs"
	"repro/internal/perfect"
	"repro/internal/sim"
)

// RecordScenario captures the fault-run inputs as a replayable
// scenario: the app, configuration, timestep override, resolved kernel
// seed, and fault plan. The seed is resolved (never left implicit) so
// the recorded line keeps reproducing the run even if the default
// derivation changes. The scenario assumes default values for the
// options RecordScenario does not capture (chunking, tree barriers,
// cost overrides).
func RecordScenario(app perfect.App, cfg arch.Config, opts Options) replay.Scenario {
	return replay.Scenario{
		App:    app.Name,
		Config: cfg.Name,
		Steps:  opts.Steps,
		Seed:   opts.seed(app, cfg),
		Plan:   opts.Faults,
	}
}

// ReplayErr re-runs a recorded fault scenario. The simulation kernel
// is deterministic in virtual time, so a replay reproduces the
// original run bit for bit: same schedule, same fault hand-offs, same
// statfx accounting (see Run.StatfxText). Like SimulateRunErr it
// returns the Run alongside the error when the simulation itself ran
// but ended abnormally.
func ReplayErr(sc replay.Scenario) (*Run, error) {
	app, ok := perfect.ByName(sc.App)
	if !ok {
		return nil, fmt.Errorf("cedar: replay: unknown application %q", sc.App)
	}
	cfg, ok := arch.FamilyByName(sc.Config)
	if !ok {
		return nil, fmt.Errorf("cedar: replay: unknown configuration %q", sc.Config)
	}
	return SimulateRunErr(app, cfg, Options{Steps: sc.Steps, Seed: sc.Seed, Faults: sc.Plan})
}

// Outcome classifies a simulation error into the corpus expectation
// vocabulary: replay.ExpectOK, replay.ExpectDeadlock, or
// replay.ExpectError.
func Outcome(err error) string {
	switch {
	case err == nil:
		return replay.ExpectOK
	case errors.Is(err, sim.ErrDeadlock):
		return replay.ExpectDeadlock
	default:
		return replay.ExpectError
	}
}

// CheckScenario replays a scenario and verifies its declared
// expectation, returning the Run and a descriptive error when the
// outcome differs (the error includes the simulation error, if any,
// and the ready-to-paste scenario line).
func CheckScenario(sc replay.Scenario) (*Run, error) {
	run, err := ReplayErr(sc)
	if got, want := Outcome(err), sc.Expectation(); got != want {
		detail := ""
		if err != nil {
			detail = fmt.Sprintf(" (%v)", err)
		}
		return run, fmt.Errorf("cedar: scenario %q: outcome %s, want %s%s", sc, got, want, detail)
	}
	return run, nil
}

// CorpusResult is one corpus entry's verification outcome from
// CheckCorpus. Err is set when the entry misbehaved — the outcome
// missed its declared expectation, or two replays were not
// bit-identical. Run carries the first replay for inspection.
type CorpusResult struct {
	Entry replay.CorpusEntry
	Run   *Run
	Err   error
}

// CheckCorpus verifies every corpus entry through the engine pool:
// each scenario is replayed twice, its outcome checked against the
// declared expectation, and the two runs compared byte for byte (the
// record/replay contract). Entries are independent simulations, so
// they run concurrently per parallel (see engine.Workers); results
// come back in corpus order, making concurrent gate output identical
// to the sequential path's.
func CheckCorpus(entries []replay.CorpusEntry, parallel int) []CorpusResult {
	return engine.Map(parallel, entries, func(_ int, e replay.CorpusEntry) CorpusResult {
		cr := CorpusResult{Entry: e}
		run, err := CheckScenario(e.Scenario)
		cr.Run = run
		if err != nil {
			cr.Err = err
			return cr
		}
		if run != nil {
			again, err := ReplayErr(e.Scenario)
			if Outcome(err) != e.Scenario.Expectation() || again == nil ||
				again.StatfxText() != run.StatfxText() {
				cr.Err = fmt.Errorf("cedar: replay not bit-identical across two runs: %s", e.Scenario)
			}
		}
		return cr
	})
}

// FaultWindows runs the app healthy on the configuration with the
// observability layer armed and returns the merged virtual-time
// windows in which page faults were serviced. The schedule fuzzer
// (replay.SweepTimes) aims fail-stops at these windows — the hand-off
// races live inside them.
func FaultWindows(app perfect.App, cfg arch.Config, opts Options) ([]replay.Window, error) {
	opts.Faults = nil
	if opts.Observe == nil {
		opts.Observe = &obs.Options{SeriesInterval: -1}
	}
	run, err := SimulateRunErr(app, cfg, opts)
	if err != nil {
		return nil, err
	}
	var ws []replay.Window
	for _, sp := range run.Obs.Spans() {
		if strings.HasPrefix(sp.Name, "pgflt") {
			ws = append(ws, replay.Window{Start: sp.Start, End: sp.End})
		}
	}
	return replay.MergeWindows(ws), nil
}

// ShrinkErr minimizes a failing scenario with the delta-debugging
// shrinker: the result reproduces the same outcome class (deadlock, or
// any error) with the fewest, plainest fault injections. It returns
// the shrunk scenario and the number of candidate replays spent.
// Shrinking a scenario that completes cleanly is an error — there is
// nothing to reproduce.
func ShrinkErr(sc replay.Scenario, maxRuns int) (replay.Scenario, int, error) {
	_, err := ReplayErr(sc)
	class := Outcome(err)
	if class == replay.ExpectOK {
		return sc, 1, fmt.Errorf("cedar: scenario %q completes cleanly; nothing to shrink", sc)
	}
	failing := func(cand replay.Scenario) bool {
		if err := cand.Plan.Validate(mustConfig(cand.Config)); err != nil {
			return false
		}
		_, err := ReplayErr(cand)
		return Outcome(err) == class
	}
	shrunk, runs := replay.Shrink(sc, failing, maxRuns)
	shrunk.Expect = class
	return shrunk, runs + 1, nil
}

func mustConfig(name string) arch.Config {
	cfg, ok := arch.FamilyByName(name)
	if !ok {
		panic(fmt.Sprintf("cedar: unknown configuration %q", name))
	}
	return cfg
}

// StatfxText renders the run's complete accounting — completion time,
// exact and sampled concurrency, fault classification counters, the
// Table-2 OS breakdown, and every CE's per-category account — as a
// canonical text block. Two replays of the same scenario produce
// byte-identical StatfxText; the replay regression suite and cedarfuzz
// compare runs with it.
//
// The block renders from the run's metric registry snapshot — the same
// source every exporter reads — and is byte-identical to the original
// direct rendering (golden-gated in testdata/golden/statfx_*.txt):
// cycle counts round-trip the registry's float64 cells exactly below
// 2^53, and float values are stored and read back bit-for-bit.
func (r *Run) StatfxText() string {
	res := r.Result
	snap := r.Metrics().Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "app=%s config=%s ct=%d failed_ces=%d\n", res.App, res.Cfg.Name,
		int64(snap.Value("ct_cycles")), int64(snap.Value("result_failed_ces")))
	fmt.Fprintf(&b, "faults seq=%d conc=%d\n",
		int64(snap.Value("faults_sequential_total")), int64(snap.Value("faults_concurrent_total")))
	fmt.Fprintf(&b, "concurrency sampled=%.9f", snap.Value("concurrency_sampled"))
	cc, _ := snap.Get("concurrency_cluster")
	for _, cell := range cc.Cells {
		fmt.Fprintf(&b, " c%d=%.9f", cell.Key[0], cell.Value)
	}
	b.WriteString("\n")
	ot, _ := snap.Get("os_time_cycles")
	oc, _ := snap.Get("os_events_total")
	for i := range ot.Cells {
		fmt.Fprintf(&b, "os %-14s time=%d count=%d\n",
			ot.Cells[i].Label[0], int64(ot.Cells[i].Value), int64(oc.Cells[i].Value))
	}
	bc, _ := snap.Get("ce_category_cycles")
	for i := 0; i < len(bc.Cells); {
		ce := bc.Cells[i].Key[0]
		fmt.Fprintf(&b, "ce%d", ce)
		for ; i < len(bc.Cells) && bc.Cells[i].Key[0] == ce; i++ {
			fmt.Fprintf(&b, " %s=%d", bc.Cells[i].Label[1], int64(bc.Cells[i].Value))
		}
		b.WriteString("\n")
	}
	return b.String()
}
