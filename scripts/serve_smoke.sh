#!/usr/bin/env bash
# Smoke-test the cedarserved job service end to end, race-instrumented:
# submit → poll → result byte-identical to a local run → warm resubmit
# hits the cache → cancel a running job → SIGTERM drains, persists the
# pending queue, and a restarted daemon resumes it.
#
# Run from the repo root: scripts/serve_smoke.sh
set -euo pipefail

workdir=$(mktemp -d)
srv_pid=""
cleanup() {
  [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

addr=127.0.0.1:18344
url=http://$addr

# wait_state <job-id> <state> polls the job until it reaches the state
# (failing fast if it lands on a different terminal state).
wait_state() {
  local id=$1 want=$2 st=""
  for _ in $(seq 300); do
    st=$(curl -fsS "$url/jobs/$id" | grep -m1 '"state":' | cut -d'"' -f4)
    if [ "$st" = "$want" ]; then return 0; fi
    case "$st" in done|failed|canceled)
      echo "job $id reached terminal state $st, want $want" >&2
      curl -fsS "$url/jobs/$id" >&2 || true
      return 1;;
    esac
    sleep 0.2
  done
  echo "job $id stuck in state $st, want $want" >&2
  return 1
}

# job_id extracts the id from a submit response.
job_id() { grep -m1 '"id":' | cut -d'"' -f4; }

echo "== build (race detector)"
go build -race -o "$workdir/cedarserved" ./cmd/cedarserved
go build -race -o "$workdir/cedarsim" ./cmd/cedarsim

echo "== start daemon (1 worker, short drain timeout)"
"$workdir/cedarserved" -addr "$addr" -workers 1 -drain-timeout 3s \
  -cache-dir "$workdir/cache" -state-dir "$workdir/state" \
  2>"$workdir/served.log" &
srv_pid=$!
for _ in $(seq 50); do
  curl -fsS "$url/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "$url/healthz" >/dev/null

echo "== local reference run (cedarsim -statfx)"
"$workdir/cedarsim" -statfx -app FLO52 -ces 8 -steps 2 >"$workdir/local.txt"

echo "== cold submit through cedarsim -server; result must be byte-identical"
"$workdir/cedarsim" -server "$url" -app FLO52 -ces 8 -steps 2 >"$workdir/cold.txt" 2>/dev/null
cmp "$workdir/local.txt" "$workdir/cold.txt"

echo "== warm resubmit must complete at submit time from the cache"
warm=$(curl -fsS -d '{"type":"simulate","app":"FLO52","config":"8proc","steps":2}' "$url/jobs")
echo "$warm" | grep -q '"cache_hit": true' || {
  echo "warm resubmit missed the cache: $warm" >&2; exit 1; }
warm_id=$(echo "$warm" | job_id)
curl -fsS "$url/jobs/$warm_id/result" >"$workdir/warm.txt"
cmp "$workdir/local.txt" "$workdir/warm.txt"

echo "== cancel a running job"
long='{"type":"simulate","app":"ADM","config":"32proc","steps":2000,"no_cache":true}'
cancel_id=$(curl -fsS -d "$long" "$url/jobs" | job_id)
wait_state "$cancel_id" running
curl -fsS -X POST "$url/jobs/$cancel_id/cancel" >/dev/null
wait_state "$cancel_id" canceled

echo "== SIGTERM mid-job drains, persists the pending queue, exits 0"
running_id=$(curl -fsS -d "$long" "$url/jobs" | job_id)
wait_state "$running_id" running
pending_id=$(curl -fsS -d '{"type":"simulate","app":"FLO52","config":"8proc","steps":3}' "$url/jobs" | job_id)
kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""
grep -q "drained cleanly" "$workdir/served.log"
grep -q "\"$pending_id\"" "$workdir/state/queue.json" || {
  echo "pending job $pending_id not in persisted queue:" >&2
  cat "$workdir/state/queue.json" >&2; exit 1; }

echo "== restart resumes the persisted job to completion"
"$workdir/cedarserved" -addr "$addr" -workers 1 -drain-timeout 3s \
  -cache-dir "$workdir/cache" -state-dir "$workdir/state" \
  2>>"$workdir/served.log" &
srv_pid=$!
for _ in $(seq 50); do
  curl -fsS "$url/healthz" >/dev/null 2>&1 && break
  sleep 0.2
done
wait_state "$pending_id" done
"$workdir/cedarsim" -statfx -app FLO52 -ces 8 -steps 3 >"$workdir/local3.txt"
curl -fsS "$url/jobs/$pending_id/result" >"$workdir/resumed.txt"
cmp "$workdir/local3.txt" "$workdir/resumed.txt"

echo "== metrics endpoint reports service counters"
curl -fsS "$url/metrics" | grep -q 'cedar_serve_jobs_submitted_total'

kill -TERM "$srv_pid"
wait "$srv_pid"
srv_pid=""
echo "== serve smoke passed"
