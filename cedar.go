// Package cedar is the public facade of the Cedar overhead-
// characterization reproduction (Natarajan, Sharma, Iyer — ISCA 1994).
//
// One call simulates an application on a Cedar configuration with full
// instrumentation and returns the analysis-ready result:
//
//	res := cedar.Simulate(perfect.FLO52(), arch.Cedar32, cedar.Options{})
//	fmt.Println(res.OSShare(), res.Task(0).OverheadFraction())
//
// Sweep runs an application across the paper's five configurations and
// normalizes reported seconds so the 1-processor completion time
// matches the paper's Table 1 (the calibration policy in DESIGN.md);
// every multiprocessor quantity is model output.
package cedar

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/arch"
	"repro/internal/cfrt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/hpm"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perfect"
	"repro/internal/sim"
	"repro/internal/statfx"
	"repro/internal/xylem"
)

// Options tune a simulation run.
type Options struct {
	// Steps overrides the app's timestep count when > 0 (smaller is
	// faster; overhead fractions are step-count invariant).
	Steps int
	// Seed overrides the deterministic seed derived from the app and
	// configuration when non-zero.
	Seed int64
	// SamplerInterval is the statfx sampling period in cycles;
	// defaults to 10000 (0.5 ms) when zero. Negative disables the
	// sampler.
	SamplerInterval sim.Duration
	// TraceCapacity enables the cedarhpm monitor with the given trace
	// buffer capacity when > 0.
	TraceCapacity int
	// TraceMask restricts recorded event kinds when non-zero (see
	// hpm.MaskFor).
	TraceMask uint32
	// Costs overrides the unit-cost model when non-nil.
	Costs *arch.CostModel
	// TreeFanout, when > 1, uses the software combining-tree barrier
	// (paper reference [16]) instead of the flat busy-wait barrier on
	// unclustered configurations.
	TreeFanout int
	// XdoallChunk, when > 1, claims chunks of XDOALL iterations per
	// global-lock pickup, amortizing the distribution overhead.
	XdoallChunk int
	// Faults is a plan of hardware/OS faults to inject at their
	// virtual times (degraded-mode simulation). Validated against the
	// configuration before the run starts.
	Faults faults.Plan
	// MaxCycles aborts the simulation with sim.ErrCycleBudget when
	// virtual time would pass it (0: unlimited). A guard rail for
	// fault plans that slow the machine pathologically.
	MaxCycles sim.Time
	// WatchdogInterval sets how often the kernel checks for a wedged
	// simulation (every live process blocked, no progress), reporting
	// sim.ErrDeadlock. Zero uses a default of 10M cycles (0.5 s of
	// virtual time); negative disables the watchdog.
	WatchdogInterval sim.Duration
	// Observe enables the observability layer: an obs.Recorder wired
	// through the machine, OS, runtime, and fault injector, plus a
	// time-series collector sampling concurrency, memory/network
	// backlog, and the qmon split. Nil leaves observation off (the
	// zero-cost path). The zero obs.Options value gives defaults.
	Observe *obs.Options
	// Parallel bounds how many independent simulations the batch
	// helpers (Sweep, SweepConfigs, Sweeps, AllSweeps, FaultSweep,
	// CheckCorpus) run concurrently. Zero uses GOMAXPROCS; 1 forces
	// the sequential path. Parallelism is wall-clock only: every
	// simulation owns its kernel and deterministic seed, and results
	// are assembled in input order, so batch output is byte-identical
	// at any setting (see internal/engine).
	Parallel int

	// cancelFrom is the context the ctx-aware entry points
	// (SimulateRunCtx and friends) thread into the kernel's interrupt
	// check. Unexported: plain Simulate paths never pay for it.
	cancelFrom context.Context
}

// defaultWatchdog is the deadlock-check period when
// Options.WatchdogInterval is zero.
const defaultWatchdog = 10_000_000

func (o Options) seed(app perfect.App, cfg arch.Config) int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	h := fnv.New64a()
	h.Write([]byte(app.Name))
	h.Write([]byte(cfg.Name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Run is a Simulate result plus the live simulation objects, for
// callers (tools, tests) that want to inspect traces or hardware
// statistics beyond the analysis result.
type Run struct {
	Result   *core.Result
	Machine  *cluster.Machine
	OS       *xylem.OS
	RT       *cfrt.Runtime
	Monitor  *hpm.Monitor     // nil unless Options.TraceCapacity > 0
	Injector *faults.Injector // nil unless Options.Faults was set
	Obs      *obs.Recorder    // nil unless Options.Observe was set
	Series   *obs.Collector   // nil unless Options.Observe was set

	// reg is the run's metric registry: pre-seeded with the live series
	// probes when the run was observed, completed lazily with the
	// result metrics by Metrics().
	reg     *metricreg.Registry
	regOnce sync.Once
}

// Simulate runs one application on one configuration and returns the
// analysis result. The result's Scale is 1 (raw simulated seconds);
// Sweep sets the paper normalization. It panics on invalid input or a
// failed simulation; SimulateErr is the error-returning form.
func Simulate(app perfect.App, cfg arch.Config, opts Options) *core.Result {
	return SimulateRun(app, cfg, opts).Result
}

// SimulateErr is Simulate with error reporting instead of panics:
// invalid apps, configurations, and fault plans come back as errors,
// and so do simulation failures (sim.ErrDeadlock, sim.ErrCycleBudget,
// process panics) — check with errors.Is. On a simulation error the
// returned Run still carries the partial result for inspection.
func SimulateErr(app perfect.App, cfg arch.Config, opts Options) (*core.Result, error) {
	run, err := SimulateRunErr(app, cfg, opts)
	if run == nil {
		return nil, err
	}
	return run.Result, err
}

// SimulateRun is SimulateRunErr, panicking on error.
func SimulateRun(app perfect.App, cfg arch.Config, opts Options) *Run {
	run, err := SimulateRunErr(app, cfg, opts)
	if err != nil {
		panic(err)
	}
	return run
}

// SimulateRunErr runs one application on one configuration, applying
// any fault plan in the options, and returns the live simulation
// objects alongside the analysis result. Simulation failures are
// returned as errors; when the simulation itself ran but ended
// abnormally (deadlock, cycle budget), the Run is returned too, with
// accounting collected up to the failure point.
func SimulateRunErr(app perfect.App, cfg arch.Config, opts Options) (*Run, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Faults.Validate(cfg); err != nil {
		return nil, err
	}
	if opts.Steps > 0 {
		app = app.WithSteps(opts.Steps)
	}
	costs := arch.DefaultCosts()
	if opts.Costs != nil {
		costs = *opts.Costs
	}

	k := sim.NewKernel(opts.seed(app, cfg))
	if opts.MaxCycles > 0 {
		k.SetMaxCycles(opts.MaxCycles)
	}
	if ctx := opts.cancelFrom; ctx != nil {
		if done := ctx.Done(); done != nil {
			k.SetInterrupt(interruptEvery, func() error {
				select {
				case <-done:
					return ctx.Err()
				default:
					return nil
				}
			})
		}
	}
	if opts.WatchdogInterval >= 0 {
		interval := opts.WatchdogInterval
		if interval == 0 {
			interval = defaultWatchdog
		}
		k.SetWatchdog(interval)
	}
	m := cluster.NewMachine(k, cfg, costs)
	o := xylem.New(m)

	var rec *obs.Recorder
	var series *obs.Collector
	var liveReg *metricreg.Registry
	if opts.Observe != nil {
		rec = obs.NewRecorder(*opts.Observe)
		m.Obs = rec
		m.GM.SetRecorder(rec)
		o.Obs = rec
		series = obs.NewCollector(k, *opts.Observe)
		liveReg = metricreg.New()
		registerProbes(liveReg, m)
		// The collector samples the registry's live scalar metrics: one
		// registration feeds the time series and every exporter alike,
		// in registration order (the series CSV column order).
		for _, rd := range liveReg.ScalarReaders() {
			series.AddProbe(rd.Desc.Name, func(now sim.Time) float64 { return rd.Read() })
		}
		series.Start()
	}

	var mon *hpm.Monitor
	if opts.TraceCapacity > 0 {
		mon = hpm.New(k, opts.TraceCapacity)
		if opts.TraceMask != 0 {
			mon.SetMask(opts.TraceMask)
		}
	}
	rt := cfrt.New(m, o, mon)
	rt.TreeFanout = opts.TreeFanout
	rt.XdoallChunk = opts.XdoallChunk
	rt.Obs = rec

	var inj *faults.Injector
	if len(opts.Faults) > 0 {
		inj = &faults.Injector{M: m, OS: o, Mon: mon, Obs: rec, OnCEFail: rt.NotifyCEFailure}
		inj.Arm(opts.Faults)
	}

	var sampler *statfx.Sampler
	if opts.SamplerInterval >= 0 {
		interval := opts.SamplerInterval
		if interval == 0 {
			interval = 10_000
		}
		sampler = statfx.NewSampler(m, interval)
	}
	if sampler != nil || series != nil {
		rt.OnFinish = func() {
			if sampler != nil {
				sampler.Stop()
			}
			series.Stop() // nil-safe
		}
	}

	region := o.NewRegion(app.Name+".data", app.DataWords)
	_, err := rt.RunErr(app.Program(region))
	if sampler != nil {
		sampler.Stop() // idempotent; error paths never reached OnFinish
	}
	series.Stop()

	res := core.Collect(app.Name, 1, rt, sampler)
	run := &Run{Result: res, Machine: m, OS: o, RT: rt, Monitor: mon, Injector: inj,
		Obs: rec, Series: series, reg: liveReg}
	return run, err
}

// registerProbes registers the standard live probes as registry gauge
// functions: machine and per-cluster concurrency (the statfx signal),
// the qmon user/system/interrupt/spin split as CE counts, global-memory
// module utilization and backlog, network port backlog (the hot-spot
// signal), and simulation liveness counters. Each reads the machine at
// the kernel's current virtual time, so sampling them from the series
// collector is equivalent to the old direct probes — but the same
// registration also puts them in every exporter.
func registerProbes(reg *metricreg.Registry, m *cluster.Machine) {
	now := m.Kernel.Now
	countCEs := func(pred func(*cluster.CE) bool) float64 {
		n := 0.0
		for _, ce := range m.AllCEs() {
			if pred(ce) {
				n++
			}
		}
		return n
	}
	reg.GaugeFunc("concurrency", "CEs active at the sampling instant", "ces", func() float64 {
		return float64(m.ActiveCEs())
	})
	for ci := range m.Clusters {
		ci := ci
		reg.GaugeFunc(fmt.Sprintf("concurrency_c%d", ci),
			fmt.Sprintf("CEs of cluster %d active at the sampling instant", ci), "ces",
			func() float64 {
				return float64(m.ClusterActiveCEs(ci))
			})
	}
	// The qmon split, sampled as how many CEs are in each execution
	// mode at the instant (Figure 3's user/system/interrupt/spin).
	reg.GaugeFunc("ces_user", "CEs executing user code", "ces", func() float64 {
		return countCEs(func(ce *cluster.CE) bool { return ce.Busy().IsUser() })
	})
	reg.GaugeFunc("ces_system", "CEs executing OS system code", "ces", func() float64 {
		return countCEs(func(ce *cluster.CE) bool { return ce.Busy() == metrics.CatOSSystem })
	})
	reg.GaugeFunc("ces_interrupt", "CEs servicing interrupts", "ces", func() float64 {
		return countCEs(func(ce *cluster.CE) bool { return ce.Busy() == metrics.CatOSInterrupt })
	})
	reg.GaugeFunc("ces_spin", "CEs spinning on OS locks", "ces", func() float64 {
		return countCEs(func(ce *cluster.CE) bool { return ce.Busy() == metrics.CatOSSpin })
	})
	reg.GaugeFunc("gm_module_util_mean", "mean global-memory module utilization", "fraction", func() float64 {
		us := m.GM.ModuleUtilization(now())
		if len(us) == 0 {
			return 0
		}
		sum := 0.0
		for _, u := range us {
			sum += u
		}
		return sum / float64(len(us))
	})
	reg.GaugeFunc("gm_module_util_max", "utilization of the hottest global-memory module", "fraction", func() float64 {
		max := 0.0
		for _, u := range m.GM.ModuleUtilization(now()) {
			if u > max {
				max = u
			}
		}
		return max
	})
	reg.GaugeFunc("gm_backlog_cycles", "queued work across global-memory modules", "cycles", func() float64 {
		return float64(m.GM.ModuleBacklog(now()))
	})
	reg.CounterFunc("gm_accesses", "global-memory accesses issued", "accesses", func() float64 {
		return float64(m.GM.Stats().Accesses)
	})
	reg.GaugeFunc("net_backlog_cycles", "queued work across network ports", "cycles", func() float64 {
		return float64(m.GM.Net().Backlog(now()))
	})
	reg.CounterFunc("net_delay_cycles", "cumulative network queueing delay", "cycles", func() float64 {
		return float64(m.GM.Net().Stats().DelayTotal)
	})
	reg.GaugeFunc("live_procs", "live kernel processes", "procs", func() float64 {
		return float64(m.Kernel.LiveProcs())
	})
	reg.GaugeFunc("failed_ces", "CEs fail-stopped so far", "ces", func() float64 {
		return float64(m.FailedCEs())
	})
}

// TraceBundle folds the run's hpm event trace and recorder spans into
// one exportable bundle for obs.WriteTrace. The hpm trace contributes
// runtime structure (serial sections, loops, iterations, barriers); the
// recorder contributes OS, memory, and fault spans. Works with either
// source missing.
func (r *Run) TraceBundle() *obs.Bundle {
	b := &obs.Bundle{
		App:           r.Result.App,
		Config:        r.Machine.Cfg.Name,
		CEs:           r.Machine.Cfg.CEs(),
		CEsPerCluster: r.Machine.Cfg.CEsPerCluster,
		CT:            r.Result.CT,
	}
	var spans []obs.Span
	var insts []obs.Instant
	if r.Monitor != nil {
		spans, insts = obs.FoldTrace(r.Monitor.Trace(), r.Obs)
	}
	spans = append(spans, r.Obs.Spans()...)
	insts = append(insts, r.Obs.Instants()...)
	obs.SortSpans(spans)
	b.Spans = obs.ClampSpans(spans, r.Result.CT)
	b.Instants = insts
	return b
}

// Sweep runs the app across the paper's five configurations and
// normalizes seconds so the 1-processor completion time matches the
// paper's (when the app is one of the five; synthetic apps keep
// Scale 1). The configurations run concurrently per Options.Parallel;
// every result is identical to a sequential run's.
func Sweep(app perfect.App, opts Options) *core.Sweep {
	return SweepConfigs(app, arch.PaperConfigs(), opts)
}

// SweepConfigs runs the app across an arbitrary list of configurations
// (e.g. arch.ScaledConfigs(), or paper plus scaled machines for a
// scaling study), keyed by CE count like Sweep. When the list includes
// a 1-processor configuration and the app has a published CT1 the same
// paper normalization applies; otherwise seconds are raw model output
// (Scale 1). Configurations run concurrently per Options.Parallel.
func SweepConfigs(app perfect.App, cfgs []arch.Config, opts Options) *core.Sweep {
	s := &core.Sweep{App: app.Name, Results: map[int]*core.Result{}}
	results := engine.Map(opts.Parallel, cfgs, func(_ int, cfg arch.Config) *core.Result {
		return Simulate(app, cfg, opts)
	})
	for i, cfg := range cfgs {
		s.Results[cfg.CEs()] = results[i]
	}
	normalize(s)
	return s
}

// Sweeps runs several applications' paper sweeps through one worker
// pool: the application × configuration grid is flattened into
// independent jobs, so a 4-worker pool stays busy even while one
// application's slowest configuration trails. Results are assembled in
// application order with each sweep normalized exactly as Sweep does.
func Sweeps(apps []perfect.App, opts Options) []*core.Sweep {
	cfgs := arch.PaperConfigs()
	type job struct {
		app int
		cfg arch.Config
	}
	jobs := make([]job, 0, len(apps)*len(cfgs))
	for a := range apps {
		for _, cfg := range cfgs {
			jobs = append(jobs, job{app: a, cfg: cfg})
		}
	}
	results := engine.Map(opts.Parallel, jobs, func(_ int, j job) *core.Result {
		return Simulate(apps[j.app], j.cfg, opts)
	})
	out := make([]*core.Sweep, len(apps))
	for a, app := range apps {
		out[a] = &core.Sweep{App: app.Name, Results: map[int]*core.Result{}}
	}
	for i, j := range jobs {
		out[j.app].Results[j.cfg.CEs()] = results[i]
	}
	for _, s := range out {
		normalize(s)
	}
	return out
}

// normalize sets every result's Scale so that the sweep's 1-processor
// CT in seconds equals the paper's published CT1.
func normalize(s *core.Sweep) {
	base := s.Base()
	if base == nil {
		return
	}
	paper := perfect.PaperCT1(s.App)
	if paper <= 0 {
		return
	}
	raw := arch.Seconds(int64(base.CT))
	if raw <= 0 {
		return
	}
	scale := paper / raw
	for _, r := range s.Results {
		r.Scale = scale
	}
}

// FaultReport is one FaultSweep entry: the degraded run under one
// fault plan plus its decomposition against the healthy baseline. Err
// is set when the degraded run ended abnormally (e.g. sim.ErrDeadlock
// from a plan that kills the machine); Run still carries the partial
// accounting then.
type FaultReport struct {
	Plan   faults.Plan
	Run    *Run
	Report *core.DegradedReport // nil when Err is set
	Err    error
}

// FaultSweep runs the application once healthy on the configuration
// (the baseline) and once per fault plan, comparing each degraded run
// against the baseline with the paper's overhead decomposition (the
// 1-processor run supplies the contention base). Runs use the same
// deterministic seeds as Simulate, so a sweep is reproducible run to
// run. Baseline failures abort the sweep; per-plan failures are
// recorded in the report and the sweep continues. The two baselines
// and the per-plan degraded runs each execute concurrently per
// Options.Parallel, with reports ordered by plan index.
func FaultSweep(app perfect.App, cfg arch.Config, plans []faults.Plan, opts Options) ([]*FaultReport, error) {
	healthy := opts
	healthy.Faults = nil
	type baseOut struct {
		res *core.Result
		err error
	}
	bases := engine.Map(opts.Parallel, []arch.Config{arch.Cedar1, cfg},
		func(_ int, c arch.Config) baseOut {
			res, err := SimulateErr(app, c, healthy)
			return baseOut{res, err}
		})
	for _, b := range bases {
		if b.err != nil {
			return nil, b.err
		}
	}
	base1p, baseline := bases[0].res, bases[1].res
	out := engine.Map(opts.Parallel, plans, func(_ int, plan faults.Plan) *FaultReport {
		po := opts
		po.Faults = plan
		fr := &FaultReport{Plan: plan}
		run, err := SimulateRunErr(app, cfg, po)
		fr.Run = run
		if err != nil {
			fr.Err = err
		} else {
			fr.Report, fr.Err = core.CompareDegraded(base1p, baseline, run.Result, plan.String())
		}
		return fr
	})
	return out, nil
}

// AllSweeps runs every paper application across every configuration,
// flattening the grid through one worker pool (see Sweeps).
func AllSweeps(opts Options) []*core.Sweep {
	return Sweeps(perfect.Apps(), opts)
}
