// Package cedar is the public facade of the Cedar overhead-
// characterization reproduction (Natarajan, Sharma, Iyer — ISCA 1994).
//
// One call simulates an application on a Cedar configuration with full
// instrumentation and returns the analysis-ready result:
//
//	res := cedar.Simulate(perfect.FLO52(), arch.Cedar32, cedar.Options{})
//	fmt.Println(res.OSShare(), res.Task(0).OverheadFraction())
//
// Sweep runs an application across the paper's five configurations and
// normalizes reported seconds so the 1-processor completion time
// matches the paper's Table 1 (the calibration policy in DESIGN.md);
// every multiprocessor quantity is model output.
package cedar

import (
	"hash/fnv"

	"repro/internal/arch"
	"repro/internal/cfrt"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hpm"
	"repro/internal/perfect"
	"repro/internal/sim"
	"repro/internal/statfx"
	"repro/internal/xylem"
)

// Options tune a simulation run.
type Options struct {
	// Steps overrides the app's timestep count when > 0 (smaller is
	// faster; overhead fractions are step-count invariant).
	Steps int
	// Seed overrides the deterministic seed derived from the app and
	// configuration when non-zero.
	Seed int64
	// SamplerInterval is the statfx sampling period in cycles;
	// defaults to 10000 (0.5 ms) when zero. Negative disables the
	// sampler.
	SamplerInterval sim.Duration
	// TraceCapacity enables the cedarhpm monitor with the given trace
	// buffer capacity when > 0.
	TraceCapacity int
	// TraceMask restricts recorded event kinds when non-zero (see
	// hpm.MaskFor).
	TraceMask uint32
	// Costs overrides the unit-cost model when non-nil.
	Costs *arch.CostModel
	// TreeFanout, when > 1, uses the software combining-tree barrier
	// (paper reference [16]) instead of the flat busy-wait barrier on
	// unclustered configurations.
	TreeFanout int
	// XdoallChunk, when > 1, claims chunks of XDOALL iterations per
	// global-lock pickup, amortizing the distribution overhead.
	XdoallChunk int
}

func (o Options) seed(app perfect.App, cfg arch.Config) int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	h := fnv.New64a()
	h.Write([]byte(app.Name))
	h.Write([]byte(cfg.Name))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}

// Run is a Simulate result plus the live simulation objects, for
// callers (tools, tests) that want to inspect traces or hardware
// statistics beyond the analysis result.
type Run struct {
	Result  *core.Result
	Machine *cluster.Machine
	OS      *xylem.OS
	RT      *cfrt.Runtime
	Monitor *hpm.Monitor // nil unless Options.TraceCapacity > 0
}

// Simulate runs one application on one configuration and returns the
// analysis result. The result's Scale is 1 (raw simulated seconds);
// Sweep sets the paper normalization.
func Simulate(app perfect.App, cfg arch.Config, opts Options) *core.Result {
	return SimulateRun(app, cfg, opts).Result
}

// SimulateRun is Simulate, returning the live simulation objects too.
func SimulateRun(app perfect.App, cfg arch.Config, opts Options) *Run {
	if err := app.Validate(); err != nil {
		panic(err)
	}
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if opts.Steps > 0 {
		app = app.WithSteps(opts.Steps)
	}
	costs := arch.DefaultCosts()
	if opts.Costs != nil {
		costs = *opts.Costs
	}

	k := sim.NewKernel(opts.seed(app, cfg))
	m := cluster.NewMachine(k, cfg, costs)
	o := xylem.New(m)

	var mon *hpm.Monitor
	if opts.TraceCapacity > 0 {
		mon = hpm.New(k, opts.TraceCapacity)
		if opts.TraceMask != 0 {
			mon.SetMask(opts.TraceMask)
		}
	}
	rt := cfrt.New(m, o, mon)
	rt.TreeFanout = opts.TreeFanout
	rt.XdoallChunk = opts.XdoallChunk

	var sampler *statfx.Sampler
	if opts.SamplerInterval >= 0 {
		interval := opts.SamplerInterval
		if interval == 0 {
			interval = 10_000
		}
		sampler = statfx.NewSampler(m, interval)
		rt.OnFinish = sampler.Stop
	}

	region := o.NewRegion(app.Name+".data", app.DataWords)
	rt.Run(app.Program(region))

	res := core.Collect(app.Name, 1, rt, sampler)
	return &Run{Result: res, Machine: m, OS: o, RT: rt, Monitor: mon}
}

// Sweep runs the app across the paper's five configurations and
// normalizes seconds so the 1-processor completion time matches the
// paper's (when the app is one of the five; synthetic apps keep
// Scale 1).
func Sweep(app perfect.App, opts Options) *core.Sweep {
	s := &core.Sweep{App: app.Name, Results: map[int]*core.Result{}}
	for _, cfg := range arch.PaperConfigs() {
		s.Results[cfg.CEs()] = Simulate(app, cfg, opts)
	}
	normalize(s)
	return s
}

// normalize sets every result's Scale so that the sweep's 1-processor
// CT in seconds equals the paper's published CT1.
func normalize(s *core.Sweep) {
	base := s.Base()
	if base == nil {
		return
	}
	paper := perfect.PaperCT1(s.App)
	if paper <= 0 {
		return
	}
	raw := arch.Seconds(int64(base.CT))
	if raw <= 0 {
		return
	}
	scale := paper / raw
	for _, r := range s.Results {
		r.Scale = scale
	}
}

// AllSweeps runs every paper application across every configuration.
func AllSweeps(opts Options) []*core.Sweep {
	var out []*core.Sweep
	for _, app := range perfect.Apps() {
		out = append(out, Sweep(app, opts))
	}
	return out
}
