package cedar

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/faults/replay"
	"repro/internal/perfect"
	"repro/internal/sim"
)

const corpusDir = "testdata/faultcorpus"

// TestCorpusReplay replays every checked-in scenario and verifies its
// declared outcome. This is the regression suite for the fail-stop
// page-fault deadlock: the ROADMAP schedule lives here and must keep
// completing.
func TestCorpusReplay(t *testing.T) {
	entries, err := replay.LoadCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatalf("corpus %s is empty; the regression scenarios are gone", corpusDir)
	}
	sawRoadmap := false
	for _, e := range entries {
		e := e
		t.Run(e.Scenario.Plan.String(), func(t *testing.T) {
			if _, err := CheckScenario(e.Scenario); err != nil {
				t.Errorf("%s:%d: %v", e.File, e.Line, err)
			}
		})
		if e.Scenario.Plan.String() == "ce:4x1.25@47085,ce:1@76414,module:3x2@23648" {
			sawRoadmap = true
		}
	}
	if !sawRoadmap {
		t.Error("the ROADMAP fail-stop schedule is missing from the corpus")
	}
}

// TestReplayBitIdentical: replaying the same scenario twice must
// produce byte-identical statfx output — the record/replay contract.
func TestReplayBitIdentical(t *testing.T) {
	sc, err := replay.Parse(
		"app=FLO52 config=8proc steps=1 seed=3327910339796038169 " +
			"plan=ce:4x1.25@47085,ce:1@76414,module:3x2@23648")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ReplayErr(sc)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	b, err := ReplayErr(sc)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	ta, tb := a.StatfxText(), b.StatfxText()
	if ta != tb {
		t.Fatalf("replays diverged:\n--- first ---\n%s--- second ---\n%s", ta, tb)
	}
	if !strings.Contains(ta, "faults seq=") || !strings.Contains(ta, "os ") {
		t.Fatalf("statfx text missing sections:\n%s", ta)
	}
}

func TestRecordScenarioRoundTrip(t *testing.T) {
	plan := mustPlan(t, "ce:1@76414,module:3x2@23648")
	sc := RecordScenario(perfect.FLO52(), arch.Cedar8, Options{Steps: 1, Faults: plan})
	if sc.Seed == 0 {
		t.Fatal("recorded scenario left the seed unresolved")
	}
	parsed, err := replay.Parse(sc.String())
	if err != nil {
		t.Fatalf("recorded line does not parse: %v", err)
	}
	if parsed.String() != sc.String() {
		t.Fatalf("record/parse round trip unstable:\n%s\n%s", sc, parsed)
	}
	// An explicit seed is recorded verbatim.
	sc2 := RecordScenario(perfect.FLO52(), arch.Cedar8, Options{Steps: 1, Seed: 77, Faults: plan})
	if sc2.Seed != 77 {
		t.Fatalf("explicit seed not recorded: %d", sc2.Seed)
	}
	// The recorded scenario replays to the same run as the original call.
	orig, err := SimulateRunErr(perfect.FLO52(), arch.Cedar8, Options{Steps: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayErr(sc)
	if err != nil {
		t.Fatal(err)
	}
	if orig.StatfxText() != rep.StatfxText() {
		t.Fatal("replaying the recorded scenario diverged from the original run")
	}
}

func TestOutcomeClassification(t *testing.T) {
	if got := Outcome(nil); got != replay.ExpectOK {
		t.Fatalf("Outcome(nil) = %q", got)
	}
	if got := Outcome(sim.ErrDeadlock); got != replay.ExpectDeadlock {
		t.Fatalf("Outcome(ErrDeadlock) = %q", got)
	}
	if got := Outcome(errors.New("boom")); got != replay.ExpectError {
		t.Fatalf("Outcome(err) = %q", got)
	}
}

func TestFaultWindowsFound(t *testing.T) {
	ws, err := FaultWindows(perfect.FLO52(), arch.Cedar8, Options{Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) == 0 {
		t.Fatal("no page-fault windows observed on a healthy run")
	}
	for i, w := range ws {
		if w.End < w.Start {
			t.Fatalf("window %d inverted: %+v", i, w)
		}
		if i > 0 && w.Start <= ws[i-1].End {
			t.Fatalf("windows %d and %d not disjoint ascending: %+v %+v", i-1, i, ws[i-1], w)
		}
	}
	// The ROADMAP kill time must land inside a discovered window — the
	// fuzzer aims where the bug actually was.
	const roadmapKill = sim.Time(76_414)
	hit := false
	for _, w := range ws {
		if roadmapKill >= w.Start && roadmapKill <= w.End {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("kill time %d outside every window %v", roadmapKill, ws)
	}
}

// TestShrinkErrDeadlock shrinks the kill-the-main-cluster deadlock and
// verifies the minimized scenario still deadlocks.
func TestShrinkErrDeadlock(t *testing.T) {
	if testing.Short() {
		t.Skip("shrinking replays the deadlock watchdog repeatedly")
	}
	var plan faults.Plan
	for ce := 0; ce < arch.Cedar16.CEsPerCluster; ce++ {
		plan = append(plan, faults.Event{Kind: faults.CEFail, Target: ce, At: 50_000})
	}
	sc := RecordScenario(perfect.FLO52(), arch.Cedar16, Options{Steps: 1, Faults: plan})
	shrunk, runs, err := ShrinkErr(sc, 24)
	if err != nil {
		t.Fatal(err)
	}
	if runs < 2 {
		t.Fatalf("shrinker spent only %d runs", runs)
	}
	if shrunk.Expect != replay.ExpectDeadlock {
		t.Fatalf("shrunk expectation %q, want deadlock", shrunk.Expect)
	}
	if len(shrunk.Plan) > len(sc.Plan) {
		t.Fatalf("shrinking grew the plan: %d -> %d events", len(sc.Plan), len(shrunk.Plan))
	}
	if _, err := CheckScenario(shrunk); err != nil {
		t.Fatalf("shrunk scenario no longer deadlocks: %v", err)
	}
	// A clean scenario refuses to shrink.
	ok := RecordScenario(perfect.FLO52(), arch.Cedar8,
		Options{Steps: 1, Faults: mustPlan(t, "ce:5@1e5")})
	if _, _, err := ShrinkErr(ok, 8); err == nil {
		t.Fatal("shrinking a clean scenario did not error")
	}
}

func TestReplayUnknownNames(t *testing.T) {
	plan := mustPlan(t, "ce:1@500")
	if _, err := ReplayErr(replay.Scenario{App: "NOPE", Config: "8proc", Plan: plan}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := ReplayErr(replay.Scenario{App: "FLO52", Config: "9000proc", Plan: plan}); err == nil {
		t.Fatal("unknown config accepted")
	}
}
