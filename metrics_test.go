package cedar

import (
	"os"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/metricreg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perfect"
)

// TestStatfxTextMatchesGolden pins the registry-backed StatfxText to
// the pre-registry captures: porting the accounting block onto the
// metric registry must not move a byte, or every recorded replay
// scenario comparison silently changes meaning.
func TestStatfxTextMatchesGolden(t *testing.T) {
	cases := []struct {
		golden string
		app    string
		plan   string
		cfg    arch.Config
	}{
		{golden: "testdata/golden/statfx_flo52_8p.txt", app: "FLO52", cfg: arch.Cedar8},
		{golden: "testdata/golden/statfx_ocean_8p_fault.txt", app: "OCEAN", plan: "ce:1@76414", cfg: arch.Cedar8},
		// The Scaled64–256 (and three-stage Deep64) captures predate the
		// struct-of-arrays machine state and the calendar-tiered event
		// queue; a drifted byte here means the intra-run fast path
		// changed simulation results, not just simulation speed.
		{golden: "testdata/golden/statfx_flo52_scaled64.txt", app: "FLO52", cfg: arch.Scaled64},
		{golden: "testdata/golden/statfx_ocean_scaled128.txt", app: "OCEAN", cfg: arch.Scaled128},
		{golden: "testdata/golden/statfx_flo52_scaled256.txt", app: "FLO52", cfg: arch.Scaled256},
		{golden: "testdata/golden/statfx_mdg_deep64.txt", app: "MDG", cfg: arch.Deep64},
	}
	for _, tc := range cases {
		want, err := os.ReadFile(tc.golden)
		if err != nil {
			t.Fatal(err)
		}
		app, _ := perfect.ByName(tc.app)
		opts := Options{Steps: 2}
		if tc.plan != "" {
			if opts.Faults, err = faults.Parse(tc.plan); err != nil {
				t.Fatal(err)
			}
		}
		got := SimulateRun(app, tc.cfg, opts).StatfxText()
		if got != string(want) {
			t.Fatalf("%s: StatfxText differs from golden:\n%s", tc.golden, got)
		}
	}
}

// TestRunMetricsRegistry: the lazily built registry carries the full
// result decomposition, dense, and agrees with the Result it was built
// from.
func TestRunMetricsRegistry(t *testing.T) {
	app, _ := perfect.ByName("FLO52")
	run := SimulateRun(app, arch.Cedar8, Options{Steps: 2, TraceCapacity: 1 << 14})
	snap := run.Metrics().Snapshot()

	if got := snap.Value("ct_cycles"); got != float64(run.Result.CT) {
		t.Fatalf("ct_cycles = %g, want %d", got, int64(run.Result.CT))
	}
	ot, ok := snap.Get("os_time_cycles")
	if !ok || len(ot.Cells) != int(metrics.NumOSCategories) {
		t.Fatalf("os_time_cycles cells = %d, want %d", len(ot.Cells), metrics.NumOSCategories)
	}
	if ot.Cells[0].Label[0] != metrics.OSCategory(0).String() {
		t.Fatalf("os axis label = %q", ot.Cells[0].Label[0])
	}
	bc, _ := snap.Get("ce_category_cycles")
	wantCells := len(run.Result.Accounts) * int(metrics.NumCategories)
	if len(bc.Cells) != wantCells {
		t.Fatalf("ce_category_cycles cells = %d, want %d", len(bc.Cells), wantCells)
	}
	ev, ok := snap.Get("hpm_events_total")
	if !ok {
		t.Fatal("traced run has no hpm_events_total")
	}
	total := 0.0
	for _, c := range ev.Cells {
		total += c.Value
	}
	if total == 0 {
		t.Fatal("hpm_events_total all zero on a traced run")
	}
	if _, ok := snap.Get("hpm_trace_dropped_total"); !ok {
		t.Fatal("traced run has no hpm_trace_dropped_total")
	}

	// The registry renders in every exporter without error.
	var b strings.Builder
	if err := metricreg.WriteProm(&b, snap, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "cedar_ct_cycles ") {
		t.Fatalf("prom export missing ct_cycles:\n%s", b.String())
	}
}

// TestObservedRunSharesRegistryWithSeries: with Observe on, the live
// probes are registry metrics, the collector samples them under the
// same names (column order preserved), and the post-run registry holds
// both the live probes and the result metrics.
func TestObservedRunSharesRegistryWithSeries(t *testing.T) {
	app, _ := perfect.ByName("FLO52")
	run := SimulateRun(app, arch.Cedar8, Options{Steps: 2,
		Observe: &obs.Options{SeriesInterval: 500}})
	names := run.Series.Names()
	if len(names) == 0 || names[0] != "concurrency" {
		t.Fatalf("series names = %v", names)
	}
	snap := run.Metrics().Snapshot()
	for _, n := range names {
		if _, ok := snap.Get(n); !ok {
			t.Fatalf("series probe %q missing from the registry", n)
		}
	}
	if _, ok := snap.Get("os_time_cycles"); !ok {
		t.Fatal("observed run registry missing result metrics")
	}
	if _, ok := snap.Get("obs_series_samples_total"); !ok {
		t.Fatal("observed run registry missing series drop accounting")
	}
}

// TestDroppedEventsAccounting: a trace buffer too small for the run
// reports its overflow through DroppedEvents and the registry.
func TestDroppedEventsAccounting(t *testing.T) {
	app, _ := perfect.ByName("FLO52")
	run := SimulateRun(app, arch.Cedar8, Options{Steps: 2, TraceCapacity: 8})
	if run.DroppedEvents() == 0 {
		t.Fatal("tiny trace buffer dropped nothing")
	}
	snap := run.Metrics().Snapshot()
	if snap.Value("hpm_trace_dropped_total") != float64(run.Monitor.Dropped()) {
		t.Fatalf("registry drop count %g != monitor %d",
			snap.Value("hpm_trace_dropped_total"), run.Monitor.Dropped())
	}
}
