// Construct choice: build the same loop nest as a hierarchical
// SDOALL/CDOALL and as a flat XDOALL (using the synthetic workload
// generator) and compare the distribution overheads across processor
// counts — Section 6's finding that "the parallel loop distribution
// overhead is as high as 6-10% of the application completion time for
// the flat parallel loop construct", versus under 1% for the
// hierarchical one, because every CE in an XDOALL individually
// test-and-sets the global iteration lock.
//
//	go run ./examples/constructs
package main

import (
	"fmt"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/perfect"
)

func pickShare(r *core.Result) float64 {
	var pick float64
	for _, a := range r.Accounts {
		pick += float64(a.Get(metrics.CatPickIter))
	}
	return pick / (float64(r.CT) * float64(r.Cfg.CEs()))
}

func main() {
	build := func(kind perfect.PhaseKind, name string) perfect.App {
		return perfect.SyntheticSpec{
			Name:  name,
			Steps: 4, LoopsPerStep: 6, Kind: kind,
			Outer: 16, Inner: 16,
			Work: 1800, Jitter: 0.1,
			GMWords: 48, ClusWords: 64,
		}.App()
	}
	sdo := build(perfect.PhaseSX, "sdoall-version")
	xdo := build(perfect.PhaseX, "xdoall-version")

	fmt.Println("same loop nest, two constructs (iteration-pickup overhead, % of CT):")
	fmt.Printf("%8s %16s %16s %14s\n", "config", "sdoall/cdoall", "xdoall", "CT ratio x/s")
	for _, cfg := range arch.PaperConfigs() {
		rs := cedar.Simulate(sdo, cfg, cedar.Options{})
		rx := cedar.Simulate(xdo, cfg, cedar.Options{})
		fmt.Printf("%7dp %15.2f%% %15.2f%% %14.3f\n",
			cfg.CEs(), pickShare(rs)*100, pickShare(rx)*100,
			float64(rx.CT)/float64(rs.CT))
	}

	fmt.Println(`
The hierarchical construct's pickup stays negligible at every size: only
one processor per cluster requests outer iterations from global memory,
and the inner CDOALL is distributed by the concurrency bus with no
network traffic. The flat construct's pickup grows with the processor
count as the test-and-sets serialize at the iteration lock's memory
module. (Completion time can still favor XDOALL when global
self-scheduling balances the load better — the paper notes xdoalls
"were often used for convenience"; the overhead, not always the total
time, is what clustering removes.)`)
}
