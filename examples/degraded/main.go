// Degraded-mode simulation: FLO52 on the 4-cluster/32-processor Cedar
// losing one CE per cluster mid-run, compared against the healthy
// machine with the paper's overhead decomposition. The failed CEs are
// the last of each cluster (never a cluster lead, so every cluster
// task keeps running); each cluster's CDOALLs then self-schedule over
// seven CEs instead of eight.
//
//	go run ./examples/degraded
package main

import (
	"fmt"
	"os"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perfect"
)

func main() {
	app := perfect.FLO52()
	cfg := arch.Cedar32

	// One fail-stop per cluster at 1M cycles (50 ms of virtual time):
	// the last CE of each cluster, machine-wide ids 7, 15, 23, 31.
	var plan faults.Plan
	for c := 0; c < cfg.Clusters; c++ {
		plan = append(plan, faults.Event{
			Kind:   faults.CEFail,
			Target: c*cfg.CEsPerCluster + cfg.CEsPerCluster - 1,
			At:     1_000_000,
		})
	}

	reports, err := cedar.FaultSweep(app, cfg, []faults.Plan{plan}, cedar.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "degraded: baseline run failed:", err)
		os.Exit(1)
	}
	fr := reports[0]

	fmt.Println("Fault activations:")
	for _, a := range fr.Run.Injector.Applied() {
		fmt.Printf("  cycle %-10d %s\n", int64(a.At), a.Note)
	}
	fmt.Println()

	if fr.Err != nil {
		fmt.Fprintln(os.Stderr, "degraded: run failed:", fr.Err)
		os.Exit(1)
	}
	fmt.Print(core.FormatDegraded(fr.Report))
}
