// Example observability: run FLO52 on the 2-cluster Cedar with the
// obs layer armed, export all three artifact formats, and print a
// short digest of what they contain.
//
// The same artifacts come from the CLI:
//
//	cedarsim -app FLO52 -ces 16 -trace t.json -profile p.folded -series s.csv
//
// and machine-readable event summaries from:
//
//	cedartrace -app FLO52 -ces 16 -summary -json | jq .event_counts
package main

import (
	"fmt"
	"os"
	"path/filepath"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/perfect"
)

func main() {
	run := cedar.SimulateRun(perfect.FLO52(), arch.Cedar16, cedar.Options{
		Steps:         1,
		TraceCapacity: 1 << 20,
		Observe:       &obs.Options{},
	})

	dir, err := os.MkdirTemp("", "cedar-obs")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err == nil {
			err = fn(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
			os.Exit(1)
		}
		return path
	}

	trace := write("flo52.trace.json", func(f *os.File) error {
		return obs.WriteTrace(f, run.TraceBundle())
	})
	profile := write("flo52.folded", func(f *os.File) error {
		return obs.WriteFolded(f, run.Result.App, run.Result.CT, run.Machine.Accounts())
	})
	series := write("flo52.series.csv", func(f *os.File) error {
		return obs.WriteCSV(f, run.Series)
	})

	bundle := run.TraceBundle()
	fmt.Printf("FLO52 on %s: %d cycles\n", run.Machine.Cfg.Name, run.Result.CT)
	fmt.Printf("  %-28s %d spans, %d instants (open at ui.perfetto.dev)\n",
		filepath.Base(trace), len(bundle.Spans), len(bundle.Instants))
	fmt.Printf("  %-28s per-CE weights each sum to CT = %d cycles\n",
		filepath.Base(profile), int64(run.Result.CT))
	mean, _ := run.Series.Mean("concurrency")
	fmt.Printf("  %-28s %d samples, mean concurrency %.2f\n",
		filepath.Base(series), run.Series.Len(), mean)
	fmt.Printf("artifacts in %s\n", dir)
}
