// Quickstart: simulate one Perfect Benchmark application on the full
// 4-cluster/32-processor Cedar and decompose its completion time the
// way the paper does — operating system overheads, parallelization
// overheads, and global memory / network contention.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/perfect"
)

func main() {
	app := perfect.FLO52()

	// Run the instrumented simulation on the 1-processor baseline and
	// the full machine. The baseline supplies the "minimum possible
	// total processing time" the contention methodology needs.
	base, err := cedar.SimulateErr(app, arch.Cedar1, cedar.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart: baseline run failed:", err)
		os.Exit(1)
	}
	full, err := cedar.SimulateErr(app, arch.Cedar32, cedar.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart: 32-processor run failed:", err)
		os.Exit(1)
	}

	// Report in paper-scale seconds (1-processor CT normalized to the
	// published 613 s for FLO52).
	scale := perfect.PaperCT1(app.Name) / arch.Seconds(int64(base.CT))
	base.Scale, full.Scale = scale, scale

	fmt.Printf("%s on the 4-cluster Cedar\n", app.Name)
	fmt.Printf("  completion time: %.0f s (1 processor: %.0f s)\n",
		full.CTSeconds(), base.CTSeconds())
	fmt.Printf("  speedup: %.2f   average concurrency: %.2f\n\n",
		full.Speedup(base), full.MachineConcurrency())

	// (1) Operating system overheads — Section 5.
	fmt.Printf("operating system overhead: %.1f%% of CT (paper band: 5-21%%)\n",
		full.OSShare()*100)
	for _, row := range full.OSDetail() {
		if row.Seconds > 0.005 {
			fmt.Printf("  %-16s %6.2f s  %5.2f%%\n", row.Category, row.Seconds, row.Percent)
		}
	}
	fmt.Println()

	// (2) Parallelization overheads — Section 6.
	main := full.Task(0)
	fmt.Printf("parallelization overhead, main task: %.1f%% of CT (paper: 10-25%%)\n",
		main.OverheadFraction()*100)
	fmt.Printf("  loop setup %.1f%%  iteration pickup %.1f%%  barrier wait %.1f%%\n",
		main.Setup*100, main.Pick*100, main.Barrier*100)
	for c := 1; c < full.Cfg.Clusters; c++ {
		h := full.Task(c)
		fmt.Printf("parallelization overhead, helper %d: %.1f%% (helper wait %.1f%%)\n",
			c, h.OverheadFraction()*100, h.HelperWait*100)
	}
	fmt.Println()

	// (3) Global memory and network contention — Section 7.
	cont, err := core.ContentionOverhead(base, full)
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart: contention estimate failed:", err)
		os.Exit(1)
	}
	fmt.Printf("contention overhead: Tp_actual %.0f s vs Tp_ideal %.0f s -> %.1f%% of CT (paper: 8-21%%)\n",
		full.Seconds(cont.TpActual), full.Seconds(cont.TpIdeal), cont.OvCont)
	fmt.Printf("parallel loop concurrency per cluster (Table 3): %.2f\n\n",
		full.ParallelLoopConcurrency())

	fmt.Printf("total overhead share: %.0f%% of CT (paper conclusion: 30-50%%)\n",
		core.TotalOverheadShare(base, full)*100)
}
