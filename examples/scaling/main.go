// Scaling study: run one application across all five Cedar
// configurations (1, 4, 8, 16, 32 processors) and reproduce its
// Table-1 column group — completion times, speedups, average
// concurrency — plus the overhead growth the paper attributes the
// sublinearity to.
//
//	go run ./examples/scaling -app MDG
package main

import (
	"flag"
	"fmt"
	"os"

	cedar "repro"
	"repro/internal/core"
	"repro/internal/perfect"
)

func main() {
	appName := flag.String("app", "MDG", "FLO52, ARC2D, MDG, OCEAN, or ADM")
	flag.Parse()

	app, ok := perfect.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown application %q\n", *appName)
		os.Exit(2)
	}

	fmt.Printf("simulating %s across Cedar configurations...\n\n", app.Name)
	sweep := cedar.Sweep(app, cedar.Options{})
	base := sweep.Base()
	paper := perfect.PaperTable1[app.Name]

	fmt.Printf("%8s %10s %10s %10s %12s %12s\n",
		"config", "CT (s)", "speedup", "paper", "concurrency", "OS share")
	for _, p := range sweep.Configs() {
		r := sweep.Results[p]
		speedup, paperSpeedup := "-", "-"
		if p > 1 {
			speedup = fmt.Sprintf("%.2f", r.Speedup(base))
			paperSpeedup = fmt.Sprintf("%.2f", paper.Speedup[p])
		}
		fmt.Printf("%7dp %10.0f %10s %10s %12.2f %11.1f%%\n",
			p, r.CTSeconds(), speedup, paperSpeedup,
			r.MachineConcurrency(), r.OSShare()*100)
	}

	fmt.Println("\nwhere the time goes as the machine grows (main task, % of CT):")
	fmt.Printf("%8s %8s %8s %8s %10s %12s\n",
		"config", "serial", "iters", "barrier", "OS", "contention")
	for _, p := range sweep.Configs() {
		r := sweep.Results[p]
		t := r.Task(0)
		cont := "-"
		if p > 1 {
			c, err := core.ContentionOverhead(base, r)
			if err == nil {
				cont = fmt.Sprintf("%.1f%%", c.OvCont)
			}
		}
		fmt.Printf("%7dp %7.1f%% %7.1f%% %7.1f%% %9.1f%% %12s\n",
			p, t.Serial*100, t.Iter*100, t.Barrier*100, r.OSShare()*100, cont)
	}

	fmt.Println("\nkey paper findings to look for:")
	fmt.Println("  - speedups stay below average concurrency (overheads eat active time)")
	fmt.Println("  - the OS share grows with the processor count")
	fmt.Println("  - barrier wait appears once multiple clusters are involved")
}
