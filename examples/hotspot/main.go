// Hot spots: what if Cedar had been built as 32 independent processors
// instead of 4 clusters of 8? Section 6 argues every loop barrier
// would synchronize 32 tasks through global memory, turning the
// barrier word into a hot spot that "could severely degrade
// performance for all traffic in the multistage interconnection
// network" (Pfister & Norton, ref [15]) — unless special mechanisms
// like software combining trees (Yew, Tzeng, Lawrie, ref [16]) spread
// the load.
//
// This example runs a barrier-heavy workload three ways and shows the
// hot spot appearing and then being dissolved:
//
//  1. the real clustered Cedar (barriers localized per cluster),
//
//  2. the flat 32-processor machine with a busy-wait barrier,
//
//  3. the flat machine with a combining-tree barrier.
//
//     go run ./examples/hotspot
package main

import (
	"fmt"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/perfect"
)

func main() {
	app := perfect.FineGrained() // many small cross-cluster loops

	type variant struct {
		name string
		cfg  arch.Config
		opts cedar.Options
	}
	variants := []variant{
		{"clustered (4x8, concurrency bus)", arch.Cedar32, cedar.Options{}},
		{"flat 32, busy-wait barrier", arch.Unclustered32, cedar.Options{}},
		{"flat 32, combining tree (fanout 4)", arch.Unclustered32, cedar.Options{TreeFanout: 4}},
	}

	fmt.Printf("%-36s %12s %14s %16s\n", "machine", "CT (cycles)", "hot port", "port queueing")
	var baseline float64
	for i, v := range variants {
		run := cedar.SimulateRun(app, v.cfg, v.opts)
		ct := float64(run.Result.CT)
		if i == 0 {
			baseline = ct
		}
		hotName, hotDelay := run.Machine.GM.Net().MaxPortDelay()
		fmt.Printf("%-36s %12.0f %14s %13d cy   (%.2fx clustered)\n",
			v.name, ct, hotName, hotDelay, ct/baseline)
	}

	fmt.Println(`
Reading the result:
  - The clustered machine synchronizes inside each cluster over the
    concurrency bus; only one processor per cluster touches global
    memory for the barrier, so no port melts.
  - The flat machine's busy-wait barrier drives every CE's polls at one
    memory module: its return-path port shows queueing orders of
    magnitude above anything on the clustered machine, and completion
    time suffers.
  - The combining tree spreads arrivals across many words on many
    modules: the hot spot collapses and most of the lost time comes
    back — exactly the mechanism the paper says would be "needed to
    reduce the hot spot effect".`)
}
