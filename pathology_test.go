package cedar

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/perfect"
)

// pathApp builds a minimal app around the given phases, with the
// footprint floored at the validation minimum.
func pathApp(name string, dataWords int64, hit float64, phases ...perfect.Phase) perfect.App {
	a := perfect.App{Name: name, Steps: 2, DataWords: dataWords, CacheHitRatio: hit, Phases: phases}
	if m := a.MinDataWords(); a.DataWords < m {
		a.DataWords = m
	}
	return a
}

// TestPathologyDetectorsHealthy pins the detectors' negative side:
// none of the registry workloads (paper apps and presets) trip any
// detector on the paper configurations the fuzzer sweeps.
func TestPathologyDetectorsHealthy(t *testing.T) {
	for _, app := range perfect.Registry() {
		for _, cfg := range []arch.Config{arch.Cedar8, arch.Cedar32} {
			run := SimulateRun(app, cfg, Options{Steps: 2})
			if p := run.Pathologies(); len(p) != 0 {
				t.Errorf("%s on %s: unexpected pathologies %v", app.Name, cfg.Name, p)
			}
		}
	}
}

// TestPathologyDetectorsPositive pins one canonical reproduction per
// pathology class. These are the corners the generator's fuzz sweep
// hunts, reduced to hand-sized apps.
func TestPathologyDetectorsPositive(t *testing.T) {
	cases := []struct {
		app  perfect.App
		want []string
	}{
		{
			// Stride 32 aliases every access onto a handful of the 32
			// word-interleaved modules; tiny Work keeps the traffic hot.
			pathApp("hot", 4096, 0.98, perfect.Phase{
				Name: "h", Kind: perfect.PhaseX, Repeat: 8, Inner: 2048,
				Work: 10, GMWords: 4, GMStride: 32}),
			[]string{PathologyHotSpot},
		},
		{
			// Inner barely exceeds the CE count with full work jitter:
			// every one of the 100 barriers convoys behind a straggler.
			pathApp("convoy", 8192, 0.95, perfect.Phase{
				Name: "c", Kind: perfect.PhaseX, Repeat: 50, Inner: 9,
				Work: 10000, WorkJitter: 1.0, GMWords: 1}),
			[]string{PathologyBarrierConvoy},
		},
		{
			// A megaword footprint walked at a scattered stride with a
			// 5% cache hit ratio faults continuously.
			pathApp("storm", 1<<20, 0.05, perfect.Phase{
				Name: "s", Kind: perfect.PhaseX, Inner: 512, Work: 200,
				GMWords: 8, GMStride: 997}),
			[]string{PathologyPageStorm},
		},
	}
	for _, tc := range cases {
		if err := tc.app.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.app.Name, err)
		}
		run := SimulateRun(tc.app, arch.Cedar8, Options{})
		if got := run.Pathologies(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Pathologies() = %v, want %v", tc.app.Name, got, tc.want)
		}
	}
}

// TestPathologiesDeterministic: the shrink predicate replays the same
// app repeatedly, so detection must be stable run to run.
func TestPathologiesDeterministic(t *testing.T) {
	app := pathApp("hot", 4096, 0.98, perfect.Phase{
		Name: "h", Kind: perfect.PhaseX, Repeat: 8, Inner: 2048,
		Work: 10, GMWords: 4, GMStride: 32})
	first := SimulateRun(app, arch.Cedar8, Options{}).Pathologies()
	for i := 0; i < 2; i++ {
		if got := SimulateRun(app, arch.Cedar8, Options{}).Pathologies(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: Pathologies() = %v, previously %v", i+2, got, first)
		}
	}
}
