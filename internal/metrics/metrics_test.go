package metrics

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestCategoryNames(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "" {
			t.Fatalf("category %d unnamed", c)
		}
	}
	if Category(99).String() != "Category(99)" {
		t.Fatal("out-of-range category misformatted")
	}
}

func TestCategoryClassification(t *testing.T) {
	// Figure 3: user time includes user-level spinning; OS categories
	// and idle are not user time.
	for _, c := range []Category{CatSerial, CatMCLoop, CatLoopIter, CatGMStall,
		CatCacheStall, CatLoopSetup, CatPickIter, CatBarrierWait, CatHelperWait} {
		if !c.IsUser() {
			t.Errorf("%v should be user time", c)
		}
	}
	for _, c := range []Category{CatOSSystem, CatOSInterrupt, CatOSSpin, CatIdle} {
		if c.IsUser() {
			t.Errorf("%v should not be user time", c)
		}
	}

	// Section 6: exactly four parallelization overheads.
	n := 0
	for c := Category(0); c < NumCategories; c++ {
		if c.IsParallelizationOverhead() {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("%d parallelization overheads, want 4", n)
	}

	// statfx: only parked CEs are inactive.
	for c := Category(0); c < NumCategories; c++ {
		if (c == CatIdle) == c.IsActive() {
			t.Errorf("%v active=%v wrong", c, c.IsActive())
		}
	}
}

func TestAccountTotals(t *testing.T) {
	a := NewAccount(5)
	if a.CE() != 5 {
		t.Fatal("CE id lost")
	}
	a.Add(CatSerial, 100)
	a.Add(CatOSSystem, 50)
	a.Add(CatBarrierWait, 25)
	a.Add(CatIdle, 10)
	if a.Total() != 185 {
		t.Fatalf("total = %d", a.Total())
	}
	if a.UserTotal() != 125 {
		t.Fatalf("user = %d", a.UserTotal())
	}
	if a.OverheadTotal() != 25 {
		t.Fatalf("overhead = %d", a.OverheadTotal())
	}
	if a.ActiveTotal() != 175 {
		t.Fatalf("active = %d", a.ActiveTotal())
	}
}

func TestAccountNegativeChargePanics(t *testing.T) {
	a := NewAccount(0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge accepted")
		}
	}()
	a.Add(CatSerial, -1)
}

func TestOSBreakdown(t *testing.T) {
	var b OSBreakdown
	b.Add(OSCpi, 100)
	b.Add(OSCpi, 50)
	b.Add(OSCtx, 30)
	if b.Time[OSCpi] != 150 || b.Count[OSCpi] != 2 {
		t.Fatalf("cpi = %d/%d", b.Time[OSCpi], b.Count[OSCpi])
	}
	if b.Total() != 180 {
		t.Fatalf("total = %d", b.Total())
	}

	var c OSBreakdown
	c.Add(OSAst, 7)
	b.Merge(&c)
	if b.Total() != 187 || b.Count[OSAst] != 1 {
		t.Fatal("merge failed")
	}
}

func TestOSCategoryNamesMatchPaper(t *testing.T) {
	want := map[OSCategory]string{
		OSCpi:         "cpi",
		OSCtx:         "ctx",
		OSPgFltConc:   "pg flt (c)",
		OSPgFltSeq:    "pg flt (s)",
		OSCrSectClus:  "Cr Sect (clus)",
		OSCrSectGlbl:  "Cr Sect (glbl)",
		OSClusSyscall: "clus syscall",
		OSGlblSyscall: "glbl syscall",
		OSAst:         "ast",
	}
	for cat, name := range want {
		if cat.String() != name {
			t.Errorf("%d: %q != %q", cat, cat.String(), name)
		}
	}
}

func TestQuickAccountSumsMatch(t *testing.T) {
	f := func(charges []uint16) bool {
		a := NewAccount(0)
		var total, user int64
		for i, raw := range charges {
			c := Category(i % int(NumCategories))
			a.Add(c, sim.Duration(raw))
			total += int64(raw)
			if c.IsUser() {
				user += int64(raw)
			}
		}
		return int64(a.Total()) == total && int64(a.UserTotal()) == user
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
