// Package metrics defines the time-accounting vocabulary shared by the
// hardware, OS, and runtime models: every cycle a CE spends is charged
// to exactly one Category, and per-CE Accounts are later folded by the
// analysis package into the paper's completion-time and user-time
// breakdowns (Figures 2–9).
package metrics

import (
	"fmt"

	"repro/internal/sim"
)

// Category classifies what a CE was doing during a span of virtual
// time. The categories are chosen so the paper's two breakdowns fold
// exactly:
//
//   - Figure 3 (CT breakdown): user = Serial..CacheStall + RTL
//     categories (user-level spinning is user time in the paper);
//     system = OSSystem; interrupt = OSInterrupt; spin = OSSpin.
//   - Figure 4 (user time breakdown): below-the-line = Serial, MCLoop,
//     LoopIter (+ their stall components); above-the-line
//     parallelization overheads = LoopSetup, PickIter, BarrierWait,
//     HelperWait.
type Category int

const (
	// CatSerial is main-task serial user code outside any loop.
	CatSerial Category = iota
	// CatMCLoop is execution of main-cluster-only loops (CDOALL or
	// CDOACROSS without an outer spread loop).
	CatMCLoop
	// CatLoopIter is execution of s(x)doall loop iteration bodies.
	CatLoopIter
	// CatGMStall is processor stall on global memory and network
	// (request issue to data return), charged while executing user
	// code.
	CatGMStall
	// CatCacheStall is stall on the cluster shared cache / cluster
	// memory.
	CatCacheStall
	// CatLoopSetup is runtime-library time setting up parallel loop
	// parameters.
	CatLoopSetup
	// CatPickIter is runtime-library time picking up loop iterations
	// and determining that none are left.
	CatPickIter
	// CatBarrierWait is main-task time spin-waiting at the s(x)doall
	// finish barrier.
	CatBarrierWait
	// CatHelperWait is helper-task time busy-waiting for parallel loop
	// work.
	CatHelperWait
	// CatOSSystem is system time: syscalls, context switches, critical
	// sections, page fault service.
	CatOSSystem
	// CatOSInterrupt is interrupt time: cross-processor interrupts,
	// software interrupts, ASTs.
	CatOSInterrupt
	// CatOSSpin is kernel lock spin time.
	CatOSSpin
	// CatIdle is time a CE is idle (no task scheduled on it).
	CatIdle

	// NumCategories is the number of accounting categories.
	NumCategories
)

var categoryNames = [NumCategories]string{
	"serial", "mc-loop", "loop-iter", "gm-stall", "cache-stall",
	"loop-setup", "pick-iter", "barrier-wait", "helper-wait",
	"os-system", "os-interrupt", "os-spin", "idle",
}

// String implements fmt.Stringer.
func (c Category) String() string {
	if c < 0 || c >= NumCategories {
		return fmt.Sprintf("Category(%d)", int(c))
	}
	return categoryNames[c]
}

// IsUser reports whether the category counts as user time in the
// paper's Figure 3 breakdown (which folds user-level spinning and
// runtime-library work into user time).
func (c Category) IsUser() bool {
	switch c {
	case CatSerial, CatMCLoop, CatLoopIter, CatGMStall, CatCacheStall,
		CatLoopSetup, CatPickIter, CatBarrierWait, CatHelperWait:
		return true
	}
	return false
}

// IsParallelizationOverhead reports whether the category is one of the
// Section-6 parallelization overheads (above the line in Figure 4).
func (c Category) IsParallelizationOverhead() bool {
	switch c {
	case CatLoopSetup, CatPickIter, CatBarrierWait, CatHelperWait:
		return true
	}
	return false
}

// IsActive reports whether a CE in this category counts as "active"
// for the statfx concurrency measure: executing instructions, in user
// or kernel space. Spin-waiting counts — a spinning CE executes its
// poll loop — which is what makes the paper's Section-7 equation
// consistent: "the concurrency during non-parallel work such as serial
// code execution, picking up iterations for the sdoall loops,
// spin-waiting at the barrier, and busy-waiting for work, is 1 on each
// cluster" (only the task's lead CE spins; its siblings are parked by
// the gang scheduler). Only a parked CE is inactive.
func (c Category) IsActive() bool { return c != CatIdle }

// Account accumulates per-category time for one CE.
type Account struct {
	ce     int // global CE index
	totals [NumCategories]sim.Duration
}

// NewAccount creates an account for the CE with the given global
// index.
func NewAccount(ce int) *Account { return &Account{ce: ce} }

// NewAccountBlock allocates n accounts in one contiguous block, with
// global CE indices 0..n-1. The machine uses this so every CE's totals
// live side by side — the accounting hot path (one Add per Spend) and
// whole-machine folds then walk dense memory instead of n scattered
// heap objects.
func NewAccountBlock(n int) []Account {
	block := make([]Account, n)
	for i := range block {
		block[i].ce = i
	}
	return block
}

// CE returns the global CE index the account belongs to.
func (a *Account) CE() int { return a.ce }

// Add charges d cycles to category c.
func (a *Account) Add(c Category, d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative charge %d to %v", d, c))
	}
	a.totals[c] += d
}

// Get returns the total charged to category c.
func (a *Account) Get(c Category) sim.Duration { return a.totals[c] }

// Total returns the sum over all categories.
func (a *Account) Total() sim.Duration {
	var t sim.Duration
	for _, v := range a.totals {
		t += v
	}
	return t
}

// UserTotal returns the sum over user categories (paper Figure 3).
func (a *Account) UserTotal() sim.Duration {
	var t sim.Duration
	for c := Category(0); c < NumCategories; c++ {
		if c.IsUser() {
			t += a.totals[c]
		}
	}
	return t
}

// ActiveTotal returns the sum over active categories (statfx).
func (a *Account) ActiveTotal() sim.Duration {
	var t sim.Duration
	for c := Category(0); c < NumCategories; c++ {
		if c.IsActive() {
			t += a.totals[c]
		}
	}
	return t
}

// OverheadTotal returns the sum over parallelization-overhead
// categories (paper Section 6).
func (a *Account) OverheadTotal() sim.Duration {
	var t sim.Duration
	for c := Category(0); c < NumCategories; c++ {
		if c.IsParallelizationOverhead() {
			t += a.totals[c]
		}
	}
	return t
}

// OSCategory identifies one row of the paper's Table 2 — the detailed
// operating system activities.
type OSCategory int

const (
	// OSCpi is cross-processor interrupt servicing.
	OSCpi OSCategory = iota
	// OSCtx is context switching.
	OSCtx
	// OSPgFltConc is concurrent page fault handling.
	OSPgFltConc
	// OSPgFltSeq is sequential page fault handling.
	OSPgFltSeq
	// OSCrSectClus is cluster critical section / resource access.
	OSCrSectClus
	// OSCrSectGlbl is global critical section / resource access.
	OSCrSectGlbl
	// OSClusSyscall is cluster system call servicing.
	OSClusSyscall
	// OSGlblSyscall is global system call servicing.
	OSGlblSyscall
	// OSAst is asynchronous system trap servicing.
	OSAst

	// NumOSCategories is the number of detailed OS categories.
	NumOSCategories
)

var osCategoryNames = [NumOSCategories]string{
	"cpi", "ctx", "pg flt (c)", "pg flt (s)",
	"Cr Sect (clus)", "Cr Sect (glbl)",
	"clus syscall", "glbl syscall", "ast",
}

// String implements fmt.Stringer using the paper's Table 2 labels.
func (c OSCategory) String() string {
	if c < 0 || c >= NumOSCategories {
		return fmt.Sprintf("OSCategory(%d)", int(c))
	}
	return osCategoryNames[c]
}

// OSBreakdown accumulates the Table-2 detail: per-activity time and
// event counts, machine-wide.
type OSBreakdown struct {
	Time  [NumOSCategories]sim.Duration
	Count [NumOSCategories]uint64
}

// Add charges d cycles and one event to OS activity c.
func (b *OSBreakdown) Add(c OSCategory, d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: negative OS charge %d to %v", d, c))
	}
	b.Time[c] += d
	b.Count[c]++
}

// Total returns the total time across all OS activities.
func (b *OSBreakdown) Total() sim.Duration {
	var t sim.Duration
	for _, v := range b.Time {
		t += v
	}
	return t
}

// Merge adds other into b.
func (b *OSBreakdown) Merge(other *OSBreakdown) {
	for i := range b.Time {
		b.Time[i] += other.Time[i]
		b.Count[i] += other.Count[i]
	}
}
