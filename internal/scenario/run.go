package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/benchcmp"
	"repro/internal/engine"
	"repro/internal/sim"
)

// Record is one extracted measurement: scenario × metric, stamped with
// the run's full identity (app, config, scale, seed, steps, plan) so a
// capture is self-describing — a diff that fails names exactly which
// experiment moved. Tol 0 means the value is deterministic model
// output and must match the baseline exactly; a positive Tol marks a
// wall-clock measurement gated within that fraction.
type Record struct {
	Scenario string  `json:"scenario"`
	App      string  `json:"app"`
	Config   string  `json:"config"`
	Scale    int     `json:"scale,omitempty"`
	Steps    int     `json:"steps,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Plan     string  `json:"plan,omitempty"`
	Metric   string  `json:"metric"`
	Unit     string  `json:"unit,omitempty"`
	Value    float64 `json:"value"`
	Tol      float64 `json:"tol,omitempty"`
}

// Key identifies the record in a diff: scenario/metric.
func (r Record) Key() string { return r.Scenario + "/" + r.Metric }

// RunCtx executes one scenario through the cedar facade and extracts
// its metric records. wallclock additionally measures
// MetricWallEventsPerSec (nondeterministic; see the metric's doc). A
// run that ends abnormally (deadlock, cycle budget, cancellation) is
// an error: a capture only ever holds completed experiments.
func RunCtx(ctx context.Context, sc *Scenario, wallclock bool) ([]Record, error) {
	app, cfg, err := sc.Resolve()
	if err != nil {
		return nil, err
	}
	opts := cedar.Options{
		Steps:     sc.Steps,
		Seed:      sc.Seed,
		Faults:    sc.Plan,
		MaxCycles: sim.Time(sc.MaxCycles),
		Parallel:  sc.Parallel,
	}
	start := time.Now()
	run, err := cedar.SimulateRunCtx(ctx, app, cfg, opts)
	wall := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return sc.extract(run, wall, wallclock)
}

// Run is RunCtx without cancellation.
func Run(sc *Scenario, wallclock bool) ([]Record, error) {
	return RunCtx(context.Background(), sc, wallclock)
}

// extract pulls the scenario's metric set out of a finished run. The
// Table-2 decomposition comes from the run's metric registry snapshot
// — the same source StatfxText and every exporter render from — so a
// scenario capture is structurally consistent with them.
func (sc *Scenario) extract(run *cedar.Run, wall time.Duration, wallclock bool) ([]Record, error) {
	snap := run.Metrics().Snapshot()
	events := run.Machine.Kernel.EventsFired()
	ct := int64(run.Result.CT)

	stamp := func(metric, unit string, value, tol float64) Record {
		return Record{
			Scenario: sc.Name, App: sc.AppName(), Config: sc.Config,
			Scale: sc.ScaleFactor(), Steps: sc.Steps, Seed: sc.Seed,
			Plan: sc.Plan.String(), Metric: metric, Unit: unit,
			Value: value, Tol: tol,
		}
	}
	var out []Record
	for _, m := range sc.metricSet(wallclock) {
		switch m {
		case MetricCT:
			out = append(out, stamp(MetricCT, "cycles", float64(ct), 0))
		case MetricOSBreakdown:
			ot, ok := snap.Get("os_time_cycles")
			if !ok {
				return nil, fmt.Errorf("scenario %s: run snapshot has no os_time_cycles", sc.Name)
			}
			for _, cell := range ot.Cells {
				out = append(out, stamp(
					fmt.Sprintf("os_time_cycles[%s]", cell.Label[0]), "cycles", cell.Value, 0))
			}
		case MetricConcurrency:
			out = append(out, stamp(MetricConcurrency, "ces", run.Result.MachineConcurrency(), 0))
		case MetricEvents:
			out = append(out, stamp(MetricEvents, "events", float64(events), 0))
		case MetricSimEventsPerSec:
			v := 0.0
			if ct > 0 {
				v = float64(events) / arch.Seconds(ct)
			}
			out = append(out, stamp(MetricSimEventsPerSec, "events/simsec", v, 0))
		case MetricWallEventsPerSec:
			if !wallclock {
				continue // deterministic captures never carry wall time
			}
			v := 0.0
			if s := wall.Seconds(); s > 0 {
				v = float64(events) / s
			}
			out = append(out, stamp(MetricWallEventsPerSec, "events/sec", v, sc.WallTol))
		default:
			return nil, fmt.Errorf("scenario %s: unknown metric %q", sc.Name, m)
		}
	}
	return out, nil
}

// RunAll executes the scenarios through the shared worker pool
// (internal/engine) and returns their records concatenated in scenario
// order — byte-identical at any worker count, like every other batch
// surface. The first scenario error aborts the batch.
func RunAll(ctx context.Context, scs []*Scenario, workers int, wallclock bool) ([]Record, error) {
	type result struct {
		recs []Record
		err  error
	}
	results, err := engine.MapCtx(ctx, workers, scs,
		func(ctx context.Context, _ int, sc *Scenario) result {
			recs, rerr := RunCtx(ctx, sc, wallclock)
			return result{recs, rerr}
		})
	if err != nil {
		return nil, err
	}
	var out []Record
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		out = append(out, r.recs...)
	}
	return out, nil
}

// capture is the on-disk BENCH_scenarios.json shape.
type capture struct {
	Version int      `json:"version"`
	Records []Record `json:"records"`
}

// captureVersion stamps the file format.
const captureVersion = 1

// EncodeCapture renders records as the canonical capture document:
// version header, records sorted by (scenario, metric), one record
// per line. Two encodings of the same records are byte-identical, so
// a committed capture diffs cleanly and the determinism acceptance
// check (run twice, compare bytes) is meaningful.
func EncodeCapture(recs []Record) ([]byte, error) {
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Scenario != sorted[j].Scenario {
			return sorted[i].Scenario < sorted[j].Scenario
		}
		return sorted[i].Metric < sorted[j].Metric
	})
	var b bytes.Buffer
	fmt.Fprintf(&b, "{\n  \"version\": %d,\n  \"records\": [\n", captureVersion)
	for i, r := range sorted {
		line, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		b.WriteString("    ")
		b.Write(line)
		if i < len(sorted)-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString("  ]\n}\n")
	return b.Bytes(), nil
}

// WriteCaptureFile writes the canonical capture atomically enough for
// a CLI: full encode, then one WriteFile.
func WriteCaptureFile(path string, recs []Record) error {
	data, err := EncodeCapture(recs)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadCapture parses a capture document.
func ReadCapture(r io.Reader) ([]Record, error) {
	var c capture
	dec := json.NewDecoder(r)
	if err := dec.Decode(&c); err != nil {
		return nil, err
	}
	if c.Version != captureVersion {
		return nil, fmt.Errorf("capture version %d, want %d", c.Version, captureVersion)
	}
	return c.Records, nil
}

// LoadCapture reads a capture file.
func LoadCapture(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadCapture(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// toMap indexes records by key, rejecting duplicates.
func toMap(recs []Record, src string) (map[string]float64, map[string]Record, error) {
	vals := make(map[string]float64, len(recs))
	byKey := make(map[string]Record, len(recs))
	for _, r := range recs {
		k := r.Key()
		if _, dup := byKey[k]; dup {
			return nil, nil, fmt.Errorf("%s: duplicate record %s", src, k)
		}
		vals[k] = r.Value
		byKey[k] = r
	}
	return vals, byKey, nil
}

// Diff gates fresh records against a baseline capture through the
// shared benchcmp core: exact for deterministic records (Tol 0),
// toleranced for wall-clock ones, and — because a scenario capture
// exists to prove properties of specific named experiments — a record
// present in the baseline but missing from the fresh run is fatal, as
// is an empty intersection.
func Diff(oldRecs, newRecs []Record) (*benchcmp.Report, error) {
	oldVals, oldBy, err := toMap(oldRecs, "baseline capture")
	if err != nil {
		return nil, err
	}
	newVals, newBy, err := toMap(newRecs, "fresh capture")
	if err != nil {
		return nil, err
	}
	spec := func(name string) benchcmp.Spec {
		r, ok := newBy[name]
		if !ok {
			r = oldBy[name]
		}
		if r.Tol > 0 {
			return benchcmp.Spec{Tol: r.Tol}
		}
		return benchcmp.Spec{Exact: true}
	}
	return benchcmp.Compare(oldVals, newVals, spec, true), nil
}
