// Package scenario makes experiments data: a declarative .scenario
// file names everything one measurement run depends on — application,
// machine configuration, weak-scale factor, fault plan, kernel seed,
// cycle budget — plus the metrics to extract from it, and the runner
// (cmd/cedarbench) turns a directory of them into a canonical
// BENCH_scenarios.json capture that is committed and diffed against
// the previous run with per-metric gates (internal/benchcmp).
//
// The paper's contribution is a measurement methodology, not a single
// number, so the repo's perf and correctness trajectory should live in
// repeatable experiment definitions rather than hand-wired Go: the
// layout follows elastic-package's _dev/benchmark/rally/<scenario>.yml
// one-file-per-scenario corpus and rancher/fleet's named-experiment
// benchmark suite, including the compare-against-prior-run step
// elastic-package itself lists as TODO.
//
// # File format
//
// A .scenario file is a strict YAML subset, hand-parsed so the repo
// takes no dependency: full-line # comments, `key: value` scalars, and
// one list key (`metrics:`) whose items follow as `- item` lines.
//
//	# FLO52 under the PR-4 page-fault kill schedule.
//	name: flo52-8proc-pgflt-kill
//	app: FLO52
//	config: 8proc
//	steps: 1
//	seed: 3327910339796038169
//	plan: ce:1@76414
//	max_cycles: 0
//	parallel: 1
//	metrics:
//	  - ct_cycles
//	  - os_breakdown
//	  - events
//	  - sim_events_per_sec
//
// Every field except app and config is optional. `scale: auto` (the
// default) weak-scales the app by perfect.ScaleFactorFor of the
// configuration's CE count — 1 on paper machines, the CE ratio on
// scaled members — and an integer pins the factor explicitly. Metrics
// default to DefaultMetrics.
package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/perfect"

	// Scenario documents may name their app as a gen: spec (app: or an
	// inline workload: block); linking the generator installs the
	// perfect.RegisterGen hook for every scenario consumer (cedarbench,
	// cedarserved) in one place.
	_ "repro/internal/perfect/gen"
)

// Ext is the file extension scenario files use.
const Ext = ".scenario"

// Metric names a scenario may extract. os_breakdown expands to one
// record per OS activity category (the Table-2 overhead decomposition
// rows); the others are single records.
const (
	// MetricCT is the completion time in cycles (deterministic, exact).
	MetricCT = "ct_cycles"
	// MetricOSBreakdown expands to the Table-2 rows: per-category OS
	// time in cycles (deterministic, exact).
	MetricOSBreakdown = "os_breakdown"
	// MetricConcurrency is the Table-1 machine concurrency
	// (deterministic, exact).
	MetricConcurrency = "concurrency"
	// MetricEvents is the kernel's dispatched-event count
	// (deterministic, exact).
	MetricEvents = "events"
	// MetricSimEventsPerSec is kernel events per simulated second —
	// event density over virtual time, a deterministic proxy for how
	// hard the machine model works per modeled second.
	MetricSimEventsPerSec = "sim_events_per_sec"
	// MetricWallEventsPerSec is kernel events per wall-clock second —
	// the real throughput trend line. Nondeterministic, so it is only
	// recorded when the runner opts in (cedarbench -wallclock), gated
	// with a tolerance instead of exactly, and never part of the
	// committed byte-identical capture.
	MetricWallEventsPerSec = "wall_events_per_sec"
)

// DefaultMetrics is the extraction set when a scenario names none:
// every deterministic default, so a default capture is byte-identical
// run to run.
func DefaultMetrics() []string {
	return []string{MetricCT, MetricOSBreakdown, MetricEvents, MetricSimEventsPerSec}
}

// knownMetrics validates the metrics list.
var knownMetrics = map[string]bool{
	MetricCT: true, MetricOSBreakdown: true, MetricConcurrency: true,
	MetricEvents: true, MetricSimEventsPerSec: true, MetricWallEventsPerSec: true,
}

// ScaleAuto is the Scale sentinel for perfect.ScaleFactorFor.
const ScaleAuto = 0

// Pathology classes a promoted scenario may declare (pathology: key):
// the workload-space fuzzer (cedarfuzz -apps) re-detects each promoted
// scenario's declared pathology as its regression gate.
const (
	PathologyHotSpot       = "hotspot"
	PathologyBarrierConvoy = "barrier-convoy"
	PathologyPageStorm     = "page-storm"
)

// knownPathologies validates the pathology: key.
var knownPathologies = map[string]bool{
	PathologyHotSpot: true, PathologyBarrierConvoy: true, PathologyPageStorm: true,
}

// Scenario is one parsed experiment definition.
type Scenario struct {
	// Name identifies the scenario in captures and reports. Defaults to
	// the file's base name without Ext.
	Name string
	// App is the application source: a registry name ("FLO52") or a
	// gen: spec. Exactly one of App and Workload must be set.
	App string
	// Workload is an inline workload document (the workload: block) or
	// a single-line gen: spec — any perfect.Resolver source except a
	// file path, so a scenario document stays self-contained and safe
	// to accept over the network (cedarserved bench jobs).
	Workload string
	// Pathology declares which pathology class this scenario was
	// promoted for ("" = none); see the Pathology constants.
	Pathology string
	// Config is the machine family member name (arch.FamilyByName).
	Config string
	// Steps overrides the app's timestep count when > 0.
	Steps int
	// Scale is the weak-scale factor; ScaleAuto (the default) derives
	// it from the configuration's CE count.
	Scale int
	// Seed overrides the deterministic kernel seed when non-zero.
	Seed int64
	// Plan is the fault plan (empty = healthy run).
	Plan faults.Plan
	// Parallel bounds intra-run batch parallelism (cedar.Options.Parallel).
	Parallel int
	// MaxCycles aborts the run past this virtual time (0 = unlimited).
	MaxCycles int64
	// Metrics is the extraction set (DefaultMetrics when empty).
	Metrics []string
	// WallTol is the tolerance for MetricWallEventsPerSec (default 0.5).
	WallTol float64
	// File is the source path, for error messages ("" when parsed from
	// memory, e.g. a bench service job).
	File string

	// app and cfg are resolved once by validate; Resolve and the
	// accessors below reuse them instead of re-querying the registries.
	app perfect.App
	cfg arch.Config
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// Resolve returns the weak-scaled app and configuration the scenario
// runs. Both were resolved and validated at parse time; only the
// weak-scale transform is applied here.
func (sc *Scenario) Resolve() (perfect.App, arch.Config, error) {
	if sc.app.Name == "" {
		return perfect.App{}, arch.Config{}, fmt.Errorf("scenario %s: not validated (use Parse)", sc.Name)
	}
	return sc.app.Scaled(sc.ScaleFactor()), sc.cfg, nil
}

// AppName returns the resolved app's name — the App field for
// registry-named scenarios, the document's workload name otherwise.
func (sc *Scenario) AppName() string {
	if sc.app.Name != "" {
		return sc.app.Name
	}
	return sc.App
}

// ScaleFactor returns the resolved weak-scale factor.
func (sc *Scenario) ScaleFactor() int {
	if sc.Scale != ScaleAuto {
		return sc.Scale
	}
	if sc.cfg.Name != "" {
		return perfect.ScaleFactorFor(sc.cfg.CEs())
	}
	if cfg, ok := arch.FamilyByName(sc.Config); ok {
		return perfect.ScaleFactorFor(cfg.CEs())
	}
	return 1
}

// metricSet returns the effective extraction set: the declared metrics
// (or DefaultMetrics), plus MetricWallEventsPerSec when wallclock is
// on and the set lacks it.
func (sc *Scenario) metricSet(wallclock bool) []string {
	ms := sc.Metrics
	if len(ms) == 0 {
		ms = DefaultMetrics()
	}
	if wallclock {
		seen := false
		for _, m := range ms {
			if m == MetricWallEventsPerSec {
				seen = true
			}
		}
		if !seen {
			ms = append(append([]string(nil), ms...), MetricWallEventsPerSec)
		}
	}
	return ms
}

// Parse parses one scenario document. fallbackName names the scenario
// when the document has no name: key (callers pass the file's base
// name, or a job id). Parsing resolves the app, configuration, and
// fault plan against the live registries so a bad scenario is rejected
// before anything runs.
func Parse(fallbackName string, data []byte) (*Scenario, error) {
	sc := &Scenario{Name: fallbackName, Scale: ScaleAuto, WallTol: 0.5}
	var listKey string   // non-empty while consuming "- item" lines
	var wlBlock bool     // consuming the workload: block's indented lines
	var wlLines []string // the block's lines, dedented
	seen := map[string]bool{}
	for i, raw := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		if wlBlock && strings.HasPrefix(line, "  ") {
			// Workload block content: strip exactly the block's two-space
			// indent, keeping the document's own phase indentation.
			wlLines = append(wlLines, line[2:])
			continue
		}
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		wlBlock = false
		if item, ok := strings.CutPrefix(trimmed, "- "); ok {
			if listKey == "" {
				return nil, fmt.Errorf("scenario line %d: list item %q outside a list key", lineNo, trimmed)
			}
			item = strings.TrimSpace(item)
			if !knownMetrics[item] {
				return nil, fmt.Errorf("scenario line %d: unknown metric %q (want %s)",
					lineNo, item, strings.Join(metricNames(), ", "))
			}
			sc.Metrics = append(sc.Metrics, item)
			continue
		}
		// A scalar or list-opening key ends any open list.
		listKey = ""
		if line != trimmed {
			return nil, fmt.Errorf("scenario line %d: unexpected indentation (only list items indent)", lineNo)
		}
		key, val, ok := strings.Cut(trimmed, ":")
		if !ok {
			return nil, fmt.Errorf("scenario line %d: %q is not key: value", lineNo, trimmed)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return nil, fmt.Errorf("scenario line %d: duplicate key %q", lineNo, key)
		}
		seen[key] = true
		var err error
		switch key {
		case "name":
			sc.Name = val
		case "app":
			sc.App = val
		case "workload":
			if val != "" {
				// Single-line source (a gen: spec); an empty value opens
				// the indented document block instead.
				sc.Workload = val
			} else {
				wlBlock = true
			}
		case "pathology":
			if !knownPathologies[val] {
				err = fmt.Errorf("unknown pathology %q (want %s, %s, or %s)",
					val, PathologyHotSpot, PathologyBarrierConvoy, PathologyPageStorm)
			}
			sc.Pathology = val
		case "config":
			sc.Config = val
		case "steps":
			sc.Steps, err = nonNegInt(val)
		case "scale":
			if val == "auto" {
				sc.Scale = ScaleAuto
			} else {
				sc.Scale, err = nonNegInt(val)
				if err == nil && sc.Scale < 1 {
					err = fmt.Errorf("scale %d must be >= 1 (or auto)", sc.Scale)
				}
			}
		case "seed":
			sc.Seed, err = strconv.ParseInt(val, 10, 64)
		case "plan":
			sc.Plan, err = faults.Parse(val)
		case "parallel":
			sc.Parallel, err = nonNegInt(val)
		case "max_cycles":
			var v int
			v, err = nonNegInt(val)
			sc.MaxCycles = int64(v)
		case "wall_tol":
			sc.WallTol, err = strconv.ParseFloat(val, 64)
			if err == nil && (sc.WallTol < 0 || sc.WallTol >= 1) {
				err = fmt.Errorf("wall_tol %v out of range [0,1)", sc.WallTol)
			}
		case "metrics":
			if val != "" {
				return nil, fmt.Errorf("scenario line %d: metrics takes - item lines, not an inline value", lineNo)
			}
			listKey = key
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario line %d: %s: %v", lineNo, key, err)
		}
	}
	if len(wlLines) > 0 {
		if sc.Workload != "" {
			return nil, fmt.Errorf("scenario: workload has both an inline value and a block")
		}
		sc.Workload = strings.Join(wlLines, "\n") + "\n"
	}
	return sc, sc.validate()
}

func nonNegInt(val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative value %d", n)
	}
	return n, nil
}

func metricNames() []string {
	names := make([]string, 0, len(knownMetrics))
	for n := range knownMetrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// validate checks the parsed scenario against the live registries,
// resolving the app and configuration exactly once (Resolve reuses
// them).
func (sc *Scenario) validate() error {
	switch {
	case sc.Name == "":
		return fmt.Errorf("scenario missing name")
	case !nameRE.MatchString(sc.Name):
		return fmt.Errorf("scenario name %q: want %s", sc.Name, nameRE)
	case sc.App == "" && sc.Workload == "":
		return fmt.Errorf("scenario %s: missing app (or workload)", sc.Name)
	case sc.App != "" && sc.Workload != "":
		return fmt.Errorf("scenario %s: app and workload are mutually exclusive", sc.Name)
	case sc.Config == "":
		return fmt.Errorf("scenario %s: missing config", sc.Name)
	}
	src := sc.App
	if sc.Workload != "" {
		src = sc.Workload
	}
	// No file sources: a scenario document travels (bench service
	// jobs), so it must stay self-contained.
	app, err := (perfect.Resolver{}).Resolve(src)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	sc.app = app
	cfg, ok := arch.FamilyByName(sc.Config)
	if !ok {
		return fmt.Errorf("scenario %s: unknown configuration %q", sc.Name, sc.Config)
	}
	sc.cfg = cfg
	if err := sc.Plan.Validate(cfg); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	return nil
}

// LoadFile parses one .scenario file, defaulting the name to the file's
// base name.
func LoadFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	stem := strings.TrimSuffix(filepath.Base(path), Ext)
	sc, err := Parse(stem, data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	sc.File = path
	return sc, nil
}

// LoadDir loads every *.scenario file under dir, sorted by scenario
// name. Duplicate names are an error — the capture keys on them. An
// empty directory is an error too: a suite that gates zero scenarios
// proves nothing.
func LoadDir(dir string) ([]*Scenario, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*"+Ext))
	if err != nil {
		return nil, fmt.Errorf("scenario dir %s: %w", dir, err)
	}
	sort.Strings(paths)
	var out []*Scenario
	byName := map[string]string{}
	for _, path := range paths {
		sc, err := LoadFile(path)
		if err != nil {
			return nil, err
		}
		if prev, dup := byName[sc.Name]; dup {
			return nil, fmt.Errorf("scenario name %q appears in both %s and %s", sc.Name, prev, path)
		}
		byName[sc.Name] = path
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario dir %s: no *%s files", dir, Ext)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}
