package scenario

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchcmp"
	"repro/internal/metrics"
)

const fullDoc = `# comment line
name: flo52-kill
app: FLO52
config: 8proc
steps: 1
scale: auto
seed: 3327910339796038169
plan: ce:1@76414
parallel: 1
max_cycles: 100000000
wall_tol: 0.4
metrics:
  - ct_cycles
  - os_breakdown
  - events
`

func TestParseFullDocument(t *testing.T) {
	sc, err := Parse("fallback", []byte(fullDoc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "flo52-kill" || sc.App != "FLO52" || sc.Config != "8proc" {
		t.Fatalf("identity = %q %q %q", sc.Name, sc.App, sc.Config)
	}
	if sc.Steps != 1 || sc.Seed != 3327910339796038169 || sc.MaxCycles != 100000000 {
		t.Fatalf("steps/seed/max_cycles = %d %d %d", sc.Steps, sc.Seed, sc.MaxCycles)
	}
	if got := sc.Plan.String(); got != "ce:1@76414" {
		t.Fatalf("plan = %q", got)
	}
	if sc.WallTol != 0.4 || sc.Parallel != 1 {
		t.Fatalf("wall_tol/parallel = %v %d", sc.WallTol, sc.Parallel)
	}
	if want := []string{MetricCT, MetricOSBreakdown, MetricEvents}; strings.Join(sc.Metrics, ",") != strings.Join(want, ",") {
		t.Fatalf("metrics = %v, want %v", sc.Metrics, want)
	}
	if sc.ScaleFactor() != 1 {
		t.Fatalf("auto scale on 8proc = %d, want 1", sc.ScaleFactor())
	}
}

func TestParseDefaults(t *testing.T) {
	sc, err := Parse("mini", []byte("app: FLO52\nconfig: 1proc\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "mini" {
		t.Fatalf("fallback name = %q", sc.Name)
	}
	if len(sc.Metrics) != 0 {
		t.Fatalf("metrics should default lazily, got %v", sc.Metrics)
	}
	set := sc.metricSet(false)
	if strings.Join(set, ",") != strings.Join(DefaultMetrics(), ",") {
		t.Fatalf("default metric set = %v", set)
	}
	if sc.WallTol != 0.5 {
		t.Fatalf("default wall_tol = %v", sc.WallTol)
	}
	// wallclock mode appends the wall metric exactly once.
	wall := sc.metricSet(true)
	if wall[len(wall)-1] != MetricWallEventsPerSec {
		t.Fatalf("wallclock set = %v", wall)
	}
}

func TestParseAutoScaleOnScaledMember(t *testing.T) {
	sc, err := Parse("s64", []byte("app: FLO52\nconfig: scaled64\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.ScaleFactor() != 2 {
		t.Fatalf("auto scale on scaled64 = %d, want 2", sc.ScaleFactor())
	}
}

// A scenario can carry its application inline: a workload: block is
// dedented into a self-contained workload document, resolved at parse
// time, and named after the document's workload: key.
func TestParseInlineWorkloadBlock(t *testing.T) {
	doc := `name: inline
config: 8proc
steps: 2
pathology: hotspot
workload:
  workload: probe
  steps: 2
  data_words: 4096
  phase: xdoall x
    inner: 32
    work: 100
    gm_words: 4
    gm_stride: 32
`
	sc, err := Parse("fallback", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.App != "" {
		t.Fatalf("App = %q, want empty for a workload scenario", sc.App)
	}
	if !strings.HasPrefix(sc.Workload, "workload: probe\n") || !strings.HasSuffix(sc.Workload, "gm_stride: 32\n") {
		t.Fatalf("block not dedented into a document:\n%s", sc.Workload)
	}
	if sc.Pathology != PathologyHotSpot {
		t.Fatalf("Pathology = %q", sc.Pathology)
	}
	app, cfg, err := sc.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "probe" || sc.AppName() != "probe" {
		t.Fatalf("resolved app %q, AppName %q; want probe", app.Name, sc.AppName())
	}
	if cfg.Name != "8proc" || len(app.Phases) != 1 || app.Phases[0].GMStride != 32 {
		t.Fatalf("resolved app/config off: %+v on %s", app, cfg.Name)
	}
}

// A single-line workload: value is a gen: spec resolved through the
// same path as every other layer.
func TestParseGenWorkload(t *testing.T) {
	sc, err := Parse("g", []byte("config: 8proc\nworkload: gen:seed=14,hot=1\n"))
	if err != nil {
		t.Fatal(err)
	}
	app, _, err := sc.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != sc.AppName() || app.Name == "" {
		t.Fatalf("gen app %q, AppName %q", app.Name, sc.AppName())
	}
	if err := app.Validate(); err != nil {
		t.Fatalf("generated app invalid: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"missing app", "config: 8proc\n", "missing app"},
		{"missing config", "app: FLO52\n", "missing config"},
		{"unknown app", "app: NOPE\nconfig: 8proc\n", `unknown app "NOPE" (known:`},
		{"unknown config", "app: FLO52\nconfig: 9proc\n", `unknown configuration "9proc"`},
		{"unknown key", "app: FLO52\nconfig: 8proc\nbogus: 1\n", `unknown key "bogus"`},
		{"duplicate key", "app: FLO52\napp: OCEAN\nconfig: 8proc\n", "duplicate key"},
		{"bad plan", "app: FLO52\nconfig: 8proc\nplan: wat\n", "plan"},
		{"plan outside config", "app: FLO52\nconfig: 8proc\nplan: ce:63@5\n", "out of range"},
		{"negative steps", "app: FLO52\nconfig: 8proc\nsteps: -1\n", "negative"},
		{"zero scale", "app: FLO52\nconfig: 8proc\nscale: 0\n", "scale"},
		{"bad wall tol", "app: FLO52\nconfig: 8proc\nwall_tol: 1.5\n", "wall_tol"},
		{"unknown metric", "app: FLO52\nconfig: 8proc\nmetrics:\n  - bogus\n", `unknown metric "bogus"`},
		{"inline metrics value", "app: FLO52\nconfig: 8proc\nmetrics: ct_cycles\n", "- item lines"},
		{"list item without list", "app: FLO52\nconfig: 8proc\n- ct_cycles\n", "outside a list key"},
		{"indented scalar", "app: FLO52\n  config: 8proc\n", "indentation"},
		{"not key value", "app: FLO52\nconfig: 8proc\njust words\n", "key: value"},
		{"bad name", "name: a b\napp: FLO52\nconfig: 8proc\n", "name"},
		{"app and workload", "app: FLO52\nconfig: 8proc\nworkload: gen:seed=1\n", "mutually exclusive"},
		{"workload file path", "config: 8proc\nworkload: apps.workload\n", "not allowed here"},
		{"empty workload block", "config: 8proc\nworkload:\n", "missing app"},
		{"bad workload doc", "config: 8proc\nworkload:\n  steps: 2\n  bogus: 1\n", `unknown key "bogus"`},
		{"unknown pathology", "app: FLO52\nconfig: 8proc\npathology: slowness\n", `unknown pathology "slowness"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse("x", []byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	write := func(file, doc string) {
		if err := os.WriteFile(filepath.Join(dir, file), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("zz.scenario", "app: FLO52\nconfig: 1proc\n")
	write("aa.scenario", "app: OCEAN\nconfig: 8proc\n")
	write("ignored.txt", "not a scenario")
	scs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 || scs[0].Name != "aa" || scs[1].Name != "zz" {
		t.Fatalf("loaded %d scenarios, order %v", len(scs), scs)
	}
	if scs[0].File == "" {
		t.Fatal("provenance File not set")
	}

	// Duplicate names across files are ambiguous capture keys.
	write("dup.scenario", "name: aa\napp: FLO52\nconfig: 1proc\n")
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), `"aa"`) {
		t.Fatalf("duplicate-name error = %v", err)
	}
}

func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Fatal("empty scenario dir must error: a suite gating nothing proves nothing")
	}
}

// tiny is the fastest possible real scenario for runner tests.
func tiny(t *testing.T) *Scenario {
	t.Helper()
	sc, err := Parse("tiny", []byte("app: FLO52\nconfig: 1proc\nsteps: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestRunExtractsDefaultMetrics(t *testing.T) {
	recs, err := Run(tiny(t), false)
	if err != nil {
		t.Fatal(err)
	}
	// ct + events + sim_events_per_sec + one row per OS category.
	want := 3 + int(metrics.NumOSCategories)
	if len(recs) != want {
		t.Fatalf("got %d records, want %d", len(recs), want)
	}
	byMetric := map[string]Record{}
	for _, r := range recs {
		if r.Scenario != "tiny" || r.App != "FLO52" || r.Config != "1proc" || r.Scale != 1 {
			t.Fatalf("bad stamp: %+v", r)
		}
		if r.Tol != 0 {
			t.Fatalf("deterministic record with tolerance: %+v", r)
		}
		byMetric[r.Metric] = r
	}
	if byMetric[MetricCT].Value <= 0 || byMetric[MetricEvents].Value <= 0 ||
		byMetric[MetricSimEventsPerSec].Value <= 0 {
		t.Fatalf("non-positive core metrics: %+v", byMetric)
	}
}

func TestRunWallclockRecord(t *testing.T) {
	recs, err := Run(tiny(t), true)
	if err != nil {
		t.Fatal(err)
	}
	var wall *Record
	for i := range recs {
		if recs[i].Metric == MetricWallEventsPerSec {
			wall = &recs[i]
		}
	}
	if wall == nil || wall.Value <= 0 || wall.Tol != 0.5 {
		t.Fatalf("wall record = %+v", wall)
	}
}

func TestCaptureDeterministicAndParallelInvariant(t *testing.T) {
	scs := []*Scenario{tiny(t)}
	ctx := context.Background()
	r1, err := RunAll(ctx, scs, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunAll(ctx, scs, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := EncodeCapture(r1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeCapture(r2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("capture bytes differ between runs/worker counts")
	}
	// And the encoding round-trips.
	recs, err := ReadCapture(bytes.NewReader(b1))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(r1) {
		t.Fatalf("round trip lost records: %d != %d", len(recs), len(r1))
	}
	rep, err := Diff(recs, r2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("self-diff failed: %v", err)
	}
}

func rec(name, metric string, value, tol float64) Record {
	return Record{Scenario: name, App: "FLO52", Config: "1proc", Metric: metric, Value: value, Tol: tol}
}

func TestDiffGates(t *testing.T) {
	old := []Record{
		rec("s", MetricCT, 1000, 0),
		rec("s", MetricWallEventsPerSec, 100, 0.5),
	}
	t.Run("exact drift fails", func(t *testing.T) {
		rep, err := Diff(old, []Record{rec("s", MetricCT, 1001, 0), rec("s", MetricWallEventsPerSec, 100, 0.5)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Err() == nil {
			t.Fatal("drifted ct passed")
		}
	})
	t.Run("throughput within tolerance passes", func(t *testing.T) {
		rep, err := Diff(old, []Record{rec("s", MetricCT, 1000, 0), rec("s", MetricWallEventsPerSec, 60, 0.5)})
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("60%% of baseline throughput failed a 0.5 tolerance: %v", err)
		}
	})
	t.Run("throughput beyond tolerance fails", func(t *testing.T) {
		rep, err := Diff(old, []Record{rec("s", MetricCT, 1000, 0), rec("s", MetricWallEventsPerSec, 40, 0.5)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Err() == nil {
			t.Fatal("40% of baseline throughput passed a 0.5 tolerance")
		}
	})
	t.Run("record missing from fresh run is fatal", func(t *testing.T) {
		rep, err := Diff(old, []Record{rec("s", MetricWallEventsPerSec, 100, 0.5)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Err() == nil {
			t.Fatal("missing ct record passed the gate")
		}
		var found bool
		for _, row := range rep.Rows {
			if row.Status == benchcmp.StatusMissing && row.Fatal {
				found = true
			}
		}
		if !found {
			t.Fatalf("no fatal MISSING row: %+v", rep.Rows)
		}
	})
	t.Run("duplicate records rejected", func(t *testing.T) {
		if _, err := Diff(old, []Record{rec("s", MetricCT, 1, 0), rec("s", MetricCT, 1, 0)}); err == nil {
			t.Fatal("duplicate fresh records accepted")
		}
	})
}

func TestReadCaptureVersionCheck(t *testing.T) {
	if _, err := ReadCapture(strings.NewReader(`{"version": 99, "records": []}`)); err == nil {
		t.Fatal("future capture version accepted")
	}
}

func TestRunFailingScenarioErrors(t *testing.T) {
	// Killing every CE of the main cluster deadlocks by design (see
	// testdata/faultcorpus/main-cluster-killed.scenario); a capture
	// only ever holds completed experiments.
	doc := "app: FLO52\nconfig: 16proc\nsteps: 1\nseed: 1645508699426838620\n" +
		"plan: ce:0@50000,ce:1@50000,ce:2@50000,ce:3@50000,ce:4@50000,ce:5@50000,ce:6@50000,ce:7@50000\n"
	sc, err := Parse("deadlock", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sc, false); err == nil {
		t.Fatal("deadlocking scenario produced records")
	}
}
