// Package arch describes the Cedar machine: its topology (clusters of
// computational elements behind a two-stage shuffle-exchange network
// and an interleaved global memory) and the unit-cost model used by
// the hardware, OS, and runtime simulations.
//
// All times are in cycles of the CE clock. The clock is fixed at
// 20 MHz so that one cycle equals 50 ns — the timestamp resolution of
// the cedarhpm hardware monitor in the paper — which makes simulated
// cycle counts directly comparable to the paper's second-denominated
// measurements.
package arch

import "fmt"

// CycleNS is the duration of one CE clock cycle in nanoseconds.
const CycleNS = 50

// CyclesPerSecond is the CE clock rate.
const CyclesPerSecond = 1e9 / CycleNS

// Config describes a Cedar hardware configuration.
type Config struct {
	// Name is a short label such as "32proc".
	Name string
	// Clusters is the number of Alliant FX/8 clusters (1, 2, or 4 on
	// the real machine).
	Clusters int
	// CEsPerCluster is the number of computational elements per
	// cluster (8 on the real machine; smaller values model the 1- and
	// 4-processor configurations, which use a single cluster).
	CEsPerCluster int
	// GMModules is the number of independent global memory modules
	// (32, double-word interleaved and aligned).
	GMModules int
	// NetStages is the number of network stages (2), each built from
	// 8x8 crossbar switches.
	NetStages int
	// SwitchDegree is the fan-in/out of each crossbar switch (8).
	SwitchDegree int
	// Unclustered, when true, removes the cluster hierarchy for
	// runtime purposes: every CE is treated as an independent
	// processor that synchronizes through global memory. This models
	// the "32 independent processors" alternative discussed in
	// Section 6 of the paper. The hardware paths are unchanged.
	Unclustered bool
}

// CEs returns the total number of computational elements.
func (c Config) CEs() int { return c.Clusters * c.CEsPerCluster }

// Validate reports whether the configuration is self-consistent.
func (c Config) Validate() error {
	switch {
	case c.Clusters < 1:
		return fmt.Errorf("arch: %s: clusters %d < 1", c.Name, c.Clusters)
	case c.CEsPerCluster < 1:
		return fmt.Errorf("arch: %s: CEs/cluster %d < 1", c.Name, c.CEsPerCluster)
	case c.CEsPerCluster > 8:
		return fmt.Errorf("arch: %s: CEs/cluster %d > 8 (FX/8 limit)", c.Name, c.CEsPerCluster)
	case c.Clusters > 4:
		return fmt.Errorf("arch: %s: clusters %d > 4 (Cedar limit)", c.Name, c.Clusters)
	case c.GMModules < 1 || c.GMModules&(c.GMModules-1) != 0:
		return fmt.Errorf("arch: %s: GM modules %d not a power of two", c.Name, c.GMModules)
	case c.NetStages < 1:
		return fmt.Errorf("arch: %s: net stages %d < 1", c.Name, c.NetStages)
	case c.SwitchDegree < 2:
		return fmt.Errorf("arch: %s: switch degree %d < 2", c.Name, c.SwitchDegree)
	}
	return nil
}

// CEID identifies a computational element by cluster and local index.
type CEID struct {
	Cluster int
	Local   int
}

// Global returns the machine-wide CE index.
func (id CEID) Global(c Config) int { return id.Cluster*c.CEsPerCluster + id.Local }

// CEByGlobal converts a machine-wide CE index back to a CEID.
func (c Config) CEByGlobal(g int) CEID {
	return CEID{Cluster: g / c.CEsPerCluster, Local: g % c.CEsPerCluster}
}

// String implements fmt.Stringer.
func (id CEID) String() string { return fmt.Sprintf("c%d.ce%d", id.Cluster, id.Local) }

func base(name string, clusters, ces int) Config {
	return Config{
		Name:          name,
		Clusters:      clusters,
		CEsPerCluster: ces,
		GMModules:     32,
		NetStages:     2,
		SwitchDegree:  8,
	}
}

// The five configurations measured in the paper. The 1-, 4- and
// 8-processor configurations all use a single cluster (the paper's
// footnote: "all the 4 processors for the 4-processor configuration
// are from the same cluster").
var (
	Cedar1  = base("1proc", 1, 1)
	Cedar4  = base("4proc", 1, 4)
	Cedar8  = base("8proc", 1, 8)
	Cedar16 = base("16proc", 2, 8)
	Cedar32 = base("32proc", 4, 8)
)

// PaperConfigs lists the configurations in the order the paper's
// tables use.
func PaperConfigs() []Config {
	return []Config{Cedar1, Cedar4, Cedar8, Cedar16, Cedar32}
}

// Unclustered32 is the hypothetical flat machine discussed in
// Section 6: the same 32 CEs, but synchronizing as 32 independent
// tasks through global memory rather than hierarchically.
var Unclustered32 = func() Config {
	c := base("32flat", 4, 8)
	c.Name = "32flat"
	c.Unclustered = true
	return c
}()

// Seconds converts a cycle count to seconds of machine time.
func Seconds(cycles int64) float64 { return float64(cycles) / CyclesPerSecond }

// Cycles converts seconds of machine time to cycles.
func Cycles(seconds float64) int64 { return int64(seconds * CyclesPerSecond) }
