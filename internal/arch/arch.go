// Package arch describes a family of Cedar-like machines: clusters of
// computational elements behind a k-stage shuffle-exchange network and
// an interleaved global memory, plus the unit-cost model used by the
// hardware, OS, and runtime simulations.
//
// The machine description is fully parametric: any cluster count, CEs
// per cluster, global-memory module count, switch degree, and network
// stage count that the multistage router can realize is a valid
// Config. The five configurations the paper measures (1–32 CEs behind
// a two-stage network of 8x8 crossbars) are named members of the
// family, alongside scaled machines the paper could not build
// (Scaled64, Scaled128, Scaled256, Deep64, and the three-stage
// Scaled1024/Scaled4096) for capacity-planning studies with the same
// overhead decomposition.
//
// All times are in cycles of the CE clock. The clock is fixed at
// 20 MHz so that one cycle equals 50 ns — the timestamp resolution of
// the cedarhpm hardware monitor in the paper — which makes simulated
// cycle counts directly comparable to the paper's second-denominated
// measurements.
package arch

import (
	"fmt"
	"strings"
)

// CycleNS is the duration of one CE clock cycle in nanoseconds.
const CycleNS = 50

// CyclesPerSecond is the CE clock rate.
const CyclesPerSecond = 1e9 / CycleNS

// Config describes one member of the Cedar machine family.
type Config struct {
	// Name is a short label such as "32proc".
	Name string
	// Clusters is the number of Alliant FX/8-style clusters (1, 2, or
	// 4 on the real machine; scaled families go beyond).
	Clusters int
	// CEsPerCluster is the number of computational elements per
	// cluster (8 on the real machine; smaller values model the 1- and
	// 4-processor configurations, which use a single cluster).
	CEsPerCluster int
	// GMModules is the number of independent global memory modules
	// (32 on Cedar, double-word interleaved and aligned). It is also
	// the port width of each network stage.
	GMModules int
	// NetStages is the number of network stages (2 on Cedar), each
	// built from SwitchDegree-way crossbar switches.
	NetStages int
	// SwitchDegree is the fan-in/out of each crossbar switch (8 on
	// Cedar).
	SwitchDegree int
	// Unclustered, when true, removes the cluster hierarchy for
	// runtime purposes: every CE is treated as an independent
	// processor that synchronizes through global memory. This models
	// the "32 independent processors" alternative discussed in
	// Section 6 of the paper. The hardware paths are unchanged.
	Unclustered bool
}

// CEs returns the total number of computational elements.
func (c Config) CEs() int { return c.Clusters * c.CEsPerCluster }

// NetWidth returns the port count of each network stage (one port per
// global memory module; the CE-side wiring shares the same width).
func (c Config) NetWidth() int { return c.GMModules }

// GroupSpan returns how many consecutive modules share a top-level
// network group: the subtree of modules reached through one stage-0
// output port, SwitchDegree^(NetStages-1) capped at the module count.
// Vector accesses fan out across groups (one stage-0 burst per group),
// which is how the shuffle-exchange network carries interleaved
// vectors.
func (c Config) GroupSpan() int {
	span := ipow(c.SwitchDegree, c.NetStages-1)
	if span > c.GMModules {
		span = c.GMModules
	}
	if span < 1 {
		span = 1
	}
	return span
}

// Groups returns the number of top-level network groups.
func (c Config) Groups() int {
	span := c.GroupSpan()
	return (c.GMModules + span - 1) / span
}

// ipow returns d^k for small non-negative k, saturating at a large
// value to keep Validate's comparisons safe from overflow.
func ipow(d, k int) int {
	p := 1
	for i := 0; i < k; i++ {
		if p > 1<<30 {
			return 1 << 30
		}
		p *= d
	}
	return p
}

// Validate reports whether the configuration is self-consistent and
// whether the k-stage shuffle-exchange router can realize it. Each
// violated constraint is named in the error.
func (c Config) Validate() error {
	switch {
	case c.Clusters < 1:
		return fmt.Errorf("arch: %s: clusters %d < 1", c.Name, c.Clusters)
	case c.CEsPerCluster < 1:
		return fmt.Errorf("arch: %s: CEs/cluster %d < 1", c.Name, c.CEsPerCluster)
	case c.GMModules < 1 || c.GMModules&(c.GMModules-1) != 0:
		return fmt.Errorf("arch: %s: GM modules %d not a power of two", c.Name, c.GMModules)
	case c.NetStages < 1:
		return fmt.Errorf("arch: %s: net stages %d < 1", c.Name, c.NetStages)
	case c.SwitchDegree < 2 || c.SwitchDegree&(c.SwitchDegree-1) != 0:
		return fmt.Errorf("arch: %s: switch degree %d not a power of two >= 2", c.Name, c.SwitchDegree)
	// The router's realizability constraints. Routes address the
	// destination module digit by digit in base SwitchDegree, so a
	// k-stage network reaches at most SwitchDegree^k modules; the
	// CE-side wiring (stage-0 input switches, one per cluster, and the
	// per-CE return links cluster*degree+local) must fit the stage
	// width; and the return network selects the destination cluster
	// with a single output digit.
	case c.GMModules > ipow(c.SwitchDegree, c.NetStages):
		return fmt.Errorf("arch: %s: %d-stage degree-%d network addresses at most %d modules, config has %d (raise -stages or -degree)",
			c.Name, c.NetStages, c.SwitchDegree, ipow(c.SwitchDegree, c.NetStages), c.GMModules)
	case c.Clusters*c.SwitchDegree > c.GMModules:
		return fmt.Errorf("arch: %s: CE-side ports (clusters x degree = %d) exceed network width (%d GM modules)",
			c.Name, c.Clusters*c.SwitchDegree, c.GMModules)
	case c.Clusters > c.SwitchDegree:
		return fmt.Errorf("arch: %s: clusters %d > switch degree %d (return network selects the cluster with one output digit)",
			c.Name, c.Clusters, c.SwitchDegree)
	case c.CEsPerCluster > c.SwitchDegree:
		return fmt.Errorf("arch: %s: CEs/cluster %d > switch degree %d (per-CE return links overflow the cluster's switch)",
			c.Name, c.CEsPerCluster, c.SwitchDegree)
	}
	return nil
}

// CEID identifies a computational element by cluster and local index.
type CEID struct {
	Cluster int
	Local   int
}

// Global returns the machine-wide CE index.
func (id CEID) Global(c Config) int { return id.Cluster*c.CEsPerCluster + id.Local }

// CEByGlobal converts a machine-wide CE index back to a CEID.
func (c Config) CEByGlobal(g int) CEID {
	return CEID{Cluster: g / c.CEsPerCluster, Local: g % c.CEsPerCluster}
}

// String implements fmt.Stringer.
func (id CEID) String() string { return fmt.Sprintf("c%d.ce%d", id.Cluster, id.Local) }

func base(name string, clusters, ces int) Config {
	return Config{
		Name:          name,
		Clusters:      clusters,
		CEsPerCluster: ces,
		GMModules:     32,
		NetStages:     2,
		SwitchDegree:  8,
	}
}

// The five configurations measured in the paper. The 1-, 4- and
// 8-processor configurations all use a single cluster (the paper's
// footnote: "all the 4 processors for the 4-processor configuration
// are from the same cluster").
var (
	Cedar1  = base("1proc", 1, 1)
	Cedar4  = base("4proc", 1, 4)
	Cedar8  = base("8proc", 1, 8)
	Cedar16 = base("16proc", 2, 8)
	Cedar32 = base("32proc", 4, 8)
)

// PaperConfigs lists the configurations in the order the paper's
// tables use.
func PaperConfigs() []Config {
	return []Config{Cedar1, Cedar4, Cedar8, Cedar16, Cedar32}
}

// Unclustered32 is the hypothetical flat machine discussed in
// Section 6: the same 32 CEs, but synchronizing as 32 independent
// tasks through global memory rather than hierarchically.
var Unclustered32 = func() Config {
	c := base("32flat", 4, 8)
	c.Name = "32flat"
	c.Unclustered = true
	return c
}()

// The scaled families: machines the paper could not build, opened up
// by the parametric topology layer so the Section-7 decomposition can
// be run as a capacity-planning tool. Memory modules and switch degree
// grow with the CE count so the CE-side wiring keeps fitting the
// network width; the paper-calibrated unit costs (module cycles, OS
// service times) are held fixed — see EXPERIMENTS.md, "Scaling study".
var (
	// Scaled64 doubles Cedar: 8 clusters of 8 CEs behind a two-stage
	// network of 8x8 switches and 64 memory modules.
	Scaled64 = Config{Name: "64proc", Clusters: 8, CEsPerCluster: 8,
		GMModules: 64, NetStages: 2, SwitchDegree: 8}
	// Scaled128 widens the switches to 16x16: 8 clusters of 16 CEs,
	// 128 modules.
	Scaled128 = Config{Name: "128proc", Clusters: 8, CEsPerCluster: 16,
		GMModules: 128, NetStages: 2, SwitchDegree: 16}
	// Scaled256 is the largest two-stage member 16x16 switches admit:
	// 16 clusters of 16 CEs, 256 modules.
	Scaled256 = Config{Name: "256proc", Clusters: 16, CEsPerCluster: 16,
		GMModules: 256, NetStages: 2, SwitchDegree: 16}
	// Deep64 trades stage count for switch width: the same 64 CEs as
	// Scaled64 but behind a three-stage network of 8x8 switches and
	// 512 modules — the configuration that exercises k > 2 routing.
	Deep64 = Config{Name: "64deep", Clusters: 8, CEsPerCluster: 8,
		GMModules: 512, NetStages: 3, SwitchDegree: 8}
	// Scaled1024 reaches the thousand-processor regime the many-core
	// machine-model literature studies: 32 clusters of 32 CEs behind a
	// three-stage network of 32x32 switches and 1024 modules (one per
	// CE, keeping the family's 1:1 module ratio). 32 is the smallest
	// degree whose CE-side wiring fits 32 clusters x 32 CEs, and three
	// 32-wide stages address exactly 1024 module prefixes.
	Scaled1024 = Config{Name: "1024proc", Clusters: 32, CEsPerCluster: 32,
		GMModules: 1024, NetStages: 3, SwitchDegree: 32}
	// Scaled4096 is the 4k-processor extreme: 64 clusters of 64 CEs,
	// three stages of 64x64 switches, 4096 modules. Intended for
	// capacity-planning sweeps and the intra-run benchmark trend, not
	// for CI-budget runs.
	Scaled4096 = Config{Name: "4096proc", Clusters: 64, CEsPerCluster: 64,
		GMModules: 4096, NetStages: 3, SwitchDegree: 64}
)

// ScaledConfigs lists the scaled families in ascending CE order.
func ScaledConfigs() []Config {
	return []Config{Scaled64, Deep64, Scaled128, Scaled256, Scaled1024, Scaled4096}
}

// Families returns every named configuration: the five paper
// machines, the unclustered Section-6 machine, and the scaled
// families.
func Families() []Config {
	out := PaperConfigs()
	out = append(out, Unclustered32)
	out = append(out, ScaledConfigs()...)
	return out
}

// FamilyByName returns the named configuration, matching Config.Name
// case-insensitively and also accepting the Go identifier (e.g.
// "Scaled64", "Cedar32").
func FamilyByName(name string) (Config, bool) {
	alias := map[string]Config{
		"cedar1": Cedar1, "cedar4": Cedar4, "cedar8": Cedar8,
		"cedar16": Cedar16, "cedar32": Cedar32,
		"unclustered32": Unclustered32,
		"scaled64":      Scaled64, "scaled128": Scaled128, "scaled256": Scaled256,
		"deep64":     Deep64,
		"scaled1024": Scaled1024, "scaled4096": Scaled4096,
	}
	lower := strings.ToLower(name)
	if c, ok := alias[lower]; ok {
		return c, true
	}
	for _, c := range Families() {
		if strings.ToLower(c.Name) == lower {
			return c, true
		}
	}
	return Config{}, false
}

// Seconds converts a cycle count to seconds of machine time.
func Seconds(cycles int64) float64 { return float64(cycles) / CyclesPerSecond }

// Cycles converts seconds of machine time to cycles.
func Cycles(seconds float64) int64 { return int64(seconds * CyclesPerSecond) }
