package arch

import (
	"testing"
	"testing/quick"
)

func TestPaperConfigsValid(t *testing.T) {
	want := []int{1, 4, 8, 16, 32}
	cfgs := PaperConfigs()
	if len(cfgs) != len(want) {
		t.Fatalf("got %d configs, want %d", len(cfgs), len(want))
	}
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.CEs() != want[i] {
			t.Errorf("%s: CEs = %d, want %d", c.Name, c.CEs(), want[i])
		}
	}
}

func TestSingleClusterSmallConfigs(t *testing.T) {
	// The paper's footnote: 1-, 4-, 8-processor configurations are all
	// one cluster.
	for _, c := range []Config{Cedar1, Cedar4, Cedar8} {
		if c.Clusters != 1 {
			t.Errorf("%s: clusters = %d, want 1", c.Name, c.Clusters)
		}
	}
	if Cedar16.Clusters != 2 || Cedar32.Clusters != 4 {
		t.Errorf("multi-cluster configs wrong: %d, %d", Cedar16.Clusters, Cedar32.Clusters)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "no-clusters", Clusters: 0, CEsPerCluster: 8, GMModules: 32, NetStages: 2, SwitchDegree: 8},
		{Name: "big-cluster", Clusters: 1, CEsPerCluster: 9, GMModules: 32, NetStages: 2, SwitchDegree: 8},
		{Name: "five-clusters", Clusters: 5, CEsPerCluster: 8, GMModules: 32, NetStages: 2, SwitchDegree: 8},
		{Name: "odd-modules", Clusters: 1, CEsPerCluster: 8, GMModules: 31, NetStages: 2, SwitchDegree: 8},
		{Name: "no-stages", Clusters: 1, CEsPerCluster: 8, GMModules: 32, NetStages: 0, SwitchDegree: 8},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", c.Name)
		}
	}
}

func TestCEIDRoundTrip(t *testing.T) {
	c := Cedar32
	seen := map[int]bool{}
	for cl := 0; cl < c.Clusters; cl++ {
		for l := 0; l < c.CEsPerCluster; l++ {
			id := CEID{Cluster: cl, Local: l}
			g := id.Global(c)
			if seen[g] {
				t.Fatalf("duplicate global id %d", g)
			}
			seen[g] = true
			if back := c.CEByGlobal(g); back != id {
				t.Fatalf("round trip %v -> %d -> %v", id, g, back)
			}
		}
	}
	if len(seen) != 32 {
		t.Fatalf("enumerated %d CEs, want 32", len(seen))
	}
}

func TestQuickCEIDRoundTrip(t *testing.T) {
	f := func(g uint8) bool {
		c := Cedar32
		id := c.CEByGlobal(int(g) % c.CEs())
		return id.Global(c) == int(g)%c.CEs() &&
			id.Cluster >= 0 && id.Cluster < c.Clusters &&
			id.Local >= 0 && id.Local < c.CEsPerCluster
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondsCyclesRoundTrip(t *testing.T) {
	if got := Seconds(Cycles(3.5)); got != 3.5 {
		t.Fatalf("Seconds(Cycles(3.5)) = %v", got)
	}
	if got := Seconds(CyclesPerSecond); got != 1.0 {
		t.Fatalf("1 second = %v", got)
	}
	// 50 ns per cycle.
	if got := Seconds(1); got != 50e-9 {
		t.Fatalf("1 cycle = %v s, want 50 ns", got)
	}
}

func TestUnclustered32(t *testing.T) {
	if !Unclustered32.Unclustered {
		t.Fatal("Unclustered32 not flagged")
	}
	if Unclustered32.CEs() != 32 {
		t.Fatalf("Unclustered32 CEs = %d", Unclustered32.CEs())
	}
	if err := Unclustered32.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCostsSane(t *testing.T) {
	cm := DefaultCosts()
	if cm.ModuleCyclesPerWord != 4 {
		t.Errorf("module cycles = %d, want 4 (paper)", cm.ModuleCyclesPerWord)
	}
	if cm.PageFaultConc <= 0 {
		t.Error("concurrent fault surcharge must be positive: a participant" +
			" pays it on top of waiting out the service, making concurrent" +
			" faults dearer than sequential ones (paper)")
	}
	if cm.SyscallGlobal <= cm.SyscallCluster {
		t.Error("global syscall must cost more than cluster syscall")
	}
	if cm.PageBytes <= 0 || cm.CacheLineWords <= 0 {
		t.Error("non-positive size constants")
	}
}
