package arch

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperConfigsValid(t *testing.T) {
	want := []int{1, 4, 8, 16, 32}
	cfgs := PaperConfigs()
	if len(cfgs) != len(want) {
		t.Fatalf("got %d configs, want %d", len(cfgs), len(want))
	}
	for i, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.CEs() != want[i] {
			t.Errorf("%s: CEs = %d, want %d", c.Name, c.CEs(), want[i])
		}
	}
}

func TestSingleClusterSmallConfigs(t *testing.T) {
	// The paper's footnote: 1-, 4-, 8-processor configurations are all
	// one cluster.
	for _, c := range []Config{Cedar1, Cedar4, Cedar8} {
		if c.Clusters != 1 {
			t.Errorf("%s: clusters = %d, want 1", c.Name, c.Clusters)
		}
	}
	if Cedar16.Clusters != 2 || Cedar32.Clusters != 4 {
		t.Errorf("multi-cluster configs wrong: %d, %d", Cedar16.Clusters, Cedar32.Clusters)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "no-clusters", Clusters: 0, CEsPerCluster: 8, GMModules: 32, NetStages: 2, SwitchDegree: 8},
		{Name: "big-cluster", Clusters: 1, CEsPerCluster: 9, GMModules: 32, NetStages: 2, SwitchDegree: 8},
		{Name: "five-clusters", Clusters: 5, CEsPerCluster: 8, GMModules: 32, NetStages: 2, SwitchDegree: 8},
		{Name: "odd-modules", Clusters: 1, CEsPerCluster: 8, GMModules: 31, NetStages: 2, SwitchDegree: 8},
		{Name: "no-stages", Clusters: 1, CEsPerCluster: 8, GMModules: 32, NetStages: 0, SwitchDegree: 8},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", c.Name)
		}
	}
}

func TestCEIDRoundTrip(t *testing.T) {
	c := Cedar32
	seen := map[int]bool{}
	for cl := 0; cl < c.Clusters; cl++ {
		for l := 0; l < c.CEsPerCluster; l++ {
			id := CEID{Cluster: cl, Local: l}
			g := id.Global(c)
			if seen[g] {
				t.Fatalf("duplicate global id %d", g)
			}
			seen[g] = true
			if back := c.CEByGlobal(g); back != id {
				t.Fatalf("round trip %v -> %d -> %v", id, g, back)
			}
		}
	}
	if len(seen) != 32 {
		t.Fatalf("enumerated %d CEs, want 32", len(seen))
	}
}

func TestQuickCEIDRoundTrip(t *testing.T) {
	f := func(g uint8) bool {
		c := Cedar32
		id := c.CEByGlobal(int(g) % c.CEs())
		return id.Global(c) == int(g)%c.CEs() &&
			id.Cluster >= 0 && id.Cluster < c.Clusters &&
			id.Local >= 0 && id.Local < c.CEsPerCluster
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSecondsCyclesRoundTrip(t *testing.T) {
	if got := Seconds(Cycles(3.5)); got != 3.5 {
		t.Fatalf("Seconds(Cycles(3.5)) = %v", got)
	}
	if got := Seconds(CyclesPerSecond); got != 1.0 {
		t.Fatalf("1 second = %v", got)
	}
	// 50 ns per cycle.
	if got := Seconds(1); got != 50e-9 {
		t.Fatalf("1 cycle = %v s, want 50 ns", got)
	}
}

func TestUnclustered32(t *testing.T) {
	if !Unclustered32.Unclustered {
		t.Fatal("Unclustered32 not flagged")
	}
	if Unclustered32.CEs() != 32 {
		t.Fatalf("Unclustered32 CEs = %d", Unclustered32.CEs())
	}
	if err := Unclustered32.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFamiliesAllValid(t *testing.T) {
	want := map[string]int{
		"1proc": 1, "4proc": 4, "8proc": 8, "16proc": 16, "32proc": 32,
		"32flat": 32, "64proc": 64, "64deep": 64, "128proc": 128, "256proc": 256,
		"1024proc": 1024, "4096proc": 4096,
	}
	fams := Families()
	if len(fams) != len(want) {
		t.Fatalf("got %d families, want %d", len(fams), len(want))
	}
	for _, c := range fams {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if ces, ok := want[c.Name]; !ok || c.CEs() != ces {
			t.Errorf("%s: CEs = %d, want %d", c.Name, c.CEs(), ces)
		}
	}
}

func TestFamilyByName(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Config
	}{
		{"32proc", Cedar32},
		{"Cedar32", Cedar32},
		{"scaled64", Scaled64},
		{"64proc", Scaled64},
		{"SCALED128", Scaled128},
		{"deep64", Deep64},
		{"32flat", Unclustered32},
		{"1024proc", Scaled1024},
		{"Scaled4096", Scaled4096},
	} {
		got, ok := FamilyByName(tc.name)
		if !ok || got != tc.want {
			t.Errorf("FamilyByName(%q) = %+v, %v; want %s", tc.name, got, ok, tc.want.Name)
		}
	}
	if _, ok := FamilyByName("9999proc"); ok {
		t.Error("FamilyByName accepted an unknown name")
	}
}

func TestGroupStructure(t *testing.T) {
	// Two-stage machines: one group per stage-1 switch (degree modules).
	if s := Cedar32.GroupSpan(); s != 8 {
		t.Errorf("Cedar32 group span = %d, want 8", s)
	}
	if g := Cedar32.Groups(); g != 4 {
		t.Errorf("Cedar32 groups = %d, want 4", g)
	}
	// Three-stage Deep64: a top-level group spans degree^2 modules.
	if s := Deep64.GroupSpan(); s != 64 {
		t.Errorf("Deep64 group span = %d, want 64", s)
	}
	if g := Deep64.Groups(); g != 8 {
		t.Errorf("Deep64 groups = %d, want 8", g)
	}
	for _, c := range Families() {
		if c.GroupSpan()*c.Groups() < c.GMModules {
			t.Errorf("%s: groups %d x span %d do not cover %d modules",
				c.Name, c.Groups(), c.GroupSpan(), c.GMModules)
		}
	}
}

func TestValidateNamesScalingConstraints(t *testing.T) {
	// Each violated topology constraint must be identified in the error
	// (the CLI surfaces these verbatim).
	for _, tc := range []struct {
		cfg  Config
		frag string
	}{
		{Config{Name: "x", Clusters: 1, CEsPerCluster: 1, GMModules: 512, NetStages: 2, SwitchDegree: 8},
			"addresses at most"},
		{Config{Name: "x", Clusters: 8, CEsPerCluster: 8, GMModules: 32, NetStages: 2, SwitchDegree: 8},
			"exceed network width"},
		{Config{Name: "x", Clusters: 4, CEsPerCluster: 2, GMModules: 8, NetStages: 3, SwitchDegree: 2},
			"selects the cluster"},
		{Config{Name: "x", Clusters: 1, CEsPerCluster: 9, GMModules: 32, NetStages: 2, SwitchDegree: 8},
			"return links overflow"},
	} {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%+v: Validate accepted unrealizable config", tc.cfg)
			continue
		}
		if !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("%+v: error %q does not name the constraint (want %q)", tc.cfg, err, tc.frag)
		}
	}
}

func TestDefaultCostsSane(t *testing.T) {
	cm := DefaultCosts()
	if cm.ModuleCyclesPerWord != 4 {
		t.Errorf("module cycles = %d, want 4 (paper)", cm.ModuleCyclesPerWord)
	}
	if cm.PageFaultConc <= 0 {
		t.Error("concurrent fault surcharge must be positive: a participant" +
			" pays it on top of waiting out the service, making concurrent" +
			" faults dearer than sequential ones (paper)")
	}
	if cm.SyscallGlobal <= cm.SyscallCluster {
		t.Error("global syscall must cost more than cluster syscall")
	}
	if cm.PageBytes <= 0 || cm.CacheLineWords <= 0 {
		t.Error("non-positive size constants")
	}
}
