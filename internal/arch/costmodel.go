package arch

// CostModel collects every unit cost (in CE clock cycles) used by the
// hardware, OS, and runtime models. Defaults are calibrated so that
// the detailed OS overhead table and the contention overheads land in
// the ranges the paper reports for the 4-cluster Cedar (Tables 2 and
// 4); see EXPERIMENTS.md for the calibration record.
type CostModel struct {
	// ---- Global memory & network (Section 7) ----

	// GIFLatency is the Global Interface overhead to inject a request
	// into (or accept a reply from) the interconnection network.
	GIFLatency int64
	// StageLatency is the transit latency through one network stage.
	StageLatency int64
	// PortCyclesPerWord is the occupancy of a crossbar output port per
	// 8-byte word transferred.
	PortCyclesPerWord int64
	// ModuleCyclesPerWord is the occupancy of a global memory module
	// per word: "the global memory takes 4 processor clock cycles to
	// process a request".
	ModuleCyclesPerWord int64
	// ModuleLatency is the access latency of a module for the first
	// word of a request (row access), on top of occupancy.
	ModuleLatency int64

	// ---- Cluster (intra-cluster hardware) ----

	// CacheHitCycles is the shared-cache hit time per word.
	CacheHitCycles int64
	// CacheMissCycles is the added stall per cache miss (cluster
	// memory refill).
	CacheMissCycles int64
	// CacheLineWords is the refill granularity in words.
	CacheLineWords int
	// ConcBusDispatch is the concurrency-control-bus cost to spread a
	// CDOALL across the cluster's CEs.
	ConcBusDispatch int64
	// ConcBusSync is the concurrency-control-bus cost for the
	// cluster-internal synchronization at the end of a CDOALL or the
	// cluster phase of an XDOALL.
	ConcBusSync int64

	// ---- Xylem OS (Section 5) ----

	// CtxSwitch is the cost of one context switch (register save and
	// restore plus bookkeeping), charged to every CE of the cluster
	// being switched (gang scheduling).
	CtxSwitch int64
	// CPIService is the per-CE cost of servicing one cross-processor
	// interrupt (register saves and accounting before the CEs
	// synchronize to a single execution thread).
	CPIService int64
	// PageFaultSeq is the service time of a sequential page fault.
	PageFaultSeq int64
	// PageFaultConc is the per-participant service time of a
	// concurrent page fault (two or more CEs fault on the same page
	// simultaneously); "concurrent page faults are more expensive than
	// sequential page faults".
	PageFaultConc int64
	// SyscallCluster is the service time of a cluster system call.
	SyscallCluster int64
	// SyscallGlobal is the service time of a global system call.
	SyscallGlobal int64
	// CritSectCluster is the hold time of a cluster critical section
	// (cluster memory lock) entered on OS paths.
	CritSectCluster int64
	// CritSectGlobal is the hold time of a global critical section.
	CritSectGlobal int64
	// ASTService is the service time of an asynchronous system trap.
	ASTService int64
	// SchedTickCycles is the period of the per-cluster OS bookkeeping
	// activity that forces a context switch of the application task in
	// a dedicated system ("when the OS server must perform some
	// bookkeeping").
	SchedTickCycles int64
	// ASTPeriodCycles is the mean period between asynchronous system
	// traps delivered to the application.
	ASTPeriodCycles int64

	// ---- Cedar Fortran runtime (Section 6) ----

	// LoopSetup is the CE-local cost of setting up parallel loop
	// parameters when entering an S/C/XDOALL.
	LoopSetup int64
	// IterDispatchLocal is the CE-local bookkeeping per iteration
	// pickup (on top of any global memory traffic the pickup needs).
	IterDispatchLocal int64
	// XdoallPickSerial is the serialized window of an XDOALL iteration
	// pickup: from the test-and-set winning at the memory module until
	// the loop index update commits, during which competing
	// test-and-sets retry. This throughput bound is what makes the
	// flat construct's distribution overhead grow with processor count
	// (Section 6).
	XdoallPickSerial int64
	// SpinPollInterval is the period at which a spinning task
	// re-checks a global memory location (helper tasks checking the
	// sdoall activity lock "every few cycles", and the main task
	// polling the barrier count).
	SpinPollInterval int64
	// BarrierDetach is the CE-local cost for a helper task to detach
	// from a loop at the finish barrier.
	BarrierDetach int64

	// PageBytes is the virtual memory page size.
	PageBytes int64
}

// DefaultCosts returns the calibrated cost model.
//
// Hardware values follow the paper and the Cedar literature where
// stated (4-cycle module processing, two 8x8 stages); OS service
// times are calibrated against Table 2 (costs on the order of 0.5–2 ms
// per event, consistent with a late-1980s Unix derivative).
func DefaultCosts() CostModel {
	const ms = 20_000 // cycles per millisecond at 50 ns/cycle
	const us = 20     // cycles per microsecond
	return CostModel{
		GIFLatency:          5,
		StageLatency:        8,
		PortCyclesPerWord:   1,
		ModuleCyclesPerWord: 4,
		ModuleLatency:       6,

		CacheHitCycles:  1,
		CacheMissCycles: 10,
		CacheLineWords:  4,
		ConcBusDispatch: 12,
		ConcBusSync:     16,

		CtxSwitch:       500 * us, // 0.5 ms: full register file save/restore + bookkeeping
		CPIService:      200 * us, // per CE gathered by the CPI
		PageFaultSeq:    60 * us,
		PageFaultConc:   25 * us, // per participant, on top of waiting out the service
		SyscallCluster:  150 * us,
		SyscallGlobal:   400 * us,
		CritSectCluster: 100 * us,
		CritSectGlobal:  120 * us,
		ASTService:      80 * us,
		SchedTickCycles: 25 * ms, // bookkeeping switch every 25 ms per cluster
		ASTPeriodCycles: 60 * ms,

		LoopSetup:         30,
		IterDispatchLocal: 10,
		XdoallPickSerial:  30,
		SpinPollInterval:  12,
		BarrierDetach:     8,

		PageBytes: 4096,
	}
}
