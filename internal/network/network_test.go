package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/sim"
)

func pair() *Pair { return NewPair(arch.Cedar32, arch.DefaultCosts()) }

func TestFwdRouteDistinctModulesDistinctFinalPorts(t *testing.T) {
	p := pair()
	ce := arch.CEID{Cluster: 0, Local: 0}
	seen := map[int]bool{}
	for m := 0; m < 32; m++ {
		r := p.Forward.fwdRoute(ce, m)
		if r[1] != m {
			t.Fatalf("module %d routed to final port %d", m, r[1])
		}
		if seen[r[1]] {
			t.Fatalf("final port %d reused", r[1])
		}
		seen[r[1]] = true
	}
}

func TestFwdRouteClusterOwnsStage0Switch(t *testing.T) {
	p := pair()
	cfg := arch.Cedar32
	for g := 0; g < cfg.CEs(); g++ {
		id := cfg.CEByGlobal(g)
		for m := 0; m < 32; m++ {
			r := p.Forward.fwdRoute(id, m)
			if sw := r[0] / cfg.SwitchDegree; sw != id.Cluster {
				t.Fatalf("CE %v module %d uses stage-0 switch %d, want %d", id, m, sw, id.Cluster)
			}
		}
	}
}

func TestRevRouteReachesCE(t *testing.T) {
	p := pair()
	cfg := arch.Cedar32
	for g := 0; g < cfg.CEs(); g++ {
		id := cfg.CEByGlobal(g)
		r := p.Return.revRoute(17, id)
		if want := id.Cluster*cfg.SwitchDegree + id.Local; r[1] != want {
			t.Fatalf("CE %v final return port %d, want %d", id, r[1], want)
		}
	}
}

func TestTransitUncontendedLatency(t *testing.T) {
	p := pair()
	cost := arch.DefaultCosts()
	ce := arch.CEID{Cluster: 1, Local: 3}
	arrive, queued := p.Transit(100, ce, 9, 1)
	if queued != 0 {
		t.Fatalf("uncontended transit queued %d", queued)
	}
	// Two stages: each costs port occupancy (1 word) + stage latency.
	want := sim.Time(100) + 2*sim.Duration(cost.PortCyclesPerWord+cost.StageLatency)
	if arrive != want {
		t.Fatalf("arrive = %d, want %d", arrive, want)
	}
}

func TestTransitContentionOnSharedPort(t *testing.T) {
	p := pair()
	ce0 := arch.CEID{Cluster: 0, Local: 0}
	ce1 := arch.CEID{Cluster: 0, Local: 1}
	// Same cluster, same target module: both messages traverse the
	// same stage-0 output port and the same stage-1 port.
	a1, q1 := p.Transit(0, ce0, 5, 64)
	a2, q2 := p.Transit(0, ce1, 5, 64)
	if q1 != 0 {
		t.Fatalf("first message queued %d", q1)
	}
	if q2 == 0 {
		t.Fatal("second message saw no contention on shared route")
	}
	if a2 <= a1 {
		t.Fatalf("second arrival %d not after first %d", a2, a1)
	}
}

func TestTransitNoContentionOnDisjointRoutes(t *testing.T) {
	p := pair()
	// Different clusters, different stage-1 switches (modules 0 and 8).
	a, q1 := p.Transit(0, arch.CEID{Cluster: 0, Local: 0}, 0, 64)
	b, q2 := p.Transit(0, arch.CEID{Cluster: 1, Local: 0}, 8, 64)
	if q1 != 0 || q2 != 0 {
		t.Fatalf("disjoint routes queued %d, %d", q1, q2)
	}
	if a != b {
		t.Fatalf("disjoint equal-size transits differ: %d vs %d", a, b)
	}
}

func TestHotSpotDetection(t *testing.T) {
	p := pair()
	cfg := arch.Cedar32
	// All 32 CEs hammer module 7 — the Pfister/Norton hot spot.
	for g := 0; g < cfg.CEs(); g++ {
		p.Transit(0, cfg.CEByGlobal(g), 7, 16)
	}
	name, delay := p.MaxPortDelay()
	if delay == 0 {
		t.Fatal("hot spot produced no port delay")
	}
	if name == "" {
		t.Fatal("hot port unnamed")
	}
	st := p.Stats()
	if st.DelayTotal < delay {
		t.Fatalf("aggregate delay %d < max port delay %d", st.DelayTotal, delay)
	}
}

// randomValidConfigs samples the parametric config space: every
// combination drawn passes arch.Config.Validate, across switch
// degrees, stage counts, module counts, and cluster shapes.
func randomValidConfigs(rnd *rand.Rand, n int) []arch.Config {
	degrees := []int{2, 4, 8, 16, 32}
	gms := []int{2, 4, 8, 16, 32, 64, 128, 256, 512}
	var out []arch.Config
	for len(out) < n {
		c := arch.Config{
			Name:          "random",
			SwitchDegree:  degrees[rnd.Intn(len(degrees))],
			NetStages:     1 + rnd.Intn(3),
			GMModules:     gms[rnd.Intn(len(gms))],
			Clusters:      1 + rnd.Intn(16),
			CEsPerCluster: 1 + rnd.Intn(16),
		}
		if c.Validate() == nil {
			out = append(out, c)
		}
	}
	return out
}

// TestRoutesInBoundsForRandomValidConfigs is the routing-invariant
// property test: for every valid config the router can be handed, every
// (CE, module) forward and return route has exactly NetStages hops and
// every hop's port index is inside the stage width — Validate's
// constraints are sufficient for the generalized route builder.
func TestRoutesInBoundsForRandomValidConfigs(t *testing.T) {
	rnd := rand.New(rand.NewSource(1994))
	cost := arch.DefaultCosts()
	for _, cfg := range randomValidConfigs(rnd, 60) {
		p := NewPair(cfg, cost)
		width := cfg.NetWidth()
		check := func(kind string, route []int) {
			t.Helper()
			if len(route) != cfg.NetStages {
				t.Fatalf("%+v: %s route %v has %d hops, want %d", cfg, kind, route, len(route), cfg.NetStages)
			}
			for s, port := range route {
				if port < 0 || port >= width {
					t.Fatalf("%+v: %s route %v stage %d port %d outside width %d", cfg, kind, route, s, port, width)
				}
			}
		}
		for g := 0; g < cfg.CEs(); g++ {
			ce := cfg.CEByGlobal(g)
			for m := 0; m < cfg.GMModules; m++ {
				check("fwd", p.Forward.fwdRoute(ce, m))
				check("rev", p.Return.revRoute(m, ce))
			}
			// The vector fan-out helpers obey the same bounds.
			for grp := 0; grp < cfg.Groups(); grp++ {
				if port := p.FwdStage0Port(ce, grp); port < 0 || port >= width {
					t.Fatalf("%+v: FwdStage0Port(%v,%d) = %d outside width %d", cfg, ce, grp, port, width)
				}
				for _, port := range p.RetGroupPorts(grp, ce) {
					if port < 0 || port >= width {
						t.Fatalf("%+v: RetGroupPorts(%d,%v) port %d outside width %d", cfg, grp, ce, port, width)
					}
				}
			}
			if port := p.RetCEPort(ce); port < 0 || port >= width {
				t.Fatalf("%+v: RetCEPort(%v) = %d outside width %d", cfg, ce, port, width)
			}
		}
		for m := 0; m < cfg.GMModules; m++ {
			for _, port := range p.FwdModulePorts(m) {
				if port < 0 || port >= width {
					t.Fatalf("%+v: FwdModulePorts(%d) port %d outside width %d", cfg, m, port, width)
				}
			}
		}
	}
}

// TestTwoStageRoutesMatchLegacyCedar is the seed-regression check: on
// any two-stage member of the family the generalized route builder must
// produce exactly the routes the original hard-coded Cedar
// implementation used — [cluster*d + module/d, module] forward and
// [(module/d)*d + cluster, cluster*d + local] back.
func TestTwoStageRoutesMatchLegacyCedar(t *testing.T) {
	cost := arch.DefaultCosts()
	for _, cfg := range []arch.Config{arch.Cedar32, arch.Cedar4, arch.Scaled64, arch.Scaled256} {
		p := NewPair(cfg, cost)
		d := cfg.SwitchDegree
		for g := 0; g < cfg.CEs(); g++ {
			ce := cfg.CEByGlobal(g)
			for m := 0; m < cfg.GMModules; m++ {
				fwd := p.Forward.fwdRoute(ce, m)
				if fwd[0] != ce.Cluster*d+m/d || fwd[1] != m {
					t.Fatalf("%s: fwd route %v for %v->m%d, want [%d %d]",
						cfg.Name, fwd, ce, m, ce.Cluster*d+m/d, m)
				}
				rev := p.Return.revRoute(m, ce)
				if rev[0] != (m/d)*d+ce.Cluster || rev[1] != ce.Cluster*d+ce.Local {
					t.Fatalf("%s: rev route %v for m%d->%v, want [%d %d]",
						cfg.Name, rev, m, ce, (m/d)*d+ce.Cluster, ce.Cluster*d+ce.Local)
				}
			}
		}
	}
}

// TestThreeStageRoutesConverge exercises k > 2: on Deep64, messages
// from different clusters to the same module must share every port from
// stage 1 on (the delta-network funnel that makes tree saturation
// possible), while distinct modules keep distinct final ports.
func TestThreeStageRoutesConverge(t *testing.T) {
	cfg := arch.Deep64
	p := NewPair(cfg, arch.DefaultCosts())
	a := p.Forward.fwdRoute(arch.CEID{Cluster: 0, Local: 0}, 137)
	b := p.Forward.fwdRoute(arch.CEID{Cluster: 5, Local: 3}, 137)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("route lengths %d, %d, want 3", len(a), len(b))
	}
	if a[0] == b[0] {
		t.Fatalf("different clusters share stage-0 port %d", a[0])
	}
	if a[1] != b[1] || a[2] != b[2] {
		t.Fatalf("routes to one module diverge after stage 0: %v vs %v", a, b)
	}
	if a[2] != 137 {
		t.Fatalf("final port %d, want the module 137", a[2])
	}
}

// TestQueuedCyclesMatchCalendarDelays is the contention-conservation
// check: the queueing each transit reports must in aggregate equal the
// delay the port calendars recorded, and the occupancy booked on the
// calendars must equal the traffic's port-cycles across all stages —
// no queueing is invented or lost in route traversal.
func TestQueuedCyclesMatchCalendarDelays(t *testing.T) {
	cost := arch.DefaultCosts()
	for _, cfg := range []arch.Config{arch.Cedar32, arch.Scaled64, arch.Deep64} {
		p := NewPair(cfg, cost)
		rnd := rand.New(rand.NewSource(7))
		var queued sim.Duration
		var words int64
		for i := 0; i < 400; i++ {
			ce := cfg.CEByGlobal(rnd.Intn(cfg.CEs()))
			mod := rnd.Intn(cfg.GMModules)
			w := 1 + rnd.Intn(64)
			_, qf := p.Transit(sim.Time(rnd.Intn(50)), ce, mod, w)
			_, qr := p.TransitBack(sim.Time(rnd.Intn(50)), mod, ce, w)
			queued += qf + qr
			words += int64(w)
		}
		st := p.Stats()
		if st.DelayTotal != queued {
			t.Fatalf("%s: transits reported %d queued cycles, calendars %d",
				cfg.Name, queued, st.DelayTotal)
		}
		// Each word occupies one port per stage in each direction.
		wantBusy := sim.Duration(2 * words * int64(cfg.NetStages) * cost.PortCyclesPerWord)
		if st.BusyTotal != wantBusy {
			t.Fatalf("%s: calendar occupancy %d cycles, traffic implies %d",
				cfg.Name, st.BusyTotal, wantBusy)
		}
	}
}

func TestQuickTransitMonotone(t *testing.T) {
	// Arrival is never before departure plus the zero-load latency,
	// and queued is never negative.
	cost := arch.DefaultCosts()
	minLatency := 2 * sim.Duration(cost.PortCyclesPerWord+cost.StageLatency)
	f := func(ces []uint8, words uint8) bool {
		p := pair()
		w := int(words%128) + 1
		for _, raw := range ces {
			ce := arch.Cedar32.CEByGlobal(int(raw) % 32)
			mod := int(raw) % 32
			arrive, queued := p.Transit(1000, ce, mod, w)
			if queued < 0 || arrive < 1000+minLatency {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
