package network

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/sim"
)

func pair() *Pair { return NewPair(arch.Cedar32, arch.DefaultCosts()) }

func TestFwdRouteDistinctModulesDistinctFinalPorts(t *testing.T) {
	p := pair()
	ce := arch.CEID{Cluster: 0, Local: 0}
	seen := map[int]bool{}
	for m := 0; m < 32; m++ {
		r := p.Forward.fwdRoute(ce, m)
		if r[1] != m {
			t.Fatalf("module %d routed to final port %d", m, r[1])
		}
		if seen[r[1]] {
			t.Fatalf("final port %d reused", r[1])
		}
		seen[r[1]] = true
	}
}

func TestFwdRouteClusterOwnsStage0Switch(t *testing.T) {
	p := pair()
	cfg := arch.Cedar32
	for g := 0; g < cfg.CEs(); g++ {
		id := cfg.CEByGlobal(g)
		for m := 0; m < 32; m++ {
			r := p.Forward.fwdRoute(id, m)
			if sw := r[0] / cfg.SwitchDegree; sw != id.Cluster {
				t.Fatalf("CE %v module %d uses stage-0 switch %d, want %d", id, m, sw, id.Cluster)
			}
		}
	}
}

func TestRevRouteReachesCE(t *testing.T) {
	p := pair()
	cfg := arch.Cedar32
	for g := 0; g < cfg.CEs(); g++ {
		id := cfg.CEByGlobal(g)
		r := p.Return.revRoute(17, id)
		if want := id.Cluster*cfg.SwitchDegree + id.Local; r[1] != want {
			t.Fatalf("CE %v final return port %d, want %d", id, r[1], want)
		}
	}
}

func TestTransitUncontendedLatency(t *testing.T) {
	p := pair()
	cost := arch.DefaultCosts()
	ce := arch.CEID{Cluster: 1, Local: 3}
	arrive, queued := p.Transit(100, ce, 9, 1)
	if queued != 0 {
		t.Fatalf("uncontended transit queued %d", queued)
	}
	// Two stages: each costs port occupancy (1 word) + stage latency.
	want := sim.Time(100) + 2*sim.Duration(cost.PortCyclesPerWord+cost.StageLatency)
	if arrive != want {
		t.Fatalf("arrive = %d, want %d", arrive, want)
	}
}

func TestTransitContentionOnSharedPort(t *testing.T) {
	p := pair()
	ce0 := arch.CEID{Cluster: 0, Local: 0}
	ce1 := arch.CEID{Cluster: 0, Local: 1}
	// Same cluster, same target module: both messages traverse the
	// same stage-0 output port and the same stage-1 port.
	a1, q1 := p.Transit(0, ce0, 5, 64)
	a2, q2 := p.Transit(0, ce1, 5, 64)
	if q1 != 0 {
		t.Fatalf("first message queued %d", q1)
	}
	if q2 == 0 {
		t.Fatal("second message saw no contention on shared route")
	}
	if a2 <= a1 {
		t.Fatalf("second arrival %d not after first %d", a2, a1)
	}
}

func TestTransitNoContentionOnDisjointRoutes(t *testing.T) {
	p := pair()
	// Different clusters, different stage-1 switches (modules 0 and 8).
	a, q1 := p.Transit(0, arch.CEID{Cluster: 0, Local: 0}, 0, 64)
	b, q2 := p.Transit(0, arch.CEID{Cluster: 1, Local: 0}, 8, 64)
	if q1 != 0 || q2 != 0 {
		t.Fatalf("disjoint routes queued %d, %d", q1, q2)
	}
	if a != b {
		t.Fatalf("disjoint equal-size transits differ: %d vs %d", a, b)
	}
}

func TestHotSpotDetection(t *testing.T) {
	p := pair()
	cfg := arch.Cedar32
	// All 32 CEs hammer module 7 — the Pfister/Norton hot spot.
	for g := 0; g < cfg.CEs(); g++ {
		p.Transit(0, cfg.CEByGlobal(g), 7, 16)
	}
	name, delay := p.MaxPortDelay()
	if delay == 0 {
		t.Fatal("hot spot produced no port delay")
	}
	if name == "" {
		t.Fatal("hot port unnamed")
	}
	st := p.Stats()
	if st.DelayTotal < delay {
		t.Fatalf("aggregate delay %d < max port delay %d", st.DelayTotal, delay)
	}
}

func TestQuickTransitMonotone(t *testing.T) {
	// Arrival is never before departure plus the zero-load latency,
	// and queued is never negative.
	cost := arch.DefaultCosts()
	minLatency := 2 * sim.Duration(cost.PortCyclesPerWord+cost.StageLatency)
	f := func(ces []uint8, words uint8) bool {
		p := pair()
		w := int(words%128) + 1
		for _, raw := range ces {
			ce := arch.Cedar32.CEByGlobal(int(raw) % 32)
			mod := int(raw) % 32
			arrive, queued := p.Transit(1000, ce, mod, w)
			if queued < 0 || arrive < 1000+minLatency {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
