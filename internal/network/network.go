// Package network models the interconnection network of the Cedar
// machine family: a k-stage shuffle-exchange network built from
// degree-d crossbar switches, with one network for the forward path
// (CEs to global memory) and a separate one for the return path
// (global memory to CEs). On the paper's Cedar, k = 2 and d = 8,
// exactly as Section 2 describes; scaled family members widen the
// switches or add stages.
//
// Routes are derived from the configuration instead of hard-coded:
// a forward message selects its stage-0 output by the destination
// module's most significant base-d digit and then funnels through the
// destination's subtree, one digit per stage (delta-network
// self-routing), so paths toward one module converge stage by stage —
// the tree-saturation structure hot-spot studies describe. The return
// network mirrors this toward the CE's cluster and private data link.
// arch.Config.Validate rejects configurations these routes cannot
// realize (too many modules for the stage count, CE-side wiring wider
// than the stages).
//
// Each crossbar output port is a pipelined bandwidth resource. All
// ports of one direction live in a single sim.CalendarStore indexed
// stage*width+port — a struct-of-arrays layout, so the per-access port
// walks of a big configuration touch dense slices instead of
// pointer-chasing one heap object per port. A message of W words
// occupies a port for W*PortCyclesPerWord cycles; queueing at ports is
// the network half of the paper's "global memory and network
// contention" overhead, and hot spots (many CEs targeting one module,
// e.g. a busy-wait barrier through global memory) emerge as deep port
// and module queues.
package network

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
)

// Net is one direction of the Cedar interconnection network.
type Net struct {
	cfg  arch.Config
	cost arch.CostModel
	dir  string // "fwd" or "ret", for diagnostic port names
	// store holds every output port's conveyor state, flattened:
	// port p of stage s is entry s*width+p. Stage 0 is the input
	// stage. For the forward net, the last stage's output ports feed
	// the memory modules; for the return net they feed the CEs.
	store *sim.CalendarStore
	width int
	// stageDivs[s] is SwitchDegree^(NetStages-1-s): the divisor that
	// extracts the destination prefix routed through at stage s,
	// precomputed so route walks are pure integer arithmetic.
	stageDivs []int
	// degrade[s*width+p] > 1 stretches port p of stage s: each word
	// occupies the port that many times longer (a flaky link running
	// at reduced bandwidth). nil until a fault arms it.
	degrade []float64
}

// DegradePort stretches the bandwidth of one output port: words
// through it occupy factor times as many cycles. Factors <= 1 restore
// nominal speed.
func (n *Net) DegradePort(stage, port int, factor float64) {
	if n.degrade == nil {
		n.degrade = make([]float64, n.cfg.NetStages*n.width)
	}
	n.degrade[stage*n.width+port] = factor
}

// portBusy returns the occupancy of a words-long burst at the given
// port, including any degradation factor.
func (n *Net) portBusy(stage, port, words int) sim.Duration {
	busy := int64(words) * n.cost.PortCyclesPerWord
	if n.degrade != nil {
		if f := n.degrade[stage*n.width+port]; f > 1 {
			busy = int64(float64(busy)*f + 0.5)
		}
	}
	return sim.Duration(busy)
}

// portName synthesizes the diagnostic name of a port from its flat
// store index.
func (n *Net) portName(idx int) string {
	return fmt.Sprintf("%s.s%d.p%d", n.dir, idx/n.width, idx%n.width)
}

// newNet builds one direction with the given name prefix.
func newNet(cfg arch.Config, cost arch.CostModel, dir string) *Net {
	// Every stage is GMModules ports wide; on the CE side the wiring
	// supports the full machine regardless of how many CEs the
	// configuration populates — "the different Cedar configurations
	// ... use the same interconnection network and memory".
	width := cfg.NetWidth()
	n := &Net{
		cfg:       cfg,
		cost:      cost,
		dir:       dir,
		store:     sim.NewCalendarStore(cfg.NetStages * width),
		width:     width,
		stageDivs: make([]int, cfg.NetStages),
	}
	for s := 0; s < cfg.NetStages; s++ {
		n.stageDivs[s] = stageDiv(cfg, s)
	}
	return n
}

// Forward and Return are the two directions of the network pair.
type Pair struct {
	Forward *Net
	Return  *Net
}

// NewPair builds the forward and return networks.
func NewPair(cfg arch.Config, cost arch.CostModel) *Pair {
	return &Pair{
		Forward: newNet(cfg, cost, "fwd"),
		Return:  newNet(cfg, cost, "ret"),
	}
}

// stageDiv returns SwitchDegree^(NetStages-1-stage): the divisor that
// extracts the destination prefix routed through at the given stage.
func stageDiv(cfg arch.Config, stage int) int {
	div := 1
	for i := 0; i < cfg.NetStages-1-stage; i++ {
		div *= cfg.SwitchDegree
	}
	return div
}

// fwdRoute returns the output-port indices a message from the given CE
// to the given module traverses, one per stage (len == NetStages).
//
// Stage 0: the CE's cluster feeds input switch `cluster`; the output
// port selects the module's top-level subtree (its most significant
// base-d digit, module / d^(k-1)). Stage i >= 1: the message is inside
// the module's subtree; the port index is the module's prefix through
// that stage, module / d^(k-1-i) — paths toward one module converge
// stage by stage. The final stage's port is the module itself. For the
// paper's two-stage network this is exactly [cluster*d + module/d,
// module].
func (n *Net) fwdRoute(ce arch.CEID, module int) []int {
	d := n.cfg.SwitchDegree
	route := make([]int, n.cfg.NetStages)
	route[0] = ce.Cluster*d + module/n.stageDivs[0]
	for s := 1; s < n.cfg.NetStages; s++ {
		route[s] = module / n.stageDivs[s]
	}
	return route
}

// revRoute is the mirror route from a module back to a CE: stage 0
// leaves the module's top-level switch toward the destination cluster
// (one output digit per cluster), intermediate stages funnel through
// the cluster's subtree (prefixes of the CE's endpoint index
// cluster*d + local), and the final stage's port is the CE's private
// data link. For two stages this is exactly [(module/d)*d + cluster,
// cluster*d + local].
func (n *Net) revRoute(module int, ce arch.CEID) []int {
	d := n.cfg.SwitchDegree
	e := ce.Cluster*d + ce.Local // CE endpoint index on the return side
	if n.cfg.NetStages == 1 {
		// A single-crossbar return network: the only stage is the CE's
		// own data link.
		return []int{e}
	}
	route := make([]int, n.cfg.NetStages)
	route[0] = (module/n.stageDivs[0])*d + ce.Cluster
	for s := 1; s < n.cfg.NetStages; s++ {
		route[s] = e / n.stageDivs[s]
	}
	return route
}

// Transit carries a message of the given word count across the
// network in the forward direction, departing no earlier than at.
// It returns the time the message has fully arrived at the module side
// and the queueing delay suffered at ports (the contention component).
func (p *Pair) Transit(at sim.Time, ce arch.CEID, module int, words int) (arrive sim.Time, queued sim.Duration) {
	return p.Forward.transit(at, p.Forward.fwdRoute(ce, module), words)
}

// TransitBack carries a reply of the given word count from the module
// back to the CE.
func (p *Pair) TransitBack(at sim.Time, module int, ce arch.CEID, words int) (arrive sim.Time, queued sim.Duration) {
	return p.Return.transit(at, p.Return.revRoute(module, ce), words)
}

func (n *Net) transit(at sim.Time, route []int, words int) (sim.Time, sim.Duration) {
	if words < 1 {
		words = 1
	}
	if len(route) != n.cfg.NetStages {
		panic(fmt.Sprintf("network: route %v has %d stages, network has %d",
			route, len(route), n.cfg.NetStages))
	}
	var queued sim.Duration
	t := at
	for s, port := range route {
		start, end := n.store.Reserve(s*n.width+port, t, n.portBusy(s, port, words))
		queued += start - t
		// The head of the message moves on after the stage latency;
		// the tail clears the port at end. The next stage can begin
		// accepting at head arrival, but cannot finish before the tail
		// has passed, so we propagate the tail time plus latency.
		t = end + sim.Duration(n.cost.StageLatency)
	}
	return t, queued
}

// Port reserves one specific output port of one stage for a
// words-long burst departing no earlier than at. Vector accesses use
// this to fan a stride-1 stream out across the stage-1 switches (each
// slice of the vector traverses a different port), which is how the
// real shuffle-exchange network carries interleaved vectors.
// It returns the time the burst has cleared the port plus the stage
// transit latency, and the queueing delay.
func (n *Net) Port(stage, port int, at sim.Time, words int) (sim.Time, sim.Duration) {
	if words < 1 {
		words = 1
	}
	start, end := n.store.Reserve(stage*n.width+port, at, n.portBusy(stage, port, words))
	return end + sim.Duration(n.cost.StageLatency), start - at
}

// FwdStage0Port returns the forward stage-0 port index a message from
// the CE's cluster takes toward top-level group g (the subtree of
// modules sharing the most significant destination digit).
func (p *Pair) FwdStage0Port(ce arch.CEID, g int) int {
	return ce.Cluster*p.Forward.cfg.SwitchDegree + g
}

// FwdModulePorts returns the forward port indices a message traverses
// inside the module's subtree — stages 1..k-1, ending at the module's
// own port. For the two-stage Cedar network this is just [module].
// The hot path uses the allocation-free ReserveFwdSubtree instead.
func (p *Pair) FwdModulePorts(module int) []int {
	k := p.Forward.cfg.NetStages
	ports := make([]int, 0, k-1)
	for s := 1; s < k; s++ {
		ports = append(ports, module/p.Forward.stageDivs[s])
	}
	return ports
}

// RetGroupPorts returns the return port indices a reply burst from
// top-level group g traverses before the CE's private link — stages
// 0..k-2, leaving the group's switch toward the CE's cluster and
// funneling through the cluster's subtree. For the two-stage Cedar
// network this is just [g*d + cluster]. The hot path uses the
// allocation-free ReserveRetGroup instead.
func (p *Pair) RetGroupPorts(g int, ce arch.CEID) []int {
	cfg := p.Return.cfg
	d := cfg.SwitchDegree
	k := cfg.NetStages
	ports := make([]int, 0, k-1)
	if k >= 2 {
		ports = append(ports, g*d+ce.Cluster)
	}
	e := ce.Cluster*d + ce.Local
	for s := 1; s < k-1; s++ {
		ports = append(ports, e/p.Return.stageDivs[s])
	}
	return ports
}

// ReserveFwdSubtree carries one module slice through forward stages
// 1..k-1 in a single walk: the batched form of calling Port along
// FwdModulePorts, with the per-call route slice and repeated divisor
// recomputation coalesced into one pass over the store. It returns the
// time the slice has fully arrived at the module's input and the
// queueing delay accumulated at the traversed ports.
func (p *Pair) ReserveFwdSubtree(module int, at sim.Time, words int) (arrive sim.Time, queued sim.Duration) {
	n := p.Forward
	if words < 1 {
		words = 1
	}
	t := at
	for s := 1; s < n.cfg.NetStages; s++ {
		port := module / n.stageDivs[s]
		start, end := n.store.Reserve(s*n.width+port, t, n.portBusy(s, port, words))
		queued += start - t
		t = end + sim.Duration(n.cost.StageLatency)
	}
	return t, queued
}

// ReserveRetGroup carries a group's reply burst through return stages
// 0..k-2 in a single walk: the batched form of calling Port along
// RetGroupPorts. It returns the time the burst has cleared the last
// group stage and the queueing delay accumulated on the way.
func (p *Pair) ReserveRetGroup(g int, ce arch.CEID, at sim.Time, words int) (arrive sim.Time, queued sim.Duration) {
	n := p.Return
	if words < 1 {
		words = 1
	}
	d := n.cfg.SwitchDegree
	k := n.cfg.NetStages
	t := at
	if k >= 2 {
		port := g*d + ce.Cluster
		start, end := n.store.Reserve(port, t, n.portBusy(0, port, words))
		queued += start - t
		t = end + sim.Duration(n.cost.StageLatency)
	}
	e := ce.Cluster*d + ce.Local
	for s := 1; s < k-1; s++ {
		port := e / n.stageDivs[s]
		start, end := n.store.Reserve(s*n.width+port, t, n.portBusy(s, port, words))
		queued += start - t
		t = end + sim.Duration(n.cost.StageLatency)
	}
	return t, queued
}

// RetCEPort returns the final return-stage port index feeding the CE —
// the CE's private data link, which every reply word funnels through.
func (p *Pair) RetCEPort(ce arch.CEID) int {
	return ce.Cluster*p.Return.cfg.SwitchDegree + ce.Local
}

// PortStats aggregates calendar statistics over all ports of both
// directions — the network's total contribution to contention.
type PortStats struct {
	Reservations uint64
	BusyTotal    sim.Duration
	DelayTotal   sim.Duration
	Delayed      uint64
}

// Stats returns aggregate port statistics for the pair.
func (p *Pair) Stats() PortStats {
	var st PortStats
	for _, n := range []*Net{p.Forward, p.Return} {
		res, busy, delay, delayed := n.store.Totals()
		st.Reservations += res
		st.BusyTotal += busy
		st.DelayTotal += delay
		st.Delayed += delayed
	}
	return st
}

// Backlog returns the deepest port queue at time now across both
// directions: the largest span by which any port's next-free time
// exceeds now. Hot spots (many CEs hammering one module's port, e.g. a
// busy-wait barrier through global memory) show up as spikes in this
// signal; the time-series collector samples it.
func (p *Pair) Backlog(now sim.Time) sim.Duration {
	var max sim.Duration
	for _, n := range []*Net{p.Forward, p.Return} {
		if b := n.store.MaxBacklog(now); b > max {
			max = b
		}
	}
	return max
}

// MaxPortDelay returns the largest cumulative queueing delay on any
// single port — a hot-spot indicator.
func (p *Pair) MaxPortDelay() (name string, delay sim.Duration) {
	for _, n := range []*Net{p.Forward, p.Return} {
		if idx, d := n.store.MaxDelayIndex(); d > delay {
			delay = d
			name = n.portName(idx)
		}
	}
	return name, delay
}
