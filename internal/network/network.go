// Package network models Cedar's interconnection network: a two-stage
// shuffle-exchange network built from 8x8 crossbar switches, with one
// network for the forward path (CEs to global memory) and a separate
// one for the return path (global memory to CEs), exactly as Section 2
// of the paper describes.
//
// Each crossbar output port is a pipelined bandwidth resource
// (sim.Calendar). A message of W words occupies a port for
// W*PortCyclesPerWord cycles; queueing at ports is the network half of
// the paper's "global memory and network contention" overhead, and
// hot spots (many CEs targeting one module, e.g. a busy-wait barrier
// through global memory) emerge as deep port and module queues.
package network

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
)

// Net is one direction of the Cedar interconnection network.
type Net struct {
	cfg  arch.Config
	cost arch.CostModel
	// ports[s][i] is output port i of stage s. Stage 0 is the input
	// stage. For the forward net, stage-1 output ports feed the
	// memory modules; for the return net they feed the CEs.
	ports [][]*sim.Calendar
	// degrade[s][i] > 1 stretches port i of stage s: each word
	// occupies the port that many times longer (a flaky link running
	// at reduced bandwidth). nil until a fault arms it.
	degrade [][]float64
}

// DegradePort stretches the bandwidth of one output port: words
// through it occupy factor times as many cycles. Factors <= 1 restore
// nominal speed.
func (n *Net) DegradePort(stage, port int, factor float64) {
	if n.degrade == nil {
		n.degrade = make([][]float64, len(n.ports))
		for s := range n.ports {
			n.degrade[s] = make([]float64, len(n.ports[s]))
		}
	}
	n.degrade[stage][port] = factor
}

// portBusy returns the occupancy of a words-long burst at the given
// port, including any degradation factor.
func (n *Net) portBusy(stage, port, words int) sim.Duration {
	busy := int64(words) * n.cost.PortCyclesPerWord
	if n.degrade != nil && n.degrade[stage][port] > 1 {
		busy = int64(float64(busy)*n.degrade[stage][port] + 0.5)
	}
	return sim.Duration(busy)
}

// newNet builds one direction with the given name prefix.
func newNet(cfg arch.Config, cost arch.CostModel, dir string) *Net {
	n := &Net{cfg: cfg, cost: cost}
	n.ports = make([][]*sim.Calendar, cfg.NetStages)
	// Endpoint count on the memory side is GMModules; on the CE side
	// the wiring supports the full machine (4 clusters x 8 CEs = 32)
	// regardless of how many CEs the configuration populates —
	// "the different Cedar configurations ... use the same
	// interconnection network and memory".
	width := cfg.GMModules
	for s := 0; s < cfg.NetStages; s++ {
		n.ports[s] = make([]*sim.Calendar, width)
		for i := 0; i < width; i++ {
			n.ports[s][i] = sim.NewCalendar(fmt.Sprintf("%s.s%d.p%d", dir, s, i))
		}
	}
	return n
}

// Forward and Return are the two directions of the network pair.
type Pair struct {
	Forward *Net
	Return  *Net
}

// NewPair builds the forward and return networks.
func NewPair(cfg arch.Config, cost arch.CostModel) *Pair {
	return &Pair{
		Forward: newNet(cfg, cost, "fwd"),
		Return:  newNet(cfg, cost, "ret"),
	}
}

// fwdRoute returns the output-port indices a message from the given CE
// to the given module traverses, one per stage.
//
// Stage 0: the CE's cluster feeds switch `cluster`; the output port
// selects the stage-1 switch that owns the module (module/degree).
// Stage 1: switch module/degree; the output port is the module itself.
func (n *Net) fwdRoute(ce arch.CEID, module int) [2]int {
	d := n.cfg.SwitchDegree
	s1Switch := module / d
	return [2]int{
		ce.Cluster*d + s1Switch, // stage-0 port: (input switch, output toward s1Switch)
		module,                  // stage-1 port: toward the module
	}
}

// revRoute is the mirror route from a module back to a CE.
func (n *Net) revRoute(module int, ce arch.CEID) [2]int {
	d := n.cfg.SwitchDegree
	s1Switch := ce.Cluster // return stage-1 switch that owns the cluster
	return [2]int{
		(module/d)*d + s1Switch, // stage-0 port on the module-side switch toward the cluster's switch
		ce.Cluster*d + ce.Local, // stage-1 port: toward the CE
	}
}

// Transit carries a message of the given word count across the
// network in the forward direction, departing no earlier than at.
// It returns the time the message has fully arrived at the module side
// and the queueing delay suffered at ports (the contention component).
func (p *Pair) Transit(at sim.Time, ce arch.CEID, module int, words int) (arrive sim.Time, queued sim.Duration) {
	return p.Forward.transit(at, p.Forward.fwdRoute(ce, module), words)
}

// TransitBack carries a reply of the given word count from the module
// back to the CE.
func (p *Pair) TransitBack(at sim.Time, module int, ce arch.CEID, words int) (arrive sim.Time, queued sim.Duration) {
	return p.Return.transit(at, p.Return.revRoute(module, ce), words)
}

func (n *Net) transit(at sim.Time, route [2]int, words int) (sim.Time, sim.Duration) {
	if words < 1 {
		words = 1
	}
	var queued sim.Duration
	t := at
	for s := 0; s < n.cfg.NetStages && s < len(route); s++ {
		start, end := n.ports[s][route[s]].Reserve(t, n.portBusy(s, route[s], words))
		queued += start - t
		// The head of the message moves on after the stage latency;
		// the tail clears the port at end. The next stage can begin
		// accepting at head arrival, but cannot finish before the tail
		// has passed, so we propagate the tail time plus latency.
		t = end + sim.Duration(n.cost.StageLatency)
	}
	return t, queued
}

// Port reserves one specific output port of one stage for a
// words-long burst departing no earlier than at. Vector accesses use
// this to fan a stride-1 stream out across the stage-1 switches (each
// slice of the vector traverses a different port), which is how the
// real shuffle-exchange network carries interleaved vectors.
// It returns the time the burst has cleared the port plus the stage
// transit latency, and the queueing delay.
func (n *Net) Port(stage, port int, at sim.Time, words int) (sim.Time, sim.Duration) {
	if words < 1 {
		words = 1
	}
	start, end := n.ports[stage][port].Reserve(at, n.portBusy(stage, port, words))
	return end + sim.Duration(n.cost.StageLatency), start - at
}

// FwdStage0Port returns the forward stage-0 port index a message from
// the CE's cluster takes toward stage-1 switch s1.
func (p *Pair) FwdStage0Port(ce arch.CEID, s1 int) int {
	return ce.Cluster*p.Forward.cfg.SwitchDegree + s1
}

// FwdStage1Port returns the forward stage-1 port index feeding the
// module.
func (p *Pair) FwdStage1Port(module int) int { return module }

// RetStage0Port returns the return stage-0 port index from the
// module's switch toward the CE's cluster.
func (p *Pair) RetStage0Port(module int, ce arch.CEID) int {
	d := p.Return.cfg.SwitchDegree
	return (module/d)*d + ce.Cluster
}

// RetStage1Port returns the return stage-1 port index feeding the CE —
// the CE's private data link, which every reply word funnels through.
func (p *Pair) RetStage1Port(ce arch.CEID) int {
	return ce.Cluster*p.Return.cfg.SwitchDegree + ce.Local
}

// PortStats aggregates calendar statistics over all ports of both
// directions — the network's total contribution to contention.
type PortStats struct {
	Reservations uint64
	BusyTotal    sim.Duration
	DelayTotal   sim.Duration
	Delayed      uint64
}

// Stats returns aggregate port statistics for the pair.
func (p *Pair) Stats() PortStats {
	var st PortStats
	for _, n := range []*Net{p.Forward, p.Return} {
		for _, stage := range n.ports {
			for _, port := range stage {
				st.Reservations += port.Reservations()
				st.BusyTotal += port.BusyTotal()
				st.DelayTotal += port.DelayTotal()
				st.Delayed += port.Delayed()
			}
		}
	}
	return st
}

// Backlog returns the deepest port queue at time now across both
// directions: the largest span by which any port's next-free time
// exceeds now. Hot spots (many CEs hammering one module's port, e.g. a
// busy-wait barrier through global memory) show up as spikes in this
// signal; the time-series collector samples it.
func (p *Pair) Backlog(now sim.Time) sim.Duration {
	var max sim.Duration
	for _, n := range []*Net{p.Forward, p.Return} {
		for _, stage := range n.ports {
			for _, port := range stage {
				if b := port.FreeAt() - now; b > max {
					max = b
				}
			}
		}
	}
	return max
}

// MaxPortDelay returns the largest cumulative queueing delay on any
// single port — a hot-spot indicator.
func (p *Pair) MaxPortDelay() (name string, delay sim.Duration) {
	for _, n := range []*Net{p.Forward, p.Return} {
		for _, stage := range n.ports {
			for _, port := range stage {
				if port.DelayTotal() > delay {
					delay = port.DelayTotal()
					name = port.Name()
				}
			}
		}
	}
	return name, delay
}
