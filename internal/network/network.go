// Package network models the interconnection network of the Cedar
// machine family: a k-stage shuffle-exchange network built from
// degree-d crossbar switches, with one network for the forward path
// (CEs to global memory) and a separate one for the return path
// (global memory to CEs). On the paper's Cedar, k = 2 and d = 8,
// exactly as Section 2 describes; scaled family members widen the
// switches or add stages.
//
// Routes are derived from the configuration instead of hard-coded:
// a forward message selects its stage-0 output by the destination
// module's most significant base-d digit and then funnels through the
// destination's subtree, one digit per stage (delta-network
// self-routing), so paths toward one module converge stage by stage —
// the tree-saturation structure hot-spot studies describe. The return
// network mirrors this toward the CE's cluster and private data link.
// arch.Config.Validate rejects configurations these routes cannot
// realize (too many modules for the stage count, CE-side wiring wider
// than the stages).
//
// Each crossbar output port is a pipelined bandwidth resource
// (sim.Calendar). A message of W words occupies a port for
// W*PortCyclesPerWord cycles; queueing at ports is the network half of
// the paper's "global memory and network contention" overhead, and
// hot spots (many CEs targeting one module, e.g. a busy-wait barrier
// through global memory) emerge as deep port and module queues.
package network

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
)

// Net is one direction of the Cedar interconnection network.
type Net struct {
	cfg  arch.Config
	cost arch.CostModel
	// ports[s][i] is output port i of stage s. Stage 0 is the input
	// stage. For the forward net, stage-1 output ports feed the
	// memory modules; for the return net they feed the CEs.
	ports [][]*sim.Calendar
	// degrade[s][i] > 1 stretches port i of stage s: each word
	// occupies the port that many times longer (a flaky link running
	// at reduced bandwidth). nil until a fault arms it.
	degrade [][]float64
}

// DegradePort stretches the bandwidth of one output port: words
// through it occupy factor times as many cycles. Factors <= 1 restore
// nominal speed.
func (n *Net) DegradePort(stage, port int, factor float64) {
	if n.degrade == nil {
		n.degrade = make([][]float64, len(n.ports))
		for s := range n.ports {
			n.degrade[s] = make([]float64, len(n.ports[s]))
		}
	}
	n.degrade[stage][port] = factor
}

// portBusy returns the occupancy of a words-long burst at the given
// port, including any degradation factor.
func (n *Net) portBusy(stage, port, words int) sim.Duration {
	busy := int64(words) * n.cost.PortCyclesPerWord
	if n.degrade != nil && n.degrade[stage][port] > 1 {
		busy = int64(float64(busy)*n.degrade[stage][port] + 0.5)
	}
	return sim.Duration(busy)
}

// newNet builds one direction with the given name prefix.
func newNet(cfg arch.Config, cost arch.CostModel, dir string) *Net {
	n := &Net{cfg: cfg, cost: cost}
	n.ports = make([][]*sim.Calendar, cfg.NetStages)
	// Every stage is GMModules ports wide; on the CE side the wiring
	// supports the full machine regardless of how many CEs the
	// configuration populates — "the different Cedar configurations
	// ... use the same interconnection network and memory".
	width := cfg.NetWidth()
	for s := 0; s < cfg.NetStages; s++ {
		n.ports[s] = make([]*sim.Calendar, width)
		for i := 0; i < width; i++ {
			n.ports[s][i] = sim.NewCalendar(fmt.Sprintf("%s.s%d.p%d", dir, s, i))
		}
	}
	return n
}

// Forward and Return are the two directions of the network pair.
type Pair struct {
	Forward *Net
	Return  *Net
}

// NewPair builds the forward and return networks.
func NewPair(cfg arch.Config, cost arch.CostModel) *Pair {
	return &Pair{
		Forward: newNet(cfg, cost, "fwd"),
		Return:  newNet(cfg, cost, "ret"),
	}
}

// stageDiv returns SwitchDegree^(NetStages-1-stage): the divisor that
// extracts the destination prefix routed through at the given stage.
func stageDiv(cfg arch.Config, stage int) int {
	div := 1
	for i := 0; i < cfg.NetStages-1-stage; i++ {
		div *= cfg.SwitchDegree
	}
	return div
}

// fwdRoute returns the output-port indices a message from the given CE
// to the given module traverses, one per stage (len == NetStages).
//
// Stage 0: the CE's cluster feeds input switch `cluster`; the output
// port selects the module's top-level subtree (its most significant
// base-d digit, module / d^(k-1)). Stage i >= 1: the message is inside
// the module's subtree; the port index is the module's prefix through
// that stage, module / d^(k-1-i) — paths toward one module converge
// stage by stage. The final stage's port is the module itself. For the
// paper's two-stage network this is exactly [cluster*d + module/d,
// module].
func (n *Net) fwdRoute(ce arch.CEID, module int) []int {
	d := n.cfg.SwitchDegree
	route := make([]int, n.cfg.NetStages)
	route[0] = ce.Cluster*d + module/stageDiv(n.cfg, 0)
	for s := 1; s < n.cfg.NetStages; s++ {
		route[s] = module / stageDiv(n.cfg, s)
	}
	return route
}

// revRoute is the mirror route from a module back to a CE: stage 0
// leaves the module's top-level switch toward the destination cluster
// (one output digit per cluster), intermediate stages funnel through
// the cluster's subtree (prefixes of the CE's endpoint index
// cluster*d + local), and the final stage's port is the CE's private
// data link. For two stages this is exactly [(module/d)*d + cluster,
// cluster*d + local].
func (n *Net) revRoute(module int, ce arch.CEID) []int {
	d := n.cfg.SwitchDegree
	e := ce.Cluster*d + ce.Local // CE endpoint index on the return side
	if n.cfg.NetStages == 1 {
		// A single-crossbar return network: the only stage is the CE's
		// own data link.
		return []int{e}
	}
	route := make([]int, n.cfg.NetStages)
	route[0] = (module/stageDiv(n.cfg, 0))*d + ce.Cluster
	for s := 1; s < n.cfg.NetStages; s++ {
		route[s] = e / stageDiv(n.cfg, s)
	}
	return route
}

// Transit carries a message of the given word count across the
// network in the forward direction, departing no earlier than at.
// It returns the time the message has fully arrived at the module side
// and the queueing delay suffered at ports (the contention component).
func (p *Pair) Transit(at sim.Time, ce arch.CEID, module int, words int) (arrive sim.Time, queued sim.Duration) {
	return p.Forward.transit(at, p.Forward.fwdRoute(ce, module), words)
}

// TransitBack carries a reply of the given word count from the module
// back to the CE.
func (p *Pair) TransitBack(at sim.Time, module int, ce arch.CEID, words int) (arrive sim.Time, queued sim.Duration) {
	return p.Return.transit(at, p.Return.revRoute(module, ce), words)
}

func (n *Net) transit(at sim.Time, route []int, words int) (sim.Time, sim.Duration) {
	if words < 1 {
		words = 1
	}
	if len(route) != n.cfg.NetStages {
		panic(fmt.Sprintf("network: route %v has %d stages, network has %d",
			route, len(route), n.cfg.NetStages))
	}
	var queued sim.Duration
	t := at
	for s, port := range route {
		start, end := n.ports[s][port].Reserve(t, n.portBusy(s, port, words))
		queued += start - t
		// The head of the message moves on after the stage latency;
		// the tail clears the port at end. The next stage can begin
		// accepting at head arrival, but cannot finish before the tail
		// has passed, so we propagate the tail time plus latency.
		t = end + sim.Duration(n.cost.StageLatency)
	}
	return t, queued
}

// Port reserves one specific output port of one stage for a
// words-long burst departing no earlier than at. Vector accesses use
// this to fan a stride-1 stream out across the stage-1 switches (each
// slice of the vector traverses a different port), which is how the
// real shuffle-exchange network carries interleaved vectors.
// It returns the time the burst has cleared the port plus the stage
// transit latency, and the queueing delay.
func (n *Net) Port(stage, port int, at sim.Time, words int) (sim.Time, sim.Duration) {
	if words < 1 {
		words = 1
	}
	start, end := n.ports[stage][port].Reserve(at, n.portBusy(stage, port, words))
	return end + sim.Duration(n.cost.StageLatency), start - at
}

// FwdStage0Port returns the forward stage-0 port index a message from
// the CE's cluster takes toward top-level group g (the subtree of
// modules sharing the most significant destination digit).
func (p *Pair) FwdStage0Port(ce arch.CEID, g int) int {
	return ce.Cluster*p.Forward.cfg.SwitchDegree + g
}

// FwdModulePorts returns the forward port indices a message traverses
// inside the module's subtree — stages 1..k-1, ending at the module's
// own port. For the two-stage Cedar network this is just [module].
func (p *Pair) FwdModulePorts(module int) []int {
	k := p.Forward.cfg.NetStages
	ports := make([]int, 0, k-1)
	for s := 1; s < k; s++ {
		ports = append(ports, module/stageDiv(p.Forward.cfg, s))
	}
	return ports
}

// RetGroupPorts returns the return port indices a reply burst from
// top-level group g traverses before the CE's private link — stages
// 0..k-2, leaving the group's switch toward the CE's cluster and
// funneling through the cluster's subtree. For the two-stage Cedar
// network this is just [g*d + cluster].
func (p *Pair) RetGroupPorts(g int, ce arch.CEID) []int {
	cfg := p.Return.cfg
	d := cfg.SwitchDegree
	k := cfg.NetStages
	ports := make([]int, 0, k-1)
	if k >= 2 {
		ports = append(ports, g*d+ce.Cluster)
	}
	e := ce.Cluster*d + ce.Local
	for s := 1; s < k-1; s++ {
		ports = append(ports, e/stageDiv(cfg, s))
	}
	return ports
}

// RetCEPort returns the final return-stage port index feeding the CE —
// the CE's private data link, which every reply word funnels through.
func (p *Pair) RetCEPort(ce arch.CEID) int {
	return ce.Cluster*p.Return.cfg.SwitchDegree + ce.Local
}

// PortStats aggregates calendar statistics over all ports of both
// directions — the network's total contribution to contention.
type PortStats struct {
	Reservations uint64
	BusyTotal    sim.Duration
	DelayTotal   sim.Duration
	Delayed      uint64
}

// Stats returns aggregate port statistics for the pair.
func (p *Pair) Stats() PortStats {
	var st PortStats
	for _, n := range []*Net{p.Forward, p.Return} {
		for _, stage := range n.ports {
			for _, port := range stage {
				st.Reservations += port.Reservations()
				st.BusyTotal += port.BusyTotal()
				st.DelayTotal += port.DelayTotal()
				st.Delayed += port.Delayed()
			}
		}
	}
	return st
}

// Backlog returns the deepest port queue at time now across both
// directions: the largest span by which any port's next-free time
// exceeds now. Hot spots (many CEs hammering one module's port, e.g. a
// busy-wait barrier through global memory) show up as spikes in this
// signal; the time-series collector samples it.
func (p *Pair) Backlog(now sim.Time) sim.Duration {
	var max sim.Duration
	for _, n := range []*Net{p.Forward, p.Return} {
		for _, stage := range n.ports {
			for _, port := range stage {
				if b := port.FreeAt() - now; b > max {
					max = b
				}
			}
		}
	}
	return max
}

// MaxPortDelay returns the largest cumulative queueing delay on any
// single port — a hot-spot indicator.
func (p *Pair) MaxPortDelay() (name string, delay sim.Duration) {
	for _, n := range []*Net{p.Forward, p.Return} {
		for _, stage := range n.ports {
			for _, port := range stage {
				if port.DelayTotal() > delay {
					delay = port.DelayTotal()
					name = port.Name()
				}
			}
		}
	}
	return name, delay
}
