package statfx

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestSamplerCountsActiveCEs(t *testing.T) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, arch.Cedar8, arch.DefaultCosts())
	s := NewSampler(m, 100)
	// Two CEs busy for 10k cycles, the rest idle.
	for g := 0; g < 2; g++ {
		ce := m.CE(g)
		k.Spawn("ce", func(p *sim.Proc) {
			ce.Proc = p
			ce.Spend(10_000, metrics.CatLoopIter)
		})
	}
	k.Run(10_000)
	s.Stop()
	k.RunAll()
	got := s.ClusterConcurrency(0)
	if got < 1.9 || got > 2.1 {
		t.Fatalf("sampled concurrency = %v, want ~2", got)
	}
	if s.Samples() == 0 {
		t.Fatal("no samples taken")
	}
}

func TestSamplerStops(t *testing.T) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, arch.Cedar4, arch.DefaultCosts())
	s := NewSampler(m, 50)
	k.Run(1000)
	s.Stop()
	n := s.Samples()
	k.Schedule(k.Now()+10_000, func() {}) // keep the clock moving
	k.RunAll()
	if s.Samples() != n {
		t.Fatal("sampler kept sampling after Stop")
	}
}

func TestExactIntegratesAccounts(t *testing.T) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, arch.Cedar16, arch.DefaultCosts())
	// Cluster 0: 4 CEs active half the time. Cluster 1: idle.
	for g := 0; g < 4; g++ {
		m.CE(g).Acct.Add(metrics.CatLoopIter, 500)
	}
	per := Exact(m, 1000)
	if per[0] != 2.0 {
		t.Fatalf("cluster 0 concurrency = %v, want 2.0", per[0])
	}
	if per[1] != 0 {
		t.Fatalf("cluster 1 concurrency = %v, want 0", per[1])
	}
	if got := ExactMachine(m, 1000); got != 2.0 {
		t.Fatalf("machine concurrency = %v", got)
	}
}

func TestExactZeroCT(t *testing.T) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, arch.Cedar4, arch.DefaultCosts())
	per := Exact(m, 0)
	for _, v := range per {
		if v != 0 {
			t.Fatal("nonzero concurrency at zero CT")
		}
	}
}

func TestSpinCountsActive(t *testing.T) {
	// A spinning lead CE is executing its poll loop: active.
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, arch.Cedar8, arch.DefaultCosts())
	m.CE(0).Acct.Add(metrics.CatHelperWait, 1000)
	m.CE(1).Acct.Add(metrics.CatIdle, 1000)
	per := Exact(m, 1000)
	if per[0] != 1.0 {
		t.Fatalf("concurrency = %v, want 1.0 (spinner active, idler not)", per[0])
	}
}
