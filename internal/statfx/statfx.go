// Package statfx models the statfx software monitor the paper uses to
// measure average concurrency: "this monitor measures the concurrency
// on each cluster; for the multi-cluster Cedar configurations, the
// values provided ... are the sum of the concurrency values on the
// different clusters" (Section 3.1).
//
// Two measures are provided:
//
//   - Sampler periodically counts the CEs that are actively working
//     (executing user code, stalled on memory, or dispatching
//     iterations — but not spinning for work or barriers, not in the
//     OS, and not idle), the way a software monitor samples the real
//     machine.
//   - Exact integrates the same quantity from the per-CE accounts,
//     which the simulation can do without sampling error.
package statfx

import (
	"repro/internal/cluster"
	"repro/internal/sim"
)

// Sampler periodically samples per-cluster concurrency.
type Sampler struct {
	m        *cluster.Machine
	interval sim.Duration
	stopped  bool

	samples uint64
	sums    []uint64 // per cluster: total active CEs over all samples
}

// NewSampler creates a sampler with the given sampling interval and
// starts it.
func NewSampler(m *cluster.Machine, interval sim.Duration) *Sampler {
	s := &Sampler{
		m:        m,
		interval: interval,
		sums:     make([]uint64, len(m.Clusters)),
	}
	s.schedule()
	return s
}

func (s *Sampler) schedule() {
	s.m.Kernel.After(s.interval, func() {
		if s.stopped {
			return
		}
		s.samples++
		// One dense scan per cluster over the machine's flat busy
		// array — the sampler fires every interval for the whole run,
		// so it must not pointer-chase per-CE objects.
		for ci := range s.sums {
			s.sums[ci] += uint64(s.m.ClusterActiveCEs(ci))
		}
		s.schedule()
	})
}

// Stop ends sampling.
func (s *Sampler) Stop() { s.stopped = true }

// Samples returns the number of samples taken.
func (s *Sampler) Samples() uint64 { return s.samples }

// ClusterConcurrency returns the sampled average concurrency of
// cluster c.
func (s *Sampler) ClusterConcurrency(c int) float64 {
	if s.samples == 0 {
		return 0
	}
	return float64(s.sums[c]) / float64(s.samples)
}

// MachineConcurrency returns the sum of the per-cluster sampled
// concurrencies — the quantity Table 1 reports.
func (s *Sampler) MachineConcurrency() float64 {
	total := 0.0
	for c := range s.sums {
		total += s.ClusterConcurrency(c)
	}
	return total
}

// Exact returns the account-integrated average concurrency per cluster
// over the completion time ct: sum over the cluster's CEs of active
// time, divided by ct.
func Exact(m *cluster.Machine, ct sim.Time) []float64 {
	out := make([]float64, len(m.Clusters))
	if ct <= 0 {
		return out
	}
	for ci, cl := range m.Clusters {
		var active sim.Duration
		for _, ce := range cl.CEs {
			active += ce.Acct.ActiveTotal()
		}
		out[ci] = float64(active) / float64(ct)
	}
	return out
}

// ExactMachine returns the sum of Exact over clusters.
func ExactMachine(m *cluster.Machine, ct sim.Time) float64 {
	total := 0.0
	for _, v := range Exact(m, ct) {
		total += v
	}
	return total
}
