package statfx

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// runPattern drives every CE of the machine through a deterministic,
// aperiodic busy/idle pattern for total cycles: bursts of prime-length
// busy and idle phases with per-CE offsets, so no sampling interval
// can alias onto the workload. It returns when virtual time total has
// elapsed.
func runPattern(k *sim.Kernel, m *cluster.Machine, total sim.Duration) {
	for g := 0; g < m.Cfg.CEs(); g++ {
		ce := m.CE(g)
		offset := sim.Duration(g) * 131
		k.Spawn("ce", func(p *sim.Proc) {
			ce.Proc = p
			spent := sim.Duration(0)
			spend := func(d sim.Duration, cat metrics.Category) {
				if d > total-spent {
					d = total - spent
				}
				if d > 0 {
					ce.Spend(d, cat)
					spent += d
				}
			}
			spend(offset, metrics.CatIdle)
			for spent < total {
				spend(733, metrics.CatLoopIter)
				spend(317, metrics.CatIdle)
				spend(211, metrics.CatSerial)
				spend(97, metrics.CatIdle)
			}
		})
	}
	k.Run(sim.Time(total))
}

// TestSamplerConvergesToExact is the property the paper's statfx
// monitor relies on: as the sampling interval shrinks, the sampled
// average concurrency converges to the account-integrated (exact)
// value. Each interval runs the identical deterministic workload.
func TestSamplerConvergesToExact(t *testing.T) {
	const total = 100_000
	intervals := []sim.Duration{8_000, 2_000, 500, 125}
	errs := make([]float64, len(intervals))
	var exact float64
	for i, interval := range intervals {
		k := sim.NewKernel(42)
		m := cluster.NewMachine(k, arch.Cedar16, arch.DefaultCosts())
		s := NewSampler(m, interval)
		runPattern(k, m, total)
		s.Stop()
		e := ExactMachine(m, total)
		if i == 0 {
			exact = e
		} else if math.Abs(e-exact) > 1e-9 {
			t.Fatalf("exact concurrency not deterministic: %v vs %v", e, exact)
		}
		errs[i] = math.Abs(s.MachineConcurrency() - e)
		if s.Samples() == 0 {
			t.Fatalf("interval %d: no samples", interval)
		}
	}
	if exact <= 1 {
		t.Fatalf("workload too idle for a meaningful test: exact = %v", exact)
	}
	// The finest interval must beat the coarsest, and land within 2% of
	// exact. (Strict monotonicity is not guaranteed — a coarse grid can
	// get lucky — so the property is endpoint improvement plus a bound.)
	if errs[len(errs)-1] >= errs[0] {
		t.Errorf("no convergence: errors %v for intervals %v", errs, intervals)
	}
	if rel := errs[len(errs)-1] / exact; rel > 0.02 {
		t.Errorf("finest interval error %.4f (%.1f%% of exact %v), want <= 2%%",
			errs[len(errs)-1], rel*100, exact)
	}
}

// TestSamplerUnderCEFailStop locks in the fail-stop accounting fix: a
// CE killed mid-Spend must stop counting as active, or the sampled
// concurrency of a degraded run would be overstated forever after the
// fault (the abort unwinds out of Hold before the spend path restores
// the CE's busy category).
func TestSamplerUnderCEFailStop(t *testing.T) {
	k := sim.NewKernel(7)
	m := cluster.NewMachine(k, arch.Cedar4, arch.DefaultCosts())
	s := NewSampler(m, 1_000)
	for g := 0; g < 4; g++ {
		ce := m.CE(g)
		k.Spawn("ce", func(p *sim.Proc) {
			ce.Proc = p
			defer func() {
				// Swallow the abort the fail-stop delivers.
				if r := recover(); r != nil && r != sim.ErrAborted {
					panic(r)
				}
			}()
			ce.Spend(100_000, metrics.CatLoopIter)
		})
	}
	k.Schedule(50_000, func() { m.CE(2).Fail() })
	k.Run(100_000)
	s.Stop()

	if m.FailedCEs() != 1 {
		t.Fatalf("FailedCEs = %d, want 1", m.FailedCEs())
	}
	if m.CE(2).Busy().IsActive() {
		t.Fatal("failed CE still reports an active busy category")
	}
	// 4 CEs active for the first half, 3 for the second: average 3.5.
	got := s.MachineConcurrency()
	if got < 3.4 || got > 3.6 {
		t.Fatalf("sampled concurrency = %v, want ~3.5 (dead CE must not count)", got)
	}
}
