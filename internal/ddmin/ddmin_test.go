package ddmin

import (
	"reflect"
	"testing"
)

func TestMinimizeFindsCore(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	keep := func(cand []int) bool {
		has3, has7 := false, false
		for _, v := range cand {
			has3 = has3 || v == 3
			has7 = has7 || v == 7
		}
		return has3 && has7
	}
	got := Minimize(items, keep)
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("Minimize = %v, want [3 7]", got)
	}
}

func TestMinimizePreservesOrder(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	keep := func(cand []string) bool {
		// Needs d before b? No — needs both b and d present; order in
		// the result must still be input order.
		hasB, hasD := false, false
		for _, v := range cand {
			hasB = hasB || v == "b"
			hasD = hasD || v == "d"
		}
		return hasB && hasD
	}
	got := Minimize(items, keep)
	if !reflect.DeepEqual(got, []string{"b", "d"}) {
		t.Fatalf("Minimize = %v, want [b d]", got)
	}
}

func TestMinimizeSingleElement(t *testing.T) {
	got := Minimize([]int{42}, func(cand []int) bool { return true })
	if !reflect.DeepEqual(got, []int{42}) {
		t.Fatalf("Minimize = %v, want [42]", got)
	}
}

func TestMinimizeNeverEmpty(t *testing.T) {
	calls := 0
	got := Minimize([]int{1, 2, 3, 4}, func(cand []int) bool {
		calls++
		if len(cand) == 0 {
			t.Fatal("keep called with empty candidate")
		}
		return true // everything "fails": shrinks to one element
	})
	if len(got) != 1 {
		t.Fatalf("Minimize = %v, want a single element", got)
	}
	if calls == 0 {
		t.Fatal("keep never called")
	}
}

func TestMinimizeInputUntouched(t *testing.T) {
	items := []int{5, 6, 7, 8}
	orig := append([]int(nil), items...)
	Minimize(items, func(cand []int) bool { return len(cand) >= 2 })
	if !reflect.DeepEqual(items, orig) {
		t.Fatalf("input mutated: %v, want %v", items, orig)
	}
}

func TestMinimizeBudgetedKeep(t *testing.T) {
	// A keep that exhausts its budget mid-run stops further reduction
	// but still returns a valid (possibly partial) subset.
	budget := 3
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	got := Minimize(items, func(cand []int) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return true
	})
	if len(got) == 0 || len(got) > len(items) {
		t.Fatalf("Minimize = %v out of range", got)
	}
}
