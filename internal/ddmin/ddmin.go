// Package ddmin implements the minimizing delta-debugging loop
// (Zeller's ddmin) over an arbitrary element slice. Callers provide a
// deterministic predicate that reports whether a candidate subset
// still exhibits the behaviour being pinned (a failure, a pathology);
// Minimize returns a subset that still satisfies it and from which no
// tried chunk removal succeeds. Element order is preserved — removal
// candidates are complements of contiguous chunks — so position-
// sensitive inputs (event schedules, phase lists) stay meaningful.
package ddmin

// Minimize reduces items while keep returns true, trying the largest
// chunk removals first and halving the chunk size when no removal at
// the current granularity succeeds. keep is never called on an empty
// candidate, and the input slice is not modified. keep must be
// deterministic; if it needs a run budget, enforce one inside the
// callback (returning false once exhausted stops further reduction).
func Minimize[T any](items []T, keep func([]T) bool) []T {
	chunk := (len(items) + 1) / 2
	for chunk >= 1 && len(items) > 1 {
		reduced := false
		for lo := 0; lo < len(items); lo += chunk {
			hi := min(lo+chunk, len(items))
			// Try the complement: the slice without [lo, hi).
			cand := make([]T, 0, len(items)-(hi-lo))
			cand = append(cand, items[:lo]...)
			cand = append(cand, items[hi:]...)
			if len(cand) == 0 {
				continue
			}
			if keep(cand) {
				items = cand
				reduced = true
				lo -= chunk // re-test the same offset against the shrunk slice
			}
		}
		if !reduced {
			chunk /= 2
		} else if chunk > len(items) {
			chunk = len(items)
		}
	}
	return items
}
