// Package benchcmp is the shared comparison core behind the repo's
// historical performance gates: cmd/cedarbenchdiff (go test -json
// benchmark logs, events/sec) and cmd/cedarbench (declarative scenario
// captures, BENCH_scenarios.json) both gate through Compare, so the
// pass/fail semantics — tolerance bands, the inverted -min-speedup
// gate, exact-match drift, and what happens when an entry disappears
// from the fresh run — live in exactly one place.
//
// Compare takes two name → value maps where higher values are better
// (events per second, not ns/op; callers invert ns/op before
// comparing) plus a per-name Spec:
//
//   - Spec{Tol: 0.5} allows the new value to fall to half the old
//     before failing — the loose regression band for wall-clock
//     throughput across machine generations.
//   - Spec{MinSpeedup: 1.3} additionally demands new/old >= 1.3 — the
//     inverted gate that proves an optimization actually outruns a
//     pre-refactor capture.
//   - Spec{Exact: true} demands bit-equality — for deterministic model
//     outputs (completion times, overhead-decomposition cycles) where
//     any drift means the simulation changed, not the machine.
//
// Entries present only in the old capture are reported as MISSING.
// Whether that fails the gate is the caller's choice (missingFatal):
// the plain tolerance mode keeps it non-fatal because a renamed
// benchmark should update the baseline, but any mode that proves a
// property of a specific entry (min-speedup, scenario captures) must
// fail — otherwise deleting the gated benchmark from the fresh log
// makes the gate pass vacuously, proving nothing.
package benchcmp

import (
	"errors"
	"fmt"
	"io"
	"sort"
)

// Spec is the per-entry gate: how much worse (or how much better) the
// new value must be relative to the old one.
type Spec struct {
	// Tol is the allowed shortfall fraction: new/old >= 1-Tol passes.
	// Must be in [0, 1).
	Tol float64
	// MinSpeedup, when > 0, additionally requires new/old >= MinSpeedup.
	MinSpeedup float64
	// Exact requires the values to be bit-equal; Tol and MinSpeedup are
	// ignored. For deterministic model outputs.
	Exact bool
}

// Status classifies one compared entry.
type Status int

const (
	// StatusOK: the entry passed its gate.
	StatusOK Status = iota
	// StatusRegression: new/old fell below 1-Tol.
	StatusRegression
	// StatusBelowSpeedup: new/old is within tolerance but below the
	// required MinSpeedup factor.
	StatusBelowSpeedup
	// StatusDrift: an Exact entry's value changed.
	StatusDrift
	// StatusMissing: the entry is in the old capture but not the new.
	StatusMissing
	// StatusNew: the entry is in the new capture but not the old
	// (informational, never fatal).
	StatusNew
)

// String returns the verdict text the table prints (empty for OK).
func (s Status) String() string {
	switch s {
	case StatusRegression:
		return "REGRESSION"
	case StatusBelowSpeedup:
		return "BELOW"
	case StatusDrift:
		return "DRIFT"
	case StatusMissing:
		return "MISSING"
	case StatusNew:
		return "new"
	}
	return ""
}

// Row is one compared entry.
type Row struct {
	Name  string
	Old   float64
	New   float64
	Ratio float64 // new/old; 0 when either side is absent
	// Want is the MinSpeedup factor a StatusBelowSpeedup row missed.
	Want   float64
	Status Status
	// Fatal marks rows that fail the gate. Missing rows are fatal only
	// under Compare's missingFatal mode.
	Fatal bool
}

// Report is the outcome of one Compare call.
type Report struct {
	Rows []Row
	// Common counts entries present in both captures.
	Common int
	// Failed counts fatal rows (regressions, missed speedups, drifted
	// exact values, and — under missingFatal — missing entries).
	Failed int
}

// Compare gates newVals against oldVals entry by entry. spec supplies
// the per-name gate (a uniform func(string) Spec closure for the
// benchmark CLIs, a per-metric lookup for scenario captures).
// missingFatal decides whether an entry present only in oldVals fails
// the gate; see the package comment for when each choice is right.
// Rows are ordered: old-capture names sorted, then new-only names
// sorted.
func Compare(oldVals, newVals map[string]float64, spec func(name string) Spec, missingFatal bool) *Report {
	rep := &Report{}
	names := make([]string, 0, len(oldVals))
	for n := range oldVals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		oldV := oldVals[n]
		row := Row{Name: n, Old: oldV}
		newV, ok := newVals[n]
		if !ok {
			row.Status = StatusMissing
			row.Fatal = missingFatal
			if row.Fatal {
				rep.Failed++
			}
			rep.Rows = append(rep.Rows, row)
			continue
		}
		rep.Common++
		row.New = newV
		if oldV != 0 {
			row.Ratio = newV / oldV
		} else if newV == 0 {
			row.Ratio = 1
		}
		sp := spec(n)
		switch {
		case sp.Exact:
			if oldV != newV {
				row.Status = StatusDrift
				row.Fatal = true
			}
		case row.Ratio < 1.0-sp.Tol:
			row.Status = StatusRegression
			row.Fatal = true
		case sp.MinSpeedup > 0 && row.Ratio < sp.MinSpeedup:
			row.Status = StatusBelowSpeedup
			row.Want = sp.MinSpeedup
			row.Fatal = true
		}
		if row.Fatal {
			rep.Failed++
		}
		rep.Rows = append(rep.Rows, row)
	}
	var fresh []string
	for n := range newVals {
		if _, ok := oldVals[n]; !ok {
			fresh = append(fresh, n)
		}
	}
	sort.Strings(fresh)
	for _, n := range fresh {
		rep.Rows = append(rep.Rows, Row{Name: n, New: newVals[n], Status: StatusNew})
	}
	return rep
}

// Err returns nil when the gate passed, and otherwise an error naming
// why: an empty intersection (the gate matched nothing — always fatal,
// since a capture that gates zero entries proves nothing) or the fatal
// row count.
func (r *Report) Err() error {
	if r.Common == 0 {
		return errors.New("no entry appears in both captures; the gate matched nothing")
	}
	if r.Failed > 0 {
		return fmt.Errorf("%d of %d gated entries failed", r.Failed, r.Failed+okCount(r))
	}
	return nil
}

// okCount counts gateable rows that passed (common rows plus fatal
// missing rows are the gated population).
func okCount(r *Report) int {
	n := 0
	for _, row := range r.Rows {
		if row.Status == StatusOK {
			n++
		}
	}
	return n
}

// WriteTable renders the report in the cedarbenchdiff table layout.
// oldLabel and newLabel title the value columns ("old ev/s",
// "new ev/s" for the benchmark CLIs; "old", "new" for scenario
// captures). The name column widens to the longest entry.
func (r *Report) WriteTable(w io.Writer, oldLabel, newLabel string) {
	width := 44
	for _, row := range r.Rows {
		if len(row.Name) > width {
			width = len(row.Name)
		}
	}
	fmt.Fprintf(w, "%-*s %14s %14s %8s\n", width, "entry", oldLabel, newLabel, "ratio")
	for _, row := range r.Rows {
		switch row.Status {
		case StatusMissing:
			verdict := ""
			if row.Fatal {
				verdict = "  MISSING"
			}
			fmt.Fprintf(w, "%-*s %14.6g %14s %8s%s\n", width, row.Name, row.Old, "missing", "-", verdict)
		case StatusNew:
			fmt.Fprintf(w, "%-*s %14s %14.6g %8s\n", width, row.Name, "(no baseline)", row.New, "-")
		default:
			verdict := ""
			switch row.Status {
			case StatusRegression:
				verdict = "  REGRESSION"
			case StatusBelowSpeedup:
				verdict = fmt.Sprintf("  BELOW %.2fx", row.Want)
			case StatusDrift:
				verdict = "  DRIFT"
			}
			fmt.Fprintf(w, "%-*s %14.6g %14.6g %7.2fx%s\n", width, row.Name, row.Old, row.New, row.Ratio, verdict)
		}
	}
}
