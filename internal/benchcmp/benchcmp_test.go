package benchcmp

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

func writeFile(path, data string) error { return os.WriteFile(path, []byte(data), 0o644) }

// uniform builds the spec func both benchmark CLIs use: one gate for
// every entry.
func uniform(sp Spec) func(string) Spec { return func(string) Spec { return sp } }

// statusOf finds a row by name.
func statusOf(t *testing.T, rep *Report, name string) Row {
	t.Helper()
	for _, r := range rep.Rows {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no row %q in report %+v", name, rep.Rows)
	return Row{}
}

func TestCompareTable(t *testing.T) {
	cases := []struct {
		name         string
		old, new     map[string]float64
		spec         Spec
		missingFatal bool

		wantStatus map[string]Status
		wantFatal  map[string]bool
		wantErr    bool
	}{
		{
			name: "within tolerance passes",
			old:  map[string]float64{"a": 100}, new: map[string]float64{"a": 60},
			spec:       Spec{Tol: 0.5},
			wantStatus: map[string]Status{"a": StatusOK},
		},
		{
			name: "regression beyond tolerance fails",
			old:  map[string]float64{"a": 100}, new: map[string]float64{"a": 40},
			spec:       Spec{Tol: 0.5},
			wantStatus: map[string]Status{"a": StatusRegression},
			wantFatal:  map[string]bool{"a": true},
			wantErr:    true,
		},
		{
			name: "below min speedup fails even within tolerance",
			old:  map[string]float64{"a": 100}, new: map[string]float64{"a": 110},
			spec:       Spec{Tol: 0.5, MinSpeedup: 1.3},
			wantStatus: map[string]Status{"a": StatusBelowSpeedup},
			wantFatal:  map[string]bool{"a": true},
			wantErr:    true,
		},
		{
			name: "min speedup reached passes",
			old:  map[string]float64{"a": 100}, new: map[string]float64{"a": 140},
			spec:       Spec{Tol: 0.5, MinSpeedup: 1.3},
			wantStatus: map[string]Status{"a": StatusOK},
		},
		{
			name: "missing is informational in plain mode",
			old:  map[string]float64{"a": 100, "gone": 50}, new: map[string]float64{"a": 100},
			spec:       Spec{Tol: 0.5},
			wantStatus: map[string]Status{"a": StatusOK, "gone": StatusMissing},
			wantFatal:  map[string]bool{"gone": false},
		},
		{
			name: "missing is fatal under missingFatal even with common survivors",
			old:  map[string]float64{"a": 100, "gone": 50}, new: map[string]float64{"a": 150},
			spec:         Spec{Tol: 0.5, MinSpeedup: 1.3},
			missingFatal: true,
			wantStatus:   map[string]Status{"a": StatusOK, "gone": StatusMissing},
			wantFatal:    map[string]bool{"gone": true},
			wantErr:      true,
		},
		{
			name: "exact match passes",
			old:  map[string]float64{"ct": 123456}, new: map[string]float64{"ct": 123456},
			spec:       Spec{Exact: true},
			wantStatus: map[string]Status{"ct": StatusOK},
		},
		{
			name: "exact drift fails in either direction",
			old:  map[string]float64{"ct": 123456}, new: map[string]float64{"ct": 123457},
			spec:       Spec{Exact: true},
			wantStatus: map[string]Status{"ct": StatusDrift},
			wantFatal:  map[string]bool{"ct": true},
			wantErr:    true,
		},
		{
			name: "exact upward drift fails too",
			old:  map[string]float64{"ct": 100}, new: map[string]float64{"ct": 1000},
			spec:    Spec{Exact: true},
			wantErr: true,
		},
		{
			name: "new-only entry is informational",
			old:  map[string]float64{"a": 100}, new: map[string]float64{"a": 100, "fresh": 9},
			spec:       Spec{Tol: 0.5},
			wantStatus: map[string]Status{"fresh": StatusNew},
			wantFatal:  map[string]bool{"fresh": false},
		},
		{
			name: "empty intersection always fails",
			old:  map[string]float64{"a": 100}, new: map[string]float64{"b": 100},
			spec:    Spec{Tol: 0.5},
			wantErr: true,
		},
		{
			name: "both zero is exact-equal and ratio 1",
			old:  map[string]float64{"z": 0}, new: map[string]float64{"z": 0},
			spec:       Spec{Exact: true},
			wantStatus: map[string]Status{"z": StatusOK},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Compare(tc.old, tc.new, uniform(tc.spec), tc.missingFatal)
			for name, want := range tc.wantStatus {
				if got := statusOf(t, rep, name).Status; got != want {
					t.Errorf("%s: status %v, want %v", name, got, want)
				}
			}
			for name, want := range tc.wantFatal {
				if got := statusOf(t, rep, name).Fatal; got != want {
					t.Errorf("%s: fatal %v, want %v", name, got, want)
				}
			}
			if err := rep.Err(); (err != nil) != tc.wantErr {
				t.Errorf("Err() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

func TestCompareRowOrder(t *testing.T) {
	rep := Compare(
		map[string]float64{"b": 1, "a": 1},
		map[string]float64{"a": 1, "b": 1, "d": 1, "c": 1},
		uniform(Spec{Tol: 0.5}), false)
	var names []string
	for _, r := range rep.Rows {
		names = append(names, r.Name)
	}
	want := "a b c d"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("row order %q, want %q", got, want)
	}
}

func TestWriteTableVerdicts(t *testing.T) {
	rep := Compare(
		map[string]float64{"reg": 100, "slow": 100, "gone": 100, "ok": 100},
		map[string]float64{"reg": 10, "slow": 110, "ok": 200, "fresh": 5},
		uniform(Spec{Tol: 0.5, MinSpeedup: 1.3}), true)
	var b strings.Builder
	rep.WriteTable(&b, "old ev/s", "new ev/s")
	out := b.String()
	for _, want := range []string{"REGRESSION", "BELOW 1.30x", "MISSING", "(no baseline)", "missing"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// event builds one go test -json output line.
func event(test, output string) string {
	return fmt.Sprintf(`{"Action":"output","Test":%q,"Output":%q}`, test, output)
}

func TestParseNsOp(t *testing.T) {
	log := strings.Join([]string{
		event("BenchmarkA", "    1000\t       500.0 ns/op\t       0 B/op"),
		`{"Action":"output","Output":"no test field, ignored 1\t 1.0 ns/op"}`,
		"not json at all",
		event("BenchmarkA", "    2000\t       250.0 ns/op"), // re-run keeps last
		event("BenchmarkB", "      10\t    125000 ns/op"),
		event("TestNotABench", "some output"),
	}, "\n")
	got, err := ParseNsOp(strings.NewReader(log), "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["BenchmarkA"] != 250 || got["BenchmarkB"] != 125000 {
		t.Fatalf("parsed %v", got)
	}
}

// TestParseNsOpLongLine is the regression test for the 1 MiB
// bufio.Scanner cap: one oversized output line used to error out the
// whole gate ("token too long").
func TestParseNsOpLongLine(t *testing.T) {
	huge := strings.Repeat("x", 2<<20) // 2 MiB, over the old cap
	log := strings.Join([]string{
		event("BenchmarkHuge", huge),
		event("BenchmarkA", "    1000\t       500.0 ns/op"),
	}, "\n")
	got, err := ParseNsOp(strings.NewReader(log), "test")
	if err != nil {
		t.Fatalf("long line failed the parse: %v", err)
	}
	if got["BenchmarkA"] != 500 {
		t.Fatalf("parsed %v, want BenchmarkA=500", got)
	}
}

func TestLoadBaselinesDuplicate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, test string) string {
		path := dir + "/" + name
		data := event(test, "    1000\t       500.0 ns/op") + "\n"
		if err := writeFile(path, data); err != nil {
			t.Fatal(err)
		}
		return path
	}
	p1 := write("one.json", "BenchmarkDup")
	p2 := write("two.json", "BenchmarkDup")
	if _, err := LoadBaselines([]string{p1, p2}); err == nil ||
		!strings.Contains(err.Error(), "BenchmarkDup") {
		t.Fatalf("duplicate baseline error = %v, want it to name BenchmarkDup", err)
	}
	m, err := LoadBaselines([]string{p1})
	if err != nil || m["BenchmarkDup"] != 500 {
		t.Fatalf("single baseline = %v, %v", m, err)
	}
}

func TestPathListCommaSeparated(t *testing.T) {
	var pl PathList
	if err := pl.Set("a.json,b.json"); err != nil {
		t.Fatal(err)
	}
	if err := pl.Set("c.json"); err != nil {
		t.Fatal(err)
	}
	if got := pl.String(); got != "a.json,b.json,c.json" {
		t.Fatalf("paths %q", got)
	}
}

func TestEventsPerSec(t *testing.T) {
	got := EventsPerSec(map[string]float64{"a": 2e9})
	if got["a"] != 0.5 {
		t.Fatalf("events/sec = %v, want 0.5", got["a"])
	}
}
