package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// nsOp matches the measurement line of a benchmark result inside a
// -json Output field, e.g. " 4507105\t       542.3 ns/op\t...". The
// benchmark's name arrives separately in the event's Test field.
var nsOp = regexp.MustCompile(`^\s*\d+\t\s*([0-9.]+) ns/op`)

// testEvent is the subset of the `go test -json` schema we read.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// maxLine bounds one go test -json line. Benchmark logs are usually
// tiny, but a single Output event can carry an arbitrarily long line
// (a test dumping a whole artifact), and bufio.Scanner fails the
// entire parse when its buffer caps out — so the cap is generous.
const maxLine = 64 << 20

// ParseNsOp extracts benchmark name → ns/op from a go test -json
// stream. A benchmark appearing more than once keeps its last value
// (go test -count re-runs report several measurement lines). src names
// the stream in errors. Results are keyed on the event's Test field,
// which carries no -GOMAXPROCS suffix, so a baseline recorded on an
// 8-core machine still gates a 4-core runner.
func ParseNsOp(r io.Reader, src string) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	for sc.Scan() {
		var ev testEvent
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Action != "output" || ev.Test == "" {
			continue
		}
		m := nsOp.FindStringSubmatch(ev.Output)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[1], 64)
		if err != nil || ns <= 0 {
			continue
		}
		out[ev.Test] = ns
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", src, err)
	}
	return out, nil
}

// LoadNsOp is ParseNsOp over a file.
func LoadNsOp(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseNsOp(f, path)
}

// LoadBaselines merges several baseline logs into one benchmark →
// ns/op map. A benchmark appearing in two baselines is an error — it
// would be ambiguous which number gates — reported with both sources.
func LoadBaselines(paths []string) (map[string]float64, error) {
	merged := map[string]float64{}
	src := map[string]string{}
	for _, path := range paths {
		m, err := LoadNsOp(path)
		if err != nil {
			return nil, err
		}
		for n, ns := range m {
			if prev, dup := src[n]; dup {
				return nil, fmt.Errorf("benchmark %q appears in both %s and %s; ambiguous baseline", n, prev, path)
			}
			merged[n] = ns
			src[n] = path
		}
	}
	return merged, nil
}

// EventsPerSec converts a name → ns/op map to name → events/sec.
func EventsPerSec(nsPerOp map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(nsPerOp))
	for n, ns := range nsPerOp {
		out[n] = 1e9 / ns
	}
	return out
}

// PathList collects a repeatable path flag; each occurrence may also
// carry a comma-separated list (flag.Value).
type PathList []string

// String joins the collected paths (flag.Value).
func (m *PathList) String() string { return strings.Join(*m, ",") }

// Set appends one flag occurrence, splitting commas (flag.Value).
func (m *PathList) Set(v string) error {
	for _, p := range strings.Split(v, ",") {
		if p != "" {
			*m = append(*m, p)
		}
	}
	return nil
}
