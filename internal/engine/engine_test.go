package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByInputIndex(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{1, 2, 7, 64} {
		got := Map(workers, items, func(i, v int) string {
			// Uneven job durations shuffle completion order on purpose.
			if v%3 == 0 {
				time.Sleep(time.Duration(v%5) * time.Millisecond)
			}
			return fmt.Sprintf("%d:%d", i, v*v)
		})
		for i, v := range items {
			if want := fmt.Sprintf("%d:%d", i, v*v); got[i] != want {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want)
			}
		}
	}
}

func TestMapMatchesSequential(t *testing.T) {
	items := []int{5, 3, 8, 1, 9, 2, 7}
	fn := func(i, v int) int { return i*1000 + v }
	seq := Map(1, items, fn)
	par := Map(4, items, fn)
	for i := range items {
		if seq[i] != par[i] {
			t.Fatalf("parallel result diverged at %d: %d vs %d", i, seq[i], par[i])
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(8, nil, func(i, v int) int { return v }); got != nil {
		t.Fatalf("empty Map = %v, want nil", got)
	}
	got := Map(8, []int{42}, func(i, v int) int { return v + i })
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("single Map = %v", got)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	Map(workers, make([]struct{}, 64), func(i int, _ struct{}) struct{} {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}
	})
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds the %d-worker bound", got, workers)
	}
}

func TestMapDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := Workers(0), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, want)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: job panic did not propagate", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: panic value = %v, want boom", workers, r)
				}
			}()
			Map(workers, []int{0, 1, 2, 3, 4, 5, 6, 7}, func(i, v int) int {
				if v == 3 {
					panic("boom")
				}
				return v
			})
		}()
	}
}

func TestMapPanicStopsClaimingJobs(t *testing.T) {
	var ran atomic.Int64
	func() {
		defer func() { recover() }()
		Map(2, make([]int, 1000), func(i, v int) int {
			if i == 0 {
				panic("early")
			}
			ran.Add(1)
			time.Sleep(100 * time.Microsecond)
			return v
		})
	}()
	if got := ran.Load(); got > 100 {
		t.Fatalf("pool kept claiming jobs after a panic: %d ran", got)
	}
}

func TestDoRunsAllThunks(t *testing.T) {
	var a, b, c atomic.Bool
	Do(2,
		func() { a.Store(true) },
		func() { b.Store(true) },
		func() { c.Store(true) },
	)
	if !a.Load() || !b.Load() || !c.Load() {
		t.Fatal("Do skipped a thunk")
	}
}

func TestMapCtxCancelStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const items = 64
	var started atomic.Int32
	start := time.Now()
	_, err := MapCtx(ctx, 4, make([]int, items), func(ctx context.Context, i, _ int) int {
		started.Add(1)
		if started.Load() >= 4 {
			cancel() // all four workers are busy; nothing more may be claimed
		}
		<-ctx.Done() // a cancellation-aware job: blocks until the cancel
		return i + 1
	})
	if err == nil {
		t.Fatal("MapCtx returned nil error after cancel")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n > 8 {
		t.Fatalf("%d jobs started after cancel; workers kept claiming", n)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("MapCtx took %v to return after cancel", d)
	}
}

func TestMapCtxUncanceledMatchesMap(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i * 3
	}
	want := Map(4, items, func(i, v int) int { return v*v + i })
	got, err := MapCtx(context.Background(), 4, items, func(_ context.Context, i, v int) int { return v*v + i })
	if err != nil {
		t.Fatalf("MapCtx err = %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestMapCtxSequentialCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	out, err := MapCtx(ctx, 1, make([]int, 10), func(_ context.Context, i, _ int) int {
		ran++
		if i == 2 {
			cancel()
		}
		return i + 1
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 3 {
		t.Fatalf("sequential path ran %d jobs after cancel at index 2", ran)
	}
	if out[3] != 0 {
		t.Fatalf("unclaimed job has non-zero result %d", out[3])
	}
}
