// Package engine is the deterministic worker pool behind every sweep
// surface of the repository: the paper's five-application ×
// five-configuration tables, scaling studies, fault sweeps, and replay
// corpus checks are all batches of fully independent simulations, and
// this package runs such a batch on a bounded set of goroutines.
//
// Determinism contract: each job must be self-contained — in this
// repository every simulation owns its kernel, its deterministic seed,
// and all of its model state, and shares only immutable tables — so
// the virtual-time result of a job cannot depend on scheduling.
// Results are delivered in input-index order, which means concurrent
// output is byte-identical to a sequential run: parallelism here buys
// wall-clock time only and can never perturb a measurement.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a concurrency knob: n when positive, otherwise
// GOMAXPROCS. This is the shared default behind every -parallel flag.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(i, items[i]) for every item on at most Workers(workers)
// goroutines and returns the results ordered by input index. Jobs are
// claimed from a shared counter, so long and short jobs pack onto the
// pool without a static partition. With one worker (or one item) Map
// degenerates to a plain loop on the calling goroutine.
//
// A panic in any job stops the pool from claiming further jobs and is
// re-raised on the calling goroutine once in-flight jobs finish, which
// preserves the sequential path's failure semantics (facades that want
// errors already wrap simulations in their Err variants).
func Map[T, R any](workers int, items []T, fn func(int, T) R) []R {
	out, _ := MapCtx(context.Background(), workers, items,
		func(_ context.Context, i int, item T) R { return fn(i, item) })
	return out
}

// MapCtx is Map with cooperative cancellation: once ctx is done, no
// worker claims another job, and MapCtx returns ctx's error after
// in-flight jobs finish. The returned slice always has len(items)
// entries; indexes whose job never ran (or was running when the pool
// was told to stop, if fn itself honors ctx and bails) hold zero
// values, so callers must treat the results as partial whenever the
// error is non-nil. fn receives ctx so long jobs can also stop early —
// in this repository that is the simulation kernel's interrupt check.
//
// With a never-canceled ctx, results are exactly Map's: cancellation
// checks cannot perturb job results, only truncate which jobs run.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, fn func(context.Context, int, T) R) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, ctx.Err()
	}
	out := make([]R, n)
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i, item := range items {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = fn(ctx, i, item)
		}
		return out, ctx.Err()
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicMu  sync.Mutex
		panicVal any
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !panicked.Load() && ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if !panicked.Load() {
								panicVal = r
								panicked.Store(true)
							}
							panicMu.Unlock()
						}
					}()
					out[i] = fn(ctx, i, items[i])
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return out, ctx.Err()
}

// Do runs every thunk on the pool and waits for all of them — Map for
// heterogeneous jobs that write their own results.
func Do(workers int, thunks ...func()) {
	Map(workers, thunks, func(_ int, fn func()) struct{} {
		fn()
		return struct{}{}
	})
}
