package xylem

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func rig(cfg arch.Config) (*sim.Kernel, *cluster.Machine, *OS) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, cfg, arch.DefaultCosts())
	return k, m, New(m)
}

// bind spawns a driver process for the CE and runs body on it.
func bind(k *sim.Kernel, ce *cluster.CE, body func()) {
	k.Spawn(ce.ID.String(), func(p *sim.Proc) {
		ce.Proc = p
		body()
	})
}

func TestSequentialFault(t *testing.T) {
	k, m, o := rig(arch.Cedar1)
	r := o.NewRegion("data", 10_000)
	ce := m.CE(0)
	bind(k, ce, func() {
		if d := r.Touch(ce, 0, 8); d == 0 {
			t.Error("first touch did not fault")
		}
		if d := r.Touch(ce, 0, 8); d != 0 {
			t.Errorf("second touch faulted again: %d", d)
		}
	})
	k.RunAll()
	if o.SeqFaults() != 1 || o.ConcFaults() != 0 {
		t.Fatalf("seq=%d conc=%d, want 1,0", o.SeqFaults(), o.ConcFaults())
	}
	if o.Brk.Time[metrics.OSPgFltSeq] == 0 {
		t.Fatal("no seq fault time recorded")
	}
	if ce.Acct.Get(metrics.CatOSSystem) == 0 {
		t.Fatal("fault not charged as system time")
	}
}

func TestConcurrentFault(t *testing.T) {
	k, m, o := rig(arch.Cedar8)
	r := o.NewRegion("data", 10_000)
	for g := 0; g < 4; g++ {
		ce := m.CE(g)
		bind(k, ce, func() {
			r.Touch(ce, 0, 8) // all four hit page 0 at t=0
		})
	}
	k.RunAll()
	o.FlushAccounting() // CPIs pend until the next preemption point
	// Owner + 3 joiners, all concurrent.
	if o.ConcFaults() != 4 || o.SeqFaults() != 0 {
		t.Fatalf("conc=%d seq=%d, want 4,0", o.ConcFaults(), o.SeqFaults())
	}
	if o.Brk.Time[metrics.OSPgFltConc] == 0 {
		t.Fatal("no concurrent fault time")
	}
	if o.Brk.Time[metrics.OSCpi] == 0 {
		t.Fatal("concurrent fault issued no CPI")
	}
}

func TestConcurrentFaultCostsMoreThanSequential(t *testing.T) {
	// Per-participant cost of a concurrent fault exceeds a sequential
	// fault, as the paper observes.
	k1, m1, o1 := rig(arch.Cedar1)
	r1 := o1.NewRegion("d", 10_000)
	ce1 := m1.CE(0)
	var seqCost sim.Duration
	bind(k1, ce1, func() { seqCost = r1.Touch(ce1, 0, 8) })
	k1.RunAll()

	k2, m2, o2 := rig(arch.Cedar8)
	r2 := o2.NewRegion("d", 10_000)
	var worst sim.Duration
	for g := 0; g < 4; g++ {
		ce := m2.CE(g)
		bind(k2, ce, func() {
			if d := r2.Touch(ce, 0, 8); d > worst {
				worst = d
			}
		})
	}
	k2.RunAll()
	if worst <= seqCost {
		t.Fatalf("concurrent participant cost %d not > sequential %d", worst, seqCost)
	}
}

func TestTouchSpansMultiplePages(t *testing.T) {
	k, m, o := rig(arch.Cedar1)
	pageWords := o.Cost.PageBytes / 8
	r := o.NewRegion("data", pageWords*4)
	ce := m.CE(0)
	bind(k, ce, func() {
		r.Touch(ce, 0, pageWords*3)
	})
	k.RunAll()
	if got := r.MappedPages(0); got != 3 {
		t.Fatalf("mapped pages = %d, want 3", got)
	}
	if o.SeqFaults() != 3 {
		t.Fatalf("seq faults = %d, want 3", o.SeqFaults())
	}
}

func TestSyscallsCharged(t *testing.T) {
	k, m, o := rig(arch.Cedar4)
	ce := m.CE(0)
	bind(k, ce, func() {
		o.ClusterSyscall(ce)
		o.GlobalSyscall(ce)
	})
	k.RunAll()
	if o.Brk.Count[metrics.OSClusSyscall] != 1 || o.Brk.Count[metrics.OSGlblSyscall] != 1 {
		t.Fatal("syscall counts wrong")
	}
	if o.Brk.Time[metrics.OSGlblSyscall] <= o.Brk.Time[metrics.OSClusSyscall] {
		t.Fatal("global syscall should cost more than cluster syscall")
	}
}

func TestKernelLockSpinAccounted(t *testing.T) {
	k, m, o := rig(arch.Cedar8)
	for g := 0; g < 8; g++ {
		ce := m.CE(g)
		bind(k, ce, func() {
			o.ClusterCritSect(ce)
		})
	}
	k.RunAll()
	var spin sim.Duration
	for _, a := range m.Accounts() {
		spin += a.Get(metrics.CatOSSpin)
	}
	if spin == 0 {
		t.Fatal("8 CEs contending a cluster lock recorded no kernel spin")
	}
}

func TestSchedTickDeliversCtxAndCPI(t *testing.T) {
	k, m, o := rig(arch.Cedar4)
	o.Start()
	ce := m.CE(0)
	bind(k, ce, func() {
		// Simulate a long-running computation that polls the OS.
		for i := 0; i < 100; i++ {
			ce.Proc.Hold(sim.Duration(o.Cost.SchedTickCycles / 10))
			o.Poll(ce)
		}
	})
	k.Run(20 * sim.Time(o.Cost.SchedTickCycles))
	o.Stop()
	if o.Brk.Count[metrics.OSCtx] == 0 {
		t.Fatal("no context switches delivered")
	}
	if o.Brk.Count[metrics.OSCpi] == 0 {
		t.Fatal("no CPIs delivered")
	}
	if ce.Acct.Get(metrics.CatOSSystem) == 0 || ce.Acct.Get(metrics.CatOSInterrupt) == 0 {
		t.Fatal("tick work not charged to system+interrupt")
	}
}

func TestStopCancelsTicks(t *testing.T) {
	k, _, o := rig(arch.Cedar4)
	o.Start()
	o.Stop()
	k.RunAll()
	if o.Brk.Total() != 0 {
		t.Fatal("ticks ran after Stop")
	}
}

func TestFlushAccounting(t *testing.T) {
	k, m, o := rig(arch.Cedar4)
	o.Start()
	// Let one tick accrue with nobody polling.
	k.Run(sim.Time(o.Cost.SchedTickCycles) + 10)
	o.Stop()
	before := o.Brk.Count[metrics.OSCtx]
	o.FlushAccounting()
	if o.Brk.Count[metrics.OSCtx] <= before {
		t.Fatal("FlushAccounting did not record pending work")
	}
	if k.Now() > sim.Time(o.Cost.SchedTickCycles)+10 {
		t.Fatal("FlushAccounting advanced the clock")
	}
	if m.CE(0).Acct.Get(metrics.CatOSSystem) == 0 {
		t.Fatal("flush did not charge accounts")
	}
}

func TestRegionAllocationDisjoint(t *testing.T) {
	_, _, o := rig(arch.Cedar1)
	a := o.NewRegion("a", 5000)
	b := o.NewRegion("b", 5000)
	if a.Base+a.Words > b.Base {
		t.Fatalf("regions overlap: a=[%d,%d) b starts %d", a.Base, a.Base+a.Words, b.Base)
	}
}
