package xylem

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Region is a virtual-memory data region allocated in global memory.
//
// Xylem processes are made of cluster tasks that share portions of
// their address space; each cluster task's mapping of a shared page is
// established separately, so a region's pages fault once per cluster
// (this is why paging overhead grows with the number of clusters, one
// of the Section-5 scaling effects). Within a cluster, two or more CEs
// touching an unmapped page at overlapping times produce a concurrent
// page fault, which is more expensive per participant than a
// sequential fault and issues cross-processor interrupts (Section 5.1).
type Region struct {
	os    *OS
	Name  string
	Base  int64 // word address in global memory
	Words int64

	pageWords int64
	state     [][]uint8 // [cluster][page]
	inflight  map[int]*faultState
}

const (
	pageUnmapped uint8 = iota
	pageFaulting
	pageMapped
)

type faultState struct {
	done    *sim.Cond
	joiners int
}

// NewRegion allocates a data region of the given size (in 8-byte
// words) in global memory.
func (o *OS) NewRegion(name string, words int64) *Region {
	pageWords := o.Cost.PageBytes / 8
	pages := (words + pageWords - 1) / pageWords
	r := &Region{
		os:        o,
		Name:      name,
		Base:      o.M.AllocGM(words),
		Words:     words,
		pageWords: pageWords,
		state:     make([][]uint8, o.M.Cfg.Clusters),
		inflight:  make(map[int]*faultState),
	}
	for c := range r.state {
		r.state[c] = make([]uint8, pages)
	}
	o.regions = append(o.regions, r)
	return r
}

// Pages returns the number of pages in the region.
func (r *Region) Pages() int { return len(r.state[0]) }

// MappedPages returns how many pages the given cluster task has
// mapped so far.
func (r *Region) MappedPages(cluster int) int {
	n := 0
	for _, s := range r.state[cluster] {
		if s == pageMapped {
			n++
		}
	}
	return n
}

// Addr returns the global word address of the given word offset.
func (r *Region) Addr(offset int64) int64 { return r.Base + offset%r.Words }

// InvalidateMappings unmaps the region's mapped pages for cluster task
// cl (cl < 0: every cluster task) and returns the number of mappings
// dropped; subsequent touches re-fault them. A page with a fault in
// flight is not yet mapped, so it is left alone and does not count
// toward the returned total: its service completes normally and the
// page comes up mapped — invalidation never interrupts an in-flight
// service or strands its waiters.
func (r *Region) InvalidateMappings(cl int) int {
	n := 0
	for c := range r.state {
		if cl >= 0 && c != cl {
			continue
		}
		for p, s := range r.state[c] {
			if s == pageMapped {
				r.state[c][p] = pageUnmapped
				n++
			}
		}
	}
	return n
}

// Touch ensures the page span [offset, offset+words) is mapped in the
// calling CE's cluster task, servicing faults as needed. It returns
// the time consumed by fault handling (zero on the fast path).
func (r *Region) Touch(ce *cluster.CE, offset, words int64) sim.Duration {
	if words < 1 {
		words = 1
	}
	cl := ce.ID.Cluster
	pages := r.state[cl]
	first := offset / r.pageWords
	last := (offset + words - 1) / r.pageWords
	var total sim.Duration
	for pg := first; pg <= last; pg++ {
		p := int(pg % int64(len(pages)))
		if pages[p] == pageMapped {
			continue
		}
		total += r.fault(ce, cl, p)
	}
	return total
}

// fault services a fault on page p of cluster cl's mapping.
func (r *Region) fault(ce *cluster.CE, cl, p int) sim.Duration {
	o := r.os
	start := ce.Now()
	key := cl*len(r.state[cl]) + p
	switch r.state[cl][p] {
	case pageMapped:
		return 0

	case pageFaulting:
		// Concurrent fault: another CE of this cluster task is already
		// servicing this page. We trap, synchronize via a CPI, wait
		// for the service to complete, and pay our own (dearer) share
		// of the handling.
		fs := r.inflight[key]
		fs.joiners++
		o.concFaults++
		// A joiner that fail-stops while parked in Wait (or anywhere in
		// its share of the handling) unwinds with ErrAborted and must
		// uncount itself, or the owner classifies a solo service as
		// concurrent and concFaults/OSPgFltConc overcount a participant
		// that never completed.
		finished := false
		defer func() {
			if !finished {
				fs.joiners--
				o.concFaults--
			}
		}()
		waited := fs.done.Wait(ce.Proc)
		ce.Charge(waited, metrics.CatOSSystem)
		if r.state[cl][p] != pageMapped {
			// The owner fail-stopped mid-service and rolled the page
			// back to unmapped: retake the fault ourselves. The void
			// join stays counted — this CE did trap and synchronize.
			finished = true
			return ce.Now() - start + r.fault(ce, cl, p)
		}
		// After the owner finishes the service, each joiner still runs
		// its own trap handling and mapping fix-up — the reason a
		// concurrent fault is dearer per participant than a sequential
		// one — and pays the cross-processor interrupt that gathered
		// the trapped CEs to a single execution thread.
		ce.Spend(sim.Duration(o.Cost.PageFaultConc), metrics.CatOSSystem)
		o.Brk.Add(metrics.OSPgFltConc, ce.Now()-start)
		// The short CPI that collects the trapped CEs (a fraction of a
		// full gang-scheduling CPI).
		cpi := sim.Duration(o.Cost.CPIService / 4)
		ce.Spend(cpi, metrics.CatOSInterrupt)
		o.Brk.Add(metrics.OSCpi, cpi)
		o.Obs.Span(ce.Global(), "pgflt(conc)", obs.CatOS, start, ce.Now(), int64(p))
		finished = true
		return ce.Now() - start

	default: // pageUnmapped
		r.state[cl][p] = pageFaulting
		// The cond's name carries the region, page, and owner so a
		// watchdog report is diagnosable from the error alone: a
		// stranded waiter names exactly which service wedged and which
		// CE owned it.
		fs := &faultState{done: sim.NewCond(o.M.Kernel,
			fmt.Sprintf("pgflt:%s.c%d.p%d(owner=ce%d)", r.Name, cl, p, ce.Global()))}
		r.inflight[key] = fs
		// The rollback-and-wake path. Deferred so it runs on the normal
		// return AND when the owner fail-stops anywhere in the service:
		// parked in lock.Acquire, mid-Spend inside Hold, or in the
		// post-map CPI (Kernel.Abort delivers ErrAborted as a panic
		// through whichever primitive the Proc sleeps in). If the
		// mapping never committed, roll the claim back so a woken
		// joiner retakes the fault; either way wake every joiner — an
		// owner that dies after the map but before the wakeup must not
		// strand them on cond:pgflt (the fail-stop page-fault deadlock).
		defer func() {
			if r.state[cl][p] == pageFaulting {
				r.state[cl][p] = pageUnmapped
			}
			if r.inflight[key] == fs {
				delete(r.inflight, key)
			}
			fs.done.Broadcast()
		}()

		// The pager runs under the cluster kernel lock briefly, then
		// services the fault.
		o.phase(ce, FaultPreLock)
		lock := o.clusterLocks[cl]
		if waited := lock.Acquire(ce.Proc); waited > 0 {
			ce.Charge(waited, metrics.CatOSSpin)
		}
		func() {
			defer lock.Release()
			o.phase(ce, FaultLocked)
			crit := sim.Duration(o.Cost.CritSectCluster / 4) // pager queue touch
			ce.Spend(crit, metrics.CatOSSystem)
			o.Brk.Add(metrics.OSCrSectClus, crit)
		}()

		o.phase(ce, FaultService)
		service := sim.Duration(o.Cost.PageFaultSeq)
		ce.Spend(service, metrics.CatOSSystem)

		r.state[cl][p] = pageMapped
		delete(r.inflight, key)
		o.phase(ce, FaultPreBroadcast)
		if fs.joiners > 0 {
			// Someone piled on: the whole service was a concurrent
			// fault, and the owner took part in the cross-processor
			// interrupt that collected the trapped CEs (Section 5.1).
			o.concFaults++
			o.Brk.Add(metrics.OSPgFltConc, service)
			cpi := sim.Duration(o.Cost.CPIService / 4)
			ce.Spend(cpi, metrics.CatOSInterrupt)
			o.Brk.Add(metrics.OSCpi, cpi)
			o.Obs.Span(ce.Global(), "pgflt(conc)", obs.CatOS, start, ce.Now(), int64(p))
		} else {
			o.seqFaults++
			o.Brk.Add(metrics.OSPgFltSeq, service)
			o.Obs.Span(ce.Global(), "pgflt(seq)", obs.CatOS, start, ce.Now(), int64(p))
		}
		// The deferred rollback path broadcasts to the joiners.
		return ce.Now() - start
	}
}
