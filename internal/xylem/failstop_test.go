package xylem

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestOwnerFailStopAtEachPhase kills the page-fault owner at every
// phase of the service path and requires the machine to keep going:
// no joiner may ever be stranded on the fault cond, and the page must
// come up mapped (by the owner if it died post-map, by a retaking
// joiner otherwise). The post-map cases are the fail-stop page-fault
// deadlock: before the unconditional rollback defer, an owner dying
// between the map and the broadcast left its joiners parked forever.
func TestOwnerFailStopAtEachPhase(t *testing.T) {
	cases := []struct {
		name  string
		phase FaultPhase
		// delay, when non-zero, schedules the kill that many cycles
		// after the phase instead of aborting the owner in-place.
		delay func(o *OS) sim.Duration
		// rogue pre-holds the cluster kernel lock so the owner parks
		// inside Acquire when the delayed kill lands.
		rogue bool
	}{
		{name: "pre-lock", phase: FaultPreLock},
		{name: "blocked-in-acquire", phase: FaultPreLock, rogue: true,
			delay: func(*OS) sim.Duration { return 2_000 }},
		{name: "holding-cluster-lock", phase: FaultLocked},
		{name: "mid-service-spend", phase: FaultService,
			delay: func(o *OS) sim.Duration { return sim.Duration(o.Cost.PageFaultSeq / 2) }},
		{name: "post-map-pre-broadcast", phase: FaultPreBroadcast},
		{name: "post-map-mid-cpi", phase: FaultPreBroadcast,
			delay: func(o *OS) sim.Duration { return sim.Duration(o.Cost.CPIService / 8) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			k, m, o := rig(arch.Cedar8)
			r := o.NewRegion("data", 10_000)
			owner := m.CE(0)

			if tc.rogue {
				k.Spawn("rogue", func(p *sim.Proc) {
					lock := o.clusterLocks[0]
					lock.Acquire(p)
					p.Hold(5_000)
					lock.Release()
				})
			}

			killed := false
			o.FaultHook = func(ce *cluster.CE, ph FaultPhase) {
				if killed || ce != owner || ph != tc.phase {
					return
				}
				killed = true
				if tc.delay == nil {
					owner.Fail()
					return
				}
				k.Schedule(k.Now()+sim.Time(tc.delay(o)), owner.Fail)
			}

			bind(k, owner, func() { r.Touch(owner, 0, 8) })
			joined := 0
			for g := 1; g <= 2; g++ {
				ce := m.CE(g)
				bind(k, ce, func() {
					ce.Proc.Hold(10) // arrive while the owner's service is in flight
					r.Touch(ce, 0, 8)
					joined++
				})
			}

			if _, err := k.RunAllErr(); err != nil {
				t.Fatalf("killing the owner at %s wedged the machine: %v", tc.phase, err)
			}
			if !killed {
				t.Fatalf("phase %s never fired", tc.phase)
			}
			if !owner.Failed() {
				t.Fatal("owner did not fail-stop")
			}
			if joined != 2 {
				t.Fatalf("%d of 2 joiners completed their touch", joined)
			}
			if got := r.MappedPages(0); got != 1 {
				t.Fatalf("mapped pages = %d, want 1", got)
			}
			if len(r.inflight) != 0 {
				t.Fatalf("%d fault states leaked in r.inflight", len(r.inflight))
			}
		})
	}
}

// TestJoinerFailStopUncountsItself: a joiner killed while parked on
// the fault cond must retract its joiner/concurrent-fault count, or
// the owner classifies its solo service as concurrent and the Table-2
// breakdown charges a CPI and OSPgFltConc time for a participant that
// never completed.
func TestJoinerFailStopUncountsItself(t *testing.T) {
	k, m, o := rig(arch.Cedar8)
	r := o.NewRegion("data", 10_000)
	owner, joiner := m.CE(0), m.CE(1)

	o.FaultHook = func(ce *cluster.CE, ph FaultPhase) {
		if ce == owner && ph == FaultService {
			// The joiner is parked in fs.done.Wait by now (it touched at
			// cycle 10; the service runs far longer). Kill it mid-service.
			k.Schedule(k.Now()+sim.Time(o.Cost.PageFaultSeq/2), joiner.Fail)
		}
	}
	bind(k, owner, func() { r.Touch(owner, 0, 8) })
	bind(k, joiner, func() {
		joiner.Proc.Hold(10)
		r.Touch(joiner, 0, 8)
		t.Error("dead joiner's touch returned")
	})

	if _, err := k.RunAllErr(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	o.FlushAccounting()
	if !joiner.Failed() {
		t.Fatal("joiner did not fail-stop")
	}
	if o.SeqFaults() != 1 || o.ConcFaults() != 0 {
		t.Fatalf("seq=%d conc=%d, want 1,0 (dead joiner still counted)",
			o.SeqFaults(), o.ConcFaults())
	}
	if o.Brk.Time[metrics.OSPgFltConc] != 0 {
		t.Fatalf("OSPgFltConc = %d, want 0: solo service misclassified as concurrent",
			o.Brk.Time[metrics.OSPgFltConc])
	}
	if o.Brk.Time[metrics.OSPgFltSeq] == 0 {
		t.Fatal("no sequential fault time recorded")
	}
	if got := r.MappedPages(0); got != 1 {
		t.Fatalf("mapped pages = %d, want 1", got)
	}
}

// TestInvalidateSkipsInflightFault: a paging storm arriving while a
// fault is in flight must leave that page's service alone — the storm
// drops only mapped pages (and counts only them), the service
// completes, and its joiner is never stranded.
func TestInvalidateSkipsInflightFault(t *testing.T) {
	k, m, o := rig(arch.Cedar8)
	pageWords := o.Cost.PageBytes / 8
	r := o.NewRegion("data", pageWords*2)
	owner, joiner := m.CE(0), m.CE(1)
	ready := sim.NewCond(k, "page0-fault-started")

	dropped := -1
	o.FaultHook = func(ce *cluster.CE, ph FaultPhase) {
		if ph != FaultService || ce != owner || r.MappedPages(0) != 1 || dropped >= 0 {
			return // only the second fault (page 0, with page 1 already mapped)
		}
		ready.Broadcast() // release the joiner into the in-flight fault
		k.Schedule(k.Now()+sim.Time(o.Cost.PageFaultSeq/2), func() {
			dropped = r.InvalidateMappings(0)
		})
	}

	bind(k, owner, func() {
		r.Touch(owner, pageWords, 1) // map page 1 first
		r.Touch(owner, 0, 1)         // then fault page 0; the storm lands mid-service
	})
	joined := false
	bind(k, joiner, func() {
		ready.Wait(joiner.Proc)
		r.Touch(joiner, 0, 1)
		joined = true
	})

	if _, err := k.RunAllErr(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	o.FlushAccounting()
	if dropped != 1 {
		t.Fatalf("invalidation dropped %d mappings, want 1 (mapped page 1 only, "+
			"never the in-flight page 0)", dropped)
	}
	if !joined {
		t.Fatal("joiner stranded by the invalidation")
	}
	// Page 0's service completed normally despite the storm; page 1 was
	// dropped and stays unmapped until re-touched.
	if got := r.MappedPages(0); got != 1 {
		t.Fatalf("mapped pages = %d, want 1", got)
	}
	if o.SeqFaults() != 1 || o.ConcFaults() != 2 {
		t.Fatalf("seq=%d conc=%d, want 1,2", o.SeqFaults(), o.ConcFaults())
	}
}

// TestDeadlockReportNamesFaultCond: when a page-fault service truly
// wedges (here: the cluster kernel lock is never released), the
// deadlock report must be diagnosable from the error string alone —
// the fault cond's name carries the region, page, and owning CE, and
// the stranded joiners appear as a grouped waiter set.
func TestDeadlockReportNamesFaultCond(t *testing.T) {
	k, m, o := rig(arch.Cedar8)
	r := o.NewRegion("data", 10_000)
	never := sim.NewCond(k, "never-signaled")
	k.Spawn("rogue", func(p *sim.Proc) {
		o.clusterLocks[0].Acquire(p)
		never.Wait(p) // hold the lock forever
	})
	owner := m.CE(0)
	bind(k, owner, func() {
		owner.Proc.Hold(1) // let the rogue take the lock first
		r.Touch(owner, 0, 8)
	})
	for g := 1; g <= 2; g++ {
		ce := m.CE(g)
		bind(k, ce, func() {
			ce.Proc.Hold(10)
			r.Touch(ce, 0, 8)
		})
	}

	_, err := k.RunAllErr()
	if err == nil {
		t.Fatal("a never-released kernel lock did not deadlock the run")
	}
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("error %v is not sim.ErrDeadlock", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "pgflt:data.c0.p0(owner=ce0)") {
		t.Fatalf("report does not name the fault cond, page, and owner:\n%s", msg)
	}
	if !strings.Contains(msg, "2 waiters on cond:pgflt:data.c0.p0(owner=ce0)") {
		t.Fatalf("report does not group the stranded joiners:\n%s", msg)
	}
	var de *sim.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error is not a *sim.DeadlockError: %v", err)
	}
	found := false
	for _, ws := range de.WaiterSets() {
		if strings.HasPrefix(ws.Primitive, "cond:pgflt:") {
			found = true
			if len(ws.Waiters) != 2 {
				t.Fatalf("pgflt waiter set has %d waiters, want 2: %v", len(ws.Waiters), ws.Waiters)
			}
		}
	}
	if !found {
		t.Fatalf("no pgflt waiter set in %+v", de.WaiterSets())
	}
}
