// Package xylem models Cedar's operating system. Xylem is a Unix
// extension managing the hierarchical Cedar hardware: Xylem processes
// are made of cluster tasks, clusters are gang scheduled, and the OS
// provides virtual memory, system calls, and inter-task
// synchronization (Section 2 of the paper).
//
// The model produces every overhead class the paper's Section 5
// characterizes, with the same structure:
//
//   - page faults on first touch, classified sequential or concurrent
//     (two or more CEs faulting on the same page simultaneously), the
//     concurrent kind being more expensive and issuing cross-processor
//     interrupts;
//   - cross-processor interrupts (CPIs) for concurrent faults,
//     scheduling, and context switching, costing every participating
//     CE its register save/restore and accounting time;
//   - context switches driven by a per-cluster bookkeeping clock (in a
//     dedicated system the application is switched out when the OS
//     server must do bookkeeping);
//   - cluster and global system calls;
//   - cluster and global critical sections protected by kernel memory
//     locks, with lock spin accounted separately (the paper finds it
//     negligible — and so does the model, because OS lock hold times
//     are short relative to their access rates).
//
// Interrupt-class work (CPIs, context switches, ASTs) is delivered at
// preemption points: the runtime polls the OS between loop iterations
// and inside spin loops, mirroring how gang-scheduled CEs reach
// interrupt delivery on the real machine.
package xylem

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// OS is the Xylem model for one machine.
type OS struct {
	M    *cluster.Machine
	Cost arch.CostModel
	Brk  *metrics.OSBreakdown
	// Obs, when non-nil, receives OS-activity spans: system call and
	// critical-section service windows, kernel-lock spin, interrupt
	// delivery, and page fault handling.
	Obs *obs.Recorder
	// FaultHook, when non-nil, is called with the owning CE at each
	// FaultPhase of every page-fault service. Fault-injection tests and
	// the schedule fuzzer use it to land fail-stops in exact windows: a
	// hook may call CE.Fail directly (the service unwinds right there)
	// or schedule a later one. Nil in normal operation.
	FaultHook func(ce *cluster.CE, phase FaultPhase)

	globalLock   *sim.Resource
	clusterLocks []*sim.Resource

	pending    [][]pendingCharge // per global CE id
	regions    []*Region
	tickEvents []sim.Event
	stopped    bool

	// Event counters beyond Brk (fault classification).
	seqFaults  uint64
	concFaults uint64
}

type pendingCharge struct {
	os   metrics.OSCategory
	cat  metrics.Category
	cost sim.Duration
}

// FaultPhase names a point in the page-fault service path where the
// owner CE can fail-stop with distinct consequences. The phases match
// the hand-off structure of Region.fault: each one is a window the
// fail-stop deadlock regression suite kills the owner in.
type FaultPhase int

const (
	// FaultPreLock: the claim is taken (page marked faulting, joiners
	// can pile on) but the cluster kernel lock is not yet acquired —
	// the owner may be parked in lock.Acquire.
	FaultPreLock FaultPhase = iota
	// FaultLocked: the owner holds the cluster kernel lock for the
	// pager queue touch.
	FaultLocked
	// FaultService: the lock is dropped and the fault service time is
	// about to be spent (a Hold the owner can die inside).
	FaultService
	// FaultPreBroadcast: the page is mapped but the joiners are not yet
	// woken — the window whose unguarded exit was the fail-stop
	// page-fault deadlock.
	FaultPreBroadcast
)

var faultPhaseNames = [...]string{"pre-lock", "locked", "service", "pre-broadcast"}

// String implements fmt.Stringer.
func (ph FaultPhase) String() string {
	if ph < 0 || int(ph) >= len(faultPhaseNames) {
		return fmt.Sprintf("FaultPhase(%d)", int(ph))
	}
	return faultPhaseNames[ph]
}

// phase fires the FaultHook, if armed.
func (o *OS) phase(ce *cluster.CE, ph FaultPhase) {
	if o.FaultHook != nil {
		o.FaultHook(ce, ph)
	}
}

// New creates the OS for a machine.
func New(m *cluster.Machine) *OS {
	os := &OS{
		M:          m,
		Cost:       m.Cost,
		Brk:        &metrics.OSBreakdown{},
		globalLock: sim.NewLock(m.Kernel, "xylem.glock"),
		pending:    make([][]pendingCharge, m.Cfg.CEs()),
	}
	for c := 0; c < m.Cfg.Clusters; c++ {
		os.clusterLocks = append(os.clusterLocks,
			sim.NewLock(m.Kernel, fmt.Sprintf("xylem.clock%d", c)))
	}
	return os
}

// Start begins the per-cluster bookkeeping clocks (context switching
// and AST delivery). Call once, before the application starts.
func (o *OS) Start() {
	for c := range o.M.Clusters {
		o.scheduleTick(c, sim.Duration(o.Cost.SchedTickCycles))
		o.scheduleAST(c, sim.Duration(o.Cost.ASTPeriodCycles))
	}
}

// Stop cancels the bookkeeping clocks. Call when the application
// completes, before draining the kernel.
func (o *OS) Stop() {
	o.stopped = true
	for _, e := range o.tickEvents {
		e.Cancel()
	}
	o.tickEvents = nil
}

func (o *OS) scheduleTick(c int, d sim.Duration) {
	k := o.M.Kernel
	ev := k.After(d, func() {
		if o.stopped {
			return
		}
		// Bookkeeping forces a context switch of the gang-scheduled
		// cluster task: every CE of the cluster saves and restores
		// state, and a CPI obtains the single execution thread.
		for _, ce := range o.M.Clusters[c].CEs {
			o.enqueue(ce, pendingCharge{metrics.OSCtx, metrics.CatOSSystem, sim.Duration(o.Cost.CtxSwitch)})
			o.enqueue(ce, pendingCharge{metrics.OSCpi, metrics.CatOSInterrupt, sim.Duration(o.Cost.CPIService)})
		}
		// The OS server's own bookkeeping: scheduler-queue and pager
		// critical sections on every CE, plus the server's cluster and
		// (occasional) global system calls and resource accesses on
		// the lead.
		for _, ce := range o.M.Clusters[c].CEs {
			o.enqueue(ce, pendingCharge{metrics.OSCrSectClus, metrics.CatOSSystem,
				sim.Duration(o.Cost.CritSectCluster)})
		}
		lead := o.M.Clusters[c].Lead()
		o.enqueue(lead, pendingCharge{metrics.OSClusSyscall, metrics.CatOSSystem,
			sim.Duration(o.Cost.SyscallCluster)})
		o.enqueue(lead, pendingCharge{metrics.OSCrSectGlbl, metrics.CatOSSystem,
			sim.Duration(o.Cost.CritSectGlobal)})
		o.scheduleTick(c, sim.Duration(o.Cost.SchedTickCycles))
	})
	o.tickEvents = append(o.tickEvents, ev)
}

func (o *OS) scheduleAST(c int, d sim.Duration) {
	k := o.M.Kernel
	ev := k.After(d, func() {
		if o.stopped {
			return
		}
		o.enqueue(o.M.Clusters[c].Lead(),
			pendingCharge{metrics.OSAst, metrics.CatOSInterrupt, sim.Duration(o.Cost.ASTService)})
		o.scheduleAST(c, sim.Duration(o.Cost.ASTPeriodCycles))
	})
	o.tickEvents = append(o.tickEvents, ev)
}

func (o *OS) enqueue(ce *cluster.CE, pc pendingCharge) {
	g := ce.Global()
	o.pending[g] = append(o.pending[g], pc)
}

// Poll delivers any pending interrupt/context-switch work to the CE.
// The runtime calls it at preemption points (loop iteration
// boundaries, spin-loop polls). It returns the time consumed.
func (o *OS) Poll(ce *cluster.CE) sim.Duration {
	g := ce.Global()
	if len(o.pending[g]) == 0 {
		return 0
	}
	start := ce.Now()
	delivered := int64(len(o.pending[g]))
	var total sim.Duration
	for _, pc := range o.pending[g] {
		ce.Spend(pc.cost, pc.cat)
		o.Brk.Add(pc.os, pc.cost)
		total += pc.cost
	}
	o.pending[g] = o.pending[g][:0]
	o.Obs.Span(g, "interrupt-delivery", obs.CatOS, start, ce.Now(), delivered)
	return total
}

// FlushAccounting charges any still-undelivered pending work to the
// accounts without advancing time. Call at completion so Table-2
// totals include work that accrued near the end of the run.
func (o *OS) FlushAccounting() {
	for g, q := range o.pending {
		ce := o.M.CE(g)
		for _, pc := range q {
			ce.Charge(pc.cost, pc.cat)
			o.Brk.Add(pc.os, pc.cost)
		}
		o.pending[g] = o.pending[g][:0]
	}
}

// ClusterSyscall services a cluster system call on the CE: enter the
// cluster kernel (spin on the cluster memory lock if contended), run
// the handler, return.
func (o *OS) ClusterSyscall(ce *cluster.CE) {
	o.lockedService(ce, o.clusterLocks[ce.ID.Cluster],
		sim.Duration(o.Cost.SyscallCluster), metrics.OSClusSyscall)
}

// GlobalSyscall services a global system call (task creation,
// cross-cluster operations) under the global kernel lock.
func (o *OS) GlobalSyscall(ce *cluster.CE) {
	o.lockedService(ce, o.globalLock,
		sim.Duration(o.Cost.SyscallGlobal), metrics.OSGlblSyscall)
}

// ClusterCritSect enters and leaves a cluster critical section
// (scheduler queues, pager structures).
func (o *OS) ClusterCritSect(ce *cluster.CE) {
	o.lockedService(ce, o.clusterLocks[ce.ID.Cluster],
		sim.Duration(o.Cost.CritSectCluster), metrics.OSCrSectClus)
}

// GlobalCritSect enters and leaves a global critical section.
func (o *OS) GlobalCritSect(ce *cluster.CE) {
	o.lockedService(ce, o.globalLock,
		sim.Duration(o.Cost.CritSectGlobal), metrics.OSCrSectGlbl)
}

func (o *OS) lockedService(ce *cluster.CE, lock *sim.Resource, cost sim.Duration, cat metrics.OSCategory) {
	waited := lock.Acquire(ce.Proc)
	if waited > 0 {
		ce.Charge(waited, metrics.CatOSSpin) // kernel lock spin (Figure 3)
		o.Obs.Span(ce.Global(), "kl-spin", obs.CatOS, ce.Now()-waited, ce.Now(), 0)
	}
	// Release via defer: a CE that fail-stops inside the kernel must
	// not take the lock down with it.
	defer lock.Release()
	start := ce.Now()
	ce.Spend(cost, metrics.CatOSSystem)
	o.Brk.Add(cat, cost)
	o.Obs.Span(ce.Global(), cat.String(), obs.CatOS, start, ce.Now(), 0)
}

// LockStall models a kernel-lock holder stall: a rogue kernel thread
// seizes a kernel memory lock and sits on it for span cycles, so every
// CE entering that kernel path spins (charged to the paper's KL-spin
// category). clusterID selects a cluster kernel lock; clusterID < 0
// targets the global kernel lock.
func (o *OS) LockStall(clusterID int, span sim.Duration) {
	lock := o.globalLock
	name := "xylem.stall.glock"
	if clusterID >= 0 {
		c := clusterID % len(o.clusterLocks)
		lock = o.clusterLocks[c]
		name = fmt.Sprintf("xylem.stall.clock%d", c)
	}
	o.M.Kernel.Spawn(name, func(p *sim.Proc) {
		lock.Acquire(p)
		defer lock.Release()
		p.Hold(span)
	})
}

// InvalidateMappings unmaps every mapped page of every region for the
// given cluster task (clusterID < 0: all cluster tasks), modeling a
// paging storm — the pager reclaiming frames under memory pressure so
// the application re-faults its working set. It returns the number of
// mappings dropped. A page whose fault is still in flight is not yet a
// mapping: it is left alone, excluded from the count, and its service
// completes normally (see Region.InvalidateMappings).
func (o *OS) InvalidateMappings(clusterID int) int {
	n := 0
	for _, r := range o.regions {
		n += r.InvalidateMappings(clusterID)
	}
	return n
}

// SeqFaults returns the number of sequential page faults serviced.
func (o *OS) SeqFaults() uint64 { return o.seqFaults }

// ConcFaults returns the number of concurrent page fault services
// (each participant counts once).
func (o *OS) ConcFaults() uint64 { return o.concFaults }
