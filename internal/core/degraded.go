package core

import (
	"fmt"
	"strings"
)

// ShareDelta is one row of the degraded-vs-baseline comparison: an
// overhead's share of the completion time on the healthy machine and
// on the fault-injected one.
type ShareDelta struct {
	Name     string
	Baseline float64 // fraction of CT, healthy run
	Degraded float64 // fraction of CT, fault-injected run
}

// Delta returns the share change (degraded minus baseline), in
// fraction-of-CT points.
func (d ShareDelta) Delta() float64 { return d.Degraded - d.Baseline }

// DegradedReport compares a fault-injected run against the healthy
// baseline on the same configuration, applying the paper's overhead
// decomposition to both: how much of the slowdown shows up as OS
// overhead, as parallelization overhead, and as global memory and
// network contention.
type DegradedReport struct {
	App      string
	Plan     string // fault plan in spec syntax
	Failed   int    // CEs fail-stopped by the end of the degraded run
	Baseline *Result
	Degraded *Result
	Rows     []ShareDelta
}

// Slowdown returns CT_degraded / CT_baseline.
func (rep *DegradedReport) Slowdown() float64 {
	if rep.Baseline.CT == 0 {
		return 0
	}
	return float64(rep.Degraded.CT) / float64(rep.Baseline.CT)
}

// CompareDegraded decomposes a healthy baseline run and a degraded
// (fault-injected) run of the same application on the same
// configuration against the 1-processor base, producing the
// share-delta table. The contention share is clamped at zero: the
// Table-4 estimator can dip slightly negative when the ideal-time
// estimate overshoots, and a negative contention share has no physical
// reading in this comparison.
func CompareDegraded(base1p, baseline, degraded *Result, plan string) (*DegradedReport, error) {
	if baseline.App != degraded.App {
		return nil, fmt.Errorf("core: degraded app %q != baseline app %q", degraded.App, baseline.App)
	}
	if baseline.Cfg.Name != degraded.Cfg.Name {
		return nil, fmt.Errorf("core: degraded config %s != baseline config %s",
			degraded.Cfg.Name, baseline.Cfg.Name)
	}
	contB, err := ContentionOverhead(base1p, baseline)
	if err != nil {
		return nil, err
	}
	contD, err := ContentionOverhead(base1p, degraded)
	if err != nil {
		return nil, err
	}
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	}
	rows := []ShareDelta{
		{"OS share", baseline.OSShare(), degraded.OSShare()},
		{"parallelization overhead (main)",
			baseline.Task(0).OverheadFraction(), degraded.Task(0).OverheadFraction()},
		{"contention share", clamp(contB.OvCont) / 100, clamp(contD.OvCont) / 100},
	}
	var totB, totD float64
	for _, r := range rows {
		totB += r.Baseline
		totD += r.Degraded
	}
	rows = append(rows, ShareDelta{"total overhead", totB, totD})
	return &DegradedReport{
		App:      baseline.App,
		Plan:     plan,
		Failed:   degraded.FailedCEs,
		Baseline: baseline,
		Degraded: degraded,
		Rows:     rows,
	}, nil
}

// FormatDegraded renders the comparison as a text table in the style
// of the paper-table formatters.
func FormatDegraded(rep *DegradedReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Degraded-mode comparison: %s on %s\n", rep.App, rep.Baseline.Cfg.Name)
	fmt.Fprintf(&b, "fault plan: %s\n", rep.Plan)
	if rep.Failed > 0 {
		fmt.Fprintf(&b, "%d of %d CEs fail-stopped\n", rep.Failed, rep.Baseline.Cfg.CEs())
	}
	fmt.Fprintf(&b, "%-34s %10s %10s %10s\n", "", "baseline", "degraded", "delta")
	fmt.Fprintf(&b, "%-34s %9.4fs %9.4fs %+9.1f%%\n", "completion time",
		rep.Baseline.CTSeconds(), rep.Degraded.CTSeconds(), (rep.Slowdown()-1)*100)
	for _, r := range rep.Rows {
		fmt.Fprintf(&b, "%-34s %9.1f%% %9.1f%% %+8.1fpp\n",
			r.Name, r.Baseline*100, r.Degraded*100, r.Delta()*100)
	}
	return b.String()
}
