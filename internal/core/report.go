package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// Sweep holds the results of one application across the paper's
// configurations, keyed by total CE count, with the 1-processor run as
// the speedup/contention base.
type Sweep struct {
	App     string
	Results map[int]*Result // key: CEs
}

// Base returns the 1-processor result.
func (s *Sweep) Base() *Result { return s.Results[1] }

// Configs returns the CE counts present, ascending.
func (s *Sweep) Configs() []int {
	var out []int
	for k := range s.Results {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// FormatTable1 renders the Table-1 view (CTs, speedups, average
// concurrency) for a set of application sweeps.
func FormatTable1(sweeps []*Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: CTs, Speedups and Average Concurrency\n")
	fmt.Fprintf(&b, "%-8s %-8s", "Program", "")
	if len(sweeps) > 0 {
		for _, p := range sweeps[0].Configs() {
			fmt.Fprintf(&b, " %8dp", p)
		}
	}
	b.WriteByte('\n')
	for _, s := range sweeps {
		base := s.Base()
		fmt.Fprintf(&b, "%-8s %-8s", s.App, "CT (s)")
		for _, p := range s.Configs() {
			fmt.Fprintf(&b, " %9.0f", s.Results[p].CTSeconds())
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-8s %-8s", "", "Speedup")
		for _, p := range s.Configs() {
			if p == 1 {
				fmt.Fprintf(&b, " %9s", "-")
				continue
			}
			fmt.Fprintf(&b, " %9.2f", s.Results[p].Speedup(base))
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-8s %-8s", "", "Concurr")
		for _, p := range s.Configs() {
			if p == 1 {
				fmt.Fprintf(&b, " %9s", "-")
				continue
			}
			fmt.Fprintf(&b, " %9.2f", s.Results[p].MachineConcurrency())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatFigure3 renders the completion-time breakdown (Figure 3) for
// one application sweep: user/system/interrupt/spin per configuration,
// main task view.
func FormatFigure3(s *Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: Completion Time Breakdown — %s (main task, %% of CT)\n", s.App)
	fmt.Fprintf(&b, "%8s %8s %8s %10s %8s %8s\n", "config", "user", "system", "interrupt", "spin", "OS total")
	for _, p := range s.Configs() {
		r := s.Results[p]
		bd := r.ClusterBreakdown(0)
		fmt.Fprintf(&b, "%7dp %7.1f%% %7.1f%% %9.1f%% %7.2f%% %7.1f%%\n",
			p, bd.User*100, bd.System*100, bd.Interrupt*100, bd.Spin*100, bd.OSShare()*100)
	}
	return b.String()
}

// FormatTable2 renders the detailed OS overhead characterization
// (Table 2) for the given results (normally the 32-processor runs).
func FormatTable2(results []*Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: Detailed Characterization of OS overheads (per-CE average)\n")
	fmt.Fprintf(&b, "%-16s", "Overhead")
	for _, r := range results {
		fmt.Fprintf(&b, " %9s %6s", r.App+"(s)", "%")
	}
	b.WriteByte('\n')
	for c := metrics.OSCategory(0); c < metrics.NumOSCategories; c++ {
		fmt.Fprintf(&b, "%-16s", c.String())
		for _, r := range results {
			row := r.OSDetail()[c]
			fmt.Fprintf(&b, " %9.2f %6.2f", row.Seconds, row.Percent)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatUserTime renders the Figures 5–9 user-time breakdown for one
// application sweep: per configuration, the main (and helper) task
// shares of the completion time.
func FormatUserTime(s *Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "User Time Breakdown — %s (%% of CT; paper Figures 5-9)\n", s.App)
	fmt.Fprintf(&b, "%8s %-8s %7s %7s %7s %7s %7s %7s %7s | %8s\n",
		"config", "task", "serial", "mcloop", "iters", "setup", "pick", "barrier", "hwait", "ovhd")
	for _, p := range s.Configs() {
		r := s.Results[p]
		for c, t := range r.Tasks() {
			name := "main"
			if c > 0 {
				name = fmt.Sprintf("helper%d", c)
			}
			fmt.Fprintf(&b, "%7dp %-8s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% | %7.1f%%\n",
				p, name,
				t.Serial*100, t.MCLoop*100, t.Iter*100,
				t.Setup*100, t.Pick*100, t.Barrier*100, t.HelperWait*100,
				t.OverheadFraction()*100)
		}
	}
	return b.String()
}

// FormatTable3 renders the average parallel loop concurrency table.
func FormatTable3(sweeps []*Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Average Parallel Loop Concurrency (per task/cluster)\n")
	fmt.Fprintf(&b, "%8s %-8s", "config", "task")
	for _, s := range sweeps {
		fmt.Fprintf(&b, " %8s", s.App)
	}
	b.WriteByte('\n')
	if len(sweeps) == 0 {
		return b.String()
	}
	for _, p := range sweeps[0].Configs() {
		if p == 1 {
			continue
		}
		clusters := sweeps[0].Results[p].Cfg.Clusters
		for c := 0; c < clusters; c++ {
			name := "Main"
			if c > 0 {
				name = fmt.Sprintf("helper%d", c)
			}
			fmt.Fprintf(&b, "%7dp %-8s", p, name)
			for _, s := range sweeps {
				pc := s.Results[p].ParallelLoopConcurrency()
				fmt.Fprintf(&b, " %8.2f", pc[c])
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FormatTable4 renders the global memory and network contention
// overhead table.
func FormatTable4(sweeps []*Sweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: GM and Network Contention Overhead\n")
	fmt.Fprintf(&b, "%-8s %-14s", "Program", "")
	for _, p := range sweeps[0].Configs() {
		fmt.Fprintf(&b, " %8dp", p)
	}
	b.WriteByte('\n')
	for _, s := range sweeps {
		base := s.Base()
		rowA := fmt.Sprintf("%-8s %-14s", s.App, "Tp_actual (s)")
		rowI := fmt.Sprintf("%-8s %-14s", "", "Tp_ideal (s)")
		rowO := fmt.Sprintf("%-8s %-14s", "", "Ov_cont (%)")
		for _, p := range s.Configs() {
			r := s.Results[p]
			rowA += fmt.Sprintf(" %9.0f", r.Seconds(r.tpActual()))
			if p == 1 {
				rowI += fmt.Sprintf(" %9s", "-")
				rowO += fmt.Sprintf(" %9s", "-")
				continue
			}
			cont, err := ContentionOverhead(base, r)
			if err != nil {
				rowI += fmt.Sprintf(" %9s", "err")
				rowO += fmt.Sprintf(" %9s", "err")
				continue
			}
			rowI += fmt.Sprintf(" %9.0f", r.Seconds(cont.TpIdeal))
			rowO += fmt.Sprintf(" %9.1f", cont.OvCont)
		}
		b.WriteString(rowA + "\n" + rowI + "\n" + rowO + "\n")
	}
	return b.String()
}
