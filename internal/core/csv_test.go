package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

func csvSweep() *Sweep {
	mk := func(cfg arch.Config, ct sim.Time) *Result {
		r := fake(cfg, ct)
		r.SXWall[0] = ct / 2
		for c := range r.Concurrency {
			r.Concurrency[c] = 3
			r.SXWall[c] = ct / 2
		}
		return r
	}
	return &Sweep{App: "TEST", Results: map[int]*Result{
		1:  mk(arch.Cedar1, 1000),
		32: mk(arch.Cedar32, 100),
	}}
}

func rows(s string) int { return strings.Count(s, "\n") - 1 } // minus header

func TestTable1CSV(t *testing.T) {
	out := Table1CSV([]*Sweep{csvSweep()})
	if !strings.HasPrefix(out, "app,ces,ct_seconds,speedup,concurrency\n") {
		t.Fatalf("bad header: %q", out[:40])
	}
	if rows(out) != 2 {
		t.Fatalf("rows = %d, want 2", rows(out))
	}
	if !strings.Contains(out, "TEST,32,") {
		t.Fatal("missing 32p row")
	}
}

func TestFigure3CSV(t *testing.T) {
	out := Figure3CSV([]*Sweep{csvSweep()})
	if rows(out) != 2 {
		t.Fatalf("rows = %d, want 2", rows(out))
	}
}

func TestUserTimeCSV(t *testing.T) {
	out := UserTimeCSV([]*Sweep{csvSweep()})
	// 1 task at 1p + 4 tasks at 32p.
	if rows(out) != 5 {
		t.Fatalf("rows = %d, want 5", rows(out))
	}
	if !strings.Contains(out, ",helper3,") {
		t.Fatal("missing helper3 row")
	}
}

func TestTable2CSV(t *testing.T) {
	s := csvSweep()
	out := Table2CSV([]*Result{s.Results[32]})
	if rows(out) != 9 {
		t.Fatalf("rows = %d, want 9 OS activities", rows(out))
	}
	if !strings.Contains(out, "pg flt (c)") {
		t.Fatal("missing fault row")
	}
}

func TestTable3And4CSV(t *testing.T) {
	s := csvSweep()
	out3 := Table3CSV([]*Sweep{s})
	if rows(out3) != 4 { // 4 clusters at 32p; 1p skipped
		t.Fatalf("table3 rows = %d, want 4", rows(out3))
	}
	out4 := Table4CSV([]*Sweep{s})
	if rows(out4) != 1 { // one multiprocessor config
		t.Fatalf("table4 rows = %d, want 1", rows(out4))
	}
}

func TestCSVNumbersParse(t *testing.T) {
	// Every non-header field after the leading strings must be
	// numeric — no stray formatting.
	out := Table1CSV([]*Sweep{csvSweep()})
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			t.Fatalf("field count %d in %q", len(fields), line)
		}
		for _, f := range fields[1:] {
			for _, r := range f {
				if (r < '0' || r > '9') && r != '.' && r != '-' {
					t.Fatalf("non-numeric field %q in %q", f, line)
				}
			}
		}
	}
}
