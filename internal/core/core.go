// Package core implements the paper's contribution: the
// measurement-based overhead-decomposition methodology. Given
// instrumented runs (per-CE time accounts, the OS activity breakdown,
// per-cluster loop wall times, and concurrency measures), it produces
// every quantity the paper's evaluation reports:
//
//   - Table 1: completion times, speedups, average concurrency;
//   - Figure 3: the user/system/interrupt/spin completion-time
//     breakdown per configuration;
//   - Table 2: the detailed OS activity characterization;
//   - Figures 4–9: the user-time breakdown into serial, main-cluster
//     loops, iteration execution, and the four parallelization
//     overheads (loop setup, iteration pickup, barrier wait, helper
//     wait), for main and helper tasks;
//   - Table 3: average parallel loop concurrency, solved from the
//     paper's equation (1-pf) + pf*par_concurr = avg_concurr;
//   - Table 4: the global memory and network contention overhead,
//     estimated as Ov_cont = (T_p_actual - T_p_ideal) / CT.
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cfrt"
	"repro/internal/gmem"
	"repro/internal/metrics"
	"repro/internal/qmon"
	"repro/internal/sim"
	"repro/internal/statfx"
)

// Result is everything the analysis needs from one instrumented run
// of one application on one configuration.
type Result struct {
	App   string
	Cfg   arch.Config
	Scale float64 // paper seconds per simulated second (timestep scaling)

	CT sim.Time // completion time in cycles

	// Per-CE accounts, machine order.
	Accounts []*metrics.Account
	// Detailed OS activity breakdown (Table 2 raw material).
	OS metrics.OSBreakdown
	// Per-cluster wall time inside cross-cluster s(x)doall loops and
	// (cluster 0 only) main-cluster-only loops.
	SXWall []sim.Duration
	MCWall []sim.Duration
	// Per-cluster average concurrency, integrated from accounts.
	Concurrency []float64
	// Machine concurrency as sampled by the statfx monitor (may
	// differ slightly from the exact integral).
	SampledConcurrency float64
	// Runtime event counters.
	RT cfrt.Stats
	// Global memory traffic and queueing statistics.
	GM gmem.Stats
	// FailedCEs counts processors fail-stopped by fault injection
	// (zero on a healthy run).
	FailedCEs int
}

// Collect assembles a Result from a finished run.
func Collect(app string, scale float64, rt *cfrt.Runtime, sampler *statfx.Sampler) *Result {
	m := rt.M
	ct := rt.CT()
	r := &Result{
		App:       app,
		Cfg:       m.Cfg,
		Scale:     scale,
		CT:        ct,
		Accounts:  m.Accounts(),
		OS:        *rt.OS.Brk,
		RT:        rt.Statistics(),
		GM:        m.GM.Stats(),
		FailedCEs: m.FailedCEs(),
	}
	for c := range m.Clusters {
		r.SXWall = append(r.SXWall, rt.ClusterSXWall(c))
		r.MCWall = append(r.MCWall, rt.ClusterMCWall(c))
	}
	r.Concurrency = statfx.Exact(m, ct)
	if sampler != nil {
		r.SampledConcurrency = sampler.MachineConcurrency()
	}
	return r
}

// Seconds converts a cycle count of this run to paper-scale seconds.
func (r *Result) Seconds(cycles sim.Duration) float64 {
	return arch.Seconds(int64(cycles)) * r.Scale
}

// CTSeconds returns the completion time in paper-scale seconds.
func (r *Result) CTSeconds() float64 { return r.Seconds(r.CT) }

// MachineConcurrency returns the Table-1 concurrency value: the sum of
// the per-cluster averages.
func (r *Result) MachineConcurrency() float64 {
	total := 0.0
	for _, v := range r.Concurrency {
		total += v
	}
	return total
}

// Speedup returns base.CT / r.CT — the Table-1 speedup of r over the
// base (1-processor) run.
func (r *Result) Speedup(base *Result) float64 {
	if r.CT == 0 {
		return 0
	}
	return float64(base.CT) / float64(r.CT)
}

// ClusterBreakdown returns the Figure-3 view for cluster c's task
// (the cluster lead CE's timeline).
func (r *Result) ClusterBreakdown(c int) qmon.Breakdown {
	lead := c * r.Cfg.CEsPerCluster
	return qmon.ForAccount(r.Accounts[lead], r.CT)
}

// OSShare returns the machine-average operating system share of the
// completion time (system + interrupt + spin), the headline Section-5
// number.
func (r *Result) OSShare() float64 {
	var sum float64
	for _, a := range r.Accounts {
		b := qmon.ForAccount(a, r.CT)
		sum += b.OSShare()
	}
	return sum / float64(len(r.Accounts))
}

// OSDetailRow is one row of Table 2: an OS activity's contribution in
// paper-scale seconds (machine average per CE) and as a percentage of
// the completion time.
type OSDetailRow struct {
	Category metrics.OSCategory
	Seconds  float64
	Percent  float64
	Count    uint64
}

// OSDetail returns the Table-2 rows. Times are averaged over the
// machine's CEs, matching the per-task accounting the paper reports.
func (r *Result) OSDetail() []OSDetailRow {
	rows := make([]OSDetailRow, 0, metrics.NumOSCategories)
	nce := float64(r.Cfg.CEs())
	for c := metrics.OSCategory(0); c < metrics.NumOSCategories; c++ {
		perCE := sim.Duration(float64(r.OS.Time[c]) / nce)
		sec := r.Seconds(perCE)
		pct := 0.0
		if r.CT > 0 {
			pct = float64(perCE) / float64(r.CT) * 100
		}
		rows = append(rows, OSDetailRow{Category: c, Seconds: sec, Percent: pct, Count: r.OS.Count[c]})
	}
	return rows
}

// TaskBreakdown is the Figures 4–9 view of one cluster task: fractions
// of the completion time, from the task timeline (cluster lead CE).
// Below-the-line quantities: Serial, MCLoop, Iter (+ the stall
// components folded into whichever user work incurred them).
// Above-the-line parallelization overheads: Setup, Pick, Barrier,
// HelperWait.
type TaskBreakdown struct {
	Cluster int
	IsMain  bool

	UserSeconds float64 // total user time of the task, paper seconds

	Serial     float64
	MCLoop     float64
	Iter       float64 // s(x)doall iteration execution incl. stalls
	Setup      float64
	Pick       float64
	Barrier    float64
	HelperWait float64
}

// OverheadFraction returns the parallelization-overhead share (above
// the line): setup + pick + barrier + helper wait.
func (t TaskBreakdown) OverheadFraction() float64 {
	return t.Setup + t.Pick + t.Barrier + t.HelperWait
}

// Task returns the user-time breakdown for cluster c's task.
func (r *Result) Task(c int) TaskBreakdown {
	lead := r.Accounts[c*r.Cfg.CEsPerCluster]
	f := func(cat metrics.Category) float64 {
		if r.CT == 0 {
			return 0
		}
		return float64(lead.Get(cat)) / float64(r.CT)
	}
	// Stall time is charged while executing user work; fold it into
	// the iteration-execution share as the paper does (its user time
	// "includes the actual busy time, stall times due to global memory
	// accesses or cache refills").
	return TaskBreakdown{
		Cluster:     c,
		IsMain:      c == 0,
		UserSeconds: r.Seconds(lead.UserTotal()),
		Serial:      f(metrics.CatSerial),
		MCLoop:      f(metrics.CatMCLoop),
		Iter:        f(metrics.CatLoopIter) + f(metrics.CatGMStall) + f(metrics.CatCacheStall),
		Setup:       f(metrics.CatLoopSetup),
		Pick:        f(metrics.CatPickIter),
		Barrier:     f(metrics.CatBarrierWait),
		HelperWait:  f(metrics.CatHelperWait),
	}
}

// Tasks returns the breakdown for every cluster task.
func (r *Result) Tasks() []TaskBreakdown {
	out := make([]TaskBreakdown, r.Cfg.Clusters)
	for c := range out {
		out[c] = r.Task(c)
	}
	return out
}

// ParallelFraction returns pf for cluster c: the fraction of the
// completion time spent on parallel loop execution on that cluster.
// For the main cluster task, pf includes the main-cluster-only loops
// (Section 7).
func (r *Result) ParallelFraction(c int) float64 {
	if r.CT == 0 {
		return 0
	}
	wall := r.SXWall[c]
	if c == 0 {
		wall += r.MCWall[c]
	}
	pf := float64(wall) / float64(r.CT)
	if pf > 1 {
		pf = 1
	}
	return pf
}

// ParallelLoopConcurrency solves the paper's equation
//
//	(1 - pf) + pf*par_concurr = avg_concurr
//
// for each cluster, yielding the Table-3 values. Results are clamped
// to [1, CEs/cluster] (the physically meaningful range).
func (r *Result) ParallelLoopConcurrency() []float64 {
	out := make([]float64, r.Cfg.Clusters)
	for c := range out {
		pf := r.ParallelFraction(c)
		avg := r.Concurrency[c]
		if pf <= 0 {
			out[c] = 1
			continue
		}
		pc := (avg - 1 + pf) / pf
		if pc < 1 {
			pc = 1
		}
		if max := float64(r.Cfg.CEsPerCluster); pc > max {
			pc = max
		}
		out[c] = pc
	}
	return out
}

// Contention is one cell-group of Table 4.
type Contention struct {
	TpActual sim.Duration // actual parallel loop execution time
	TpIdeal  sim.Duration // ideal (zero-contention) estimate
	OvCont   float64      // percent of CT attributable to contention
}

// TpActualSeconds returns T_p_actual in paper seconds (needs the run
// for scale).
func (r *Result) tpActual() sim.Duration { return r.SXWall[0] + r.MCWall[0] }

// ContentionOverhead applies the Section-7 methodology: the run on the
// 1-processor configuration supplies the minimum possible total
// processing time for the loop code (T1_mc, T1_sx); dividing by the
// average parallel loop concurrency yields T_p_ideal; the excess of
// the measured T_p_actual over it, normalized by CT, is the overhead
// attributable to global memory and network contention.
func ContentionOverhead(base, r *Result) (Contention, error) {
	if base.Cfg.CEs() != 1 {
		return Contention{}, fmt.Errorf("core: contention base must be the 1-processor run, got %s", base.Cfg.Name)
	}
	if base.App != r.App {
		return Contention{}, fmt.Errorf("core: contention base app %q != run app %q", base.App, r.App)
	}
	t1mc := float64(base.MCWall[0])
	t1sx := float64(base.SXWall[0])
	pc := r.ParallelLoopConcurrency()

	var ideal float64
	if r.Cfg.Clusters == 1 {
		ideal = (t1mc + t1sx) / pc[0]
	} else {
		total := 0.0
		for _, v := range pc {
			total += v
		}
		ideal = t1mc/pc[0] + t1sx/total
	}
	c := Contention{
		TpActual: r.tpActual(),
		TpIdeal:  sim.Duration(ideal),
	}
	if r.CT > 0 {
		c.OvCont = (float64(c.TpActual) - ideal) / float64(r.CT) * 100
	}
	return c, nil
}

// TotalOverheadShare returns the headline conclusion number: the share
// of CT attributable to OS overhead, parallelization overhead (main
// task), and contention together ("the various overheads contribute as
// much as 30-50% of the completion time").
func TotalOverheadShare(base, r *Result) float64 {
	cont, err := ContentionOverhead(base, r)
	if err != nil {
		return 0
	}
	return r.OSShare() + r.Task(0).OverheadFraction() + cont.OvCont/100
}
