package core

import (
	"fmt"
	"strings"
)

// CSV exports for plotting the paper's figures from the regenerated
// data (each writer produces a header plus one row per data point).

// Table1CSV emits app,ces,ct_seconds,speedup,concurrency.
func Table1CSV(sweeps []*Sweep) string {
	var b strings.Builder
	b.WriteString("app,ces,ct_seconds,speedup,concurrency\n")
	for _, s := range sweeps {
		base := s.Base()
		for _, p := range s.Configs() {
			r := s.Results[p]
			speedup := 1.0
			if p > 1 {
				speedup = r.Speedup(base)
			}
			fmt.Fprintf(&b, "%s,%d,%.2f,%.3f,%.3f\n",
				s.App, p, r.CTSeconds(), speedup, r.MachineConcurrency())
		}
	}
	return b.String()
}

// Figure3CSV emits app,ces,user,system,interrupt,spin (fractions of
// CT, main task view).
func Figure3CSV(sweeps []*Sweep) string {
	var b strings.Builder
	b.WriteString("app,ces,user,system,interrupt,spin\n")
	for _, s := range sweeps {
		for _, p := range s.Configs() {
			r := s.Results[p]
			bd := r.ClusterBreakdown(0)
			fmt.Fprintf(&b, "%s,%d,%.4f,%.4f,%.4f,%.5f\n",
				s.App, p, bd.User, bd.System, bd.Interrupt, bd.Spin)
		}
	}
	return b.String()
}

// UserTimeCSV emits the Figures 5-9 data:
// app,ces,task,serial,mcloop,iters,setup,pick,barrier,hwait.
func UserTimeCSV(sweeps []*Sweep) string {
	var b strings.Builder
	b.WriteString("app,ces,task,serial,mcloop,iters,setup,pick,barrier,hwait\n")
	for _, s := range sweeps {
		for _, p := range s.Configs() {
			r := s.Results[p]
			for c, t := range r.Tasks() {
				name := "main"
				if c > 0 {
					name = fmt.Sprintf("helper%d", c)
				}
				fmt.Fprintf(&b, "%s,%d,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
					s.App, p, name, t.Serial, t.MCLoop, t.Iter,
					t.Setup, t.Pick, t.Barrier, t.HelperWait)
			}
		}
	}
	return b.String()
}

// Table2CSV emits app,activity,seconds,percent,count for the given
// results (normally the 32-processor runs).
func Table2CSV(results []*Result) string {
	var b strings.Builder
	b.WriteString("app,activity,seconds,percent,count\n")
	for _, r := range results {
		for _, row := range r.OSDetail() {
			fmt.Fprintf(&b, "%s,%s,%.3f,%.3f,%d\n",
				r.App, row.Category, row.Seconds, row.Percent, row.Count)
		}
	}
	return b.String()
}

// Table4CSV emits app,ces,tp_actual,tp_ideal,ov_cont.
func Table4CSV(sweeps []*Sweep) string {
	var b strings.Builder
	b.WriteString("app,ces,tp_actual_s,tp_ideal_s,ov_cont_pct\n")
	for _, s := range sweeps {
		base := s.Base()
		for _, p := range s.Configs() {
			if p == 1 {
				continue
			}
			r := s.Results[p]
			cont, err := ContentionOverhead(base, r)
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "%s,%d,%.1f,%.1f,%.2f\n",
				s.App, p, r.Seconds(cont.TpActual), r.Seconds(cont.TpIdeal), cont.OvCont)
		}
	}
	return b.String()
}

// Table3CSV emits app,ces,cluster,par_concurr,avg_concurr,pf.
func Table3CSV(sweeps []*Sweep) string {
	var b strings.Builder
	b.WriteString("app,ces,cluster,par_concurr,avg_concurr,pf\n")
	for _, s := range sweeps {
		for _, p := range s.Configs() {
			if p == 1 {
				continue
			}
			r := s.Results[p]
			pcs := r.ParallelLoopConcurrency()
			for c, pc := range pcs {
				fmt.Fprintf(&b, "%s,%d,%d,%.3f,%.3f,%.3f\n",
					s.App, p, c, pc, r.Concurrency[c], r.ParallelFraction(c))
			}
		}
	}
	return b.String()
}
