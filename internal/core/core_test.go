package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// fake builds a synthetic Result without running a simulation, so the
// methodology can be unit-tested against hand-computed values.
func fake(cfg arch.Config, ct sim.Time) *Result {
	r := &Result{
		App:   "TEST",
		Cfg:   cfg,
		Scale: 1,
		CT:    ct,
	}
	for i := 0; i < cfg.CEs(); i++ {
		r.Accounts = append(r.Accounts, metrics.NewAccount(i))
	}
	r.SXWall = make([]sim.Duration, cfg.Clusters)
	r.MCWall = make([]sim.Duration, cfg.Clusters)
	r.Concurrency = make([]float64, cfg.Clusters)
	return r
}

func TestSpeedup(t *testing.T) {
	base := fake(arch.Cedar1, 1000)
	r := fake(arch.Cedar8, 250)
	if got := r.Speedup(base); got != 4 {
		t.Fatalf("speedup = %v, want 4", got)
	}
}

func TestSecondsScaling(t *testing.T) {
	r := fake(arch.Cedar1, arch.CyclesPerSecond) // 1 simulated second
	r.Scale = 613
	if got := r.CTSeconds(); math.Abs(got-613) > 1e-9 {
		t.Fatalf("scaled seconds = %v, want 613", got)
	}
}

func TestParallelFraction(t *testing.T) {
	r := fake(arch.Cedar32, 1000)
	r.SXWall[0] = 600
	r.MCWall[0] = 100
	r.SXWall[1] = 500
	if got := r.ParallelFraction(0); got != 0.7 {
		t.Fatalf("main pf = %v, want 0.7 (sx+mc)", got)
	}
	if got := r.ParallelFraction(1); got != 0.5 {
		t.Fatalf("helper pf = %v, want 0.5 (sx only)", got)
	}
}

func TestParallelLoopConcurrencyEquation(t *testing.T) {
	// Paper equation: (1-pf) + pf*pc = avg  =>  pc = (avg-1+pf)/pf.
	r := fake(arch.Cedar32, 1000)
	r.SXWall[0] = 800 // pf = 0.8
	r.Concurrency[0] = 6.0
	pc := r.ParallelLoopConcurrency()
	want := (6.0 - 1 + 0.8) / 0.8 // = 7.25
	if math.Abs(pc[0]-want) > 1e-9 {
		t.Fatalf("pc = %v, want %v", pc[0], want)
	}
}

func TestParallelLoopConcurrencyClamped(t *testing.T) {
	r := fake(arch.Cedar32, 1000)
	r.SXWall[0] = 100 // pf = 0.1
	r.Concurrency[0] = 7.9
	pc := r.ParallelLoopConcurrency()
	if pc[0] > 8 {
		t.Fatalf("pc = %v exceeds CEs/cluster", pc[0])
	}
	r2 := fake(arch.Cedar32, 1000)
	r2.SXWall[0] = 500
	r2.Concurrency[0] = 0.2 // nonsense low concurrency
	if pc := r2.ParallelLoopConcurrency(); pc[0] < 1 {
		t.Fatalf("pc = %v below 1", pc[0])
	}
}

func TestContentionSingleCluster(t *testing.T) {
	// T_p_ideal = (T1_mc + T1_sx) / par_concurr on <= 8 processors.
	base := fake(arch.Cedar1, 1000)
	base.SXWall[0] = 700
	base.MCWall[0] = 100

	r := fake(arch.Cedar8, 300)
	r.SXWall[0] = 200
	r.MCWall[0] = 30
	r.Concurrency[0] = 0.23333333333333334*8 + 0 // engineered below
	// pf = 230/300; choose avg so pc = 4 exactly:
	pf := 230.0 / 300.0
	r.Concurrency[0] = (1 - pf) + pf*4

	cont, err := ContentionOverhead(base, r)
	if err != nil {
		t.Fatal(err)
	}
	if cont.TpActual != 230 {
		t.Fatalf("Tp_actual = %d, want 230", cont.TpActual)
	}
	if want := sim.Duration(800 / 4); cont.TpIdeal != want {
		t.Fatalf("Tp_ideal = %d, want %d", cont.TpIdeal, want)
	}
	wantOv := (230.0 - 200.0) / 300.0 * 100
	if math.Abs(cont.OvCont-wantOv) > 1e-9 {
		t.Fatalf("Ov = %v, want %v", cont.OvCont, wantOv)
	}
}

func TestContentionMultiCluster(t *testing.T) {
	// T_p_ideal = T1_mc/pc_main + T1_sx/pc_total on multi-cluster.
	base := fake(arch.Cedar1, 1000)
	base.SXWall[0] = 800
	base.MCWall[0] = 80

	r := fake(arch.Cedar16, 200)
	r.SXWall[0] = 100
	r.MCWall[0] = 20
	r.SXWall[1] = 90
	// Engineer pc = 4 on both clusters.
	pf0 := 120.0 / 200.0
	pf1 := 90.0 / 200.0
	r.Concurrency[0] = (1 - pf0) + pf0*4
	r.Concurrency[1] = (1 - pf1) + pf1*4

	cont, err := ContentionOverhead(base, r)
	if err != nil {
		t.Fatal(err)
	}
	want := 80.0/4 + 800.0/8 // mc over main pc, sx over total pc
	if math.Abs(float64(cont.TpIdeal)-want) > 1.0 {
		t.Fatalf("Tp_ideal = %d, want %v", cont.TpIdeal, want)
	}
}

func TestContentionRequires1PBase(t *testing.T) {
	base := fake(arch.Cedar8, 1000)
	r := fake(arch.Cedar32, 100)
	if _, err := ContentionOverhead(base, r); err == nil {
		t.Fatal("accepted a non-1p base")
	}
	base2 := fake(arch.Cedar1, 1000)
	r2 := fake(arch.Cedar32, 100)
	r2.App = "OTHER"
	if _, err := ContentionOverhead(base2, r2); err == nil {
		t.Fatal("accepted mismatched apps")
	}
}

func TestTaskBreakdownFolding(t *testing.T) {
	r := fake(arch.Cedar16, 1000)
	lead := r.Accounts[0]
	lead.Add(metrics.CatSerial, 100)
	lead.Add(metrics.CatLoopIter, 300)
	lead.Add(metrics.CatGMStall, 50)
	lead.Add(metrics.CatCacheStall, 50)
	lead.Add(metrics.CatBarrierWait, 100)
	lead.Add(metrics.CatHelperWait, 0)
	lead.Add(metrics.CatLoopSetup, 10)
	lead.Add(metrics.CatPickIter, 40)

	tb := r.Task(0)
	if !tb.IsMain {
		t.Fatal("cluster 0 not main")
	}
	if tb.Serial != 0.1 {
		t.Fatalf("serial = %v", tb.Serial)
	}
	// Stalls fold into iteration execution.
	if math.Abs(tb.Iter-0.4) > 1e-9 {
		t.Fatalf("iter = %v, want 0.4", tb.Iter)
	}
	if got := tb.OverheadFraction(); math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("overhead = %v, want 0.15", got)
	}

	helper := r.Task(1)
	if helper.IsMain {
		t.Fatal("cluster 1 marked main")
	}
}

func TestOSDetailAveragesPerCE(t *testing.T) {
	r := fake(arch.Cedar32, 1000)
	r.OS.Add(metrics.OSCpi, 3200) // 100 cycles per CE
	rows := r.OSDetail()
	if rows[metrics.OSCpi].Percent != 10 {
		t.Fatalf("cpi percent = %v, want 10 (100/1000)", rows[metrics.OSCpi].Percent)
	}
	if rows[metrics.OSCpi].Count != 1 {
		t.Fatalf("cpi count = %d", rows[metrics.OSCpi].Count)
	}
}

func TestOSShare(t *testing.T) {
	r := fake(arch.Cedar4, 1000)
	for _, a := range r.Accounts {
		a.Add(metrics.CatOSSystem, 100)
		a.Add(metrics.CatOSInterrupt, 50)
		a.Add(metrics.CatOSSpin, 10)
	}
	if got := r.OSShare(); math.Abs(got-0.16) > 1e-9 {
		t.Fatalf("OS share = %v, want 0.16", got)
	}
}

func TestQuickEquationInverts(t *testing.T) {
	// For any pf in (0,1] and pc in [1,8], plugging avg back through
	// ParallelLoopConcurrency recovers pc.
	f := func(pfRaw, pcRaw uint8) bool {
		pf := float64(pfRaw%100+1) / 100
		pc := 1 + float64(pcRaw%71)/10 // [1, 8]
		r := fake(arch.Cedar32, 1000)
		r.SXWall[0] = sim.Duration(pf * 1000)
		realPf := r.ParallelFraction(0)
		r.Concurrency[0] = (1 - realPf) + realPf*pc
		got := r.ParallelLoopConcurrency()[0]
		return math.Abs(got-pc) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOvContSign(t *testing.T) {
	// Whenever actual parallel time exceeds the ideal, Ov_cont is
	// positive, and vice versa.
	f := func(actRaw, idealRaw uint16) bool {
		base := fake(arch.Cedar1, 100_000)
		base.SXWall[0] = sim.Duration(idealRaw) * 4 // T1 = 4*ideal target
		r := fake(arch.Cedar4, 50_000)
		r.SXWall[0] = sim.Duration(actRaw)
		pf := r.ParallelFraction(0)
		if pf == 0 {
			return true
		}
		r.Concurrency[0] = (1 - pf) + pf*4 // pc = 4 exactly
		cont, err := ContentionOverhead(base, r)
		if err != nil {
			return false
		}
		diff := int64(actRaw) - int64(idealRaw)
		switch {
		case diff > 0:
			return cont.OvCont > 0
		case diff < 0:
			return cont.OvCont < 0
		default:
			return math.Abs(cont.OvCont) < 1e-9
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSweepHelpers(t *testing.T) {
	s := &Sweep{App: "TEST", Results: map[int]*Result{
		32: fake(arch.Cedar32, 100),
		1:  fake(arch.Cedar1, 1000),
		8:  fake(arch.Cedar8, 300),
	}}
	cfgs := s.Configs()
	if len(cfgs) != 3 || cfgs[0] != 1 || cfgs[2] != 32 {
		t.Fatalf("configs = %v", cfgs)
	}
	if s.Base().Cfg.CEs() != 1 {
		t.Fatal("base is not the 1-processor run")
	}
}

func TestFormattersDoNotPanic(t *testing.T) {
	mk := func(cfg arch.Config, ct sim.Time) *Result {
		r := fake(cfg, ct)
		r.SXWall[0] = ct / 2
		r.Concurrency[0] = 3
		return r
	}
	s := &Sweep{App: "TEST", Results: map[int]*Result{
		1:  mk(arch.Cedar1, 1000),
		4:  mk(arch.Cedar4, 400),
		8:  mk(arch.Cedar8, 250),
		16: mk(arch.Cedar16, 160),
		32: mk(arch.Cedar32, 110),
	}}
	sweeps := []*Sweep{s}
	for _, out := range []string{
		FormatTable1(sweeps),
		FormatFigure3(s),
		FormatTable2([]*Result{s.Results[32]}),
		FormatUserTime(s),
		FormatTable3(sweeps),
		FormatTable4(sweeps),
	} {
		if out == "" {
			t.Fatal("empty formatter output")
		}
	}
}
