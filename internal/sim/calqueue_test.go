package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestCalendarTierMatchesReferenceOrder is the equivalence property for
// the two-tier pending queue: over randomized schedule/cancel workloads
// — including events landing exactly on the calHorizon bucket boundary,
// same-cycle ties, far-future events that the clock later catches up
// with, and runs long enough to wrap the bucket ring many times — the
// kernel must dispatch exactly the events a single reference queue
// would, in exactly its (time, insertion-sequence) order.
//
// The reference model is deliberately trivial: every scheduled event is
// recorded with its fire time and a monotonically increasing insertion
// index (the kernel assigns seq in the same order Schedule is called),
// cancellations mark it dead, and the expected dispatch order is the
// surviving events stable-sorted by fire time. Any routing mistake in
// the tiered queue — a bucket aliasing a wrapped future time, a cursor
// scanning a stale bucket, a heap/calendar head comparison dropping the
// seq tiebreak — shows up as an order difference.
func TestCalendarTierMatchesReferenceOrder(t *testing.T) {
	const trials = 25
	const maxEvents = 4000
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		k := NewKernel(1)

		type refEvent struct {
			at       Time
			id       int
			canceled bool
		}
		var ref []refEvent
		var handles []Event
		var got []int

		// Delta menu biased toward the interesting spots: same cycle,
		// dense near-horizon band, the exact calHorizon boundary and its
		// neighbors (calendar vs heap routing), and far-future times that
		// enter the window only as the clock advances (including exact
		// multiples of the horizon, which alias the same bucket index).
		deltas := []Duration{
			0, 1, 2, 7,
			calHorizon - 1, calHorizon, calHorizon + 1,
			2 * calHorizon, 3*calHorizon + 5,
			Duration(rng.Intn(calHorizon)),
			Duration(calHorizon + rng.Intn(4*calHorizon)),
		}

		var schedule func(at Time)
		schedule = func(at Time) {
			id := len(ref)
			ref = append(ref, refEvent{at: at, id: id})
			ev := k.Schedule(at, func() {
				got = append(got, id)
				// Fired events mutate the queue mid-run: schedule more
				// (moving the window across bucket-ring wraps) and
				// cancel random pending events in either tier.
				for n := rng.Intn(3); n > 0 && len(ref) < maxEvents; n-- {
					schedule(k.Now() + deltas[rng.Intn(len(deltas))])
				}
				if rng.Intn(3) == 0 && len(handles) > 0 {
					victim := rng.Intn(len(handles))
					if handles[victim].Cancel() {
						ref[victim].canceled = true
					}
				}
			})
			handles = append(handles, ev)
		}

		// Seed the run from outside, all relative to time zero.
		for i := 0; i < 40; i++ {
			schedule(Time(deltas[rng.Intn(len(deltas))]))
		}
		if _, err := k.RunAllErr(); err != nil {
			t.Fatalf("trial %d: run: %v", trial, err)
		}

		// Reference dispatch order: survivors stable-sorted by time.
		// Stability preserves insertion order, which is the kernel's seq
		// tiebreak because this test is the only scheduler.
		var want []int
		surviving := make([]refEvent, 0, len(ref))
		for _, e := range ref {
			if !e.canceled {
				surviving = append(surviving, e)
			}
		}
		sort.SliceStable(surviving, func(i, j int) bool {
			return surviving[i].at < surviving[j].at
		})
		for _, e := range surviving {
			want = append(want, e.id)
		}

		if len(got) != len(want) {
			t.Fatalf("trial %d: dispatched %d events, reference says %d",
				trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: dispatch %d fired event %d (t=%d), reference says %d (t=%d)",
					trial, i, got[i], ref[got[i]].at, want[i], ref[want[i]].at)
			}
		}
		if !k.Idle() {
			t.Fatalf("trial %d: events left pending after RunAll", trial)
		}
	}
}

// TestCalendarTierCancelPendingAcrossTiers pins Event semantics across
// tier migration scenarios: a handle to a far-future (heap) event and a
// handle to a near-horizon (calendar) event both report Pending, both
// cancel exactly once, and a stale handle stays a no-op after the
// kernel recycles the node for a new event in the other tier.
func TestCalendarTierCancelPendingAcrossTiers(t *testing.T) {
	k := NewKernel(1)
	near := k.Schedule(3, func() { t.Fatal("near fired") })
	far := k.Schedule(calHorizon*5, func() { t.Fatal("far fired") })
	if !near.Pending() || !far.Pending() {
		t.Fatal("fresh events not pending")
	}
	if !near.Cancel() || !far.Cancel() {
		t.Fatal("first cancel did not take effect")
	}
	if near.Cancel() || far.Cancel() || near.Pending() || far.Pending() {
		t.Fatal("canceled events still cancelable or pending")
	}
	// The recycled nodes get reused (LIFO free list): new events in the
	// opposite tier must not revive the stale handles.
	k.Schedule(1, func() {})
	k.Schedule(calHorizon*2, func() {})
	if near.Pending() || far.Pending() {
		t.Fatal("stale handles revived by node reuse")
	}
	if n := k.RunAll(); n != 2 {
		t.Fatalf("fired %d events, want 2", n)
	}
}
