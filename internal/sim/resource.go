package sim

import "fmt"

// Resource is a FCFS mutual-exclusion / counting resource. Processes
// that Acquire beyond capacity block in arrival order and are granted
// the resource as units are Released. It models locks (capacity 1) and
// multi-server stations.
//
// Acquire/Release must be called from inside a process.
type Resource struct {
	k        *Kernel
	name     string
	capacity int
	inUse    int
	waiters  []*Proc

	// Statistics.
	acquires   uint64
	contended  uint64   // acquires that had to wait
	waitTotal  Duration // total time spent waiting across all acquires
	maxWaiters int
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic(fmt.Sprintf("sim: resource %q capacity %d < 1", name, capacity))
	}
	return &Resource{k: k, name: name, capacity: capacity}
}

// NewLock creates a capacity-1 resource.
func NewLock(k *Kernel, name string) *Resource { return NewResource(k, name, 1) }

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes currently waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquires returns the total number of completed Acquire calls.
func (r *Resource) Acquires() uint64 { return r.acquires }

// Contended returns how many Acquire calls had to wait.
func (r *Resource) Contended() uint64 { return r.contended }

// WaitTotal returns the total virtual time processes spent waiting to
// acquire the resource.
func (r *Resource) WaitTotal() Duration { return r.waitTotal }

// MaxWaiters returns the high-water mark of the wait queue.
func (r *Resource) MaxWaiters() int { return r.maxWaiters }

// Acquire takes one unit, blocking FCFS if none is free. It returns
// the time spent waiting.
func (r *Resource) Acquire(p *Proc) Duration {
	p.checkRunning("Resource.Acquire")
	r.acquires++
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.inUse++
		return 0
	}
	r.contended++
	start := r.k.now
	r.waiters = append(r.waiters, p)
	if len(r.waiters) > r.maxWaiters {
		r.maxWaiters = len(r.waiters)
	}
	p.blockOn("lock:" + r.name)
	// We were woken by Release, which already transferred the unit to
	// us (inUse stays incremented on handoff).
	waited := r.k.now - start
	r.waitTotal += waited
	return waited
}

// TryAcquire takes one unit without blocking. It reports whether the
// unit was obtained.
func (r *Resource) TryAcquire(p *Proc) bool {
	p.checkRunning("Resource.TryAcquire")
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.acquires++
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit. If processes are waiting, the unit is
// handed directly to the head of the queue, which resumes at the
// current virtual time. Waiters aborted while queued are skipped: the
// unit passes to the first live waiter, or back to the free pool.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic(fmt.Sprintf("sim: resource %q released below zero", r.name))
	}
	for len(r.waiters) > 0 {
		head := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		if head.state != stateBlocked {
			continue // aborted/dead waiter: drop and try the next
		}
		// Hand off the unit: inUse is unchanged (one out, one in).
		r.k.wake(head)
		return
	}
	r.inUse--
}

// Use acquires the resource, holds for d cycles of service, and
// releases. It returns the queueing delay endured (not counting d).
func (r *Resource) Use(p *Proc, d Duration) Duration {
	waited := r.Acquire(p)
	p.Hold(d)
	r.Release()
	return waited
}
