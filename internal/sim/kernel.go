// Package sim implements a deterministic discrete-event simulation
// kernel in virtual time.
//
// The kernel drives coroutine processes (see Proc) one at a time, so a
// simulation is fully deterministic even though each process runs on
// its own goroutine: exactly one goroutine is ever runnable, and event
// ordering is total (time, then insertion sequence).
//
// Virtual time is counted in integer cycles (Time). The kernel makes
// no reference to wall-clock time, so measurements taken inside a
// simulation are immune to Go runtime effects (GC pauses, scheduler
// jitter) — the property that makes this substrate suitable for
// reproducing a hardware measurement study.
//
// The event core is allocation-free in the steady state: event nodes
// live in a kernel-owned free list and are recycled the moment they
// fire or are canceled, the pending queue is tiered (see below), and
// process wake-ups carry the *Proc directly instead of a per-wake
// closure. Schedule/Hold in a warmed-up simulation therefore performs
// zero heap allocations per operation.
//
// The pending queue has two tiers. Events within a near-horizon window
// of the clock — the dense per-cycle band produced by network port and
// memory module reservations — go into a calendar of fixed-width
// (one-cycle) time buckets with O(1) insert and extract: because the
// window is exactly as wide as the bucket ring, every live bucket holds
// a single fire time, and because insertion sequence numbers grow
// monotonically, appending to a bucket's intrusive list keeps it sorted
// by (time, seq) for free. Far-future events (watchdogs, samplers,
// long holds behind a backlogged port) go into an inlined typed 4-ary
// min-heap (no container/heap interface{} boxing). Dispatch compares
// the heads of both tiers, preserving the exact (time, seq) total
// order of a single queue.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in cycles.
type Time int64

// Duration is a span of virtual time, in cycles. It is the same
// underlying type as Time; the alias exists purely for documentation.
type Duration = Time

// Forever is a time later than any event a simulation will schedule.
const Forever Time = 1<<62 - 1

// calHorizon is the width of the calendar tier's near-horizon window
// in cycles, and equally the number of one-cycle buckets in its ring.
// Must be a power of two. Events scheduled less than calHorizon cycles
// ahead of the clock take the O(1) bucket path; everything further out
// takes the heap.
const calHorizon = 512

// calMask maps a fire time to its bucket index.
const calMask = calHorizon - 1

// Sentinel values of eventNode.pos that mean "not in the heap".
const (
	posFree     = -1 // not queued anywhere (free, fired, or canceled)
	posCalendar = -2 // queued in a calendar bucket
)

// eventNode is a pooled entry of the kernel's pending-event queue. A
// node belongs to its kernel for the kernel's whole lifetime: when the
// event fires or is canceled the node goes back on the free list and
// its generation is bumped, which invalidates every outstanding Event
// handle that still points at it.
type eventNode struct {
	k    *Kernel
	at   Time
	seq  uint64
	gen  uint64
	pos  int32  // heap index, or posCalendar / posFree
	proc *Proc  // wake target (the closure-free hot path), or nil
	fn   func() // callback when proc is nil

	// Intrusive doubly-linked list pointers for the calendar bucket the
	// node sits in while pos == posCalendar.
	next, prev *eventNode
}

// calBucket is one slot of the calendar ring: a FIFO of events sharing
// a single fire time, linked through the nodes themselves.
type calBucket struct {
	head, tail *eventNode
}

// Event is a cancelable handle to a scheduled callback. It is a value
// (returning one performs no allocation) stamped with the node's
// generation: once the event has fired or been canceled the handle
// goes stale and every operation on it is a no-op, even if the kernel
// has recycled the underlying node for a new event. The zero Event is
// valid and permanently stale.
type Event struct {
	n   *eventNode
	gen uint64
	at  Time
}

// Time returns the virtual time at which the event fires (or fired, or
// would have fired had it not been canceled).
func (e Event) Time() Time { return e.at }

// Pending reports whether the event is still queued to fire.
func (e Event) Pending() bool {
	return e.n != nil && e.n.gen == e.gen && e.n.pos != posFree
}

// Cancel prevents the event from firing. The event is removed from the
// pending queue immediately — a canceled far-future event costs
// nothing until its fire time — and its node is recycled. Canceling an
// event that has already fired or was already canceled is a no-op. It
// reports whether the cancellation took effect.
func (e Event) Cancel() bool {
	n := e.n
	if n == nil || n.gen != e.gen || n.pos == posFree {
		return false
	}
	k := n.k
	if n.pos == posCalendar {
		k.calRemove(n)
	} else {
		k.heapRemove(int(n.pos))
	}
	k.recycle(n)
	return true
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now  Time
	seq  uint64
	heap []*eventNode // far-future tier: 4-ary min-heap ordered by (at, seq)
	free []*eventNode // recycled nodes, ready for reuse

	// Near-horizon tier: a ring of one-cycle buckets covering
	// [now, now+calHorizon). calCount is the number of events in the
	// ring; calCursor is a lower bound on the earliest live bucket time
	// (no live calendar event fires before it).
	cal       [calHorizon]calBucket
	calCount  int
	calCursor Time

	running *Proc
	yielded chan struct{}
	procs   []*Proc
	live    int // procs spawned and not yet finished
	fatal   error
	rng     *rand.Rand

	dispatched uint64 // events fired, for introspection/tests

	// Watchdog / budget state (see SetWatchdog, SetMaxCycles).
	maxCycles     Time
	watchdogEvery Duration
	watchdogArmed bool
	lastProgress  Time // last time any process actually executed
	err           error

	// External interrupt check (see SetInterrupt).
	interrupt      func() error
	interruptEvery uint64
}

// NewKernel returns a kernel with its virtual clock at zero and a
// deterministic random source seeded with seed.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yielded: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. Models must
// use this source (never the global one) so runs are reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// EventsFired returns the number of events dispatched so far.
func (k *Kernel) EventsFired() uint64 { return k.dispatched }

// PendingEvents returns the number of events currently queued (both
// tiers). Since canceled events are removed eagerly, every pending
// event will fire.
func (k *Kernel) PendingEvents() int { return len(k.heap) + k.calCount }

// alloc takes a node from the free list, or mints one on first use.
func (k *Kernel) alloc() *eventNode {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &eventNode{k: k, pos: posFree}
}

// recycle invalidates every outstanding handle to the node and returns
// it to the free list.
func (k *Kernel) recycle(e *eventNode) {
	e.gen++
	e.fn = nil
	e.proc = nil
	e.pos = posFree
	k.free = append(k.free, e)
}

// Schedule registers fn to run at absolute virtual time at. Scheduling
// in the past is an error and panics: the kernel's clock never runs
// backwards.
func (k *Kernel) Schedule(at Time, fn func()) Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, k.now))
	}
	e := k.alloc()
	e.at, e.seq, e.fn = at, k.seq, fn
	k.seq++
	k.push(e)
	return Event{n: e, gen: e.gen, at: at}
}

// scheduleProc registers a wake-up for p at absolute time at. This is
// the closure-free hot path behind Hold, Yield, Spawn, and wake: the
// node carries the *Proc directly and the dispatch loop resumes it
// without any intermediate func value.
func (k *Kernel) scheduleProc(at Time, p *Proc) {
	e := k.alloc()
	e.at, e.seq, e.proc = at, k.seq, p
	k.seq++
	k.push(e)
}

// push routes a freshly-stamped node to its tier: the calendar ring
// when it fires within the near-horizon window, the heap otherwise.
func (k *Kernel) push(e *eventNode) {
	if e.at-k.now < calHorizon {
		k.calPush(e)
	} else {
		k.heapPush(e)
	}
}

// calPush appends the node to its time's bucket. Every live calendar
// event fires within [now, now+calHorizon), so bucket index collisions
// between different fire times are impossible (they would be a full
// window apart), and appending keeps the bucket sorted by seq because
// sequence numbers only grow.
func (k *Kernel) calPush(e *eventNode) {
	b := &k.cal[int(e.at)&calMask]
	e.prev = b.tail
	e.next = nil
	if b.tail != nil {
		b.tail.next = e
	} else {
		b.head = e
	}
	b.tail = e
	e.pos = posCalendar
	if k.calCount == 0 || e.at < k.calCursor {
		k.calCursor = e.at
	}
	k.calCount++
}

// calRemove unlinks the node from its bucket (cancel, or dispatch of
// the bucket head).
func (k *Kernel) calRemove(e *eventNode) {
	b := &k.cal[int(e.at)&calMask]
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.next, e.prev = nil, nil
	e.pos = posFree
	k.calCount--
}

// calHead returns the earliest calendar event without removing it, or
// nil when the ring is empty. The cursor sweep is amortized O(1): the
// cursor only moves forward over a bucket it found empty, and an
// insert only pulls it back to a time that is guaranteed occupied.
func (k *Kernel) calHead() *eventNode {
	if k.calCount == 0 {
		return nil
	}
	if k.calCursor < k.now {
		// The clock advanced past the cursor (a heap event fired in a
		// calendar-quiet stretch). Buckets behind now are necessarily
		// empty, and scanning them could alias wrapped future times.
		k.calCursor = k.now
	}
	for {
		if e := k.cal[int(k.calCursor)&calMask].head; e != nil {
			return e
		}
		k.calCursor++
	}
}

// peek returns the earliest pending event across both tiers without
// removing it, preserving the (time, seq) total order a single queue
// would give, or nil when nothing is pending.
func (k *Kernel) peek() *eventNode {
	c := k.calHead()
	if len(k.heap) == 0 {
		return c
	}
	h := k.heap[0]
	if c == nil || less(h, c) {
		return h
	}
	return c
}

// pop removes the given event — necessarily a tier head returned by
// peek — from its tier.
func (k *Kernel) pop(e *eventNode) {
	if e.pos == posCalendar {
		k.calRemove(e)
	} else {
		k.heapRemove(int(e.pos))
	}
}

// After registers fn to run d cycles from now.
func (k *Kernel) After(d Duration, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return k.Schedule(k.now+d, fn)
}

// less orders the heap by (time, insertion sequence) — the total event
// order that makes simulations deterministic.
func less(a, b *eventNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush inserts a node into the 4-ary min-heap.
func (k *Kernel) heapPush(e *eventNode) {
	k.heap = append(k.heap, e)
	k.siftUp(len(k.heap) - 1)
}

// heapRemove deletes the node at index i, preserving the heap order.
func (k *Kernel) heapRemove(i int) *eventNode {
	h := k.heap
	n := h[i]
	last := len(h) - 1
	moved := h[last]
	h[last] = nil
	k.heap = h[:last]
	if i < last {
		k.heap[i] = moved
		moved.pos = int32(i)
		k.siftDown(i)
		if moved.pos == int32(i) {
			k.siftUp(i)
		}
	}
	n.pos = -1
	return n
}

func (k *Kernel) siftUp(i int) {
	h := k.heap
	e := h[i]
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if !less(e, p) {
			break
		}
		h[i] = p
		p.pos = int32(i)
		i = parent
	}
	h[i] = e
	e.pos = int32(i)
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	e := h[i]
	size := len(h)
	for {
		first := i<<2 + 1
		if first >= size {
			break
		}
		best := first
		end := first + 4
		if end > size {
			end = size
		}
		for c := first + 1; c < end; c++ {
			if less(h[c], h[best]) {
				best = c
			}
		}
		if !less(h[best], e) {
			break
		}
		h[i] = h[best]
		h[i].pos = int32(i)
		i = best
	}
	h[i] = e
	e.pos = int32(i)
}

// Run processes events in time order until the event queue is empty or
// the next event is later than until. It returns the number of events
// fired. Processes left blocked on conditions or resources simply stay
// blocked; use LiveProcs/BlockedProcs to detect them, or Shutdown to
// terminate them. Run panics on a process panic or a watchdog/budget
// stop; RunErr returns those as errors instead.
func (k *Kernel) Run(until Time) uint64 {
	n, err := k.RunErr(until)
	if err != nil {
		panic(err)
	}
	return n
}

// RunErr is Run with error returns instead of panics: a process panic,
// a watchdog-detected deadlock (*DeadlockError), or an exhausted cycle
// budget (*CycleBudgetError) stop the run and are returned. The kernel
// is left at the stopping time; Shutdown can then reclaim any
// remaining processes.
func (k *Kernel) RunErr(until Time) (uint64, error) {
	var fired uint64
	for {
		next := k.peek()
		if next == nil {
			break
		}
		if k.interrupt != nil && k.dispatched%k.interruptEvery == 0 {
			if cause := k.interrupt(); cause != nil {
				return fired, &CanceledError{At: k.now, Cause: cause}
			}
		}
		if next.at > until {
			break
		}
		if k.maxCycles > 0 && next.at > k.maxCycles {
			return fired, &CycleBudgetError{Budget: k.maxCycles, Now: k.now, Live: k.live}
		}
		if next.at < k.now {
			panic("sim: event queue time went backwards")
		}
		k.pop(next)
		k.now = next.at
		// Recycle before dispatch: the node is free for reuse by
		// anything the callback schedules, and the generation bump
		// makes the fired event's handles stale exactly as firing
		// used to.
		p, fn := next.proc, next.fn
		k.recycle(next)
		if p != nil {
			k.resume(p)
		} else {
			fn()
		}
		fired++
		k.dispatched++
		if k.fatal != nil {
			err := k.fatal
			k.fatal = nil
			return fired, err
		}
		if k.err != nil {
			err := k.err
			k.err = nil
			return fired, err
		}
	}
	return fired, nil
}

// RunAll runs until no events remain.
func (k *Kernel) RunAll() uint64 { return k.Run(Forever) }

// RunAllErr runs until no events remain, returning errors instead of
// panicking. Unlike RunAll, it additionally diagnoses the terminal
// deadlock: an empty event queue with live processes means those
// processes can never run again, so it returns a *DeadlockError naming
// them rather than a silently truncated result.
func (k *Kernel) RunAllErr() (uint64, error) {
	n, err := k.RunErr(Forever)
	if err == nil && k.live > 0 {
		err = k.deadlockError()
	}
	return n, err
}

// SetMaxCycles sets a virtual-time budget: RunErr stops with
// ErrCycleBudget before dispatching any event later than max. Zero
// disables the budget.
func (k *Kernel) SetMaxCycles(max Time) { k.maxCycles = max }

// SetInterrupt installs an external stop check: RunErr calls check
// before dispatch whenever the dispatched-event count is a multiple of
// every (so roughly once per `every` events — cheap enough to leave
// enabled on the hot path), and a non-nil return stops the run with a
// *CanceledError wrapping it. This is how wall-clock concerns —
// context cancellation, per-job deadlines in a serving process — reach
// a kernel that otherwise only knows virtual time. The check never
// fires mid-event, so a run that is not interrupted is byte-identical
// to one with no check installed. A nil check disables interruption;
// every <= 0 uses a default of 1024.
func (k *Kernel) SetInterrupt(every uint64, check func() error) {
	if every <= 0 {
		every = 1024
	}
	k.interrupt = check
	k.interruptEvery = every
}

// SetWatchdog enables deadlock detection with the given check
// interval: if a full interval passes during which no process executes
// and every live process is blocked (no wake event pending for any of
// them), the run stops with a *DeadlockError. Long Holds do not trip
// the watchdog — a held process has a wake event pending and is not
// blocked. A non-positive interval disables the watchdog.
func (k *Kernel) SetWatchdog(every Duration) {
	k.watchdogEvery = every
	k.armWatchdog()
}

func (k *Kernel) armWatchdog() {
	if k.watchdogEvery <= 0 || k.watchdogArmed {
		return
	}
	k.watchdogArmed = true
	k.After(k.watchdogEvery, func() {
		k.watchdogArmed = false
		if k.live > 0 && k.allLiveBlocked() && k.now-k.lastProgress >= k.watchdogEvery {
			k.err = k.deadlockError()
			return
		}
		if k.live > 0 {
			k.armWatchdog()
		}
	})
}

// allLiveBlocked reports whether every live process is blocked with no
// wake pending (states new/scheduled/running all count as runnable).
func (k *Kernel) allLiveBlocked() bool {
	if k.live == 0 {
		return false
	}
	for _, p := range k.procs {
		switch p.state {
		case stateNew, stateScheduled, stateRunning:
			return false
		}
	}
	return true
}

// deadlockError builds the diagnostic from the current blocked set.
func (k *Kernel) deadlockError() *DeadlockError {
	e := &DeadlockError{At: k.now, Live: k.live}
	for _, p := range k.BlockedProcs() {
		e.Blocked = append(e.Blocked, BlockedProc{Name: p.Name(), WaitingOn: p.WaitingOn()})
	}
	return e
}

// Idle reports whether no events are pending in either tier. Canceled
// events leave the queue immediately, so an idle kernel holds no dead
// entries.
func (k *Kernel) Idle() bool { return len(k.heap) == 0 && k.calCount == 0 }

// LiveProcs returns the number of spawned processes that have not yet
// finished.
func (k *Kernel) LiveProcs() int { return k.live }

// BlockedProcs returns the processes currently blocked (waiting on a
// condition or resource, with no wake event scheduled).
func (k *Kernel) BlockedProcs() []*Proc {
	var out []*Proc
	for _, p := range k.procs {
		if p.state == stateBlocked {
			out = append(out, p)
		}
	}
	return out
}

// Shutdown aborts every process that is still alive. Each blocked or
// scheduled process is resumed with its aborted flag set; the blocking
// primitive it was sleeping in panics with ErrAborted, which the
// process wrapper swallows. After Shutdown returns, no process
// goroutines remain. Shutdown must not be called from inside a
// process.
func (k *Kernel) Shutdown() {
	if k.running != nil {
		panic("sim: Shutdown called from inside a process")
	}
	for _, p := range k.procs {
		if p.state == stateDone {
			continue
		}
		p.aborted = true
		if p.state == stateBlocked || p.state == stateScheduled || p.state == stateNew {
			k.resume(p)
		}
	}
	k.procs = k.procs[:0]
}

// wake schedules p to resume at the current time. It is the primitive
// used by resources and conditions to hand control back to a blocked
// process.
func (k *Kernel) wake(p *Proc) {
	if p.state != stateBlocked {
		panic("sim: wake of non-blocked proc " + p.name)
	}
	p.state = stateScheduled
	k.scheduleProc(k.now, p)
}

// resume transfers control to p and waits for it to yield back.
func (k *Kernel) resume(p *Proc) {
	if p.state == stateDone {
		return
	}
	k.lastProgress = k.now
	prev := k.running
	k.running = p
	p.state = stateRunning
	p.resume <- struct{}{}
	<-k.yielded
	k.running = prev
}

// Abort terminates a single process with fail-stop semantics: the
// process unwinds with ErrAborted from whatever primitive it is in
// (its deferred cleanups run), exactly as under Shutdown, but the rest
// of the simulation keeps running. Aborting the currently running
// process panics ErrAborted directly; aborting a finished process is a
// no-op.
func (k *Kernel) Abort(p *Proc) {
	if p.state == stateDone || p.aborted {
		return
	}
	p.aborted = true
	switch p.state {
	case stateRunning:
		panic(ErrAborted)
	case stateBlocked:
		// Wake it now; yield() sees the aborted flag and panics
		// ErrAborted inside the primitive it was sleeping in.
		p.state = stateScheduled
		k.scheduleProc(k.now, p)
	}
	// stateNew / stateScheduled: a start or wake event is already
	// pending; the aborted flag is checked on resume.
}
