// Package sim implements a deterministic discrete-event simulation
// kernel in virtual time.
//
// The kernel drives coroutine processes (see Proc) one at a time, so a
// simulation is fully deterministic even though each process runs on
// its own goroutine: exactly one goroutine is ever runnable, and event
// ordering is total (time, then insertion sequence).
//
// Virtual time is counted in integer cycles (Time). The kernel makes
// no reference to wall-clock time, so measurements taken inside a
// simulation are immune to Go runtime effects (GC pauses, scheduler
// jitter) — the property that makes this substrate suitable for
// reproducing a hardware measurement study.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in cycles.
type Time int64

// Duration is a span of virtual time, in cycles. It is the same
// underlying type as Time; the alias exists purely for documentation.
type Duration = Time

// Forever is a time later than any event a simulation will schedule.
const Forever Time = 1<<62 - 1

// Event is a scheduled callback. It can be canceled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	fired    bool
}

// Time returns the virtual time at which the event fires (or would
// have fired, if canceled).
func (e *Event) Time() Time { return e.at }

// Cancel prevents the event from firing. Canceling an event that has
// already fired or was already canceled is a no-op. It reports whether
// the cancellation took effect.
func (e *Event) Cancel() bool {
	if e.fired || e.canceled {
		return false
	}
	e.canceled = true
	return true
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	running *Proc
	yielded chan struct{}
	procs   []*Proc
	live    int // procs spawned and not yet finished
	fatal   error
	rng     *rand.Rand

	dispatched uint64 // events fired, for introspection/tests
}

// NewKernel returns a kernel with its virtual clock at zero and a
// deterministic random source seeded with seed.
func NewKernel(seed int64) *Kernel {
	k := &Kernel{
		yielded: make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
	}
	heap.Init(&k.events)
	return k
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. Models must
// use this source (never the global one) so runs are reproducible.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// EventsFired returns the number of events dispatched so far.
func (k *Kernel) EventsFired() uint64 { return k.dispatched }

// Schedule registers fn to run at absolute virtual time at. Scheduling
// in the past is an error and panics: the kernel's clock never runs
// backwards.
func (k *Kernel) Schedule(at Time, fn func()) *Event {
	if at < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", at, k.now))
	}
	e := &Event{at: at, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// After registers fn to run d cycles from now.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return k.Schedule(k.now+d, fn)
}

// Run processes events in time order until the event queue is empty or
// the next event is later than until. It returns the number of events
// fired. Processes left blocked on conditions or resources simply stay
// blocked; use LiveProcs/BlockedProcs to detect them, or Shutdown to
// terminate them.
func (k *Kernel) Run(until Time) uint64 {
	var fired uint64
	for len(k.events) > 0 {
		next := k.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&k.events)
		if next.canceled {
			continue
		}
		if next.at < k.now {
			panic("sim: event queue time went backwards")
		}
		k.now = next.at
		next.fired = true
		next.fn()
		fired++
		k.dispatched++
		if k.fatal != nil {
			panic(k.fatal)
		}
	}
	return fired
}

// RunAll runs until no events remain.
func (k *Kernel) RunAll() uint64 { return k.Run(Forever) }

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool {
	for _, e := range k.events {
		if !e.canceled {
			return false
		}
	}
	return true
}

// LiveProcs returns the number of spawned processes that have not yet
// finished.
func (k *Kernel) LiveProcs() int { return k.live }

// BlockedProcs returns the processes currently blocked (waiting on a
// condition or resource, with no wake event scheduled).
func (k *Kernel) BlockedProcs() []*Proc {
	var out []*Proc
	for _, p := range k.procs {
		if p.state == stateBlocked {
			out = append(out, p)
		}
	}
	return out
}

// Shutdown aborts every process that is still alive. Each blocked or
// scheduled process is resumed with its aborted flag set; the blocking
// primitive it was sleeping in panics with ErrAborted, which the
// process wrapper swallows. After Shutdown returns, no process
// goroutines remain. Shutdown must not be called from inside a
// process.
func (k *Kernel) Shutdown() {
	if k.running != nil {
		panic("sim: Shutdown called from inside a process")
	}
	for _, p := range k.procs {
		if p.state == stateDone {
			continue
		}
		p.aborted = true
		if p.state == stateBlocked || p.state == stateScheduled || p.state == stateNew {
			k.resume(p)
		}
	}
	k.procs = k.procs[:0]
}

// wake schedules p to resume at the current time. It is the primitive
// used by resources and conditions to hand control back to a blocked
// process.
func (k *Kernel) wake(p *Proc) {
	if p.state != stateBlocked {
		panic("sim: wake of non-blocked proc " + p.name)
	}
	p.state = stateScheduled
	k.Schedule(k.now, func() { k.resume(p) })
}

// resume transfers control to p and waits for it to yield back.
func (k *Kernel) resume(p *Proc) {
	if p.state == stateDone {
		return
	}
	prev := k.running
	k.running = p
	p.state = stateRunning
	p.resume <- struct{}{}
	<-k.yielded
	k.running = prev
}
