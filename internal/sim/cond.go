package sim

// Cond is a condition variable for simulation processes. Unlike
// sync.Cond there is no associated lock: the simulation is
// single-threaded in virtual time, so checking a predicate and calling
// Wait is atomic by construction.
type Cond struct {
	k       *Kernel
	name    string
	waiters []*Proc

	signals uint64
}

// NewCond creates a condition variable.
func NewCond(k *Kernel, name string) *Cond {
	return &Cond{k: k, name: name}
}

// Name returns the condition's diagnostic name.
func (c *Cond) Name() string { return c.name }

// Waiters returns the number of processes currently waiting.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Signals returns the number of Signal/Broadcast wakeups delivered.
func (c *Cond) Signals() uint64 { return c.signals }

// Wait blocks the process until Signal or Broadcast wakes it. It
// returns the time spent waiting. As with any condition variable, the
// caller must re-check its predicate after waking.
func (c *Cond) Wait(p *Proc) Duration {
	p.checkRunning("Cond.Wait")
	start := c.k.now
	c.waiters = append(c.waiters, p)
	p.blockOn("cond:" + c.name)
	return c.k.now - start
}

// WaitTimeout blocks until a signal or until d cycles elapse,
// whichever is first. It returns the time waited and whether the wait
// timed out.
func (c *Cond) WaitTimeout(p *Proc, d Duration) (Duration, bool) {
	p.checkRunning("Cond.WaitTimeout")
	start := c.k.now
	c.waiters = append(c.waiters, p)
	timedOut := false
	ev := c.k.After(d, func() {
		// Only fires if we were not signaled first. A waiter that was
		// aborted in the meantime is removed without a wake (it is
		// already unwinding).
		for i, w := range c.waiters {
			if w == p {
				c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
				if p.state != stateBlocked {
					return
				}
				timedOut = true
				c.k.wake(p)
				return
			}
		}
	})
	p.blockOn("cond:" + c.name)
	if !timedOut {
		ev.Cancel()
	}
	return c.k.now - start, timedOut
}

// Signal wakes the longest-waiting process, if any. Waiters that were
// aborted while queued are skipped (they are already unwinding). It
// reports whether a process was woken.
func (c *Cond) Signal() bool {
	for len(c.waiters) > 0 {
		head := c.waiters[0]
		copy(c.waiters, c.waiters[1:])
		c.waiters = c.waiters[:len(c.waiters)-1]
		if head.state != stateBlocked {
			continue // aborted/dead waiter: drop and try the next
		}
		c.signals++
		c.k.wake(head)
		return true
	}
	return false
}

// Broadcast wakes every waiting process (skipping any aborted while
// queued). It returns the number woken.
func (c *Cond) Broadcast() int {
	n := 0
	for _, w := range c.waiters {
		if w.state != stateBlocked {
			continue
		}
		c.signals++
		c.k.wake(w)
		n++
	}
	c.waiters = c.waiters[:0]
	return n
}
