package sim

import (
	"errors"
	"fmt"
	"strings"
)

// ErrDeadlock is the sentinel for simulation deadlocks: the kernel
// found live processes that can never run again (event queue exhausted
// with processes still blocked, or the watchdog observed no process
// executing for a full interval). Match with errors.Is; the concrete
// error is a *DeadlockError carrying the blocked-process details.
var ErrDeadlock = errors.New("sim: deadlock")

// ErrCycleBudget is the sentinel for runs stopped by the kernel's
// cycle budget (SetMaxCycles). The concrete error is a
// *CycleBudgetError.
var ErrCycleBudget = errors.New("sim: cycle budget exhausted")

// ErrCanceled is the sentinel for runs stopped by an external
// interrupt check (SetInterrupt) — in practice, a context canceled or
// past its deadline while a simulation was in flight. The concrete
// error is a *CanceledError carrying the underlying cause.
var ErrCanceled = errors.New("sim: run canceled")

// BlockedProc describes one process stuck at deadlock detection time.
type BlockedProc struct {
	Name      string
	WaitingOn string // the blocking primitive's diagnostic name
}

// DeadlockError reports a detected deadlock: which processes are
// blocked and what each is waiting on.
type DeadlockError struct {
	At      Time
	Live    int
	Blocked []BlockedProc
}

// Error implements error, naming the blocked processes and, for every
// primitive with more than one waiter, the full waiter set — so a
// wedge on a shared condition (a pgflt cond names its region, page,
// and owner CE) is diagnosable from the error string alone.
func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: deadlock at cycle %d: %d live process(es), %d blocked",
		e.At, e.Live, len(e.Blocked))
	max := len(e.Blocked)
	if max > 8 {
		max = 8
	}
	for _, p := range e.Blocked[:max] {
		on := p.WaitingOn
		if on == "" {
			on = "unknown"
		}
		fmt.Fprintf(&b, "; %s waits on %s", p.Name, on)
	}
	if len(e.Blocked) > max {
		fmt.Fprintf(&b, "; and %d more", len(e.Blocked)-max)
	}
	for _, g := range e.WaiterSets() {
		if len(g.Waiters) < 2 {
			continue
		}
		fmt.Fprintf(&b, "; %d waiters on %s: %s",
			len(g.Waiters), g.Primitive, strings.Join(g.Waiters, ", "))
	}
	return b.String()
}

// WaiterSet is one blocking primitive and every process stuck on it at
// deadlock detection time.
type WaiterSet struct {
	Primitive string
	Waiters   []string
}

// WaiterSets groups the blocked processes by the primitive each waits
// on, in first-appearance order. Unlike the per-process listing in
// Error (capped at 8), the grouping covers the whole blocked set.
func (e *DeadlockError) WaiterSets() []WaiterSet {
	var order []string
	byPrim := map[string][]string{}
	for _, p := range e.Blocked {
		on := p.WaitingOn
		if on == "" {
			on = "unknown"
		}
		if _, seen := byPrim[on]; !seen {
			order = append(order, on)
		}
		byPrim[on] = append(byPrim[on], p.Name)
	}
	out := make([]WaiterSet, 0, len(order))
	for _, on := range order {
		out = append(out, WaiterSet{Primitive: on, Waiters: byPrim[on]})
	}
	return out
}

// Is makes errors.Is(err, ErrDeadlock) match.
func (e *DeadlockError) Is(target error) bool { return target == ErrDeadlock }

// CycleBudgetError reports a run stopped because virtual time reached
// the configured maximum.
type CycleBudgetError struct {
	Budget Time
	Now    Time
	Live   int
}

// Error implements error.
func (e *CycleBudgetError) Error() string {
	return fmt.Sprintf("sim: cycle budget %d exhausted at cycle %d with %d live process(es)",
		e.Budget, e.Now, e.Live)
}

// Is makes errors.Is(err, ErrCycleBudget) match.
func (e *CycleBudgetError) Is(target error) bool { return target == ErrCycleBudget }

// CanceledError reports a run stopped by the kernel's interrupt check
// (SetInterrupt): the virtual time the stop took effect and the cause
// the check returned (typically context.Canceled or
// context.DeadlineExceeded).
type CanceledError struct {
	At    Time
	Cause error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled at cycle %d: %v", e.At, e.Cause)
}

// Is makes errors.Is(err, ErrCanceled) match.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// Unwrap exposes the cause so errors.Is also matches context.Canceled
// and context.DeadlineExceeded.
func (e *CanceledError) Unwrap() error { return e.Cause }
