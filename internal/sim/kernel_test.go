package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %d, want 30", k.Now())
	}
}

func TestScheduleTieBreakFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { got = append(got, i) })
	}
	k.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.Schedule(10, func() {})
	k.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.Schedule(5, func() {})
}

func TestEventCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(10, func() { fired = true })
	if !e.Cancel() {
		t.Fatal("first Cancel returned false")
	}
	if e.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	k.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		k.Schedule(at, func() { fired = append(fired, at) })
	}
	n := k.Run(12)
	if n != 2 || len(fired) != 2 {
		t.Fatalf("Run(12) fired %d events (%v), want 2", n, fired)
	}
	if k.Now() != 10 {
		t.Fatalf("clock = %d, want 10", k.Now())
	}
	k.RunAll()
	if len(fired) != 4 {
		t.Fatalf("RunAll left events behind: %v", fired)
	}
}

func TestProcHold(t *testing.T) {
	k := NewKernel(1)
	var at []Time
	k.Spawn("p", func(p *Proc) {
		at = append(at, p.Now())
		p.Hold(100)
		at = append(at, p.Now())
		p.Hold(50)
		at = append(at, p.Now())
	})
	k.RunAll()
	want := []Time{0, 100, 150}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("hold times = %v, want %v", at, want)
		}
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", k.LiveProcs())
	}
}

func TestProcHoldZeroDoesNotYield(t *testing.T) {
	k := NewKernel(1)
	order := []string{}
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Hold(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) { order = append(order, "b") })
	k.RunAll()
	if order[0] != "a1" || order[1] != "a2" || order[2] != "b" {
		t.Fatalf("Hold(0) yielded: %v", order)
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel(1)
	var trace []string
	mk := func(name string, step Duration) {
		k.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Hold(step)
				trace = append(trace, name)
			}
		})
	}
	mk("a", 10)
	mk("b", 15)
	k.RunAll()
	// a wakes at 10, 20, 30; b wakes at 15, 30, 45. At t=30, b's wake
	// event was scheduled earlier (at t=15) than a's (at t=20), so b
	// fires first.
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("boom", func(p *Proc) {
		p.Hold(5)
		panic("kaboom")
	})
	defer func() {
		if recover() == nil {
			t.Fatal("process panic did not propagate to Run")
		}
	}()
	k.RunAll()
}

func TestHoldNegativePanics(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("p", func(p *Proc) { p.Hold(-1) })
	defer func() {
		if recover() == nil {
			t.Fatal("negative Hold did not panic")
		}
	}()
	k.RunAll()
}

func TestShutdownUnblocksAll(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "never")
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) { c.Wait(p) })
	}
	k.RunAll()
	if got := len(k.BlockedProcs()); got != 5 {
		t.Fatalf("blocked procs = %d, want 5", got)
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs after Shutdown = %d, want 0", k.LiveProcs())
	}
}

func TestShutdownRunsDeferredCleanup(t *testing.T) {
	k := NewKernel(1)
	cleaned := false
	c := NewCond(k, "never")
	k.Spawn("w", func(p *Proc) {
		defer func() {
			cleaned = true
			// The abort panic must still be in flight; re-panic so the
			// wrapper sees it.
			if r := recover(); r != nil {
				panic(r)
			}
		}()
		c.Wait(p)
	})
	k.RunAll()
	k.Shutdown()
	if !cleaned {
		t.Fatal("deferred cleanup did not run during Shutdown")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		k := NewKernel(42)
		var stamps []Time
		r := NewResource(k, "r", 2)
		for i := 0; i < 8; i++ {
			k.Spawn("p", func(p *Proc) {
				p.Hold(Duration(k.Rand().Intn(20)))
				r.Acquire(p)
				p.Hold(7)
				r.Release()
				stamps = append(stamps, p.Now())
			})
		}
		k.RunAll()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

// Property: for any set of non-negative delays, events fire in
// non-decreasing time order and the final clock equals the max delay.
func TestQuickEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		k := NewKernel(7)
		var fired []Time
		var max Time
		for _, r := range raw {
			at := Time(r)
			if at > max {
				max = at
			}
			k.Schedule(at, func() { fired = append(fired, k.Now()) })
		}
		k.RunAll()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(raw) == 0 || k.Now() == max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a chain of Holds advances the clock by exactly the sum.
func TestQuickHoldSum(t *testing.T) {
	f := func(raw []uint8) bool {
		k := NewKernel(7)
		var sum Time
		for _, r := range raw {
			sum += Time(r)
		}
		done := false
		k.Spawn("p", func(p *Proc) {
			for _, r := range raw {
				p.Hold(Duration(r))
			}
			done = p.Now() == sum
		})
		k.RunAll()
		return done
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCancelRemovesEventEagerly(t *testing.T) {
	k := NewKernel(1)
	e := k.Schedule(1_000_000, func() { t.Error("canceled event fired") })
	if !e.Pending() {
		t.Fatal("scheduled event not pending")
	}
	if k.PendingEvents() != 1 {
		t.Fatalf("pending events = %d, want 1", k.PendingEvents())
	}
	if !e.Cancel() {
		t.Fatal("Cancel returned false")
	}
	// The eager-drop contract: a canceled far-future event leaves the
	// queue immediately instead of riding along until its fire time.
	if k.PendingEvents() != 0 {
		t.Fatalf("canceled event retained: %d pending", k.PendingEvents())
	}
	if !k.Idle() {
		t.Fatal("kernel not idle after cancel")
	}
	if e.Pending() {
		t.Fatal("canceled event still pending")
	}
	k.RunAll()
}

func TestStaleHandleAfterRecycle(t *testing.T) {
	k := NewKernel(1)
	e1 := k.Schedule(10, func() {})
	k.RunAll()
	// e1's node is back on the free list; the next Schedule reuses it.
	e2 := k.Schedule(20, func() {})
	if e1.Cancel() {
		t.Fatal("stale handle canceled a recycled event")
	}
	if e1.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if got := e1.Time(); got != 10 {
		t.Fatalf("stale handle Time = %d, want the original 10", got)
	}
	if !e2.Pending() {
		t.Fatal("live event lost its pending state")
	}
	if !e2.Cancel() {
		t.Fatal("live handle failed to cancel")
	}
}

func TestZeroEventIsStale(t *testing.T) {
	var e Event
	if e.Pending() {
		t.Fatal("zero Event pending")
	}
	if e.Cancel() {
		t.Fatal("zero Event canceled")
	}
}

func TestCancelInterleavedKeepsOrder(t *testing.T) {
	// Canceling from the middle of the heap must not disturb the
	// (time, seq) total order of the survivors.
	k := NewKernel(1)
	var events []Event
	var got []int
	for i := 0; i < 64; i++ {
		i := i
		events = append(events, k.Schedule(Time(97*i%31), func() { got = append(got, 97*i%31) }))
	}
	for i := 0; i < 64; i += 3 {
		events[i].Cancel()
	}
	k.RunAll()
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order after cancels: %v", got)
		}
	}
	if want := 64 - 22; len(got) != want {
		t.Fatalf("fired %d events, want %d", len(got), want)
	}
}

func TestScheduleHoldSteadyStateZeroAllocs(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("holder", func(p *Proc) {
		for {
			p.Hold(1)
		}
	})
	k.Run(64) // warm up: mint the pooled nodes
	allocs := testing.AllocsPerRun(200, func() {
		k.Run(k.Now() + 8)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Hold loop allocates %.1f per Run slice, want 0", allocs)
	}
	k.Shutdown()
}

func TestHoldUntilOutsideProcessPanics(t *testing.T) {
	k := NewKernel(1)
	var proc *Proc
	k.Spawn("p", func(p *Proc) { proc = p; p.Hold(10) })
	k.Run(5)
	defer func() {
		if recover() == nil {
			t.Fatal("HoldUntil from outside the process did not panic")
		}
		k.Shutdown()
	}()
	// Regression: this used to silently no-op when t was not in the
	// future, where Hold/Yield panic.
	proc.HoldUntil(0)
}

func TestInterruptStopsRun(t *testing.T) {
	k := NewKernel(1)
	fired := 0
	// A self-rescheduling event: without an interrupt this would run
	// to the until bound.
	var tick func()
	tick = func() {
		fired++
		k.After(1, tick)
	}
	k.Schedule(0, tick)
	stop := errTestCause
	calls := 0
	k.SetInterrupt(8, func() error {
		calls++
		if calls >= 3 {
			return stop
		}
		return nil
	})
	_, err := k.RunErr(1 << 20)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, errTestCause) {
		t.Fatalf("err = %v does not unwrap to the interrupt cause", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) || ce.Cause != stop {
		t.Fatalf("err = %#v, want *CanceledError carrying the cause", err)
	}
	// The check fires every 8 dispatched events; with it returning the
	// stop on its third call the run must end long before the bound.
	if fired > 32 {
		t.Fatalf("run dispatched %d events after cancel; interrupt not prompt", fired)
	}
}

func TestInterruptNilCheckIdentical(t *testing.T) {
	run := func(install bool) (uint64, Time) {
		k := NewKernel(7)
		if install {
			k.SetInterrupt(1, func() error { return nil })
		}
		n := 0
		var tick func()
		tick = func() {
			if n++; n < 100 {
				k.After(3, tick)
			}
		}
		k.Schedule(0, tick)
		k.RunAll()
		return k.EventsFired(), k.Now()
	}
	f0, t0 := run(false)
	f1, t1 := run(true)
	if f0 != f1 || t0 != t1 {
		t.Fatalf("non-firing interrupt perturbed the run: (%d,%d) vs (%d,%d)", f0, t0, f1, t1)
	}
}

var errTestCause = errors.New("test cause")
