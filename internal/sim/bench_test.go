package sim

import "testing"

// BenchmarkKernelScheduleHold measures the kernel's hot path: a
// process advancing virtual time one Hold at a time, each Hold costing
// one pooled event node, one 4-ary heap push/pop, and one coroutine
// hand-off. The allocation report is the contract — steady-state
// Schedule/Hold must be 0 allocs/op — and the events/sec metric is the
// kernel's raw dispatch throughput.
func BenchmarkKernelScheduleHold(b *testing.B) {
	k := NewKernel(1)
	k.Spawn("bench", func(p *Proc) {
		for {
			p.Hold(1)
		}
	})
	k.Run(1024) // warm up the node pool before measuring
	b.ReportAllocs()
	b.ResetTimer()
	k.Run(1024 + Time(b.N))
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
	k.Shutdown()
}

// BenchmarkKernelScheduleCancel measures the eager cancel path:
// schedule a far-future event and remove it from the middle of a
// populated heap. Also 0 allocs/op once the pool is warm.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	// A standing population so cancels exercise real sift work.
	for i := 0; i < 256; i++ {
		k.Schedule(Time(1_000_000+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := k.Schedule(Time(500_000+i%1024), fn)
		e.Cancel()
	}
}

// BenchmarkKernelManyProcs measures dispatch with a crowd of
// interleaved holders — the shape of a 32-CE simulation step.
func BenchmarkKernelManyProcs(b *testing.B) {
	k := NewKernel(1)
	const procs = 32
	for i := 0; i < procs; i++ {
		d := Duration(1 + i%7)
		k.Spawn("ce", func(p *Proc) {
			for {
				p.Hold(d)
			}
		})
	}
	k.Run(1024)
	b.ReportAllocs()
	b.ResetTimer()
	fired := k.Run(1024 + Time(b.N))
	b.StopTimer()
	b.ReportMetric(float64(fired)/b.Elapsed().Seconds(), "events/sec")
	k.Shutdown()
}

// BenchmarkCalendarReserve measures the conveyor-reservation primitive
// behind every memory-module and network-port booking: it must stay a
// handful of arithmetic ops and 0 allocs/op.
func BenchmarkCalendarReserve(b *testing.B) {
	c := NewCalendar("module")
	b.ReportAllocs()
	b.ResetTimer()
	var at Time
	for i := 0; i < b.N; i++ {
		// Alternate contended and idle arrivals.
		_, end := c.Reserve(at, 3)
		if i%2 == 0 {
			at = end + 2
		}
	}
}
