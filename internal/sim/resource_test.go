package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceUncontended(t *testing.T) {
	k := NewKernel(1)
	r := NewLock(k, "l")
	k.Spawn("p", func(p *Proc) {
		if w := r.Acquire(p); w != 0 {
			t.Errorf("uncontended acquire waited %d", w)
		}
		p.Hold(10)
		r.Release()
	})
	k.RunAll()
	if r.Contended() != 0 || r.Acquires() != 1 {
		t.Fatalf("acquires=%d contended=%d", r.Acquires(), r.Contended())
	}
	if r.InUse() != 0 {
		t.Fatalf("in use = %d after release", r.InUse())
	}
}

func TestResourceFCFS(t *testing.T) {
	k := NewKernel(1)
	r := NewLock(k, "l")
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Hold(Duration(i)) // arrive in index order
			r.Acquire(p)
			order = append(order, i)
			p.Hold(100)
			r.Release()
		})
	}
	k.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order = %v, want FCFS", order)
		}
	}
	if r.MaxWaiters() != 3 {
		t.Fatalf("max waiters = %d, want 3", r.MaxWaiters())
	}
}

func TestResourceSerializesCriticalSection(t *testing.T) {
	k := NewKernel(1)
	r := NewLock(k, "l")
	const n, hold = 8, 13
	var last Time
	for i := 0; i < n; i++ {
		k.Spawn("p", func(p *Proc) {
			r.Acquire(p)
			p.Hold(hold)
			r.Release()
			last = p.Now()
		})
	}
	k.RunAll()
	if want := Time(n * hold); last != want {
		t.Fatalf("lock serialization: last exit at %d, want %d", last, want)
	}
	if r.WaitTotal() == 0 {
		t.Fatal("expected nonzero aggregate wait")
	}
}

func TestResourceCapacity(t *testing.T) {
	k := NewKernel(1)
	r := NewResource(k, "r", 3)
	var finish []Time
	for i := 0; i < 6; i++ {
		k.Spawn("p", func(p *Proc) {
			r.Acquire(p)
			p.Hold(10)
			r.Release()
			finish = append(finish, p.Now())
		})
	}
	k.RunAll()
	// First 3 finish at 10, next 3 at 20.
	for i, want := range []Time{10, 10, 10, 20, 20, 20} {
		if finish[i] != want {
			t.Fatalf("finish = %v", finish)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	k := NewKernel(1)
	r := NewLock(k, "l")
	var got []bool
	k.Spawn("a", func(p *Proc) {
		got = append(got, r.TryAcquire(p))
		p.Hold(10)
		r.Release()
	})
	k.Spawn("b", func(p *Proc) {
		p.Hold(5)
		got = append(got, r.TryAcquire(p)) // held by a
		p.Hold(10)
		got = append(got, r.TryAcquire(p)) // free at 15
	})
	k.RunAll()
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TryAcquire results = %v, want %v", got, want)
		}
	}
}

func TestReleaseBelowZeroPanics(t *testing.T) {
	k := NewKernel(1)
	r := NewLock(k, "l")
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	r.Release()
}

func TestUseReturnsQueueDelay(t *testing.T) {
	k := NewKernel(1)
	r := NewLock(k, "l")
	var delay Duration
	k.Spawn("a", func(p *Proc) { r.Use(p, 20) })
	k.Spawn("b", func(p *Proc) {
		p.Hold(5)
		delay = r.Use(p, 20)
	})
	k.RunAll()
	if delay != 15 {
		t.Fatalf("queue delay = %d, want 15", delay)
	}
}

func TestCondSignalWakesFIFO(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "c")
	var woken []int
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Hold(Duration(i))
			c.Wait(p)
			woken = append(woken, i)
		})
	}
	k.Spawn("s", func(p *Proc) {
		p.Hold(100)
		for i := 0; i < 3; i++ {
			c.Signal()
			p.Hold(10)
		}
	})
	k.RunAll()
	for i, v := range woken {
		if v != i {
			t.Fatalf("wake order = %v, want FIFO", woken)
		}
	}
}

func TestCondBroadcast(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "c")
	count := 0
	for i := 0; i < 7; i++ {
		k.Spawn("w", func(p *Proc) {
			c.Wait(p)
			count++
		})
	}
	k.Spawn("s", func(p *Proc) {
		p.Hold(5)
		if n := c.Broadcast(); n != 7 {
			t.Errorf("Broadcast woke %d, want 7", n)
		}
	})
	k.RunAll()
	if count != 7 {
		t.Fatalf("woken = %d, want 7", count)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "c")
	var waited Duration
	var timedOut bool
	k.Spawn("w", func(p *Proc) {
		waited, timedOut = c.WaitTimeout(p, 50)
	})
	k.RunAll()
	if !timedOut || waited != 50 {
		t.Fatalf("waited=%d timedOut=%v, want 50,true", waited, timedOut)
	}
	if c.Waiters() != 0 {
		t.Fatalf("waiter leaked after timeout")
	}
}

func TestCondWaitTimeoutSignaledFirst(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "c")
	var waited Duration
	var timedOut bool
	k.Spawn("w", func(p *Proc) {
		waited, timedOut = c.WaitTimeout(p, 50)
	})
	k.Spawn("s", func(p *Proc) {
		p.Hold(20)
		c.Signal()
	})
	k.RunAll()
	if timedOut || waited != 20 {
		t.Fatalf("waited=%d timedOut=%v, want 20,false", waited, timedOut)
	}
}

func TestCalendarBackToBack(t *testing.T) {
	c := NewCalendar("m")
	s1, e1 := c.Reserve(0, 10)
	s2, e2 := c.Reserve(0, 10)
	if s1 != 0 || e1 != 10 || s2 != 10 || e2 != 20 {
		t.Fatalf("reservations: [%d,%d] [%d,%d]", s1, e1, s2, e2)
	}
	if c.DelayTotal() != 10 || c.Delayed() != 1 {
		t.Fatalf("delay=%d delayed=%d", c.DelayTotal(), c.Delayed())
	}
}

func TestCalendarIdleGap(t *testing.T) {
	c := NewCalendar("m")
	c.Reserve(0, 10)
	s, e := c.Reserve(100, 5)
	if s != 100 || e != 105 {
		t.Fatalf("gap reservation at [%d,%d], want [100,105]", s, e)
	}
	if c.DelayTotal() != 0 {
		t.Fatalf("idle-gap reservation recorded delay %d", c.DelayTotal())
	}
}

func TestCalendarUtilization(t *testing.T) {
	c := NewCalendar("m")
	c.Reserve(0, 25)
	c.Reserve(50, 25)
	if got := c.Utilization(100); got != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
}

// Property: calendar reservations never overlap and never start before
// the request time.
func TestQuickCalendarNoOverlap(t *testing.T) {
	f := func(raw []struct {
		At   uint16
		Busy uint8
	}) bool {
		c := NewCalendar("m")
		var at Time
		prevEnd := Time(0)
		for _, r := range raw {
			at += Time(r.At % 64) // non-decreasing request times
			s, e := c.Reserve(at, Duration(r.Busy))
			if s < at || s < prevEnd || e != s+Duration(r.Busy) {
				return false
			}
			prevEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with capacity 1 and fixed service, n acquirers finish in
// exactly n*service cycles regardless of arrival pattern within the
// service window.
func TestQuickLockThroughput(t *testing.T) {
	f := func(n uint8) bool {
		procs := int(n%16) + 1
		k := NewKernel(3)
		r := NewLock(k, "l")
		var last Time
		for i := 0; i < procs; i++ {
			k.Spawn("p", func(p *Proc) {
				r.Use(p, 9)
				if p.Now() > last {
					last = p.Now()
				}
			})
		}
		k.RunAll()
		return last == Time(procs*9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
