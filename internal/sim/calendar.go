package sim

import "fmt"

// Calendar models a pipelined bandwidth resource — a memory module or
// a crossbar switch output port — as a conveyor: each reservation
// occupies the resource for a busy period starting no earlier than the
// request time and no earlier than the end of the previous
// reservation. Queueing delay (contention) is the gap between the
// request time and the granted start.
//
// Unlike Resource, Calendar never blocks a process: callers obtain the
// completion time and Hold for it themselves. This keeps the event
// count per memory access at one, which is what makes simulating
// billions of cycles of a 32-processor machine tractable.
type Calendar struct {
	name   string
	freeAt Time

	// Statistics.
	reservations uint64
	busyTotal    Duration
	delayTotal   Duration
	delayed      uint64 // reservations that found the resource busy
}

// NewCalendar creates a calendar resource.
func NewCalendar(name string) *Calendar { return &Calendar{name: name} }

// Name returns the calendar's diagnostic name.
func (c *Calendar) Name() string { return c.name }

// Reserve books the resource for busy cycles at the earliest time not
// before at. It returns the start and end of the granted slot.
func (c *Calendar) Reserve(at Time, busy Duration) (start, end Time) {
	if busy < 0 {
		panic(fmt.Sprintf("sim: calendar %q negative busy %d", c.name, busy))
	}
	start = at
	if c.freeAt > start {
		start = c.freeAt
		c.delayed++
	}
	end = start + busy
	c.freeAt = end
	c.reservations++
	c.busyTotal += busy
	c.delayTotal += start - at
	return start, end
}

// FreeAt returns the time at which the resource next becomes free.
func (c *Calendar) FreeAt() Time { return c.freeAt }

// Reservations returns the number of Reserve calls.
func (c *Calendar) Reservations() uint64 { return c.reservations }

// BusyTotal returns the total busy time booked.
func (c *Calendar) BusyTotal() Duration { return c.busyTotal }

// DelayTotal returns the total queueing delay imposed on reservations;
// this is the resource's cumulative contribution to contention.
func (c *Calendar) DelayTotal() Duration { return c.delayTotal }

// Delayed returns how many reservations found the resource busy.
func (c *Calendar) Delayed() uint64 { return c.delayed }

// Utilization returns busyTotal / now as a fraction; now must be > 0.
func (c *Calendar) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(c.busyTotal) / float64(now)
}

// CalendarStore is a bank of Calendar resources flattened into
// struct-of-arrays: entry i is one conveyor, but its free time and each
// statistic live in their own dense slices instead of one heap object
// per resource. The big machine configurations have thousands of
// network ports and memory modules whose reservations dominate the
// event loop; scanning and updating parallel arrays keeps that hot
// path in a handful of cache lines where per-resource objects scatter
// it across the heap. Entries have no names — owners that need a
// diagnostic name (e.g. the network's hot-port report) synthesize it
// from the index.
type CalendarStore struct {
	freeAt       []Time
	reservations []uint64
	busyTotal    []Duration
	delayTotal   []Duration
	delayed      []uint64
}

// NewCalendarStore creates a store of n conveyor resources, all free
// at time zero.
func NewCalendarStore(n int) *CalendarStore {
	return &CalendarStore{
		freeAt:       make([]Time, n),
		reservations: make([]uint64, n),
		busyTotal:    make([]Duration, n),
		delayTotal:   make([]Duration, n),
		delayed:      make([]uint64, n),
	}
}

// Len returns the number of resources in the store.
func (s *CalendarStore) Len() int { return len(s.freeAt) }

// Reserve books resource i for busy cycles at the earliest time not
// before at, exactly like Calendar.Reserve.
func (s *CalendarStore) Reserve(i int, at Time, busy Duration) (start, end Time) {
	if busy < 0 {
		panic(fmt.Sprintf("sim: calendar store entry %d negative busy %d", i, busy))
	}
	start = at
	if s.freeAt[i] > start {
		start = s.freeAt[i]
		s.delayed[i]++
	}
	end = start + busy
	s.freeAt[i] = end
	s.reservations[i]++
	s.busyTotal[i] += busy
	s.delayTotal[i] += start - at
	return start, end
}

// FreeAt returns the time resource i next becomes free.
func (s *CalendarStore) FreeAt(i int) Time { return s.freeAt[i] }

// Reservations returns the number of Reserve calls on resource i.
func (s *CalendarStore) Reservations(i int) uint64 { return s.reservations[i] }

// BusyTotal returns the total busy time booked on resource i.
func (s *CalendarStore) BusyTotal(i int) Duration { return s.busyTotal[i] }

// DelayTotal returns the total queueing delay imposed on resource i's
// reservations.
func (s *CalendarStore) DelayTotal(i int) Duration { return s.delayTotal[i] }

// Delayed returns how many reservations found resource i busy.
func (s *CalendarStore) Delayed(i int) uint64 { return s.delayed[i] }

// Utilization returns resource i's busyTotal / now; now must be > 0.
func (s *CalendarStore) Utilization(i int, now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(s.busyTotal[i]) / float64(now)
}

// MaxBacklog returns the largest span by which any resource's next-free
// time exceeds now — the hot-spot pressure signal over the whole bank.
func (s *CalendarStore) MaxBacklog(now Time) Duration {
	var max Duration
	for _, f := range s.freeAt {
		if b := f - now; b > max {
			max = b
		}
	}
	return max
}

// DelaySum returns the total queueing delay over all resources.
func (s *CalendarStore) DelaySum() Duration {
	var total Duration
	for _, d := range s.delayTotal {
		total += d
	}
	return total
}

// Totals returns the aggregate statistics over all resources.
func (s *CalendarStore) Totals() (reservations uint64, busy, delay Duration, delayed uint64) {
	for i := range s.freeAt {
		reservations += s.reservations[i]
		busy += s.busyTotal[i]
		delay += s.delayTotal[i]
		delayed += s.delayed[i]
	}
	return
}

// MaxDelayIndex returns the resource with the largest cumulative
// queueing delay (the first such index on ties) and that delay.
// It returns index -1 when no resource has been delayed.
func (s *CalendarStore) MaxDelayIndex() (i int, delay Duration) {
	i = -1
	for j, d := range s.delayTotal {
		if d > delay {
			delay = d
			i = j
		}
	}
	return i, delay
}
