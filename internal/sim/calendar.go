package sim

import "fmt"

// Calendar models a pipelined bandwidth resource — a memory module or
// a crossbar switch output port — as a conveyor: each reservation
// occupies the resource for a busy period starting no earlier than the
// request time and no earlier than the end of the previous
// reservation. Queueing delay (contention) is the gap between the
// request time and the granted start.
//
// Unlike Resource, Calendar never blocks a process: callers obtain the
// completion time and Hold for it themselves. This keeps the event
// count per memory access at one, which is what makes simulating
// billions of cycles of a 32-processor machine tractable.
type Calendar struct {
	name   string
	freeAt Time

	// Statistics.
	reservations uint64
	busyTotal    Duration
	delayTotal   Duration
	delayed      uint64 // reservations that found the resource busy
}

// NewCalendar creates a calendar resource.
func NewCalendar(name string) *Calendar { return &Calendar{name: name} }

// Name returns the calendar's diagnostic name.
func (c *Calendar) Name() string { return c.name }

// Reserve books the resource for busy cycles at the earliest time not
// before at. It returns the start and end of the granted slot.
func (c *Calendar) Reserve(at Time, busy Duration) (start, end Time) {
	if busy < 0 {
		panic(fmt.Sprintf("sim: calendar %q negative busy %d", c.name, busy))
	}
	start = at
	if c.freeAt > start {
		start = c.freeAt
		c.delayed++
	}
	end = start + busy
	c.freeAt = end
	c.reservations++
	c.busyTotal += busy
	c.delayTotal += start - at
	return start, end
}

// FreeAt returns the time at which the resource next becomes free.
func (c *Calendar) FreeAt() Time { return c.freeAt }

// Reservations returns the number of Reserve calls.
func (c *Calendar) Reservations() uint64 { return c.reservations }

// BusyTotal returns the total busy time booked.
func (c *Calendar) BusyTotal() Duration { return c.busyTotal }

// DelayTotal returns the total queueing delay imposed on reservations;
// this is the resource's cumulative contribution to contention.
func (c *Calendar) DelayTotal() Duration { return c.delayTotal }

// Delayed returns how many reservations found the resource busy.
func (c *Calendar) Delayed() uint64 { return c.delayed }

// Utilization returns busyTotal / now as a fraction; now must be > 0.
func (c *Calendar) Utilization(now Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(c.busyTotal) / float64(now)
}
