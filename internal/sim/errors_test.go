package sim

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestRunAllErrScenarios is the table-driven check over the kernel's
// abnormal-termination paths: queue-exhaustion deadlock, watchdog
// deadlock under a self-rescheduling event, and the cycle budget. Each
// scenario builds a kernel, runs it to completion with RunAllErr, and
// matches the returned error against a sentinel plus diagnostic
// substrings.
func TestRunAllErrScenarios(t *testing.T) {
	// tick installs a self-rescheduling event, the shape the OS clock
	// and the statfx sampler have in the full simulator: the event
	// queue never drains, so only the watchdog can diagnose a wedged
	// run.
	var tick func(k *Kernel, every Duration)
	tick = func(k *Kernel, every Duration) {
		k.After(every, func() { tick(k, every) })
	}

	cases := []struct {
		name     string
		build    func(k *Kernel)
		sentinel error  // nil: expect success
		contains []string
	}{
		{
			name: "clean run",
			build: func(k *Kernel) {
				k.Spawn("worker", func(p *Proc) { p.Hold(100) })
			},
		},
		{
			name: "queue exhausted with blocked procs",
			build: func(k *Kernel) {
				c := NewCond(k, "never")
				r := NewLock(k, "held")
				k.Spawn("holder", func(p *Proc) {
					r.Acquire(p)
					c.Wait(p) // parks forever holding the lock
				})
				k.Spawn("waiter", func(p *Proc) {
					p.Hold(10)
					r.Acquire(p)
				})
			},
			sentinel: ErrDeadlock,
			contains: []string{
				"2 live process(es)", "2 blocked",
				"holder waits on cond:never",
				"waiter waits on lock:held",
			},
		},
		{
			name: "watchdog trips despite live tick events",
			build: func(k *Kernel) {
				tick(k, 500)
				c := NewCond(k, "wedged")
				k.Spawn("stuck", func(p *Proc) { c.Wait(p) })
				k.SetWatchdog(2_000)
			},
			sentinel: ErrDeadlock,
			contains: []string{"stuck waits on cond:wedged"},
		},
		{
			name: "watchdog ignores a long hold",
			build: func(k *Kernel) {
				k.Spawn("sleeper", func(p *Proc) { p.Hold(1_000_000) })
				k.SetWatchdog(1_000)
			},
		},
		{
			name: "watchdog ignores blocked proc with a live partner",
			build: func(k *Kernel) {
				c := NewCond(k, "handoff")
				k.Spawn("consumer", func(p *Proc) { c.Wait(p) })
				k.Spawn("producer", func(p *Proc) {
					p.Hold(50_000) // longer than the watchdog interval
					c.Signal()
				})
				k.SetWatchdog(1_000)
			},
		},
		{
			name: "cycle budget stops an endless run",
			build: func(k *Kernel) {
				tick(k, 100)
				k.SetMaxCycles(5_000)
			},
			sentinel: ErrCycleBudget,
			contains: []string{"cycle budget 5000 exhausted"},
		},
		{
			name: "budget not hit when run finishes first",
			build: func(k *Kernel) {
				k.Spawn("quick", func(p *Proc) { p.Hold(10) })
				k.SetMaxCycles(1_000_000)
			},
		},
		{
			name: "process panic reported as error",
			build: func(k *Kernel) {
				k.Spawn("bomb", func(p *Proc) {
					p.Hold(5)
					panic("kaboom")
				})
			},
			sentinel: nil, // matched by substring only
			contains: []string{`process "bomb" panicked: kaboom`},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := NewKernel(1)
			tc.build(k)
			_, err := k.RunAllErr()
			if tc.sentinel == nil && len(tc.contains) == 0 {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error, got nil")
			}
			if tc.sentinel != nil && !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, %v) = false", err, tc.sentinel)
			}
			for _, want := range tc.contains {
				if !strings.Contains(err.Error(), want) {
					t.Fatalf("error %q missing %q", err, want)
				}
			}
			// The kernel must be reclaimable after any abnormal stop.
			k.Shutdown()
			if k.LiveProcs() != 0 {
				t.Fatalf("live procs after Shutdown = %d", k.LiveProcs())
			}
		})
	}
}

func TestDeadlockErrorFields(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "gate")
	for i := 0; i < 3; i++ {
		k.Spawn("w", func(p *Proc) { c.Wait(p) })
	}
	_, err := k.RunAllErr()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("error %T is not *DeadlockError", err)
	}
	if de.Live != 3 || len(de.Blocked) != 3 {
		t.Fatalf("Live=%d Blocked=%d, want 3/3", de.Live, len(de.Blocked))
	}
	for _, b := range de.Blocked {
		if b.Name != "w" || b.WaitingOn != "cond:gate" {
			t.Fatalf("blocked entry %+v", b)
		}
	}
	k.Shutdown()
}

func TestDeadlockErrorTruncatesLongLists(t *testing.T) {
	e := &DeadlockError{At: 7, Live: 12}
	for i := 0; i < 12; i++ {
		e.Blocked = append(e.Blocked, BlockedProc{Name: "p"})
	}
	msg := e.Error()
	if !strings.Contains(msg, "and 4 more") {
		t.Fatalf("long blocked list not truncated: %q", msg)
	}
	if !strings.Contains(msg, "p waits on unknown") {
		t.Fatalf("empty WaitingOn not rendered as unknown: %q", msg)
	}
}

// TestDeadlockErrorWaiterSets: the grouped view covers the whole
// blocked set (unlike the per-process listing, capped at 8) and the
// error string names every multi-waiter primitive with its full
// waiter list — the diagnosable-from-the-string-alone contract the
// page-fault cond relies on.
func TestDeadlockErrorWaiterSets(t *testing.T) {
	e := &DeadlockError{At: 7, Live: 12}
	for i := 0; i < 9; i++ {
		e.Blocked = append(e.Blocked, BlockedProc{
			Name: fmt.Sprintf("w%d", i), WaitingOn: "cond:pgflt:data.c0.p0(owner=ce0)"})
	}
	e.Blocked = append(e.Blocked,
		BlockedProc{Name: "holder", WaitingOn: "lock:mutex"},
		BlockedProc{Name: "lost"}, // empty WaitingOn groups as unknown
		BlockedProc{Name: "spinner", WaitingOn: "lock:mutex"},
	)
	sets := e.WaiterSets()
	if len(sets) != 3 {
		t.Fatalf("got %d waiter sets, want 3: %+v", len(sets), sets)
	}
	// First-appearance order, whole blocked set covered.
	if sets[0].Primitive != "cond:pgflt:data.c0.p0(owner=ce0)" || len(sets[0].Waiters) != 9 {
		t.Fatalf("pgflt set wrong: %+v", sets[0])
	}
	if sets[1].Primitive != "lock:mutex" || len(sets[1].Waiters) != 2 ||
		sets[1].Waiters[0] != "holder" || sets[1].Waiters[1] != "spinner" {
		t.Fatalf("lock set wrong: %+v", sets[1])
	}
	if sets[2].Primitive != "unknown" || len(sets[2].Waiters) != 1 {
		t.Fatalf("unknown set wrong: %+v", sets[2])
	}
	msg := e.Error()
	// The 9th pgflt waiter is past the per-process cap but must still
	// appear in the grouped line.
	if !strings.Contains(msg, "and 4 more") {
		t.Fatalf("per-process listing not capped: %q", msg)
	}
	if !strings.Contains(msg, "9 waiters on cond:pgflt:data.c0.p0(owner=ce0): w0, w1, w2, w3, w4, w5, w6, w7, w8") {
		t.Fatalf("grouped pgflt waiters missing from message: %q", msg)
	}
	if !strings.Contains(msg, "2 waiters on lock:mutex: holder, spinner") {
		t.Fatalf("grouped lock waiters missing from message: %q", msg)
	}
	// Singleton sets stay out of the grouped suffix.
	if strings.Contains(msg, "1 waiters on") {
		t.Fatalf("singleton waiter set rendered: %q", msg)
	}
}

func TestCycleBudgetErrorFields(t *testing.T) {
	k := NewKernel(1)
	k.SetMaxCycles(50)
	k.Spawn("p", func(p *Proc) {
		for {
			p.Hold(20)
		}
	})
	_, err := k.RunAllErr()
	var ce *CycleBudgetError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not *CycleBudgetError", err)
	}
	if ce.Budget != 50 {
		t.Fatalf("Budget = %d, want 50", ce.Budget)
	}
	if ce.Live != 1 {
		t.Fatalf("Live = %d, want 1", ce.Live)
	}
	k.Shutdown()
}

// TestAbortBlockedProcRunsDeferred is the fail-stop contract: aborting
// a blocked process unwinds it with ErrAborted so its deferred
// cleanups (here, a lock release) run, and the rest of the simulation
// proceeds unharmed.
func TestAbortBlockedProcRunsDeferred(t *testing.T) {
	k := NewKernel(1)
	lock := NewLock(k, "l")
	gate := NewCond(k, "gate")
	released := false
	victim := k.Spawn("victim", func(p *Proc) {
		lock.Acquire(p)
		defer func() {
			released = true
			lock.Release()
		}()
		gate.Wait(p) // parks forever; only Abort can end this
	})
	survivorDone := false
	k.Spawn("survivor", func(p *Proc) {
		p.Hold(10)
		lock.Acquire(p)
		survivorDone = true
		lock.Release()
	})
	k.Schedule(5, func() { k.Abort(victim) })
	if _, err := k.RunAllErr(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if !released {
		t.Fatal("victim's deferred lock release did not run")
	}
	if !survivorDone {
		t.Fatal("survivor never acquired the lock after the abort")
	}
	if !victim.Aborted() || !victim.Done() {
		t.Fatalf("victim aborted=%v done=%v, want true/true", victim.Aborted(), victim.Done())
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", k.LiveProcs())
	}
}

func TestAbortScheduledProc(t *testing.T) {
	k := NewKernel(1)
	reached := false
	victim := k.Spawn("victim", func(p *Proc) {
		p.Hold(100)
		reached = true
	})
	k.Schedule(50, func() { k.Abort(victim) }) // victim is mid-Hold: stateScheduled
	if _, err := k.RunAllErr(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if reached {
		t.Fatal("aborted process ran past its Hold")
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", k.LiveProcs())
	}
}

func TestAbortIsIdempotent(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "never")
	victim := k.Spawn("victim", func(p *Proc) { c.Wait(p) })
	k.Schedule(5, func() {
		k.Abort(victim)
		k.Abort(victim) // second abort of the same proc: no-op
	})
	if _, err := k.RunAllErr(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	k.Abort(victim) // abort after done: no-op
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs = %d, want 0", k.LiveProcs())
	}
}

// TestSignalSkipsAbortedWaiter: a signal must never be consumed by a
// dead waiter — it passes to the first live one.
func TestSignalSkipsAbortedWaiter(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "c")
	var first *Proc
	firstWoke, secondWoke := false, false
	first = k.Spawn("first", func(p *Proc) {
		c.Wait(p)
		firstWoke = true
	})
	k.Spawn("second", func(p *Proc) {
		p.Hold(1) // queue behind first
		c.Wait(p)
		secondWoke = true
	})
	k.Schedule(10, func() { k.Abort(first) })
	k.Schedule(20, func() {
		if !c.Signal() {
			t.Error("Signal found no live waiter")
		}
	})
	if _, err := k.RunAllErr(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if firstWoke {
		t.Fatal("aborted waiter consumed the signal")
	}
	if !secondWoke {
		t.Fatal("live waiter did not receive the signal")
	}
}

func TestBroadcastSkipsAbortedWaiter(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "c")
	var dead *Proc
	woken := 0
	dead = k.Spawn("dead", func(p *Proc) { c.Wait(p); woken++ })
	k.Spawn("live1", func(p *Proc) { c.Wait(p); woken++ })
	k.Spawn("live2", func(p *Proc) { c.Wait(p); woken++ })
	k.Schedule(10, func() { k.Abort(dead) })
	k.Schedule(20, func() {
		if n := c.Broadcast(); n != 2 {
			t.Errorf("Broadcast woke %d, want 2", n)
		}
	})
	if _, err := k.RunAllErr(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if woken != 2 {
		t.Fatalf("woken = %d, want 2", woken)
	}
}

// TestReleaseSkipsAbortedWaiter: a released unit is handed to the
// first live queued waiter, never to a dead one (which would leak the
// unit forever).
func TestReleaseSkipsAbortedWaiter(t *testing.T) {
	k := NewKernel(1)
	lock := NewLock(k, "l")
	var doomed *Proc
	doomedGot, thirdGot := false, false
	k.Spawn("holder", func(p *Proc) {
		lock.Acquire(p)
		p.Hold(100)
		lock.Release()
	})
	doomed = k.Spawn("doomed", func(p *Proc) {
		p.Hold(1)
		lock.Acquire(p)
		doomedGot = true
		lock.Release()
	})
	k.Spawn("third", func(p *Proc) {
		p.Hold(2)
		lock.Acquire(p)
		thirdGot = true
		lock.Release()
	})
	k.Schedule(50, func() { k.Abort(doomed) }) // doomed is queued behind holder
	if _, err := k.RunAllErr(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	if doomedGot {
		t.Fatal("aborted waiter acquired the lock")
	}
	if !thirdGot {
		t.Fatal("live waiter behind the aborted one never got the lock")
	}
	if lock.InUse() != 0 {
		t.Fatalf("lock units leaked: inUse = %d", lock.InUse())
	}
}

// TestShutdownMixedStates: Shutdown must reclaim processes in every
// live state at once — blocked on a cond, blocked on a lock queue, and
// scheduled mid-Hold — running each one's deferred cleanup.
func TestShutdownMixedStates(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "never")
	lock := NewLock(k, "l")
	cleanups := 0
	cleanup := func() {
		cleanups++
		if r := recover(); r != nil {
			panic(r) // keep the abort unwinding
		}
	}
	k.Spawn("blocked-cond", func(p *Proc) {
		defer cleanup()
		c.Wait(p)
	})
	k.Spawn("lock-holder", func(p *Proc) {
		defer cleanup()
		lock.Acquire(p)
		c.Wait(p)
	})
	k.Spawn("blocked-lock", func(p *Proc) {
		defer cleanup()
		p.Hold(1)
		lock.Acquire(p)
	})
	k.Spawn("mid-hold", func(p *Proc) {
		defer cleanup()
		p.Hold(1_000_000)
	})
	k.Run(100) // everyone is parked in their steady state now
	if k.LiveProcs() != 4 {
		t.Fatalf("live procs = %d, want 4", k.LiveProcs())
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs after Shutdown = %d, want 0", k.LiveProcs())
	}
	if cleanups != 4 {
		t.Fatalf("deferred cleanups ran %d times, want 4", cleanups)
	}
}

func TestWaitingOnDiagnostics(t *testing.T) {
	k := NewKernel(1)
	c := NewCond(k, "report")
	lock := NewLock(k, "mutex")
	var condWaiter, lockWaiter *Proc
	condWaiter = k.Spawn("cw", func(p *Proc) { c.Wait(p) })
	k.Spawn("holder", func(p *Proc) {
		lock.Acquire(p)
		c.Wait(p)
	})
	lockWaiter = k.Spawn("lw", func(p *Proc) {
		p.Hold(1)
		lock.Acquire(p)
	})
	k.Run(100)
	if got := condWaiter.WaitingOn(); got != "cond:report" {
		t.Fatalf("cond waiter WaitingOn = %q", got)
	}
	if got := lockWaiter.WaitingOn(); got != "lock:mutex" {
		t.Fatalf("lock waiter WaitingOn = %q", got)
	}
	k.Shutdown()
	if got := condWaiter.WaitingOn(); got != "" {
		t.Fatalf("WaitingOn after shutdown = %q, want empty", got)
	}
}
