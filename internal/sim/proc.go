package sim

import (
	"errors"
	"fmt"
)

// ErrAborted is the panic value delivered inside a process when the
// kernel shuts it down via Kernel.Shutdown. Process bodies normally
// never observe it: the process wrapper recovers it.
var ErrAborted = errors.New("sim: process aborted")

type procState int

const (
	stateNew       procState = iota // spawned, start event pending
	stateRunning                    // currently executing
	stateScheduled                  // wake event pending
	stateBlocked                    // waiting on a condition/resource
	stateDone                       // body returned
)

// Proc is a simulation process: a coroutine whose body runs in virtual
// time. A process advances the clock by calling Hold and synchronizes
// with other processes through Resource and Cond. All Proc methods
// must be called from the process's own body.
type Proc struct {
	k       *Kernel
	id      int
	name    string
	resume  chan struct{}
	state   procState
	aborted bool

	// waitingOn names the primitive the process is currently blocked
	// in, for deadlock diagnostics.
	waitingOn string

	// holdTotal accumulates all time spent in Hold, for tests and
	// sanity checks.
	holdTotal Duration
}

// Spawn creates a process running fn and schedules it to start at the
// current virtual time. The name is used in diagnostics only.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     len(k.procs),
		name:   name,
		resume: make(chan struct{}),
		state:  stateNew,
	}
	k.procs = append(k.procs, p)
	k.live++
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			p.state = stateDone
			k.live--
			if r != nil && r != ErrAborted && k.fatal == nil {
				k.fatal = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
			k.yielded <- struct{}{}
		}()
		if p.aborted {
			panic(ErrAborted)
		}
		fn(p)
	}()
	p.state = stateScheduled
	k.scheduleProc(k.now, p)
	k.armWatchdog()
	return p
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// ID returns the process's kernel-assigned id (spawn order).
func (p *Proc) ID() int { return p.id }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.state == stateDone }

// HoldTotal returns the total virtual time this process has spent in
// Hold calls.
func (p *Proc) HoldTotal() Duration { return p.holdTotal }

// Aborted reports whether the process was terminated via Kernel.Abort
// or Kernel.Shutdown.
func (p *Proc) Aborted() bool { return p.aborted }

// WaitingOn returns the diagnostic name of the primitive the process
// is currently blocked in (empty if not blocked).
func (p *Proc) WaitingOn() string {
	if p.state != stateBlocked {
		return ""
	}
	return p.waitingOn
}

// blockOn parks the process like block, recording what it waits on for
// deadlock diagnostics.
func (p *Proc) blockOn(what string) {
	p.waitingOn = what
	p.block()
	p.waitingOn = ""
}

// checkRunning panics unless p is the currently executing process.
func (p *Proc) checkRunning(op string) {
	if p.k.running != p {
		panic(fmt.Sprintf("sim: %s called on %q from outside the process", op, p.name))
	}
}

// Hold advances the process d cycles of virtual time. Other events and
// processes run in the meantime. Hold(0) is a no-op that does not
// yield.
func (p *Proc) Hold(d Duration) {
	p.checkRunning("Hold")
	if d < 0 {
		panic(fmt.Sprintf("sim: %q Hold(%d): negative duration", p.name, d))
	}
	if d == 0 {
		return
	}
	p.holdTotal += d
	p.state = stateScheduled
	p.k.scheduleProc(p.k.now+d, p)
	p.yield()
}

// HoldUntil advances the process to absolute time t (no-op if t is not
// in the future). Like Hold and Yield it must be called from the
// process's own body, even when it would not advance time.
func (p *Proc) HoldUntil(t Time) {
	p.checkRunning("HoldUntil")
	if t > p.k.now {
		p.Hold(t - p.k.now)
	}
}

// Yield gives other processes and events scheduled at the current time
// a chance to run before p continues.
func (p *Proc) Yield() {
	p.checkRunning("Yield")
	p.state = stateScheduled
	p.k.scheduleProc(p.k.now, p)
	p.yield()
}

// block parks the process with no wake event scheduled. Something else
// (a Cond signal, a Resource grant) must call Kernel.wake later.
func (p *Proc) block() {
	p.checkRunning("block")
	p.state = stateBlocked
	p.yield()
}

// yield hands control back to the kernel and waits to be resumed.
// On resume after an abort, it panics with ErrAborted so that the
// process unwinds through whatever primitive it was sleeping in.
func (p *Proc) yield() {
	k := p.k
	k.yielded <- struct{}{}
	<-p.resume
	if p.aborted {
		panic(ErrAborted)
	}
}
