// Package gmem models the family's shared global memory: GMModules
// independent modules (32 on the paper's Cedar), double-word (8-byte)
// interleaved and aligned, each taking 4 processor clock cycles to
// process a request (Sections 2 and 7 of the paper). Requests reach
// the modules through the forward shuffle-exchange network and replies
// return through the separate return network (package network); every
// fan-out size below — module count, group structure, stage count —
// derives from the arch.Config rather than Cedar constants.
//
// Addresses are in units of 8-byte words. A vector access of W words
// with stride 1 spreads across min(W, modules) modules; module
// occupancy conflicts (two requests in successive cycles to the same
// module delay the second — the paper's 1-processor example) and
// cross-CE contention both emerge from per-module calendar
// reservations.
package gmem

import (
	"repro/internal/arch"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Memory is the global memory with its interconnection networks.
type Memory struct {
	cfg  arch.Config
	cost arch.CostModel
	net  *network.Pair
	// modules holds every module's conveyor state struct-of-arrays
	// (entry mod is module mod) — the dense layout the per-access loop
	// walks instead of one heap object per module.
	modules *sim.CalendarStore
	rec     *obs.Recorder

	// Scratch buffers reused across Access calls to keep the hot path
	// allocation-free. A Memory belongs to exactly one kernel and the
	// simulation of one machine is single-threaded, so plain reuse is
	// safe. scrMod/scrW/scrGroup describe each touched slice of the
	// current vector; order lists slice indices bucketed by group
	// (ascending index within each group); grpWords/grpCount/grpOff are
	// per-group accumulators for the counting sort.
	scrMod   []int
	scrW     []int
	scrGroup []int
	order    []int
	grpWords []int
	grpCount []int
	grpOff   []int

	// Degraded-mode state: per-module service-time inflation factors
	// (0 or 1 = healthy) and offline flags. Requests to an offline
	// module are remapped to the next online module (the spare-module
	// fallback), paying a fixed remap penalty per slice.
	inflate  []float64
	offline  []bool
	nOffline int

	accesses   uint64
	words      uint64
	stallTotal sim.Duration // total (completion - request) beyond zero
	idealTotal sim.Duration // what the same accesses would cost uncontended
	remapped   uint64       // vector slices redirected off an offline module
}

// remapPenaltyCycles is the extra module occupancy a redirected slice
// pays: the fallback module must consult the remap table before
// serving foreign addresses.
const remapPenaltyCycles = 16

// New creates the global memory for a configuration.
func New(cfg arch.Config, cost arch.CostModel) *Memory {
	m := &Memory{
		cfg:     cfg,
		cost:    cost,
		net:     network.NewPair(cfg, cost),
		modules: sim.NewCalendarStore(cfg.GMModules),
	}
	// A vector touches at most GMModules slices and Groups() groups, so
	// the scratch buffers are sized once here and never grow.
	m.scrMod = make([]int, cfg.GMModules)
	m.scrW = make([]int, cfg.GMModules)
	m.scrGroup = make([]int, cfg.GMModules)
	m.order = make([]int, cfg.GMModules)
	m.grpWords = make([]int, cfg.Groups())
	m.grpCount = make([]int, cfg.Groups())
	m.grpOff = make([]int, cfg.Groups())
	return m
}

// Net exposes the network pair (for hot-spot statistics).
func (m *Memory) Net() *network.Pair { return m.net }

// SetRecorder arms the observability recorder: accesses whose
// queueing delay reaches the recorder's slow-stall threshold post a
// hot-spot instant naming the access's home module. A nil recorder
// disarms.
func (m *Memory) SetRecorder(r *obs.Recorder) { m.rec = r }

func (m *Memory) ensureFaultState() {
	if m.inflate == nil {
		m.inflate = make([]float64, m.cfg.GMModules)
		m.offline = make([]bool, m.cfg.GMModules)
	}
}

// InflateModule multiplies module mod's service time (latency and
// per-word transfer) by factor for all subsequent accesses. Factors
// <= 1 restore nominal speed.
func (m *Memory) InflateModule(mod int, factor float64) {
	m.ensureFaultState()
	m.inflate[mod] = factor
}

// OfflineModule takes module mod out of service: subsequent accesses
// that map to it are redirected to the next online module (wrapping),
// paying a remap penalty per redirected slice. The last online module
// cannot be taken offline; OfflineModule reports whether the module is
// now offline.
func (m *Memory) OfflineModule(mod int) bool {
	m.ensureFaultState()
	if m.offline[mod] {
		return true
	}
	if m.nOffline >= m.cfg.GMModules-1 {
		return false
	}
	m.offline[mod] = true
	m.nOffline++
	return true
}

// OfflineModules returns how many modules are currently out of service.
func (m *Memory) OfflineModules() int { return m.nOffline }

// effModule returns the module that actually serves addresses mapping
// to mod: mod itself when online, otherwise the next online module.
func (m *Memory) effModule(mod int) int {
	if m.nOffline == 0 || !m.offline[mod] {
		return mod
	}
	for i := 1; i < m.cfg.GMModules; i++ {
		e := (mod + i) % m.cfg.GMModules
		if !m.offline[e] {
			return e
		}
	}
	return mod
}

// moduleBusy returns module mod's occupancy for a w-word slice,
// including any latency inflation and the remap penalty when the slice
// was redirected from another (offline) module.
func (m *Memory) moduleBusy(mod int, w int, remapped bool) sim.Duration {
	busy := m.cost.ModuleLatency + int64(w)*m.cost.ModuleCyclesPerWord
	if m.inflate != nil && m.inflate[mod] > 1 {
		busy = int64(float64(busy)*m.inflate[mod] + 0.5)
	}
	if remapped {
		busy += remapPenaltyCycles
	}
	return sim.Duration(busy)
}

// Module returns the module index an address maps to (double-word
// interleaved).
func (m *Memory) Module(addr int64) int {
	mod := int(addr % int64(m.cfg.GMModules))
	if mod < 0 {
		mod += m.cfg.GMModules
	}
	return mod
}

// Access performs a read or write of words 8-byte words starting at
// addr (stride 1) on behalf of the CE, with the request issued at
// time at. It returns the completion time (data available at the CE)
// and the portion of the elapsed time attributable to queueing
// (network port and memory module contention).
//
// The CE process is expected to Hold until the returned completion
// time and charge the stall to its account; Memory itself never
// blocks.
func (m *Memory) Access(at sim.Time, ce arch.CEID, addr int64, words int) (done sim.Time, queued sim.Duration) {
	if words < 1 {
		words = 1
	}
	m.accesses++
	m.words += uint64(words)

	// Distribute the stride-1 vector round-robin across the modules
	// starting at the address's module, then group the touched modules
	// by the top-level network group (the subtree behind one stage-0
	// output port) that owns them: each group's slice of the vector is
	// an independent burst through its own ports.
	firstModule := m.Module(addr)
	touched := words
	if touched > m.cfg.GMModules {
		touched = m.cfg.GMModules
	}
	perModule := words / touched
	extra := words % touched
	groupSpan := m.cfg.GroupSpan()
	nGroups := m.cfg.Groups()

	inject := at + sim.Duration(m.cost.GIFLatency)
	var qNet, qMod sim.Duration
	var lastReady sim.Time

	// One pass over the touched slices classifies each by its serving
	// module and top-level group (slices whose home module is offline
	// travel to, and group with, the fallback module instead), then a
	// counting sort buckets slice indices by group. The per-group walk
	// below then visits exactly the members of each group — replacing
	// the former groups x slices rescan, which dominated big-machine
	// profiles — while preserving the identical reservation order:
	// groups ascending, slices ascending within each group.
	for g := 0; g < nGroups; g++ {
		m.grpWords[g] = 0
		m.grpCount[g] = 0
	}
	for i := 0; i < touched; i++ {
		home := firstModule + i
		if home >= m.cfg.GMModules {
			home -= m.cfg.GMModules
		}
		mod := home
		if m.nOffline > 0 {
			mod = m.effModule(home)
		}
		w := perModule
		if i < extra {
			w++
		}
		g := mod / groupSpan
		m.scrMod[i] = mod
		m.scrW[i] = w
		m.scrGroup[i] = g
		m.grpWords[g] += w
		m.grpCount[g]++
	}
	pos := 0
	for g := 0; g < nGroups; g++ {
		m.grpOff[g] = pos
		pos += m.grpCount[g]
	}
	for i := 0; i < touched; i++ {
		g := m.scrGroup[i]
		m.order[m.grpOff[g]] = i
		m.grpOff[g]++
	}

	idx := 0
	for g := 0; g < nGroups; g++ {
		cnt := m.grpCount[g]
		if cnt == 0 {
			continue
		}
		groupWords := m.grpWords[g]
		// Forward stage 0: the cluster's port toward group g's subtree.
		a0, q0 := m.net.Forward.Port(0, m.net.FwdStage0Port(ce, g), inject, groupWords)
		qNet += q0
		// Forward stages 1..k-1 and the modules themselves, per module,
		// each subtree traversed as one batched walk.
		var groupReady sim.Time
		for j := 0; j < cnt; j++ {
			i := m.order[idx]
			idx++
			mod := m.scrMod[i]
			w := m.scrW[i]
			home := firstModule + i
			if home >= m.cfg.GMModules {
				home -= m.cfg.GMModules
			}
			if mod != home {
				m.remapped++
			}
			aIn, q := m.net.ReserveFwdSubtree(mod, a0, w)
			qNet += q
			busy := m.moduleBusy(mod, w, mod != home)
			start, end := m.modules.Reserve(mod, aIn, busy)
			qMod += start - aIn
			if end > groupReady {
				groupReady = end
			}
		}
		// Return stages 0..k-2: the group's switch back toward the
		// cluster, then the cluster's subtree, as one batched walk.
		rIn, qr := m.net.ReserveRetGroup(g, ce, groupReady, groupWords)
		qNet += qr
		if rIn > lastReady {
			lastReady = rIn
		}
	}

	// Final return stage: every reply word funnels through the CE's own
	// data link.
	back, qr1 := m.net.Return.Port(m.cfg.NetStages-1, m.net.RetCEPort(ce), lastReady, words)
	qNet += qr1
	done = back + sim.Duration(m.cost.GIFLatency)

	// Per-component queue delays (qNet, qMod) overlap in time across
	// the fanned-out slices, so their sum overstates the damage; the
	// access's contention is its critical-path excess over the
	// uncontended latency.
	_ = qMod
	queued = done - at - m.IdealLatency(words)
	if queued < 0 {
		queued = 0
	}
	if m.rec != nil && queued >= m.rec.SlowStall() {
		m.rec.Instant(obs.TrackMachine, "gm-hot", obs.CatMem, at, int64(firstModule))
	}
	m.stallTotal += done - at
	m.idealTotal += done - at - queued
	return done, queued
}

// ModuleBacklog returns the deepest module queue at time now: the
// largest span by which any module's next-free time exceeds now. It is
// the memory-side hot-spot pressure signal the time-series collector
// samples.
func (m *Memory) ModuleBacklog(now sim.Time) sim.Duration {
	return m.modules.MaxBacklog(now)
}

// IdealLatency returns the zero-contention completion time for an
// access of the given size — the minimum memory access latency of the
// configuration, which the paper notes is identical across all Cedar
// configurations.
func (m *Memory) IdealLatency(words int) sim.Duration {
	if words < 1 {
		words = 1
	}
	touched := words
	if touched > m.cfg.GMModules {
		touched = m.cfg.GMModules
	}
	perModule := (words + touched - 1) / touched
	groupSpan := m.cfg.GroupSpan()
	groups := (touched + groupSpan - 1) / groupSpan
	perGroup := (words + groups - 1) / groups
	inner := int64(m.cfg.NetStages - 1) // stages inside the subtrees
	// Mirror Access with zero queueing: stage-0 burst of the group
	// slice, the module slice through each subtree stage, module
	// occupancy, the group burst back through each return stage, then
	// the full vector through the CE's link; one stage latency per
	// stage per direction. For the two-stage Cedar network this is the
	// seed's 2*perGroup + perModule + words port-cycle formula.
	lat := 2*sim.Duration(m.cost.GIFLatency) +
		sim.Duration(2*int64(m.cfg.NetStages)*m.cost.StageLatency) +
		sim.Duration(int64(perGroup)*m.cost.PortCyclesPerWord) + // fwd stage-0
		sim.Duration(inner*int64(perModule)*m.cost.PortCyclesPerWord) + // fwd stages 1..k-1
		sim.Duration(m.cost.ModuleLatency+int64(perModule)*m.cost.ModuleCyclesPerWord) +
		sim.Duration(inner*int64(perGroup)*m.cost.PortCyclesPerWord) + // ret stages 0..k-2
		sim.Duration(int64(words)*m.cost.PortCyclesPerWord) // CE return link
	return lat
}

// Stats summarizes traffic and contention observed by the memory.
type Stats struct {
	Accesses     uint64
	Words        uint64
	StallTotal   sim.Duration // total request-to-completion time
	IdealTotal   sim.Duration // same, minus queueing
	ModuleDelay  sim.Duration // queueing at modules only
	NetworkDelay sim.Duration // queueing at network ports only
	Remapped     uint64       // slices redirected off offline modules
}

// Stats returns the memory's aggregate statistics.
func (m *Memory) Stats() Stats {
	st := Stats{
		Accesses:   m.accesses,
		Words:      m.words,
		StallTotal: m.stallTotal,
		IdealTotal: m.idealTotal,
		Remapped:   m.remapped,
	}
	st.ModuleDelay = m.modules.DelaySum()
	st.NetworkDelay = m.net.Stats().DelayTotal
	return st
}

// ModuleUtilization returns per-module busy fractions at time now —
// useful for spotting hot modules in tests and the trace tool.
func (m *Memory) ModuleUtilization(now sim.Time) []float64 {
	out := make([]float64, m.modules.Len())
	for i := range out {
		out[i] = m.modules.Utilization(i, now)
	}
	return out
}
