package gmem

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/sim"
)

func mem() *Memory { return New(arch.Cedar32, arch.DefaultCosts()) }

func TestModuleInterleaving(t *testing.T) {
	m := mem()
	for addr := int64(0); addr < 64; addr++ {
		if got, want := m.Module(addr), int(addr%32); got != want {
			t.Fatalf("Module(%d) = %d, want %d", addr, got, want)
		}
	}
}

func TestSingleWordLatencyMatchesIdeal(t *testing.T) {
	m := mem()
	ce := arch.CEID{Cluster: 0, Local: 0}
	done, queued := m.Access(0, ce, 0, 1)
	if queued != 0 {
		t.Fatalf("lone access queued %d", queued)
	}
	if got := sim.Duration(done); got != m.IdealLatency(1) {
		t.Fatalf("latency %d != ideal %d", got, m.IdealLatency(1))
	}
}

func TestVectorSpreadsAcrossModules(t *testing.T) {
	m := mem()
	ce := arch.CEID{Cluster: 0, Local: 0}
	// A 32-word vector touches all modules; each serves one word, so
	// the module phase should take one module's latency, not 32x.
	done32, _ := m.Access(0, ce, 0, 32)
	m2 := mem()
	done1, _ := m2.Access(0, ce, 0, 1)
	// The vector pays port occupancy for 32 words but only one word of
	// occupancy per module: far less than 32 sequential accesses.
	if done32 >= 32*done1 {
		t.Fatalf("vector access not pipelined: 32 words took %d, single took %d", done32, done1)
	}
}

func TestSuccessiveRequestsSameModuleConflict(t *testing.T) {
	// The paper's 1-processor example: two requests in successive
	// cycles to the same module delay the second.
	m := mem()
	ce := arch.CEID{Cluster: 0, Local: 0}
	done1, q1 := m.Access(0, ce, 0, 1)
	_, q2 := m.Access(1, ce, 0, 1) // same module, next cycle
	if q1 != 0 {
		t.Fatalf("first access queued %d", q1)
	}
	if q2 == 0 {
		t.Fatal("second access to same module saw no conflict")
	}
	_ = done1
}

func TestDifferentModulesNoConflict(t *testing.T) {
	m := mem()
	ce := arch.CEID{Cluster: 0, Local: 0}
	ce2 := arch.CEID{Cluster: 1, Local: 0}
	_, q1 := m.Access(0, ce, 0, 1)
	_, q2 := m.Access(0, ce2, 9, 1) // different module, different route
	if q1 != 0 || q2 != 0 {
		t.Fatalf("independent accesses queued %d, %d", q1, q2)
	}
}

func TestContentionGrowsWithCompetitors(t *testing.T) {
	cfg := arch.Cedar32
	var prev sim.Duration = -1
	for _, n := range []int{1, 8, 32} {
		m := New(cfg, arch.DefaultCosts())
		var total sim.Duration
		for g := 0; g < n; g++ {
			_, q := m.Access(0, cfg.CEByGlobal(g%32), int64(g*64), 64)
			total += q
		}
		if total <= prev {
			t.Fatalf("%d competitors: queueing %d not greater than previous %d", n, total, prev)
		}
		prev = total
	}
}

func TestStatsConsistency(t *testing.T) {
	m := mem()
	cfg := arch.Cedar32
	for g := 0; g < 32; g++ {
		m.Access(0, cfg.CEByGlobal(g), 0, 16) // all hit modules 0..15: contention
	}
	st := m.Stats()
	if st.Accesses != 32 || st.Words != 32*16 {
		t.Fatalf("accesses=%d words=%d", st.Accesses, st.Words)
	}
	if st.StallTotal < st.IdealTotal {
		t.Fatal("stall < ideal")
	}
	// Component delays overlap, so their sum bounds the critical-path
	// excess from above.
	if got := st.StallTotal - st.IdealTotal; got > st.ModuleDelay+st.NetworkDelay {
		t.Fatalf("critical-path excess %d exceeds component sum %d",
			got, st.ModuleDelay+st.NetworkDelay)
	}
}

func TestIdealLatencyMonotoneInWords(t *testing.T) {
	m := mem()
	prev := sim.Duration(0)
	for _, w := range []int{1, 2, 8, 32, 64, 256} {
		l := m.IdealLatency(w)
		if l <= prev {
			t.Fatalf("IdealLatency(%d) = %d not > previous %d", w, l, prev)
		}
		prev = l
	}
}

func TestQuickAccessNeverFasterThanIdeal(t *testing.T) {
	// Invariants under arbitrary traffic: queueing is never negative,
	// and an access can never complete faster than streaming its words
	// through the CE's return link plus the fixed path latencies.
	cost := arch.DefaultCosts()
	f := func(ops []struct {
		CE    uint8
		Addr  uint16
		Words uint8
	}) bool {
		m := mem()
		cfg := arch.Cedar32
		at := sim.Time(0)
		for _, op := range ops {
			w := int(op.Words%64) + 1
			ce := cfg.CEByGlobal(int(op.CE) % 32)
			done, queued := m.Access(at, ce, int64(op.Addr), w)
			if queued < 0 {
				return false
			}
			floor := sim.Duration(int64(w)*cost.PortCyclesPerWord) + m.IdealLatency(1)/2
			if done-at < floor {
				return false
			}
			at += 3
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
