// Package cluster assembles the machine family's hardware: a Machine
// of Alliant FX/8-style clusters — as many as the configuration names,
// one to four on the paper's Cedar — each with its configured number
// of computational elements (CEs), a shared data cache, and a
// concurrency-control bus, all connected through the shuffle-exchange
// networks to the interleaved global memory (packages network and
// gmem). Every size here derives from the arch.Config.
//
// A CE couples a simulation process with a time account: every cycle a
// CE spends is charged to a metrics.Category, which is what the
// analysis package later folds into the paper's breakdowns.
package cluster

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/gmem"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Machine is a full Cedar configuration under simulation.
type Machine struct {
	Cfg      arch.Config
	Cost     arch.CostModel
	Kernel   *sim.Kernel
	GM       *gmem.Memory
	Clusters []*Cluster
	// Obs, when non-nil, receives hardware-level observability spans
	// (slow global-memory stalls) and instants (CE fail-stops). Set it
	// before the run starts; nil costs one pointer comparison per
	// access.
	Obs *obs.Recorder

	gmBrk  int64 // bump allocator for global memory, in words
	failed int   // CEs failed via CE.Fail

	// Hot per-CE state, flattened into machine-owned struct-of-arrays
	// indexed by global CE id. The event loop reads and writes these on
	// every Spend, and the concurrency samplers scan them every
	// sampling tick; keeping them in dense arrays (rather than fields
	// of heap-scattered CE objects) is what makes sampling a
	// 1024-4096-CE machine a linear cache-friendly walk.
	busyCat  []metrics.Category // what each CE is doing right now
	ceFailed []bool             // fail-stopped via CE.Fail
	ceSlow   []float64          // clock degradation; 0 or 1 = healthy

	// Contiguous backing storage and cached machine-order views. The
	// views are built once at construction; callers must treat the
	// returned slices as read-only.
	ceBlock   []CE
	acctBlock []metrics.Account
	allCEs    []*CE
	accounts  []*metrics.Account
}

// NewMachine builds the hardware for cfg on the given kernel.
func NewMachine(k *sim.Kernel, cfg arch.Config, cost arch.CostModel) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{
		Cfg:    cfg,
		Cost:   cost,
		Kernel: k,
		GM:     gmem.New(cfg, cost),
	}
	n := cfg.CEs()
	m.busyCat = make([]metrics.Category, n)
	m.ceFailed = make([]bool, n)
	m.ceSlow = make([]float64, n)
	m.ceBlock = make([]CE, n)
	m.acctBlock = metrics.NewAccountBlock(n)
	m.allCEs = make([]*CE, n)
	m.accounts = make([]*metrics.Account, n)
	for c := 0; c < cfg.Clusters; c++ {
		m.Clusters = append(m.Clusters, newCluster(m, c))
	}
	return m
}

// AllocGM reserves words 8-byte words of global memory and returns the
// base address (word-addressed). Allocation is a simple bump pointer;
// the interleaving of the returned region across modules follows from
// the address.
func (m *Machine) AllocGM(words int64) int64 {
	base := m.gmBrk
	m.gmBrk += words
	return base
}

// CE returns the CE with the given machine-wide index.
func (m *Machine) CE(global int) *CE {
	id := m.Cfg.CEByGlobal(global)
	return m.Clusters[id.Cluster].CEs[id.Local]
}

// AllCEs returns every CE in machine order. The slice is a cached
// view built at construction; callers must not mutate it.
func (m *Machine) AllCEs() []*CE { return m.allCEs }

// ActiveCEs returns how many CEs are in an active category right now —
// the machine-wide statfx sampling quantity, computed as one scan of
// the flat busy array.
func (m *Machine) ActiveCEs() int {
	n := 0
	for _, c := range m.busyCat {
		if c.IsActive() {
			n++
		}
	}
	return n
}

// ClusterActiveCEs returns how many of cluster c's CEs are in an
// active category right now. Global CE ids are contiguous per cluster,
// so this is a scan of one dense segment of the busy array.
func (m *Machine) ClusterActiveCEs(c int) int {
	base := c * m.Cfg.CEsPerCluster
	n := 0
	for _, cat := range m.busyCat[base : base+m.Cfg.CEsPerCluster] {
		if cat.IsActive() {
			n++
		}
	}
	return n
}

// LiveCEs returns the number of CEs that have not failed.
func (m *Machine) LiveCEs() int { return m.Cfg.CEs() - m.failed }

// FailedCEs returns the number of CEs failed via CE.Fail.
func (m *Machine) FailedCEs() int { return m.failed }

// Accounts returns every CE's account in machine order. The slice is
// a cached view built at construction; callers must not mutate it.
func (m *Machine) Accounts() []*metrics.Account { return m.accounts }

// Cluster is one Alliant FX/8: up to 8 CEs, a shared data cache, and
// the concurrency-control bus that provides fast intra-cluster loop
// distribution and synchronization.
type Cluster struct {
	Machine *Machine
	ID      int
	CEs     []*CE
	Cache   *cache.Cache
	// ConcBus serializes concurrency-control-bus transactions
	// (CDOALL dispatch, cluster barrier sync).
	ConcBus *sim.Calendar
}

func newCluster(m *Machine, id int) *Cluster {
	cl := &Cluster{
		Machine: m,
		ID:      id,
		Cache:   cache.New(m.Cost),
		ConcBus: sim.NewCalendar(fmt.Sprintf("cbus.c%d", id)),
	}
	for l := 0; l < m.Cfg.CEsPerCluster; l++ {
		cid := arch.CEID{Cluster: id, Local: l}
		g := cid.Global(m.Cfg)
		ce := &m.ceBlock[g]
		*ce = CE{
			ID:      cid,
			Cluster: cl,
			Acct:    &m.acctBlock[g],
			mach:    m,
			global:  g,
		}
		m.busyCat[g] = metrics.CatIdle
		m.allCEs[g] = ce
		m.accounts[g] = ce.Acct
		cl.CEs = append(cl.CEs, ce)
	}
	return cl
}

// Lead returns the cluster's lead CE (local index 0).
func (c *Cluster) Lead() *CE { return c.CEs[0] }

// CE is one computational element: a pipelined vector processor. Its
// Proc field is bound when the runtime spawns the CE's driver process.
type CE struct {
	ID      arch.CEID
	Cluster *Cluster
	Acct    *metrics.Account
	Proc    *sim.Proc

	// The CE's mutable hot state (busy category, failed flag, slow
	// factor) lives in the machine's struct-of-arrays at index global;
	// the CE object itself only carries identity and wiring.
	mach   *Machine
	global int
}

// Machine returns the machine the CE belongs to.
func (ce *CE) Machine() *Machine { return ce.mach }

// Global returns the machine-wide CE index.
func (ce *CE) Global() int { return ce.global }

// Now returns the current virtual time.
func (ce *CE) Now() sim.Time { return ce.Proc.Now() }

// Spend advances the CE d cycles of its own work, charged to category
// cat. A degraded CE (SetSlowFactor) takes proportionally longer.
// While the time passes, Busy reports cat (visible to sampling
// monitors).
func (ce *CE) Spend(d sim.Duration, cat metrics.Category) {
	if s := ce.mach.ceSlow[ce.global]; s > 1 {
		d = sim.Duration(float64(d)*s + 0.5)
	}
	ce.spendRaw(d, cat)
}

// spendRaw advances exactly d cycles with no clock degradation —
// used for waits whose end time is fixed by an external resource.
func (ce *CE) spendRaw(d sim.Duration, cat metrics.Category) {
	if d <= 0 {
		return
	}
	busy := ce.mach.busyCat
	prev := busy[ce.global]
	busy[ce.global] = cat
	ce.Proc.Hold(d)
	busy[ce.global] = prev
	ce.Acct.Add(cat, d)
}

// Busy returns the category the CE is spending time in right now, or
// metrics.CatIdle if it is blocked or between activities.
func (ce *CE) Busy() metrics.Category { return ce.mach.busyCat[ce.global] }

// SpendUntil advances the CE to absolute time t, charged to cat. The
// end time is externally fixed, so clock degradation does not apply.
func (ce *CE) SpendUntil(t sim.Time, cat metrics.Category) {
	if t > ce.Now() {
		ce.spendRaw(t-ce.Now(), cat)
	}
}

// Fail marks the CE fail-stopped and aborts its driver process: the
// process unwinds through its deferred protocol cleanups and never
// runs again. The CE's account freezes at the failure time. Idempotent.
func (ce *CE) Fail() {
	if ce.mach.ceFailed[ce.global] {
		return
	}
	ce.mach.ceFailed[ce.global] = true
	// A fail-stop can land mid-Spend: the abort unwinds out of Hold
	// before spendRaw restores busyCat, which would leave the dead CE
	// permanently "active" to sampling monitors (statfx would keep
	// counting it toward concurrency). Park it explicitly.
	ce.mach.busyCat[ce.global] = metrics.CatIdle
	m := ce.mach
	m.failed++
	m.Obs.Instant(ce.Global(), "ce-fail", obs.CatFault, m.Kernel.Now(), 0)
	if ce.Proc != nil {
		m.Kernel.Abort(ce.Proc)
	}
}

// Failed reports whether the CE has fail-stopped.
func (ce *CE) Failed() bool { return ce.mach.ceFailed[ce.global] }

// SetSlowFactor degrades the CE's clock: every subsequent Spend takes
// factor times as long. Factors <= 1 restore full speed.
func (ce *CE) SetSlowFactor(factor float64) { ce.mach.ceSlow[ce.global] = factor }

// SlowFactor returns the current clock degradation factor (0 or 1 =
// healthy).
func (ce *CE) SlowFactor() float64 { return ce.mach.ceSlow[ce.global] }

// Charge records d cycles against cat without advancing time — used
// when the wait already happened inside a blocking primitive.
func (ce *CE) Charge(d sim.Duration, cat metrics.Category) {
	ce.Acct.Add(cat, d)
}

// GMAccess performs a global memory access of the given word count at
// addr and stalls the CE until the data returns. The stall is charged
// to metrics.CatGMStall. It returns the total stall and the queueing
// (contention) portion.
func (ce *CE) GMAccess(addr int64, words int) (stall, queued sim.Duration) {
	m := ce.Machine()
	now := ce.Now()
	done, q := m.GM.Access(now, ce.ID, addr, words)
	stall = done - now
	if m.Obs != nil && stall >= m.Obs.SlowStall() {
		m.Obs.Span(ce.Global(), "gm-stall", obs.CatMem, now, done, addr)
	}
	ce.SpendUntil(done, metrics.CatGMStall)
	return stall, q
}

// GMAccessAs is GMAccess but charges the stall to an explicit
// category (e.g. CatPickIter for iteration-pickup traffic).
func (ce *CE) GMAccessAs(addr int64, words int, cat metrics.Category) (stall, queued sim.Duration) {
	m := ce.Machine()
	now := ce.Now()
	done, q := m.GM.Access(now, ce.ID, addr, words)
	stall = done - now
	if m.Obs != nil && stall >= m.Obs.SlowStall() {
		m.Obs.Span(ce.Global(), "gm-stall", obs.CatMem, now, done, addr)
	}
	ce.SpendUntil(done, cat)
	return stall, q
}

// CacheAccess references the cluster's shared cache for the given
// word count with the workload's expected hit ratio, stalling the CE
// until the banks deliver (including any queueing behind the cluster's
// other CEs). The stall is charged to metrics.CatCacheStall.
func (ce *CE) CacheAccess(words int, hitRatio float64) sim.Duration {
	now := ce.Now()
	done, _ := ce.Cluster.Cache.Access(now, words, hitRatio)
	stall := done - now
	ce.SpendUntil(done, metrics.CatCacheStall)
	return stall
}

// ConcBusOp performs a concurrency-control-bus transaction of the
// given cost, waiting for the bus if another transaction is in flight,
// and charges the elapsed time to cat.
func (ce *CE) ConcBusOp(cost int64, cat metrics.Category) {
	now := ce.Now()
	_, end := ce.Cluster.ConcBus.Reserve(now, sim.Duration(cost))
	ce.SpendUntil(end, cat)
}
