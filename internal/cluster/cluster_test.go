package cluster

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func machine(cfg arch.Config) (*sim.Kernel, *Machine) {
	k := sim.NewKernel(1)
	return k, NewMachine(k, cfg, arch.DefaultCosts())
}

func TestMachineShape(t *testing.T) {
	_, m := machine(arch.Cedar32)
	if len(m.Clusters) != 4 {
		t.Fatalf("clusters = %d", len(m.Clusters))
	}
	for _, cl := range m.Clusters {
		if len(cl.CEs) != 8 {
			t.Fatalf("cluster %d CEs = %d", cl.ID, len(cl.CEs))
		}
	}
	if got := len(m.AllCEs()); got != 32 {
		t.Fatalf("AllCEs = %d", got)
	}
	if got := len(m.Accounts()); got != 32 {
		t.Fatalf("Accounts = %d", got)
	}
}

func TestCEIndexing(t *testing.T) {
	_, m := machine(arch.Cedar32)
	for g := 0; g < 32; g++ {
		ce := m.CE(g)
		if ce.Global() != g {
			t.Fatalf("CE(%d).Global() = %d", g, ce.Global())
		}
		if ce.Acct.CE() != g {
			t.Fatalf("CE(%d) account bound to %d", g, ce.Acct.CE())
		}
	}
}

func TestAllocGMInterleaves(t *testing.T) {
	_, m := machine(arch.Cedar32)
	a := m.AllocGM(100)
	b := m.AllocGM(100)
	if a == b {
		t.Fatal("allocations overlap")
	}
	if b-a < 100 {
		t.Fatalf("allocation too small: %d..%d", a, b)
	}
}

func TestSpendChargesAccount(t *testing.T) {
	k, m := machine(arch.Cedar1)
	ce := m.CE(0)
	k.Spawn("ce", func(p *sim.Proc) {
		ce.Proc = p
		ce.Spend(100, metrics.CatSerial)
		ce.Spend(50, metrics.CatOSSystem)
		ce.Spend(0, metrics.CatIdle) // no-op
	})
	k.RunAll()
	if got := ce.Acct.Get(metrics.CatSerial); got != 100 {
		t.Fatalf("serial = %d", got)
	}
	if got := ce.Acct.Get(metrics.CatOSSystem); got != 50 {
		t.Fatalf("os-system = %d", got)
	}
	if got := ce.Acct.Total(); got != 150 {
		t.Fatalf("total = %d", got)
	}
	if k.Now() != 150 {
		t.Fatalf("clock = %d", k.Now())
	}
}

func TestGMAccessChargesStall(t *testing.T) {
	k, m := machine(arch.Cedar4)
	ce := m.CE(0)
	var stall sim.Duration
	k.Spawn("ce", func(p *sim.Proc) {
		ce.Proc = p
		stall, _ = ce.GMAccess(0, 8)
	})
	k.RunAll()
	if stall <= 0 {
		t.Fatal("no stall recorded")
	}
	if got := ce.Acct.Get(metrics.CatGMStall); got != stall {
		t.Fatalf("charged %d, stalled %d", got, stall)
	}
}

func TestGMAccessContentionBetweenCEs(t *testing.T) {
	k, m := machine(arch.Cedar8)
	var totalQ sim.Duration
	for g := 0; g < 8; g++ {
		ce := m.CE(g)
		k.Spawn("ce", func(p *sim.Proc) {
			ce.Proc = p
			for i := 0; i < 10; i++ {
				_, q := ce.GMAccess(0, 32) // same region: guaranteed conflicts
				totalQ += q
			}
		})
	}
	k.RunAll()
	if totalQ == 0 {
		t.Fatal("8 CEs hammering one region produced no queueing")
	}
}

func TestConcBusSerializes(t *testing.T) {
	k, m := machine(arch.Cedar8)
	cost := arch.DefaultCosts()
	var finish []sim.Time
	for g := 0; g < 2; g++ {
		ce := m.CE(g)
		k.Spawn("ce", func(p *sim.Proc) {
			ce.Proc = p
			ce.ConcBusOp(cost.ConcBusDispatch, metrics.CatLoopSetup)
			finish = append(finish, p.Now())
		})
	}
	k.RunAll()
	if len(finish) != 2 || finish[0] == finish[1] {
		t.Fatalf("conc bus did not serialize: %v", finish)
	}
}

func TestCacheAccessCharged(t *testing.T) {
	k, m := machine(arch.Cedar4)
	ce := m.CE(1)
	k.Spawn("ce", func(p *sim.Proc) {
		ce.Proc = p
		ce.CacheAccess(64, 0.5)
	})
	k.RunAll()
	if ce.Acct.Get(metrics.CatCacheStall) == 0 {
		t.Fatal("cache stall not charged")
	}
	if ce.Cluster.Cache.StallTotal() == 0 {
		t.Fatal("cluster cache recorded nothing")
	}
}

func TestChargeDoesNotAdvanceTime(t *testing.T) {
	k, m := machine(arch.Cedar1)
	ce := m.CE(0)
	k.Spawn("ce", func(p *sim.Proc) {
		ce.Proc = p
		ce.Charge(500, metrics.CatBarrierWait)
	})
	k.RunAll()
	if k.Now() != 0 {
		t.Fatalf("Charge advanced clock to %d", k.Now())
	}
	if ce.Acct.Get(metrics.CatBarrierWait) != 500 {
		t.Fatal("Charge not recorded")
	}
}
