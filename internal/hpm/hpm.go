// Package hpm models cedarhpm, the non-intrusive hardware performance
// monitor developed at UICSRD that the paper's measurements rely on.
// Instrumented code posts events to hardware trigger points; the
// monitor records (event id, timestamp, processor id) triples into
// trace buffers with 50 ns resolution — which is exactly one cycle of
// this simulation's clock, so timestamps are stored directly in
// cycles.
//
// Recording an event on the real machine costs a single move
// instruction; the model charges nothing, which is the same
// "negligible overhead" the paper claims, taken to its limit.
package hpm

import (
	"fmt"

	"repro/internal/sim"
)

// EventID identifies an instrumented trigger point. The vocabulary
// follows Section 4 of the paper: runtime-library events (a)–(f) plus
// the OS context-switch identifier instrumentation.
type EventID uint8

const (
	// EvLoopPost: the main task encountering an s(x)doall loop and
	// posting it in shared global memory.
	EvLoopPost EventID = iota
	// EvHelperJoin: a helper task joining in the execution of an
	// s(x)doall loop.
	EvHelperJoin
	// EvPickStart / EvPickEnd: entry and exit from the pick next
	// iteration routine.
	EvPickStart
	EvPickEnd
	// EvIterStart / EvIterEnd: start and end of an s(x)doall iteration
	// execution.
	EvIterStart
	EvIterEnd
	// EvBarrierEnter / EvBarrierExit: entry and exit from the
	// s(x)doall-finish-barrier for the main task.
	EvBarrierEnter
	EvBarrierExit
	// EvWaitStart / EvWaitEnd: entry and exit from the wait-for-work
	// routine for the helper tasks.
	EvWaitStart
	EvWaitEnd
	// EvHelperDetach: a helper task detaching from a loop.
	EvHelperDetach
	// EvCtxSwitch: the Xylem context switching identifier.
	EvCtxSwitch
	// EvMCLoopStart / EvMCLoopEnd: application-code instrumentation
	// around main cluster-only loops (footnote 2 of the paper).
	EvMCLoopStart
	EvMCLoopEnd
	// EvSerialStart / EvSerialEnd: serial section boundaries.
	EvSerialStart
	EvSerialEnd
	// EvFaultInject: a fault-plan event fired (degraded-mode runs).
	// Arg is the faults.Kind; CE is the fault's target index.
	EvFaultInject

	// NumEvents is the number of event kinds.
	NumEvents
)

var eventNames = [NumEvents]string{
	"loop-post", "helper-join", "pick-start", "pick-end",
	"iter-start", "iter-end", "barrier-enter", "barrier-exit",
	"wait-start", "wait-end", "helper-detach", "ctx-switch",
	"mcloop-start", "mcloop-end", "serial-start", "serial-end",
	"fault-inject",
}

// String implements fmt.Stringer.
func (e EventID) String() string {
	if e >= NumEvents {
		return fmt.Sprintf("EventID(%d)", uint8(e))
	}
	return eventNames[e]
}

// Record is one trace entry.
type Record struct {
	Event EventID
	CE    int // machine-wide processor id
	At    sim.Time
	Aux   int32 // loop or iteration identifier, construct-dependent
}

// Monitor is the trace collector. A nil *Monitor is valid and records
// nothing (instrumentation compiled in, monitor disarmed).
type Monitor struct {
	k        *sim.Kernel
	capacity int
	mask     uint32 // bit i enables EventID(i)
	buf      []Record
	dropped  uint64
	counts   [NumEvents]uint64
}

// New creates a monitor with the given trace-buffer capacity,
// recording all event kinds.
func New(k *sim.Kernel, capacity int) *Monitor {
	return &Monitor{k: k, capacity: capacity, mask: (1 << NumEvents) - 1}
}

// SetMask restricts recording to event kinds whose bit is set. Counts
// are still maintained for every kind.
func (m *Monitor) SetMask(mask uint32) {
	if m == nil {
		return
	}
	m.mask = mask
}

// MaskFor builds a mask enabling exactly the given events.
func MaskFor(events ...EventID) uint32 {
	var mask uint32
	for _, e := range events {
		mask |= 1 << e
	}
	return mask
}

// Post records an event for the given CE at the current virtual time.
func (m *Monitor) Post(ev EventID, ce int, aux int32) {
	if m == nil {
		return
	}
	m.counts[ev]++
	if m.mask&(1<<ev) == 0 {
		return
	}
	if len(m.buf) >= m.capacity {
		m.dropped++
		return
	}
	m.buf = append(m.buf, Record{Event: ev, CE: ce, At: m.k.Now(), Aux: aux})
}

// Trace returns the recorded events in time order (they are recorded
// in dispatch order, which is time order).
func (m *Monitor) Trace() []Record {
	if m == nil {
		return nil
	}
	return m.buf
}

// Dropped returns how many records were lost to a full buffer.
func (m *Monitor) Dropped() uint64 {
	if m == nil {
		return 0
	}
	return m.dropped
}

// Count returns how many events of the given kind were posted
// (recorded or not).
func (m *Monitor) Count(ev EventID) uint64 {
	if m == nil {
		return 0
	}
	return m.counts[ev]
}

// Offload drains the trace buffer (the paper's end-of-run transfer to
// the analysis workstation) and returns the drained records.
func (m *Monitor) Offload() []Record {
	if m == nil {
		return nil
	}
	out := m.buf
	m.buf = nil
	return out
}

// PairDurations matches start/end event pairs per CE and returns the
// total enclosed time per CE — the trace-analysis primitive used to
// derive the user-time breakdown in Section 6.
func PairDurations(trace []Record, start, end EventID) map[int]sim.Duration {
	open := map[int]sim.Time{}
	total := map[int]sim.Duration{}
	for _, r := range trace {
		switch r.Event {
		case start:
			open[r.CE] = r.At
		case end:
			if t, ok := open[r.CE]; ok {
				total[r.CE] += r.At - t
				delete(open, r.CE)
			}
		}
	}
	return total
}
