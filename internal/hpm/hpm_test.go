package hpm

import (
	"testing"

	"repro/internal/sim"
)

func TestPostAndTrace(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 16)
	k.Spawn("p", func(p *sim.Proc) {
		m.Post(EvLoopPost, 3, 7)
		p.Hold(100)
		m.Post(EvBarrierEnter, 3, 7)
	})
	k.RunAll()
	tr := m.Trace()
	if len(tr) != 2 {
		t.Fatalf("trace length = %d", len(tr))
	}
	if tr[0].Event != EvLoopPost || tr[0].At != 0 || tr[0].CE != 3 || tr[0].Aux != 7 {
		t.Fatalf("record 0 = %+v", tr[0])
	}
	if tr[1].At != 100 {
		t.Fatalf("record 1 at %d", tr[1].At)
	}
}

func TestNilMonitorIsSafe(t *testing.T) {
	var m *Monitor
	m.Post(EvLoopPost, 0, 0) // must not panic
	if m.Trace() != nil || m.Dropped() != 0 || m.Count(EvLoopPost) != 0 {
		t.Fatal("nil monitor returned data")
	}
	m.SetMask(0)
	if m.Offload() != nil {
		t.Fatal("nil offload returned data")
	}
}

func TestBufferDrops(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 2)
	for i := 0; i < 5; i++ {
		m.Post(EvIterStart, 0, int32(i))
	}
	if len(m.Trace()) != 2 {
		t.Fatalf("buffer holds %d", len(m.Trace()))
	}
	if m.Dropped() != 3 {
		t.Fatalf("dropped = %d", m.Dropped())
	}
	if m.Count(EvIterStart) != 5 {
		t.Fatalf("count = %d (counts must survive drops)", m.Count(EvIterStart))
	}
}

func TestMaskFiltersRecordingNotCounting(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 100)
	m.SetMask(MaskFor(EvLoopPost))
	m.Post(EvIterStart, 0, 0)
	m.Post(EvLoopPost, 0, 0)
	if len(m.Trace()) != 1 {
		t.Fatalf("trace = %d records", len(m.Trace()))
	}
	if m.Count(EvIterStart) != 1 {
		t.Fatal("masked event not counted")
	}
}

func TestOffload(t *testing.T) {
	k := sim.NewKernel(1)
	m := New(k, 10)
	m.Post(EvCtxSwitch, 1, 0)
	got := m.Offload()
	if len(got) != 1 {
		t.Fatalf("offloaded %d", len(got))
	}
	if len(m.Trace()) != 0 {
		t.Fatal("buffer not drained")
	}
}

func TestPairDurations(t *testing.T) {
	trace := []Record{
		{Event: EvBarrierEnter, CE: 0, At: 100},
		{Event: EvBarrierEnter, CE: 1, At: 150},
		{Event: EvBarrierExit, CE: 0, At: 300},
		{Event: EvBarrierExit, CE: 1, At: 250},
		{Event: EvBarrierEnter, CE: 0, At: 400},
		{Event: EvBarrierExit, CE: 0, At: 450},
	}
	d := PairDurations(trace, EvBarrierEnter, EvBarrierExit)
	if d[0] != 250 { // 200 + 50
		t.Fatalf("CE 0 total = %d", d[0])
	}
	if d[1] != 100 {
		t.Fatalf("CE 1 total = %d", d[1])
	}
}

func TestPairDurationsUnmatched(t *testing.T) {
	trace := []Record{
		{Event: EvBarrierExit, CE: 0, At: 50}, // exit without enter: ignored
		{Event: EvBarrierEnter, CE: 0, At: 100},
	}
	d := PairDurations(trace, EvBarrierEnter, EvBarrierExit)
	if d[0] != 0 {
		t.Fatalf("unmatched pair produced %d", d[0])
	}
}

func TestEventNames(t *testing.T) {
	for ev := EventID(0); ev < NumEvents; ev++ {
		if ev.String() == "" {
			t.Fatalf("event %d unnamed", ev)
		}
	}
	if EventID(200).String() == "" {
		t.Fatal("out-of-range event unnamed")
	}
}
