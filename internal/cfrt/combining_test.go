package cfrt

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestCombiningTreeShape(t *testing.T) {
	_, _, _, rt := rig(arch.Unclustered32)
	rt.TreeFanout = 4
	tree := rt.newCombTree(32, 4)
	if len(tree.leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(tree.leaves))
	}
	// 8 leaves -> 2 -> 1: three levels, 11 nodes.
	if tree.levels != 3 {
		t.Fatalf("levels = %d, want 3", tree.levels)
	}
	if len(tree.all) != 11 {
		t.Fatalf("nodes = %d, want 11", len(tree.all))
	}
	// Node words live at distinct global addresses.
	seen := map[int64]bool{}
	for _, n := range tree.all {
		if seen[n.addr] {
			t.Fatalf("node address %d reused", n.addr)
		}
		seen[n.addr] = true
	}
	// Leaf needs sum to the CE count.
	total := 0
	for _, l := range tree.leaves {
		total += l.need
	}
	if total != 32 {
		t.Fatalf("leaf capacity = %d, want 32", total)
	}
}

func TestCombiningTreeCompletes(t *testing.T) {
	_, _, _, rt := rig(arch.Unclustered32)
	rt.TreeFanout = 4
	executed := make([]int, 128)
	rt.Run(func(mt *Main) {
		mt.Xdoall(&Loop{Name: "x", Outer: 1, Inner: 128,
			Body: func(ec *ExecCtx, i int) {
				executed[i]++
				ec.Compute(1000)
			}})
	})
	for i, n := range executed {
		if n != 1 {
			t.Fatalf("iteration %d ran %d times", i, n)
		}
	}
	if rt.Statistics().TreeBarriers == 0 {
		t.Fatal("tree barrier never used")
	}
	if rt.Statistics().FlatBarriers != 0 {
		t.Fatal("flat barrier used despite TreeFanout")
	}
}

func TestCombiningTreeReducesHotSpot(t *testing.T) {
	// The tree's whole point (paper refs [15], [16]): spread the
	// barrier traffic so no single port/module melts.
	prog := func(mt *Main) {
		for i := 0; i < 4; i++ {
			mt.Xdoall(&Loop{Name: "x", Outer: 1, Inner: 64,
				Body: func(ec *ExecCtx, i int) { ec.Compute(2000) }})
		}
	}

	_, mFlat, _, rtFlat := rig(arch.Unclustered32)
	rtFlat.Run(prog)
	_, flatHot := mFlat.GM.Net().MaxPortDelay()

	_, mTree, _, rtTree := rig(arch.Unclustered32)
	rtTree.TreeFanout = 4
	rtTree.Run(prog)
	_, treeHot := mTree.GM.Net().MaxPortDelay()

	if treeHot >= flatHot {
		t.Fatalf("combining tree did not reduce the hot spot: flat=%d tree=%d",
			flatHot, treeHot)
	}
}

func TestClusteredConfigIgnoresTree(t *testing.T) {
	_, _, _, rt := rig(arch.Cedar32)
	rt.TreeFanout = 4
	rt.Run(func(mt *Main) {
		mt.Sdoall(&Loop{Name: "l", Outer: 8, Inner: 8,
			Body: func(ec *ExecCtx, i int) { ec.Compute(500) }})
	})
	st := rt.Statistics()
	if st.TreeBarriers != 0 || st.FlatBarriers != 0 {
		t.Fatalf("clustered machine used software barriers: %+v", st)
	}
}

func TestTreeBarrierChargesBarrierWait(t *testing.T) {
	_, m, _, rt := rig(arch.Unclustered32)
	rt.TreeFanout = 8
	rt.Run(func(mt *Main) {
		mt.Xdoall(&Loop{Name: "x", Outer: 1, Inner: 32,
			Body: func(ec *ExecCtx, i int) {
				ec.Compute(int64(500 + 100*(i%8)))
			}})
	})
	var bw sim.Duration
	for _, a := range m.Accounts() {
		bw += a.Get(metrics.CatBarrierWait)
	}
	if bw == 0 {
		t.Fatal("tree barrier charged no barrier-wait time")
	}
}

func TestXdoallChunkingCoversAllIterationsOnce(t *testing.T) {
	for _, chunk := range []int{1, 3, 8, 100} {
		_, _, _, rt := rig(arch.Cedar32)
		rt.XdoallChunk = chunk
		executed := make([]int, 200)
		rt.Run(func(mt *Main) {
			mt.Xdoall(&Loop{Name: "x", Outer: 1, Inner: 200,
				Body: func(ec *ExecCtx, i int) {
					executed[i]++
					ec.Compute(300)
				}})
		})
		for i, n := range executed {
			if n != 1 {
				t.Fatalf("chunk %d: iteration %d executed %d times", chunk, i, n)
			}
		}
	}
}

func TestXdoallChunkingReducesPickOverhead(t *testing.T) {
	pick := func(chunk int) sim.Duration {
		_, m, _, rt := rig(arch.Cedar32)
		rt.XdoallChunk = chunk
		rt.Run(func(mt *Main) {
			mt.Xdoall(&Loop{Name: "x", Outer: 1, Inner: 512,
				Body: func(ec *ExecCtx, i int) { ec.Compute(800) }})
		})
		var total sim.Duration
		for _, a := range m.Accounts() {
			total += a.Get(metrics.CatPickIter)
		}
		return total
	}
	unchunked := pick(1)
	chunked := pick(8)
	if chunked >= unchunked {
		t.Fatalf("chunking did not reduce pick overhead: %d vs %d", chunked, unchunked)
	}
	if chunked > unchunked/2 {
		t.Fatalf("chunk=8 should cut pick overhead substantially: %d vs %d", chunked, unchunked)
	}
}

func TestXdoallChunkingReducesLockTraffic(t *testing.T) {
	picks := func(chunk int) uint64 {
		_, _, _, rt := rig(arch.Cedar32)
		rt.XdoallChunk = chunk
		rt.Run(func(mt *Main) {
			mt.Xdoall(&Loop{Name: "x", Outer: 1, Inner: 256,
				Body: func(ec *ExecCtx, i int) { ec.Compute(500) }})
		})
		return rt.Statistics().XdoallPicks
	}
	if p1, p8 := picks(1), picks(8); p8 >= p1/4 {
		t.Fatalf("lock pickups barely dropped: chunk1=%d chunk8=%d", p1, p8)
	}
}
