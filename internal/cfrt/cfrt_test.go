package cfrt

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/hpm"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/xylem"
)

// rig builds a machine + OS + runtime on the given config.
func rig(cfg arch.Config) (*sim.Kernel, *cluster.Machine, *xylem.OS, *Runtime) {
	k := sim.NewKernel(7)
	m := cluster.NewMachine(k, cfg, arch.DefaultCosts())
	o := xylem.New(m)
	rt := New(m, o, nil)
	return k, m, o, rt
}

func TestSerialOnly(t *testing.T) {
	_, m, _, rt := rig(arch.Cedar8)
	ct := rt.Run(func(mt *Main) {
		mt.Serial(func(ec *ExecCtx) { ec.Compute(10_000) })
	})
	if ct <= 10_000 {
		t.Fatalf("CT = %d, want > 10000 (startup syscalls)", ct)
	}
	lead := m.CE(0)
	if got := lead.Acct.Get(metrics.CatSerial); got != 10_000 {
		t.Fatalf("serial time = %d, want 10000", got)
	}
	// Only the lead executes serial code.
	for g := 1; g < 8; g++ {
		if m.CE(g).Acct.Get(metrics.CatSerial) != 0 {
			t.Fatalf("CE %d ran serial code", g)
		}
	}
}

func TestMCLoopUsesOnlyMainCluster(t *testing.T) {
	_, m, _, rt := rig(arch.Cedar16)
	perCE := make([]sim.Duration, 16)
	rt.Run(func(mt *Main) {
		mt.MCLoop(&Loop{
			Name:  "mc",
			Outer: 1, Inner: 64,
			Body: func(ec *ExecCtx, i int) { ec.Compute(500) },
		})
	})
	var c0, c1 sim.Duration
	for g := 0; g < 16; g++ {
		perCE[g] = m.CE(g).Acct.Get(metrics.CatMCLoop)
		if g < 8 {
			c0 += perCE[g]
		} else {
			c1 += perCE[g]
		}
	}
	if c0 < 64*500 {
		t.Fatalf("main cluster mc-loop time %d < total work %d", c0, 64*500)
	}
	if c1 != 0 {
		t.Fatalf("helper cluster executed mc loop: %d", c1)
	}
	if rt.ClusterMCWall(0) == 0 {
		t.Fatal("mc wall time not tracked")
	}
}

func TestSdoallDistributesAllIterations(t *testing.T) {
	_, _, _, rt := rig(arch.Cedar32)
	executed := make([]int, 16*32)
	ct := rt.Run(func(mt *Main) {
		mt.Sdoall(&Loop{
			Name:  "sx",
			Outer: 16, Inner: 32,
			Body: func(ec *ExecCtx, i int) {
				executed[i]++
				ec.Compute(300)
			},
		})
	})
	for i, n := range executed {
		if n != 1 {
			t.Fatalf("iteration %d executed %d times", i, n)
		}
	}
	if ct <= 0 {
		t.Fatal("no completion time")
	}
	st := rt.Statistics()
	if st.SdoallLoops != 1 || st.HelperJoins != 3 || st.Barriers != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestXdoallDistributesAllIterations(t *testing.T) {
	_, _, _, rt := rig(arch.Cedar32)
	executed := make([]int, 400)
	rt.Run(func(mt *Main) {
		mt.Xdoall(&Loop{
			Name:  "x",
			Outer: 1, Inner: 400,
			Body: func(ec *ExecCtx, i int) {
				executed[i]++
				ec.Compute(200)
			},
		})
	})
	for i, n := range executed {
		if n != 1 {
			t.Fatalf("iteration %d executed %d times", i, n)
		}
	}
	st := rt.Statistics()
	if st.XdoallLoops != 1 {
		t.Fatalf("xdoall loops = %d", st.XdoallLoops)
	}
	// Every pickup plus the no-more-left check per CE.
	if st.XdoallPicks < 400 {
		t.Fatalf("xdoall picks = %d, want >= 400", st.XdoallPicks)
	}
}

func TestSpeedupAcrossConfigs(t *testing.T) {
	run := func(cfg arch.Config) sim.Time {
		_, _, _, rt := rig(cfg)
		return rt.Run(func(mt *Main) {
			for l := 0; l < 4; l++ {
				mt.Sdoall(&Loop{
					Name:  "work",
					Outer: 32, Inner: 64,
					Body: func(ec *ExecCtx, i int) { ec.Compute(400) },
				})
			}
		})
	}
	t1 := run(arch.Cedar1)
	t8 := run(arch.Cedar8)
	t32 := run(arch.Cedar32)
	if t8 >= t1 || t32 >= t8 {
		t.Fatalf("no speedup: t1=%d t8=%d t32=%d", t1, t8, t32)
	}
	s32 := float64(t1) / float64(t32)
	if s32 < 8 {
		t.Fatalf("32-CE speedup %.1f too low for embarrassingly parallel work", s32)
	}
	if s32 > 32 {
		t.Fatalf("32-CE speedup %.1f superlinear", s32)
	}
}

func TestBarrierWaitRecordedForImbalancedLoop(t *testing.T) {
	_, m, _, rt := rig(arch.Cedar16)
	rt.Run(func(mt *Main) {
		mt.Sdoall(&Loop{
			Name:  "imb",
			Outer: 3, Inner: 8, // 3 outer iterations over 2 clusters: guaranteed imbalance
			Body: func(ec *ExecCtx, i int) { ec.Compute(50_000) },
		})
	})
	lead := m.CE(0)
	hw := m.CE(8).Acct.Get(metrics.CatHelperWait)
	bw := lead.Acct.Get(metrics.CatBarrierWait)
	if bw == 0 && hw == 0 {
		t.Fatal("imbalanced loop produced no barrier or helper wait anywhere")
	}
}

func TestHelperWaitDuringSerial(t *testing.T) {
	_, m, _, rt := rig(arch.Cedar32)
	rt.Run(func(mt *Main) {
		mt.Serial(func(ec *ExecCtx) { ec.Compute(200_000) })
		mt.Sdoall(&Loop{Name: "l", Outer: 8, Inner: 8,
			Body: func(ec *ExecCtx, i int) { ec.Compute(100) }})
	})
	// Helper leads (CE 8, 16, 24) spin-waited through the serial
	// section.
	for _, g := range []int{8, 16, 24} {
		if hw := m.CE(g).Acct.Get(metrics.CatHelperWait); hw < 150_000 {
			t.Fatalf("helper lead %d waited only %d during 200k serial", g, hw)
		}
	}
}

func TestXdoallPickupCostGrowsWithCEs(t *testing.T) {
	// The paper's central Section-6 finding: the flat construct's
	// distribution overhead grows with processors because every CE
	// test-and-sets the global iteration lock.
	pickCost := func(cfg arch.Config) float64 {
		_, m, _, rt := rig(cfg)
		rt.Run(func(mt *Main) {
			mt.Xdoall(&Loop{Name: "x", Outer: 1, Inner: 512,
				Body: func(ec *ExecCtx, i int) { ec.Compute(800) }})
		})
		var pick sim.Duration
		for _, a := range m.Accounts() {
			pick += a.Get(metrics.CatPickIter)
		}
		picks := rt.Statistics().XdoallPicks
		return float64(pick) / float64(picks)
	}
	c1 := pickCost(arch.Cedar1)
	c32 := pickCost(arch.Cedar32)
	if c32 <= c1*1.5 {
		t.Fatalf("per-pick cost did not grow: 1p=%.1f 32p=%.1f", c1, c32)
	}
}

func TestSdoallPickupCheaperThanXdoall(t *testing.T) {
	// "with sdoall/cdoalls only 1 processor from each participating
	// cluster issues requests to the global memory ... little
	// overhead."
	overhead := func(f func(mt *Main, l *Loop)) sim.Duration {
		_, m, _, rt := rig(arch.Cedar32)
		l := &Loop{Name: "l", Outer: 32, Inner: 16,
			Body: func(ec *ExecCtx, i int) { ec.Compute(600) }}
		rt.Run(func(mt *Main) { f(mt, l) })
		var pick sim.Duration
		for _, a := range m.Accounts() {
			pick += a.Get(metrics.CatPickIter)
		}
		return pick
	}
	sd := overhead(func(mt *Main, l *Loop) { mt.Sdoall(l) })
	xd := overhead(func(mt *Main, l *Loop) { mt.Xdoall(l) })
	if xd <= sd {
		t.Fatalf("xdoall pickup (%d) not dearer than sdoall (%d)", xd, sd)
	}
}

func TestDoacrossSerializes(t *testing.T) {
	// A CDOACROSS with all work serialized cannot beat serial
	// execution time for the serialized portion.
	_, _, _, rt := rig(arch.Cedar8)
	const iters, serialWork = 32, 1000
	ct := rt.Run(func(mt *Main) {
		mt.MCLoop(&Loop{
			Name:  "acr",
			Outer: 1, Inner: iters,
			SerialCycles: serialWork,
		})
	})
	if ct < iters*serialWork {
		t.Fatalf("CT %d < serialized lower bound %d", ct, iters*serialWork)
	}
}

func TestWallClockTracking(t *testing.T) {
	_, _, _, rt := rig(arch.Cedar32)
	rt.Run(func(mt *Main) {
		mt.Sdoall(&Loop{Name: "a", Outer: 8, Inner: 16,
			Body: func(ec *ExecCtx, i int) { ec.Compute(500) }})
		mt.MCLoop(&Loop{Name: "b", Outer: 1, Inner: 16,
			Body: func(ec *ExecCtx, i int) { ec.Compute(500) }})
	})
	if rt.ClusterSXWall(0) == 0 {
		t.Fatal("main cluster SX wall time missing")
	}
	if rt.ClusterMCWall(0) == 0 {
		t.Fatal("main cluster MC wall time missing")
	}
	for c := 1; c < 4; c++ {
		if rt.ClusterSXWall(c) == 0 {
			t.Fatalf("helper cluster %d SX wall time missing", c)
		}
		if rt.ClusterMCWall(c) != 0 {
			t.Fatalf("helper cluster %d has MC wall time", c)
		}
	}
	if rt.CT() <= rt.ClusterSXWall(0) {
		t.Fatal("CT not greater than loop wall time")
	}
}

func TestHPMEventsRecorded(t *testing.T) {
	k := sim.NewKernel(7)
	m := cluster.NewMachine(k, arch.Cedar16, arch.DefaultCosts())
	o := xylem.New(m)
	mon := hpm.New(k, 1<<16)
	rt := New(m, o, mon)
	rt.Run(func(mt *Main) {
		mt.Sdoall(&Loop{Name: "l", Outer: 4, Inner: 8,
			Body: func(ec *ExecCtx, i int) { ec.Compute(100) }})
	})
	for _, ev := range []hpm.EventID{
		hpm.EvLoopPost, hpm.EvHelperJoin, hpm.EvPickStart, hpm.EvPickEnd,
		hpm.EvBarrierEnter, hpm.EvBarrierExit, hpm.EvHelperDetach,
		hpm.EvIterStart, hpm.EvIterEnd,
	} {
		if mon.Count(ev) == 0 {
			t.Errorf("no %v events recorded", ev)
		}
	}
	// Trace is in time order.
	trace := mon.Trace()
	for i := 1; i < len(trace); i++ {
		if trace[i].At < trace[i-1].At {
			t.Fatal("trace out of order")
		}
	}
}

func TestUnclusteredFlatBarrier(t *testing.T) {
	_, m, _, rt := rig(arch.Unclustered32)
	rt.Run(func(mt *Main) {
		// Sdoall degrades to Xdoall on the flat machine.
		mt.Sdoall(&Loop{Name: "l", Outer: 8, Inner: 16,
			Body: func(ec *ExecCtx, i int) { ec.Compute(2000) }})
	})
	st := rt.Statistics()
	if st.XdoallLoops != 1 || st.SdoallLoops != 0 {
		t.Fatalf("flat machine did not degrade sdoall: %+v", st)
	}
	if st.FlatBarriers == 0 {
		t.Fatal("no flat barrier arrivals")
	}
	// The barrier polling is real global memory traffic.
	var bw sim.Duration
	for _, a := range m.Accounts() {
		bw += a.Get(metrics.CatBarrierWait)
	}
	if bw == 0 {
		t.Fatal("flat barrier charged no barrier-wait time")
	}
}

func TestClusteringBeatsFlatOnBarrierCost(t *testing.T) {
	// Section 6: "What clustering has achieved is to localize the
	// synchronization ... eliminating a considerable amount of network
	// traffic and contention."
	prog := func(mt *Main) {
		for i := 0; i < 6; i++ {
			mt.Sdoall(&Loop{Name: "l", Outer: 8, Inner: 16,
				Body: func(ec *ExecCtx, i int) { ec.Compute(1500) }})
		}
	}
	_, _, _, rtC := rig(arch.Cedar32)
	ctClustered := rtC.Run(prog)
	_, _, _, rtF := rig(arch.Unclustered32)
	ctFlat := rtF.Run(prog)
	if ctFlat <= ctClustered {
		t.Fatalf("flat machine (%d) not slower than clustered (%d)", ctFlat, ctClustered)
	}
}

func TestRunTwicePanics(t *testing.T) {
	_, _, _, rt := rig(arch.Cedar1)
	rt.Run(func(mt *Main) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	rt.Run(func(mt *Main) {})
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		_, _, _, rt := rig(arch.Cedar32)
		return rt.Run(func(mt *Main) {
			mt.Sdoall(&Loop{Name: "l", Outer: 16, Inner: 32,
				Body: func(ec *ExecCtx, i int) {
					ec.Compute(int64(100 + ec.Rand().Intn(200)))
				}})
			mt.Xdoall(&Loop{Name: "x", Outer: 1, Inner: 128,
				Body: func(ec *ExecCtx, i int) { ec.Compute(300) }})
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("runs differ: %d vs %d", a, b)
	}
}

func TestAccountConservation(t *testing.T) {
	// No CE can accumulate more accounted time than the completion
	// time (all charges are real waits or holds within the run).
	_, m, _, rt := rig(arch.Cedar32)
	ct := rt.Run(func(mt *Main) {
		mt.Serial(func(ec *ExecCtx) { ec.Compute(5000) })
		mt.Sdoall(&Loop{Name: "l", Outer: 12, Inner: 24,
			Body: func(ec *ExecCtx, i int) { ec.Compute(700) }})
	})
	for _, a := range m.Accounts() {
		if a.Total() > ct {
			t.Fatalf("CE %d accounted %d > CT %d", a.CE(), a.Total(), ct)
		}
	}
}

func TestMidRunAbortLeavesNoProcesses(t *testing.T) {
	// Failure injection: kill the simulation mid-flight (as a crashed
	// run or an operator interrupt would) and verify the kernel can
	// tear everything down — no leaked goroutines, no panics from
	// processes blocked in locks, conditions, or barriers.
	k := sim.NewKernel(7)
	m := cluster.NewMachine(k, arch.Cedar32, arch.DefaultCosts())
	o := xylem.New(m)
	rt := New(m, o, nil)

	done := make(chan sim.Time, 1)
	go func() {
		done <- rt.Run(func(mt *Main) {
			for i := 0; i < 100; i++ {
				mt.Sdoall(&Loop{Name: "l", Outer: 16, Inner: 32,
					Body: func(ec *ExecCtx, i int) { ec.Compute(1000) }})
			}
		})
	}()
	// rt.Run drives the kernel on the spawning goroutine; wait for it
	// to finish normally — then re-verify Shutdown idempotence.
	ct := <-done
	if ct <= 0 {
		t.Fatal("no completion time")
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("%d processes alive after run", k.LiveProcs())
	}
	k.Shutdown() // must be a harmless no-op now
}

func TestPartialRunThenShutdown(t *testing.T) {
	// Drive the kernel directly and abort at an arbitrary mid-run
	// point: every process must unwind cleanly through whatever
	// primitive it is blocked in.
	k := sim.NewKernel(7)
	m := cluster.NewMachine(k, arch.Cedar32, arch.DefaultCosts())
	o := xylem.New(m)
	rt := New(m, o, nil)
	region := o.NewRegion("d", 32*1024)

	// Spawn the program manually (mirroring Runtime.Run's layout)
	// but only run the clock partway.
	go func() {
		defer func() { recover() }() // rt.Run panics if we Shutdown under it
		rt.Run(func(mt *Main) {
			for i := 0; i < 1000; i++ {
				mt.Xdoall(&Loop{Name: "x", Outer: 1, Inner: 64,
					Body: func(ec *ExecCtx, i int) {
						ec.Compute(2000)
						ec.Global(region, int64(i*64), 32)
					}})
			}
		})
	}()
	// Nothing to synchronize on from outside (Run owns the kernel), so
	// this test only asserts that constructing and abandoning the rig
	// is safe; the deterministic in-kernel abort path is covered by
	// the sim package's Shutdown tests.
}
