package cfrt

import (
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/xylem"
)

// ExecCtx is the execution context a loop body or serial section runs
// in. Its methods charge the CE's time to the right accounting
// category: compute cycles to the section's category (serial,
// main-cluster loop, or s(x)doall iteration), global memory stalls to
// the GM-stall category, cluster memory stalls to the cache-stall
// category, and page faults wherever the OS model puts them.
type ExecCtx struct {
	CE  *cluster.CE
	rt  *Runtime
	cat metrics.Category
}

// Category returns the accounting category user work in this context
// is charged to.
func (ec *ExecCtx) Category() metrics.Category { return ec.cat }

// Runtime returns the runtime this context executes under.
func (ec *ExecCtx) Runtime() *Runtime { return ec.rt }

// Compute spends cycles of pure computation (vector pipelines,
// register arithmetic).
func (ec *ExecCtx) Compute(cycles int64) {
	ec.CE.Spend(sim.Duration(cycles), ec.cat)
}

// Global references words 8-byte words of the region at the given word
// offset: the pages are touched (faulting on first touch) and the data
// moves through the network and global memory, stalling the CE.
func (ec *ExecCtx) Global(r *xylem.Region, offset int64, words int) {
	r.Touch(ec.CE, offset, int64(words))
	ec.CE.GMAccess(r.Addr(offset), words)
}

// ClusterMem references words of cluster memory through the shared
// cache with the given expected hit ratio.
func (ec *ExecCtx) ClusterMem(words int, hitRatio float64) {
	ec.CE.CacheAccess(words, hitRatio)
}

// Poll gives the OS a preemption point (interrupt and context-switch
// delivery).
func (ec *ExecCtx) Poll() {
	ec.rt.OS.Poll(ec.CE)
}

// Rand returns the simulation's deterministic random source, for
// workload models that want body-to-body variance.
func (ec *ExecCtx) Rand() *rand.Rand { return ec.rt.M.Kernel.Rand() }

// Now returns the current virtual time.
func (ec *ExecCtx) Now() sim.Time { return ec.CE.Now() }
