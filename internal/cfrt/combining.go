package cfrt

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Software combining-tree barrier (Yew, Tzeng, Lawrie — the paper's
// reference [16]). On the hypothetical unclustered machine, a flat
// busy-wait barrier makes the barrier word a hot spot: every CE's
// polls pile onto one memory module and its network ports, degrading
// all traffic (Pfister & Norton, reference [15]). A combining tree
// spreads the synchronization across many words on many modules: CEs
// arrive at leaf nodes in groups of Fanout; the last arrival at each
// node ascends, so only a logarithmic cascade reaches the root, and
// each CE polls its own node rather than the shared root.
//
// Set Runtime.TreeFanout > 1 to use the tree instead of the flat
// barrier on unclustered configurations (clustered configurations
// synchronize through the concurrency bus and never need either).

// combNode is one node of the combining tree.
type combNode struct {
	addr     int64
	need     int
	have     int
	parent   *combNode
	released bool
}

// combTree is the per-loop tree instance.
type combTree struct {
	leaves []*combNode
	levels int
	all    []*combNode
}

// newCombTree builds a tree over n CEs with the given fanout, using
// the runtime's preallocated node words (distinct global memory
// addresses, hence distinct modules).
func (rt *Runtime) newCombTree(n, fanout int) *combTree {
	if fanout < 2 {
		fanout = 2
	}
	t := &combTree{}
	// Build level 0 (leaves) upward.
	level := make([]*combNode, 0, (n+fanout-1)/fanout)
	counts := make([]int, (n+fanout-1)/fanout)
	for ce := 0; ce < n; ce++ {
		counts[ce/fanout]++
	}
	for i, c := range counts {
		node := &combNode{addr: rt.treeAddr(len(t.all)), need: c}
		_ = i
		level = append(level, node)
		t.all = append(t.all, node)
	}
	t.leaves = level
	t.levels = 1
	for len(level) > 1 {
		parents := make([]*combNode, 0, (len(level)+fanout-1)/fanout)
		for i := 0; i < len(level); i += fanout {
			end := i + fanout
			if end > len(level) {
				end = len(level)
			}
			p := &combNode{addr: rt.treeAddr(len(t.all)), need: end - i}
			for _, child := range level[i:end] {
				child.parent = p
			}
			parents = append(parents, p)
			t.all = append(t.all, p)
		}
		level = parents
		t.levels++
	}
	return t
}

// treeAddr returns the global memory word backing tree node i,
// allocating the pool lazily.
func (rt *Runtime) treeAddr(i int) int64 {
	for len(rt.treeWords) <= i {
		rt.treeWords = append(rt.treeWords, rt.M.AllocGM(1))
	}
	return rt.treeWords[i]
}

// treeBarrier is the combining-tree arrival for one CE.
func (rt *Runtime) treeBarrier(ce *cluster.CE, al *activeLoop) {
	rt.stats.TreeBarriers++
	rt.ensureArrived(al)
	if al.tree == nil {
		al.tree = rt.newCombTree(rt.M.Cfg.CEs(), rt.TreeFanout)
		// CEs that fail-stopped before the tree existed still count
		// toward its node quotas.
		rt.ghostArrivals(al)
	}
	al.arrived[ce.Global()] = true
	leaf := al.tree.leaves[ce.Global()/maxInt(rt.TreeFanout, 2)]
	rt.treeArrive(ce, al.tree, leaf)
	// Wait for the release to reach the leaf, polling our own node —
	// not a shared hot word.
	for !leaf.released {
		ce.Spend(sim.Duration(rt.Cost.SpinPollInterval), metrics.CatBarrierWait)
		ce.GMAccessAs(leaf.addr, 1, metrics.CatBarrierWait)
	}
}

// treeArrive records an arrival at node; the last arrival ascends.
func (rt *Runtime) treeArrive(ce *cluster.CE, t *combTree, node *combNode) {
	// The arrival increment: one fetch-and-add on the node's word.
	ce.GMAccessAs(node.addr, 1, metrics.CatBarrierWait)
	node.have++
	if node.have < node.need {
		return
	}
	if node.parent != nil {
		rt.treeArrive(ce, t, node.parent)
		return
	}
	// Root complete: release cascades down. The releasing CE writes
	// each level's release words on its way down (modeled as one
	// access per level).
	for i := 0; i < t.levels; i++ {
		ce.GMAccessAs(rt.treeAddr(i), 1, metrics.CatBarrierWait)
	}
	for _, n := range t.all {
		n.released = true
	}
}

// ghostArrive credits a node with an arrival that no CE will make (a
// fail-stopped processor), cascading upward like treeArrive but with
// no memory traffic — the pager/scheduler fixes the quota, not a CE.
func (t *combTree) ghostArrive(node *combNode) {
	node.have++
	if node.have < node.need {
		return
	}
	if node.parent != nil {
		t.ghostArrive(node.parent)
		return
	}
	for _, n := range t.all {
		n.released = true
	}
}

// ghostArrivals applies a ghost arrival for every fail-stopped CE that
// never reached the active loop's combining tree, so the survivors'
// release cascade is not held up by dead processors.
func (rt *Runtime) ghostArrivals(al *activeLoop) {
	if al.tree == nil {
		return
	}
	rt.ensureArrived(al)
	fanout := maxInt(rt.TreeFanout, 2)
	for _, cl := range rt.M.Clusters {
		for _, ce := range cl.CEs {
			g := ce.Global()
			if ce.Failed() && !al.arrived[g] {
				al.arrived[g] = true
				al.tree.ghostArrive(al.tree.leaves[g/fanout])
			}
		}
	}
}
