package cfrt

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/hpm"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Main is the interface the application's main task programs against.
// All methods must be called from the main task (the program function
// passed to Runtime.Run).
type Main struct {
	rt *Runtime
	ec *ExecCtx
}

// Runtime returns the runtime the main task runs on.
func (mt *Main) Runtime() *Runtime { return mt.rt }

// Serial executes a serial code section on the main task's lead CE.
func (mt *Main) Serial(f func(ec *ExecCtx)) {
	rt := mt.rt
	lead := mt.ec.CE
	rt.stats.SerialSecs++
	rt.Mon.Post(hpm.EvSerialStart, lead.Global(), 0)
	f(mt.ec)
	rt.OS.Poll(lead)
	rt.Mon.Post(hpm.EvSerialEnd, lead.Global(), 0)
}

// Sdoall executes a hierarchical SDOALL/CDOALL nest across all
// clusters. On an unclustered configuration it degrades to the flat
// construct (there is no hierarchy to exploit).
func (mt *Main) Sdoall(l *Loop) {
	if mt.rt.M.Cfg.Unclustered {
		mt.Xdoall(l)
		return
	}
	mt.rt.crossClusterLoop(l, Sdoall)
}

// Xdoall executes a flat XDOALL across all CEs of all clusters.
func (mt *Main) Xdoall(l *Loop) {
	mt.rt.crossClusterLoop(l, Xdoall)
}

// MCLoop executes a main-cluster-only CDOALL (or CDOACROSS, if the
// loop has SerialCycles) on the master cluster's CEs.
func (mt *Main) MCLoop(l *Loop) {
	rt := mt.rt
	rc := rt.rcs[0]
	lead := rc.cl.Lead()
	rt.stats.MCLoops++
	rt.Mon.Post(hpm.EvMCLoopStart, lead.Global(), 0)
	lead.Spend(sim.Duration(rt.Cost.LoopSetup), metrics.CatMCLoop)

	t0 := lead.Now()
	body := l.Body
	if l.SerialCycles > 0 {
		body = rt.serializedBody(l, metrics.CatMCLoop)
	}
	job := &clusterJob{
		cat:  metrics.CatMCLoop,
		body: body,
		next: busNext(rc.cl, 0, l.Total()),
	}
	rt.runJob(rc, job)
	rc.MCWall += lead.Now() - t0
	rt.OS.Poll(lead)
	rt.Mon.Post(hpm.EvMCLoopEnd, lead.Global(), 0)
}

// serializedBody wraps a CDOACROSS body: after the concurrent part of
// each iteration, the serialized region runs under the doacross lock.
func (rt *Runtime) serializedBody(l *Loop, cat metrics.Category) func(*ExecCtx, int) {
	lock := sim.NewLock(rt.M.Kernel, "cfrt.doacross."+l.Name)
	inner := l.Body
	serial := sim.Duration(l.SerialCycles)
	return func(ec *ExecCtx, i int) {
		if inner != nil {
			inner(ec, i)
		}
		waited := lock.Acquire(ec.CE.Proc)
		ec.CE.Charge(waited, cat)
		func() {
			defer lock.Release()
			ec.CE.Spend(serial, cat)
		}()
	}
}

// crossClusterLoop posts the loop, participates, and waits at the
// finish barrier — the main task side of both cross-cluster
// constructs.
func (rt *Runtime) crossClusterLoop(l *Loop, c Construct) {
	rc := rt.rcs[0]
	lead := rc.cl.Lead()

	// Set up loop parameters and post the loop in global memory.
	lead.Spend(sim.Duration(rt.Cost.LoopSetup), metrics.CatLoopSetup)
	rt.boardGen++
	al := &activeLoop{gen: rt.boardGen, loop: l, construct: c}
	rt.cur = al
	// Register the loop's source name with the observability layer so
	// spans folded from the trace read "fine-sweep [sdoall/cdoall]"
	// instead of a bare generation number.
	if rt.Obs != nil {
		rt.Obs.NameLoop(int64(al.gen), fmt.Sprintf("%s [%s]", l.Name, c))
	}
	switch c {
	case Sdoall:
		rt.stats.SdoallLoops++
	case Xdoall:
		rt.stats.XdoallLoops++
	}
	rt.Mon.Post(hpm.EvLoopPost, lead.Global(), int32(al.gen))
	lead.GMAccessAs(rt.boardAddr, 1, metrics.CatLoopSetup)
	rt.boardCond.Broadcast() // helpers see the activity lock

	// The main task joins in the execution of the loop.
	t0 := lead.Now()
	switch c {
	case Sdoall:
		rt.runSdoallTask(rc, al)
	case Xdoall:
		rt.runXdoallTask(rc, al)
	}
	rc.SXWall += lead.Now() - t0

	// Spin-wait at the finish barrier for every helper that entered
	// the loop to detach.
	rt.stats.Barriers++
	rt.Mon.Post(hpm.EvBarrierEnter, lead.Global(), int32(al.gen))
	for al.detached < al.joined {
		waited := rt.barrierCond.Wait(lead.Proc)
		lead.Charge(waited, metrics.CatBarrierWait)
	}
	// The final barrier-count read that observes completion.
	lead.GMAccessAs(rt.barrierAddr, 1, metrics.CatBarrierWait)
	rt.Mon.Post(hpm.EvBarrierExit, lead.Global(), int32(al.gen))
	rt.cur = nil
	rt.OS.Poll(lead)
}

// runSdoallTask is one cluster task's share of an SDOALL: self-
// schedule outer iterations one at a time through the global memory
// lock; spread each one's inner CDOALL across the cluster via the
// concurrency bus.
func (rt *Runtime) runSdoallTask(rc *rtCluster, al *activeLoop) {
	lead := rc.cl.Lead()
	l := al.loop
	inner := l.Inner
	if inner < 1 {
		inner = 1
	}
	for {
		// Pick up the next outer iteration (or determine none are
		// left): one request per cluster — little contention.
		rt.Mon.Post(hpm.EvPickStart, lead.Global(), int32(al.gen))
		waited := rt.sdoallLock.Acquire(lead.Proc)
		lead.Charge(waited, metrics.CatPickIter)
		var o int
		func() {
			defer rt.sdoallLock.Release()
			lead.Spend(sim.Duration(rt.Cost.IterDispatchLocal), metrics.CatPickIter)
			lead.GMAccessAs(rt.sdoallAddr, 1, metrics.CatPickIter)
			o = al.outerNext
			al.outerNext++
		}()
		rt.stats.OuterPicks++
		rt.Mon.Post(hpm.EvPickEnd, lead.Global(), int32(al.gen))
		if o >= maxInt(l.Outer, 1) {
			return
		}

		// Inner CDOALL across this cluster's CEs.
		job := &clusterJob{
			cat:  metrics.CatLoopIter,
			body: l.Body,
			next: busNext(rc.cl, o*inner, inner),
		}
		rt.runJob(rc, job)
		rt.OS.Poll(lead)
	}
}

// runXdoallTask is one cluster task's share of an XDOALL: activate all
// CEs of the cluster; every CE competes for flat iterations through
// the global iteration lock.
func (rt *Runtime) runXdoallTask(rc *rtCluster, al *activeLoop) {
	job := &clusterJob{
		cat:  metrics.CatLoopIter,
		body: al.loop.Body,
		next: rt.xdoallNext(al),
		al:   al,
	}
	rt.runJob(rc, job)
}

// xdoallNext builds the flat self-scheduling iterator: each pickup is
// an individual test-and-set on the global iteration lock, the source
// of the construct's contention. With Runtime.XdoallChunk > 1 each
// pickup claims a chunk of iterations, amortizing the lock traffic —
// the classic mitigation for the distribution overhead Section 6
// measures (at the cost of tail imbalance).
func (rt *Runtime) xdoallNext(al *activeLoop) func(ce *cluster.CE) (int, bool) {
	total := al.loop.Total()
	chunk := rt.XdoallChunk
	if chunk < 1 {
		chunk = 1
	}
	claimed := make(map[int][2]int) // per-CE [next, end) of the held chunk
	return func(ce *cluster.CE) (int, bool) {
		g := ce.Global()
		if c := claimed[g]; c[0] < c[1] {
			// Serve from the chunk already claimed: local bookkeeping
			// only, no global traffic.
			i := c[0]
			claimed[g] = [2]int{i + 1, c[1]}
			ce.Spend(sim.Duration(rt.Cost.IterDispatchLocal), metrics.CatPickIter)
			return i, true
		}
		rt.Mon.Post(hpm.EvPickStart, g, int32(al.gen))
		// The critical section around the loop index is held only for
		// the local bookkeeping: the competing test-and-set requests
		// themselves pipeline through the network and serialize at the
		// index word's memory module, which is where the construct's
		// contention lives.
		waited := rt.xdoallLock.Acquire(ce.Proc)
		ce.Charge(waited, metrics.CatPickIter)
		var i int
		func() {
			// Release via defer: a fail-stop mid-window must not
			// leave the iteration lock held forever.
			defer rt.xdoallLock.Release()
			// The serialized window: the test-and-set is owned from
			// the module's grant until the index update commits.
			ce.Spend(sim.Duration(rt.Cost.IterDispatchLocal+rt.Cost.XdoallPickSerial),
				metrics.CatPickIter)
			i = al.flatNext
			al.flatNext += chunk
		}()
		// The winning test-and-set round trip, real global memory
		// traffic on the lock word's module.
		ce.GMAccessAs(rt.xdoallAddr, 1, metrics.CatPickIter)
		rt.stats.XdoallPicks++
		rt.Mon.Post(hpm.EvPickEnd, g, int32(al.gen))
		if i >= total {
			return 0, false
		}
		end := i + chunk
		if end > total {
			end = total
		}
		claimed[g] = [2]int{i + 1, end}
		return i, true
	}
}

// clusterJob is the unit of work a cluster lead dispatches to its CEs
// over the concurrency bus.
type clusterJob struct {
	gen  uint64
	cat  metrics.Category
	body func(ec *ExecCtx, i int)
	next func(ce *cluster.CE) (int, bool)
	al   *activeLoop // the cross-cluster loop this job belongs to, if any

	finished []bool // per local CE index; fail-stopped CEs count as done
	done     *sim.Cond
}

// jobComplete reports whether every CE of the cluster has either
// finished its share of the job or fail-stopped. Counting dead CEs as
// done is what lets a cluster's internal synchronization complete on a
// degraded machine.
func jobComplete(cl *cluster.Cluster, job *clusterJob) bool {
	for li, ce := range cl.CEs {
		if !job.finished[li] && !ce.Failed() {
			return false
		}
	}
	return true
}

// busNext distributes iterations [start, start+count) dynamically: an
// idle CE takes the next iteration through a short concurrency-bus
// transaction. This is the FX/8's hardware self-scheduling — it
// balances uneven iteration times and absorbs per-CE stalls (page
// faults, memory queueing) without any network traffic, and its
// per-iteration cost is a couple of bus cycles, which is why the paper
// does not characterize cluster-level CDOALL distribution as an
// overhead.
func busNext(cl *cluster.Cluster, start, count int) func(ce *cluster.CE) (int, bool) {
	next := 0
	return func(ce *cluster.CE) (int, bool) {
		if next >= count {
			return 0, false
		}
		i := next
		next++
		// The bus grant: a tiny serialized window per dispatch.
		now := ce.Now()
		_, end := cl.ConcBus.Reserve(now, 2)
		ce.SpendUntil(end, metrics.CatLoopIter)
		return start + i, true
	}
}

// runJob dispatches job on the cluster (lead participates) and waits
// for the cluster-internal synchronization to complete.
func (rt *Runtime) runJob(rc *rtCluster, job *clusterJob) {
	lead := rc.cl.Lead()
	rc.jobGen++
	job.gen = rc.jobGen
	job.finished = make([]bool, len(rc.cl.CEs))
	job.done = sim.NewCond(rt.M.Kernel, fmt.Sprintf("cfrt.job.c%d", rc.cl.ID))
	rc.job = job

	// Spread the loop via the concurrency control bus.
	lead.ConcBusOp(rt.Cost.ConcBusDispatch, metrics.CatLoopSetup)
	rc.workCond.Broadcast()

	rt.execJob(lead, job)

	// Wait for the cluster's CEs to synchronize; the lead's wait for
	// its slower siblings is loop execution wall time.
	for !jobComplete(rc.cl, job) {
		waited := job.done.Wait(lead.Proc)
		lead.Charge(waited, job.cat)
	}
}

// execJob is every CE's participation in a cluster job: pull
// iterations until none remain, then synchronize on the concurrency
// bus (or through global memory on an unclustered machine).
func (rt *Runtime) execJob(ce *cluster.CE, job *clusterJob) {
	// Mark this CE's share finished via defer: it holds on fail-stop
	// unwind too (a dead CE counts as done), so the cluster's lead is
	// never left waiting on a processor that will not report in.
	defer func() {
		job.finished[ce.ID.Local] = true
		if jobComplete(ce.Cluster, job) {
			job.done.Broadcast()
		}
	}()
	ec := &ExecCtx{CE: ce, rt: rt, cat: job.cat}
	for {
		i, ok := job.next(ce)
		if !ok {
			break
		}
		rt.Mon.Post(hpm.EvIterStart, ce.Global(), int32(i))
		job.body(ec, i)
		rt.Mon.Post(hpm.EvIterEnd, ce.Global(), int32(i))
		rt.OS.Poll(ce)
	}
	if rt.M.Cfg.Unclustered && job.al != nil {
		if rt.TreeFanout > 1 {
			rt.treeBarrier(ce, job.al)
		} else {
			rt.flatBarrier(ce, job.al)
		}
	} else {
		ce.ConcBusOp(rt.Cost.ConcBusSync, job.cat)
	}
}

// ensureArrived lazily allocates the loop's per-CE arrival map.
func (rt *Runtime) ensureArrived(al *activeLoop) {
	if al.arrived == nil {
		al.arrived = make([]bool, rt.M.Cfg.CEs())
	}
}

// flatBarrierDone reports whether every CE has arrived or fail-stopped
// — the degraded machine's barrier predicate (a dead CE is never
// coming, so survivors must not spin for it).
func (rt *Runtime) flatBarrierDone(al *activeLoop) bool {
	for _, cl := range rt.M.Clusters {
		for _, other := range cl.CEs {
			if !al.arrived[other.Global()] && !other.Failed() {
				return false
			}
		}
	}
	return true
}

// flatBarrier synchronizes all CEs of a cross-cluster loop through a
// busy-waited count in global memory — the "32 independent tasks"
// alternative of Section 6, which turns every loop end into a hot spot
// on the barrier word's memory module.
func (rt *Runtime) flatBarrier(ce *cluster.CE, al *activeLoop) {
	rt.stats.FlatBarriers++
	rt.ensureArrived(al)
	al.arrived[ce.Global()] = true
	// The arrival increment (test-and-set on the barrier word).
	ce.GMAccessAs(rt.barrierAddr, 1, metrics.CatBarrierWait)
	// Poll the count until every live CE in the machine has arrived.
	// Every poll is real global memory traffic on one module.
	for !rt.flatBarrierDone(al) {
		ce.Spend(sim.Duration(rt.Cost.SpinPollInterval), metrics.CatBarrierWait)
		ce.GMAccessAs(rt.barrierAddr, 1, metrics.CatBarrierWait)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
