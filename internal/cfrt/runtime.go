// Package cfrt models the Cedar Fortran runtime library: the
// hierarchical SDOALL/CDOALL construct, the flat XDOALL construct,
// CDOACROSS serialization, main-cluster-only loops, and the helper
// tasks that carry inter-cluster loop-level parallelism (Section 2 of
// the paper).
//
// The protocols are executed, not approximated:
//
//   - The runtime creates a helper task on every cluster other than
//     the master cluster. Helper leads busy-wait for work, checking
//     the sdoall activity lock in global memory.
//   - When the main task encounters an S(X)DOALL it posts it in shared
//     global memory; helper tasks that see the posting join the loop.
//   - SDOALL outer iterations are self-scheduled one at a time to each
//     cluster task through a lock in global memory (one request per
//     cluster — little contention). The inner CDOALL is spread across
//     the cluster's CEs by the concurrency-control bus (no network
//     traffic).
//   - XDOALL activates every CE on every participating cluster; each
//     CE individually issues test-and-set requests to the global
//     iteration lock, which is where the construct's global memory and
//     network contention comes from.
//   - After every cross-cluster loop, the main task spin-waits at a
//     barrier until all helpers that entered the loop detach.
//
// Every cycle spent in these protocols is charged to the
// metrics.Category the paper's Figure 4 breakdown uses, so the
// Section 6 parallelization overheads fall out of the accounts.
package cfrt

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/hpm"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/xylem"
)

// Construct identifies a parallel loop construct.
type Construct int

const (
	// Sdoall is the hierarchical SDOALL/CDOALL nest: outer iterations
	// spread across cluster tasks, inner iterations across each
	// cluster's CEs.
	Sdoall Construct = iota
	// Xdoall is the flat construct: all CEs of all clusters compete
	// for iterations through a global memory lock.
	Xdoall
	// MCLoop is a main-cluster-only CDOALL (no outer spread loop).
	MCLoop
	// MCAcross is a main-cluster-only CDOACROSS: a CDOALL with a
	// serialized region per iteration.
	MCAcross
)

// String implements fmt.Stringer.
func (c Construct) String() string {
	switch c {
	case Sdoall:
		return "sdoall/cdoall"
	case Xdoall:
		return "xdoall"
	case MCLoop:
		return "cdoall(mc)"
	case MCAcross:
		return "cdoacross(mc)"
	}
	return fmt.Sprintf("Construct(%d)", int(c))
}

// Loop describes one parallel loop. The body receives a flat
// iteration index in [0, Outer*Inner); for the hierarchical construct
// the outer index is i/Inner and the inner index i%Inner.
type Loop struct {
	// Name labels the loop in traces.
	Name string
	// Outer is the spread (SDOALL) iteration count. XDOALL and
	// main-cluster loops treat Outer*Inner as a flat count.
	Outer int
	// Inner is the cluster (CDOALL) iteration count per outer
	// iteration.
	Inner int
	// Body executes one iteration, charging its time through the
	// ExecCtx.
	Body func(ec *ExecCtx, i int)
	// SerialCycles, for CDOACROSS loops, is the serialized work per
	// iteration (executed under the serialization lock).
	SerialCycles int64
}

// Total returns the flat iteration count.
func (l *Loop) Total() int {
	o, in := l.Outer, l.Inner
	if o < 1 {
		o = 1
	}
	if in < 1 {
		in = 1
	}
	return o * in
}

// Runtime is the Cedar Fortran runtime bound to one machine and OS.
type Runtime struct {
	M    *cluster.Machine
	OS   *xylem.OS
	Mon  *hpm.Monitor  // may be nil
	Obs  *obs.Recorder // may be nil; receives loop-name metadata
	Cost arch.CostModel

	// Global-memory control words (addresses).
	boardAddr   int64 // sdoall activity lock / loop descriptor
	sdoallAddr  int64 // sdoall outer iteration index
	xdoallAddr  int64 // xdoall iteration index lock word
	barrierAddr int64 // finish-barrier detach count

	sdoallLock *sim.Resource
	xdoallLock *sim.Resource
	treeWords  []int64 // combining-tree node words in global memory

	boardCond   *sim.Cond // helper leads wait for posted work
	barrierCond *sim.Cond // main lead waits for detaches
	boardGen    uint64
	cur         *activeLoop
	shutdown    bool

	rcs      []*rtCluster
	mainDone sim.Time
	started  bool

	// OnFinish, if set, runs (in the main task's context) the moment
	// the program completes — before helper shutdown. Monitors hook it
	// to stop sampling exactly at the completion time.
	OnFinish func()

	// TreeFanout, when > 1 on an unclustered configuration, replaces
	// the flat busy-wait barrier with a software combining tree of the
	// given fanout (the paper's reference [16]).
	TreeFanout int

	// XdoallChunk, when > 1, makes each XDOALL pickup claim a chunk of
	// iterations instead of one, amortizing the global iteration-lock
	// traffic — the standard mitigation for the distribution overhead
	// the paper measures for the flat construct.
	XdoallChunk int

	stats Stats
}

// Stats counts runtime events for reports and tests.
type Stats struct {
	SdoallLoops  uint64
	XdoallLoops  uint64
	MCLoops      uint64
	SerialSecs   uint64
	OuterPicks   uint64
	XdoallPicks  uint64
	HelperJoins  uint64
	Barriers     uint64
	FlatBarriers uint64
	TreeBarriers uint64
}

// rtCluster is per-cluster runtime state.
type rtCluster struct {
	cl       *cluster.Cluster
	workCond *sim.Cond
	job      *clusterJob
	jobGen   uint64

	// Wall-clock time this cluster task spent inside cross-cluster
	// s(x)doall loops and (main cluster only) main-cluster-only loops.
	// These feed the paper's pf fraction (Table 3) and T_p (Table 4).
	SXWall sim.Duration
	MCWall sim.Duration
}

// activeLoop is a loop posted on the work board.
type activeLoop struct {
	gen       uint64
	loop      *Loop
	construct Construct
	outerNext int // next SDOALL outer iteration
	flatNext  int // next XDOALL flat iteration
	joined    int // helper tasks that entered the loop
	detached  int // helper tasks that have detached
	// arrived marks, per machine-wide CE id, arrival at the
	// unclustered-mode loop-end barrier. The barrier is complete when
	// every CE has arrived or fail-stopped.
	arrived []bool
	tree    *combTree
}

// New creates a runtime for the machine and OS.
func New(m *cluster.Machine, o *xylem.OS, mon *hpm.Monitor) *Runtime {
	k := m.Kernel
	rt := &Runtime{
		M:           m,
		OS:          o,
		Mon:         mon,
		Cost:        m.Cost,
		sdoallLock:  sim.NewLock(k, "cfrt.sdoall"),
		xdoallLock:  sim.NewLock(k, "cfrt.xdoall"),
		boardCond:   sim.NewCond(k, "cfrt.board"),
		barrierCond: sim.NewCond(k, "cfrt.barrier"),
	}
	// Control words live in global memory; keep them on distinct
	// modules-ish addresses (they are word-interleaved anyway).
	rt.boardAddr = m.AllocGM(1)
	rt.sdoallAddr = m.AllocGM(1)
	rt.xdoallAddr = m.AllocGM(1)
	rt.barrierAddr = m.AllocGM(1)
	for _, cl := range m.Clusters {
		rt.rcs = append(rt.rcs, &rtCluster{
			cl:       cl,
			workCond: sim.NewCond(k, fmt.Sprintf("cfrt.work.c%d", cl.ID)),
		})
	}
	return rt
}

// Stats returns the runtime's event counters.
func (rt *Runtime) Statistics() Stats { return rt.stats }

// CT returns the application completion time (valid after Run).
func (rt *Runtime) CT() sim.Time { return rt.mainDone }

// ClusterSXWall returns the wall time cluster c spent in cross-cluster
// parallel loops.
func (rt *Runtime) ClusterSXWall(c int) sim.Duration { return rt.rcs[c].SXWall }

// ClusterMCWall returns the wall time cluster c spent in
// main-cluster-only loops (nonzero only for cluster 0).
func (rt *Runtime) ClusterMCWall(c int) sim.Duration { return rt.rcs[c].MCWall }

// Run executes the program on the machine: it spawns a driver process
// per CE, creates the helper tasks, runs program on the main task, and
// drains the simulation. It returns the completion time, panicking on
// simulation errors (see RunErr for the error-returning form).
func (rt *Runtime) Run(program func(mt *Main)) sim.Time {
	ct, err := rt.RunErr(program)
	if err != nil {
		panic(err)
	}
	return ct
}

// RunErr is Run with error reporting: a process panic surfaces as an
// error, a wedged simulation (fault plans can produce one) is
// diagnosed as sim.ErrDeadlock, and an exhausted cycle budget as
// sim.ErrCycleBudget — instead of panicking or hanging. Accounting is
// flushed either way, so the partial run remains inspectable.
func (rt *Runtime) RunErr(program func(mt *Main)) (sim.Time, error) {
	if rt.started {
		return 0, fmt.Errorf("cfrt: Runtime.Run called twice")
	}
	rt.started = true
	k := rt.M.Kernel
	rt.OS.Start()

	for ci, rc := range rt.rcs {
		rc := rc
		for li, ce := range rc.cl.CEs {
			ce := ce
			switch {
			case ci == 0 && li == 0:
				k.Spawn("main."+ce.ID.String(), func(p *sim.Proc) {
					ce.Proc = p
					if ce.Failed() {
						return // fail-stopped before startup
					}
					rt.mainDriver(program)
				})
			case li == 0:
				k.Spawn("helper."+ce.ID.String(), func(p *sim.Proc) {
					ce.Proc = p
					if ce.Failed() {
						return
					}
					rt.helperDriver(rc)
				})
			default:
				k.Spawn("worker."+ce.ID.String(), func(p *sim.Proc) {
					ce.Proc = p
					if ce.Failed() {
						return
					}
					rt.workerDriver(rc, ce)
				})
			}
		}
	}

	_, err := k.RunAllErr()
	rt.OS.Stop() // idempotent; on error paths the main task never got here
	rt.OS.FlushAccounting()
	if k.LiveProcs() > 0 {
		k.Shutdown()
	}
	return rt.mainDone, err
}

// NotifyCEFailure wakes every protocol wait that may have been
// counting on the failed CE — job quorums, the finish barrier, the
// work boards — so survivors re-evaluate their predicates instead of
// waiting on a dead processor. Fault injectors call it right after
// fail-stopping a CE.
func (rt *Runtime) NotifyCEFailure(ce *cluster.CE) {
	rc := rt.rcs[ce.ID.Cluster]
	if rc.job != nil {
		rc.job.done.Broadcast()
	}
	rc.workCond.Broadcast()
	rt.boardCond.Broadcast()
	rt.barrierCond.Broadcast()
	if al := rt.cur; al != nil && al.tree != nil {
		rt.ghostArrivals(al)
	}
}

// mainDriver runs on the master cluster's lead CE.
func (rt *Runtime) mainDriver(program func(mt *Main)) {
	lead := rt.rcs[0].cl.Lead()
	// Task creation: one global system call per helper task ("the
	// runtime library creates a helper task on each cluster other than
	// the master cluster with the help of the OS"), plus the cluster
	// call that starts the main task.
	rt.OS.ClusterSyscall(lead)
	for range rt.rcs[1:] {
		rt.OS.GlobalSyscall(lead)
	}

	mt := &Main{rt: rt, ec: &ExecCtx{CE: lead, rt: rt, cat: metrics.CatSerial}}
	program(mt)

	rt.mainDone = lead.Now()
	rt.shutdown = true
	if rt.OnFinish != nil {
		rt.OnFinish()
	}
	rt.OS.Stop()
	rt.boardCond.Broadcast()
	for _, rc := range rt.rcs {
		rc.workCond.Broadcast()
	}
}

// helperDriver runs on each helper cluster's lead CE: the helper
// task's wait-for-work loop.
func (rt *Runtime) helperDriver(rc *rtCluster) {
	lead := rc.cl.Lead()
	// If this helper fail-stops after joining a loop but before
	// detaching, detach on its behalf during the unwind so the main
	// task's finish barrier does not wait for a dead cluster.
	var inLoop *activeLoop
	defer func() {
		if inLoop != nil {
			inLoop.detached++
			rt.barrierCond.Broadcast()
		}
	}()
	// Task startup on this cluster.
	rt.OS.ClusterSyscall(lead)

	var lastGen uint64
	for !rt.shutdown {
		al := rt.cur
		if al != nil && al.gen > lastGen && al.construct != MCLoop && al.construct != MCAcross {
			lastGen = al.gen
			// Join before any time passes so the main task's barrier
			// is guaranteed to wait for us.
			al.joined++
			inLoop = al
			rt.stats.HelperJoins++
			rt.Mon.Post(hpm.EvHelperJoin, lead.Global(), int32(al.gen))
			// The successful poll of the activity lock and the read of
			// the loop descriptor.
			lead.GMAccessAs(rt.boardAddr, 2, metrics.CatLoopSetup)
			lead.Spend(sim.Duration(rt.Cost.LoopSetup), metrics.CatLoopSetup)

			t0 := lead.Now()
			switch al.construct {
			case Sdoall:
				rt.runSdoallTask(rc, al)
			case Xdoall:
				rt.runXdoallTask(rc, al)
			}
			rc.SXWall += lead.Now() - t0

			// Detach at the finish barrier.
			lead.Spend(sim.Duration(rt.Cost.BarrierDetach), metrics.CatPickIter)
			lead.GMAccessAs(rt.barrierAddr, 1, metrics.CatPickIter)
			rt.Mon.Post(hpm.EvHelperDetach, lead.Global(), int32(al.gen))
			al.detached++
			inLoop = nil
			rt.barrierCond.Signal()
			rt.OS.Poll(lead)
			continue
		}

		rt.Mon.Post(hpm.EvWaitStart, lead.Global(), 0)
		waited := rt.boardCond.Wait(lead.Proc)
		lead.Charge(waited, metrics.CatHelperWait)
		rt.Mon.Post(hpm.EvWaitEnd, lead.Global(), 0)
		rt.OS.Poll(lead)
	}
}

// workerDriver runs on every non-lead CE: execute cluster jobs as the
// lead dispatches them over the concurrency bus.
func (rt *Runtime) workerDriver(rc *rtCluster, ce *cluster.CE) {
	var lastGen uint64
	for !rt.shutdown {
		job := rc.job
		if job != nil && job.gen > lastGen {
			lastGen = job.gen
			rt.execJob(ce, job)
			continue
		}
		waited := rc.workCond.Wait(ce.Proc)
		ce.Charge(waited, metrics.CatIdle)
	}
}
