package perfect

// The textual workload form: a canonical one-document serialization of
// App/Phase so workloads are data, not Go constructors. The format is
// the same strict hand-parsed style as .scenario files (no YAML
// dependency): full-line # comments, top-level `key: value` scalars,
// and `phase: <kind> <name>` lines each opening a block of two-space-
// indented `key: value` lines.
//
//	# FLO52 — transonic flow past an airfoil.
//	workload: FLO52
//	steps: 8
//	data_words: 77824
//	cache_hit_ratio: 0.92
//	phase: serial resid-setup
//	  work: 50000
//	  gm_words: 256
//	phase: sdoall fine-sweep
//	  repeat: 6
//	  outer: 12
//	  inner: 16
//	  work: 500
//	  work_jitter: 0.15
//	  gm_words: 160
//	  clus_words: 300
//
// PrintWorkload emits the canonical form: fixed key order, a field
// present exactly when its value is non-zero. ParseWorkload is its
// strict inverse, so parse(print(app)) is value-identical for every
// representable App and print(parse(doc)) is byte-identical for every
// canonical document — the round-trip contract the committed
// testdata/workloads/*.workload goldens pin.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WorkloadExt is the file extension workload documents use.
const WorkloadExt = ".workload"

// kindNames maps the textual kind tokens to PhaseKind, matching
// PhaseKind.String.
var kindNames = map[string]PhaseKind{
	"serial":       PhaseSerial,
	"sdoall":       PhaseSX,
	"xdoall":       PhaseX,
	"mc-cdoall":    PhaseMC,
	"mc-cdoacross": PhaseMCAcross,
}

// KindByName returns the PhaseKind for a textual kind token
// (PhaseKind.String's vocabulary).
func KindByName(name string) (PhaseKind, bool) {
	k, ok := kindNames[name]
	return k, ok
}

// fnum renders a float in the canonical workload form: the shortest
// representation that round-trips exactly (strconv 'g', precision -1).
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PrintWorkload renders the app as a canonical workload document.
func PrintWorkload(a App) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "workload: %s\n", a.Name)
	if a.Steps != 0 {
		fmt.Fprintf(&b, "steps: %d\n", a.Steps)
	}
	if a.DataWords != 0 {
		fmt.Fprintf(&b, "data_words: %d\n", a.DataWords)
	}
	if a.CacheHitRatio != 0 {
		fmt.Fprintf(&b, "cache_hit_ratio: %s\n", fnum(a.CacheHitRatio))
	}
	for _, p := range a.Phases {
		if p.Name != "" {
			fmt.Fprintf(&b, "phase: %s %s\n", p.Kind, p.Name)
		} else {
			fmt.Fprintf(&b, "phase: %s\n", p.Kind)
		}
		if p.Repeat != 0 {
			fmt.Fprintf(&b, "  repeat: %d\n", p.Repeat)
		}
		if p.Outer != 0 {
			fmt.Fprintf(&b, "  outer: %d\n", p.Outer)
		}
		if p.Inner != 0 {
			fmt.Fprintf(&b, "  inner: %d\n", p.Inner)
		}
		if p.Work != 0 {
			fmt.Fprintf(&b, "  work: %d\n", p.Work)
		}
		if p.WorkJitter != 0 {
			fmt.Fprintf(&b, "  work_jitter: %s\n", fnum(p.WorkJitter))
		}
		if p.GMWords != 0 {
			fmt.Fprintf(&b, "  gm_words: %d\n", p.GMWords)
		}
		if p.GMStride != 0 {
			fmt.Fprintf(&b, "  gm_stride: %d\n", p.GMStride)
		}
		if p.ClusWords != 0 {
			fmt.Fprintf(&b, "  clus_words: %d\n", p.ClusWords)
		}
		if p.SerialCycles != 0 {
			fmt.Fprintf(&b, "  serial_cycles: %d\n", p.SerialCycles)
		}
	}
	return []byte(b.String())
}

// ParseWorkload parses a workload document into an App and validates
// it, so a malformed or self-inconsistent workload is rejected with an
// error naming the offending line or constraint.
func ParseWorkload(data []byte) (App, error) {
	var a App
	var cur *Phase // open phase block, nil at top level
	seen := map[string]bool{}
	var phaseSeen map[string]bool
	for i, raw := range strings.Split(string(data), "\n") {
		lineNo := i + 1
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indented := strings.HasPrefix(line, "  ")
		if indented && cur == nil {
			return a, fmt.Errorf("workload line %d: unexpected indentation (only phase fields indent)", lineNo)
		}
		if indented && line != "  "+trimmed {
			return a, fmt.Errorf("workload line %d: phase fields indent by exactly two spaces", lineNo)
		}
		key, val, ok := strings.Cut(trimmed, ":")
		if !ok {
			return a, fmt.Errorf("workload line %d: %q is not key: value", lineNo, trimmed)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)

		if indented {
			if phaseSeen[key] {
				return a, fmt.Errorf("workload line %d: duplicate phase key %q", lineNo, key)
			}
			phaseSeen[key] = true
			if err := parsePhaseField(cur, key, val); err != nil {
				return a, fmt.Errorf("workload line %d: %s: %v", lineNo, key, err)
			}
			continue
		}

		// A top-level key closes any open phase block.
		cur = nil
		if key != "phase" {
			if seen[key] {
				return a, fmt.Errorf("workload line %d: duplicate key %q", lineNo, key)
			}
			seen[key] = true
		}
		var err error
		switch key {
		case "workload":
			a.Name = val
		case "steps":
			a.Steps, err = strconv.Atoi(val)
		case "data_words":
			a.DataWords, err = strconv.ParseInt(val, 10, 64)
		case "cache_hit_ratio":
			a.CacheHitRatio, err = strconv.ParseFloat(val, 64)
		case "phase":
			kindTok, name, _ := strings.Cut(val, " ")
			kind, ok := KindByName(kindTok)
			if !ok {
				return a, fmt.Errorf("workload line %d: unknown phase kind %q (want %s)",
					lineNo, kindTok, strings.Join(kindTokens(), ", "))
			}
			a.Phases = append(a.Phases, Phase{Kind: kind, Name: strings.TrimSpace(name)})
			cur = &a.Phases[len(a.Phases)-1]
			phaseSeen = map[string]bool{}
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return a, fmt.Errorf("workload line %d: %s: %v", lineNo, key, err)
		}
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a, nil
}

// parsePhaseField sets one phase-block field.
func parsePhaseField(p *Phase, key, val string) error {
	var err error
	switch key {
	case "repeat":
		p.Repeat, err = strconv.Atoi(val)
	case "outer":
		p.Outer, err = strconv.Atoi(val)
	case "inner":
		p.Inner, err = strconv.Atoi(val)
	case "work":
		p.Work, err = strconv.ParseInt(val, 10, 64)
	case "work_jitter":
		p.WorkJitter, err = strconv.ParseFloat(val, 64)
	case "gm_words":
		p.GMWords, err = strconv.Atoi(val)
	case "gm_stride":
		p.GMStride, err = strconv.Atoi(val)
	case "clus_words":
		p.ClusWords, err = strconv.Atoi(val)
	case "serial_cycles":
		p.SerialCycles, err = strconv.ParseInt(val, 10, 64)
	default:
		err = fmt.Errorf("unknown phase key %q", key)
	}
	return err
}

// kindTokens lists the textual phase kinds in declaration order.
func kindTokens() []string {
	return []string{"serial", "sdoall", "xdoall", "mc-cdoall", "mc-cdoacross"}
}

// LoadWorkload reads and parses one .workload file.
func LoadWorkload(path string) (App, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return App{}, err
	}
	a, err := ParseWorkload(data)
	if err != nil {
		return a, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// WriteWorkload writes the app's canonical document, prefixed with an
// optional #-comment block.
func WriteWorkload(path string, a App, comment string) error {
	var b strings.Builder
	if comment != "" {
		for _, l := range strings.Split(comment, "\n") {
			fmt.Fprintf(&b, "# %s\n", l)
		}
	}
	b.Write(PrintWorkload(a))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
