package perfect

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// roundTripApps is every built-in app the textual form must represent
// exactly: the five paper apps plus the synthetic presets.
func roundTripApps() []App {
	return append(Apps(), FineGrained(), CoarseGrained(), SyntheticSpec{}.App())
}

// TestRoundTripValueIdentical: parse(print(app)) reproduces the exact
// App value, including the Repeat:1-vs-unset distinction and float
// fields.
func TestRoundTripValueIdentical(t *testing.T) {
	for _, want := range roundTripApps() {
		doc := PrintWorkload(want)
		got, err := ParseWorkload(doc)
		if err != nil {
			t.Fatalf("%s: parse(print): %v", want.Name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: parse(print(app)) != app\ngot  %+v\nwant %+v", want.Name, got, want)
		}
	}
}

// TestRoundTripByteIdentical: print(parse(doc)) reproduces a canonical
// document byte for byte.
func TestRoundTripByteIdentical(t *testing.T) {
	for _, a := range roundTripApps() {
		doc := PrintWorkload(a)
		parsed, err := ParseWorkload(doc)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if again := PrintWorkload(parsed); string(again) != string(doc) {
			t.Errorf("%s: print(parse(doc)) differs from doc\n--- doc\n%s--- again\n%s", a.Name, doc, again)
		}
	}
}

// TestWorkloadGoldens pins the committed testdata/workloads files to
// the Go constructors: each golden parses to the exact constructor
// value, and its canonical body is byte-identical to PrintWorkload.
func TestWorkloadGoldens(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "workloads", "*"+WorkloadExt))
	if err != nil || len(files) == 0 {
		t.Fatalf("no workload goldens found: %v", err)
	}
	byName := map[string]App{}
	for _, a := range Apps() {
		byName[strings.ToLower(a.Name)] = a
	}
	seen := map[string]bool{}
	for _, f := range files {
		base := strings.TrimSuffix(filepath.Base(f), WorkloadExt)
		want, ok := byName[base]
		if !ok {
			t.Errorf("%s: golden has no matching constructor", f)
			continue
		}
		seen[base] = true
		got, err := LoadWorkload(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: parsed app differs from %s() constructor\ngot  %+v\nwant %+v",
				f, want.Name, got, want)
		}
		// The golden's non-comment body must be byte-identical to the
		// canonical print of the constructor.
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var body []string
		for _, l := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(l), "#") {
				continue
			}
			body = append(body, l)
		}
		if got, want := strings.Join(body, "\n"), string(PrintWorkload(want)); got != want {
			t.Errorf("%s: golden body is not the canonical form\n--- golden\n%s--- canonical\n%s",
				f, got, want)
		}
	}
	for _, a := range Apps() {
		if !seen[strings.ToLower(a.Name)] {
			t.Errorf("no committed golden for %s (want testdata/workloads/%s%s)",
				a.Name, strings.ToLower(a.Name), WorkloadExt)
		}
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown key", "workload: x\nbogus: 1\n", `unknown key "bogus"`},
		{"unknown phase key", "workload: x\nphase: serial s\n  bogus: 1\n", `unknown phase key "bogus"`},
		{"unknown kind", "workload: x\nphase: doall s\n", "unknown phase kind"},
		{"duplicate key", "workload: x\nsteps: 1\nsteps: 2\n", `duplicate key "steps"`},
		{"duplicate phase key", "workload: x\nphase: serial s\n  work: 1\n  work: 2\n", `duplicate phase key "work"`},
		{"stray indent", "workload: x\n  work: 1\n", "unexpected indentation"},
		{"odd indent", "workload: x\nphase: serial s\n   work: 1\n", "exactly two spaces"},
		{"no colon", "workload: x\nsteps\n", "not key: value"},
		{"bad int", "workload: x\nsteps: many\n", "steps"},
	}
	for _, c := range cases {
		_, err := ParseWorkload([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}
}

// TestValidateEdgeCases: each constraint violation is rejected with a
// message naming the constraint.
func TestValidateEdgeCases(t *testing.T) {
	valid := func() App { return FLO52() }
	cases := []struct {
		name   string
		mutate func(*App)
		want   string
	}{
		{"zero steps", func(a *App) { a.Steps = 0 }, "steps >= 1"},
		{"zero data", func(a *App) { a.DataWords = 0 }, "data_words >= 1"},
		{"hit ratio above 1", func(a *App) { a.CacheHitRatio = 1.5 }, "cache_hit_ratio <= 1"},
		{"hit ratio negative", func(a *App) { a.CacheHitRatio = -0.1 }, "cache_hit_ratio <= 1"},
		{"no phases", func(a *App) { a.Phases = nil }, "no phases"},
		{"negative repeat", func(a *App) { a.Phases[1].Repeat = -1 }, "repeat >= 0"},
		{"zero inner", func(a *App) { a.Phases[1].Inner = 0 }, "inner >= 1"},
		{"negative outer", func(a *App) { a.Phases[1].Outer = -1 }, "outer >= 0"},
		{"negative work", func(a *App) { a.Phases[1].Work = -5 }, "work >= 0"},
		{"jitter above 1", func(a *App) { a.Phases[1].WorkJitter = 1.2 }, "work_jitter <= 1"},
		{"jitter negative", func(a *App) { a.Phases[1].WorkJitter = -0.2 }, "work_jitter <= 1"},
		{"negative gm words", func(a *App) { a.Phases[1].GMWords = -1 }, "gm_words >= 0"},
		{"negative gm stride", func(a *App) { a.Phases[1].GMStride = -1 }, "gm_stride >= 0"},
		{"negative clus words", func(a *App) { a.Phases[1].ClusWords = -1 }, "clus_words >= 0"},
		{"negative serial cycles", func(a *App) { a.Phases[1].SerialCycles = -1 }, "serial_cycles >= 0"},
		{"data below footprint", func(a *App) { a.DataWords = 100 }, "below the phase footprint"},
		{"bad kind", func(a *App) { a.Phases[1].Kind = PhaseKind(99) }, "unknown phase kind"},
	}
	for _, c := range cases {
		a := valid()
		c.mutate(&a)
		err := a.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}
	// And the untouched constructors all pass.
	for _, a := range Registry() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

// TestSyntheticSpecDefaults: a zero spec fills every knob with its
// documented default, and explicit values survive.
func TestSyntheticSpecDefaults(t *testing.T) {
	a := SyntheticSpec{}.App()
	if a.Name != "synthetic" {
		t.Errorf("default name = %q, want synthetic", a.Name)
	}
	if a.Steps != 4 {
		t.Errorf("default steps = %d, want 4", a.Steps)
	}
	if len(a.Phases) != 1 {
		t.Fatalf("zero spec phases = %d, want 1 (no serial phase without SerialWork)", len(a.Phases))
	}
	p := a.Phases[0]
	if p.Kind != PhaseSX || p.Repeat != 1 || p.Outer != 4 || p.Inner != 16 || p.Work != 2000 {
		t.Errorf("default loop phase = %+v", p)
	}
	if want := int64(4*16*8) + 4096; a.DataWords != want {
		t.Errorf("default data words = %d, want %d", a.DataWords, want)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("zero spec app invalid: %v", err)
	}

	b := SyntheticSpec{Name: "n", Steps: 9, LoopsPerStep: 3, Kind: PhaseX,
		Outer: 2, Inner: 5, Work: 77, Jitter: 0.3, GMWords: 40, ClusWords: 20,
		SerialWork: 1000, DataWords: 50_000}.App()
	if b.Name != "n" || b.Steps != 9 || b.DataWords != 50_000 {
		t.Errorf("explicit top-level knobs lost: %+v", b)
	}
	if len(b.Phases) != 2 || b.Phases[0].Kind != PhaseSerial || b.Phases[0].Work != 1000 {
		t.Fatalf("SerialWork did not produce a serial phase: %+v", b.Phases)
	}
	lp := b.Phases[1]
	if lp.Kind != PhaseX || lp.Repeat != 3 || lp.Outer != 2 || lp.Inner != 5 ||
		lp.Work != 77 || lp.WorkJitter != 0.3 || lp.GMWords != 40 || lp.ClusWords != 20 {
		t.Errorf("explicit loop knobs lost: %+v", lp)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("explicit spec app invalid: %v", err)
	}
}

func TestResolverForms(t *testing.T) {
	r := Resolver{AllowFiles: true}
	if a, err := r.Resolve("FLO52"); err != nil || a.Name != "FLO52" {
		t.Errorf("name form: %v %v", a.Name, err)
	}
	if a, err := r.Resolve("finegrain"); err != nil || a.Name != "finegrain" {
		t.Errorf("preset form: %v %v", a.Name, err)
	}
	if a, err := r.Resolve(string(PrintWorkload(MDG()))); err != nil || a.Name != "MDG" {
		t.Errorf("inline form: %v %v", a.Name, err)
	}
	if a, err := r.Resolve(filepath.Join("..", "..", "testdata", "workloads", "ocean.workload")); err != nil || a.Name != "OCEAN" {
		t.Errorf("file form: %v %v", a.Name, err)
	}
	if _, err := (Resolver{}).Resolve("x.workload"); err == nil || !strings.Contains(err.Error(), "not allowed") {
		t.Errorf("file form without AllowFiles: %v", err)
	}
	_, err := r.Resolve("NOSUCH")
	if err == nil || !strings.Contains(err.Error(), `unknown app "NOSUCH" (known: FLO52, ARC2D, MDG, OCEAN, ADM, finegrain, coarsegrain)`) {
		t.Errorf("unknown name error = %v", err)
	}
}
