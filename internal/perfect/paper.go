package perfect

// Published measurements from the paper, used to (a) normalize
// 1-processor completion times, (b) drive paper-vs-model comparisons
// in tests, EXPERIMENTS.md, and the table generator.

// PaperRow1 is one application's row group in Table 1.
type PaperRow1 struct {
	CT      map[int]float64 // seconds, by CE count
	Speedup map[int]float64
	Concurr map[int]float64
}

// PaperTable1 is the paper's Table 1.
var PaperTable1 = map[string]PaperRow1{
	"FLO52": {
		CT:      map[int]float64{1: 613, 4: 214, 8: 145, 16: 96, 32: 73},
		Speedup: map[int]float64{4: 2.86, 8: 4.23, 16: 6.39, 32: 8.40},
		Concurr: map[int]float64{4: 3.49, 8: 6.11, 16: 9.66, 32: 14.82},
	},
	"ARC2D": {
		CT:      map[int]float64{1: 2139, 4: 593, 8: 342, 16: 203, 32: 142},
		Speedup: map[int]float64{4: 3.61, 8: 6.25, 16: 10.54, 32: 15.06},
		Concurr: map[int]float64{4: 3.70, 8: 6.82, 16: 12.28, 32: 20.56},
	},
	"MDG": {
		CT:      map[int]float64{1: 4935, 4: 1260, 8: 663, 16: 346, 32: 202},
		Speedup: map[int]float64{4: 3.89, 8: 7.44, 16: 14.26, 32: 24.43},
		Concurr: map[int]float64{4: 3.92, 8: 7.60, 16: 15.14, 32: 28.82},
	},
	"OCEAN": {
		CT:      map[int]float64{1: 2726, 4: 711, 8: 381, 16: 230, 32: 175},
		Speedup: map[int]float64{4: 3.83, 8: 7.16, 16: 11.85, 32: 15.58},
		Concurr: map[int]float64{4: 3.86, 8: 7.53, 16: 12.98, 32: 17.27},
	},
	"ADM": {
		CT:      map[int]float64{1: 707, 4: 208, 8: 121, 16: 83, 32: 80},
		Speedup: map[int]float64{4: 3.40, 8: 5.84, 16: 8.52, 32: 8.84},
		Concurr: map[int]float64{4: 3.46, 8: 6.06, 16: 9.42, 32: 13.56},
	},
}

// PaperTable2Row is one OS activity's (seconds, percent) for the
// 4-cluster Cedar in Table 2.
type PaperTable2Row struct {
	Seconds float64
	Percent float64
}

// PaperTable2 is the paper's Table 2 (FLO52, ARC2D, MDG on 32
// processors). Keys are the paper's row labels.
var PaperTable2 = map[string]map[string]PaperTable2Row{
	"FLO52": {
		"cpi":            {3.48, 4.70},
		"ctx":            {1.68, 2.30},
		"pg flt (c)":     {2.22, 3.04},
		"pg flt (s)":     {1.64, 2.25},
		"Cr Sect (clus)": {1.17, 1.60},
		"Cr Sect (glbl)": {0.23, 0.33},
		"clus syscall":   {0.26, 0.35},
		"glbl syscall":   {0.04, 0.05},
		"ast":            {0.03, 0.04},
	},
	"ARC2D": {
		"cpi":            {5.62, 3.95},
		"ctx":            {2.91, 2.04},
		"pg flt (c)":     {3.73, 2.62},
		"pg flt (s)":     {2.20, 1.54},
		"Cr Sect (clus)": {3.43, 2.77},
		"Cr Sect (glbl)": {1.18, 0.83},
		"clus syscall":   {0.84, 0.59},
		"glbl syscall":   {0.05, 0.04},
		"ast":            {0.18, 0.13},
	},
	"MDG": {
		"cpi":            {2.42, 1.18},
		"ctx":            {3.72, 1.84},
		"pg flt (c)":     {1.54, 0.76},
		"pg flt (s)":     {0.48, 0.23},
		"Cr Sect (clus)": {2.42, 1.18},
		"Cr Sect (glbl)": {0.80, 0.39},
		"clus syscall":   {0.48, 0.28},
		"glbl syscall":   {0.03, 0.01},
		"ast":            {0.05, 0.02},
	},
}

// PaperTable3 is the average parallel loop concurrency (per
// task/cluster). Keyed by app, then CE count; values are per-cluster
// (main first, then helpers).
var PaperTable3 = map[string]map[int][]float64{
	"FLO52": {4: {3.88}, 8: {7.28}, 16: {7.01, 5.93}, 32: {6.85, 6.51, 6.34, 6.25}},
	"ARC2D": {4: {3.94}, 8: {7.64}, 16: {7.63, 7.45}, 32: {7.62, 7.15, 7.16, 7.18}},
	"MDG":   {4: {3.96}, 8: {7.79}, 16: {7.88, 7.84}, 32: {7.98, 7.89, 7.92, 7.95}},
	"OCEAN": {4: {3.92}, 8: {7.88}, 16: {7.42, 7.62}, 32: {5.74, 5.59, 5.61, 5.58}},
	"ADM":   {4: {3.96}, 8: {7.93}, 16: {7.55, 7.45}, 32: {5.89, 5.94, 5.91, 5.83}},
}

// PaperTable4Row is one application's Table 4 data.
type PaperTable4Row struct {
	TpActual map[int]float64 // seconds
	TpIdeal  map[int]float64
	OvCont   map[int]float64 // percent of CT
}

// PaperTable4 is the paper's Table 4.
var PaperTable4 = map[string]PaperTable4Row{
	"FLO52": {
		TpActual: map[int]float64{1: 574, 4: 185, 8: 118, 16: 68, 32: 37},
		TpIdeal:  map[int]float64{4: 148, 8: 79, 16: 45, 32: 22},
		OvCont:   map[int]float64{4: 17, 8: 27, 16: 24, 32: 21},
	},
	"ARC2D": {
		TpActual: map[int]float64{1: 2067, 4: 545, 8: 300, 16: 160, 32: 94},
		TpIdeal:  map[int]float64{4: 525, 8: 270, 16: 139, 32: 74},
		OvCont:   map[int]float64{4: 3.4, 8: 8.8, 16: 10.3, 32: 14.1},
	},
	"MDG": {
		TpActual: map[int]float64{1: 4800, 4: 1228, 8: 643, 16: 330, 32: 178},
		TpIdeal:  map[int]float64{4: 1212, 8: 616, 16: 305, 32: 151},
		OvCont:   map[int]float64{4: 1.3, 8: 4.1, 16: 7.2, 32: 13.4},
	},
	"OCEAN": {
		TpActual: map[int]float64{1: 2647, 4: 701, 8: 360, 16: 195, 32: 133},
		TpIdeal:  map[int]float64{4: 675, 8: 336, 16: 177, 32: 120},
		OvCont:   map[int]float64{4: 3.5, 8: 6.3, 16: 8.0, 32: 7.4},
	},
	"ADM": {
		TpActual: map[int]float64{1: 663, 4: 171, 8: 89, 16: 51, 32: 43},
		TpIdeal:  map[int]float64{4: 167, 8: 84, 16: 46, 32: 33},
		OvCont:   map[int]float64{4: 1.9, 8: 4.1, 16: 5.9, 32: 12.5},
	},
}

// PaperCT1 returns the paper's 1-processor completion time for the
// app, used to normalize reported seconds.
func PaperCT1(app string) float64 {
	if row, ok := PaperTable1[app]; ok {
		return row.CT[1]
	}
	return 0
}
