package perfect

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/cfrt"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/xylem"
)

func TestAllAppsValid(t *testing.T) {
	apps := Apps()
	if len(apps) != 5 {
		t.Fatalf("got %d apps, want 5", len(apps))
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestConstructUsageMatchesPaper(t *testing.T) {
	// "FLO52 only uses the hierarchical SDOALL/CDOALL construct; ADM
	// uses only the flat XDOALL construct; the other applications use
	// both."
	kinds := func(a App) (sx, x bool) {
		for _, p := range a.Phases {
			switch p.Kind {
			case PhaseSX:
				sx = true
			case PhaseX:
				x = true
			}
		}
		return
	}
	for _, a := range Apps() {
		sx, x := kinds(a)
		switch a.Name {
		case "FLO52":
			if !sx || x {
				t.Errorf("FLO52 construct mix wrong: sx=%v x=%v", sx, x)
			}
		case "ADM":
			if sx || !x {
				t.Errorf("ADM construct mix wrong: sx=%v x=%v", sx, x)
			}
		default:
			if !sx || !x {
				t.Errorf("%s should use both constructs: sx=%v x=%v", a.Name, sx, x)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("MDG"); !ok {
		t.Fatal("MDG not found")
	}
	if _, ok := ByName("mdg"); ok {
		t.Fatal("lookup is supposed to be case-sensitive")
	}
	if _, ok := ByName("NOPE"); ok {
		t.Fatal("found a nonexistent app")
	}
}

func TestWithSteps(t *testing.T) {
	a := FLO52().WithSteps(3)
	if a.Steps != 3 {
		t.Fatalf("steps = %d", a.Steps)
	}
	if FLO52().Steps == 3 {
		t.Fatal("WithSteps mutated the original")
	}
}

func TestValidateRejectsBadApps(t *testing.T) {
	bad := []App{
		{Name: "", Steps: 1, DataWords: 10, Phases: []Phase{{Kind: PhaseSerial}}},
		{Name: "x", Steps: 0, DataWords: 10, Phases: []Phase{{Kind: PhaseSerial}}},
		{Name: "x", Steps: 1, DataWords: 0, Phases: []Phase{{Kind: PhaseSerial}}},
		{Name: "x", Steps: 1, DataWords: 10},
		{Name: "x", Steps: 1, DataWords: 10, Phases: []Phase{{Kind: PhaseSX, Inner: 0}}},
		{Name: "x", Steps: 1, DataWords: 10, Phases: []Phase{{Kind: PhaseSX, Inner: 4, WorkJitter: 2}}},
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("bad app %d accepted", i)
		}
	}
}

func TestPaperDataComplete(t *testing.T) {
	for _, a := range Apps() {
		row, ok := PaperTable1[a.Name]
		if !ok {
			t.Fatalf("no Table 1 data for %s", a.Name)
		}
		for _, p := range []int{1, 4, 8, 16, 32} {
			if row.CT[p] <= 0 {
				t.Errorf("%s: missing CT at %dp", a.Name, p)
			}
		}
		if _, ok := PaperTable3[a.Name]; !ok {
			t.Errorf("no Table 3 data for %s", a.Name)
		}
		if _, ok := PaperTable4[a.Name]; !ok {
			t.Errorf("no Table 4 data for %s", a.Name)
		}
	}
	if len(PaperTable2) != 3 {
		t.Errorf("Table 2 covers %d apps, want 3 (FLO52, ARC2D, MDG)", len(PaperTable2))
	}
	if PaperCT1("FLO52") != 613 {
		t.Errorf("FLO52 CT1 = %v", PaperCT1("FLO52"))
	}
	if PaperCT1("NOPE") != 0 {
		t.Error("unknown app returned nonzero CT1")
	}
}

func TestSpeedupsConsistentWithCTs(t *testing.T) {
	// The paper's published speedups equal CT1/CTp within rounding.
	for app, row := range PaperTable1 {
		for _, p := range []int{4, 8, 16, 32} {
			implied := row.CT[1] / row.CT[p]
			if diff := implied - row.Speedup[p]; diff > 0.12 || diff < -0.12 {
				t.Errorf("%s %dp: implied speedup %.2f vs published %.2f",
					app, p, implied, row.Speedup[p])
			}
		}
	}
}

// runApp executes an app (reduced steps) end to end on a config.
func runApp(t *testing.T, a App, cfg arch.Config) sim.Time {
	t.Helper()
	k := sim.NewKernel(11)
	m := cluster.NewMachine(k, cfg, arch.DefaultCosts())
	o := xylem.New(m)
	rt := cfrt.New(m, o, nil)
	region := o.NewRegion(a.Name, a.DataWords)
	return rt.Run(a.Program(region))
}

func TestAppsExecuteOnAllConfigs(t *testing.T) {
	for _, a := range Apps() {
		a := a.WithSteps(1)
		prev := sim.Time(1 << 62)
		for _, cfg := range []arch.Config{arch.Cedar1, arch.Cedar8, arch.Cedar32} {
			ct := runApp(t, a, cfg)
			if ct <= 0 {
				t.Fatalf("%s on %s: no completion time", a.Name, cfg.Name)
			}
			if ct >= prev {
				t.Errorf("%s on %s: CT %d not faster than previous config %d",
					a.Name, cfg.Name, ct, prev)
			}
			prev = ct
		}
	}
}

func TestPhaseSpanGeometry(t *testing.T) {
	p := Phase{Kind: PhaseSX, Outer: 4, Inner: 8, GMWords: 100}
	if got := p.Total(); got != 32 {
		t.Fatalf("total = %d", got)
	}
	if got := p.span(); got != 32*100+100 {
		t.Fatalf("span = %d", got)
	}
	p.GMStride = 20
	if got := p.span(); got != 32*20+100 {
		t.Fatalf("strided span = %d", got)
	}
	p.GMStride = 2 // tiny span hits the floor
	if got := p.span(); got != 512 {
		t.Fatalf("span floor = %d", got)
	}
	s := Phase{Kind: PhaseSerial, GMWords: 64}
	if got := s.span(); got != 512 {
		t.Fatalf("serial span floor = %d", got)
	}
}

func TestQuickSpanPositive(t *testing.T) {
	f := func(outer, inner, gw, stride uint8) bool {
		p := Phase{Kind: PhaseSX, Outer: int(outer), Inner: int(inner),
			GMWords: int(gw), GMStride: int(stride)}
		return p.span() >= 512 && p.Total() >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotalIterationsSane(t *testing.T) {
	for _, a := range Apps() {
		n := a.TotalIterations()
		if n < 1000 || n > 200_000 {
			t.Errorf("%s: %d total iterations (outside sane band)", a.Name, n)
		}
	}
}
