package gen

import "repro/internal/perfect"

// Characteristics summarizes an app along the axes the paper's
// Section 2 uses to describe the Perfect codes: how serial it is, how
// coarse its loop iterations are, how hard it drives global memory,
// how big its footprint is, and how much parallelism each loop
// exposes. The calibration test measures the five paper apps and the
// generated corpus with the same function, so the envelope comparison
// is apples to apples.
type Characteristics struct {
	// SerialFrac is serial compute cycles over total compute cycles
	// for one timestep (the 1-processor Amdahl fraction).
	SerialFrac float64
	// MeanGrain is the iteration-weighted mean per-iteration compute
	// cycles across parallel phases.
	MeanGrain float64
	// GMIntensity is global-memory words referenced per compute cycle
	// across parallel phases.
	GMIntensity float64
	// FootprintWords is the global data footprint.
	FootprintWords int64
	// MeanParallelism is the mean flat iteration count per parallel
	// phase instance — how many iterations a barrier-to-barrier region
	// has to spread over the machine.
	MeanParallelism float64
}

// Characterize measures one app.
func Characterize(a perfect.App) Characteristics {
	var serialWork, parallelWork, gmWords, iters, instances int64
	for i := range a.Phases {
		p := &a.Phases[i]
		rep := int64(p.Repeat)
		if rep < 1 {
			rep = 1
		}
		if p.Kind == perfect.PhaseSerial {
			serialWork += rep * p.Work
			continue
		}
		n := rep * int64(p.Total())
		parallelWork += n * p.Work
		gmWords += n * int64(p.GMWords)
		iters += n
		instances += rep
	}
	c := Characteristics{FootprintWords: a.DataWords}
	if total := serialWork + parallelWork; total > 0 {
		c.SerialFrac = float64(serialWork) / float64(total)
	}
	if iters > 0 {
		c.MeanGrain = float64(parallelWork) / float64(iters)
	}
	if parallelWork > 0 {
		c.GMIntensity = float64(gmWords) / float64(parallelWork)
	}
	if instances > 0 {
		c.MeanParallelism = float64(iters) / float64(instances)
	}
	return c
}

// Envelope is the elementwise min/max of a set of characteristics.
type Envelope struct {
	Min, Max Characteristics
}

// EnvelopeOf computes the envelope of the given apps.
func EnvelopeOf(apps []perfect.App) Envelope {
	var e Envelope
	for i, a := range apps {
		c := Characterize(a)
		if i == 0 {
			e.Min, e.Max = c, c
			continue
		}
		e.Min.SerialFrac = min(e.Min.SerialFrac, c.SerialFrac)
		e.Max.SerialFrac = max(e.Max.SerialFrac, c.SerialFrac)
		e.Min.MeanGrain = min(e.Min.MeanGrain, c.MeanGrain)
		e.Max.MeanGrain = max(e.Max.MeanGrain, c.MeanGrain)
		e.Min.GMIntensity = min(e.Min.GMIntensity, c.GMIntensity)
		e.Max.GMIntensity = max(e.Max.GMIntensity, c.GMIntensity)
		e.Min.FootprintWords = min(e.Min.FootprintWords, c.FootprintWords)
		e.Max.FootprintWords = max(e.Max.FootprintWords, c.FootprintWords)
		e.Min.MeanParallelism = min(e.Min.MeanParallelism, c.MeanParallelism)
		e.Max.MeanParallelism = max(e.Max.MeanParallelism, c.MeanParallelism)
	}
	return e
}
