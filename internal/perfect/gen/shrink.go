package gen

import (
	"repro/internal/ddmin"
	"repro/internal/perfect"
)

// ShrinkApp minimizes a generated app while keep returns true for it —
// the pathology-preserving reducer behind cedarfuzz -apps. The phase
// list is reduced ddmin-style first (whole phases are the biggest
// lever), then each surviving phase's knobs are simplified one at a
// time: repeats and iteration counts halved, work snapped to coarse
// grids, jitter/stride/vector knobs zeroed, and finally the footprint
// dropped to the validation floor. Every candidate is validated before
// keep sees it, so keep may simulate unconditionally.
//
// keep must be deterministic (simulations are). maxRuns bounds the
// keep invocations (<= 0 means a default of 150). Returns the
// minimized app and the number of keep calls spent; if the input
// itself does not satisfy keep, it is returned unchanged.
func ShrinkApp(a perfect.App, keep func(perfect.App) bool, maxRuns int) (perfect.App, int) {
	if maxRuns <= 0 {
		maxRuns = 150
	}
	runs := 0
	test := func(cand perfect.App) bool {
		if runs >= maxRuns || cand.Validate() != nil {
			return false
		}
		runs++
		return keep(cand)
	}
	if !test(a) {
		return a, runs
	}

	// Fewer phases first: dropping a phase shrinks everything it
	// implied (footprint floor, runtime, the textual form).
	a.Phases = ddmin.Minimize(a.Phases, func(cand []perfect.Phase) bool {
		trial := a
		trial.Phases = cand
		return test(trial)
	})

	// Knob simplification. Each try builds a candidate with its own
	// phase array so accepted and rejected mutations never alias.
	try := func(mut func(*perfect.App)) {
		cand := a
		cand.Phases = append([]perfect.Phase(nil), a.Phases...)
		mut(&cand)
		if test(cand) {
			a = cand
		}
	}

	for _, s := range []int{1, 2} {
		if a.Steps > s {
			try(func(c *perfect.App) { c.Steps = s })
		}
	}
	for i := range a.Phases {
		i := i
		// Halve multiplicities while the pathology survives.
		for _, field := range []func(*perfect.Phase) *int{
			func(p *perfect.Phase) *int { return &p.Repeat },
			func(p *perfect.Phase) *int { return &p.Outer },
			func(p *perfect.Phase) *int { return &p.Inner },
		} {
			for field(&a.Phases[i]) != nil && *field(&a.Phases[i]) > 1 {
				before := *field(&a.Phases[i])
				try(func(c *perfect.App) { *field(&c.Phases[i]) /= 2 })
				if *field(&a.Phases[i]) == before {
					break
				}
			}
		}
		for _, grid := range []int64{10_000, 1_000, 100} {
			if w := a.Phases[i].Work / grid * grid; w > 0 && w != a.Phases[i].Work {
				try(func(c *perfect.App) { c.Phases[i].Work = w })
			}
		}
		if a.Phases[i].WorkJitter > 0 {
			try(func(c *perfect.App) { c.Phases[i].WorkJitter = 0 })
		}
		if a.Phases[i].GMStride > 0 {
			try(func(c *perfect.App) { c.Phases[i].GMStride = 0 })
		}
		if a.Phases[i].GMWords > 1 {
			try(func(c *perfect.App) { c.Phases[i].GMWords = 1 })
		}
		if a.Phases[i].ClusWords > 0 {
			try(func(c *perfect.App) { c.Phases[i].ClusWords = 0 })
		}
		if a.Phases[i].SerialCycles > 0 {
			try(func(c *perfect.App) { c.Phases[i].SerialCycles = 0 })
		}
	}
	if floor := a.MinDataWords(); a.DataWords > floor {
		try(func(c *perfect.App) { c.DataWords = floor })
	}
	return a, runs
}
