package gen

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/perfect"
)

// samples returns n apps generated from seeds 1..n of the default
// spec — the corpus the calibration and round-trip tests measure.
func samples(n int) []perfect.App {
	apps := make([]perfect.App, n)
	for i := range apps {
		s := Default()
		s.Seed = int64(i + 1)
		apps[i] = Generate(s)
	}
	return apps
}

// TestGenerateDeterministic: equal specs generate equal apps.
func TestGenerateDeterministic(t *testing.T) {
	s := Default()
	s.Seed = 42
	a, b := Generate(s), Generate(s)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different apps:\n%+v\n%+v", a, b)
	}
	s.Seed = 43
	if c := Generate(s); reflect.DeepEqual(a, c) {
		t.Errorf("different seeds generated the same app")
	}
}

// TestGenerateValid: every sample passes Validate (Generate panics on
// an invalid sample, so running it is the assertion) and is non-empty.
func TestGenerateValid(t *testing.T) {
	for i, a := range samples(200) {
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: %v", i+1, err)
		}
		if len(a.Phases) == 0 || a.TotalIterations() == 0 {
			t.Fatalf("seed %d: degenerate app %+v", i+1, a)
		}
	}
}

// TestCalibrationEnvelope: 100 default-spec samples bracket the five
// Perfect apps' published characteristics on every measured axis —
// the generated corpus reaches both below and above the paper's range,
// so sweeps over it cover the space the paper's points live in.
func TestCalibrationEnvelope(t *testing.T) {
	paper := EnvelopeOf(perfect.Apps())
	corpus := EnvelopeOf(samples(100))

	check := func(axis string, corpusMin, paperMin, paperMax, corpusMax float64) {
		t.Helper()
		if corpusMin > paperMin || corpusMax < paperMax {
			t.Errorf("%s: corpus [%g, %g] does not bracket paper [%g, %g]",
				axis, corpusMin, corpusMax, paperMin, paperMax)
		}
	}
	check("serial fraction", corpus.Min.SerialFrac, paper.Min.SerialFrac,
		paper.Max.SerialFrac, corpus.Max.SerialFrac)
	check("mean grain", corpus.Min.MeanGrain, paper.Min.MeanGrain,
		paper.Max.MeanGrain, corpus.Max.MeanGrain)
	check("gm intensity", corpus.Min.GMIntensity, paper.Min.GMIntensity,
		paper.Max.GMIntensity, corpus.Max.GMIntensity)
	check("footprint words", float64(corpus.Min.FootprintWords), float64(paper.Min.FootprintWords),
		float64(paper.Max.FootprintWords), float64(corpus.Max.FootprintWords))
	check("mean parallelism", corpus.Min.MeanParallelism, paper.Min.MeanParallelism,
		paper.Max.MeanParallelism, corpus.Max.MeanParallelism)
}

// TestRoundTripGeneratedSamples: parse(print(app)) is byte- and
// value-identical for 100 seeded generator samples (the generator leg
// of the round-trip property; the five paper apps and the presets are
// covered in package perfect).
func TestRoundTripGeneratedSamples(t *testing.T) {
	for i, want := range samples(100) {
		doc := perfect.PrintWorkload(want)
		got, err := perfect.ParseWorkload(doc)
		if err != nil {
			t.Fatalf("seed %d: parse(print): %v", i+1, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("seed %d: parse(print(app)) != app\ngot  %+v\nwant %+v", i+1, got, want)
		}
		if again := perfect.PrintWorkload(got); string(again) != string(doc) {
			t.Errorf("seed %d: print(parse(doc)) != doc", i+1)
		}
	}
}

// TestSpecStringRoundTrip: ParseSpec(s.String()) == s for defaults and
// for a fully non-default spec.
func TestSpecStringRoundTrip(t *testing.T) {
	specs := []Spec{
		func() Spec { s := Default(); s.Seed = 7; return s }(),
		{Seed: 41, Name: "storm", Steps: 2, PhaseMin: 3, PhaseMax: 6, Mix: "xdoall",
			Gran: Range{500, 8000}, Jitter: 0.25, Serial: Range{0.001, 0.05},
			Pages: Range{16, 64}, GM: Range{0.05, 0.2}, Hot: 1},
	}
	for _, want := range specs {
		str := want.String()
		got, err := ParseSpec(str)
		if err != nil {
			t.Fatalf("%s: %v", str, err)
		}
		if got != want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", str, got, want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"bogus=1", `unknown key "bogus"`},
		{"seed", "not key=value"},
		{"mix=nope", "unknown mix"},
		{"gran=5-2", "max < min"},
		{"jitter=2", "jitter <= 1"},
		{"serial=0.5-1.5", "serial < 1"},
		{"phases=0-3", "1 <= min <= max"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %v does not mention %q", c.spec, err, c.want)
		}
	}
}

// TestResolverGenForm: the gen: hook is installed by this package's
// init, so a Resolver materializes gen: sources deterministically.
func TestResolverGenForm(t *testing.T) {
	var r perfect.Resolver
	a, err := r.Resolve("gen:seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "gen7" {
		t.Errorf("name = %q, want gen7", a.Name)
	}
	b, err := r.Resolve("gen:seed=7")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("gen: resolution is not deterministic")
	}
	if _, err := r.Resolve("gen:bogus=1"); err == nil {
		t.Errorf("bad spec resolved without error")
	}
}

// TestHotSpecBiasesStride: with hot=1, every parallel phase's stride
// is a non-zero multiple of the 32-module interleave with a narrow
// reference vector — the shape that concentrates global traffic on
// one or two modules.
func TestHotSpecBiasesStride(t *testing.T) {
	s := Default()
	s.Seed = 5
	s.Hot = 1
	a := Generate(s)
	parallel := 0
	for _, p := range a.Phases {
		if p.Kind == perfect.PhaseSerial {
			continue
		}
		parallel++
		if p.GMStride == 0 || p.GMStride%32 != 0 {
			t.Errorf("phase %s: stride %d is not a 32-multiple hot-spot stride", p.Name, p.GMStride)
		}
		if p.GMWords > 4 {
			t.Errorf("phase %s: gm_words %d too wide for a hot-spot phase", p.Name, p.GMWords)
		}
	}
	if parallel == 0 {
		t.Fatal("no parallel phases generated")
	}
}
