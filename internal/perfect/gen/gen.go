// Package gen is a seed-deterministic parametric generator for
// perfect.App workloads: it samples the space the five Perfect apps
// are five points of — construct mix, granularity and jitter
// distributions, serial fraction, footprint pages, global-memory
// intensity and stride, phase count — so sweeps and fuzzing can cover
// app space the way they already cover fault-schedule space.
//
// The distributions are calibrated so that a modest sample (100 apps
// from the default spec) brackets the published Perfect
// characteristics on every axis Characterize measures; the calibration
// test in this package asserts that envelope.
//
// A generator invocation is written as a gen: spec — a comma-separated
// key=value list after the "gen:" prefix:
//
//	gen:seed=7
//	gen:seed=41,phases=3-6,gran=500-8000,serial=0.001-0.05,hot=1
//
// Importing this package (a blank import suffices) registers the spec
// materializer with perfect.RegisterGen, which is what lets
// `perfect.Resolver` resolve gen: sources.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/perfect"
)

func init() {
	perfect.RegisterGen(func(spec string) (perfect.App, error) {
		s, err := ParseSpec(spec)
		if err != nil {
			return perfect.App{}, err
		}
		return Generate(s), nil
	})
}

// Range is an inclusive numeric interval.
type Range struct{ Min, Max float64 }

func (r Range) String() string {
	if r.Min == r.Max {
		return num(r.Min)
	}
	return num(r.Min) + "-" + num(r.Max)
}

func num(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Spec is one point-distribution over app space. The zero value of
// each field means "use the calibrated default" (see Default).
type Spec struct {
	// Seed drives every sampling decision; equal specs generate equal
	// apps.
	Seed int64
	// Name labels the generated app (default "gen<seed>").
	Name string
	// Steps is the timestep count (default 4; generated structure is
	// per-step identical, so more steps only lengthen the run).
	Steps int
	// PhaseMin/PhaseMax bound the parallel phase count per step.
	PhaseMin, PhaseMax int
	// Mix names the construct mix: "paper" (SDOALL-heavy with XDOALL
	// and main-cluster phases, like the five apps), "sdoall", "xdoall",
	// or "mc".
	Mix string
	// Gran is the per-iteration work distribution (compute cycles),
	// sampled log-uniformly.
	Gran Range
	// Jitter is the upper bound of the per-phase work jitter (each
	// phase's jitter is uniform in [0, Jitter]).
	Jitter float64
	// Serial is the serial-fraction distribution (serial compute /
	// total compute per step), sampled with a cube transform so small
	// fractions — where the paper's apps live — are dense.
	Serial Range
	// Pages is the footprint distribution in 512-word pages, sampled
	// log-uniformly.
	Pages Range
	// GM is the global-memory intensity distribution (GM words per
	// compute cycle in parallel phases), sampled log-uniformly.
	GM Range
	// Hot biases strides toward global-memory module hot-spots: each
	// parallel phase gets (with probability Hot) a stride that is a
	// multiple of the 32-module interleave with a narrow reference
	// vector, concentrating traffic on one or two modules.
	Hot float64
}

// Default is the calibrated sampling envelope: wide enough that 100
// seeds bracket the five Perfect apps on every measured axis, narrow
// enough that most samples are plausible loop-structure programs.
func Default() Spec {
	return Spec{
		Steps:    4,
		PhaseMin: 2, PhaseMax: 6,
		Mix:    "paper",
		Gran:   Range{200, 20000},
		Jitter: 0.5,
		Serial: Range{0, 0.15},
		Pages:  Range{4, 1024},
		GM:     Range{0.01, 0.5},
	}
}

// mixes maps mix names to the parallel-phase kind palette the
// generator draws from (serial phases are added by the serial-fraction
// knob, not the mix).
var mixes = map[string][]perfect.PhaseKind{
	"paper":  {perfect.PhaseSX, perfect.PhaseSX, perfect.PhaseSX, perfect.PhaseX, perfect.PhaseX, perfect.PhaseMC, perfect.PhaseMCAcross},
	"sdoall": {perfect.PhaseSX},
	"xdoall": {perfect.PhaseX},
	"mc":     {perfect.PhaseMC, perfect.PhaseMCAcross},
}

// MixNames lists the valid mix names.
func MixNames() []string {
	names := make([]string, 0, len(mixes))
	for n := range mixes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseSpec parses the gen: spec body (without the prefix): a
// comma-separated key=value list. Unset keys keep their Default
// values.
func ParseSpec(s string) (Spec, error) {
	sp := Default()
	s = strings.TrimSpace(strings.TrimPrefix(s, perfect.GenPrefix))
	if s == "" {
		return sp, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return sp, fmt.Errorf("gen: %q is not key=value", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			sp.Seed, err = strconv.ParseInt(val, 10, 64)
		case "name":
			sp.Name = val
		case "steps":
			sp.Steps, err = strconv.Atoi(val)
		case "phases":
			var r Range
			r, err = parseRange(val)
			sp.PhaseMin, sp.PhaseMax = int(r.Min), int(r.Max)
		case "mix":
			if _, ok := mixes[val]; !ok {
				err = fmt.Errorf("unknown mix %q (want %s)", val, strings.Join(MixNames(), ", "))
			}
			sp.Mix = val
		case "gran":
			sp.Gran, err = parseRange(val)
		case "jitter":
			sp.Jitter, err = strconv.ParseFloat(val, 64)
		case "serial":
			sp.Serial, err = parseRange(val)
		case "pages":
			sp.Pages, err = parseRange(val)
		case "gm":
			sp.GM, err = parseRange(val)
		case "hot":
			sp.Hot, err = strconv.ParseFloat(val, 64)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return sp, fmt.Errorf("gen: %s: %v", key, err)
		}
	}
	if err := sp.validate(); err != nil {
		return sp, err
	}
	return sp, nil
}

// parseRange parses "lo-hi" or a single number (a point range).
func parseRange(s string) (Range, error) {
	lo, hi, ok := strings.Cut(s, "-")
	if !ok {
		hi = lo
	}
	min, err := strconv.ParseFloat(strings.TrimSpace(lo), 64)
	if err != nil {
		return Range{}, fmt.Errorf("bad range %q", s)
	}
	max, err := strconv.ParseFloat(strings.TrimSpace(hi), 64)
	if err != nil {
		return Range{}, fmt.Errorf("bad range %q", s)
	}
	if max < min {
		return Range{}, fmt.Errorf("range %q has max < min", s)
	}
	return Range{min, max}, nil
}

func (s Spec) validate() error {
	switch {
	case s.Steps < 1:
		return fmt.Errorf("gen: steps %d violates steps >= 1", s.Steps)
	case s.PhaseMin < 1 || s.PhaseMax < s.PhaseMin:
		return fmt.Errorf("gen: phases %d-%d violates 1 <= min <= max", s.PhaseMin, s.PhaseMax)
	case s.Gran.Min < 1:
		return fmt.Errorf("gen: gran %s violates gran >= 1", s.Gran)
	case s.Jitter < 0 || s.Jitter > 1:
		return fmt.Errorf("gen: jitter %v violates 0 <= jitter <= 1", s.Jitter)
	case s.Serial.Min < 0 || s.Serial.Max >= 1:
		return fmt.Errorf("gen: serial %s violates 0 <= serial < 1", s.Serial)
	case s.Pages.Min < 1:
		return fmt.Errorf("gen: pages %s violates pages >= 1", s.Pages)
	case s.GM.Min < 0:
		return fmt.Errorf("gen: gm %s violates gm >= 0", s.GM)
	case s.Hot < 0 || s.Hot > 1:
		return fmt.Errorf("gen: hot %v violates 0 <= hot <= 1", s.Hot)
	}
	if _, ok := mixes[s.Mix]; !ok {
		return fmt.Errorf("gen: unknown mix %q (want %s)", s.Mix, strings.Join(MixNames(), ", "))
	}
	return nil
}

// String renders the spec in the gen: grammar (canonical key order;
// only non-default fields after seed). ParseSpec(s.String()) == s.
func (s Spec) String() string {
	d := Default()
	parts := []string{"seed=" + strconv.FormatInt(s.Seed, 10)}
	if s.Name != "" {
		parts = append(parts, "name="+s.Name)
	}
	if s.Steps != d.Steps {
		parts = append(parts, "steps="+strconv.Itoa(s.Steps))
	}
	if s.PhaseMin != d.PhaseMin || s.PhaseMax != d.PhaseMax {
		parts = append(parts, fmt.Sprintf("phases=%d-%d", s.PhaseMin, s.PhaseMax))
	}
	if s.Mix != d.Mix {
		parts = append(parts, "mix="+s.Mix)
	}
	if s.Gran != d.Gran {
		parts = append(parts, "gran="+s.Gran.String())
	}
	if s.Jitter != d.Jitter {
		parts = append(parts, "jitter="+num(s.Jitter))
	}
	if s.Serial != d.Serial {
		parts = append(parts, "serial="+s.Serial.String())
	}
	if s.Pages != d.Pages {
		parts = append(parts, "pages="+s.Pages.String())
	}
	if s.GM != d.GM {
		parts = append(parts, "gm="+s.GM.String())
	}
	if s.Hot != d.Hot {
		parts = append(parts, "hot="+num(s.Hot))
	}
	return perfect.GenPrefix + strings.Join(parts, ",")
}

// logUniform samples r log-uniformly (r.Min must be > 0 unless the
// range is a point).
func logUniform(rng *rand.Rand, r Range) float64 {
	if r.Min == r.Max {
		return r.Min
	}
	lo, hi := math.Log(r.Min), math.Log(r.Max)
	return math.Exp(lo + rng.Float64()*(hi-lo))
}

// Generate materializes one app from the spec, deterministically in
// the seed. The result always passes perfect.App.Validate.
func Generate(s Spec) perfect.App {
	rng := rand.New(rand.NewSource(s.Seed))
	name := s.Name
	if name == "" {
		name = fmt.Sprintf("gen%d", s.Seed)
	}
	palette := mixes[s.Mix]

	nPhases := s.PhaseMin + rng.Intn(s.PhaseMax-s.PhaseMin+1)
	var phases []perfect.Phase
	var parallelWork int64 // compute cycles per step across parallel phases
	for i := 0; i < nPhases; i++ {
		kind := palette[rng.Intn(len(palette))]
		work := int64(logUniform(rng, s.Gran))
		if work < 1 {
			work = 1
		}
		// Loop shape: iteration counts log-uniform over the Perfect
		// regime (tens to hundreds of iterations per phase instance).
		inner := int(logUniform(rng, Range{8, 256}))
		outer := 1
		if kind == perfect.PhaseSX {
			outer = int(logUniform(rng, Range{2, 48}))
			inner = int(logUniform(rng, Range{4, 64}))
		}
		repeat := 1 + rng.Intn(6)
		// GM intensity is per-cycle; convert to per-iteration words.
		gmWords := int(logUniform(rng, s.GM) * float64(work))
		gmStride := 0
		if rng.Float64() < s.Hot {
			// Hot-spot bias: stride a multiple of the 32-module word
			// interleave with a narrow vector, so every iteration's
			// references land on the same module or two.
			gmStride = 32 * (1 + rng.Intn(4))
			if gmWords > 4 {
				gmWords = 1 + rng.Intn(4)
			}
		}
		jitter := rng.Float64() * s.Jitter
		// Round the jitter so the textual form stays compact; keep the
		// exact float64 anyway (round-trip is exact either way).
		jitter = math.Round(jitter*100) / 100
		p := perfect.Phase{
			Kind:       kind,
			Name:       fmt.Sprintf("p%d-%s", i, kind),
			Repeat:     repeat,
			Outer:      outer,
			Inner:      inner,
			Work:       work,
			WorkJitter: jitter,
			GMWords:    gmWords,
			GMStride:   gmStride,
			ClusWords:  int(logUniform(rng, Range{8, 320})),
		}
		if kind == perfect.PhaseMCAcross {
			p.SerialCycles = int64(float64(work) * (0.05 + 0.3*rng.Float64()))
		}
		parallelWork += int64(p.Repeat) * int64(p.Total()) * work
		phases = append(phases, p)
	}

	// Serial fraction: cube-transformed sample (dense near zero, where
	// the Perfect apps live), realized as one serial phase up front
	// sized so serial/(serial+parallel) hits the sampled fraction.
	u := rng.Float64()
	frac := s.Serial.Min + (s.Serial.Max-s.Serial.Min)*u*u*u
	if frac > 0 {
		serialWork := int64(frac / (1 - frac) * float64(parallelWork))
		if serialWork > 0 {
			serial := perfect.Phase{
				Kind: perfect.PhaseSerial, Name: "p-serial",
				Work:    serialWork,
				GMWords: 32 + rng.Intn(256),
			}
			phases = append([]perfect.Phase{serial}, phases...)
		}
	}

	app := perfect.App{
		Name:          name,
		Steps:         s.Steps,
		DataWords:     int64(logUniform(rng, s.Pages)) * 512,
		CacheHitRatio: 0.85 + 0.1*rng.Float64(),
		Phases:        phases,
	}
	// Keep the truncated hit ratio short in the textual form.
	app.CacheHitRatio = math.Round(app.CacheHitRatio*1000) / 1000
	// The sampled footprint may be smaller than the phases' combined
	// span; grow it to the floor Validate enforces.
	if min := app.MinDataWords(); app.DataWords < min {
		app.DataWords = min
	}
	if err := app.Validate(); err != nil {
		// Every reachable sample satisfies Validate by construction;
		// a failure here is a generator bug, not an input error.
		panic(fmt.Sprintf("gen: generated invalid app: %v", err))
	}
	return app
}
