package gen

import (
	"reflect"
	"testing"

	"repro/internal/perfect"
)

// hotStride reports whether the app still has a phase with a module-
// aliasing stride — a cheap, deterministic stand-in for the simulated
// pathology predicate cedarfuzz uses.
func hotStride(a perfect.App) bool {
	for _, p := range a.Phases {
		if p.GMStride > 0 && p.GMStride%32 == 0 {
			return true
		}
	}
	return false
}

func TestShrinkAppReducesToCore(t *testing.T) {
	sp := Default()
	sp.Seed = 14
	sp.Hot = 1
	app := Generate(sp)
	if !hotStride(app) {
		t.Fatalf("seed 14 hot sample has no aliasing stride; phases: %+v", app.Phases)
	}
	orig := app.Phases[0]

	shrunk, runs := ShrinkApp(app, hotStride, 0)
	if runs == 0 {
		t.Fatal("shrink spent no runs")
	}
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk app invalid: %v", err)
	}
	if !hotStride(shrunk) {
		t.Fatalf("shrunk app lost the property: %+v", shrunk.Phases)
	}
	if len(shrunk.Phases) != 1 {
		t.Errorf("shrunk to %d phases, want 1 (property needs one)", len(shrunk.Phases))
	}
	p := shrunk.Phases[0]
	if p.Repeat > 1 || p.WorkJitter != 0 || p.ClusWords != 0 {
		t.Errorf("knobs not simplified: %+v", p)
	}
	if shrunk.Steps != 1 {
		t.Errorf("Steps = %d, want 1", shrunk.Steps)
	}
	if shrunk.DataWords != shrunk.MinDataWords() {
		t.Errorf("DataWords = %d, want floor %d", shrunk.DataWords, shrunk.MinDataWords())
	}
	// The input must not be mutated by rejected candidates.
	if !reflect.DeepEqual(app.Phases[0], orig) {
		t.Errorf("input phase mutated: %+v", app.Phases[0])
	}
}

func TestShrinkAppNonReproducing(t *testing.T) {
	sp := Default()
	sp.Seed = 2
	app := Generate(sp)
	if hotStride(app) {
		t.Skip("seed 2 unexpectedly has an aliasing stride")
	}
	shrunk, runs := ShrinkApp(app, hotStride, 0)
	if runs != 1 {
		t.Errorf("runs = %d, want 1 (just the input check)", runs)
	}
	if !reflect.DeepEqual(shrunk, app) {
		t.Errorf("non-reproducing input changed: %+v", shrunk)
	}
}

func TestShrinkAppDeterministic(t *testing.T) {
	sp := Default()
	sp.Seed = 14
	sp.Hot = 1
	app := Generate(sp)
	a1, r1 := ShrinkApp(app, hotStride, 0)
	a2, r2 := ShrinkApp(app, hotStride, 0)
	if !reflect.DeepEqual(a1, a2) || r1 != r2 {
		t.Errorf("shrink not deterministic: %d vs %d runs", r1, r2)
	}
}

func TestShrinkAppBudget(t *testing.T) {
	sp := Default()
	sp.Seed = 14
	sp.Hot = 1
	app := Generate(sp)
	shrunk, runs := ShrinkApp(app, hotStride, 5)
	if runs > 5 {
		t.Errorf("runs = %d exceeds budget 5", runs)
	}
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("budgeted shrink returned invalid app: %v", err)
	}
	if !hotStride(shrunk) {
		t.Error("budgeted shrink lost the property")
	}
}
