package perfect

// Resolver is the one place a workload source string becomes an App.
// Every layer that used to call ByName directly — scenario files, the
// job service, the CLIs — resolves through here, so all of them accept
// the same four source forms and emit the same errors:
//
//   - a registry name ("FLO52", "finegrain", ...),
//   - a gen: spec ("gen:seed=7,phases=4-6", see internal/perfect/gen),
//   - a *.workload file path (when AllowFiles is set),
//   - an inline workload document (any source containing a newline).
//
// The forms are syntactically disjoint: documents contain newlines,
// gen: specs carry the prefix, file paths end in .workload, and
// registry names are bare words. Resolution order is therefore not
// load-bearing; it just picks the only form that can match.

import (
	"fmt"
	"strings"
)

// GenPrefix marks a generator-spec workload source.
const GenPrefix = "gen:"

// genHook materializes a generator spec. internal/perfect/gen installs
// it from init (the generator imports this package, so the dependency
// must point this way); callers that want gen: sources link the
// generator with a blank import.
var genHook func(spec string) (App, error)

// RegisterGen installs the gen: spec materializer.
func RegisterGen(fn func(spec string) (App, error)) { genHook = fn }

// Resolver resolves workload source strings.
type Resolver struct {
	// AllowFiles permits *.workload file paths as sources. Leave it
	// unset where a source string arrives from the network (the job
	// service): a remote caller must not read server-side files.
	AllowFiles bool
}

// Resolve turns a workload source into a validated App.
func (r Resolver) Resolve(src string) (App, error) {
	switch {
	case strings.Contains(src, "\n"):
		return ParseWorkload([]byte(src))
	case strings.HasPrefix(src, GenPrefix):
		if genHook == nil {
			return App{}, fmt.Errorf("perfect: gen: workloads not linked in (blank-import repro/internal/perfect/gen)")
		}
		return genHook(strings.TrimPrefix(src, GenPrefix))
	case strings.HasSuffix(src, WorkloadExt):
		if !r.AllowFiles {
			return App{}, fmt.Errorf("perfect: workload file %q not allowed here (inline the document instead)", src)
		}
		return LoadWorkload(src)
	default:
		a, ok := ByName(src)
		if !ok {
			return App{}, UnknownAppError(src)
		}
		return a, nil
	}
}

// UnknownAppError is the one error every layer reports for a name that
// is not in the registry.
func UnknownAppError(name string) error {
	return fmt.Errorf("unknown app %q (known: %s)", name, strings.Join(KnownApps(), ", "))
}
