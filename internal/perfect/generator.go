package perfect

import "fmt"

// SyntheticSpec describes a single-kernel synthetic workload — the
// knob set used by the ablation experiments (clustered vs flat
// machines, barrier mechanisms, loop merging, construct choice).
type SyntheticSpec struct {
	// Name labels the app (defaults to "synthetic").
	Name string
	// Steps is the timestep count (default 4).
	Steps int
	// LoopsPerStep is how many parallel loops run per timestep
	// (default 1). More loops at the same total work means more
	// barriers — finer granularity.
	LoopsPerStep int
	// Kind is the loop construct (default PhaseSX).
	Kind PhaseKind
	// Outer and Inner shape the loop (defaults 4 and 16).
	Outer, Inner int
	// Work is compute cycles per iteration (default 2000).
	Work int64
	// Jitter is the per-iteration work variance fraction.
	Jitter float64
	// GMWords and ClusWords are per-iteration memory references.
	GMWords, ClusWords int
	// SerialWork is serial cycles per timestep (default 0).
	SerialWork int64
	// DataWords is the global footprint (default: sized to the loop).
	DataWords int64
}

// App materializes the spec.
func (s SyntheticSpec) App() App {
	if s.Name == "" {
		s.Name = "synthetic"
	}
	if s.Steps < 1 {
		s.Steps = 4
	}
	if s.LoopsPerStep < 1 {
		s.LoopsPerStep = 1
	}
	if s.Outer < 1 {
		s.Outer = 4
	}
	if s.Inner < 1 {
		s.Inner = 16
	}
	if s.Work == 0 {
		s.Work = 2000
	}
	var phases []Phase
	if s.SerialWork > 0 {
		phases = append(phases, Phase{
			Kind: PhaseSerial, Name: s.Name + ".serial",
			Work: s.SerialWork, GMWords: 64,
		})
	}
	kind := s.Kind
	if kind == PhaseSerial {
		kind = PhaseSX
	}
	phases = append(phases, Phase{
		Kind: kind, Name: s.Name + ".loop", Repeat: s.LoopsPerStep,
		Outer: s.Outer, Inner: s.Inner,
		Work: s.Work, WorkJitter: s.Jitter,
		GMWords: s.GMWords, ClusWords: s.ClusWords,
	})
	data := s.DataWords
	if data == 0 {
		data = int64(s.Outer*s.Inner*maxIntGen(s.GMWords, 8)) + 4096
	}
	return App{
		Name:          s.Name,
		Steps:         s.Steps,
		DataWords:     data,
		CacheHitRatio: 0.9,
		Phases:        phases,
	}
}

// FineGrained returns a barrier-heavy workload: many small
// cross-cluster loops per step, the regime where the paper's
// clustering argument (localized synchronization, no hot spots) has
// the most force.
func FineGrained() App {
	return SyntheticSpec{
		Name:         "finegrain",
		Steps:        4,
		LoopsPerStep: 24,
		Outer:        4, Inner: 8,
		Work: 900, Jitter: 0.1,
		GMWords: 48, ClusWords: 32,
	}.App()
}

// CoarseGrained returns the opposite regime: few large loops, where
// barrier cost is amortized and flat self-scheduling balances best.
func CoarseGrained() App {
	return SyntheticSpec{
		Name:         "coarsegrain",
		Steps:        4,
		LoopsPerStep: 2,
		Outer:        8, Inner: 48,
		Work: 2500, Jitter: 0.1,
		GMWords: 48, ClusWords: 32,
	}.App()
}

func maxIntGen(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String implements fmt.Stringer.
func (s SyntheticSpec) String() string {
	return fmt.Sprintf("%s{%dx(%dx%d)@%dcy}", s.Name, s.LoopsPerStep, s.Outer, s.Inner, s.Work)
}
