package perfect

// The five applications, modeled from Section 2 of the paper:
//
//	"The application FLO52 only uses the hierarchical SDOALL/CDOALL
//	construct; ADM uses only the flat XDOALL construct; the other
//	applications use both ... The applications also have a few main
//	cluster-only loops."
//
// Loop shapes and intensities are calibrated against Tables 1, 3, 4
// (speedup curves, parallel-loop concurrency, contention overheads);
// see EXPERIMENTS.md for the paper-vs-model record.

// FLO52 — transonic flow past an airfoil (multigrid Euler solver).
// SDOALL/CDOALL only. Modest loop iteration counts (grids shrink at
// coarser multigrid levels) give it the poorest concurrency of the
// five, and its vector-heavy global memory traffic gives it the
// highest contention overhead (17-27% across configurations).
func FLO52() App {
	return App{
		Name:          "FLO52",
		Steps:         8,
		DataWords:     76 * 1024,
		CacheHitRatio: 0.92,
		Phases: []Phase{
			{Kind: PhaseSerial, Name: "resid-setup", Work: 50_000, GMWords: 256},
			{Kind: PhaseSX, Name: "fine-sweep", Repeat: 6,
				Outer: 12, Inner: 16, Work: 500, WorkJitter: 0.15,
				GMWords: 160, ClusWords: 300},
			{Kind: PhaseSX, Name: "coarse-sweep", Repeat: 4,
				Outer: 6, Inner: 10, Work: 400, WorkJitter: 0.2,
				GMWords: 112, ClusWords: 240},
			{Kind: PhaseMC, Name: "boundary", Repeat: 1,
				Outer: 1, Inner: 16, Work: 1200, GMWords: 48, ClusWords: 128},
			{Kind: PhaseSerial, Name: "converge-check", Work: 16_000, GMWords: 128},
		},
	}
}

// ARC2D — implicit finite-difference fluid dynamics (2-D Euler).
// Uses both constructs; large, fairly regular loops give it good (but
// sublinear) scaling and moderate contention.
func ARC2D() App {
	return App{
		Name:          "ARC2D",
		Steps:         8,
		DataWords:     80 * 1024,
		CacheHitRatio: 0.9,
		Phases: []Phase{
			{Kind: PhaseSerial, Name: "step-setup", Work: 30_000, GMWords: 128},
			{Kind: PhaseSX, Name: "x-sweep", Repeat: 5,
				Outer: 16, Inner: 16, Work: 1500, WorkJitter: 0.1,
				GMWords: 96, ClusWords: 160},
			{Kind: PhaseX, Name: "pentadiag", Repeat: 3,
				Outer: 1, Inner: 192, Work: 1400, WorkJitter: 0.1,
				GMWords: 64, ClusWords: 128},
			{Kind: PhaseMC, Name: "filter", Repeat: 1,
				Outer: 1, Inner: 24, Work: 1400, GMWords: 32, ClusWords: 48},
		},
	}
}

// MDG — molecular dynamics of water. Very high degree of parallelism
// (many independent molecule pairs): near-linear speedups, the lightest
// global traffic per unit work, and the least serial code.
func MDG() App {
	return App{
		Name:          "MDG",
		Steps:         8,
		DataWords:     48 * 1024,
		CacheHitRatio: 0.95,
		Phases: []Phase{
			{Kind: PhaseSerial, Name: "neighbor-update", Work: 12_000, GMWords: 64},
			{Kind: PhaseSX, Name: "forces", Repeat: 6,
				Outer: 32, Inner: 24, Work: 3000, WorkJitter: 0.08,
				GMWords: 224, GMStride: 16, ClusWords: 280},
			{Kind: PhaseX, Name: "pair-corr", Repeat: 2,
				Outer: 1, Inner: 512, Work: 2600, WorkJitter: 0.08,
				GMWords: 176, GMStride: 12, ClusWords: 240},
		},
	}
}

// OCEAN — 2-D ocean basin simulation (spectral/FFT style). Near-linear
// to 8 processors, then limited by loop counts that divide poorly
// across four clusters.
func OCEAN() App {
	return App{
		Name:          "OCEAN",
		Steps:         8,
		DataWords:     56 * 1024,
		CacheHitRatio: 0.9,
		Phases: []Phase{
			{Kind: PhaseSerial, Name: "spectral-setup", Work: 12_000, GMWords: 64},
			{Kind: PhaseSX, Name: "ft-rows", Repeat: 5,
				Outer: 12, Inner: 16, Work: 2500, WorkJitter: 0.1,
				GMWords: 72, ClusWords: 120},
			{Kind: PhaseX, Name: "ft-cols", Repeat: 3,
				Outer: 1, Inner: 72, Work: 2200, WorkJitter: 0.45,
				GMWords: 64, ClusWords: 128},
			{Kind: PhaseMCAcross, Name: "timestep-update", Repeat: 1,
				Outer: 1, Inner: 16, Work: 1200, GMWords: 16,
				ClusWords: 32, SerialCycles: 300},
		},
	}
}

// ADM — pseudospectral air pollution model. XDOALL only: every loop's
// iterations are picked through the global iteration lock, so the
// distribution overhead grows with processor count and the speedup
// flattens between 16 and 32 processors (8.52 -> 8.84 in the paper).
func ADM() App {
	return App{
		Name:          "ADM",
		Steps:         8,
		DataWords:     24 * 1024,
		CacheHitRatio: 0.92,
		Phases: []Phase{
			{Kind: PhaseSerial, Name: "bc-setup", Work: 50_000, GMWords: 64},
			{Kind: PhaseX, Name: "vertical", Repeat: 6,
				Outer: 1, Inner: 48, Work: 3000, WorkJitter: 0.15,
				GMWords: 64, ClusWords: 80},
			{Kind: PhaseX, Name: "horizontal", Repeat: 4,
				Outer: 1, Inner: 40, Work: 2600, WorkJitter: 0.15,
				GMWords: 56, ClusWords: 72},
		},
	}
}

// Apps returns the five applications in the paper's order.
func Apps() []App {
	return []App{FLO52(), ARC2D(), MDG(), OCEAN(), ADM()}
}

// Registry returns every built-in app: the five paper apps followed by
// the synthetic presets. This is the name space ByName resolves in and
// `cedarsim -list-apps` prints.
func Registry() []App {
	return append(Apps(), FineGrained(), CoarseGrained())
}

// KnownApps returns the registry's names in registry order, for
// "unknown app" error messages and listings.
func KnownApps() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, a := range reg {
		names[i] = a.Name
	}
	return names
}

// ByName returns the registry app with the given (case-sensitive)
// name.
func ByName(name string) (App, bool) {
	for _, a := range Registry() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}
