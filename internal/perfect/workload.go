// Package perfect models the five Perfect Benchmark applications the
// paper measures — FLO52, ARC2D, MDG, OCEAN, ADM — as loop-structure
// workloads for the Cedar simulation, plus a generator for synthetic
// workloads of the same shape.
//
// We cannot run the original Cedar Fortran sources, so each
// application is described by its published structure (Section 2 of
// the paper): which constructs it uses (FLO52 only SDOALL/CDOALL, ADM
// only XDOALL, the others both), how much serial and main-cluster-only
// work it has, its loop granularities, and its global memory
// intensity. Loop counts and work sizes are calibrated so that the
// model reproduces the *shape* of the paper's Tables 1–4 (speedups,
// concurrency, overhead growth); the 1-processor completion time is
// normalized to the paper's (see DESIGN.md, calibration policy).
package perfect

import (
	"fmt"

	"repro/internal/cfrt"
	"repro/internal/xylem"
)

// PhaseKind is the kind of one program phase within a timestep.
type PhaseKind int

const (
	// PhaseSerial is serial code on the main task.
	PhaseSerial PhaseKind = iota
	// PhaseSX is a hierarchical SDOALL/CDOALL nest.
	PhaseSX
	// PhaseX is a flat XDOALL.
	PhaseX
	// PhaseMC is a main-cluster-only CDOALL.
	PhaseMC
	// PhaseMCAcross is a main-cluster-only CDOACROSS.
	PhaseMCAcross
)

// String implements fmt.Stringer.
func (k PhaseKind) String() string {
	switch k {
	case PhaseSerial:
		return "serial"
	case PhaseSX:
		return "sdoall"
	case PhaseX:
		return "xdoall"
	case PhaseMC:
		return "mc-cdoall"
	case PhaseMCAcross:
		return "mc-cdoacross"
	}
	return fmt.Sprintf("PhaseKind(%d)", int(k))
}

// Phase is one phase of a timestep: a serial section or a parallel
// loop with its iteration structure and per-iteration resource usage.
type Phase struct {
	Kind PhaseKind
	Name string
	// Repeat runs the phase this many times per timestep (default 1).
	Repeat int

	// Loop shape (parallel kinds).
	Outer int // spread iterations (SDOALL outer); 1 for flat loops
	Inner int // cluster iterations (CDOALL) or flat count for XDOALL/MC

	// Per-iteration costs (or per-section for serial phases).
	Work       int64   // compute cycles
	WorkJitter float64 // uniform +/- fraction of Work
	GMWords    int     // global memory words referenced
	GMStride   int     // words between consecutive iterations' data (default GMWords: disjoint rows)
	ClusWords  int     // cluster memory words referenced

	// SerialCycles is the serialized portion per iteration for
	// CDOACROSS phases.
	SerialCycles int64
}

func (p Phase) repeat() int {
	if p.Repeat < 1 {
		return 1
	}
	return p.Repeat
}

// App is one application model.
type App struct {
	Name string
	// Steps is the number of timesteps to simulate. The paper's runs
	// execute many more; per-step structure is identical, so overhead
	// fractions are step-count invariant and the completion time is
	// rescaled through the calibration policy.
	Steps int
	// DataWords is the global data footprint in 8-byte words; it
	// determines the page count and hence the paging overheads.
	DataWords int64
	// CacheHitRatio is the cluster cache hit ratio of the app's
	// cluster-memory references.
	CacheHitRatio float64
	// Phases is the per-timestep program structure.
	Phases []Phase
}

// Validate reports whether the model is self-consistent. Each check
// names the violated constraint, so a hand-written or generated
// workload document that fails gets an actionable message.
func (a App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("perfect: app with empty name")
	}
	if a.Steps < 1 {
		return fmt.Errorf("perfect: %s: steps %d violates steps >= 1", a.Name, a.Steps)
	}
	if a.DataWords < 1 {
		return fmt.Errorf("perfect: %s: data_words %d violates data_words >= 1", a.Name, a.DataWords)
	}
	if a.CacheHitRatio < 0 || a.CacheHitRatio > 1 {
		return fmt.Errorf("perfect: %s: cache_hit_ratio %v violates 0 <= cache_hit_ratio <= 1",
			a.Name, a.CacheHitRatio)
	}
	if len(a.Phases) == 0 {
		return fmt.Errorf("perfect: %s: no phases (at least one required)", a.Name)
	}
	for i, p := range a.Phases {
		at := fmt.Sprintf("perfect: %s: phase %d (%s %s)", a.Name, i, p.Kind, p.Name)
		if kindNames[p.Kind.String()] != p.Kind {
			return fmt.Errorf("%s: unknown phase kind", at)
		}
		if p.Repeat < 0 {
			return fmt.Errorf("%s: repeat %d violates repeat >= 0", at, p.Repeat)
		}
		if p.Kind != PhaseSerial {
			if p.Inner < 1 {
				return fmt.Errorf("%s: inner %d violates inner >= 1 for parallel phases", at, p.Inner)
			}
			if p.Outer < 0 {
				return fmt.Errorf("%s: outer %d violates outer >= 0", at, p.Outer)
			}
		}
		if p.Work < 0 {
			return fmt.Errorf("%s: work %d violates work >= 0", at, p.Work)
		}
		if p.WorkJitter < 0 || p.WorkJitter > 1 {
			return fmt.Errorf("%s: work_jitter %v violates 0 <= work_jitter <= 1", at, p.WorkJitter)
		}
		if p.GMWords < 0 {
			return fmt.Errorf("%s: gm_words %d violates gm_words >= 0", at, p.GMWords)
		}
		if p.GMStride < 0 {
			return fmt.Errorf("%s: gm_stride %d violates gm_stride >= 0", at, p.GMStride)
		}
		if p.ClusWords < 0 {
			return fmt.Errorf("%s: clus_words %d violates clus_words >= 0", at, p.ClusWords)
		}
		if p.SerialCycles < 0 {
			return fmt.Errorf("%s: serial_cycles %d violates serial_cycles >= 0", at, p.SerialCycles)
		}
	}
	if min := a.MinDataWords(); a.DataWords < min {
		return fmt.Errorf("perfect: %s: data_words %d below the phase footprint %d (sum of phase spans)",
			a.Name, a.DataWords, min)
	}
	return nil
}

// MinDataWords returns the smallest global footprint that can hold
// every phase's array slice — the sum of the phase spans. An App whose
// DataWords is below this would wrap slices over each other in the
// data region, so Validate rejects it.
func (a App) MinDataWords() int64 {
	var total int64
	for i := range a.Phases {
		total += a.Phases[i].span()
	}
	return total
}

// WithSteps returns a copy of the app simulating n timesteps (for
// quick tests versus full table generation).
func (a App) WithSteps(n int) App {
	a.Steps = n
	return a
}

// Scaled returns a weak-scaled copy of the app for a machine factor
// times the paper's 32-CE Cedar: parallel loop iteration counts and
// the global data footprint grow with the factor so per-CE work stays
// roughly constant, while serial sections are left untouched — the
// fixed Amdahl fraction whose growing share is exactly what the
// paper's overhead decomposition exposes on larger machines. The name
// is unchanged so scaled runs compare against their own 1-processor
// base (core.ContentionOverhead matches results by app name).
func (a App) Scaled(factor int) App {
	if factor <= 1 {
		return a
	}
	a.DataWords *= int64(factor)
	phases := make([]Phase, len(a.Phases))
	copy(phases, a.Phases)
	for i := range phases {
		p := &phases[i]
		switch p.Kind {
		case PhaseSerial:
			// Serial code does not grow with the machine.
		case PhaseSX:
			p.Outer *= factor
		default:
			p.Inner *= factor
		}
	}
	a.Phases = phases
	return a
}

// ScaleFactorFor returns the weak-scaling factor for a machine with
// the given CE count relative to the paper's 32-CE Cedar: 1 at or
// below 32 CEs, the CE ratio (rounded up) beyond.
func ScaleFactorFor(ces int) int {
	if ces <= 32 {
		return 1
	}
	return (ces + 31) / 32
}

// TotalIterations returns the flat iteration count executed across
// the whole run (all steps), for sizing checks.
func (a App) TotalIterations() int {
	total := 0
	for _, p := range a.Phases {
		if p.Kind == PhaseSerial {
			continue
		}
		o := p.Outer
		if o < 1 {
			o = 1
		}
		total += o * p.Inner * p.repeat()
	}
	return total * a.Steps
}

// PhaseInstances returns the total number of phase executions over
// the run.
func (a App) PhaseInstances() int {
	n := 0
	for _, p := range a.Phases {
		n += p.repeat()
	}
	return n * a.Steps
}

// Total returns the phase's flat iteration count.
func (p *Phase) Total() int {
	o, in := p.Outer, p.Inner
	if o < 1 {
		o = 1
	}
	if in < 1 {
		in = 1
	}
	return o * in
}

// stride returns the words between consecutive iterations' data.
func (p *Phase) stride() int64 {
	if p.GMStride > 0 {
		return int64(p.GMStride)
	}
	return int64(p.GMWords)
}

// span returns one execution's data footprint: iterations sweep
// disjoint (or stride-overlapped) rows of the phase's array slice.
func (p *Phase) span() int64 {
	s := int64(p.Total())*p.stride() + int64(p.GMWords)
	if p.Kind == PhaseSerial {
		s = int64(p.GMWords)
	}
	if s < 512 {
		s = 512
	}
	return s
}

// Program builds the cfrt program for this app. Each phase owns an
// array slice of the global data region; its iterations sweep the
// slice in disjoint rows (stride GMStride), so pages are first-touched
// by the CE whose iteration lands on them — in parallel, mostly
// without pileups, like a real grid sweep. Repeats within a timestep
// reuse the slice (warm); between timesteps the slice's base advances
// so a fresh fraction of the footprint faults in each step, spreading
// virtual-memory activity across the run. DataWords therefore sets the
// total page footprint directly.
func (a App) Program(region *xylem.Region) func(mt *cfrt.Main) {
	// Lay the slices out: each phase gets span + its share of the
	// leftover footprint, consumed across the steps. Serial phases get
	// a heavily weighted share: the main task's serial code
	// demand-loads input and workspace data (initialization, boundary
	// updates), which is where the paper's *sequential* page faults
	// come from — only one CE is running, so nothing piles up.
	const serialWeight = 6
	type layout struct{ base, span, advance int64 }
	lay := make([]layout, len(a.Phases))
	weight := func(p *Phase) int64 {
		w := p.span()
		if p.Kind == PhaseSerial {
			w *= serialWeight
		}
		return w
	}
	var weightTotal, spanTotal int64
	for i := range a.Phases {
		spanTotal += a.Phases[i].span()
		weightTotal += weight(&a.Phases[i])
	}
	leftover := region.Words - spanTotal
	if leftover < 0 {
		leftover = 0
	}
	var cursor int64
	for i := range a.Phases {
		p := &a.Phases[i]
		share := leftover * weight(p) / maxInt64(weightTotal, 1)
		lay[i] = layout{
			base:    cursor,
			span:    p.span(),
			advance: share / int64(a.Steps),
		}
		cursor += p.span() + share
	}

	return func(mt *cfrt.Main) {
		for step := 0; step < a.Steps; step++ {
			for pi := range a.Phases {
				p := &a.Phases[pi]
				base := (lay[pi].base + int64(step)*lay[pi].advance) % region.Words
				fresh := lay[pi].advance
				for rep := 0; rep < p.repeat(); rep++ {
					switch p.Kind {
					case PhaseSerial:
						mt.Serial(func(ec *cfrt.ExecCtx) {
							// Serial code walks its whole fresh slice
							// for the step (demand-loading), then does
							// its compute section.
							if fresh > 0 {
								ec.Global(region, base, int(fresh))
							}
							a.section(ec, p, region, base, 0)
						})
					case PhaseSX:
						mt.Sdoall(a.loop(p, region, base))
					case PhaseX:
						mt.Xdoall(a.loop(p, region, base))
					case PhaseMC, PhaseMCAcross:
						mt.MCLoop(a.loop(p, region, base))
					}
				}
			}
		}
	}
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// loop builds the cfrt loop for a parallel phase.
func (a App) loop(p *Phase, region *xylem.Region, base int64) *cfrt.Loop {
	l := &cfrt.Loop{
		Name:  p.Name,
		Outer: p.Outer,
		Inner: p.Inner,
		Body: func(ec *cfrt.ExecCtx, i int) {
			a.section(ec, p, region, base, i)
		},
	}
	if p.Kind == PhaseMCAcross {
		l.SerialCycles = p.SerialCycles
	}
	return l
}

// section executes one iteration (or serial section) worth of work.
func (a App) section(ec *cfrt.ExecCtx, p *Phase, region *xylem.Region, base int64, i int) {
	work := p.Work
	if p.WorkJitter > 0 {
		span := int64(float64(p.Work) * p.WorkJitter)
		if span > 0 {
			work += ec.Rand().Int63n(2*span+1) - span
		}
	}
	ec.Compute(work)
	if p.GMWords > 0 {
		// Two vector references per iteration (operand read, result
		// write) into the iteration's own row of the phase's slice.
		half := p.GMWords / 2
		if half < 1 {
			half = p.GMWords
		}
		off := (base + int64(i)*p.stride()) % region.Words
		ec.Global(region, off, half)
		if p.GMWords-half > 0 {
			off2 := (off + int64(half)) % region.Words
			ec.Global(region, off2, p.GMWords-half)
		}
	}
	if p.ClusWords > 0 {
		ec.ClusterMem(p.ClusWords, a.CacheHitRatio)
	}
}
