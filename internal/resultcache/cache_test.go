package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func testKey(seed int64) Key {
	return Key{Kind: "simulate", App: "FLO52", Config: "8proc",
		Steps: 2, Seed: seed, Plan: "ce:1@76414", Version: "test-v1"}
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(1)
	payload := []byte("app=FLO52 config=8proc ct=123\nce0 user=10\n")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on an empty cache")
	}
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want the stored payload", got, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Writes != 1 || s.Corrupt != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestKeyFieldsAllParticipate(t *testing.T) {
	base := testKey(1)
	variants := []Key{
		{Kind: "sweep", App: base.App, Config: base.Config, Steps: base.Steps, Seed: base.Seed, Plan: base.Plan, Version: base.Version},
		func() Key { k := base; k.App = "ADM"; return k }(),
		func() Key { k := base; k.Config = "32proc"; return k }(),
		func() Key { k := base; k.Steps = 3; return k }(),
		func() Key { k := base; k.Seed = 2; return k }(),
		func() Key { k := base; k.Plan = ""; return k }(),
		func() Key { k := base; k.Version = "test-v2"; return k }(),
		func() Key { k := base; k.MaxCycles = 7; return k }(),
		func() Key { k := base; k.Workload = "workload: w\nsteps: 2\n"; return k }(),
	}
	seen := map[string]bool{base.ID(): true}
	for i, v := range variants {
		if seen[v.ID()] {
			t.Fatalf("variant %d (%s) collides with a previous key", i, v.Canonical())
		}
		seen[v.ID()] = true
	}
	// Post-v1 fields enter the canonical form only when set, so keys
	// minted before they existed keep their addresses.
	if strings.Contains(base.Canonical(), "maxcycles") {
		t.Fatalf("zero MaxCycles altered the v1 canonical form: %s", base.Canonical())
	}
	if strings.Contains(base.Canonical(), "workload") {
		t.Fatalf("empty Workload altered the v1 canonical form: %s", base.Canonical())
	}
}

// A workload document's newlines are escaped into the canonical form,
// and any single-character edit to the document is a different key.
func TestKeyWorkloadIdentity(t *testing.T) {
	a := testKey(1)
	a.Workload = "workload: w\nsteps: 2\n"
	b := a
	b.Workload = "workload: w\nsteps: 3\n"
	if a.ID() == b.ID() {
		t.Fatal("edited workload document shares a cache key")
	}
	if c := a.Canonical(); !strings.Contains(c, `workload=workload: w\nsteps: 2\n`) {
		t.Fatalf("canonical form not newline-escaped: %q", c)
	}
}

// entryFile finds the single .entry file the tests wrote.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	ents, err := filepath.Glob(filepath.Join(dir, "*.entry"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("want exactly one entry, got %v (%v)", ents, err)
	}
	return ents[0]
}

// The integrity gate: a truncated entry is detected, reported as a
// miss, removed, and recomputed via the next Put — never served.
func TestTruncatedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := testKey(2)
	payload := []byte("a long enough payload to truncate meaningfully")
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, dir)
	data, _ := os.ReadFile(path)
	for _, cut := range []int{len(data) - 1, len(data) / 2, 10, 0} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := c.Get(key); ok {
			t.Fatalf("truncated-to-%d entry served as a hit: %q", cut, got)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("truncated-to-%d entry not removed after detection", cut)
		}
		// Recompute path: the slot heals.
		if err := c.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		if got, ok := c.Get(key); !ok || !bytes.Equal(got, payload) {
			t.Fatalf("recomputed entry not served after truncation-to-%d", cut)
		}
	}
	if s := c.Stats(); s.Corrupt != 4 {
		t.Fatalf("corrupt count = %d, want 4 (stats %+v)", s.Corrupt, s)
	}
}

// Bit flips anywhere in the entry — header, key line, payload — are
// detected and treated as misses.
func TestBitFlippedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := testKey(3)
	payload := []byte("deterministic result bytes, checksummed")
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	pristine, _ := os.ReadFile(entryFile(t, dir))
	for _, pos := range []int{0, 20, len(pristine) - len(payload) + 3, len(pristine) - 1} {
		flipped := append([]byte(nil), pristine...)
		flipped[pos] ^= 0x40
		if err := os.WriteFile(entryFile0(dir, key), flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := c.Get(key); ok {
			t.Fatalf("bit-flip at %d served as a hit: %q", pos, got)
		}
		if err := c.Put(key, payload); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Corrupt != 4 {
		t.Fatalf("corrupt count = %d, want 4 (stats %+v)", s.Corrupt, s)
	}
}

// entryFile0 rebuilds the entry path for a key (the file may have been
// removed by a corrupt-detection pass).
func entryFile0(dir string, key Key) string {
	return filepath.Join(dir, key.ID()+".entry")
}

// An entry stored under a different key's file name (tampered cache)
// is rejected by the recorded-key check.
func TestKeyMismatchIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	a, b := testKey(4), testKey(5)
	if err := c.Put(a, []byte("a's result")); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(entryFile0(dir, a))
	if err := os.WriteFile(entryFile0(dir, b), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get(b); ok {
		t.Fatalf("entry recorded for key a served for key b: %q", got)
	}
}

// A crash mid-write (the tmp file survives, the rename never happened)
// leaves no visible entry, and Open sweeps the litter.
func TestCrashMidWriteLeavesNoEntry(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := testKey(6)
	tmp := filepath.Join(dir, key.ID()+".tmp-crashed")
	if err := os.WriteFile(tmp, []byte("half an ent"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("tmp litter served as a hit")
	}
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, statErr := os.Stat(tmp); !os.IsNotExist(statErr) {
		t.Fatal("Open did not sweep crashed tmp file")
	}
	_ = c2
}

func TestConcurrentPutGet(t *testing.T) {
	c, _ := Open(t.TempDir())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := testKey(int64(i % 5))
				want := []byte(fmt.Sprintf("result for seed %d", i%5))
				c.Put(key, want)
				if got, ok := c.Get(key); ok && !bytes.Equal(got, want) {
					t.Errorf("goroutine %d: wrong payload %q", g, got)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 5 {
		t.Fatalf("cache holds %d entries, want 5", c.Len())
	}
}

// TestMultiLinePlanRoundTrips is the regression test for multi-line
// Plan fields (corpus scenario lists, bench scenario documents): the
// raw document used to leak newlines into the entry's one-line key
// record, so every Get failed verification, removed the entry, and
// missed — the cache could never go warm for those kinds.
func TestMultiLinePlanRoundTrips(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Kind: "bench", App: "bench", Version: "test-v1",
		Plan: "name: tiny\napp: FLO52\nconfig: 1proc\nsteps: 1\n"}
	payload := []byte(`{"version": 1, "records": []}`)
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want a hit with the stored payload", got, ok)
	}
	if s := c.Stats(); s.Corrupt != 0 {
		t.Fatalf("multi-line plan flagged corrupt: %+v", s)
	}
	if !strings.Contains(key.Canonical(), `plan=name: tiny\napp:`) {
		t.Fatalf("canonical form not newline-escaped: %q", key.Canonical())
	}
	// Escaping must not alias: a literal backslash-n differs from a
	// newline.
	other := key
	other.Plan = strings.ReplaceAll(key.Plan, "\n", `\n`)
	if other.ID() == key.ID() {
		t.Fatal("escaped and literal plans share an address")
	}
}
