// Package resultcache is a content-addressed, crash-safe, on-disk
// memo of simulation results. The simulator is deterministic: a run is
// fully described by (application, configuration, timestep override,
// kernel seed, fault plan, code version, job shape), so its output is
// perfectly cacheable and a sweep service can answer repeated or
// overlapping requests without re-simulating.
//
// Crash-safety and integrity are the design center, not add-ons:
//
//   - Writes are atomic: the entry is written to a temporary file in
//     the cache directory, synced, and renamed into place. Readers
//     never observe a torn entry; a crash mid-write leaves only a
//     *.tmp file that the next Open sweeps away.
//   - Reads are integrity-checked: every entry carries the SHA-256 of
//     its payload in a fixed-size header, and a truncated, bit-flipped,
//     or otherwise corrupt entry is treated as a cache miss (and
//     removed) rather than served. A damaged cache degrades to
//     recomputation, never to wrong answers.
//
// Entries are keyed by the SHA-256 of the canonical key string, so the
// key is tamper-evident too: Get re-derives the file name from the
// key, and an entry whose recorded key line disagrees is corrupt.
package resultcache

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Key identifies one cacheable job result. Every field participates in
// the hash. Fields added after v1 (MaxCycles onward) enter the
// canonical form only when non-zero, so keys minted before the field
// existed keep their addresses.
type Key struct {
	// Kind is the job shape ("simulate", "sweep", "replay", ...):
	// distinct shapes produce distinct payloads for otherwise equal
	// inputs, so they must never collide.
	Kind string
	// App is the application name (e.g. "FLO52").
	App string
	// Config is the configuration name, or a comma-joined list for
	// sweep-shaped jobs.
	Config string
	// Steps is the timestep override (0 = app default).
	Steps int
	// Seed is the kernel seed (0 = the deterministic derived seed).
	Seed int64
	// Plan is the fault plan in the faults.Parse grammar ("" = none).
	Plan string
	// Version names the code that produced the result. Results are
	// model output, so a model change must miss: bake a build/version
	// stamp in here.
	Version string
	// MaxCycles is the virtual-time budget the run executed under
	// (0 = unlimited). A budget-truncated result is a different payload
	// from an unbounded run's, so the cap is part of the address.
	MaxCycles int64
	// Workload is the workload source when the job names its app by
	// document rather than registry name — an inline .workload text or
	// a gen: spec ("" = App carries the name). The full source is part
	// of the address: two generated apps that differ in any knob are
	// different experiments and must never share a cache slot.
	Workload string
}

// planEscaper keeps the canonical form one line: Plan may carry a
// multi-line document (corpus scenario lists, bench scenario files),
// and the entry-file key check reads exactly one line. Plans without
// backslashes or newlines — every v1 key — render unchanged, so
// existing entry addresses are preserved.
var planEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// Canonical renders the key as one line with a fixed field order — the
// string that is hashed, and that each entry records for verification.
func (k Key) Canonical() string {
	s := fmt.Sprintf("kind=%s app=%s config=%s steps=%d seed=%d plan=%s version=%s",
		k.Kind, k.App, k.Config, k.Steps, k.Seed, planEscaper.Replace(k.Plan), k.Version)
	if k.MaxCycles != 0 {
		s += fmt.Sprintf(" maxcycles=%d", k.MaxCycles)
	}
	if k.Workload != "" {
		s += fmt.Sprintf(" workload=%s", planEscaper.Replace(k.Workload))
	}
	return s
}

// ID is the entry's content address: the hex SHA-256 of the canonical
// key string.
func (k Key) ID() string {
	sum := sha256.Sum256([]byte(k.Canonical()))
	return hex.EncodeToString(sum[:])
}

// Stats counts cache traffic since Open. Corrupt entries also count as
// misses: Corrupt is the "of which" detail.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Corrupt uint64
	Writes  uint64
}

// Cache is an on-disk result cache rooted at one directory. Safe for
// concurrent use by any number of goroutines (and, because writes are
// atomic renames, by cooperating processes sharing the directory).
type Cache struct {
	dir string

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
	writes  atomic.Uint64

	// mu serializes writers per process; cross-process safety comes
	// from unique temp names + atomic rename.
	mu sync.Mutex
}

// Open creates (if necessary) and opens a cache directory, sweeping
// any *.tmp litter a crashed writer left behind.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resultcache: %w", err)
	}
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp-*"))
	for _, t := range tmps {
		os.Remove(t)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Corrupt: c.corrupt.Load(),
		Writes:  c.writes.Load(),
	}
}

// path returns the entry file for a key.
func (c *Cache) path(k Key) string { return filepath.Join(c.dir, k.ID()+".entry") }

// header is the fixed first two lines of an entry file:
//
//	cedarcache v1 sha256=<hex payload hash> bytes=<payload length>
//	key=<canonical key line>
//
// followed by one blank line, then the raw payload.
const magic = "cedarcache v1"

// Get returns the cached payload for key. ok is false on a miss — the
// entry is absent, or it is present but truncated, bit-flipped, or
// recorded under a different key, in which case the damaged file is
// removed so the slot heals on the next Put. Get never returns an
// error: a cache that cannot be read is a cache miss by definition;
// callers recompute.
func (c *Cache) Get(key Key) (payload []byte, ok bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	payload, err = decode(data, key)
	if err != nil {
		// Corrupt: report as a miss, and remove the damaged entry so it
		// cannot keep tripping readers. Removal re-verifies under the
		// writer lock: a concurrent Put may have renamed a fresh, valid
		// entry into place since the read above, and that entry must
		// survive.
		c.corrupt.Add(1)
		c.misses.Add(1)
		c.mu.Lock()
		if cur, rerr := os.ReadFile(c.path(key)); rerr == nil {
			if _, derr := decode(cur, key); derr != nil {
				os.Remove(c.path(key))
			}
		}
		c.mu.Unlock()
		return nil, false
	}
	c.hits.Add(1)
	return payload, true
}

// decode verifies an entry file against the key and returns its
// payload.
func decode(data []byte, key Key) ([]byte, error) {
	r := bufio.NewReader(bytes.NewReader(data))
	head, err := r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("resultcache: entry truncated in header: %w", err)
	}
	head = strings.TrimSuffix(head, "\n")
	fields := strings.Fields(head)
	if len(fields) != 4 || fields[0]+" "+fields[1] != magic {
		return nil, fmt.Errorf("resultcache: bad entry magic %q", head)
	}
	wantSum, ok1 := strings.CutPrefix(fields[2], "sha256=")
	nStr, ok2 := strings.CutPrefix(fields[3], "bytes=")
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("resultcache: bad entry header %q", head)
	}
	n, err := strconv.Atoi(nStr)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("resultcache: bad entry length %q", nStr)
	}
	keyLine, err := r.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("resultcache: entry truncated in key line: %w", err)
	}
	if got, want := strings.TrimSuffix(keyLine, "\n"), "key="+key.Canonical(); got != want {
		return nil, fmt.Errorf("resultcache: entry key %q does not match %q", got, want)
	}
	if blank, err := r.ReadString('\n'); err != nil || blank != "\n" {
		return nil, fmt.Errorf("resultcache: entry missing header separator")
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("resultcache: reading payload: %w", err)
	}
	if len(payload) != n {
		return nil, fmt.Errorf("resultcache: payload is %d bytes, header says %d", len(payload), n)
	}
	if sum := sha256.Sum256(payload); hex.EncodeToString(sum[:]) != wantSum {
		return nil, fmt.Errorf("resultcache: payload hash mismatch")
	}
	return payload, nil
}

// Put stores payload under key, atomically: concurrent readers see
// either the previous entry or the complete new one, never a torn
// write. Errors are I/O problems (disk full, permissions) — transient
// from a job's point of view; the result itself is still in hand.
func (c *Cache) Put(key Key, payload []byte) error {
	sum := sha256.Sum256(payload)
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s sha256=%s bytes=%d\n", magic, hex.EncodeToString(sum[:]), len(payload))
	fmt.Fprintf(&b, "key=%s\n\n", key.Canonical())
	b.Write(payload)

	c.mu.Lock()
	defer c.mu.Unlock()
	final := c.path(key)
	tmp, err := os.CreateTemp(c.dir, key.ID()+".tmp-*")
	if err != nil {
		return fmt.Errorf("resultcache: %w", err)
	}
	name := tmp.Name()
	_, werr := tmp.Write(b.Bytes())
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(name, final)
	}
	if werr != nil {
		os.Remove(name)
		return fmt.Errorf("resultcache: writing %s: %w", filepath.Base(final), werr)
	}
	// Best-effort directory sync so the rename itself survives a
	// crash; entry content is already safe.
	if d, derr := os.Open(c.dir); derr == nil {
		d.Sync()
		d.Close()
	}
	c.writes.Add(1)
	return nil
}

// Len reports how many complete entries the cache directory holds
// (diagnostic; walks the directory).
func (c *Cache) Len() int {
	ents, err := filepath.Glob(filepath.Join(c.dir, "*.entry"))
	if err != nil {
		return 0
	}
	return len(ents)
}
