package profio

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesBothProfiles: a run with both paths set produces two
// non-empty pprof files, and calling stop twice is harmless.
func TestStartWritesBothProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	sink := 0
	for i := 0; i < 1<<20; i++ {
		sink += i ^ (i >> 3)
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

// TestStartEmptyPathsIsNoop: with both paths empty nothing is created
// and stop succeeds.
func TestStartEmptyPathsIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartBadPath: an uncreatable CPU profile path fails up front
// with no profile running.
func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("expected error for uncreatable path")
	}
	// The profiler must not be left running: a second Start succeeds.
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
