// Package profio arms the standard runtime/pprof profilers for a
// command-line run. It exists to keep the distinction clear: the obs
// layer's -profile flag writes folded stacks weighted by *virtual*
// cycles (where the simulated machine spends its time), while profio
// profiles the simulator process itself in wall-clock terms — the
// measurement the intra-run fast path (calendar-tiered event queue,
// struct-of-arrays machine state) is tuned against.
//
// Usage from a main:
//
//	stop, err := profio.Start(*cpuprofile, *memprofile)
//	if err != nil { ... }
//	defer stop()
//
// Either path may be empty to disable that profile. Stop ends the CPU
// profile and, after a forced GC, writes the heap profile so the
// memory numbers reflect live data rather than collectable garbage.
package profio

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the requested profiles and returns a stop function
// that finalizes them. The stop function is idempotent, so it is safe
// to both defer it and call it explicitly before a normal exit. A
// non-nil error means no profile was started and nothing needs
// stopping.
func Start(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		cpuFile = f
	}
	done := false
	stop := func() error {
		if done {
			return nil
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			runtime.GC() // settle the heap so the profile shows live data
			werr := pprof.WriteHeapProfile(f)
			cerr := f.Close()
			if werr != nil {
				return fmt.Errorf("write heap profile: %w", werr)
			}
			if cerr != nil {
				return cerr
			}
		}
		return nil
	}
	return stop, nil
}
