// Package cache models the Alliant FX/8 cluster's 4-way interleaved
// shared data cache. The cache is a bandwidth resource shared by the
// cluster's eight CEs: its four banks deliver at most Ways words per
// cycle in aggregate, so vector-streaming CEs contend for it — the
// cluster-level half of what the paper's Section-7 methodology
// measures as contention overhead (the estimator cannot separate
// cluster-cache queueing from global memory queueing, and neither do
// the published numbers).
//
// Miss handling (refill from cluster memory) occupies the banks too.
// Misses are charged analytically from a workload-supplied hit ratio,
// with a deterministic fractional-miss accumulator so runs are exactly
// reproducible.
package cache

import (
	"repro/internal/arch"
	"repro/internal/sim"
)

// Cache is one cluster's shared data cache.
type Cache struct {
	cost arch.CostModel
	bus  *sim.Calendar // the interleaved bank array

	hits      uint64
	misses    uint64
	missCarry float64
	stall     sim.Duration
	queued    sim.Duration
}

// Ways is the interleave factor of the FX/8 cache (4-way).
const Ways = 4

// New creates a cache using the given cost model.
func New(cost arch.CostModel) *Cache {
	return &Cache{cost: cost, bus: sim.NewCalendar("cache")}
}

// Occupancy returns how long the bank array is busy serving a request
// of the given word count with the given expected hit ratio, and the
// number of line misses charged (deterministic carry).
func (c *Cache) occupancy(words int, hitRatio float64) (sim.Duration, uint64) {
	if words < 1 {
		words = 1
	}
	if hitRatio < 0 {
		hitRatio = 0
	}
	if hitRatio > 1 {
		hitRatio = 1
	}
	expectedMisses := float64(words)*(1-hitRatio)/float64(c.cost.CacheLineWords) + c.missCarry
	misses := uint64(expectedMisses)
	c.missCarry = expectedMisses - float64(misses)

	hitWords := uint64(words) - misses*uint64(c.cost.CacheLineWords)
	if misses*uint64(c.cost.CacheLineWords) > uint64(words) {
		hitWords = 0
	}
	c.hits += hitWords
	c.misses += misses

	// Hits stream at Ways words per cycle; each miss stalls the banks
	// for the cluster-memory refill.
	occ := sim.Duration((int64(hitWords)*c.cost.CacheHitCycles+int64(Ways)-1)/int64(Ways) +
		int64(misses)*(c.cost.CacheMissCycles+int64(c.cost.CacheLineWords)*c.cost.CacheHitCycles))
	return occ, misses
}

// Access performs a stride-1 reference of the given word count at time
// now with the given expected hit ratio. It returns the time the data
// is available (the caller stalls until then) and the queueing delay
// suffered behind other CEs' requests.
func (c *Cache) Access(now sim.Time, words int, hitRatio float64) (done sim.Time, queued sim.Duration) {
	occ, _ := c.occupancy(words, hitRatio)
	start, end := c.bus.Reserve(now, occ)
	queued = start - now
	done = end + sim.Duration(c.cost.CacheHitCycles) // pipeline drain
	c.stall += done - now
	c.queued += queued
	return done, queued
}

// Hits returns the number of words served from the cache.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of line misses.
func (c *Cache) Misses() uint64 { return c.misses }

// StallTotal returns the total stall charged to CEs.
func (c *Cache) StallTotal() sim.Duration { return c.stall }

// QueuedTotal returns the total time CEs spent queued behind each
// other at the cache banks — the cluster-level contention.
func (c *Cache) QueuedTotal() sim.Duration { return c.queued }

// Utilization returns the bank array's busy fraction at time now.
func (c *Cache) Utilization(now sim.Time) float64 { return c.bus.Utilization(now) }

// MissRatio returns misses-per-word observed so far.
func (c *Cache) MissRatio() float64 {
	total := c.hits + c.misses*uint64(c.cost.CacheLineWords)
	if total == 0 {
		return 0
	}
	return float64(c.misses*uint64(c.cost.CacheLineWords)) / float64(total)
}
