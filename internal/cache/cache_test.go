package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/sim"
)

func TestAllHitsStreamAtWays(t *testing.T) {
	cost := arch.DefaultCosts()
	c := New(cost)
	done, queued := c.Access(0, 100, 1.0)
	if queued != 0 {
		t.Fatalf("lone access queued %d", queued)
	}
	// 100 words at 4 words/cycle = 25 cycles occupancy + drain.
	want := sim.Time(25 + cost.CacheHitCycles)
	if done != want {
		t.Fatalf("all-hit done = %d, want %d", done, want)
	}
	if c.Misses() != 0 {
		t.Fatalf("misses = %d, want 0", c.Misses())
	}
}

func TestMissesCostMore(t *testing.T) {
	cost := arch.DefaultCosts()
	a := New(cost)
	b := New(cost)
	hitDone, _ := a.Access(0, 1000, 1.0)
	missDone, _ := b.Access(0, 1000, 0.0)
	if missDone <= hitDone {
		t.Fatalf("all-miss %d not slower than all-hit %d", missDone, hitDone)
	}
}

func TestSharedBankContention(t *testing.T) {
	// Two simultaneous streams queue behind each other.
	c := New(arch.DefaultCosts())
	_, q1 := c.Access(0, 400, 1.0)
	done2, q2 := c.Access(0, 400, 1.0)
	if q1 != 0 {
		t.Fatalf("first stream queued %d", q1)
	}
	if q2 == 0 {
		t.Fatal("second stream saw no bank contention")
	}
	if done2 < 200 {
		t.Fatalf("second stream done at %d, want serialized past 200", done2)
	}
}

func TestIdleGapNoContention(t *testing.T) {
	c := New(arch.DefaultCosts())
	c.Access(0, 400, 1.0)
	_, q := c.Access(10_000, 400, 1.0)
	if q != 0 {
		t.Fatalf("well-separated access queued %d", q)
	}
}

func TestFractionalMissCarry(t *testing.T) {
	// With hitRatio 0.75 (exact in binary) and line size 4, each
	// 8-word access expects 0.5 misses; after 8 accesses exactly 4
	// misses must have occurred (deterministically, via the carry).
	c := New(arch.DefaultCosts())
	at := sim.Time(0)
	for i := 0; i < 8; i++ {
		done, _ := c.Access(at, 8, 0.75)
		at = done
	}
	if c.Misses() != 4 {
		t.Fatalf("misses = %d, want 4", c.Misses())
	}
}

func TestMissRatioConverges(t *testing.T) {
	c := New(arch.DefaultCosts())
	at := sim.Time(0)
	for i := 0; i < 1000; i++ {
		done, _ := c.Access(at, 64, 0.75)
		at = done
	}
	got := c.MissRatio()
	if got < 0.24 || got > 0.26 {
		t.Fatalf("long-run miss ratio = %v, want ~0.25", got)
	}
}

func TestHitRatioClamped(t *testing.T) {
	c := New(arch.DefaultCosts())
	if done, _ := c.Access(0, 10, 1.5); done <= 0 {
		t.Fatal("clamped hitRatio 1.5 produced no stall")
	}
	c2 := New(arch.DefaultCosts())
	if done, _ := c2.Access(0, 10, -0.5); done <= 0 {
		t.Fatal("clamped hitRatio -0.5 produced no stall")
	}
}

func TestUtilizationAndQueueStats(t *testing.T) {
	c := New(arch.DefaultCosts())
	for i := 0; i < 8; i++ {
		c.Access(0, 400, 1.0) // 8 simultaneous streams
	}
	if c.QueuedTotal() == 0 {
		t.Fatal("no queueing recorded")
	}
	if u := c.Utilization(800); u <= 0.9 {
		t.Fatalf("utilization %v, want ~1 under saturation", u)
	}
}

func TestQuickDoneMonotoneNonNegative(t *testing.T) {
	f := func(words []uint8, ratioRaw uint8) bool {
		c := New(arch.DefaultCosts())
		r := float64(ratioRaw) / 255
		at := sim.Time(0)
		for _, w := range words {
			done, queued := c.Access(at, int(w%200)+1, r)
			if queued < 0 || done < at {
				return false
			}
			at += 2
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
