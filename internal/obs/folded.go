package obs

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// foldGroup maps an accounting category to its top-level flamegraph
// frame, mirroring the paper's Figure-3 fold: runtime-library spinning
// is user time; only the Xylem categories are "os".
func foldGroup(c metrics.Category) string {
	switch {
	case c.IsUser():
		return "user"
	case c == metrics.CatOSSystem, c == metrics.CatOSInterrupt, c == metrics.CatOSSpin:
		return "os"
	default:
		return "idle"
	}
}

// FoldedLine is one stack of the folded profile.
type FoldedLine struct {
	Stack  string // semicolon-separated frames, flamegraph.pl syntax
	Cycles int64
}

// Folded builds the pprof-style folded-stack profile from the per-CE
// accounts: one stack per (CE, category), weighted by virtual cycles,
// with frames app;ceN;group;category.
//
// The profile is normalized so every CE's stacks sum to exactly the
// completion time — the flamegraph answers "where does CT × CEs go?":
// time a CE never accounted (blocked before startup, fail-stopped) is
// folded into idle, and the small overshoot the end-of-run accounting
// flush can produce (work charged without virtual time passing) is
// trimmed from idle first, then from the largest categories.
func Folded(app string, ct sim.Time, accounts []*metrics.Account) []FoldedLine {
	var out []FoldedLine
	for _, a := range accounts {
		var vals [metrics.NumCategories]int64
		var sum int64
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			vals[c] = int64(a.Get(c))
			sum += vals[c]
		}
		if sum < int64(ct) {
			vals[metrics.CatIdle] += int64(ct) - sum
		}
		for excess := sum - int64(ct); excess > 0; {
			// Trim idle first, then whichever category is largest.
			victim := metrics.CatIdle
			if vals[victim] == 0 {
				for c := metrics.Category(0); c < metrics.NumCategories; c++ {
					if vals[c] > vals[victim] {
						victim = c
					}
				}
			}
			cut := excess
			if cut > vals[victim] {
				cut = vals[victim]
			}
			vals[victim] -= cut
			excess -= cut
			if cut == 0 {
				break // nothing left to trim (ct == 0)
			}
		}
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			if vals[c] == 0 {
				continue
			}
			out = append(out, FoldedLine{
				Stack:  fmt.Sprintf("%s;ce%d;%s;%s", app, a.CE(), foldGroup(c), c),
				Cycles: vals[c],
			})
		}
	}
	return out
}

// WriteFolded writes the folded-stack profile in the format
// flamegraph.pl and inferno consume: one "stack weight" line per
// (CE, category). The total weight equals CT × CEs (see Folded).
func WriteFolded(w io.Writer, app string, ct sim.Time, accounts []*metrics.Account) error {
	for _, l := range Folded(app, ct, accounts) {
		if _, err := fmt.Fprintf(w, "%s %d\n", l.Stack, l.Cycles); err != nil {
			return err
		}
	}
	return nil
}
