package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestPromSetExposition(t *testing.T) {
	s := NewPromSet(map[string]string{"service": "cedarserved", "instance": "a"})
	c := s.Counter("serve_retries_total", "retries")
	g := s.Gauge("serve_running_jobs", "running")
	s.GaugeFunc("serve_queue_depth", "queued", func() float64 { return 7 })
	s.CounterFunc("serve_cache_hits_total", "hits", func() float64 { return 5 })
	c.Add(3)
	g.Set(2.5)

	var b strings.Builder
	if err := s.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cedar_serve_retries_total counter",
		`cedar_serve_retries_total{instance="a",service="cedarserved"} 3`,
		"# TYPE cedar_serve_running_jobs gauge",
		`cedar_serve_running_jobs{instance="a",service="cedarserved"} 2.5`,
		`cedar_serve_queue_depth{instance="a",service="cedarserved"} 7`,
		"# TYPE cedar_serve_cache_hits_total counter",
		`cedar_serve_cache_hits_total{instance="a",service="cedarserved"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromSetHandlerAndReRegister(t *testing.T) {
	s := NewPromSet(nil)
	a := s.Counter("hits_total", "h")
	b := s.Counter("hits_total", "h")
	a.Inc()
	b.Inc()
	if a.Value() != 2 {
		t.Fatalf("re-registered counter not shared: %d", a.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type did not panic")
		}
	}()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "cedar_hits_total 2") {
		t.Fatalf("handler output: %s", rec.Body.String())
	}
	s.Gauge("hits_total", "now a gauge")
}

func TestPromSetConcurrent(t *testing.T) {
	s := NewPromSet(nil)
	c := s.Counter("ops_total", "ops")
	g := s.Gauge("level", "level")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
				g.Set(float64(j))
				var b strings.Builder
				s.Write(&b)
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Fatalf("counter = %d, want 800", c.Value())
	}
}
