package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/hpm"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Span(0, "x", CatRT, 0, 10, 0)
	r.Instant(0, "x", CatRT, 5, 0)
	r.NameLoop(1, "a")
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if got := r.SlowStall(); got != sim.Forever {
		t.Fatalf("nil SlowStall = %d, want Forever", got)
	}
	if r.Spans() != nil || r.Instants() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder returned data")
	}
	if got := r.LoopName(7); got != "loop#7" {
		t.Fatalf("nil LoopName = %q", got)
	}
}

func TestRecorderCapacityDrops(t *testing.T) {
	r := NewRecorder(Options{SpanCapacity: 2})
	for i := 0; i < 5; i++ {
		r.Span(0, "s", CatRT, sim.Time(i), sim.Time(i+1), 0)
	}
	if len(r.Spans()) != 2 {
		t.Fatalf("kept %d spans, want 2", len(r.Spans()))
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", r.Dropped())
	}
}

func TestRecorderSwapsInvertedSpan(t *testing.T) {
	r := NewRecorder(Options{})
	r.Span(0, "s", CatRT, 10, 5, 0)
	s := r.Spans()[0]
	if s.Start != 5 || s.End != 10 {
		t.Fatalf("inverted span not normalized: %+v", s)
	}
}

func TestFoldTracePairsAndLoops(t *testing.T) {
	rec := NewRecorder(Options{})
	rec.NameLoop(1, "sweep")
	records := []hpm.Record{
		{Event: hpm.EvSerialStart, CE: 0, At: 0},
		{Event: hpm.EvSerialEnd, CE: 0, At: 100},
		{Event: hpm.EvLoopPost, CE: 0, At: 100, Aux: 1},
		{Event: hpm.EvHelperJoin, CE: 8, At: 110, Aux: 1},
		{Event: hpm.EvIterStart, CE: 8, At: 120, Aux: 3},
		{Event: hpm.EvIterEnd, CE: 8, At: 150, Aux: 3},
		{Event: hpm.EvHelperDetach, CE: 8, At: 160, Aux: 1},
		{Event: hpm.EvBarrierEnter, CE: 0, At: 140, Aux: 1},
		{Event: hpm.EvBarrierExit, CE: 0, At: 170, Aux: 1},
		{Event: hpm.EvFaultInject, CE: 2, At: 130, Aux: 0},
	}
	spans, instants := FoldTrace(records, rec)

	want := map[string]bool{}
	for _, s := range spans {
		want[s.Name] = true
		if s.End < s.Start {
			t.Fatalf("span %q inverted: %+v", s.Name, s)
		}
	}
	for _, name := range []string{"serial", "iter", "barrier", "sweep"} {
		if !want[name] {
			t.Fatalf("missing folded span %q; have %v", name, want)
		}
	}

	// One machine-track loop window plus two participation spans.
	loops := 0
	parts := 0
	for _, s := range spans {
		if s.Cat == CatLoop {
			if s.Track == TrackMachine {
				loops++
				if s.Start != 100 || s.End != 170 {
					t.Fatalf("loop window = [%d,%d], want [100,170]", s.Start, s.End)
				}
			} else {
				parts++
			}
		}
	}
	if loops != 1 || parts != 2 {
		t.Fatalf("loops=%d parts=%d, want 1 and 2", loops, parts)
	}

	// Spans sorted by start.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans not sorted at %d", i)
		}
	}

	gotFault := false
	for _, in := range instants {
		if in.Name == "fault-inject" {
			gotFault = true
		}
	}
	if !gotFault {
		t.Fatal("fault-inject instant not folded")
	}
}

func TestFoldTraceDropsUnmatched(t *testing.T) {
	records := []hpm.Record{
		{Event: hpm.EvIterStart, CE: 0, At: 10, Aux: 0},
		// no EvIterEnd: truncated buffer
	}
	spans, _ := FoldTrace(records, nil)
	if len(spans) != 0 {
		t.Fatalf("unmatched start produced %d spans", len(spans))
	}
}

func TestClampSpans(t *testing.T) {
	spans := []Span{
		{Name: "a", Start: 0, End: 50},
		{Name: "b", Start: 40, End: 200},
		{Name: "c", Start: 150, End: 160},
	}
	out := ClampSpans(spans, 100)
	if len(out) != 2 {
		t.Fatalf("clamped to %d spans, want 2", len(out))
	}
	if out[1].End != 100 {
		t.Fatalf("span b end = %d, want 100", out[1].End)
	}
}

func TestCollectorRingAndSeries(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCollector(k, Options{SeriesInterval: 10, SeriesCapacity: 4})
	c.AddProbe("now", func(now sim.Time) float64 { return float64(now) })
	c.Start()
	k.Run(100) // samples at 10,20,...,100
	c.Stop()

	if c.Taken() != 10 {
		t.Fatalf("taken = %d, want 10", c.Taken())
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want ring capacity 4", c.Len())
	}
	times := c.Times()
	if times[0] != 70 || times[3] != 100 {
		t.Fatalf("ring kept %v, want [70 80 90 100]", times)
	}
	s, err := c.Series("now")
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range s {
		if v != float64(times[i]) {
			t.Fatalf("series[%d] = %v, want %v", i, v, times[i])
		}
	}
	if _, err := c.Series("missing"); err == nil {
		t.Fatal("Series(missing) did not error")
	}
	at, vals, ok := c.Last()
	if !ok || at != 100 || vals[0] != 100 {
		t.Fatalf("Last = %v %v %v", at, vals, ok)
	}
	m, err := c.Mean("now")
	if err != nil || m != 85 {
		t.Fatalf("Mean = %v (%v), want 85", m, err)
	}
}

func TestCollectorStopEndsSampling(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCollector(k, Options{SeriesInterval: 10, SeriesCapacity: 16})
	c.AddProbe("one", func(sim.Time) float64 { return 1 })
	c.Start()
	k.Run(30)
	c.Stop()
	k.Run(200)
	if c.Len() != 3 {
		t.Fatalf("len = %d after Stop, want 3", c.Len())
	}
}

func TestFoldedTotalsEqualCTTimesCEs(t *testing.T) {
	const ct = 1000
	a0 := metrics.NewAccount(0)
	a0.Add(metrics.CatSerial, 300)
	a0.Add(metrics.CatOSSystem, 200) // 500 unaccounted -> idle
	a1 := metrics.NewAccount(1)
	a1.Add(metrics.CatLoopIter, 900)
	a1.Add(metrics.CatOSSpin, 400) // overshoot of 300 -> trimmed
	accounts := []*metrics.Account{a0, a1}

	lines := Folded("APP", ct, accounts)
	var total int64
	perCE := map[string]int64{}
	for _, l := range lines {
		total += l.Cycles
		frames := strings.Split(l.Stack, ";")
		if len(frames) != 4 || frames[0] != "APP" {
			t.Fatalf("bad stack %q", l.Stack)
		}
		perCE[frames[1]] += l.Cycles
	}
	if total != ct*int64(len(accounts)) {
		t.Fatalf("total weight = %d, want %d", total, ct*int64(len(accounts)))
	}
	for ce, w := range perCE {
		if w != ct {
			t.Fatalf("%s weight = %d, want %d", ce, w, ct)
		}
	}
}

func TestWriteFoldedFormat(t *testing.T) {
	a := metrics.NewAccount(3)
	a.Add(metrics.CatLoopIter, 60)
	var buf bytes.Buffer
	if err := WriteFolded(&buf, "FLO52", 100, []*metrics.Account{a}); err != nil {
		t.Fatal(err)
	}
	want := "FLO52;ce3;user;loop-iter 60\nFLO52;ce3;idle;idle 40\n"
	if buf.String() != want {
		t.Fatalf("folded output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

func TestWriteTraceValidJSON(t *testing.T) {
	b := &Bundle{
		App: "FLO52", Config: "16proc", CEs: 2, CEsPerCluster: 8, CT: 200,
		Spans: []Span{
			{Track: TrackMachine, Name: "sweep", Cat: CatLoop, Start: 10, End: 150, Aux: 1},
			{Track: 0, Name: "iter", Cat: CatRT, Start: 20, End: 80, Aux: 5},
			{Track: 1, Name: "pick", Cat: CatRT, Start: 20, End: 30, Aux: 1},
		},
		Instants: []Instant{{Track: TrackMachine, Name: "fault-inject", Cat: CatFault, At: 60}},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, b); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	lastTs := -1.0
	asyncOpen := map[string]int{}
	for _, ev := range tf.TraceEvents {
		ph := ev["ph"].(string)
		if ph == "M" {
			continue
		}
		ts := ev["ts"].(float64)
		if ts < lastTs {
			t.Fatalf("ts went backwards: %v after %v", ts, lastTs)
		}
		lastTs = ts
		switch ph {
		case "X":
			if ev["dur"].(float64) < 0 {
				t.Fatalf("negative dur in %v", ev)
			}
		case "b":
			asyncOpen[ev["id"].(string)]++
		case "e":
			asyncOpen[ev["id"].(string)]--
		}
	}
	for id, n := range asyncOpen {
		if n != 0 {
			t.Fatalf("async id %s unbalanced: %d", id, n)
		}
	}
}

func TestWriteCSVAndProm(t *testing.T) {
	k := sim.NewKernel(1)
	c := NewCollector(k, Options{SeriesInterval: 5, SeriesCapacity: 8})
	c.AddProbe("concurrency", func(sim.Time) float64 { return 3 })
	c.AddProbe("gm util (mean)", func(sim.Time) float64 { return 0.5 })
	c.Start()
	k.Run(20)
	c.Stop()

	var csv bytes.Buffer
	if err := WriteCSV(&csv, c); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if lines[0] != "cycles,seconds,concurrency,gm util (mean)" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 5 { // header + 4 samples
		t.Fatalf("csv has %d lines, want 5", len(lines))
	}
	if !strings.HasPrefix(lines[1], "5,") || !strings.HasSuffix(lines[1], ",3,0.5") {
		t.Fatalf("csv row = %q", lines[1])
	}

	var prom bytes.Buffer
	if err := WriteProm(&prom, c, map[string]string{"app": "FLO52", "config": "16proc"}); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"# TYPE cedar_concurrency gauge",
		`cedar_concurrency{app="FLO52",config="16proc"} 3`,
		`cedar_gm_util__mean_{app="FLO52",config="16proc"} 0.5`,
		"cedar_virtual_cycles",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}

	var empty bytes.Buffer
	ec := NewCollector(sim.NewKernel(2), Options{SeriesInterval: 5})
	if err := WriteProm(&empty, ec, nil); err == nil {
		t.Fatal("WriteProm with no samples did not error")
	}
}
