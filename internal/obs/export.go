package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/metricreg"
)

// WriteCSV writes the collector's buffered series as CSV: a cycles and
// seconds column followed by one column per probe, rows in
// chronological order.
func WriteCSV(w io.Writer, c *Collector) error {
	names := c.Names()
	cols := make([][]float64, len(names))
	for i, n := range names {
		s, err := c.Series(n)
		if err != nil {
			return err
		}
		cols[i] = s
	}
	if _, err := fmt.Fprintf(w, "cycles,seconds,%s\n", strings.Join(names, ",")); err != nil {
		return err
	}
	for row, t := range c.Times() {
		var b strings.Builder
		fmt.Fprintf(&b, "%d,%.9f", int64(t), arch.Seconds(int64(t)))
		for i := range cols {
			fmt.Fprintf(&b, ",%g", cols[i][row])
		}
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a series name into a Prometheus metric name and
// prefixes the cedar namespace. One sanitizer for the whole tree: the
// registry's exporter owns it.
func promName(name string) string { return metricreg.PromName(name) }

// WriteProm writes the most recent sample of every series in the
// Prometheus text exposition format (version 0.0.4), as gauges with
// the given constant labels. The sample's virtual time is exported as
// cedar_virtual_cycles so scrapes of successive snapshots stay
// ordered.
func WriteProm(w io.Writer, c *Collector, labels map[string]string) error {
	at, vals, ok := c.Last()
	if !ok {
		return fmt.Errorf("obs: no samples to export")
	}
	var lb string
	if len(labels) > 0 {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
		}
		lb = "{" + strings.Join(parts, ",") + "}"
	}
	emit := func(name, help string, v float64) error {
		m := promName(name)
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s%s %g\n", m, help, m, m, lb, v)
		return err
	}
	if err := emit("virtual_cycles", "virtual time of the exported sample, in cycles", float64(at)); err != nil {
		return err
	}
	for i, name := range c.Names() {
		if err := emit(name, "sampled simulator series (see internal/obs)", vals[i]); err != nil {
			return err
		}
	}
	return nil
}
