package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// PromSet is a live metric registry for long-running processes — the
// serving-side counterpart of the Collector, which samples a
// simulation's virtual time. A PromSet holds counters, gauges, and
// pull-time gauge functions, all safe for concurrent use, and renders
// them in the Prometheus text exposition format (version 0.0.4) for a
// /metrics scrape endpoint.
//
// Metric names are sanitized and namespaced exactly like the series
// exporter's (cedar_ prefix), so service metrics and simulation series
// share one vocabulary in dashboards.
type PromSet struct {
	labels string // pre-rendered constant label block, may be ""

	mu    sync.Mutex
	order []string
	byN   map[string]*promMetric
}

type promMetric struct {
	name, help, typ string // typ: "counter" or "gauge"
	bits            atomic.Uint64
	fn              func() float64 // pull-time value; nil uses bits
}

// NewPromSet returns an empty registry with optional constant labels
// applied to every metric.
func NewPromSet(labels map[string]string) *PromSet {
	return &PromSet{labels: renderLabels(labels), byN: map[string]*promMetric{}}
}

func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
	}
	out := "{"
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out + "}"
}

// register adds (or returns the existing) metric under the sanitized
// name. Re-registering with a different type panics: that is a
// programming error, not a runtime condition.
func (s *PromSet) register(name, help, typ string, fn func() float64) *promMetric {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := promName(name)
	if m, ok := s.byN[n]; ok {
		if m.typ != typ {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", n, typ, m.typ))
		}
		return m
	}
	m := &promMetric{name: n, help: help, typ: typ, fn: fn}
	s.order = append(s.order, n)
	s.byN[n] = m
	return m
}

// Counter is a monotonically increasing metric.
type Counter struct{ m *promMetric }

// Counter registers (or fetches) a counter.
func (s *PromSet) Counter(name, help string) Counter {
	return Counter{s.register(name, help, "counter", nil)}
}

// Add increments the counter by n (n must be >= 0).
func (c Counter) Add(n uint64) { c.m.bits.Add(n) }

// Inc increments the counter by one.
func (c Counter) Inc() { c.m.bits.Add(1) }

// Value returns the current count.
func (c Counter) Value() uint64 { return c.m.bits.Load() }

// Gauge is a metric that can go up and down, stored as a float64.
type Gauge struct{ m *promMetric }

// Gauge registers (or fetches) a gauge.
func (s *PromSet) Gauge(name, help string) Gauge {
	return Gauge{s.register(name, help, "gauge", nil)}
}

// Set stores v.
func (g Gauge) Set(v float64) { g.m.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.m.bits.Load()) }

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for quantities some other structure already owns (queue depth, live
// entry counts). fn must be safe to call concurrently.
func (s *PromSet) GaugeFunc(name, help string, fn func() float64) {
	s.register(name, help, "gauge", fn)
}

// CounterFunc registers a counter whose value is computed at scrape
// time — for monotonic totals some other structure already owns (cache
// hit/miss counts). fn must be safe to call concurrently and must
// never decrease, or rate()/increase() over the series break.
func (s *PromSet) CounterFunc(name, help string, fn func() float64) {
	s.register(name, help, "counter", fn)
}

// Write renders every registered metric in registration order.
func (s *PromSet) Write(w io.Writer) error {
	s.mu.Lock()
	metrics := make([]*promMetric, len(s.order))
	for i, n := range s.order {
		metrics[i] = s.byN[n]
	}
	s.mu.Unlock()
	for _, m := range metrics {
		var v float64
		switch {
		case m.fn != nil:
			v = m.fn()
		case m.typ == "counter":
			v = float64(m.bits.Load())
		default:
			v = math.Float64frombits(m.bits.Load())
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s%s %g\n",
			m.name, m.help, m.name, m.typ, m.name, s.labels, v); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an http.Handler serving the set as a Prometheus
// scrape endpoint.
func (s *PromSet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Write(w)
	})
}
