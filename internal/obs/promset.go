package obs

import (
	"io"
	"net/http"

	"repro/internal/metricreg"
)

// Counter and Gauge are the central registry's scalar instruments,
// re-exported so existing callers (the serve package's metric struct)
// keep compiling unchanged.
type Counter = metricreg.Counter

// Gauge is the registry's up-and-down scalar instrument.
type Gauge = metricreg.Gauge

// PromSet is a thin compatibility shim over the central metric
// registry (internal/metricreg) for long-running processes — the
// serving-side counterpart of the Collector, which samples a
// simulation's virtual time. It keeps the original registration API
// (Counter, Gauge, CounterFunc, GaugeFunc) and the original
// Prometheus text exposition output byte-for-byte, but the metrics
// themselves live in a Registry, so the same set also renders as JSON
// or CSV and snapshots for per-job records.
//
// Metric names are sanitized and namespaced at export time exactly
// like the series exporter's (cedar_ prefix), so service metrics and
// simulation series share one vocabulary in dashboards.
type PromSet struct {
	reg    *metricreg.Registry
	labels map[string]string
}

// NewPromSet returns a shim over a fresh registry with optional
// constant labels applied to every exported sample.
func NewPromSet(labels map[string]string) *PromSet {
	return &PromSet{reg: metricreg.New(), labels: labels}
}

// Registry exposes the backing metric registry, for snapshots and the
// non-Prometheus exporters.
func (s *PromSet) Registry() *metricreg.Registry { return s.reg }

// Counter registers (or fetches) a counter.
func (s *PromSet) Counter(name, help string) Counter {
	return s.reg.Counter(name, help, "")
}

// Gauge registers (or fetches) a gauge.
func (s *PromSet) Gauge(name, help string) Gauge {
	return s.reg.Gauge(name, help, "")
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for quantities some other structure already owns (queue depth, live
// entry counts). fn must be safe to call concurrently.
func (s *PromSet) GaugeFunc(name, help string, fn func() float64) {
	s.reg.GaugeFunc(name, help, "", fn)
}

// CounterFunc registers a counter whose value is computed at scrape
// time — for monotonic totals some other structure already owns (cache
// hit/miss counts). fn must be safe to call concurrently and must
// never decrease, or rate()/increase() over the series break.
func (s *PromSet) CounterFunc(name, help string, fn func() float64) {
	s.reg.CounterFunc(name, help, "", fn)
}

// Write renders every registered metric in registration order in the
// Prometheus text exposition format (version 0.0.4).
func (s *PromSet) Write(w io.Writer) error {
	return metricreg.WriteProm(w, s.reg.Snapshot(), s.labels)
}

// Handler returns an http.Handler serving the set as a Prometheus
// scrape endpoint.
func (s *PromSet) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.Write(w)
	})
}
