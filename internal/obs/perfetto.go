package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Bundle is everything the trace exporter needs from one run.
type Bundle struct {
	App           string
	Config        string
	CEs           int
	CEsPerCluster int
	CT            sim.Time
	Spans         []Span
	Instants      []Instant
}

// CycleMicros converts cycles to microseconds for trace timestamps:
// one cycle is 50 ns (the hpm resolution and the CE clock), so 20
// cycles per microsecond.
func CycleMicros(t sim.Time) float64 { return float64(t) * 0.05 }

// traceEvent is one Chrome/Perfetto trace-event JSON object.
type traceEvent struct {
	Name string         `json:"name,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

const tracePid = 1

// tidFor maps a span track to a trace thread id: CE g is thread g+1,
// the machine track is thread 0.
func tidFor(track int) int {
	if track == TrackMachine {
		return 0
	}
	return track + 1
}

// WriteTrace writes the bundle as Chrome trace-event JSON, loadable by
// Perfetto (ui.perfetto.dev) and chrome://tracing: one named thread
// track per CE, a machine track, async begin/end pairs for each
// parallel-loop window, complete (X) events for every span, and
// instant events for the point markers. Events are sorted by
// timestamp; at equal timestamps enclosing spans precede their
// children, so stack-based consumers nest correctly.
func WriteTrace(w io.Writer, b *Bundle) error {
	var evs []traceEvent

	// Process and thread metadata. Metadata events carry no timestamp.
	meta := func(tid int, key, name string) traceEvent {
		return traceEvent{Ph: "M", Pid: tracePid, Tid: tid, Name: key,
			Args: map[string]any{"name": name}}
	}
	var metas []traceEvent
	metas = append(metas, meta(0, "process_name",
		fmt.Sprintf("cedar %s on %s", b.App, b.Config)))
	metas = append(metas, meta(0, "thread_name", "machine"))
	for g := 0; g < b.CEs; g++ {
		label := fmt.Sprintf("ce%d", g)
		if b.CEsPerCluster > 0 {
			label = fmt.Sprintf("ce%d (c%d.ce%d)", g, g/b.CEsPerCluster, g%b.CEsPerCluster)
		}
		metas = append(metas, meta(tidFor(g), "thread_name", label))
	}

	// sortKey orders events at equal timestamps: async begins first,
	// then complete spans (longest first via pre-sorted input), then
	// instants, then async ends.
	type keyed struct {
		ts   float64
		prio int
		dur  float64
		ev   traceEvent
	}
	var body []keyed
	add := func(ts float64, prio int, dur float64, ev traceEvent) {
		body = append(body, keyed{ts: ts, prio: prio, dur: dur, ev: ev})
	}

	for _, s := range b.Spans {
		ts := CycleMicros(s.Start)
		dur := CycleMicros(s.End) - ts
		if s.Track == TrackMachine {
			// Async track: one begin/end pair per loop window, keyed by
			// the loop generation.
			id := fmt.Sprintf("0x%x", s.Aux)
			add(ts, 0, dur, traceEvent{Name: s.Name, Ph: "b", Pid: tracePid, Tid: 0,
				Ts: ts, Cat: s.Cat, ID: id})
			end := CycleMicros(s.End)
			add(end, 3, 0, traceEvent{Name: s.Name, Ph: "e", Pid: tracePid, Tid: 0,
				Ts: end, Cat: s.Cat, ID: id})
			continue
		}
		d := dur
		add(ts, 1, dur, traceEvent{Name: s.Name, Ph: "X", Pid: tracePid, Tid: tidFor(s.Track),
			Ts: ts, Dur: &d, Cat: s.Cat, Args: map[string]any{"aux": s.Aux}})
	}
	for _, in := range b.Instants {
		ts := CycleMicros(in.At)
		scope := "t"
		if in.Track == TrackMachine {
			scope = "p"
		}
		add(ts, 2, 0, traceEvent{Name: in.Name, Ph: "i", Pid: tracePid, Tid: tidFor(in.Track),
			Ts: ts, Cat: in.Cat, S: scope, Args: map[string]any{"aux": in.Aux}})
	}

	sort.SliceStable(body, func(i, j int) bool {
		if body[i].ts != body[j].ts {
			return body[i].ts < body[j].ts
		}
		if body[i].prio != body[j].prio {
			return body[i].prio < body[j].prio
		}
		return body[i].dur > body[j].dur
	})

	evs = append(evs, metas...)
	for _, k := range body {
		evs = append(evs, k.ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"app":               b.App,
			"config":            b.Config,
			"completion_cycles": int64(b.CT),
		},
	})
}
