package obs

import (
	"sort"

	"repro/internal/hpm"
	"repro/internal/sim"
)

// CatRT, CatOS, CatMem, CatLoop, CatFault are the span category groups
// the exporters recognize.
const (
	CatRT    = "rt"    // runtime-library protocol work
	CatOS    = "os"    // Xylem activities
	CatMem   = "mem"   // hardware stalls and queueing
	CatLoop  = "loop"  // whole parallel-loop windows (async track)
	CatFault = "fault" // fault-injection activations
)

// pairRule maps an hpm start/end event pair to a span name.
type pairRule struct {
	start, end hpm.EventID
	name       string
}

// tracePairs are the per-CE event pairs the tracer folds into spans —
// the runtime-library trigger points of Section 4 of the paper.
var tracePairs = []pairRule{
	{hpm.EvSerialStart, hpm.EvSerialEnd, "serial"},
	{hpm.EvMCLoopStart, hpm.EvMCLoopEnd, "mc-loop"},
	{hpm.EvIterStart, hpm.EvIterEnd, "iter"},
	{hpm.EvPickStart, hpm.EvPickEnd, "pick"},
	{hpm.EvBarrierEnter, hpm.EvBarrierExit, "barrier"},
	{hpm.EvWaitStart, hpm.EvWaitEnd, "helper-wait"},
}

// FoldTrace folds a raw cedarhpm event stream into hierarchical spans:
// per-CE spans for the runtime-library pairs (serial sections,
// main-cluster loops, iterations, pickups, barrier and helper waits),
// per-CE loop-participation spans (loop post to barrier exit on the
// main lead; helper join to detach on helper leads), and one
// machine-track async span per posted loop. Names carries loop-name
// metadata (a Recorder is one; nil is fine). Unmatched starts — a
// truncated trace buffer or a fail-stopped CE — are dropped.
//
// The returned spans are sorted by start time (end time breaks ties,
// longest first, so enclosing spans precede their children).
func FoldTrace(records []hpm.Record, names interface{ LoopName(int64) string }) ([]Span, []Instant) {
	type openKey struct {
		ce   int
		rule int
	}
	open := map[openKey]hpm.Record{}
	loopOpen := map[int64]hpm.Record{}    // machine loop window, by generation
	partOpen := map[int]hpm.Record{}      // per-CE loop participation
	ruleOf := map[hpm.EventID]int{}       // start event -> rule index
	endOf := map[hpm.EventID]int{}        // end event -> rule index
	for i, p := range tracePairs {
		ruleOf[p.start] = i
		endOf[p.end] = i
	}

	loopName := func(gen int64) string {
		if names != nil {
			return names.LoopName(gen)
		}
		return (*Recorder)(nil).LoopName(gen)
	}

	var spans []Span
	var instants []Instant
	for _, rec := range records {
		if i, ok := ruleOf[rec.Event]; ok {
			open[openKey{rec.CE, i}] = rec
		}
		if i, ok := endOf[rec.Event]; ok {
			k := openKey{rec.CE, i}
			if s, exists := open[k]; exists {
				spans = append(spans, Span{
					Track: rec.CE, Name: tracePairs[i].name, Cat: CatRT,
					Start: s.At, End: rec.At, Aux: int64(s.Aux),
				})
				delete(open, k)
			}
		}
		switch rec.Event {
		case hpm.EvLoopPost:
			loopOpen[int64(rec.Aux)] = rec
			partOpen[rec.CE] = rec
		case hpm.EvHelperJoin:
			partOpen[rec.CE] = rec
			instants = append(instants, Instant{Track: rec.CE, Name: "join", Cat: CatRT, At: rec.At, Aux: int64(rec.Aux)})
		case hpm.EvHelperDetach:
			if s, ok := partOpen[rec.CE]; ok {
				spans = append(spans, Span{
					Track: rec.CE, Name: loopName(int64(s.Aux)), Cat: CatLoop,
					Start: s.At, End: rec.At, Aux: int64(s.Aux),
				})
				delete(partOpen, rec.CE)
			}
		case hpm.EvBarrierExit:
			if s, ok := partOpen[rec.CE]; ok && s.Aux == rec.Aux {
				spans = append(spans, Span{
					Track: rec.CE, Name: loopName(int64(s.Aux)), Cat: CatLoop,
					Start: s.At, End: rec.At, Aux: int64(s.Aux),
				})
				delete(partOpen, rec.CE)
			}
			if s, ok := loopOpen[int64(rec.Aux)]; ok {
				spans = append(spans, Span{
					Track: TrackMachine, Name: loopName(int64(rec.Aux)), Cat: CatLoop,
					Start: s.At, End: rec.At, Aux: int64(rec.Aux),
				})
				delete(loopOpen, int64(rec.Aux))
			}
		case hpm.EvCtxSwitch:
			instants = append(instants, Instant{Track: rec.CE, Name: "ctx-switch", Cat: CatOS, At: rec.At, Aux: int64(rec.Aux)})
		case hpm.EvFaultInject:
			instants = append(instants, Instant{Track: TrackMachine, Name: "fault-inject", Cat: CatFault, At: rec.At, Aux: int64(rec.Aux)})
		}
	}
	SortSpans(spans)
	return spans, instants
}

// SortSpans orders spans by start time; ties put the longest
// (enclosing) span first, so a stack-based consumer sees parents
// before children.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End > spans[j].End
	})
}

// ClampSpans truncates spans to [0, ct] and drops spans that start at
// or after ct — exporters use it so artifacts never extend past the
// completion time (helpers wind down exactly at CT).
func ClampSpans(spans []Span, ct sim.Time) []Span {
	out := spans[:0:0]
	for _, s := range spans {
		if s.Start >= ct && ct > 0 {
			continue
		}
		if ct > 0 && s.End > ct {
			s.End = ct
		}
		out = append(out, s)
	}
	return out
}
