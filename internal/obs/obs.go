// Package obs is the simulator's observability layer: it turns the
// virtual-time event stream the models already produce — cedarhpm
// event triples, Xylem OS activity, runtime protocol transitions,
// hardware queueing — into artifacts standard tools can open:
//
//   - hierarchical spans (app → loop → iteration; OS spans for
//     syscalls, page faults, CPIs, kernel lock spin; fault-injection
//     spans), exported as Chrome/Perfetto trace-event JSON;
//   - pprof-style folded stacks weighted by virtual cycles, for
//     flamegraphs of where the completion time goes;
//   - ring-buffered time series (concurrency, qmon split, memory and
//     network pressure), exported as CSV or Prometheus text.
//
// The live half is the Recorder: models post spans and instants to it
// during a run. A nil *Recorder is valid and records nothing, and
// every hook site guards with a nil check, so a run without
// observability pays a single pointer comparison per hook — the same
// zero-cost-when-disarmed contract the hpm monitor keeps.
package obs

import (
	"fmt"

	"repro/internal/sim"
)

// Span is one closed interval of virtual time on a track.
type Span struct {
	// Track is the machine-wide CE index the span belongs to, or
	// TrackMachine for machine-scoped (async) spans such as loops and
	// fault windows.
	Track int
	// Name labels the span ("iter", "os-syscall", "gm-stall", ...).
	Name string
	// Cat is the span's category group ("rt", "os", "mem", "fault",
	// "loop"), used as the Perfetto cat field and the folded-stack
	// grouping.
	Cat string
	// Start and End bound the span in cycles.
	Start, End sim.Time
	// Aux carries a construct-dependent identifier (loop generation,
	// iteration index, module number).
	Aux int64
}

// Instant is a point event on a track.
type Instant struct {
	Track int
	Name  string
	Cat   string
	At    sim.Time
	Aux   int64
}

// TrackMachine is the track for machine-scoped spans (loops, faults).
const TrackMachine = -1

// Options configure the observability layer for a run.
type Options struct {
	// SpanCapacity bounds the recorder's span and instant buffers
	// (each); 0 uses DefaultSpanCapacity.
	SpanCapacity int
	// SeriesInterval is the time-series sampling period in cycles; 0
	// uses DefaultSeriesInterval, negative disables series collection.
	SeriesInterval sim.Duration
	// SeriesCapacity bounds each series ring buffer in samples; 0 uses
	// DefaultSeriesCapacity. When the ring fills, the oldest samples
	// are dropped.
	SeriesCapacity int
	// SlowStallCycles is the threshold at or above which hardware
	// stalls (global memory, module queueing) are recorded as spans;
	// 0 uses DefaultSlowStall. Raising it keeps traces small on
	// memory-bound runs.
	SlowStallCycles sim.Duration
}

// Defaults for Options' zero values.
const (
	DefaultSpanCapacity   = 1 << 20
	DefaultSeriesInterval = 10_000 // 0.5 ms of virtual time
	DefaultSeriesCapacity = 1 << 16
	DefaultSlowStall      = 2_000
)

// Recorder collects spans and instants during a run. A nil *Recorder
// is valid and records nothing.
type Recorder struct {
	capacity  int
	slowStall sim.Duration

	spans    []Span
	instants []Instant
	dropped  uint64

	loopNames map[int64]string
}

// NewRecorder creates a recorder with the given options (only
// SpanCapacity and SlowStallCycles apply to the recorder itself).
func NewRecorder(o Options) *Recorder {
	cap := o.SpanCapacity
	if cap <= 0 {
		cap = DefaultSpanCapacity
	}
	slow := o.SlowStallCycles
	if slow <= 0 {
		slow = DefaultSlowStall
	}
	return &Recorder{
		capacity:  cap,
		slowStall: slow,
		loopNames: map[int64]string{},
	}
}

// Enabled reports whether the recorder is armed. Hook sites use it to
// skip attribute assembly when observability is off.
func (r *Recorder) Enabled() bool { return r != nil }

// SlowStall returns the stall-span threshold in cycles; sim.Forever
// when the recorder is nil, so disabled hook sites never match.
func (r *Recorder) SlowStall() sim.Duration {
	if r == nil {
		return sim.Forever
	}
	return r.slowStall
}

// Span records a closed span. Spans are recorded at their end time, in
// dispatch order; export sorts by start.
func (r *Recorder) Span(track int, name, cat string, start, end sim.Time, aux int64) {
	if r == nil {
		return
	}
	if end < start {
		start, end = end, start
	}
	if len(r.spans) >= r.capacity {
		r.dropped++
		return
	}
	r.spans = append(r.spans, Span{Track: track, Name: name, Cat: cat, Start: start, End: end, Aux: aux})
}

// Instant records a point event.
func (r *Recorder) Instant(track int, name, cat string, at sim.Time, aux int64) {
	if r == nil {
		return
	}
	if len(r.instants) >= r.capacity {
		r.dropped++
		return
	}
	r.instants = append(r.instants, Instant{Track: track, Name: name, Cat: cat, At: at, Aux: aux})
}

// NameLoop associates a human-readable name ("fine-sweep sdoall/cdoall")
// with a loop generation, so spans folded from the hpm trace carry the
// application's loop names instead of bare generation numbers.
func (r *Recorder) NameLoop(gen int64, name string) {
	if r == nil {
		return
	}
	// First posting wins: generations are unique per run.
	if _, ok := r.loopNames[gen]; !ok {
		r.loopNames[gen] = name
	}
}

// LoopName returns the registered name for a loop generation, or
// "loop#<gen>" when none was registered.
func (r *Recorder) LoopName(gen int64) string {
	if r != nil {
		if n, ok := r.loopNames[gen]; ok {
			return n
		}
	}
	return fmt.Sprintf("loop#%d", gen)
}

// Spans returns the recorded spans in recording (end-time) order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Instants returns the recorded instants in recording order.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	return r.instants
}

// Dropped returns how many spans and instants were lost to full
// buffers.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}
