package obs

import (
	"fmt"

	"repro/internal/sim"
)

// Probe is one time-series signal: a named function sampled at the
// collector's interval. Probes must be pure reads of simulation state —
// the collector runs them from kernel events, and a probe that mutated
// state would perturb the run it is observing.
type Probe struct {
	Name string
	Fn   func(now sim.Time) float64
}

// Collector periodically samples a set of probes into ring-buffered
// series, the way the statfx monitor samples concurrency on the real
// machine. When the ring fills, the oldest samples are dropped, so a
// long run keeps its most recent window at full resolution.
type Collector struct {
	k        *sim.Kernel
	interval sim.Duration
	capacity int

	probes []Probe

	times []sim.Time  // ring buffer of sample times
	vals  [][]float64 // vals[p] is probe p's ring buffer
	head  int         // index of the oldest sample
	n     int         // samples currently buffered

	taken   uint64 // total samples taken (including evicted)
	started bool
	stopped bool
}

// NewCollector creates a collector sampling every interval cycles with
// the given ring capacity (samples per series). It does not start
// sampling until Start.
func NewCollector(k *sim.Kernel, o Options) *Collector {
	interval := o.SeriesInterval
	if interval == 0 {
		interval = DefaultSeriesInterval
	}
	capacity := o.SeriesCapacity
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Collector{k: k, interval: interval, capacity: capacity}
}

// Interval returns the sampling period in cycles.
func (c *Collector) Interval() sim.Duration { return c.interval }

// AddProbe registers a probe. All probes must be registered before
// Start.
func (c *Collector) AddProbe(name string, fn func(now sim.Time) float64) {
	if c.started {
		panic("obs: AddProbe after Start")
	}
	c.probes = append(c.probes, Probe{Name: name, Fn: fn})
}

// Start begins sampling. A collector with a non-positive interval or
// no probes never samples.
func (c *Collector) Start() {
	if c == nil || c.started || c.interval <= 0 || len(c.probes) == 0 {
		return
	}
	c.started = true
	c.times = make([]sim.Time, c.capacity)
	c.vals = make([][]float64, len(c.probes))
	for i := range c.vals {
		c.vals[i] = make([]float64, c.capacity)
	}
	c.schedule()
}

func (c *Collector) schedule() {
	c.k.After(c.interval, func() {
		if c.stopped {
			return
		}
		c.sample()
		c.schedule()
	})
}

func (c *Collector) sample() {
	now := c.k.Now()
	slot := (c.head + c.n) % c.capacity
	if c.n == c.capacity {
		c.head = (c.head + 1) % c.capacity // evict the oldest
	} else {
		c.n++
	}
	c.times[slot] = now
	for p, pr := range c.probes {
		c.vals[p][slot] = pr.Fn(now)
	}
	c.taken++
}

// Stop ends sampling. Idempotent.
func (c *Collector) Stop() {
	if c == nil {
		return
	}
	c.stopped = true
}

// Len returns the number of buffered samples.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	return c.n
}

// Taken returns the total number of samples taken, including any that
// were evicted from a full ring.
func (c *Collector) Taken() uint64 {
	if c == nil {
		return 0
	}
	return c.taken
}

// Names returns the probe names in registration order.
func (c *Collector) Names() []string {
	if c == nil {
		return nil
	}
	out := make([]string, len(c.probes))
	for i, p := range c.probes {
		out[i] = p.Name
	}
	return out
}

// Times returns the buffered sample times in chronological order.
func (c *Collector) Times() []sim.Time {
	if c == nil {
		return nil
	}
	out := make([]sim.Time, c.n)
	for i := 0; i < c.n; i++ {
		out[i] = c.times[(c.head+i)%c.capacity]
	}
	return out
}

// Series returns the buffered samples of the named probe in
// chronological order, or an error if no such probe exists.
func (c *Collector) Series(name string) ([]float64, error) {
	if c == nil {
		return nil, fmt.Errorf("obs: nil collector")
	}
	for p, pr := range c.probes {
		if pr.Name != name {
			continue
		}
		out := make([]float64, c.n)
		for i := 0; i < c.n; i++ {
			out[i] = c.vals[p][(c.head+i)%c.capacity]
		}
		return out, nil
	}
	return nil, fmt.Errorf("obs: no series %q (have %v)", name, c.Names())
}

// Mean returns the time-average of the named series over the buffered
// window (samples are equally spaced, so the arithmetic mean is the
// time average).
func (c *Collector) Mean(name string) (float64, error) {
	s, err := c.Series(name)
	if err != nil {
		return 0, err
	}
	if len(s) == 0 {
		return 0, nil
	}
	total := 0.0
	for _, v := range s {
		total += v
	}
	return total / float64(len(s)), nil
}

// Last returns the most recent sample of every probe, in registration
// order, plus its time. ok is false when nothing has been sampled yet.
func (c *Collector) Last() (at sim.Time, vals []float64, ok bool) {
	if c == nil || c.n == 0 {
		return 0, nil, false
	}
	slot := (c.head + c.n - 1) % c.capacity
	vals = make([]float64, len(c.probes))
	for p := range c.probes {
		vals[p] = c.vals[p][slot]
	}
	return c.times[slot], vals, true
}
