package qmon

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestForAccountBreakdown(t *testing.T) {
	a := metrics.NewAccount(0)
	a.Add(metrics.CatSerial, 300)
	a.Add(metrics.CatBarrierWait, 100) // user-level spin is user time
	a.Add(metrics.CatOSSystem, 200)
	a.Add(metrics.CatOSInterrupt, 100)
	a.Add(metrics.CatOSSpin, 50)

	b := ForAccount(a, 1000)
	if math.Abs(b.User-0.4) > 1e-9 {
		t.Fatalf("user = %v, want 0.4", b.User)
	}
	if math.Abs(b.System-0.2) > 1e-9 || math.Abs(b.Interrupt-0.1) > 1e-9 || math.Abs(b.Spin-0.05) > 1e-9 {
		t.Fatalf("sys/int/spin = %v/%v/%v", b.System, b.Interrupt, b.Spin)
	}
	if math.Abs(b.Idle-0.25) > 1e-9 {
		t.Fatalf("idle = %v, want 0.25", b.Idle)
	}
	if math.Abs(b.OSShare()-0.35) > 1e-9 {
		t.Fatalf("OS share = %v, want 0.35", b.OSShare())
	}
}

func TestBreakdownFractionsSumToOne(t *testing.T) {
	a := metrics.NewAccount(0)
	a.Add(metrics.CatLoopIter, 123)
	a.Add(metrics.CatGMStall, 456)
	a.Add(metrics.CatOSSystem, 78)
	b := ForAccount(a, 1000)
	sum := b.User + b.System + b.Interrupt + b.Spin + b.Idle
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", sum)
	}
}

func TestZeroCT(t *testing.T) {
	a := metrics.NewAccount(0)
	b := ForAccount(a, 0)
	if b.User != 0 || b.OSShare() != 0 {
		t.Fatal("nonzero breakdown at zero CT")
	}
}

func TestForClusterUsesLead(t *testing.T) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, arch.Cedar16, arch.DefaultCosts())
	m.Clusters[1].Lead().Acct.Add(metrics.CatHelperWait, 400)
	m.Clusters[1].CEs[3].Acct.Add(metrics.CatOSSystem, 900) // not the lead

	b := ForCluster(m.Clusters[1], 1000)
	if math.Abs(b.User-0.4) > 1e-9 {
		t.Fatalf("cluster task user = %v, want lead's 0.4", b.User)
	}
	if b.System != 0 {
		t.Fatal("non-lead account leaked into the task view")
	}
}

func TestForMachineAverages(t *testing.T) {
	k := sim.NewKernel(1)
	m := cluster.NewMachine(k, arch.Cedar4, arch.DefaultCosts())
	// One of four CEs fully busy in user code.
	m.CE(2).Acct.Add(metrics.CatLoopIter, 1000)
	b := ForMachine(m, 1000)
	if math.Abs(b.User-0.25) > 1e-9 {
		t.Fatalf("machine user = %v, want 0.25", b.User)
	}
	if math.Abs(b.Idle-0.75) > 1e-9 {
		t.Fatalf("machine idle = %v, want 0.75", b.Idle)
	}
}
