// Package qmon models "Q", the software measurement facility the paper
// uses for Section 5's completion-time breakdown: per-cluster user,
// system, interrupt, and (kernel lock) spin time (Figure 3).
//
// User time follows the paper's definition: it "includes the actual
// busy time, stall times due to global memory accesses or cache
// refills, the time spent spinning on user-level synchronization locks
// or waiting at the barriers" — i.e. runtime-library spinning is user
// time here, and is only separated out by the Section-6 breakdown.
package qmon

import (
	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Breakdown is the Figure-3 view of one cluster task (or of the whole
// machine): fractions of completion time.
type Breakdown struct {
	User      float64
	System    float64
	Interrupt float64
	Spin      float64 // kernel lock spin
	Idle      float64
}

// OSShare returns the total operating-system share (system + interrupt
// + spin), the quantity the paper tracks as "5-21% of the completion
// time".
func (b Breakdown) OSShare() float64 { return b.System + b.Interrupt + b.Spin }

// ForAccount computes the breakdown of a single CE's account over
// completion time ct.
func ForAccount(a *metrics.Account, ct sim.Time) Breakdown {
	if ct <= 0 {
		return Breakdown{}
	}
	f := func(d sim.Duration) float64 { return float64(d) / float64(ct) }
	b := Breakdown{
		User:      f(a.UserTotal()),
		System:    f(a.Get(metrics.CatOSSystem)),
		Interrupt: f(a.Get(metrics.CatOSInterrupt)),
		Spin:      f(a.Get(metrics.CatOSSpin)),
	}
	b.Idle = 1 - b.User - b.System - b.Interrupt - b.Spin
	if b.Idle < 0 {
		b.Idle = 0
	}
	return b
}

// ForCluster computes the task-level breakdown for one cluster: the
// paper reports the breakdown "for the main task of the application"
// per cluster, which the model takes as the cluster lead CE's
// timeline (the lead participates in every phase of the task).
func ForCluster(cl *cluster.Cluster, ct sim.Time) Breakdown {
	return ForAccount(cl.Lead().Acct, ct)
}

// ForMachine averages the breakdown over every CE of the machine —
// the machine-wide utilization view.
func ForMachine(m *cluster.Machine, ct sim.Time) Breakdown {
	var sum Breakdown
	n := 0
	for _, a := range m.Accounts() {
		b := ForAccount(a, ct)
		sum.User += b.User
		sum.System += b.System
		sum.Interrupt += b.Interrupt
		sum.Spin += b.Spin
		sum.Idle += b.Idle
		n++
	}
	if n == 0 {
		return Breakdown{}
	}
	sum.User /= float64(n)
	sum.System /= float64(n)
	sum.Interrupt /= float64(n)
	sum.Spin /= float64(n)
	sum.Idle /= float64(n)
	return sum
}
