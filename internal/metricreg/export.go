package metricreg

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromName sanitizes a registry name into a Prometheus metric name and
// prefixes the cedar namespace, exactly like the obs series exporter,
// so service metrics and simulation series share one vocabulary in
// dashboards.
func PromName(name string) string {
	var b strings.Builder
	b.WriteString("cedar_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// renderLabels renders a constant label block ("{a=\"x\",b=\"y\"}"),
// keys sorted; empty input renders "".
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// promType maps a registry type onto the Prometheus vocabulary:
// distributions render one sample per cell, each a monotone
// accumulation, so they expose as counters.
func promType(t Type) string {
	if t == TypeGauge {
		return "gauge"
	}
	return "counter"
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4) with the given constant labels on every
// sample. Scalar metrics render as one sample; distribution metrics
// render one sample per cell, the axis labels first, then the constant
// labels. Metrics appear in registration order — the format the serve
// smoke test greps and obs.PromSet has always emitted.
func WriteProm(w io.Writer, s Snapshot, labels map[string]string) error {
	constant := renderLabels(labels)
	for _, m := range s {
		name := PromName(m.Name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, m.Help, name, promType(m.Type)); err != nil {
			return err
		}
		if m.Type.scalar() {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", name, constant, m.Value); err != nil {
				return err
			}
			continue
		}
		for _, c := range m.Cells {
			var lb strings.Builder
			lb.WriteByte('{')
			fmt.Fprintf(&lb, "%s=%q", labelName(m.AxisNames[0]), c.Label[0])
			if m.Type == TypeBivariate {
				fmt.Fprintf(&lb, ",%s=%q", labelName(m.AxisNames[1]), c.Label[1])
			}
			if constant != "" {
				lb.WriteByte(',')
				lb.WriteString(strings.TrimPrefix(strings.TrimSuffix(constant, "}"), "{"))
			}
			lb.WriteByte('}')
			if _, err := fmt.Fprintf(w, "%s%s %g\n", name, lb.String(), c.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// labelName sanitizes an axis name into a Prometheus label name
// (without the cedar_ metric prefix).
func labelName(name string) string {
	return strings.TrimPrefix(PromName(name), "cedar_")
}

// jsonMetric is the JSON export shape of one metric.
type jsonMetric struct {
	Name  string     `json:"name"`
	Type  string     `json:"type"`
	Unit  string     `json:"unit,omitempty"`
	Help  string     `json:"help,omitempty"`
	Value *float64   `json:"value,omitempty"`
	Axes  []string   `json:"axes,omitempty"`
	Cells []jsonCell `json:"cells,omitempty"`
}

// jsonCell is one distribution cell in the JSON export.
type jsonCell struct {
	Keys   []int64  `json:"keys"`
	Labels []string `json:"labels"`
	Value  float64  `json:"value"`
}

// MarshalJSON renders the snapshot as a deterministic JSON array of
// metric objects (registration order, cells key-sorted). Callers that
// need an envelope ({"app": ..., "metrics": [...]}) compose around it.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	out := make([]jsonMetric, 0, len(s))
	for _, m := range s {
		jm := jsonMetric{Name: m.Name, Type: m.Type.String(), Unit: m.Unit, Help: m.Help}
		if m.Type.scalar() {
			v := m.Value
			jm.Value = &v
		} else {
			jm.Axes = []string{m.AxisNames[0]}
			if m.Type == TypeBivariate {
				jm.Axes = append(jm.Axes, m.AxisNames[1])
			}
			jm.Cells = make([]jsonCell, 0, len(m.Cells))
			for _, c := range m.Cells {
				jc := jsonCell{Keys: []int64{c.Key[0]}, Labels: []string{c.Label[0]}, Value: c.Value}
				if m.Type == TypeBivariate {
					jc.Keys = append(jc.Keys, c.Key[1])
					jc.Labels = append(jc.Labels, c.Label[1])
				}
				jm.Cells = append(jm.Cells, jc)
			}
		}
		out = append(out, jm)
	}
	return json.Marshal(out)
}

// WriteJSON writes the snapshot as an indented JSON document:
// {"metrics": [...]}.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]Snapshot{"metrics": s})
}

// csvField quotes a CSV field when it needs quoting.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteCSV writes the snapshot as CSV: one row per scalar metric, one
// row per distribution cell, with the axis labels in the key columns.
func WriteCSV(w io.Writer, s Snapshot) error {
	if _, err := io.WriteString(w, "metric,type,unit,key1,key2,value\n"); err != nil {
		return err
	}
	for _, m := range s {
		if m.Type.scalar() {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,,,%g\n",
				csvField(m.Name), m.Type, csvField(m.Unit), m.Value); err != nil {
				return err
			}
			continue
		}
		for _, c := range m.Cells {
			if _, err := fmt.Fprintf(w, "%s,%s,%s,%s,%s,%g\n",
				csvField(m.Name), m.Type, csvField(m.Unit),
				csvField(c.Label[0]), csvField(c.Label[1]), c.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
