// Package metricreg is the central metric directory: every measurement
// the reproduction exposes — statfx concurrency, qmon breakdown rows,
// hpm event counts, the OS activity table, the sweep service's
// operational counters — registers here exactly once, with a name, a
// help string, a unit, and a type, and is then included in every
// exporter automatically (Prometheus text exposition, JSON, CSV, and —
// for live scalar metrics — the obs time-series collector).
//
// The design follows the metric directory of scalable-flow-analyzer:
// one registry file owns registration and the hook lists, typed metric
// implementations cover the three measurement shapes the analysis
// needs — a simple counter, a univariate distribution (value per key),
// and a bivariate distribution (value per key pair) — and the export
// file renders a registry snapshot into each output format, so an
// exporter can never disagree with another about what exists or what
// its value was at snapshot time.
//
// Zero-cost-when-disabled is a contract, inherited from the hpm
// monitor and the obs recorder: a nil *Registry is valid, hands out
// inert zero-value instruments, and every instrument method on a
// disarmed handle is a single pointer comparison — no allocation, no
// atomic traffic. The disabled path is asserted at 0 allocs/op by the
// package tests and benchmarks, the same way the PR 5 kernel
// benchmarks pin the event core.
//
// All instruments are safe for concurrent use: counters and gauges are
// single atomics, distributions take a per-metric mutex on the observe
// path, and Snapshot gives a consistent point-in-time view to render
// from.
package metricreg

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// floatToBits / floatFromBits move gauge values through the shared
// atomic word.
func floatToBits(v float64) uint64   { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Type classifies a metric.
type Type int

const (
	// TypeCounter is a monotonically increasing scalar (event counts,
	// dropped records, cache hits).
	TypeCounter Type = iota
	// TypeGauge is a scalar that can move both ways (queue depth,
	// sampled concurrency, drain duration).
	TypeGauge
	// TypeUnivariate is a value per integer key (time per OS category,
	// events per hpm event id).
	TypeUnivariate
	// TypeBivariate is a value per integer key pair (cycles per
	// CE × accounting category).
	TypeBivariate
)

// String implements fmt.Stringer with the exporters' vocabulary.
func (t Type) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeUnivariate:
		return "univariate"
	case TypeBivariate:
		return "bivariate"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// scalar reports whether the type carries one value (as opposed to a
// distribution of cells).
func (t Type) scalar() bool { return t == TypeCounter || t == TypeGauge }

// Desc describes a registered metric.
type Desc struct {
	Name string // registry name; exporters sanitize per format
	Help string // one-line human description
	Unit string // "cycles", "events", "jobs", "bytes", "seconds", ...
	Type Type
}

// Axis names one key dimension of a distribution. Label, when set,
// renders a key value for humans (a category or event name); nil keys
// render as decimal integers.
type Axis struct {
	Name  string
	Label func(int64) string
}

// labelFor renders one key value on this axis.
func (a Axis) labelFor(k int64) string {
	if a.Label != nil {
		return a.Label(k)
	}
	return strconv.FormatInt(k, 10)
}

// metric is one registry entry. Scalars live in bits (counters as
// uint64, gauges as float64 bits) or are computed by fn at read time;
// distribution cells live in cells under mu.
type metric struct {
	desc Desc
	axes [2]Axis

	bits atomic.Uint64
	fn   func() float64

	mu    sync.Mutex
	cells map[[2]int64]float64
}

// read returns a scalar metric's current value.
func (m *metric) read() float64 {
	if m.fn != nil {
		return m.fn()
	}
	if m.desc.Type == TypeCounter {
		return float64(m.bits.Load())
	}
	return floatFromBits(m.bits.Load())
}

// Registry is the central metric directory. A nil *Registry is valid:
// it hands out inert instruments and snapshots to nothing.
type Registry struct {
	mu    sync.Mutex
	order []*metric
	byN   map[string]*metric
}

// New returns an empty registry.
func New() *Registry { return &Registry{byN: map[string]*metric{}} }

// register adds (or returns the existing) metric under name.
// Re-registering with a different type panics: that is a programming
// error, not a runtime condition. Returns nil on a nil registry.
func (r *Registry) register(desc Desc, axes [2]Axis, fn func() float64) *metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byN[desc.Name]; ok {
		if m.desc.Type != desc.Type {
			panic(fmt.Sprintf("metricreg: metric %s re-registered as %s (was %s)",
				desc.Name, desc.Type, m.desc.Type))
		}
		return m
	}
	m := &metric{desc: desc, axes: axes, fn: fn}
	if !desc.Type.scalar() {
		m.cells = map[[2]int64]float64{}
	}
	r.order = append(r.order, m)
	r.byN[desc.Name] = m
	return m
}

// Counter registers (or fetches) a monotonically increasing scalar.
func (r *Registry) Counter(name, help, unit string) Counter {
	return Counter{r.register(Desc{Name: name, Help: help, Unit: unit, Type: TypeCounter}, [2]Axis{}, nil)}
}

// Gauge registers (or fetches) an up-and-down scalar.
func (r *Registry) Gauge(name, help, unit string) Gauge {
	return Gauge{r.register(Desc{Name: name, Help: help, Unit: unit, Type: TypeGauge}, [2]Axis{}, nil)}
}

// CounterFunc registers a counter whose value some other structure
// already owns, read at snapshot time. fn must be safe to call
// concurrently and must never decrease.
func (r *Registry) CounterFunc(name, help, unit string, fn func() float64) {
	r.register(Desc{Name: name, Help: help, Unit: unit, Type: TypeCounter}, [2]Axis{}, fn)
}

// GaugeFunc registers a gauge computed at snapshot time.
func (r *Registry) GaugeFunc(name, help, unit string, fn func() float64) {
	r.register(Desc{Name: name, Help: help, Unit: unit, Type: TypeGauge}, [2]Axis{}, fn)
}

// Univariate registers (or fetches) a univariate distribution keyed on
// the given axis.
func (r *Registry) Univariate(name, help, unit string, key Axis) Univariate {
	return Univariate{r.register(Desc{Name: name, Help: help, Unit: unit, Type: TypeUnivariate},
		[2]Axis{key, {}}, nil)}
}

// Bivariate registers (or fetches) a bivariate distribution keyed on
// the given axis pair.
func (r *Registry) Bivariate(name, help, unit string, x, y Axis) Bivariate {
	return Bivariate{r.register(Desc{Name: name, Help: help, Unit: unit, Type: TypeBivariate},
		[2]Axis{x, y}, nil)}
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// Counter is a monotonically increasing scalar instrument. The zero
// value is inert.
type Counter struct{ m *metric }

// Add increments the counter by n.
func (c Counter) Add(n uint64) {
	if c.m != nil {
		c.m.bits.Add(n)
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count (0 when inert).
func (c Counter) Value() uint64 {
	if c.m == nil {
		return 0
	}
	return c.m.bits.Load()
}

// Gauge is an up-and-down scalar instrument. The zero value is inert.
type Gauge struct{ m *metric }

// Set stores v.
func (g Gauge) Set(v float64) {
	if g.m != nil {
		g.m.bits.Store(floatToBits(v))
	}
}

// Value returns the stored value (0 when inert).
func (g Gauge) Value() float64 {
	if g.m == nil {
		return 0
	}
	return floatFromBits(g.m.bits.Load())
}

// Univariate is a value-per-key distribution instrument. The zero
// value is inert.
type Univariate struct{ m *metric }

// Observe adds delta to the cell at key.
func (u Univariate) Observe(key int64, delta float64) {
	if u.m == nil {
		return
	}
	u.m.mu.Lock()
	u.m.cells[[2]int64{key, 0}] += delta
	u.m.mu.Unlock()
}

// Value returns the cell at key (0 when absent or inert).
func (u Univariate) Value(key int64) float64 {
	if u.m == nil {
		return 0
	}
	u.m.mu.Lock()
	defer u.m.mu.Unlock()
	return u.m.cells[[2]int64{key, 0}]
}

// Bivariate is a value-per-key-pair distribution instrument. The zero
// value is inert.
type Bivariate struct{ m *metric }

// Observe adds delta to the cell at (x, y).
func (b Bivariate) Observe(x, y int64, delta float64) {
	if b.m == nil {
		return
	}
	b.m.mu.Lock()
	b.m.cells[[2]int64{x, y}] += delta
	b.m.mu.Unlock()
}

// Value returns the cell at (x, y) (0 when absent or inert).
func (b Bivariate) Value(x, y int64) float64 {
	if b.m == nil {
		return 0
	}
	b.m.mu.Lock()
	defer b.m.mu.Unlock()
	return b.m.cells[[2]int64{x, y}]
}

// Cell is one distribution entry in a snapshot: the integer keys, the
// axis-rendered labels, and the value.
type Cell struct {
	Key   [2]int64
	Label [2]string
	Value float64
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	Desc
	AxisNames [2]string
	Value     float64 // scalar types
	Cells     []Cell  // distribution types, sorted by key
}

// Snapshot is a point-in-time view of a whole registry, in
// registration order. Every exporter renders from a Snapshot, which is
// what makes exporter parity structural: the same names, the same
// values, read once.
type Snapshot []MetricSnapshot

// Snapshot captures every registered metric. Pull functions are
// evaluated now; distribution cells are copied and sorted. A nil
// registry snapshots to nil.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.order))
	copy(metrics, r.order)
	r.mu.Unlock()

	out := make(Snapshot, 0, len(metrics))
	for _, m := range metrics {
		ms := MetricSnapshot{Desc: m.desc,
			AxisNames: [2]string{m.axes[0].Name, m.axes[1].Name}}
		if m.desc.Type.scalar() {
			ms.Value = m.read()
		} else {
			m.mu.Lock()
			ms.Cells = make([]Cell, 0, len(m.cells))
			for k, v := range m.cells {
				ms.Cells = append(ms.Cells, Cell{
					Key:   k,
					Label: [2]string{m.axes[0].labelFor(k[0]), m.axes[1].labelFor(k[1])},
					Value: v,
				})
			}
			m.mu.Unlock()
			sort.Slice(ms.Cells, func(i, j int) bool {
				if ms.Cells[i].Key[0] != ms.Cells[j].Key[0] {
					return ms.Cells[i].Key[0] < ms.Cells[j].Key[0]
				}
				return ms.Cells[i].Key[1] < ms.Cells[j].Key[1]
			})
			if ms.Desc.Type == TypeUnivariate {
				for i := range ms.Cells {
					ms.Cells[i].Label[1] = ""
				}
			}
		}
		out = append(out, ms)
	}
	return out
}

// Get returns the named metric's snapshot entry.
func (s Snapshot) Get(name string) (MetricSnapshot, bool) {
	for _, m := range s {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// Value returns the named scalar metric's value, or 0 when absent —
// the forgiving read for dashboards and job records. Callers that
// must not miss use Get.
func (s Snapshot) Value(name string) float64 {
	m, ok := s.Get(name)
	if !ok {
		return 0
	}
	return m.Value
}

// Scalars returns every counter and gauge as a name → value map — the
// compact form the sweep service attaches to finished job records.
func (s Snapshot) Scalars() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range s {
		if m.Type.scalar() {
			out[m.Name] = m.Value
		}
	}
	return out
}

// ScalarReader is a live read hook for one scalar metric — the bridge
// that lets the obs time-series collector sample registry metrics
// during a run.
type ScalarReader struct {
	Desc Desc
	Read func() float64
}

// ScalarReaders returns a live reader per scalar metric, in
// registration order. Distribution metrics have no single value to
// sample and are skipped.
func (r *Registry) ScalarReaders() []ScalarReader {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, len(r.order))
	copy(metrics, r.order)
	r.mu.Unlock()
	var out []ScalarReader
	for _, m := range metrics {
		if !m.desc.Type.scalar() {
			continue
		}
		m := m
		out = append(out, ScalarReader{Desc: m.desc, Read: m.read})
	}
	return out
}
