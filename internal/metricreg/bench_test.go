package metricreg

import "testing"

// BenchmarkDisabledCounterInc is the zero-cost-when-disabled contract
// under the benchmark harness: a counter from a nil registry must be a
// single pointer comparison. Asserted at 0 allocs/op like the kernel
// benchmarks (cedarbenchdiff gate).
func BenchmarkDisabledCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("n_total", "n", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkDisabledObserve covers the distribution instruments on the
// disabled path.
func BenchmarkDisabledObserve(b *testing.B) {
	var r *Registry
	u := r.Univariate("u", "u", "", Axis{Name: "k"})
	bv := r.Bivariate("b", "b", "", Axis{Name: "x"}, Axis{Name: "y"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Observe(int64(i), 1)
		bv.Observe(int64(i), int64(i), 1)
	}
}

// BenchmarkCounterInc measures the armed hot path (one atomic add).
func BenchmarkCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("n_total", "n", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkUnivariateObserve measures the armed distribution path
// (mutex + map write).
func BenchmarkUnivariateObserve(b *testing.B) {
	r := New()
	u := r.Univariate("u", "u", "", Axis{Name: "k"})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Observe(int64(i%16), 1)
	}
}

// BenchmarkSnapshot measures a full snapshot of a realistic registry
// (a handful of scalars plus two distributions).
func BenchmarkSnapshot(b *testing.B) {
	r := build()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
