package metricreg

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// build registers one metric of every shape with known values — the
// fixture the parity and exporter tests render.
func build() *Registry {
	r := New()
	c := r.Counter("events_total", "events posted", "events")
	c.Add(41)
	c.Inc()
	g := r.Gauge("queue_depth", "jobs waiting", "jobs")
	g.Set(2.5)
	r.CounterFunc("hits_total", "cache hits", "hits", func() float64 { return 7 })
	r.GaugeFunc("live_procs", "live processes", "procs", func() float64 { return 33 })
	u := r.Univariate("os_time_cycles", "time per OS activity", "cycles",
		Axis{Name: "os_category", Label: func(k int64) string { return fmt.Sprintf("cat%d", k) }})
	u.Observe(0, 360000)
	u.Observe(2, 1200)
	u.Observe(0, 1000) // accumulates into the same cell
	b := r.Bivariate("ce_category_cycles", "cycles per CE and category", "cycles",
		Axis{Name: "ce"}, Axis{Name: "category", Label: func(k int64) string { return fmt.Sprintf("c%d", k) }})
	b.Observe(0, 1, 10)
	b.Observe(1, 0, 20)
	b.Observe(0, 0, 5)
	return r
}

func TestRegistrationSemantics(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "x", "events")
	b := r.Counter("x_total", "x", "events")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Fatalf("re-registered counter not shared: %d", got)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type did not panic")
		}
	}()
	r.Gauge("x_total", "now a gauge", "")
}

func TestDistributionValues(t *testing.T) {
	r := build()
	snap := r.Snapshot()
	u, ok := snap.Get("os_time_cycles")
	if !ok {
		t.Fatal("os_time_cycles missing from snapshot")
	}
	if len(u.Cells) != 2 {
		t.Fatalf("univariate cells = %d, want 2", len(u.Cells))
	}
	if u.Cells[0].Key[0] != 0 || u.Cells[0].Value != 361000 || u.Cells[0].Label[0] != "cat0" {
		t.Fatalf("univariate cell 0 = %+v", u.Cells[0])
	}
	bi, _ := snap.Get("ce_category_cycles")
	want := []Cell{
		{Key: [2]int64{0, 0}, Label: [2]string{"0", "c0"}, Value: 5},
		{Key: [2]int64{0, 1}, Label: [2]string{"0", "c1"}, Value: 10},
		{Key: [2]int64{1, 0}, Label: [2]string{"1", "c0"}, Value: 20},
	}
	if len(bi.Cells) != len(want) {
		t.Fatalf("bivariate cells = %d, want %d", len(bi.Cells), len(want))
	}
	for i, c := range bi.Cells {
		if c != want[i] {
			t.Fatalf("bivariate cell %d = %+v, want %+v", i, c, want[i])
		}
	}
	// Live handle reads agree with the snapshot.
	ub := Univariate{}
	if ub.Value(0) != 0 {
		t.Fatal("inert univariate reads nonzero")
	}
}

// TestSnapshotIsolation: a snapshot must not move when the registry
// does — exporters render a consistent instant.
func TestSnapshotIsolation(t *testing.T) {
	r := New()
	c := r.Counter("n_total", "n", "")
	c.Inc()
	u := r.Univariate("d", "d", "", Axis{Name: "k"})
	u.Observe(1, 1)
	snap := r.Snapshot()
	c.Add(100)
	u.Observe(1, 100)
	if v := snap.Value("n_total"); v != 1 {
		t.Fatalf("snapshot counter moved: %g", v)
	}
	d, _ := snap.Get("d")
	if d.Cells[0].Value != 1 {
		t.Fatalf("snapshot cell moved: %g", d.Cells[0].Value)
	}
}

// parseProm extracts "name{labels} value" samples from a Prometheus
// text exposition into fullLine → value.
func parseProm(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("bad prom line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad prom value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestExporterParity is the registry's core guarantee: every metric
// registered once appears in the Prometheus, JSON, and CSV exports
// with identical values at snapshot time.
func TestExporterParity(t *testing.T) {
	r := build()
	snap := r.Snapshot()

	var promB, jsonB, csvB strings.Builder
	if err := WriteProm(&promB, snap, map[string]string{"service": "test"}); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jsonB, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&csvB, snap); err != nil {
		t.Fatal(err)
	}

	prom := parseProm(t, promB.String())

	var doc struct {
		Metrics []struct {
			Name  string   `json:"name"`
			Type  string   `json:"type"`
			Value *float64 `json:"value"`
			Cells []struct {
				Keys   []int64  `json:"keys"`
				Labels []string `json:"labels"`
				Value  float64  `json:"value"`
			} `json:"cells"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(jsonB.String()), &doc); err != nil {
		t.Fatal(err)
	}
	jsonByName := map[string]int{}
	for i, m := range doc.Metrics {
		jsonByName[m.Name] = i
	}

	rd := csv.NewReader(strings.NewReader(csvB.String()))
	rows, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// metric,type,unit,key1,key2,value
	csvVals := map[string]float64{}
	for _, row := range rows[1:] {
		v, err := strconv.ParseFloat(row[5], 64)
		if err != nil {
			t.Fatalf("bad csv value %q: %v", row[5], err)
		}
		csvVals[row[0]+"|"+row[3]+"|"+row[4]] = v
	}

	if len(doc.Metrics) != r.Len() {
		t.Fatalf("JSON exports %d metrics, registry has %d", len(doc.Metrics), r.Len())
	}
	for _, m := range snap {
		jm := doc.Metrics[jsonByName[m.Name]]
		if jm.Type != m.Type.String() {
			t.Fatalf("%s: JSON type %s, want %s", m.Name, jm.Type, m.Type)
		}
		if m.Type.scalar() {
			key := PromName(m.Name) + `{service="test"}`
			pv, ok := prom[key]
			if !ok {
				t.Fatalf("%s: missing from Prometheus export (%v)", key, prom)
			}
			if jm.Value == nil {
				t.Fatalf("%s: missing JSON value", m.Name)
			}
			cv, ok := csvVals[m.Name+"||"]
			if !ok {
				t.Fatalf("%s: missing from CSV export", m.Name)
			}
			if pv != m.Value || *jm.Value != m.Value || cv != m.Value {
				t.Fatalf("%s: prom=%g json=%g csv=%g want %g", m.Name, pv, *jm.Value, cv, m.Value)
			}
			continue
		}
		if len(jm.Cells) != len(m.Cells) {
			t.Fatalf("%s: JSON cells %d, want %d", m.Name, len(jm.Cells), len(m.Cells))
		}
		for i, c := range m.Cells {
			// Prometheus sample: axis labels then constant labels.
			lb := fmt.Sprintf("{%s=%q", labelName(m.AxisNames[0]), c.Label[0])
			if m.Type == TypeBivariate {
				lb += fmt.Sprintf(",%s=%q", labelName(m.AxisNames[1]), c.Label[1])
			}
			lb += `,service="test"}`
			pv, ok := prom[PromName(m.Name)+lb]
			if !ok {
				t.Fatalf("%s cell %v: missing from Prometheus export\n%s", m.Name, c, promB.String())
			}
			cv, ok := csvVals[m.Name+"|"+c.Label[0]+"|"+c.Label[1]]
			if !ok {
				t.Fatalf("%s cell %v: missing from CSV export", m.Name, c)
			}
			if pv != c.Value || jm.Cells[i].Value != c.Value || cv != c.Value {
				t.Fatalf("%s cell %v: prom=%g json=%g csv=%g want %g",
					m.Name, c.Key, pv, jm.Cells[i].Value, cv, c.Value)
			}
		}
	}
}

// TestDisabledRegistryZeroAlloc pins the zero-cost-when-disabled
// contract: instruments from a nil registry must not allocate or do
// atomic work on any operation.
func TestDisabledRegistryZeroAlloc(t *testing.T) {
	var r *Registry
	c := r.Counter("n_total", "n", "")
	g := r.Gauge("g", "g", "")
	u := r.Univariate("u", "u", "", Axis{Name: "k"})
	b := r.Bivariate("b", "b", "", Axis{Name: "x"}, Axis{Name: "y"})
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		c.Add(3)
		g.Set(1.5)
		u.Observe(1, 2)
		b.Observe(1, 2, 3)
		r.CounterFunc("f", "f", "", nil)
		if r.Snapshot() != nil || r.ScalarReaders() != nil || r.Len() != 0 {
			t.Fatal("nil registry is not inert")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled registry path allocates %.1f per op, want 0", allocs)
	}
}

// TestEnabledScalarZeroAlloc: the armed counter/gauge hot path is a
// single atomic op — also allocation-free.
func TestEnabledScalarZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("n_total", "n", "")
	g := r.Gauge("g", "g", "")
	allocs := testing.AllocsPerRun(200, func() {
		c.Inc()
		g.Set(2.5)
	})
	if allocs != 0 {
		t.Fatalf("enabled scalar path allocates %.1f per op, want 0", allocs)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := New()
	c := r.Counter("ops_total", "ops", "")
	u := r.Univariate("sizes", "sizes", "", Axis{Name: "size"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
				u.Observe(int64(j%4), 1)
				_ = r.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 800 {
		t.Fatalf("counter = %d, want 800", c.Value())
	}
	total := 0.0
	for k := int64(0); k < 4; k++ {
		total += u.Value(k)
	}
	if total != 800 {
		t.Fatalf("univariate total = %g, want 800", total)
	}
}

func TestScalarReaders(t *testing.T) {
	r := build()
	readers := r.ScalarReaders()
	if len(readers) != 4 {
		t.Fatalf("readers = %d, want 4 (distributions skipped)", len(readers))
	}
	byName := map[string]ScalarReader{}
	for _, rd := range readers {
		byName[rd.Desc.Name] = rd
	}
	if v := byName["events_total"].Read(); v != 42 {
		t.Fatalf("events_total reader = %g, want 42", v)
	}
	if v := byName["live_procs"].Read(); v != 33 {
		t.Fatalf("live_procs reader = %g, want 33", v)
	}
}
