package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/faults"
	"repro/internal/faults/replay"
	"repro/internal/perfect"
	"repro/internal/resultcache"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// simTime converts a JSON int64 cycle count to the kernel's time type.
func simTime(v int64) sim.Time { return sim.Time(v) }

// Job types accepted by the service.
const (
	TypeSimulate = "simulate" // one app on one configuration
	TypeSweep    = "sweep"    // one app across a configuration list
	TypeReplay   = "replay"   // one recorded fault scenario
	TypeCorpus   = "corpus"   // a batch of scenario lines, each verified
	TypeBench    = "bench"    // one declarative benchmark scenario document
)

// JobSpec is the submitted description of one job (the POST /jobs
// body). Fields are per-type; Validate names misuse precisely.
type JobSpec struct {
	// Type selects the job shape: simulate, sweep, replay, or corpus.
	Type string `json:"type"`
	// App is the application name (simulate, sweep). Registry names and
	// single-line gen: specs both resolve; exactly one of App and
	// Workload must be set for these job types.
	App string `json:"app,omitempty"`
	// Workload is an inline workload document or gen: spec (simulate,
	// sweep) — the full-document alternative to App. File paths are
	// rejected: a remote caller must not read server-side files. The
	// source text folds into the result-cache key, so two generated
	// apps differing in any knob never share a cache slot.
	Workload string `json:"workload,omitempty"`
	// Config is the configuration name (simulate).
	Config string `json:"config,omitempty"`
	// Configs lists configuration names for a sweep; empty means the
	// paper's five.
	Configs []string `json:"configs,omitempty"`
	// Steps overrides the timestep count when > 0 (simulate, sweep).
	Steps int `json:"steps,omitempty"`
	// Seed overrides the deterministic kernel seed when non-zero
	// (simulate, sweep).
	Seed int64 `json:"seed,omitempty"`
	// Plan is a fault plan in the faults.Parse grammar (simulate).
	Plan string `json:"plan,omitempty"`
	// Scenario is a recorded scenario line (replay).
	Scenario string `json:"scenario,omitempty"`
	// Corpus is a list of scenario lines (corpus).
	Corpus []string `json:"corpus,omitempty"`
	// Bench is a declarative benchmark scenario document (bench): the
	// text of one .scenario file in the internal/scenario format. The
	// result payload is the scenario's canonical record capture —
	// deterministic, so warm resubmits come straight from the cache.
	Bench string `json:"bench,omitempty"`
	// DeadlineMS caps each attempt's wall-clock run time in
	// milliseconds; 0 uses the server default. Enforced by context
	// cancellation threaded into the simulation kernel.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxCycles caps virtual time (0 = unlimited): the in-model
	// counterpart of the wall-clock deadline.
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// Parallel bounds intra-job parallelism for sweep and corpus jobs
	// (0 = GOMAXPROCS).
	Parallel int `json:"parallel,omitempty"`
	// NoCache skips the result cache for this job (both lookup and
	// fill).
	NoCache bool `json:"no_cache,omitempty"`
}

// resolved carries the validated, decoded form of a spec so execution
// never re-parses.
type resolved struct {
	app       perfect.App
	cfg       arch.Config
	cfgs      []arch.Config
	plan      faults.Plan
	scenario  replay.Scenario
	scenarios []replay.Scenario
	bench     *scenario.Scenario
}

// Validate checks the spec against the live application and
// configuration registries and parses plan/scenario text, so a bad
// request is rejected at submit time (400), never discovered by a
// worker.
func (sp *JobSpec) Validate() (resolved, error) {
	var r resolved
	var err error
	switch sp.Type {
	case TypeSimulate:
		if r.app, err = sp.resolveApp(); err != nil {
			return r, err
		}
		if r.cfg, err = lookupConfig(sp.Config); err != nil {
			return r, err
		}
		if sp.Plan != "" {
			if r.plan, err = faults.Parse(sp.Plan); err != nil {
				return r, err
			}
			if err = r.plan.Validate(r.cfg); err != nil {
				return r, err
			}
		}
	case TypeSweep:
		if r.app, err = sp.resolveApp(); err != nil {
			return r, err
		}
		if sp.Plan != "" {
			return r, fmt.Errorf("sweep jobs do not take a fault plan (submit per-config simulate jobs)")
		}
		names := sp.Configs
		if len(names) == 0 {
			for _, c := range arch.PaperConfigs() {
				names = append(names, c.Name)
			}
			sp.Configs = names // canonicalized: the cache key names them
		}
		for _, n := range names {
			cfg, ok := arch.FamilyByName(n)
			if !ok {
				return r, fmt.Errorf("unknown configuration %q", n)
			}
			r.cfgs = append(r.cfgs, cfg)
		}
	case TypeReplay:
		if r.scenario, err = replay.Parse(sp.Scenario); err != nil {
			return r, err
		}
		if _, _, err = lookup(r.scenario.App, r.scenario.Config); err != nil {
			return r, err
		}
	case TypeCorpus:
		if len(sp.Corpus) == 0 {
			return r, fmt.Errorf("corpus job without scenario lines")
		}
		for i, line := range sp.Corpus {
			sc, perr := replay.Parse(line)
			if perr != nil {
				return r, fmt.Errorf("corpus line %d: %w", i+1, perr)
			}
			if _, _, err = lookup(sc.App, sc.Config); err != nil {
				return r, fmt.Errorf("corpus line %d: %w", i+1, err)
			}
			r.scenarios = append(r.scenarios, sc)
		}
	case TypeBench:
		if strings.TrimSpace(sp.Bench) == "" {
			return r, fmt.Errorf("bench job without a scenario document")
		}
		if r.bench, err = scenario.Parse("bench", []byte(sp.Bench)); err != nil {
			return r, err
		}
		// A spec-level cycle budget tightens (or sets) the document's
		// own: both are part of the cache key, so the fold is safe.
		if sp.MaxCycles > 0 {
			r.bench.MaxCycles = sp.MaxCycles
		}
	case "":
		return r, fmt.Errorf("missing job type (want %s, %s, %s, %s, or %s)",
			TypeSimulate, TypeSweep, TypeReplay, TypeCorpus, TypeBench)
	default:
		return r, fmt.Errorf("unknown job type %q (want %s, %s, %s, %s, or %s)",
			sp.Type, TypeSimulate, TypeSweep, TypeReplay, TypeCorpus, TypeBench)
	}
	if sp.DeadlineMS < 0 {
		return r, fmt.Errorf("negative deadline_ms %d", sp.DeadlineMS)
	}
	if sp.MaxCycles < 0 {
		return r, fmt.Errorf("negative max_cycles %d", sp.MaxCycles)
	}
	if sp.Parallel < 0 {
		return r, fmt.Errorf("negative parallel %d", sp.Parallel)
	}
	return r, nil
}

// isInterrupted reports an error caused by the service stopping a run
// from outside the model — context cancellation or an expired attempt
// deadline, usually surfaced as the kernel's *sim.CanceledError — as
// opposed to an outcome of the simulation itself. Interrupted attempts
// must bail out with the raw error so the retry/cancel machinery can
// classify them; mapping them through cedar.Outcome would let a
// truncated run masquerade as a real (and cacheable) result.
func isInterrupted(err error) bool {
	return errors.Is(err, sim.ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// resolveApp resolves a spec's workload source: the App name (or
// single-line gen: spec) or the Workload document, exactly one of
// which must be set. File sources are rejected (Resolver.AllowFiles
// stays false): the spec arrived over the network.
func (sp *JobSpec) resolveApp() (perfect.App, error) {
	switch {
	case sp.App == "" && sp.Workload == "":
		return perfect.App{}, fmt.Errorf("missing app (or workload)")
	case sp.App != "" && sp.Workload != "":
		return perfect.App{}, fmt.Errorf("app and workload are mutually exclusive")
	}
	src := sp.App
	if sp.Workload != "" {
		src = sp.Workload
	}
	return (perfect.Resolver{}).Resolve(src)
}

func lookup(appName, cfgName string) (perfect.App, arch.Config, error) {
	app, err := (perfect.Resolver{}).Resolve(appName)
	if err != nil {
		return app, arch.Config{}, err
	}
	cfg, err := lookupConfig(cfgName)
	return app, cfg, err
}

func lookupConfig(cfgName string) (arch.Config, error) {
	cfg, ok := arch.FamilyByName(cfgName)
	if !ok {
		return cfg, fmt.Errorf("unknown configuration %q", cfgName)
	}
	return cfg, nil
}

// cacheKey derives the content-address of the job's result. The
// version stamp makes results model-output-versioned; corpus jobs
// fold their scenario lines into the Plan field so any edit misses.
func (sp *JobSpec) cacheKey(version string) resultcache.Key {
	k := resultcache.Key{Kind: sp.Type, Version: version,
		Steps: sp.Steps, Seed: sp.Seed, MaxCycles: sp.MaxCycles}
	switch sp.Type {
	case TypeSimulate:
		k.App, k.Config, k.Plan = sp.App, sp.Config, sp.Plan
		k.Workload = sp.Workload
	case TypeSweep:
		k.App, k.Config = sp.App, strings.Join(sp.Configs, ",")
		k.Workload = sp.Workload
	case TypeReplay:
		k.App = "replay"
		k.Plan = sp.Scenario
		k.Steps, k.Seed = 0, 0
	case TypeCorpus:
		k.App = "corpus"
		k.Plan = strings.Join(sp.Corpus, "\n")
		k.Steps, k.Seed = 0, 0
	case TypeBench:
		// The document text is the whole identity (any edit misses);
		// spec MaxCycles stays in the key because it folds into the run.
		k.App = "bench"
		k.Plan = sp.Bench
		k.Steps, k.Seed = 0, 0
	}
	return k
}

// options builds the facade options a spec implies.
func (sp *JobSpec) options() cedar.Options {
	return cedar.Options{
		Steps:     sp.Steps,
		Seed:      sp.Seed,
		MaxCycles: simTime(sp.MaxCycles),
		Parallel:  sp.Parallel,
	}
}

// execute runs the job body under ctx and returns the canonical result
// text. Every simulate-shaped result is Run.StatfxText — the byte-
// stable accounting block the replay machinery already compares — so a
// service result is directly diffable against a local cedarsim run.
func (sp *JobSpec) execute(ctx context.Context, r resolved, progress func(string)) ([]byte, error) {
	switch sp.Type {
	case TypeSimulate:
		opts := sp.options()
		opts.Faults = r.plan
		run, err := cedar.SimulateRunCtx(ctx, r.app, r.cfg, opts)
		if err != nil {
			return nil, err
		}
		progress(fmt.Sprintf("simulated %s on %s: ct=%d", r.app.Name, sp.Config, int64(run.Result.CT)))
		return []byte(run.StatfxText()), nil

	case TypeSweep:
		type out struct {
			text string
			err  error
		}
		results, err := engine.MapCtx(ctx, sp.Parallel, r.cfgs,
			func(ctx context.Context, _ int, cfg arch.Config) out {
				run, rerr := cedar.SimulateRunCtx(ctx, r.app, cfg, sp.options())
				if rerr != nil {
					return out{err: rerr}
				}
				progress(fmt.Sprintf("swept %s on %s: ct=%d", r.app.Name, cfg.Name, int64(run.Result.CT)))
				return out{text: run.StatfxText()}
			})
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		for i, o := range results {
			if o.err != nil {
				return nil, fmt.Errorf("config %s: %w", r.cfgs[i].Name, o.err)
			}
			fmt.Fprintf(&b, "== %s\n%s", r.cfgs[i].Name, o.text)
		}
		return []byte(b.String()), nil

	case TypeReplay:
		sc := r.scenario
		app, cfg, err := lookup(sc.App, sc.Config)
		if err != nil {
			return nil, err
		}
		opts := cedar.Options{Steps: sc.Steps, Seed: sc.Seed, Faults: sc.Plan,
			MaxCycles: simTime(sp.MaxCycles)}
		run, err := cedar.SimulateRunCtx(ctx, app, cfg, opts)
		if err != nil && isInterrupted(err) {
			// Cancellation or a deadline stopped the attempt; that is
			// never a simulation outcome, however the scenario's
			// expectation reads.
			return nil, err
		}
		outcome := cedar.Outcome(err)
		if want := sc.Expectation(); outcome != want {
			return nil, fmt.Errorf("scenario %q: outcome %s, want %s", sc, outcome, want)
		}
		progress(fmt.Sprintf("replayed %s: outcome %s", sc, outcome))
		var b strings.Builder
		fmt.Fprintf(&b, "scenario %s\noutcome %s\n", sc, outcome)
		if run != nil {
			b.WriteString(run.StatfxText())
		}
		return []byte(b.String()), nil

	case TypeCorpus:
		type out struct {
			line string
			err  error
		}
		results, err := engine.MapCtx(ctx, sp.Parallel, r.scenarios,
			func(ctx context.Context, i int, sc replay.Scenario) out {
				app, cfg, lerr := lookup(sc.App, sc.Config)
				if lerr != nil {
					return out{err: lerr}
				}
				run, rerr := cedar.SimulateRunCtx(ctx, app, cfg,
					cedar.Options{Steps: sc.Steps, Seed: sc.Seed, Faults: sc.Plan,
						MaxCycles: simTime(sp.MaxCycles)})
				if rerr != nil && isInterrupted(rerr) {
					return out{err: rerr}
				}
				outcome := cedar.Outcome(rerr)
				_ = run
				status := "ok"
				if outcome != sc.Expectation() {
					status = fmt.Sprintf("FAIL (outcome %s, want %s)", outcome, sc.Expectation())
				}
				progress(fmt.Sprintf("corpus %d/%d: %s", i+1, len(r.scenarios), status))
				return out{line: fmt.Sprintf("%s %s", status, sc)}
			})
		if err != nil {
			return nil, err
		}
		var b strings.Builder
		failed := 0
		for _, o := range results {
			if o.err != nil {
				return nil, o.err
			}
			if strings.HasPrefix(o.line, "FAIL") {
				failed++
			}
			b.WriteString(o.line)
			b.WriteByte('\n')
		}
		if failed > 0 {
			return []byte(b.String()), fmt.Errorf("%d of %d corpus scenario(s) missed their expectation", failed, len(results))
		}
		return []byte(b.String()), nil

	case TypeBench:
		recs, err := scenario.RunCtx(ctx, r.bench, false)
		if err != nil {
			return nil, err
		}
		progress(fmt.Sprintf("bench %s: %d record(s)", r.bench.Name, len(recs)))
		// The canonical capture encoding: deterministic bytes, directly
		// diffable against a cedarbench run of the same document.
		return scenario.EncodeCapture(recs)
	}
	return nil, fmt.Errorf("unknown job type %q", sp.Type)
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// terminal reports whether a state is final.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// ProgressEvent is one line of a job's progress log, streamed by
// GET /jobs/{id}/events.
type ProgressEvent struct {
	At  time.Time `json:"at"`
	Msg string    `json:"msg"`
}

// Job is the server-side record of one submitted job. All fields are
// guarded by the server's mutex; JSON views are built from snapshots.
type Job struct {
	ID   string
	Spec JobSpec

	State    string
	Retries  int
	CacheHit bool
	Error    string
	PanicVal string
	Stack    string

	// Metrics is the service's scalar metric snapshot taken the moment
	// the job reached its terminal state — queue depth, running jobs,
	// cache traffic — so a job record carries the operational context it
	// finished under.
	Metrics map[string]float64

	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time

	result []byte
	events []ProgressEvent

	res      resolved
	cancel   context.CancelFunc // set while running
	canceled bool               // client asked for cancellation
}

// JobView is the JSON shape of GET /jobs/{id}.
type JobView struct {
	ID          string          `json:"id"`
	Spec        JobSpec         `json:"spec"`
	State       string          `json:"state"`
	Retries     int             `json:"retries"`
	CacheHit    bool            `json:"cache_hit"`
	Error       string          `json:"error,omitempty"`
	Panic       string          `json:"panic,omitempty"`
	Stack       string          `json:"stack,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	Events      []ProgressEvent `json:"events,omitempty"`

	// Metrics is the scalar metric snapshot attached when the job
	// finished (terminal states only).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// view snapshots the job for JSON encoding. Caller holds the server
// mutex.
func (j *Job) view(withEvents bool) JobView {
	v := JobView{
		ID: j.ID, Spec: j.Spec, State: j.State, Retries: j.Retries,
		CacheHit: j.CacheHit, Error: j.Error, Panic: j.PanicVal, Stack: j.Stack,
		SubmittedAt: j.SubmittedAt,
	}
	if !j.StartedAt.IsZero() {
		t := j.StartedAt
		v.StartedAt = &t
	}
	if !j.FinishedAt.IsZero() {
		t := j.FinishedAt
		v.FinishedAt = &t
	}
	if withEvents {
		v.Events = append([]ProgressEvent(nil), j.events...)
		if j.Metrics != nil {
			v.Metrics = make(map[string]float64, len(j.Metrics))
			for k, val := range j.Metrics {
				v.Metrics[k] = val
			}
		}
	}
	return v
}

// sortViews orders job views newest-submission-first with ID as the
// tie-break, for the list endpoint.
func sortViews(vs []JobView) {
	sort.Slice(vs, func(i, k int) bool {
		if !vs[i].SubmittedAt.Equal(vs[k].SubmittedAt) {
			return vs[i].SubmittedAt.After(vs[k].SubmittedAt)
		}
		return vs[i].ID < vs[k].ID
	})
}
