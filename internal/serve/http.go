package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metricreg"
)

// Handler returns the service's HTTP API:
//
//	POST   /jobs              submit a job (202; 200 on a warm-cache
//	                          fast path; 400 invalid; 429 queue full
//	                          with Retry-After; 503 draining)
//	GET    /jobs              list job records, newest first
//	GET    /jobs/{id}         one job record, with its progress log
//	GET    /jobs/{id}/result  the result payload (text/plain) once done
//	GET    /jobs/{id}/events  stream the progress log as NDJSON until
//	                          the job reaches a terminal state
//	POST   /jobs/{id}/cancel  cancel a queued or running job
//	DELETE /jobs/{id}         same as cancel
//	GET    /metrics           Prometheus text exposition
//	GET    /metrics.json      the same registry snapshot as JSON
//	GET    /metrics.csv       the same registry snapshot as CSV
//	GET    /healthz           200 serving / 503 draining
//
// The three metric endpoints render one registry snapshot each — the
// central directory in internal/metricreg — so they can never disagree
// about which metrics exist.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.Handle("GET /metrics", s.Metrics.Handler())
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		metricreg.WriteJSON(w, s.Metrics.Registry().Snapshot())
	})
	mux.HandleFunc("GET /metrics.csv", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		metricreg.WriteCSV(w, s.Metrics.Registry().Snapshot())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the JSON error shape.
type errorBody struct {
	Error string `json:"error"`
}

// submitResponse is the POST /jobs reply.
type submitResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit,omitempty"`
}

func (s *Server) retryAfterSeconds() string {
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		s.met.rejectedDrain.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "server is draining; not accepting jobs"})
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	res, err := spec.Validate()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	// Warm-cache fast path: a memoized result completes the job at
	// submit time without consuming a queue slot.
	if s.cache != nil && !spec.NoCache {
		if payload, ok := s.cache.Get(spec.cacheKey(s.cfg.Version)); ok {
			s.mu.Lock()
			job := &Job{ID: s.newID(), Spec: spec, res: res, State: StateDone,
				CacheHit: true, SubmittedAt: time.Now()}
			job.FinishedAt = job.SubmittedAt
			job.result = payload
			job.events = append(job.events,
				ProgressEvent{At: job.SubmittedAt, Msg: "result cache hit at submit"},
				ProgressEvent{At: job.SubmittedAt, Msg: StateDone})
			s.jobs[job.ID] = job
			s.met.submitted.Inc()
			s.met.done.Inc()
			job.Metrics = s.Metrics.Registry().Snapshot().Scalars()
			s.cond.Broadcast()
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, submitResponse{ID: job.ID, State: StateDone, CacheHit: true})
			return
		}
	}

	s.mu.Lock()
	job := &Job{ID: s.newID(), Spec: spec, res: res, State: StateQueued, SubmittedAt: time.Now()}
	if !s.q.push(job) {
		s.mu.Unlock()
		s.met.rejectedFull.Inc()
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeJSON(w, http.StatusTooManyRequests,
			errorBody{Error: fmt.Sprintf("job queue full (%d pending)", s.q.depth())})
		return
	}
	s.jobs[job.ID] = job
	s.met.submitted.Inc()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID, State: StateQueued})
}

// job looks a job up, writing 404 on absence.
func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := s.jobs[r.PathValue("id")]
	if job == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job " + r.PathValue("id")})
	}
	return job
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		views = append(views, j.view(false))
	}
	s.mu.Unlock()
	sortViews(views)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job := s.job(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	v := job.view(true)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job := s.job(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	state, errMsg, panicVal := job.State, job.Error, job.PanicVal
	payload := job.result
	s.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(payload)
	case StateFailed:
		msg := errMsg
		if panicVal != "" {
			msg = fmt.Sprintf("%s (panic: %s)", errMsg, panicVal)
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: msg})
	case StateCanceled:
		writeJSON(w, http.StatusConflict, errorBody{Error: "job canceled: " + errMsg})
	default:
		writeJSON(w, http.StatusConflict, errorBody{Error: "job is " + state})
	}
}

// handleEvents streams the job's progress log as NDJSON: every known
// event, then new ones as they land, ending with a state line when the
// job reaches a terminal state (or the client goes away).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job := s.job(w, r)
	if job == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	// A client hang-up must wake the cond wait below.
	done := r.Context().Done()
	go func() {
		<-done
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}()

	enc := json.NewEncoder(w)
	idx := 0
	for {
		s.mu.Lock()
		for idx >= len(job.events) && !terminal(job.State) && r.Context().Err() == nil {
			s.cond.Wait()
		}
		events := job.events[idx:]
		idx = len(job.events)
		state := job.State
		s.mu.Unlock()
		for _, ev := range events {
			if enc.Encode(ev) != nil {
				return
			}
		}
		flush()
		if r.Context().Err() != nil {
			return
		}
		if terminal(state) && idx >= s.eventCount(job) {
			enc.Encode(map[string]string{"state": state})
			flush()
			return
		}
	}
}

func (s *Server) eventCount(job *Job) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(job.events)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.job(w, r)
	if job == nil {
		return
	}
	s.mu.Lock()
	job.canceled = true
	switch job.State {
	case StateQueued:
		if s.q.remove(job) {
			s.finishLocked(job, StateCanceled, "canceled while queued")
		}
		// Not in the queue anymore: a worker is picking it up and will
		// observe the canceled flag.
	case StateRunning:
		if job.cancel != nil {
			job.cancel()
		}
	}
	v := job.view(false)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, v)
}
