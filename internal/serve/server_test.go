package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/perfect"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// fastCfg is a test server configuration with tiny backoffs so retry
// tests run in milliseconds.
func fastCfg() Config {
	return Config{
		QueueDepth: 16,
		Workers:    2,
		RetryBase:  time.Millisecond,
		RetryMax:   4 * time.Millisecond,
		Version:    "test-v1",
	}
}

// newTestServer builds, hooks, and starts a server. The hook must be
// installed before Start so workers never race the assignment.
func newTestServer(t *testing.T, cfg Config, hook func(*Job, int) error) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.failHook = hook
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s, ts
}

// submit posts a spec and returns the HTTP status and decoded body.
func submit(t *testing.T, ts *httptest.Server, spec JobSpec) (int, submitResponse, string) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var sr submitResponse
	json.Unmarshal(raw, &sr)
	return resp.StatusCode, sr, string(raw)
}

// getJob fetches a job view.
func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitState polls until the job reaches the given state.
func waitState(t *testing.T, ts *httptest.Server, id, state string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.State == state {
			return v
		}
		if terminal(v.State) {
			t.Fatalf("job %s reached %s (err %q), want %s", id, v.State, v.Error, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached state %s", id, state)
	return JobView{}
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if terminal(v.State) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobView{}
}

// result fetches a done job's payload.
func result(t *testing.T, ts *httptest.Server, id string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(raw)
}

// metricsText scrapes /metrics.
func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// metricLine is how the PromSet renders one sample for this service.
func metricLine(name string, value string) string {
	return name + `{service="cedarserved"} ` + value
}

var smallSim = JobSpec{Type: TypeSimulate, App: "FLO52", Config: "8proc", Steps: 2}

// okScenario is a recorded fault scenario known to complete without
// error (it seeds testdata/faultcorpus as well).
const okScenario = "app=FLO52 config=8proc steps=1 seed=3327910339796038169 plan=ce:1@76414"

// smallSimWant computes the reference result: the same invocation
// through the plain facade (what cedarsim -statfx prints).
func smallSimWant(t *testing.T) string {
	t.Helper()
	app, _ := perfect.ByName("FLO52")
	return cedar.SimulateRun(app, arch.Cedar8, cedar.Options{Steps: 2}).StatfxText()
}

// The determinism acceptance gate: a job run via the service — cold
// cache, warm cache, and through a restart onto the same cache —
// returns StatfxText byte-identical to the direct facade run.
func TestServiceResultMatchesDirectRun(t *testing.T) {
	want := smallSimWant(t)
	cacheDir := t.TempDir()

	cfg := fastCfg()
	cfg.CacheDir = cacheDir
	s, ts := newTestServer(t, cfg, nil)

	// Cold cache.
	status, sr, raw := submit(t, ts, smallSim)
	if status != http.StatusAccepted {
		t.Fatalf("cold submit: status %d (%s)", status, raw)
	}
	v := waitTerminal(t, ts, sr.ID)
	if v.State != StateDone || v.CacheHit {
		t.Fatalf("cold job: state %s cache_hit %v (err %q)", v.State, v.CacheHit, v.Error)
	}
	if code, got := result(t, ts, sr.ID); code != 200 || got != want {
		t.Fatalf("cold result differs from direct run (status %d):\n%s", code, got)
	}

	// Warm cache: completes at submit time.
	status, sr2, raw := submit(t, ts, smallSim)
	if status != http.StatusOK || sr2.State != StateDone || !sr2.CacheHit {
		t.Fatalf("warm submit: status %d body %s", status, raw)
	}
	if _, got := result(t, ts, sr2.ID); got != want {
		t.Fatalf("warm result differs from direct run:\n%s", got)
	}
	if s.met.done.Value() != 2 {
		t.Fatalf("done counter = %d, want 2", s.met.done.Value())
	}

	// Kill and restart: a fresh server over the same cache directory.
	cfg2 := fastCfg()
	cfg2.CacheDir = cacheDir
	_, ts2 := newTestServer(t, cfg2, nil)
	status, sr3, raw := submit(t, ts2, smallSim)
	if status != http.StatusOK || !sr3.CacheHit {
		t.Fatalf("post-restart submit: status %d body %s", status, raw)
	}
	if _, got := result(t, ts2, sr3.ID); got != want {
		t.Fatalf("post-restart result differs from direct run:\n%s", got)
	}
}

// The admission-control gate: a full queue answers 429 with a
// Retry-After hint, and recovers once the backlog drains.
func TestQueueFullReturns429(t *testing.T) {
	cfg := fastCfg()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	gate := make(chan struct{})
	s, ts := newTestServer(t, cfg, func(job *Job, attempt int) error {
		<-gate // hold the worker mid-job until released
		return nil
	})

	status, running, _ := submit(t, ts, smallSim)
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d", status)
	}
	// Once the single worker picks the job up, the next submit
	// occupies the only queue slot.
	waitState(t, ts, running.ID, StateRunning)
	if status, _, _ = submit(t, ts, smallSim); status != http.StatusAccepted {
		t.Fatalf("queued submit: %d", status)
	}

	body, _ := json.Marshal(smallSim)
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if s.met.rejectedFull.Value() != 1 {
		t.Fatalf("rejected_full = %d", s.met.rejectedFull.Value())
	}
	if !strings.Contains(metricsText(t, ts), metricLine("cedar_serve_jobs_rejected_full_total", "1")) {
		t.Fatal("429 count missing from /metrics")
	}

	// Recovery: release the gate (the hook then passes every job
	// through instantly), let the backlog drain, submit again.
	close(gate)
	waitTerminal(t, ts, running.ID)
	deadline := time.Now().Add(10 * time.Second)
	for s.q.depth() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if status, after, _ := submit(t, ts, smallSim); status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("post-recovery submit: %d", status)
	} else if done := waitTerminal(t, ts, after.ID); done.State != StateDone {
		t.Fatalf("post-recovery job: %s", done.State)
	}
}

// The panic-isolation gate: a panicking job fails alone, with the
// panic value and stack in its record; the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, fastCfg(), func(job *Job, attempt int) error {
		if job.Spec.Seed == 666 {
			panic("scenario collapsed the machine model")
		}
		return nil
	})
	bad := smallSim
	bad.Seed = 666
	_, badSub, _ := submit(t, ts, bad)
	_, goodSub, _ := submit(t, ts, smallSim)

	badV := waitTerminal(t, ts, badSub.ID)
	if badV.State != StateFailed {
		t.Fatalf("panicking job state %s", badV.State)
	}
	if !strings.Contains(badV.Panic, "collapsed the machine model") || badV.Stack == "" {
		t.Fatalf("panic not preserved in record: panic=%q stack %d bytes", badV.Panic, len(badV.Stack))
	}
	if badV.Retries != 0 {
		t.Fatalf("panicking job was retried %d times; panics are not transient", badV.Retries)
	}
	if code, body := result(t, ts, badSub.ID); code != http.StatusInternalServerError || !strings.Contains(body, "panic") {
		t.Fatalf("panicked job result: %d %s", code, body)
	}

	goodV := waitTerminal(t, ts, goodSub.ID)
	if goodV.State != StateDone {
		t.Fatalf("healthy job after a panic: %s (%s)", goodV.State, goodV.Error)
	}
	if s.met.panics.Value() != 1 {
		t.Fatalf("panics metric = %d", s.met.panics.Value())
	}
	if s.q.depth() != 0 {
		t.Fatalf("queue depth %d after jobs finished", s.q.depth())
	}
	// The server still accepts and serves work.
	if status, next, _ := submit(t, ts, smallSim); status != http.StatusAccepted {
		t.Fatalf("submit after panic: %d", status)
	} else if waitTerminal(t, ts, next.ID).State != StateDone {
		t.Fatal("job after panic did not complete")
	}
}

// The deadline gate: an over-deadline job is stopped by context
// cancellation (threaded into the kernel), retried as a transient
// class, and fails alone.
func TestDeadlineExceededFailsAlone(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxRetries = 2
	s, ts := newTestServer(t, cfg, nil)
	slow := JobSpec{Type: TypeSimulate, App: "ADM", Config: "32proc", Steps: 500,
		DeadlineMS: 40, NoCache: true}
	_, slowSub, _ := submit(t, ts, slow)
	_, okSub, _ := submit(t, ts, smallSim)

	v := waitTerminal(t, ts, slowSub.ID)
	if v.State != StateFailed {
		t.Fatalf("over-deadline job: state %s (err %q)", v.State, v.Error)
	}
	if !strings.Contains(v.Error, "deadline") {
		t.Fatalf("error does not name the deadline: %q", v.Error)
	}
	if v.Retries != 2 {
		t.Fatalf("deadline retries = %d, want 2 (transient class)", v.Retries)
	}
	if s.met.deadlines.Value() != 3 {
		t.Fatalf("deadline metric = %d, want 3 attempts", s.met.deadlines.Value())
	}
	if okV := waitTerminal(t, ts, okSub.ID); okV.State != StateDone {
		t.Fatalf("concurrent job: %s", okV.State)
	}
	if s.q.depth() != 0 || s.running.Load() != 0 {
		t.Fatalf("queue %d running %d after deadline failure", s.q.depth(), s.running.Load())
	}
}

// The retry gate: transient failures back off and retry; the retry
// count is visible in the job record and /metrics.
func TestTransientRetryWithBackoff(t *testing.T) {
	s, ts := newTestServer(t, fastCfg(), func(job *Job, attempt int) error {
		if attempt < 2 {
			return Transient(fmt.Errorf("simulated cache I/O flake %d", attempt))
		}
		return nil
	})
	_, sub, _ := submit(t, ts, smallSim)
	v := waitTerminal(t, ts, sub.ID)
	if v.State != StateDone {
		t.Fatalf("job state %s (err %q)", v.State, v.Error)
	}
	if v.Retries != 2 {
		t.Fatalf("retries = %d, want 2", v.Retries)
	}
	if s.met.retries.Value() != 2 {
		t.Fatalf("retries metric = %d, want 2", s.met.retries.Value())
	}
	var sawRetryEvent bool
	for _, ev := range v.Events {
		if strings.Contains(ev.Msg, "retrying in") {
			sawRetryEvent = true
		}
	}
	if !sawRetryEvent {
		t.Fatalf("no retry progress event: %+v", v.Events)
	}
	if !strings.Contains(metricsText(t, ts), metricLine("cedar_serve_retries_total", "2")) {
		t.Fatal("retries not visible in /metrics")
	}
}

// A transient failure that never clears exhausts MaxRetries and fails.
func TestTransientRetriesExhaust(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxRetries = 2
	_, ts := newTestServer(t, cfg, func(job *Job, attempt int) error {
		return Transient(fmt.Errorf("permanent flake"))
	})
	_, sub, _ := submit(t, ts, smallSim)
	v := waitTerminal(t, ts, sub.ID)
	if v.State != StateFailed || v.Retries != 2 {
		t.Fatalf("state %s retries %d, want failed/2", v.State, v.Retries)
	}
	if !strings.Contains(v.Error, "transient") {
		t.Fatalf("terminal error lost the cause: %q", v.Error)
	}
}

// The graceful-shutdown gate: drain stops admission with 503, lets
// running jobs finish, persists the pending queue, and a restarted
// server resumes it byte-identically.
func TestGracefulDrainAndResume(t *testing.T) {
	stateDir := t.TempDir()
	cacheDir := t.TempDir()
	want := smallSimWant(t)

	cfg := fastCfg()
	cfg.Workers = 1
	cfg.StateDir = stateDir
	cfg.CacheDir = cacheDir
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.failHook = func(job *Job, attempt int) error {
		if job.Spec.Seed == 1 {
			<-gate
		}
		return nil
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single worker with a gated job, then queue two more.
	runningSpec := smallSim
	runningSpec.Seed = 1
	runningSpec.NoCache = true
	_, runningSub, _ := submit(t, ts, runningSpec)
	waitState(t, ts, runningSub.ID, StateRunning)
	_, pend1, _ := submit(t, ts, smallSim)
	spec2 := smallSim
	spec2.Steps = 3
	_, pend2, _ := submit(t, ts, spec2)

	// Drain concurrently; the gated job finishes once released.
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	// Admission must stop as soon as draining begins.
	deadline := time.Now().Add(5 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if status, _, body := submit(t, ts, smallSim); status != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d %s", status, body)
	}
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %v %v", err, resp.StatusCode)
	}
	close(gate)
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The running job drained to completion; the queued ones did not
	// start.
	if v := getJob(t, ts, runningSub.ID); v.State != StateDone {
		t.Fatalf("running job after drain: %s (%q)", v.State, v.Error)
	}
	for _, id := range []string{pend1.ID, pend2.ID} {
		if v := getJob(t, ts, id); v.State != StateQueued {
			t.Fatalf("pending job %s after drain: %s", id, v.State)
		}
	}

	persisted, err := os.ReadFile(filepath.Join(stateDir, "queue.json"))
	if err != nil {
		t.Fatalf("queue not persisted: %v", err)
	}

	// Restart: a new server over the same state dir resumes the queue.
	cfg2 := fastCfg()
	cfg2.StateDir = stateDir
	cfg2.CacheDir = cacheDir
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	// Byte-identical resume: re-persisting the resumed queue must
	// reproduce the original file exactly.
	checkDir := t.TempDir()
	if err := persistQueue(checkDir, s2.q.snapshot()); err != nil {
		t.Fatal(err)
	}
	rePersisted, _ := os.ReadFile(filepath.Join(checkDir, "queue.json"))
	if !bytes.Equal(persisted, rePersisted) {
		t.Fatalf("resumed queue differs from persisted:\n--- persisted\n%s\n--- resumed\n%s", persisted, rePersisted)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "queue.json")); !os.IsNotExist(err) {
		t.Fatal("queue file not consumed by resume")
	}

	s2.Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Drain(ctx)
	}()
	// The resumed jobs keep their IDs and run to the same results the
	// direct facade produces.
	if v := waitTerminal(t, ts2, pend1.ID); v.State != StateDone {
		t.Fatalf("resumed job 1: %s (%q)", v.State, v.Error)
	}
	if _, got := result(t, ts2, pend1.ID); got != want {
		t.Fatalf("resumed job result differs from direct run:\n%s", got)
	}
	if v := waitTerminal(t, ts2, pend2.ID); v.State != StateDone {
		t.Fatalf("resumed job 2: %s (%q)", v.State, v.Error)
	}
}

// Drain past its deadline cancels stragglers instead of hanging.
func TestDrainDeadlineCancelsRunning(t *testing.T) {
	cfg := fastCfg()
	cfg.Workers = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	long := JobSpec{Type: TypeSimulate, App: "ADM", Config: "32proc", Steps: 2000, NoCache: true}
	_, sub, _ := submit(t, ts, long)
	waitState(t, ts, sub.ID, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if d := time.Since(start); d > 10*time.Second {
		t.Fatalf("drain took %v; straggler not canceled", d)
	}
	if v := getJob(t, ts, sub.ID); v.State != StateCanceled || !strings.Contains(v.Error, "draining") {
		t.Fatalf("straggler: %s (%q)", v.State, v.Error)
	}
}

// Cancellation: queued jobs leave the queue; running jobs stop at the
// kernel's next interrupt check.
func TestCancelQueuedAndRunning(t *testing.T) {
	cfg := fastCfg()
	cfg.Workers = 1
	gate := make(chan struct{})
	s, ts := newTestServer(t, cfg, func(job *Job, attempt int) error {
		if job.Spec.Seed == 1 {
			<-gate
		}
		return nil
	})
	blocking := smallSim
	blocking.Seed = 1
	blocking.NoCache = true
	_, blockSub, _ := submit(t, ts, blocking)
	waitState(t, ts, blockSub.ID, StateRunning)
	_, queuedSub, _ := submit(t, ts, smallSim)

	// Cancel the queued job: terminal immediately, queue slot freed.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+queuedSub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v := getJob(t, ts, queuedSub.ID); v.State != StateCanceled {
		t.Fatalf("queued cancel: %s", v.State)
	}
	if s.q.depth() != 0 {
		t.Fatalf("queue depth %d after queued cancel", s.q.depth())
	}

	// Cancel a long-running job mid-simulation.
	close(gate)
	waitTerminal(t, ts, blockSub.ID)
	long := JobSpec{Type: TypeSimulate, App: "ADM", Config: "32proc", Steps: 2000, NoCache: true}
	_, longSub, _ := submit(t, ts, long)
	waitState(t, ts, longSub.ID, StateRunning)
	cancelResp, err := http.Post(ts.URL+"/jobs/"+longSub.ID+"/cancel", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	cancelResp.Body.Close()
	v := waitTerminal(t, ts, longSub.ID)
	if v.State != StateCanceled {
		t.Fatalf("running cancel: %s (%q)", v.State, v.Error)
	}
}

// Service-level cache integrity: a corrupted entry is recomputed, not
// served.
func TestCorruptCacheEntryRecomputed(t *testing.T) {
	cacheDir := t.TempDir()
	cfg := fastCfg()
	cfg.CacheDir = cacheDir
	s, ts := newTestServer(t, cfg, nil)
	want := smallSimWant(t)

	_, sub, _ := submit(t, ts, smallSim)
	if v := waitTerminal(t, ts, sub.ID); v.State != StateDone {
		t.Fatalf("seed job: %s", v.State)
	}
	entries, _ := filepath.Glob(filepath.Join(cacheDir, "*.entry"))
	if len(entries) != 1 {
		t.Fatalf("cache entries: %v", entries)
	}
	data, _ := os.ReadFile(entries[0])
	data[len(data)-2] ^= 0x20
	if err := os.WriteFile(entries[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	status, sub2, _ := submit(t, ts, smallSim)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit over corrupt entry returned %d (served from corrupt cache?)", status)
	}
	v := waitTerminal(t, ts, sub2.ID)
	if v.State != StateDone || v.CacheHit {
		t.Fatalf("recompute: state %s cache_hit %v", v.State, v.CacheHit)
	}
	if _, got := result(t, ts, sub2.ID); got != want {
		t.Fatalf("recomputed result differs:\n%s", got)
	}
	if s.cache.Stats().Corrupt == 0 {
		t.Fatal("corruption not counted")
	}
	if !strings.Contains(metricsText(t, ts), metricLine("cedar_serve_cache_corrupt_total", "1")) {
		t.Fatal("corruption not visible in /metrics")
	}
}

// The progress stream yields NDJSON events ending in a state line.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, fastCfg(), nil)
	spec := JobSpec{Type: TypeSweep, App: "FLO52", Configs: []string{"1proc", "4proc"}, Steps: 2}
	_, sub, _ := submit(t, ts, spec)
	resp, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) < 3 {
		t.Fatalf("stream too short: %v", lines)
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"state"`) || !strings.Contains(last, StateDone) {
		t.Fatalf("stream did not end with a done state line: %v", lines)
	}
	var sawSweep bool
	for _, l := range lines {
		if strings.Contains(l, "swept FLO52") {
			sawSweep = true
		}
	}
	if !sawSweep {
		t.Fatalf("no per-config progress in stream: %v", lines)
	}
}

// Replay and corpus job types round-trip through the service.
func TestReplayAndCorpusJobs(t *testing.T) {
	_, ts := newTestServer(t, fastCfg(), nil)
	_, sub, _ := submit(t, ts, JobSpec{Type: TypeReplay, Scenario: okScenario})
	v := waitTerminal(t, ts, sub.ID)
	if v.State != StateDone {
		t.Fatalf("replay job: %s (%q)", v.State, v.Error)
	}
	if _, got := result(t, ts, sub.ID); !strings.Contains(got, "outcome ok") {
		t.Fatalf("replay result: %s", got)
	}

	_, csub, _ := submit(t, ts, JobSpec{Type: TypeCorpus, Corpus: []string{okScenario, okScenario}})
	cv := waitTerminal(t, ts, csub.ID)
	if cv.State != StateDone {
		t.Fatalf("corpus job: %s (%q)", cv.State, cv.Error)
	}
	if _, got := result(t, ts, csub.ID); strings.Count(got, "ok app=") != 2 {
		t.Fatalf("corpus result: %s", got)
	}
}

// Invalid submissions are rejected at the door with 400s that name the
// problem; unknown jobs are 404.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, fastCfg(), nil)
	cases := []struct {
		spec JobSpec
		want string
	}{
		{JobSpec{Type: "simulate", App: "NOPE", Config: "8proc"}, "unknown app"},
		{JobSpec{Type: "simulate", App: "FLO52", Config: "9proc"}, "unknown configuration"},
		{JobSpec{Type: "simulate", App: "FLO52", Config: "8proc", Plan: "ce:99@1"}, "out of range"},
		{JobSpec{Type: "sweep", App: "FLO52", Plan: "ce:1@500"}, "fault plan"},
		{JobSpec{Type: "mystery"}, "unknown job type"},
		{JobSpec{}, "missing job type"},
		{JobSpec{Type: "replay", Scenario: "not a scenario"}, "replay"},
		{JobSpec{Type: "corpus"}, "without scenario lines"},
		{JobSpec{Type: "simulate", App: "FLO52", Config: "8proc", DeadlineMS: -1}, "deadline_ms"},
	}
	for _, c := range cases {
		status, _, body := submit(t, ts, c.spec)
		if status != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d body %s", c.spec, status, body)
		}
		if !strings.Contains(body, c.want) {
			t.Fatalf("spec %+v: body %q does not mention %q", c.spec, body, c.want)
		}
	}
	resp, err := http.Get(ts.URL + "/jobs/j999999-deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d", resp.StatusCode)
	}
}

// Attempts stopped from outside the model — cancellation or a
// deadline, bare or wrapped in the kernel's CanceledError — must never
// be classified as simulation outcomes; real in-model terminations
// must.
func TestIsInterruptedClassification(t *testing.T) {
	for _, err := range []error{
		&sim.CanceledError{At: 5, Cause: context.DeadlineExceeded},
		&sim.CanceledError{At: 5, Cause: context.Canceled},
		context.Canceled,
		fmt.Errorf("attempt deadline 40ms exceeded: %w", context.DeadlineExceeded),
	} {
		if !isInterrupted(err) {
			t.Errorf("isInterrupted(%v) = false, want true", err)
		}
	}
	for _, err := range []error{
		&sim.DeadlockError{At: 1, Live: 2},
		&sim.CycleBudgetError{Budget: 10, Now: 10, Live: 1},
		errors.New("model blew up"),
	} {
		if isInterrupted(err) {
			t.Errorf("isInterrupted(%v) = true, want false", err)
		}
	}
}

// A deadline-expired replay attempt surfaces its raw error for the
// retry machinery instead of being mapped through cedar.Outcome —
// otherwise an expect=error scenario would accept the truncated run as
// a success and cache its payload.
func TestReplayInterruptedIsNotAnOutcome(t *testing.T) {
	spec := JobSpec{Type: TypeReplay, Scenario: okScenario + " expect=error"}
	r, err := spec.Validate()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	payload, err := spec.execute(ctx, r, func(string) {})
	if err == nil {
		t.Fatalf("deadline-expired replay reported success: %q", payload)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded to surface", err)
	}
}

// MaxCycles changes what a run computes, so it is part of the cache
// address; the zero value stays out of the canonical form so specs
// without a budget keep their pre-existing keys.
func TestCacheKeyIncludesMaxCycles(t *testing.T) {
	capped := smallSim
	capped.MaxCycles = 1000
	if smallSim.cacheKey("v").ID() == capped.cacheKey("v").ID() {
		t.Fatal("simulate max_cycles does not change the cache key")
	}
	re := JobSpec{Type: TypeReplay, Scenario: okScenario}
	reCapped := re
	reCapped.MaxCycles = 1000
	if re.cacheKey("v").ID() == reCapped.cacheKey("v").ID() {
		t.Fatal("replay max_cycles does not change the cache key")
	}
	if c := smallSim.cacheKey("v").Canonical(); strings.Contains(c, "maxcycles") {
		t.Fatalf("zero max_cycles altered the canonical key: %s", c)
	}
}

// The fault-plan path: a plan validated at submit runs degraded and
// its result is cached and reproducible.
func TestSimulateWithFaultPlan(t *testing.T) {
	cfg := fastCfg()
	cfg.CacheDir = t.TempDir()
	_, ts := newTestServer(t, cfg, nil)
	spec := JobSpec{Type: TypeSimulate, App: "FLO52", Config: "8proc", Steps: 1,
		Seed: 3327910339796038169, Plan: "ce:1@76414"}
	_, sub, _ := submit(t, ts, spec)
	v := waitTerminal(t, ts, sub.ID)
	if v.State != StateDone {
		t.Fatalf("fault job: %s (%q)", v.State, v.Error)
	}
	_, first := result(t, ts, sub.ID)
	status, sub2, _ := submit(t, ts, spec)
	if status != http.StatusOK || !sub2.CacheHit {
		t.Fatalf("fault-plan resubmit not served from cache: %d", status)
	}
	if _, second := result(t, ts, sub2.ID); second != first {
		t.Fatal("cached fault result differs from computed one")
	}
	if !strings.Contains(first, "failed_ces=1") {
		t.Fatalf("degraded result does not show the failed CE:\n%s", first)
	}
}

// The registry gate: the three metric endpoints render the same
// snapshot vocabulary, and a finished job record carries the scalar
// snapshot it completed under.
func TestMetricsEndpointsAndJobSnapshot(t *testing.T) {
	cfg := fastCfg()
	cfg.CacheDir = t.TempDir()
	_, ts := newTestServer(t, cfg, nil)

	_, sr, _ := submit(t, ts, smallSim)
	waitTerminal(t, ts, sr.ID)

	v := getJob(t, ts, sr.ID)
	if v.Metrics == nil {
		t.Fatal("finished job has no metric snapshot")
	}
	if v.Metrics["serve_jobs_done_total"] < 1 {
		t.Fatalf("job snapshot serve_jobs_done_total = %g, want >= 1", v.Metrics["serve_jobs_done_total"])
	}
	if _, ok := v.Metrics["serve_cache_misses_total"]; !ok {
		t.Fatalf("job snapshot missing cache metrics: %v", v.Metrics)
	}

	// JSON and CSV endpoints expose the same registry as /metrics.
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name  string   `json:"name"`
			Value *float64 `json:"value"`
		} `json:"metrics"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]float64{}
	for _, m := range doc.Metrics {
		if m.Value != nil {
			names[m.Name] = *m.Value
		}
	}
	if names["serve_jobs_submitted_total"] != 1 {
		t.Fatalf("/metrics.json serve_jobs_submitted_total = %g, want 1", names["serve_jobs_submitted_total"])
	}
	if !strings.Contains(metricsText(t, ts), metricLine("cedar_serve_jobs_submitted_total", "1")) {
		t.Fatal("/metrics disagrees with /metrics.json on serve_jobs_submitted_total")
	}

	resp, err = http.Get(ts.URL + "/metrics.csv")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(string(raw), "metric,type,unit,key1,key2,value\n") {
		t.Fatalf("/metrics.csv header:\n%s", raw)
	}
	if !strings.Contains(string(raw), "serve_jobs_submitted_total,counter,,,,1\n") {
		t.Fatalf("/metrics.csv missing submitted counter:\n%s", raw)
	}
}

// benchDoc is a tiny scenario document for bench jobs.
const benchDoc = "name: bench-flo52-tiny\napp: FLO52\nconfig: 1proc\nsteps: 1\n"

// A bench job runs a scenario document, returns the canonical capture
// encoding (byte-identical to a direct scenario run), and caches it
// like every other job kind.
func TestBenchJob(t *testing.T) {
	sc, err := scenario.Parse("bench", []byte(benchDoc))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := scenario.Run(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := scenario.EncodeCapture(recs)
	if err != nil {
		t.Fatal(err)
	}
	want := string(wantBytes)

	cfg := fastCfg()
	cfg.CacheDir = t.TempDir()
	_, ts := newTestServer(t, cfg, nil)

	spec := JobSpec{Type: TypeBench, Bench: benchDoc}
	status, sr, raw := submit(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("bench submit: status %d (%s)", status, raw)
	}
	v := waitTerminal(t, ts, sr.ID)
	if v.State != StateDone || v.CacheHit {
		t.Fatalf("bench job: state %s cache_hit %v (err %q)", v.State, v.CacheHit, v.Error)
	}
	code, got := result(t, ts, sr.ID)
	if code != 200 || got != want {
		t.Fatalf("bench result differs from direct scenario run (status %d):\n%s", code, got)
	}
	// The payload is a well-formed capture with stamped identity.
	parsed, err := scenario.ReadCapture(strings.NewReader(got))
	if err != nil {
		t.Fatalf("bench result is not a capture: %v", err)
	}
	if len(parsed) == 0 || parsed[0].Scenario != "bench-flo52-tiny" {
		t.Fatalf("capture records = %+v", parsed)
	}

	// Warm resubmit: content-addressed cache hit on the document text.
	status, sr2, raw := submit(t, ts, spec)
	if status != http.StatusOK || !sr2.CacheHit {
		t.Fatalf("warm bench submit: status %d body %s", status, raw)
	}
	if _, got2 := result(t, ts, sr2.ID); got2 != want {
		t.Fatal("cached bench result differs")
	}

	// A different document is a different cache key.
	other := JobSpec{Type: TypeBench, Bench: benchDoc + "seed: 7\n"}
	if status, sr3, _ := submit(t, ts, other); status != http.StatusAccepted {
		t.Fatalf("distinct bench doc unexpectedly hit the cache (status %d)", status)
	} else {
		waitTerminal(t, ts, sr3.ID)
	}
}

// A bench job with an invalid scenario document is rejected at submit.
func TestBenchJobRejectsBadDocument(t *testing.T) {
	_, ts := newTestServer(t, fastCfg(), nil)
	for _, doc := range []string{"", "app: NOPE\nconfig: 8proc\n", "app: FLO52\nconfig: 8proc\nbogus: 1\n"} {
		status, _, raw := submit(t, ts, JobSpec{Type: TypeBench, Bench: doc})
		if status != http.StatusBadRequest {
			t.Fatalf("bad bench doc %q: status %d (%s)", doc, status, raw)
		}
	}
}
