package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// queue is the bounded admission queue. Push fails (rather than
// blocks) when full — the HTTP layer turns that into 429 — and close
// stops workers from starting queued work while leaving the pending
// items in place for persistence.
type queue struct {
	mu     sync.Mutex
	nempty sync.Cond
	items  []*Job
	max    int
	closed bool
}

func newQueue(max int) *queue {
	q := &queue{max: max}
	q.nempty.L = &q.mu
	return q
}

// push appends a job; false when the queue is full or closed.
func (q *queue) push(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) >= q.max {
		return false
	}
	q.items = append(q.items, j)
	q.nempty.Signal()
	return true
}

// pop blocks until a job is available or the queue is closed. After
// close, pop returns false immediately — queued jobs are deliberately
// left unstarted so a draining server can persist them.
func (q *queue) pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.items) == 0 {
		q.nempty.Wait()
	}
	if q.closed {
		return nil, false
	}
	j := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return j, true
}

// remove deletes a specific queued job (cancellation); false when the
// job already left the queue.
func (q *queue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it == j {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// depth returns the number of queued jobs.
func (q *queue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close stops pops; queued items stay for snapshot.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.nempty.Broadcast()
}

// snapshot returns the queued jobs in order.
func (q *queue) snapshot() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	return append([]*Job(nil), q.items...)
}

// persistedJob is one pending job in the on-disk queue file. The
// encoding is stable and minimal: ID, spec, and submission time —
// everything a restarted server needs to resume the job exactly as
// submitted.
type persistedJob struct {
	ID          string    `json:"id"`
	Spec        JobSpec   `json:"spec"`
	SubmittedAt time.Time `json:"submitted_at"`
}

// persistedQueue is the queue file's schema.
type persistedQueue struct {
	Version int            `json:"version"`
	Jobs    []persistedJob `json:"jobs"`
}

const queueFileVersion = 1

// queueFile is the pending-queue path under a state directory.
func queueFile(stateDir string) string { return filepath.Join(stateDir, "queue.json") }

// persistQueue writes the pending jobs atomically (temp file + rename)
// so a crash during shutdown cannot leave a torn queue file. The
// encoding is deterministic — same pending jobs, same bytes — so a
// persisted queue round-trips byte-identically through a restart.
func persistQueue(stateDir string, jobs []*Job) error {
	if err := os.MkdirAll(stateDir, 0o755); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	pq := persistedQueue{Version: queueFileVersion}
	for _, j := range jobs {
		pq.Jobs = append(pq.Jobs, persistedJob{ID: j.ID, Spec: j.Spec, SubmittedAt: j.SubmittedAt.UTC()})
	}
	data, err := json.MarshalIndent(pq, "", "  ")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(stateDir, "queue.json.tmp-*")
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(name, queueFile(stateDir))
	}
	if werr != nil {
		os.Remove(name)
		return fmt.Errorf("serve: persisting queue: %w", werr)
	}
	return nil
}

// loadQueue reads a persisted pending queue; a missing file is an
// empty queue. The file is left in place — the caller removes it only
// once the jobs are safely re-enqueued.
func loadQueue(stateDir string) ([]persistedJob, error) {
	data, err := os.ReadFile(queueFile(stateDir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	var pq persistedQueue
	if err := json.Unmarshal(data, &pq); err != nil {
		return nil, fmt.Errorf("serve: corrupt queue file %s: %w", queueFile(stateDir), err)
	}
	if pq.Version != queueFileVersion {
		return nil, fmt.Errorf("serve: queue file %s has version %d, want %d",
			queueFile(stateDir), pq.Version, queueFileVersion)
	}
	return pq.Jobs, nil
}
