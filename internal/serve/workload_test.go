package serve

import (
	"net/http"
	"strings"
	"testing"

	cedar "repro"
	"repro/internal/arch"
	"repro/internal/perfect"
	"repro/internal/scenario"
)

// inlineWorkloadDoc is a small workload document for inline-submission
// tests — the same app a gen: spec or a client-side .workload file
// would carry over the wire.
const inlineWorkloadDoc = `workload: wiretest
steps: 2
data_words: 8192
cache_hit_ratio: 0.9
phase: serial init
  work: 2000
  gm_words: 16
phase: xdoall sweep
  inner: 64
  work: 500
  gm_words: 4
`

// A simulate job can carry its application as an inline workload
// document: the result matches the direct facade run byte for byte,
// a resubmission of the same document is a warm cache hit, and any
// document edit is a distinct cache key.
func TestSimulateJobInlineWorkload(t *testing.T) {
	app, err := perfect.ParseWorkload([]byte(inlineWorkloadDoc))
	if err != nil {
		t.Fatal(err)
	}
	want := cedar.SimulateRun(app, arch.Cedar8, cedar.Options{Steps: 2}).StatfxText()

	cfg := fastCfg()
	cfg.CacheDir = t.TempDir()
	_, ts := newTestServer(t, cfg, nil)

	spec := JobSpec{Type: TypeSimulate, Workload: inlineWorkloadDoc, Config: "8proc", Steps: 2}
	status, sr, raw := submit(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("cold submit: status %d (%s)", status, raw)
	}
	v := waitTerminal(t, ts, sr.ID)
	if v.State != StateDone || v.CacheHit {
		t.Fatalf("cold job: state %s cache_hit %v (err %q)", v.State, v.CacheHit, v.Error)
	}
	if code, got := result(t, ts, sr.ID); code != 200 || got != want {
		t.Fatalf("inline-workload result differs from direct run (status %d):\n%s", code, got)
	}

	// Warm resubmit of the identical document.
	status, sr2, raw := submit(t, ts, spec)
	if status != http.StatusOK || !sr2.CacheHit {
		t.Fatalf("warm submit: status %d body %s", status, raw)
	}
	if _, got := result(t, ts, sr2.ID); got != want {
		t.Fatal("cached inline-workload result differs")
	}

	// One knob changed: the document text is the identity, so this
	// must miss the cache.
	edited := spec
	edited.Workload = strings.Replace(inlineWorkloadDoc, "work: 500", "work: 501", 1)
	if status, sr3, _ := submit(t, ts, edited); status != http.StatusAccepted {
		t.Fatalf("edited workload unexpectedly hit the cache (status %d)", status)
	} else {
		waitTerminal(t, ts, sr3.ID)
	}
}

// A gen: spec travels as the workload source too, and resolves
// server-side to the same deterministic app.
func TestSimulateJobGenWorkload(t *testing.T) {
	app, err := (perfect.Resolver{}).Resolve("gen:seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := cedar.SimulateRun(app, arch.Cedar8, cedar.Options{Steps: 2}).StatfxText()

	cfg := fastCfg()
	cfg.CacheDir = t.TempDir()
	_, ts := newTestServer(t, cfg, nil)

	spec := JobSpec{Type: TypeSimulate, Workload: "gen:seed=7", Config: "8proc", Steps: 2}
	status, sr, raw := submit(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", status, raw)
	}
	waitTerminal(t, ts, sr.ID)
	if _, got := result(t, ts, sr.ID); got != want {
		t.Fatalf("gen-workload result differs from direct run:\n%s", got)
	}
}

// Bad workload submissions are rejected at submit time with a clear
// message: both sources, neither source on a sweep, and file paths
// (the server must never read server-side files for a remote caller).
func TestWorkloadBadRequests(t *testing.T) {
	_, ts := newTestServer(t, fastCfg(), nil)
	cases := []struct {
		spec JobSpec
		want string
	}{
		{JobSpec{Type: TypeSimulate, App: "FLO52", Workload: inlineWorkloadDoc, Config: "8proc"},
			"mutually exclusive"},
		{JobSpec{Type: TypeSimulate, Workload: "apps.workload", Config: "8proc"},
			"not allowed here"},
		{JobSpec{Type: TypeSweep},
			"missing app (or workload)"},
		{JobSpec{Type: TypeSimulate, Workload: "steps: 2\nbogus: 1\n", Config: "8proc"},
			"unknown key"},
	}
	for _, tc := range cases {
		status, _, raw := submit(t, ts, tc.spec)
		if status != http.StatusBadRequest || !strings.Contains(raw, tc.want) {
			t.Errorf("spec %+v: status %d body %q, want 400 containing %q", tc.spec, status, raw, tc.want)
		}
	}
}

// A bench job whose scenario document carries an inline workload:
// block returns the capture a direct scenario run produces, byte for
// byte, and warm-resubmits from the cache — the cross-tool contract
// with cedarbench and cedarsim -scenario.
func TestBenchJobInlineWorkload(t *testing.T) {
	doc := "name: bench-inline\nconfig: 8proc\nsteps: 2\nworkload:\n"
	for _, line := range strings.Split(strings.TrimRight(inlineWorkloadDoc, "\n"), "\n") {
		doc += "  " + line + "\n"
	}
	sc, err := scenario.Parse("bench", []byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	recs, err := scenario.Run(sc, false)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := scenario.EncodeCapture(recs)
	if err != nil {
		t.Fatal(err)
	}
	want := string(wantBytes)

	cfg := fastCfg()
	cfg.CacheDir = t.TempDir()
	_, ts := newTestServer(t, cfg, nil)

	spec := JobSpec{Type: TypeBench, Bench: doc}
	status, sr, raw := submit(t, ts, spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", status, raw)
	}
	v := waitTerminal(t, ts, sr.ID)
	if v.State != StateDone {
		t.Fatalf("bench job: state %s (err %q)", v.State, v.Error)
	}
	if code, got := result(t, ts, sr.ID); code != 200 || got != want {
		t.Fatalf("bench inline-workload capture differs from direct run (status %d):\n%s", code, got)
	}

	status, sr2, _ := submit(t, ts, spec)
	if status != http.StatusOK || !sr2.CacheHit {
		t.Fatalf("warm bench submit: status %d", status)
	}
	if _, got := result(t, ts, sr2.ID); got != want {
		t.Fatal("cached bench capture differs")
	}
}
