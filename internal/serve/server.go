// Package serve is the long-running sweep service: an HTTP/JSON API
// that accepts simulation, sweep, replay, and corpus jobs, runs them
// on a bounded worker pool through the deterministic engine, memoizes
// results in a crash-safe content-addressed cache, and exposes its own
// operational metrics at /metrics.
//
// Robustness is the design center — the operational analogue of the
// simulated machine's fail-stop machinery:
//
//   - Admission control: the job queue is bounded; a full queue
//     rejects with 429 and a Retry-After hint instead of growing
//     without bound, and a draining server rejects with 503.
//   - Deadlines: each attempt runs under a context deadline threaded
//     into the simulation kernel's interrupt check (plus the optional
//     virtual-time MaxCycles budget), so no wedged scenario can pin a
//     worker forever.
//   - Panic isolation: a panicking job fails alone, with the panic
//     value and stack preserved in its job record; the worker and the
//     server keep serving.
//   - Retry with exponential backoff and jitter for transient failure
//     classes (result-cache I/O, attempts that miss their deadline
//     under load); the retry count is visible in the job record and
//     /metrics.
//   - Graceful drain: SIGTERM (via Drain) stops admission, lets
//     running jobs finish up to a drain deadline, cancels stragglers,
//     and persists the still-pending queue atomically so a restarted
//     server resumes exactly the work it was holding.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/resultcache"
)

// Config tunes a Server. The zero value is usable: sensible defaults,
// no cache, no persistence.
type Config struct {
	// QueueDepth bounds the pending-job queue (default 64).
	QueueDepth int
	// Workers is the number of concurrent jobs (default GOMAXPROCS).
	Workers int
	// DefaultDeadline caps an attempt's wall-clock time when the spec
	// does not set one (default 2m). Zero after defaulting disables.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines (default 10m).
	MaxDeadline time.Duration
	// DrainTimeout is how long Drain waits for running jobs before
	// canceling them (default 30s).
	DrainTimeout time.Duration
	// MaxRetries bounds transient-failure retries per job (default 3).
	MaxRetries int
	// RetryBase is the first backoff delay (default 250ms); each retry
	// doubles it up to RetryMax (default 5s), with jitter.
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryAfter is the hint returned with 429/503 (default 1s).
	RetryAfter time.Duration
	// CacheDir enables the result cache rooted there ("" = no cache).
	CacheDir string
	// StateDir enables pending-queue persistence ("" = none).
	StateDir string
	// Version stamps cache keys with the code version so model changes
	// miss (default "dev").
	Version string
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 10 * time.Minute
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 250 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Version == "" {
		c.Version = "dev"
	}
	return c
}

// Server is the sweep service. Create with New, start workers with
// Start, mount Handler on an http.Server, and call Drain on SIGTERM.
type Server struct {
	cfg   Config
	cache *resultcache.Cache // nil when caching is off
	q     *queue

	mu   sync.Mutex
	cond sync.Cond // broadcast on any job change (progress streaming)
	jobs map[string]*Job
	seq  int

	running  atomic.Int64
	draining atomic.Bool
	wg       sync.WaitGroup

	Metrics *obs.PromSet
	met     metrics

	// failHook, when set, runs before every attempt and can force a
	// failure — the test seam for the retry/backoff and panic-isolation
	// machinery (a returned Transient error is retried; a panic inside
	// the hook exercises isolation).
	failHook func(job *Job, attempt int) error
	// sleep is the backoff sleeper, replaceable in tests.
	sleep func(ctx context.Context, d time.Duration)
}

// metrics are the service's operational instruments.
type metrics struct {
	submitted     obs.Counter
	rejectedFull  obs.Counter
	rejectedDrain obs.Counter
	done          obs.Counter
	failed        obs.Counter
	canceled      obs.Counter
	panics        obs.Counter
	retries       obs.Counter
	deadlines     obs.Counter
	cacheWriteErr obs.Counter
	drainSeconds  obs.Gauge
}

// New builds a server: opens the cache, registers metrics, and resumes
// any persisted pending queue (the jobs are re-enqueued under their
// original IDs and the queue file is removed). Workers do not run
// until Start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		q:       newQueue(cfg.QueueDepth),
		jobs:    map[string]*Job{},
		Metrics: obs.NewPromSet(map[string]string{"service": "cedarserved"}),
		sleep: func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		},
	}
	s.cond.L = &s.mu
	if cfg.CacheDir != "" {
		var err error
		if s.cache, err = resultcache.Open(cfg.CacheDir); err != nil {
			return nil, err
		}
	}
	s.registerMetrics()
	if cfg.StateDir != "" {
		if err := s.resume(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Server) registerMetrics() {
	m := s.Metrics
	m.GaugeFunc("serve_queue_depth", "jobs waiting for a worker", func() float64 {
		return float64(s.q.depth())
	})
	m.GaugeFunc("serve_running_jobs", "jobs currently executing", func() float64 {
		return float64(s.running.Load())
	})
	s.met.submitted = m.Counter("serve_jobs_submitted_total", "jobs accepted into the queue or served from cache")
	s.met.rejectedFull = m.Counter("serve_jobs_rejected_full_total", "submissions rejected 429 because the queue was full")
	s.met.rejectedDrain = m.Counter("serve_jobs_rejected_draining_total", "submissions rejected 503 while draining")
	s.met.done = m.Counter("serve_jobs_done_total", "jobs completed successfully")
	s.met.failed = m.Counter("serve_jobs_failed_total", "jobs that ended in failure")
	s.met.canceled = m.Counter("serve_jobs_canceled_total", "jobs canceled by a client or by drain")
	s.met.panics = m.Counter("serve_job_panics_total", "jobs that panicked (isolated to the job)")
	s.met.retries = m.Counter("serve_retries_total", "transient-failure retries")
	s.met.deadlines = m.Counter("serve_deadline_exceeded_total", "attempts stopped by the per-job deadline")
	s.met.cacheWriteErr = m.Counter("serve_cache_write_errors_total", "result-cache write failures")
	s.met.drainSeconds = m.Gauge("serve_drain_seconds", "duration of the last graceful drain")
	if s.cache != nil {
		m.CounterFunc("serve_cache_hits_total", "result-cache hits", func() float64 {
			return float64(s.cache.Stats().Hits)
		})
		m.CounterFunc("serve_cache_misses_total", "result-cache misses", func() float64 {
			return float64(s.cache.Stats().Misses)
		})
		m.CounterFunc("serve_cache_corrupt_total", "corrupt result-cache entries detected and discarded", func() float64 {
			return float64(s.cache.Stats().Corrupt)
		})
		m.GaugeFunc("serve_cache_entries", "complete entries in the result cache", func() float64 {
			return float64(s.cache.Len())
		})
	}
}

// resume re-enqueues a persisted pending queue. A job whose spec no
// longer validates (the registry changed across the restart) is
// registered as failed rather than silently dropped.
func (s *Server) resume() error {
	pending, err := loadQueue(s.cfg.StateDir)
	if err != nil {
		return err
	}
	for _, pj := range pending {
		job := &Job{ID: pj.ID, Spec: pj.Spec, State: StateQueued, SubmittedAt: pj.SubmittedAt}
		if res, verr := job.Spec.Validate(); verr != nil {
			job.State = StateFailed
			job.Error = fmt.Sprintf("resumed job no longer valid: %v", verr)
			job.FinishedAt = time.Now()
		} else {
			job.res = res
			if !s.q.push(job) {
				job.State = StateFailed
				job.Error = "resumed queue exceeds the configured queue depth"
				job.FinishedAt = time.Now()
			}
		}
		s.jobs[job.ID] = job
	}
	if len(pending) > 0 {
		os.Remove(queueFile(s.cfg.StateDir))
	}
	return nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Draining reports whether the server has stopped admission.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the job layer down: admission stops (503),
// queued jobs stay queued, running jobs get until ctx's deadline (or
// the configured DrainTimeout when ctx has none) to finish and are
// then canceled, and the pending queue is persisted for the next
// process. Safe to call once; the HTTP listener is the caller's to
// close.
func (s *Server) Drain(ctx context.Context) error {
	start := time.Now()
	s.draining.Store(true)
	s.q.close()
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}

	// The pool is fully drained exactly when every worker has exited:
	// the queue is closed, so each worker returns as soon as its
	// current job (if any) finishes. Waiting on the pool rather than on
	// a running-jobs counter closes the race with a worker that popped
	// a job just before close but has not yet registered it as running
	// — such a job still holds its worker, and the pool does not exit
	// until it is done or canceled.
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		// Deadline passed: cancel stragglers until the pool exits. The
		// sweep repeats because a worker may register a freshly popped
		// job only after a cancel pass has already run; each registered
		// job is then stopped at the kernel's next interrupt check.
		for draining := true; draining; {
			s.mu.Lock()
			for _, j := range s.jobs {
				if j.State == StateRunning && j.cancel != nil {
					if j.Error == "" {
						j.Error = "canceled: server draining"
					}
					j.cancel()
				}
			}
			s.mu.Unlock()
			select {
			case <-drained:
				draining = false
			case <-time.After(2 * time.Millisecond):
			}
		}
	}

	var err error
	if s.cfg.StateDir != "" {
		err = persistQueue(s.cfg.StateDir, s.q.snapshot())
	}
	s.met.drainSeconds.Set(time.Since(start).Seconds())
	return err
}

// newID mints a job ID: a monotonic sequence number plus random bits
// so IDs stay unique across restarts that resume persisted jobs.
func (s *Server) newID() string {
	var b [4]byte
	rand.Read(b[:])
	s.seq++
	return fmt.Sprintf("j%06d-%s", s.seq, hex.EncodeToString(b[:]))
}

// addEvent appends a progress line to the job's log and wakes
// streamers. Takes the server lock.
func (s *Server) addEvent(job *Job, msg string) {
	s.mu.Lock()
	job.events = append(job.events, ProgressEvent{At: time.Now(), Msg: msg})
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Transient marks an error as retryable: the retry machinery backs
// off and re-attempts jobs failing with one, up to MaxRetries.
func Transient(err error) error { return &transientError{err} }

type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// cacheWriteError is a computed result whose cache write failed: a
// transient class, but one that carries the payload so the final
// attempt can succeed without recomputing.
type cacheWriteError struct {
	err     error
	payload []byte
}

func (e *cacheWriteError) Error() string { return "result-cache write failed: " + e.err.Error() }
func (e *cacheWriteError) Unwrap() error { return e.err }

// panicError is a recovered job panic.
type panicError struct {
	val   string
	stack string
}

func (e *panicError) Error() string { return "job panicked: " + e.val }

// isTransient classifies retryable failures: explicit Transient marks,
// cache-write failures, and attempts that missed their wall-clock
// deadline (load-dependent — a later attempt may find a free worker or
// a warm cache).
func isTransient(err error) bool {
	var te *transientError
	var ce *cacheWriteError
	return errors.As(err, &te) || errors.As(err, &ce) || errors.Is(err, context.DeadlineExceeded)
}

// isAbort reports a job stopped by cancellation (client cancel or
// drain) rather than by its own failure.
func isAbort(err error) bool { return errors.Is(err, context.Canceled) }

// backoff returns the exponential-with-jitter delay before retry
// attempt (0-based): base<<attempt capped at RetryMax, then jittered
// to [d/2, d) so a burst of retries does not re-synchronize.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.cfg.RetryBase << uint(attempt)
	if d > s.cfg.RetryMax || d <= 0 {
		d = s.cfg.RetryMax
	}
	half := d / 2
	return half + time.Duration(mrand.Int63n(int64(half)+1))
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		job, ok := s.q.pop()
		if !ok {
			return
		}
		s.runJob(job)
	}
}

// runJob drives one job through attempts, retries, and its terminal
// state. Panics never escape: they are recorded on the job.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	if job.canceled {
		s.finishLocked(job, StateCanceled, "canceled before start")
		s.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	job.State = StateRunning
	job.StartedAt = time.Now()
	job.cancel = cancel
	job.events = append(job.events, ProgressEvent{At: job.StartedAt, Msg: "started"})
	s.cond.Broadcast()
	s.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)
	defer cancel()

	deadline := s.cfg.DefaultDeadline
	if job.Spec.DeadlineMS > 0 {
		deadline = time.Duration(job.Spec.DeadlineMS) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}

	var payload []byte
	var err error
	for attempt := 0; ; attempt++ {
		payload, err = s.attempt(ctx, job, attempt, deadline)
		if err == nil {
			break
		}
		var pe *panicError
		if errors.As(err, &pe) || isAbort(err) {
			break
		}
		if !isTransient(err) || attempt >= s.cfg.MaxRetries {
			// Out of attempts. A cache-write failure still has the
			// result in hand: serve it rather than fail the job over a
			// sick disk.
			var cw *cacheWriteError
			if errors.As(err, &cw) {
				payload, err = cw.payload, nil
				s.addEvent(job, "serving result despite cache write failure")
			}
			break
		}
		d := s.backoff(attempt)
		s.mu.Lock()
		job.Retries++
		job.events = append(job.events, ProgressEvent{At: time.Now(),
			Msg: fmt.Sprintf("attempt %d failed (%v); retrying in %v", attempt+1, err, d.Round(time.Millisecond))})
		s.cond.Broadcast()
		s.mu.Unlock()
		s.met.retries.Inc()
		s.sleep(ctx, d)
		if ctx.Err() != nil {
			err = ctx.Err()
			break
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var pe *panicError
	switch {
	case err == nil:
		job.result = payload
		s.finishLocked(job, StateDone, "")
	case errors.As(err, &pe):
		job.PanicVal = pe.val
		job.Stack = pe.stack
		s.met.panics.Inc()
		s.finishLocked(job, StateFailed, pe.Error())
	case isAbort(err):
		reason := job.Error // drain pre-fills "canceled: server draining"
		if reason == "" {
			reason = "canceled"
		}
		s.finishLocked(job, StateCanceled, reason)
	default:
		s.finishLocked(job, StateFailed, err.Error())
	}
}

// finishLocked moves a job to a terminal state and stamps it with the
// service's scalar metric snapshot. Caller holds s.mu; the snapshot's
// pull functions read the queue, the running counter, and the cache —
// none re-enter s.mu.
func (s *Server) finishLocked(job *Job, state, errMsg string) {
	job.State = state
	if errMsg != "" {
		job.Error = errMsg
	}
	job.FinishedAt = time.Now()
	job.events = append(job.events, ProgressEvent{At: job.FinishedAt, Msg: state})
	switch state {
	case StateDone:
		s.met.done.Inc()
	case StateFailed:
		s.met.failed.Inc()
	case StateCanceled:
		s.met.canceled.Inc()
	}
	job.Metrics = s.Metrics.Registry().Snapshot().Scalars()
	s.cond.Broadcast()
}

// attempt runs one try of the job: cache lookup, execution under the
// per-attempt deadline, cache fill. A panic anywhere inside — the
// simulation, the cache, the hook — comes back as *panicError.
func (s *Server) attempt(jobCtx context.Context, job *Job, attempt int, deadline time.Duration) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: fmt.Sprint(r), stack: string(debug.Stack())}
		}
	}()
	if h := s.failHook; h != nil {
		if herr := h(job, attempt); herr != nil {
			return nil, herr
		}
	}
	useCache := s.cache != nil && !job.Spec.NoCache
	key := job.Spec.cacheKey(s.cfg.Version)
	if useCache {
		if p, ok := s.cache.Get(key); ok {
			s.mu.Lock()
			job.CacheHit = true
			s.mu.Unlock()
			s.addEvent(job, "result cache hit")
			return p, nil
		}
	}
	ctx := jobCtx
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(jobCtx, deadline)
		defer cancel()
	}
	payload, err = job.Spec.execute(ctx, job.res, func(msg string) { s.addEvent(job, msg) })
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && jobCtx.Err() == nil {
			s.met.deadlines.Inc()
			return nil, fmt.Errorf("attempt deadline %v exceeded: %w", deadline, err)
		}
		return nil, err
	}
	if useCache {
		if perr := s.cache.Put(key, payload); perr != nil {
			s.met.cacheWriteErr.Inc()
			return nil, &cacheWriteError{err: perr, payload: payload}
		}
	}
	return payload, nil
}
