package faults

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want Event
	}{
		{"ce:2@1e6", Event{Kind: CEFail, Target: 2, At: 1_000_000}},
		{"ce:5x3@500", Event{Kind: CESlow, Target: 5, At: 500, Factor: 3}},
		{"module:17@5e5", Event{Kind: ModuleOffline, Target: 17, At: 500_000}},
		{"module:17x2.5@100", Event{Kind: ModuleSlow, Target: 17, At: 100, Factor: 2.5}},
		{"port:4@0", Event{Kind: PortSlow, Target: 4, At: 0, Factor: DefaultPortFactor}},
		{"port:4x8@10", Event{Kind: PortSlow, Target: 4, At: 10, Factor: 8}},
		{"lock:0@1e6+5e4", Event{Kind: LockStall, Target: 0, At: 1_000_000, Span: 50_000}},
		{"lock:-1@200", Event{Kind: LockStall, Target: -1, At: 200, Span: DefaultLockSpan}},
		{"storm:-1@1e5", Event{Kind: PageStorm, Target: -1, At: 100_000}},
	}
	for _, c := range cases {
		plan, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if len(plan) != 1 {
			t.Errorf("Parse(%q): %d events, want 1", c.spec, len(plan))
			continue
		}
		if plan[0] != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.spec, plan[0], c.want)
		}
	}
}

func TestParseList(t *testing.T) {
	plan, err := Parse("ce:2@1e6, module:17@5e5,lock:0@2e6+1e4")
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Fatalf("got %d events, want 3", len(plan))
	}
	if plan[1].Kind != ModuleOffline || plan[1].Target != 17 {
		t.Errorf("event 1 = %+v", plan[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"ce@1e6",          // no target
		"ce:2",            // no time
		"ce:2@-5",         // negative time
		"ce:2x0.5@0",      // factor < 1
		"warp:1@0",        // unknown kind
		"lock:0@0+-3",     // bad span
		"module:banana@0", // bad target
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	spec := "ce:2@1000000,ce:5x3@500,module:17@500000,port:4x8@10,lock:-1@200+50000,storm:1@7"
	plan, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	plan2, err := Parse(plan.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", plan.String(), err)
	}
	for i := range plan {
		if plan[i] != plan2[i] {
			t.Errorf("event %d: %+v != %+v", i, plan[i], plan2[i])
		}
	}
}

func TestValidate(t *testing.T) {
	cfg := arch.Cedar32

	good := Plan{
		{Kind: CEFail, Target: 31, At: 0},
		{Kind: ModuleSlow, Target: 31, At: 0, Factor: 2},
		{Kind: LockStall, Target: -1, At: 0, Span: 100},
		{Kind: PageStorm, Target: 3, At: 0},
	}
	if err := good.Validate(cfg); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}

	bad := []Plan{
		{{Kind: CEFail, Target: 32, At: 0}},
		{{Kind: ModuleOffline, Target: -1, At: 0}},
		{{Kind: PortSlow, Target: 99, At: 0, Factor: 2}},
		{{Kind: LockStall, Target: 4, At: 0, Span: 100}},
		{{Kind: PageStorm, Target: -2, At: 0}},
		{{Kind: CESlow, Target: 0, At: 0, Factor: 0.5}},
		{{Kind: LockStall, Target: 0, At: 0, Span: 0}},
	}
	for i, p := range bad {
		if err := p.Validate(cfg); err == nil {
			t.Errorf("bad plan %d (%s) accepted", i, p)
		}
	}

	// Offlining every module must be rejected; all but one is fine.
	var all, most Plan
	for m := 0; m < cfg.GMModules; m++ {
		all = append(all, Event{Kind: ModuleOffline, Target: m})
		if m > 0 {
			most = append(most, Event{Kind: ModuleOffline, Target: m})
		}
	}
	if err := all.Validate(cfg); err == nil ||
		!strings.Contains(err.Error(), "all") {
		t.Errorf("offline-all accepted (err=%v)", err)
	}
	if err := most.Validate(cfg); err != nil {
		t.Errorf("offline all-but-one rejected: %v", err)
	}
}

func TestEventStringStable(t *testing.T) {
	e := Event{Kind: LockStall, Target: 2, At: sim.Time(1e6), Span: 5000}
	if got := e.String(); got != "lock:2@1000000+5000" {
		t.Errorf("String() = %q", got)
	}
}
