// Package faults injects hardware and operating-system faults into a
// simulated Cedar machine at chosen virtual times, so degraded-mode
// runs can be compared against the paper's healthy-machine overhead
// decomposition.
//
// A Plan is an ordered list of typed fault events. The text form,
// accepted by Parse and the cedarsim -fault flag, is a comma-separated
// list of
//
//	kind:target[xFACTOR][+SPAN]@TIME
//
// where TIME is the virtual cycle the fault fires at (float syntax,
// e.g. 1e6), FACTOR is a slow-down multiplier and SPAN a duration in
// cycles. The kinds:
//
//	ce:N@T        CE N fail-stops at cycle T
//	ce:Nx3@T      CE N's clock degrades 3x (slow-down, not fail)
//	module:N@T    global-memory module N goes offline (accesses remap)
//	module:Nx2@T  module N's service time inflates 2x
//	port:Nx4@T    forward stage-1 network port N runs at 1/4 bandwidth
//	lock:C@T+S    a rogue kernel thread holds cluster C's kernel lock
//	              for S cycles (C = -1: the global kernel lock)
//	storm:C@T     paging storm: cluster task C's page mappings are
//	              invalidated and re-fault on next touch (C = -1: all)
package faults

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/hpm"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/xylem"
)

// Kind identifies a fault type.
type Kind int

const (
	CEFail Kind = iota
	CESlow
	ModuleOffline
	ModuleSlow
	PortSlow
	LockStall
	PageStorm
	numKinds
)

var kindNames = [numKinds]string{
	"ce-fail", "ce-slow", "module-offline", "module-slow",
	"port-slow", "lock-stall", "page-storm",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Defaults applied by Parse when the spec omits them.
const (
	DefaultPortFactor = 4.0    // port:N@T → quarter bandwidth
	DefaultLockSpan   = 50_000 // lock:C@T → 2.5 ms holder stall
)

// Event is one fault: Kind fires against Target at virtual time At.
// Factor carries the slow-down multiplier for the *Slow kinds; Span
// the stall length for LockStall.
type Event struct {
	Kind   Kind
	Target int
	At     sim.Time
	Factor float64
	Span   sim.Duration
}

// String renders the event in the Parse grammar.
func (e Event) String() string {
	var kind string
	var factor, span string
	switch e.Kind {
	case CEFail:
		kind = "ce"
	case CESlow:
		kind = "ce"
		factor = fmt.Sprintf("x%g", e.Factor)
	case ModuleOffline:
		kind = "module"
	case ModuleSlow:
		kind = "module"
		factor = fmt.Sprintf("x%g", e.Factor)
	case PortSlow:
		kind = "port"
		factor = fmt.Sprintf("x%g", e.Factor)
	case LockStall:
		kind = "lock"
		span = fmt.Sprintf("+%d", int64(e.Span))
	case PageStorm:
		kind = "storm"
	default:
		kind = e.Kind.String()
	}
	return fmt.Sprintf("%s:%d%s@%d%s", kind, e.Target, factor, int64(e.At), span)
}

// Plan is an ordered set of fault events.
type Plan []Event

// String renders the plan in the Parse grammar (comma-separated).
func (p Plan) String() string {
	parts := make([]string, len(p))
	for i, e := range p {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Parse parses a comma-separated fault spec (see the package comment
// for the grammar).
func Parse(spec string) (Plan, error) {
	var plan Plan
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		ev, err := parseOne(item)
		if err != nil {
			return nil, fmt.Errorf("faults: bad spec %q: %w", item, err)
		}
		plan = append(plan, ev)
	}
	if len(plan) == 0 {
		return nil, fmt.Errorf("faults: empty spec %q", spec)
	}
	return plan, nil
}

func parseOne(item string) (Event, error) {
	var ev Event
	kindPart, rest, ok := strings.Cut(item, ":")
	if !ok {
		return ev, fmt.Errorf("missing ':' (want kind:target@time)")
	}
	body, timePart, ok := strings.Cut(rest, "@")
	if !ok {
		return ev, fmt.Errorf("missing '@time'")
	}
	// timePart = time [+ span]. Split on the last '+' so exponent
	// signs inside the time float stay untouched ("1e+6" is not a
	// span separator when no span follows a bare time... keep specs
	// to plain "1e6" exponents).
	var span sim.Duration
	if t2, spanPart, found := cutLast(timePart, '+'); found {
		s, err := strconv.ParseFloat(spanPart, 64)
		if err != nil || s <= 0 {
			return ev, fmt.Errorf("bad span %q", spanPart)
		}
		span = sim.Duration(s)
		timePart = t2
	}
	at, err := strconv.ParseFloat(timePart, 64)
	if err != nil || at < 0 {
		return ev, fmt.Errorf("bad time %q", timePart)
	}
	ev.At = sim.Time(at)

	// body = target [x factor].
	var factor float64
	if body2, facPart, found := cutLast(body, 'x'); found {
		f, err := strconv.ParseFloat(facPart, 64)
		if err != nil || f < 1 {
			return ev, fmt.Errorf("bad factor %q (want >= 1)", facPart)
		}
		factor = f
		body = body2
	}
	target, err := strconv.Atoi(body)
	if err != nil {
		return ev, fmt.Errorf("bad target %q", body)
	}
	ev.Target = target
	ev.Factor = factor
	ev.Span = span

	switch kindPart {
	case "ce":
		if factor > 0 {
			ev.Kind = CESlow
		} else {
			ev.Kind = CEFail
		}
	case "module":
		if factor > 0 {
			ev.Kind = ModuleSlow
		} else {
			ev.Kind = ModuleOffline
		}
	case "port":
		ev.Kind = PortSlow
		if ev.Factor == 0 {
			ev.Factor = DefaultPortFactor
		}
	case "lock":
		ev.Kind = LockStall
		if ev.Span == 0 {
			ev.Span = DefaultLockSpan
		}
	case "storm":
		ev.Kind = PageStorm
	default:
		return ev, fmt.Errorf("unknown kind %q (want ce, module, port, lock, storm)", kindPart)
	}
	return ev, nil
}

// cutLast splits s around the last occurrence of sep, so factors and
// spans written in float syntax never swallow a leading digit.
func cutLast(s string, sep byte) (before, after string, found bool) {
	i := strings.LastIndexByte(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}

// Validate checks every event's target against the configuration.
func (p Plan) Validate(cfg arch.Config) error {
	offline := 0
	for i, e := range p {
		var err error
		switch e.Kind {
		case CEFail, CESlow:
			if e.Target < 0 || e.Target >= cfg.CEs() {
				err = fmt.Errorf("CE %d out of range [0,%d)", e.Target, cfg.CEs())
			}
		case ModuleOffline, ModuleSlow:
			if e.Target < 0 || e.Target >= cfg.GMModules {
				err = fmt.Errorf("module %d out of range [0,%d)", e.Target, cfg.GMModules)
			}
			if e.Kind == ModuleOffline {
				if offline++; offline >= cfg.GMModules {
					err = fmt.Errorf("cannot offline all %d modules", cfg.GMModules)
				}
			}
		case PortSlow:
			if e.Target < 0 || e.Target >= cfg.GMModules {
				err = fmt.Errorf("port %d out of range [0,%d)", e.Target, cfg.GMModules)
			}
		case LockStall, PageStorm:
			if e.Target < -1 || e.Target >= cfg.Clusters {
				err = fmt.Errorf("cluster %d out of range [-1,%d)", e.Target, cfg.Clusters)
			}
		default:
			err = fmt.Errorf("unknown kind %d", e.Kind)
		}
		if err == nil {
			switch e.Kind {
			case CESlow, ModuleSlow, PortSlow:
				if e.Factor < 1 {
					err = fmt.Errorf("factor %g < 1", e.Factor)
				}
			case LockStall:
				if e.Span <= 0 {
					err = fmt.Errorf("span %d <= 0", e.Span)
				}
			}
		}
		if err != nil {
			return fmt.Errorf("faults: event %d (%s): %w", i, e, err)
		}
	}
	return nil
}

// Applied records one fault activation: what fired, when, and what the
// hardware/OS hook reported back.
type Applied struct {
	Event Event
	At    sim.Time
	Note  string
}

// Injector arms a Plan against a machine: each event is scheduled as a
// kernel event at its virtual time and dispatched to the matching
// hardware or OS hook when it fires. Activations are posted to the
// monitor (hpm.EvFaultInject) and recorded for the report.
type Injector struct {
	M   *cluster.Machine
	OS  *xylem.OS
	Mon *hpm.Monitor  // may be nil
	Obs *obs.Recorder // may be nil; receives fault activation spans

	// OnCEFail, when set, is called after a CE fail-stops so the
	// runtime can re-evaluate barriers and job quorums that counted
	// on the dead CE.
	OnCEFail func(*cluster.CE)

	applied []Applied
}

// Arm schedules the plan's events. Call before the application starts;
// the plan must already be validated.
func (inj *Injector) Arm(plan Plan) {
	for _, ev := range plan {
		ev := ev
		inj.M.Kernel.Schedule(ev.At, func() { inj.apply(ev) })
	}
}

func (inj *Injector) apply(ev Event) {
	note := ""
	switch ev.Kind {
	case CEFail:
		ce := inj.M.CE(ev.Target)
		ce.Fail()
		note = fmt.Sprintf("CE %d fail-stopped (%d live)", ev.Target, inj.M.LiveCEs())
		if inj.OnCEFail != nil {
			inj.OnCEFail(ce)
		}
	case CESlow:
		inj.M.CE(ev.Target).SetSlowFactor(ev.Factor)
		note = fmt.Sprintf("CE %d clock degraded %gx", ev.Target, ev.Factor)
	case ModuleOffline:
		if inj.M.GM.OfflineModule(ev.Target) {
			note = fmt.Sprintf("module %d offline (%d total)", ev.Target, inj.M.GM.OfflineModules())
		} else {
			note = fmt.Sprintf("module %d kept online (last module)", ev.Target)
		}
	case ModuleSlow:
		inj.M.GM.InflateModule(ev.Target, ev.Factor)
		note = fmt.Sprintf("module %d service time inflated %gx", ev.Target, ev.Factor)
	case PortSlow:
		inj.M.GM.Net().Forward.DegradePort(1, ev.Target, ev.Factor)
		note = fmt.Sprintf("fwd stage-1 port %d degraded %gx", ev.Target, ev.Factor)
	case LockStall:
		inj.OS.LockStall(ev.Target, ev.Span)
		which := fmt.Sprintf("cluster %d", ev.Target)
		if ev.Target < 0 {
			which = "global"
		}
		note = fmt.Sprintf("%s kernel lock stalled %d cycles", which, int64(ev.Span))
	case PageStorm:
		n := inj.OS.InvalidateMappings(ev.Target)
		note = fmt.Sprintf("paging storm dropped %d mappings", n)
	}
	inj.Mon.Post(hpm.EvFaultInject, ev.Target, int32(ev.Kind))
	now := inj.M.Kernel.Now()
	if ev.Kind == LockStall {
		// A lock stall has a known extent; render it as a span so the
		// trace shows the window every kernel entry spun through.
		inj.Obs.Span(obs.TrackMachine, ev.Kind.String(), obs.CatFault, now, now+ev.Span, int64(ev.Target))
	} else {
		inj.Obs.Instant(obs.TrackMachine, ev.Kind.String(), obs.CatFault, now, int64(ev.Target))
	}
	inj.applied = append(inj.applied, Applied{Event: ev, At: now, Note: note})
}

// Applied returns the activation log, in firing order.
func (inj *Injector) Applied() []Applied { return inj.applied }
