package replay

import (
	"repro/internal/faults"
	"repro/internal/sim"
)

// Shrink minimizes a failing scenario with delta debugging: the fault
// plan is reduced ddmin-style (drop event subsets, largest chunks
// first) and the surviving events are then simplified one knob at a
// time (times rounded to coarser grids, slow-down factors and stall
// spans snapped to canonical values). A candidate is kept only when
// failing still returns true for it, so the result reproduces the same
// failure with the fewest, plainest injections.
//
// failing must be deterministic (replayed scenarios are) and should
// return true when the candidate reproduces the original failure
// class. maxRuns bounds the number of failing invocations (<= 0 means
// a default of 200). Shrink returns the minimized scenario and the
// number of candidate runs spent; if the input itself does not fail,
// it is returned unchanged.
func Shrink(sc Scenario, failing func(Scenario) bool, maxRuns int) (Scenario, int) {
	if maxRuns <= 0 {
		maxRuns = 200
	}
	runs := 0
	test := func(cand Scenario) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		return failing(cand)
	}
	if !test(sc) {
		return sc, runs
	}
	sc.Plan = shrinkPlan(sc, test)
	sc.Plan = simplifyEvents(sc, test)
	return sc, runs
}

// shrinkPlan is the ddmin loop over plan events.
func shrinkPlan(sc Scenario, test func(Scenario) bool) faults.Plan {
	plan := sc.Plan
	chunk := (len(plan) + 1) / 2
	for chunk >= 1 && len(plan) > 1 {
		reduced := false
		for lo := 0; lo < len(plan); lo += chunk {
			hi := lo + chunk
			if hi > len(plan) {
				hi = len(plan)
			}
			// Try the complement: the plan without [lo, hi).
			cand := make(faults.Plan, 0, len(plan)-(hi-lo))
			cand = append(cand, plan[:lo]...)
			cand = append(cand, plan[hi:]...)
			if len(cand) == 0 {
				continue
			}
			trial := sc
			trial.Plan = cand
			if test(trial) {
				plan = cand
				reduced = true
				lo -= chunk // re-test the same offset against the shrunk plan
			}
		}
		if !reduced {
			chunk /= 2
		} else if chunk > len(plan) {
			chunk = len(plan)
		}
	}
	return plan
}

// simplifyEvents canonicalizes each surviving event's knobs while the
// failure keeps reproducing: times snap to coarser grids, factors to
// small integers, spans to the parser default.
func simplifyEvents(sc Scenario, test func(Scenario) bool) faults.Plan {
	plan := append(faults.Plan(nil), sc.Plan...)
	try := func(i int, ev faults.Event) bool {
		if ev == plan[i] {
			return false
		}
		cand := append(faults.Plan(nil), plan...)
		cand[i] = ev
		trial := sc
		trial.Plan = cand
		if test(trial) {
			plan = cand
			return true
		}
		return false
	}
	for i := range plan {
		for _, grid := range []sim.Time{100_000, 10_000, 1_000} {
			ev := plan[i]
			ev.At = ev.At / grid * grid
			try(i, ev)
		}
		if plan[i].Factor > 2 {
			ev := plan[i]
			ev.Factor = 2
			try(i, ev)
		}
		if plan[i].Span > 0 && plan[i].Span != faults.DefaultLockSpan {
			ev := plan[i]
			ev.Span = faults.DefaultLockSpan
			try(i, ev)
		}
	}
	return plan
}
