package replay

import (
	"repro/internal/ddmin"
	"repro/internal/faults"
	"repro/internal/sim"
)

// Shrink minimizes a failing scenario with delta debugging: the fault
// plan is reduced ddmin-style (drop event subsets, largest chunks
// first) and the surviving events are then simplified one knob at a
// time (times rounded to coarser grids, slow-down factors and stall
// spans snapped to canonical values). A candidate is kept only when
// failing still returns true for it, so the result reproduces the same
// failure with the fewest, plainest injections.
//
// failing must be deterministic (replayed scenarios are) and should
// return true when the candidate reproduces the original failure
// class. maxRuns bounds the number of failing invocations (<= 0 means
// a default of 200). Shrink returns the minimized scenario and the
// number of candidate runs spent; if the input itself does not fail,
// it is returned unchanged.
func Shrink(sc Scenario, failing func(Scenario) bool, maxRuns int) (Scenario, int) {
	if maxRuns <= 0 {
		maxRuns = 200
	}
	runs := 0
	test := func(cand Scenario) bool {
		if runs >= maxRuns {
			return false
		}
		runs++
		return failing(cand)
	}
	if !test(sc) {
		return sc, runs
	}
	sc.Plan = shrinkPlan(sc, test)
	sc.Plan = simplifyEvents(sc, test)
	return sc, runs
}

// shrinkPlan is the ddmin loop over plan events (internal/ddmin does
// the chunking; the closure reattaches each candidate to the
// scenario).
func shrinkPlan(sc Scenario, test func(Scenario) bool) faults.Plan {
	return faults.Plan(ddmin.Minimize(sc.Plan, func(cand []faults.Event) bool {
		trial := sc
		trial.Plan = cand
		return test(trial)
	}))
}

// simplifyEvents canonicalizes each surviving event's knobs while the
// failure keeps reproducing: times snap to coarser grids, factors to
// small integers, spans to the parser default.
func simplifyEvents(sc Scenario, test func(Scenario) bool) faults.Plan {
	plan := append(faults.Plan(nil), sc.Plan...)
	try := func(i int, ev faults.Event) bool {
		if ev == plan[i] {
			return false
		}
		cand := append(faults.Plan(nil), plan...)
		cand[i] = ev
		trial := sc
		trial.Plan = cand
		if test(trial) {
			plan = cand
			return true
		}
		return false
	}
	for i := range plan {
		for _, grid := range []sim.Time{100_000, 10_000, 1_000} {
			ev := plan[i]
			ev.At = ev.At / grid * grid
			try(i, ev)
		}
		if plan[i].Factor > 2 {
			ev := plan[i]
			ev.Factor = 2
			try(i, ev)
		}
		if plan[i].Span > 0 && plan[i].Span != faults.DefaultLockSpan {
			ev := plan[i]
			ev.Span = faults.DefaultLockSpan
			try(i, ev)
		}
	}
	return plan
}
