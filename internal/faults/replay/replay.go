// Package replay turns injected fault scenarios into serializable,
// replayable, shrinkable artifacts — the deterministic-record/replay
// discipline that keeps a once-in-a-hundred-runs schedule bug (like
// the fail-stop page-fault deadlock) from becoming folklore.
//
// A Scenario pins everything a fault run's outcome depends on: the
// application, the machine configuration, the timestep count, the
// kernel RNG seed, and the fault plan. Its canonical one-line text
// form
//
//	app=FLO52 config=8proc steps=1 seed=12345 plan=ce:1@76414 expect=ok
//
// round-trips through Parse/String, pastes into cedarsim -replay, and
// checks into a regression corpus (testdata/faultcorpus/) replayed by
// cedarfuzz and CI. Because the simulation kernel is deterministic in
// virtual time, replaying a scenario reproduces the original run bit
// for bit.
//
// The package holds the data model, the corpus loader, the schedule
// fuzzer (fuzz.go), and the delta-debugging shrinker (shrink.go); the
// runner lives in the cedar facade (cedar.ReplayErr), which this
// package deliberately does not import.
package replay

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faults"
)

// Expected outcomes a corpus entry can declare. The empty string means
// ExpectOK.
const (
	ExpectOK       = "ok"       // the run must complete without error
	ExpectDeadlock = "deadlock" // the run must stop with sim.ErrDeadlock
	ExpectError    = "error"    // the run must fail (any simulation error)
)

// Scenario is one recorded fault schedule: everything needed to re-run
// an injected-fault simulation bit-identically.
type Scenario struct {
	// App is the perfect-benchmark application name (e.g. "FLO52").
	App string
	// Config is the machine family member name (e.g. "8proc").
	Config string
	// Steps is the timestep override; 0 keeps the app default.
	Steps int
	// Seed is the simulation kernel's RNG seed; 0 means the runner's
	// deterministic app+config-derived seed. Recorded scenarios carry
	// the resolved value so they stay stable even if the derivation
	// changes.
	Seed int64
	// Plan is the fault schedule, in the faults.Parse grammar.
	Plan faults.Plan
	// Expect declares the required outcome when the scenario is a
	// corpus entry: ExpectOK (default), ExpectDeadlock, or ExpectError.
	Expect string
}

// String renders the scenario in its canonical one-line form: fixed
// field order, expect omitted when empty or "ok".
func (s Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "app=%s config=%s steps=%d seed=%d plan=%s",
		s.App, s.Config, s.Steps, s.Seed, s.Plan)
	if s.Expect != "" && s.Expect != ExpectOK {
		fmt.Fprintf(&b, " expect=%s", s.Expect)
	}
	return b.String()
}

// Parse parses a scenario line (any key=value order; app, config, and
// plan are required). The inverse of String.
func Parse(line string) (Scenario, error) {
	var s Scenario
	for _, field := range strings.Fields(strings.TrimSpace(line)) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return s, fmt.Errorf("replay: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "app":
			s.App = val
		case "config":
			s.Config = val
		case "steps":
			s.Steps, err = strconv.Atoi(val)
			if err == nil && s.Steps < 0 {
				err = fmt.Errorf("negative steps %d", s.Steps)
			}
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		case "plan":
			s.Plan, err = faults.Parse(val)
		case "expect":
			switch val {
			case ExpectOK, ExpectDeadlock, ExpectError:
				s.Expect = val
			default:
				err = fmt.Errorf("unknown expectation %q (want %s, %s, or %s)",
					val, ExpectOK, ExpectDeadlock, ExpectError)
			}
		default:
			err = fmt.Errorf("unknown key")
		}
		if err != nil {
			return s, fmt.Errorf("replay: field %q: %w", field, err)
		}
	}
	switch {
	case s.App == "":
		return s, fmt.Errorf("replay: scenario %q missing app=", line)
	case s.Config == "":
		return s, fmt.Errorf("replay: scenario %q missing config=", line)
	case len(s.Plan) == 0:
		return s, fmt.Errorf("replay: scenario %q missing plan=", line)
	}
	return s, nil
}

// Expectation returns the scenario's declared outcome, defaulting to
// ExpectOK.
func (s Scenario) Expectation() string {
	if s.Expect == "" {
		return ExpectOK
	}
	return s.Expect
}

// CorpusEntry is one scenario loaded from a corpus file, with its
// provenance for failure messages.
type CorpusEntry struct {
	Scenario Scenario
	File     string // path of the corpus file
	Line     int    // 1-based line number within the file
}

// CorpusExt is the file extension corpus files use.
const CorpusExt = ".scenario"

// LoadCorpus reads every *.scenario file under dir (sorted by name for
// deterministic ordering). Each file holds one scenario per line;
// blank lines and #-comments are skipped. A missing directory is an
// empty corpus, not an error — a fresh checkout fuzzes before it
// records.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*"+CorpusExt))
	if err != nil {
		return nil, fmt.Errorf("replay: corpus %s: %w", dir, err)
	}
	sort.Strings(names)
	var entries []CorpusEntry
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("replay: corpus %s: %w", dir, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			sc, err := Parse(line)
			if err != nil {
				return nil, fmt.Errorf("replay: %s:%d: %w", name, i+1, err)
			}
			entries = append(entries, CorpusEntry{Scenario: sc, File: name, Line: i + 1})
		}
	}
	return entries, nil
}

// AppendCorpus appends a scenario (with an optional #-comment line
// above it) to a corpus file, creating the file and directory as
// needed. Used by cedarfuzz to check in freshly found regressions.
func AppendCorpus(path string, sc Scenario, comment string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("replay: %w", err)
	}
	var b strings.Builder
	if comment != "" {
		for _, l := range strings.Split(comment, "\n") {
			fmt.Fprintf(&b, "# %s\n", l)
		}
	}
	fmt.Fprintf(&b, "%s\n", sc)
	_, werr := f.WriteString(b.String())
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("replay: writing %s: %w", path, werr)
	}
	return nil
}
