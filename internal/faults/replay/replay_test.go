package replay

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

func TestScenarioRoundTrip(t *testing.T) {
	lines := []string{
		"app=FLO52 config=8proc steps=1 seed=3327910339796038169 plan=ce:4x1.25@47085,ce:1@76414,module:3x2@23648",
		"app=FLO52 config=16proc steps=2 seed=-7 plan=ce:1@76414 expect=deadlock",
		"app=TRFD config=8proc steps=0 seed=0 plan=lock:-1@50000+50000,storm:0@100000 expect=error",
	}
	for _, line := range lines {
		sc, err := Parse(line)
		if err != nil {
			t.Fatalf("Parse(%q): %v", line, err)
		}
		if got := sc.String(); got != line {
			t.Errorf("round trip changed the line:\n in: %s\nout: %s", line, got)
		}
		again, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", sc, err)
		}
		if again.String() != sc.String() {
			t.Errorf("second round trip unstable: %s vs %s", again, sc)
		}
	}
}

func TestParseKeyOrderAndDefaults(t *testing.T) {
	sc, err := Parse("plan=ce:1@500 config=8proc app=FLO52")
	if err != nil {
		t.Fatal(err)
	}
	if sc.App != "FLO52" || sc.Config != "8proc" || sc.Steps != 0 || sc.Seed != 0 {
		t.Fatalf("parsed fields wrong: %+v", sc)
	}
	if sc.Expectation() != ExpectOK {
		t.Fatalf("default expectation = %q, want %q", sc.Expectation(), ExpectOK)
	}
	// expect=ok is valid input but canonically omitted.
	sc2, err := Parse("app=FLO52 config=8proc plan=ce:1@500 expect=ok")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sc2.String(), "expect=") {
		t.Fatalf("expect=ok not omitted from canonical form: %s", sc2)
	}
}

func TestParseErrors(t *testing.T) {
	for _, line := range []string{
		"config=8proc plan=ce:1@500",          // missing app
		"app=FLO52 plan=ce:1@500",             // missing config
		"app=FLO52 config=8proc",              // missing plan
		"app=FLO52 config=8proc plan=bogus",   // bad plan grammar
		"app=FLO52 config=8proc plan=ce:1@500 expect=maybe", // bad expect
		"app=FLO52 config=8proc plan=ce:1@500 steps=-1",     // negative steps
		"app=FLO52 config=8proc plan=ce:1@500 color=red",    // unknown key
		"app=FLO52 config=8proc plan=ce:1@500 naked",        // not key=value
	} {
		if _, err := Parse(line); err == nil {
			t.Errorf("Parse(%q) accepted a bad line", line)
		}
	}
}

func TestCorpusLoadAndAppend(t *testing.T) {
	dir := t.TempDir()

	// Missing directory: empty corpus, no error.
	entries, err := LoadCorpus(filepath.Join(dir, "nonexistent"))
	if err != nil || len(entries) != 0 {
		t.Fatalf("missing dir: entries=%d err=%v, want empty and nil", len(entries), err)
	}

	file := filepath.Join(dir, "b-second.scenario")
	if err := os.WriteFile(file, []byte(strings.Join([]string{
		"# a comment",
		"",
		"app=FLO52 config=8proc steps=1 seed=9 plan=ce:1@500",
		"  # indented comment",
		"app=FLO52 config=8proc steps=1 seed=9 plan=ce:2@500 expect=deadlock",
		"",
	}, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	sc, err := Parse("app=TRFD config=16proc steps=1 seed=4 plan=module:0@900")
	if err != nil {
		t.Fatal(err)
	}
	if err := AppendCorpus(filepath.Join(dir, "a-first.scenario"), sc, "found by fuzzing\nkept for regression"); err != nil {
		t.Fatal(err)
	}
	// A stray non-corpus file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("app=BAD"), 0o644); err != nil {
		t.Fatal(err)
	}

	entries, err = LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("loaded %d entries, want 3", len(entries))
	}
	// Files sort by name: a-first before b-second.
	if entries[0].Scenario.App != "TRFD" {
		t.Fatalf("corpus order wrong: first entry %+v", entries[0].Scenario)
	}
	if entries[1].Line != 3 || entries[2].Line != 5 {
		t.Fatalf("line provenance wrong: %d, %d (want 3, 5)", entries[1].Line, entries[2].Line)
	}
	if entries[2].Scenario.Expectation() != ExpectDeadlock {
		t.Fatalf("expect not loaded: %+v", entries[2].Scenario)
	}

	// A bad line fails loudly with its provenance.
	if err := os.WriteFile(filepath.Join(dir, "c-bad.scenario"), []byte("app=X\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil || !strings.Contains(err.Error(), "c-bad.scenario:1") {
		t.Fatalf("bad corpus line not reported with provenance: %v", err)
	}
}

// TestShrinkDDMin drives the shrinker with a synthetic predicate: the
// failure reproduces iff the plan still kills CE 1 inside the window
// [70000, 80000]. Everything else must be stripped and the kill time
// snapped to the coarsest grid that stays inside the window.
func TestShrinkDDMin(t *testing.T) {
	sc, err := Parse("app=FLO52 config=8proc steps=1 seed=1 " +
		"plan=ce:4x3.75@47085,module:3x4@23648,ce:1@76414,lock:-1@30000+12345,ce:2@90000")
	if err != nil {
		t.Fatal(err)
	}
	runs := 0
	failing := func(cand Scenario) bool {
		runs++
		for _, ev := range cand.Plan {
			if ev.Kind == faults.CEFail && ev.Target == 1 &&
				ev.At >= 70_000 && ev.At <= 80_000 {
				return true
			}
		}
		return false
	}
	shrunk, spent := Shrink(sc, failing, 0)
	if len(shrunk.Plan) != 1 {
		t.Fatalf("shrunk to %d events (%s), want 1", len(shrunk.Plan), shrunk.Plan)
	}
	ev := shrunk.Plan[0]
	if ev.Kind != faults.CEFail || ev.Target != 1 {
		t.Fatalf("shrunk to wrong event: %s", ev)
	}
	if ev.At != 70_000 {
		t.Fatalf("kill time %d not simplified to 70000", ev.At)
	}
	if spent != runs || spent > 200 {
		t.Fatalf("run accounting wrong: spent=%d, predicate calls=%d", spent, runs)
	}

	// A scenario that does not fail comes back unchanged.
	ok, _ := Parse("app=FLO52 config=8proc steps=1 seed=1 plan=ce:5@999")
	same, _ := Shrink(ok, failing, 50)
	if same.String() != ok.String() {
		t.Fatalf("non-failing scenario was modified: %s", same)
	}
}

func TestShrinkRespectsMaxRuns(t *testing.T) {
	sc, err := Parse("app=FLO52 config=8proc steps=1 seed=1 plan=ce:1@100,ce:2@200,ce:3@300,ce:4@400")
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	_, spent := Shrink(sc, func(Scenario) bool { calls++; return true }, 5)
	if calls > 5 || spent > 5 {
		t.Fatalf("maxRuns=5 exceeded: calls=%d spent=%d", calls, spent)
	}
}

func TestMergeWindows(t *testing.T) {
	got := MergeWindows([]Window{
		{Start: 500, End: 600},
		{Start: 100, End: 200},
		{Start: 150, End: 300}, // overlaps the previous
		{Start: 300, End: 350}, // touches: still one window
	})
	want := []Window{{Start: 100, End: 350}, {Start: 500, End: 600}}
	if len(got) != len(want) {
		t.Fatalf("merged to %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged to %v, want %v", got, want)
		}
	}
	if MergeWindows(nil) != nil {
		t.Fatal("empty input must merge to nil")
	}
}

func TestSweepTimesDeterministicAndBounded(t *testing.T) {
	base, err := Parse("app=FLO52 config=8proc steps=1 seed=9 plan=port:0x4@1000")
	if err != nil {
		t.Fatal(err)
	}
	windows := []Window{{Start: 68_740, End: 78_403}, {Start: 3_000, End: 13_200}}
	ces := []int{1, 2, 3, 4, 5, 6, 7}

	a := SweepTimes(base, windows, ces, 16, 42, 25)
	b := SweepTimes(base, windows, ces, 16, 42, 25)
	if len(a) != 25 || len(b) != 25 {
		t.Fatalf("sweep sizes %d, %d, want 25", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("sweep not deterministic at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
	differs := false
	for i := range a {
		if a[i].String() != SweepTimes(base, windows, ces, 16, 43, 25)[i].String() {
			differs = true
			break
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical sweeps")
	}

	for i, sc := range a {
		if sc.App != base.App || sc.Config != base.Config || sc.Seed != base.Seed {
			t.Fatalf("scenario %d lost base identity: %s", i, sc)
		}
		if len(sc.Plan) == 0 || sc.Plan[0] != base.Plan[0] {
			t.Fatalf("scenario %d dropped the base plan prefix: %s", i, sc)
		}
		kills := 0
		for _, ev := range sc.Plan {
			switch ev.Kind {
			case faults.CEFail:
				kills++
				found := false
				for _, c := range ces {
					if ev.Target == c {
						found = true
					}
				}
				if !found {
					t.Fatalf("scenario %d kills ineligible CE %d", i, ev.Target)
				}
				// Kill times stay near the windows (jitter <= 64 either side).
				near := false
				for _, w := range windows {
					if ev.At >= saturSub(w.Start, 64) && ev.At <= w.End+64 {
						near = true
					}
				}
				if !near {
					t.Fatalf("scenario %d kill at %d lands outside every window", i, ev.At)
				}
			case faults.CESlow:
				if ev.Factor < 1.25 {
					t.Fatalf("scenario %d slow factor %g < 1.25", i, ev.Factor)
				}
			case faults.ModuleSlow:
				if ev.Target < 0 || ev.Target >= 16 {
					t.Fatalf("scenario %d module %d out of range", i, ev.Target)
				}
			}
		}
		if kills == 0 {
			t.Fatalf("scenario %d has no fail-stop: %s", i, sc)
		}
	}

	if got := SweepTimes(base, nil, ces, 16, 1, 5); got != nil {
		t.Fatal("no windows must yield no scenarios")
	}
	if got := SweepTimes(base, windows, nil, 16, 1, 5); got != nil {
		t.Fatal("no eligible CEs must yield no scenarios")
	}
}

func saturSub(t sim.Time, d sim.Time) sim.Time {
	if d > t {
		return 0
	}
	return t - d
}
