package replay

import (
	"math/rand"

	"repro/internal/faults"
	"repro/internal/sim"
)

// Window is an interval of virtual time in which page-fault services
// were observed on a healthy run. The schedule fuzzer aims fail-stops
// at these windows because that is where hand-off bugs live: an owner
// dying inside a service, a joiner dying parked on the service's cond.
type Window struct {
	Start, End sim.Time
}

// MergeWindows sorts spans and merges any that overlap or touch,
// returning the disjoint fault-service windows of a run. Input order
// does not matter; the result is ascending.
func MergeWindows(spans []Window) []Window {
	if len(spans) == 0 {
		return nil
	}
	ws := append([]Window(nil), spans...)
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Start < ws[j-1].Start; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
	out := ws[:1]
	for _, w := range ws[1:] {
		last := &out[len(out)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// SweepTimes generates n fault scenarios whose fail-stop times sweep
// the given page-fault windows: edges (just before the service, at its
// start, mid-service, at and just past its end) and uniform points
// inside, optionally preceded by a CE slow-down or memory-module
// inflation that stretches the service and widens the race window —
// the shape of the schedule that originally exposed the fail-stop
// page-fault deadlock. ces lists the CE indices eligible to be killed
// (lead CE 0 is the caller's choice to include). The sweep is
// deterministic in seed; base supplies app/config/steps/seed and any
// always-on plan prefix.
func SweepTimes(base Scenario, windows []Window, ces []int, gmModules int, seed int64, n int) []Scenario {
	if len(windows) == 0 || len(ces) == 0 || n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Scenario, 0, n)
	for i := 0; i < n; i++ {
		w := windows[rng.Intn(len(windows))]
		at := sweepPoint(rng, w)
		plan := append(faults.Plan(nil), base.Plan...)
		// Half the scenarios stretch the machine first, so services run
		// long and the kill lands inside windows the healthy timeline
		// does not have.
		if rng.Intn(2) == 0 {
			plan = append(plan, faults.Event{
				Kind:   faults.CESlow,
				Target: ces[rng.Intn(len(ces))],
				At:     earlier(w.Start, rng, 40_000),
				Factor: 1.25 + float64(rng.Intn(4))*0.75,
			})
		}
		if gmModules > 0 && rng.Intn(2) == 0 {
			plan = append(plan, faults.Event{
				Kind:   faults.ModuleSlow,
				Target: rng.Intn(gmModules),
				At:     earlier(w.Start, rng, 60_000),
				Factor: 2 + float64(rng.Intn(3)),
			})
		}
		plan = append(plan, faults.Event{
			Kind:   faults.CEFail,
			Target: ces[rng.Intn(len(ces))],
			At:     at,
		})
		// Occasionally a second kill in another window: compound
		// hand-off failures (a retaking joiner dying too).
		if rng.Intn(4) == 0 {
			w2 := windows[rng.Intn(len(windows))]
			plan = append(plan, faults.Event{
				Kind:   faults.CEFail,
				Target: ces[rng.Intn(len(ces))],
				At:     sweepPoint(rng, w2),
			})
		}
		sc := base
		sc.Plan = plan
		out = append(out, sc)
	}
	return out
}

// sweepPoint picks a fail time for the window: its edges, its middle,
// or a uniform point inside, with a little jitter just outside either
// end — exactly the off-by-a-few-cycles schedules a wall-clock-seeded
// test only finds by luck.
func sweepPoint(rng *rand.Rand, w Window) sim.Time {
	span := w.End - w.Start
	if span < 1 {
		span = 1
	}
	switch rng.Intn(8) {
	case 0:
		return earlier(w.Start, rng, 64)
	case 1:
		return w.Start
	case 2:
		return w.Start + span/2
	case 3:
		return w.End
	case 4:
		return w.End + sim.Time(rng.Intn(64))
	default:
		return w.Start + sim.Time(rng.Int63n(int64(span)))
	}
}

// earlier returns a time up to slack cycles before t, never negative.
func earlier(t sim.Time, rng *rand.Rand, slack int64) sim.Time {
	d := sim.Time(rng.Int63n(slack + 1))
	if d > t {
		return 0
	}
	return t - d
}
