package cedar

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/perfect"
)

func TestSimulateDeterministic(t *testing.T) {
	opts := Options{Steps: 2}
	a := Simulate(perfect.FLO52(), arch.Cedar16, opts)
	b := Simulate(perfect.FLO52(), arch.Cedar16, opts)
	if a.CT != b.CT {
		t.Fatalf("CTs differ: %d vs %d", a.CT, b.CT)
	}
	if a.MachineConcurrency() != b.MachineConcurrency() {
		t.Fatal("concurrency differs between identical runs")
	}
}

func TestSimulateSeedChangesRun(t *testing.T) {
	a := Simulate(perfect.OCEAN(), arch.Cedar8, Options{Steps: 2, Seed: 1})
	b := Simulate(perfect.OCEAN(), arch.Cedar8, Options{Steps: 2, Seed: 2})
	if a.CT == b.CT {
		t.Fatal("different seeds produced identical completion times (suspicious)")
	}
}

func TestSimulateRunExposesInternals(t *testing.T) {
	run := SimulateRun(perfect.ADM(), arch.Cedar8, Options{Steps: 1, TraceCapacity: 1 << 16})
	if run.Machine == nil || run.OS == nil || run.RT == nil {
		t.Fatal("internals missing")
	}
	if run.Monitor == nil || len(run.Monitor.Trace()) == 0 {
		t.Fatal("monitor armed but no trace")
	}
	if run.Result.GM.Accesses == 0 {
		t.Fatal("no global memory traffic recorded")
	}
}

func TestSweepNormalizesToPaperCT1(t *testing.T) {
	s := Sweep(perfect.ADM(), Options{Steps: 2})
	base := s.Base()
	if base == nil {
		t.Fatal("no 1-processor result")
	}
	got := base.CTSeconds()
	if want := perfect.PaperCT1("ADM"); got < want*0.999 || got > want*1.001 {
		t.Fatalf("normalized CT1 = %v, want %v", got, want)
	}
	// Every result in the sweep shares the scale.
	for _, r := range s.Results {
		if r.Scale != base.Scale {
			t.Fatal("scale not propagated")
		}
	}
}

func TestAccountsConserveWithinCT(t *testing.T) {
	r := Simulate(perfect.MDG(), arch.Cedar32, Options{Steps: 1})
	for _, a := range r.Accounts {
		if a.Total() > r.CT {
			t.Fatalf("CE %d accounted %d > CT %d", a.CE(), a.Total(), r.CT)
		}
	}
}

// TestPaperQualitativeResults is the headline integration test: the
// paper's qualitative findings must hold in the model at full
// calibration (default steps).
func TestPaperQualitativeResults(t *testing.T) {
	if testing.Short() {
		t.Skip("full-calibration sweep in -short mode")
	}
	opts := Options{}
	sweeps := map[string]*core.Sweep{}
	for _, app := range perfect.Apps() {
		sweeps[app.Name] = Sweep(app, opts)
	}

	s32 := func(app string) float64 {
		s := sweeps[app]
		return s.Results[32].Speedup(s.Base())
	}

	// (1) Table 1: MDG obtains nearly linear speedups; ADM flattens
	// between 16 and 32 processors; FLO52 scales worst of the
	// sdoall apps.
	if s32("MDG") < 20 {
		t.Errorf("MDG 32p speedup %.1f, want near-linear (paper: 24.4)", s32("MDG"))
	}
	adm := sweeps["ADM"]
	admGrowth := adm.Results[32].Speedup(adm.Base()) / adm.Results[16].Speedup(adm.Base())
	if admGrowth > 1.25 {
		t.Errorf("ADM did not flatten 16p->32p: growth factor %.2f (paper: 1.04)", admGrowth)
	}
	if s32("FLO52") > s32("ARC2D") || s32("FLO52") > s32("MDG") {
		t.Error("FLO52 should scale worse than ARC2D and MDG")
	}

	// (2) Speedups are lower than average concurrency (overheads eat
	// part of the active processors' time).
	for app, s := range sweeps {
		r := s.Results[32]
		if sp := r.Speedup(s.Base()); sp > r.MachineConcurrency() {
			t.Errorf("%s: speedup %.1f exceeds concurrency %.1f", app, sp, r.MachineConcurrency())
		}
	}

	// (3) Section 5: OS overhead grows with processor count and lands
	// in 5-21%% of CT on the 4-cluster machine; kernel lock spin is
	// negligible (< 1%%).
	for app, s := range sweeps {
		os1 := s.Results[1].OSShare()
		os32 := s.Results[32].OSShare()
		if os32 <= os1 {
			t.Errorf("%s: OS share did not grow with scaling (%.3f -> %.3f)", app, os1, os32)
		}
		if os32 < 0.03 || os32 > 0.25 {
			t.Errorf("%s: 32p OS share %.1f%% outside the paper's 5-21%% band (with slack)",
				app, os32*100)
		}
		var spin, total float64
		for _, a := range s.Results[32].Accounts {
			spin += float64(a.Get(metrics.CatOSSpin))
			total += float64(s.Results[32].CT)
		}
		if spin/total > 0.01 {
			t.Errorf("%s: kernel lock spin %.2f%% not negligible", app, spin/total*100)
		}
	}

	// (4) Section 6: parallelization overheads on the 4-cluster Cedar
	// are substantial (paper: 10-25%% main task, 15-44%% helpers), and
	// helpers carry more than the main task.
	for app, s := range sweeps {
		r := s.Results[32]
		main := r.Task(0).OverheadFraction()
		helper := r.Task(1).OverheadFraction()
		if main < 0.02 || main > 0.45 {
			t.Errorf("%s: main task overhead %.1f%% outside a plausible band", app, main*100)
		}
		if helper <= main {
			t.Errorf("%s: helper overhead %.1f%% not above main %.1f%%",
				app, helper*100, main*100)
		}
	}

	// (5) Section 6: the xdoall distribution overhead exceeds the
	// sdoall one (ADM vs FLO52 pick shares at 32p).
	admPick := sweeps["ADM"].Results[32].Task(1).Pick
	floPick := sweeps["FLO52"].Results[32].Task(1).Pick
	if admPick <= floPick {
		t.Errorf("xdoall pick share %.2f%% not above sdoall pick share %.2f%%",
			admPick*100, floPick*100)
	}

	// (6) Section 7: contention overhead grows with processors for
	// every app and is substantial at 32p; FLO52 has the highest.
	for app, s := range sweeps {
		base := s.Base()
		ov4, _ := core.ContentionOverhead(base, s.Results[4])
		ov32, _ := core.ContentionOverhead(base, s.Results[32])
		if ov32.OvCont <= ov4.OvCont {
			t.Errorf("%s: Ov_cont did not grow: %.1f -> %.1f", app, ov4.OvCont, ov32.OvCont)
		}
		if ov32.OvCont < 2 {
			t.Errorf("%s: Ov_cont %.1f%% at 32p not substantial", app, ov32.OvCont)
		}
	}
	flo32, _ := core.ContentionOverhead(sweeps["FLO52"].Base(), sweeps["FLO52"].Results[32])
	for _, app := range []string{"ARC2D", "MDG", "OCEAN", "ADM"} {
		other, _ := core.ContentionOverhead(sweeps[app].Base(), sweeps[app].Results[32])
		if other.OvCont > flo32.OvCont {
			t.Errorf("FLO52 should have the highest 32p contention; %s has %.1f vs %.1f",
				app, other.OvCont, flo32.OvCont)
		}
	}

	// (7) Conclusion: overheads together are a large share of CT on
	// the 4-cluster machine ("as much as 30-50%").
	for app, s := range sweeps {
		total := core.TotalOverheadShare(s.Base(), s.Results[32])
		if total < 0.15 || total > 0.75 {
			t.Errorf("%s: total overhead share %.1f%% implausible vs paper's 30-50%%",
				app, total*100)
		}
	}
}

func TestSpeedupShapeMatchesPaperWithin35Percent(t *testing.T) {
	if testing.Short() {
		t.Skip("full-calibration sweep in -short mode")
	}
	for _, app := range perfect.Apps() {
		s := Sweep(app, Options{})
		paper := perfect.PaperTable1[app.Name]
		for _, p := range []int{4, 8, 16, 32} {
			got := s.Results[p].Speedup(s.Base())
			want := paper.Speedup[p]
			if got < want*0.65 || got > want*1.35 {
				t.Errorf("%s %dp: speedup %.2f vs paper %.2f (outside ±35%%)",
					app.Name, p, got, want)
			}
		}
	}
}

func TestClusteringBeatsFlatMachineOnFineGrain(t *testing.T) {
	// Section 6's "was clustering a good idea?" — yes, in the regime
	// the paper argues from: frequent barriers on small loops, where a
	// 32-task busy-wait barrier through global memory both costs more
	// and creates a hot spot. (On coarse-grained loops the flat
	// machine's global self-scheduling can win on load balance; see
	// BenchmarkAblation_Clustering for both regimes.)
	app := perfect.FineGrained()
	clustered := Simulate(app, arch.Cedar32, Options{})
	flat := Simulate(app, arch.Unclustered32, Options{})
	if flat.CT <= clustered.CT {
		t.Fatalf("flat machine CT %d not worse than clustered %d on fine-grained loops",
			flat.CT, clustered.CT)
	}
}

// TestTable3ShapeWithinTolerance checks the parallel-loop-concurrency
// values against the paper cell by cell with a generous band — the
// quantity is the paper's Table 3 and the model should land near it
// everywhere, not just preserve orderings.
func TestTable3ShapeWithinTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-calibration sweep in -short mode")
	}
	for _, app := range perfect.Apps() {
		s := Sweep(app, Options{})
		for _, p := range []int{4, 8, 16, 32} {
			want := perfect.PaperTable3[app.Name][p]
			got := s.Results[p].ParallelLoopConcurrency()
			for c := range want {
				if diff := got[c] - want[c]; diff > 1.6 || diff < -1.6 {
					t.Errorf("%s %dp cluster %d: par_concurr %.2f vs paper %.2f",
						app.Name, p, c, got[c], want[c])
				}
			}
		}
	}
}

// TestTable4GrowthAndBand checks that each app's contention overhead
// at 32 processors lands within a factor-of-two band of the paper's
// value and that the paper's headline range (8-21% at 32p, stretched
// for model variance) covers the model.
func TestTable4GrowthAndBand(t *testing.T) {
	if testing.Short() {
		t.Skip("full-calibration sweep in -short mode")
	}
	for _, app := range perfect.Apps() {
		s := Sweep(app, Options{})
		paper := perfect.PaperTable4[app.Name].OvCont[32]
		cont, err := core.ContentionOverhead(s.Base(), s.Results[32])
		if err != nil {
			t.Fatal(err)
		}
		if cont.OvCont < paper*0.45 || cont.OvCont > paper*2.2 {
			t.Errorf("%s: 32p Ov_cont %.1f%% vs paper %.1f%% (outside factor-2 band)",
				app.Name, cont.OvCont, paper)
		}
	}
}
