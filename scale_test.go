package cedar

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/perfect"
)

// TestScaledConfigsSimulate is the scaled-machine smoke test: every
// member of the scaled family — including the three-stage Deep64 —
// runs an application to completion, keeps every CE accounted for, and
// generates global memory traffic through the generalized network.
func TestScaledConfigsSimulate(t *testing.T) {
	for _, cfg := range arch.ScaledConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			res := Simulate(perfect.FLO52(), cfg, Options{Steps: 1})
			if res.CT <= 0 {
				t.Fatal("no completion time")
			}
			if len(res.Accounts) != cfg.CEs() {
				t.Fatalf("%d CE accounts, want %d", len(res.Accounts), cfg.CEs())
			}
			if res.GM.Accesses == 0 {
				t.Fatal("no global memory traffic")
			}
			if c := res.MachineConcurrency(); c <= 1 || c > float64(cfg.CEs()) {
				t.Fatalf("machine concurrency %v outside (1, %d]", c, cfg.CEs())
			}
		})
	}
}

// TestScaled1024Smoke is the thousand-processor gate: the Scaled1024
// member builds, a short run completes inside the CI time budget, and
// the conservation invariants hold — no CE accounts more time than the
// completion time, and the memory subsystem's contention accounting
// never goes negative (stall >= ideal, both nonnegative). It pins that
// the struct-of-arrays machine state and three-stage 32x32 routing
// stay consistent at a scale the golden tables do not cover.
func TestScaled1024Smoke(t *testing.T) {
	cfg := arch.Scaled1024
	res := Simulate(perfect.FLO52(), cfg, Options{Steps: 1})
	if res.CT <= 0 {
		t.Fatal("no completion time")
	}
	if len(res.Accounts) != 1024 {
		t.Fatalf("%d CE accounts, want 1024", len(res.Accounts))
	}
	for _, a := range res.Accounts {
		if a.Total() > res.CT {
			t.Fatalf("CE %d accounted %d cycles > CT %d", a.CE(), a.Total(), res.CT)
		}
	}
	if res.GM.Accesses == 0 {
		t.Fatal("no global memory traffic")
	}
	if res.GM.IdealTotal < 0 || res.GM.StallTotal < res.GM.IdealTotal {
		t.Fatalf("memory time not conserved: stall %d < ideal %d",
			res.GM.StallTotal, res.GM.IdealTotal)
	}
	if c := res.MachineConcurrency(); c <= 1 || c > float64(cfg.CEs()) {
		t.Fatalf("machine concurrency %v outside (1, %d]", c, cfg.CEs())
	}
}

// TestSweepConfigsContention runs a mini scaling study (32 -> 64 CEs)
// and checks the Section-7 contention estimator works against the
// shared 1-processor base on a machine the paper never built.
func TestSweepConfigsContention(t *testing.T) {
	app := perfect.OCEAN()
	s := SweepConfigs(app, []arch.Config{arch.Cedar1, arch.Cedar32, arch.Scaled64}, Options{Steps: 2})
	base := s.Base()
	if base == nil {
		t.Fatal("no 1-processor result")
	}
	r64 := s.Results[64]
	if r64 == nil {
		t.Fatal("no 64-CE result")
	}
	if sp := r64.Speedup(base); sp <= 1 {
		t.Fatalf("64-CE speedup %v <= 1", sp)
	}
	cont, err := core.ContentionOverhead(base, r64)
	if err != nil {
		t.Fatal(err)
	}
	if cont.OvCont < 0 || cont.OvCont > 100 {
		t.Fatalf("Ov_cont %v%% outside [0, 100]", cont.OvCont)
	}
}

// TestWeakScalingGrowsWork checks the weak-scaling transform: the
// scaled problem carries factor times the parallel iterations and
// footprint, leaves serial sections alone, and still validates.
func TestWeakScalingGrowsWork(t *testing.T) {
	app := perfect.FLO52()
	scaled := app.Scaled(4)
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	if scaled.Name != app.Name {
		t.Fatalf("scaling renamed the app to %q", scaled.Name)
	}
	if scaled.DataWords != 4*app.DataWords {
		t.Fatalf("footprint %d, want %d", scaled.DataWords, 4*app.DataWords)
	}
	if got, want := scaled.TotalIterations(), 4*app.TotalIterations(); got != want {
		t.Fatalf("iterations %d, want %d", got, want)
	}
	for i, p := range scaled.Phases {
		if p.Kind == perfect.PhaseSerial && p.Work != app.Phases[i].Work {
			t.Fatalf("serial phase %d work changed", i)
		}
	}
	// The original is untouched (value semantics).
	if app.TotalIterations() != perfect.FLO52().TotalIterations() {
		t.Fatal("Scaled mutated the receiver")
	}
	// Factors <= 1 are identity; 32 CEs and below never scale.
	if perfect.ScaleFactorFor(32) != 1 || perfect.ScaleFactorFor(256) != 8 {
		t.Fatalf("ScaleFactorFor wrong: %d, %d",
			perfect.ScaleFactorFor(32), perfect.ScaleFactorFor(256))
	}
}
