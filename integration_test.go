package cedar

// Cross-module integration tests: invariants that tie the hardware,
// OS, runtime, monitors, and analysis together. These are the checks
// that keep the reproduction honest — the same quantity measured two
// independent ways must agree.

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/hpm"
	"repro/internal/metrics"
	"repro/internal/perfect"
	"repro/internal/sim"
)

// TestTraceAgreesWithAccounts derives the main task's barrier wait and
// the helper tasks' wait-for-work time from the cedarhpm event trace
// (the paper's method) and compares against the time accounts (the
// model's ground truth). They must match exactly: the trace brackets
// the same virtual-time intervals the accounts charge.
func TestTraceAgreesWithAccounts(t *testing.T) {
	run := SimulateRun(perfect.FLO52(), arch.Cedar32, Options{
		Steps:         2,
		TraceCapacity: 1 << 22,
	})
	if run.Monitor.Dropped() > 0 {
		t.Fatalf("trace buffer overflowed (%d dropped); grow TraceCapacity", run.Monitor.Dropped())
	}
	trace := run.Monitor.Trace()
	res := run.Result

	barrier := hpm.PairDurations(trace, hpm.EvBarrierEnter, hpm.EvBarrierExit)
	mainLead := 0
	acct := res.Accounts[mainLead].Get(metrics.CatBarrierWait)
	// The trace interval includes the final barrier-count read (a GM
	// access charged to barrier wait too), so trace >= account is the
	// exact relation; they must agree within that access's latency per
	// barrier.
	slack := sim.Duration(run.RT.Statistics().Barriers) * 200
	if d := barrier[mainLead] - acct; d < 0 || d > slack {
		t.Errorf("main barrier wait: trace %d vs account %d (slack %d)",
			barrier[mainLead], acct, slack)
	}

	wait := hpm.PairDurations(trace, hpm.EvWaitStart, hpm.EvWaitEnd)
	for c := 1; c < 4; c++ {
		lead := c * 8
		acct := res.Accounts[lead].Get(metrics.CatHelperWait)
		got := wait[lead]
		// Wait intervals bracket the cond wait exactly; the final wait
		// (shutdown) has a start with no end, which PairDurations
		// drops, so trace <= account.
		if got > acct {
			t.Errorf("helper %d wait: trace %d > account %d", c, got, acct)
		}
		if acct > 0 && float64(got) < 0.8*float64(acct) {
			t.Errorf("helper %d wait: trace %d is < 80%% of account %d", c, got, acct)
		}
	}
}

// TestIterationEventsMatchWorkload counts iteration start/end events
// in the trace against the workload's arithmetic.
func TestIterationEventsMatchWorkload(t *testing.T) {
	app := perfect.ADM().WithSteps(1)
	run := SimulateRun(app, arch.Cedar16, Options{
		Steps:         1,
		TraceCapacity: 1 << 20,
	})
	want := uint64(app.TotalIterations())
	if got := run.Monitor.Count(hpm.EvIterStart); got != want {
		t.Fatalf("iter-start events = %d, want %d", got, want)
	}
	if got := run.Monitor.Count(hpm.EvIterEnd); got != want {
		t.Fatalf("iter-end events = %d, want %d", got, want)
	}
	// One loop post per parallel loop, one join per helper per loop.
	loops := run.RT.Statistics().SdoallLoops + run.RT.Statistics().XdoallLoops
	if got := run.Monitor.Count(hpm.EvLoopPost); got != loops {
		t.Fatalf("loop posts = %d, want %d", got, loops)
	}
	if got := run.Monitor.Count(hpm.EvHelperJoin); got != loops*1 {
		t.Fatalf("helper joins = %d, want %d (1 helper cluster)", got, loops)
	}
}

// TestSampledVsExactConcurrency compares the statfx sampler (periodic
// observation of what each CE is doing) with the account integral.
// The sampler cannot see blocked-but-charged spinning (helper waits
// are charged after the fact), so sampled <= exact, but active
// compute-heavy runs must agree reasonably.
func TestSampledVsExactConcurrency(t *testing.T) {
	r := Simulate(perfect.MDG(), arch.Cedar32, Options{Steps: 2, SamplerInterval: 2000})
	exact := r.MachineConcurrency()
	sampled := r.SampledConcurrency
	if sampled <= 0 {
		t.Fatal("sampler recorded nothing")
	}
	if sampled > exact*1.05 {
		t.Fatalf("sampled %.2f exceeds exact %.2f", sampled, exact)
	}
	if sampled < exact*0.5 {
		t.Fatalf("sampled %.2f under half of exact %.2f", sampled, exact)
	}
}

// TestEquationConsistency verifies the Table-3 equation holds exactly
// on real runs: plugging the computed par_concurr back through
// (1-pf) + pf*pc reproduces the measured average concurrency
// (when the value was not clamped).
func TestEquationConsistency(t *testing.T) {
	r := Simulate(perfect.ARC2D(), arch.Cedar32, Options{Steps: 2})
	pcs := r.ParallelLoopConcurrency()
	for c, pc := range pcs {
		if pc <= 1 || pc >= float64(r.Cfg.CEsPerCluster) {
			continue // clamped: equation intentionally not invertible
		}
		pf := r.ParallelFraction(c)
		back := (1 - pf) + pf*pc
		if math.Abs(back-r.Concurrency[c]) > 1e-6 {
			t.Errorf("cluster %d: equation does not invert: %.6f vs %.6f",
				c, back, r.Concurrency[c])
		}
	}
}

// TestGlobalMemoryTrafficAccounting cross-checks the memory's word
// counter against the workload arithmetic (every Global reference in
// loop bodies, serial sections, runtime control words, and fault-free
// demand loads funnels through gmem.Access).
func TestGlobalMemoryTrafficAccounting(t *testing.T) {
	// A single pure loop with known traffic.
	app := perfect.SyntheticSpec{
		Name: "traffic", Steps: 1, LoopsPerStep: 1,
		Outer: 2, Inner: 16, Work: 500, GMWords: 64,
	}.App()
	run := SimulateRun(app, arch.Cedar8, Options{})
	// Body traffic: 32 iterations x 64 words.
	body := uint64(32 * 64)
	total := run.Result.GM.Words
	if total < body {
		t.Fatalf("GM words %d below body traffic %d", total, body)
	}
	// Control-word traffic (posts, picks, barrier reads) is small
	// relative to the body.
	if total > body*2 {
		t.Fatalf("GM words %d more than double the body traffic %d", total, body)
	}
}

// TestFaultCountsScaleWithClusters verifies the per-cluster-task page
// mapping semantics end to end: the same app on 4 clusters services
// roughly 4x the faults of the 1-cluster run.
func TestFaultCountsScaleWithClusters(t *testing.T) {
	count := func(cfg arch.Config) uint64 {
		run := SimulateRun(perfect.OCEAN(), cfg, Options{Steps: 2})
		return run.OS.SeqFaults() + run.OS.ConcFaults()
	}
	f1 := count(arch.Cedar8)  // one cluster
	f4 := count(arch.Cedar32) // four clusters
	if f4 < f1*2 || f4 > f1*8 {
		t.Fatalf("faults did not scale with clusters: 1-cluster %d, 4-cluster %d", f1, f4)
	}
}

// TestOSBreakdownMatchesAccounts: the Table-2 totals and the per-CE
// account categories describe the same time (OS breakdown covers
// system + interrupt charges; kernel lock spin is accounted only on
// the CEs).
func TestOSBreakdownMatchesAccounts(t *testing.T) {
	run := SimulateRun(perfect.FLO52(), arch.Cedar16, Options{Steps: 2})
	res := run.Result
	var acct sim.Duration
	for _, a := range res.Accounts {
		acct += a.Get(metrics.CatOSSystem) + a.Get(metrics.CatOSInterrupt)
	}
	brk := res.OS.Total()
	// The breakdown includes the cond-wait portion of concurrent
	// faults, which the accounts charge as system time too, so the two
	// agree within the joiner waits; assert a tight band.
	lo, hi := float64(brk)*0.8, float64(brk)*1.25
	if f := float64(acct); f < lo || f > hi {
		t.Fatalf("account OS time %d vs breakdown total %d (band %.0f..%.0f)",
			acct, brk, lo, hi)
	}
}

// TestScaledStepsPreserveOverheadShares: overhead fractions are
// approximately step-count invariant (the property the calibration
// scaling relies on).
func TestScaledStepsPreserveOverheadShares(t *testing.T) {
	a := Simulate(perfect.MDG(), arch.Cedar32, Options{Steps: 4})
	b := Simulate(perfect.MDG(), arch.Cedar32, Options{Steps: 8})
	ovA := a.Task(0).OverheadFraction()
	ovB := b.Task(0).OverheadFraction()
	if math.Abs(ovA-ovB) > 0.05 {
		t.Fatalf("overhead share not step-invariant: %.3f (4 steps) vs %.3f (8 steps)", ovA, ovB)
	}
	osA, osB := a.OSShare(), b.OSShare()
	if math.Abs(osA-osB) > 0.05 {
		t.Fatalf("OS share not step-invariant: %.3f vs %.3f", osA, osB)
	}
}

// TestNoIdleMainLead: the main task's lead CE is never idle — it is
// always executing, stalling, spinning, or in the OS. (Its account
// must cover the whole completion time.)
func TestNoIdleMainLead(t *testing.T) {
	r := Simulate(perfect.ADM(), arch.Cedar16, Options{Steps: 1})
	lead := r.Accounts[0]
	covered := lead.Total()
	if float64(covered) < 0.99*float64(r.CT) {
		t.Fatalf("main lead accounts for %d of CT %d", covered, r.CT)
	}
	if lead.Get(metrics.CatIdle) != 0 {
		t.Fatalf("main lead charged idle time: %d", lead.Get(metrics.CatIdle))
	}
}
