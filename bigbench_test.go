package cedar

// BenchmarkBigConfig measures intra-run speed: events per second of
// wall-clock time while simulating ONE big machine, as opposed to
// BenchmarkPaperSweep's many-small-simulations throughput. A single
// large run is the wall-clock floor for every interactive use (no
// sweep parallelism can hide it), so this benchmark is the trend line
// for the calendar-tiered event queue and the struct-of-arrays machine
// state. The committed BENCH_bigconfig.json baseline is gated by
// cedarbenchdiff alongside the kernel micro-benchmarks.

import (
	"bufio"
	"encoding/json"
	"os"
	"regexp"
	"strconv"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/perfect"
)

// BenchmarkBigConfig runs FLO52, weak-scaled to the machine, on the
// Scaled256 configuration — the dense-event regime the paper's
// Section-7 decomposition needs at scale: 256 CE processes, 256 memory
// modules, and a two-stage network of 16x16 switches whose port
// reservations produce the per-cycle event band the tiered queue is
// built for. The reported events/sec metric is kernel dispatch
// throughput over the whole run (setup included), which is what an
// interactive caller experiences.
func BenchmarkBigConfig(b *testing.B) {
	app := perfect.FLO52().Scaled(perfect.ScaleFactorFor(arch.Scaled256.CEs()))
	var events uint64
	for i := 0; i < b.N; i++ {
		run := SimulateRun(app, arch.Scaled256, Options{})
		if run.Result.CT == 0 {
			b.Fatal("no completion time")
		}
		events += run.Machine.Kernel.EventsFired()
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
}

// seedEventsPerSec extracts BenchmarkBigConfig's events/sec metric from
// the committed pre-refactor capture (BENCH_bigconfig_seed.json, a
// go test -json log recorded before the tiered queue and the
// struct-of-arrays machine state landed).
func seedEventsPerSec(t *testing.T, path string) float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	metric := regexp.MustCompile(`([0-9.]+(?:e\+?[0-9]+)?) events/sec`)
	var last float64
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Test   string `json:"Test"`
			Output string `json:"Output"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) != nil ||
			ev.Action != "output" || ev.Test != "BenchmarkBigConfig" {
			continue
		}
		if m := metric.FindStringSubmatch(ev.Output); m != nil {
			if v, err := strconv.ParseFloat(m[1], 64); err == nil && v > 0 {
				last = v
			}
		}
	}
	if last == 0 {
		t.Fatalf("%s: no BenchmarkBigConfig events/sec metric found", path)
	}
	return last
}

// TestBigConfigSpeedup is the intra-run speedup gate: when
// CEDAR_SPEEDUP_GATE=1 (the CI benchmark job, and this PR's own
// acceptance run), one Scaled256 simulation through the tiered queue
// and struct-of-arrays machine state must dispatch events at least
// 1.3x as fast as the committed pre-refactor baseline. The test is
// env-gated because the baseline was recorded on one machine class;
// absolute events/sec on an arbitrary developer laptop proves nothing.
func TestBigConfigSpeedup(t *testing.T) {
	if os.Getenv("CEDAR_SPEEDUP_GATE") != "1" {
		t.Skip("speedup gate disabled; set CEDAR_SPEEDUP_GATE=1 to run")
	}
	const minSpeedup = 1.3
	baseline := seedEventsPerSec(t, "BENCH_bigconfig_seed.json")
	app := perfect.FLO52().Scaled(perfect.ScaleFactorFor(arch.Scaled256.CEs()))
	measure := func() float64 {
		start := time.Now()
		run := SimulateRun(app, arch.Scaled256, Options{})
		if run.Result.CT == 0 {
			t.Fatal("no completion time")
		}
		return float64(run.Machine.Kernel.EventsFired()) / time.Since(start).Seconds()
	}
	measure() // warm-up: page in code and stabilize the heap
	best := 0.0
	for i := 0; i < 3; i++ {
		if v := measure(); v > best {
			best = v
		}
	}
	speedup := best / baseline
	t.Logf("Scaled256 single run: %.0f events/sec vs pre-refactor %.0f (%.2fx)", best, baseline, speedup)
	if speedup < minSpeedup {
		t.Fatalf("intra-run speedup %.2fx < %.2fx (measured %.0f events/sec, baseline %.0f)",
			speedup, minSpeedup, best, baseline)
	}
}
