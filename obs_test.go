package cedar

import (
	"bytes"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/perfect"
	"repro/internal/statfx"
)

// observedRun is the FLO52/Cedar16 run the acceptance checks share.
func observedRun(t *testing.T) *Run {
	t.Helper()
	return SimulateRun(perfect.FLO52(), arch.Cedar16, Options{
		Steps:         1,
		TraceCapacity: 1 << 20,
		Observe:       &obs.Options{},
	})
}

// TestObservationDoesNotPerturbSimulation: probes are pure reads and
// span recording happens outside virtual time, so an observed run must
// complete in exactly the same number of cycles as an unobserved one.
func TestObservationDoesNotPerturbSimulation(t *testing.T) {
	plain := Simulate(perfect.FLO52(), arch.Cedar16, Options{Steps: 1})
	seen := observedRun(t)
	if plain.CT != seen.Result.CT {
		t.Fatalf("observation changed the run: CT %d (plain) vs %d (observed)",
			plain.CT, seen.Result.CT)
	}
}

// TestTraceExportIsValid checks the Chrome/Perfetto contract on a real
// run: parseable JSON, nondecreasing timestamps, nonnegative complete-
// event durations, and balanced async begin/end pairs.
func TestTraceExportIsValid(t *testing.T) {
	run := observedRun(t)
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, run.TraceBundle()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Ts  float64 `json:"ts"`
			Dur float64 `json:"dur"`
			ID  string  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 100 {
		t.Fatalf("suspiciously small trace: %d events", len(doc.TraceEvents))
	}
	lastTs := math.Inf(-1)
	async := map[string]int{}
	for i, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < lastTs {
			t.Fatalf("event %d: ts %v < previous %v", i, e.Ts, lastTs)
		}
		lastTs = e.Ts
		switch e.Ph {
		case "X":
			if e.Dur < 0 {
				t.Fatalf("event %d: negative duration %v", i, e.Dur)
			}
		case "b":
			async[e.ID]++
		case "e":
			async[e.ID]--
		case "i": // instants carry no duration
		default:
			t.Fatalf("event %d: unexpected phase %q", i, e.Ph)
		}
	}
	for id, n := range async {
		if n != 0 {
			t.Fatalf("async id %s: %d unmatched begin/end events", id, n)
		}
	}
}

// TestFoldedProfileBudget: the folded profile is a complete accounting
// of the run — every CE's stack weights sum to exactly the completion
// time, so the machine-wide total is CT x CEs.
func TestFoldedProfileBudget(t *testing.T) {
	run := observedRun(t)
	var buf bytes.Buffer
	if err := obs.WriteFolded(&buf, run.Result.App, run.Result.CT, run.Machine.Accounts()); err != nil {
		t.Fatal(err)
	}
	perCE := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		stack, wStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed folded line %q", line)
		}
		w, err := strconv.ParseInt(wStr, 10, 64)
		if err != nil || w < 0 {
			t.Fatalf("bad weight in %q", line)
		}
		frames := strings.Split(stack, ";")
		if len(frames) != 4 || frames[0] != "FLO52" {
			t.Fatalf("want app;ce;group;category in %q", line)
		}
		perCE[frames[1]] += w
	}
	ces := run.Machine.Cfg.CEs()
	if len(perCE) != ces {
		t.Fatalf("profile covers %d CEs, want %d", len(perCE), ces)
	}
	for ce, total := range perCE {
		if total != int64(run.Result.CT) {
			t.Fatalf("%s weights sum to %d, want CT %d", ce, total, int64(run.Result.CT))
		}
	}
}

// TestSeriesMatchesStatfx: the collector's sampled concurrency series
// must agree with the statfx monitors — near-exactly with the Sampler
// (same signal, same cadence) and within sampling error of Exact. Both
// samplers run at a fine 500-cycle cadence: at the default 10k-cycle
// grid a 1-step run yields under 40 samples, too few for the sampled
// mean to track the integrated value (the convergence property
// TestSamplerConvergesToExact characterizes).
func TestSeriesMatchesStatfx(t *testing.T) {
	run := SimulateRun(perfect.FLO52(), arch.Cedar16, Options{
		Steps:           1,
		SamplerInterval: 500,
		Observe:         &obs.Options{SeriesInterval: 500},
	})
	mean, err := run.Series.Mean("concurrency")
	if err != nil {
		t.Fatal(err)
	}
	// Same predicate, same cadence as the statfx Sampler: the two must
	// agree to within a couple of percent (their grids are phase-
	// shifted by one interval, no more).
	if sampled := run.Result.SampledConcurrency; math.Abs(mean-sampled) > 0.02*sampled {
		t.Fatalf("series mean %v vs statfx sampled %v", mean, sampled)
	}
	// Against the account-integrated value the sampled mean sits below:
	// time charged retroactively after a blocking wait (lock handoff,
	// condition wakeup) is active in the accounts but was never a
	// visible busy state at any sample instant. The envelope bounds
	// that structural gap without asserting it away.
	exact := statfx.ExactMachine(run.Machine, run.Result.CT)
	if mean > exact*1.02 || mean < exact*0.6 {
		t.Fatalf("series mean %v vs exact %v: outside the sampling envelope", mean, exact)
	}

	var buf bytes.Buffer
	if err := obs.WriteCSV(&buf, run.Series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != run.Series.Len()+1 {
		t.Fatalf("CSV has %d lines, want header + %d samples", len(lines), run.Series.Len())
	}
	cols := strings.Split(lines[0], ",")
	idx := -1
	for i, c := range cols {
		if c == "concurrency" {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("no concurrency column in %q", lines[0])
	}
	sum, n := 0.0, 0
	for _, line := range lines[1:] {
		v, err := strconv.ParseFloat(strings.Split(line, ",")[idx], 64)
		if err != nil {
			t.Fatalf("bad CSV value in %q: %v", line, err)
		}
		sum += v
		n++
	}
	if csvMean := sum / float64(n); math.Abs(csvMean-mean) > 1e-9 {
		t.Fatalf("CSV mean %v != collector mean %v", csvMean, mean)
	}
}

// TestObserveDisabledHasNoRecorder: the zero-cost path — no Observe
// option, no recorder, and the nil recorder tolerates every call the
// wired subsystems might make.
func TestObserveDisabledHasNoRecorder(t *testing.T) {
	run := SimulateRun(perfect.FLO52(), arch.Cedar4, Options{Steps: 1})
	if run.Obs != nil || run.Series != nil {
		t.Fatal("recorder present without Options.Observe")
	}
	if run.Obs.Enabled() {
		t.Fatal("nil recorder claims to be enabled")
	}
	b := run.TraceBundle() // must still work from the hpm-free, obs-free run
	if len(b.Spans) != 0 {
		t.Fatalf("spans from a run with no monitor and no recorder: %d", len(b.Spans))
	}
}

// TestObservedFaultRunRecordsFaultSpans: fault activations surface in
// the trace bundle (the lock stall as a machine-track span, the
// fail-stop as instants).
func TestObservedFaultRunRecordsFaultSpans(t *testing.T) {
	run, err := SimulateRunErr(perfect.FLO52(), arch.Cedar16, Options{
		Steps:   1,
		Observe: &obs.Options{},
		Faults:  mustPlan(t, "lock:0@50000+20000,ce:5@100000"),
	})
	if err != nil {
		t.Fatal(err)
	}
	bundle := run.TraceBundle()
	var lockSpan, failInstant bool
	for _, s := range bundle.Spans {
		if s.Cat == obs.CatFault && s.Name == "lock-stall" && s.Track == obs.TrackMachine {
			lockSpan = true
		}
	}
	for _, in := range bundle.Instants {
		if in.Cat == obs.CatFault && in.Name == "ce-fail" {
			failInstant = true
		}
	}
	if !lockSpan {
		t.Error("no lock-stall span on the machine track")
	}
	if !failInstant {
		t.Error("no ce-fail instant")
	}
}
