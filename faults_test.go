package cedar

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/perfect"
	"repro/internal/sim"
)

func TestFaultCEFailCompletes(t *testing.T) {
	plan, err := faults.Parse("ce:3@1e5")
	if err != nil {
		t.Fatal(err)
	}
	run, err := SimulateRunErr(perfect.FLO52(), arch.Cedar8, Options{Steps: 1, Faults: plan})
	if err != nil {
		t.Fatalf("degraded run failed: %v", err)
	}
	if run.Result.FailedCEs != 1 {
		t.Fatalf("FailedCEs = %d, want 1", run.Result.FailedCEs)
	}
	if run.Injector == nil || len(run.Injector.Applied()) != 1 {
		t.Fatal("injector did not record the activation")
	}
	healthy, err := SimulateErr(perfect.FLO52(), arch.Cedar8, Options{Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A 7-CE machine past the fail point must not finish faster than
	// the healthy lower bound by more than contention relief plausibly
	// allows; mostly this guards against the run silently truncating.
	if run.Result.CT < healthy.CT/2 {
		t.Fatalf("degraded CT %d implausibly small vs healthy %d", run.Result.CT, healthy.CT)
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	plans := []faults.Plan{
		mustPlan(t, "ce:5@1e5"),
		mustPlan(t, "ce:2x2@5e4,module:7x3@1e5"),
		mustPlan(t, "storm:0@1e5,lock:-1@5e4+1e4"),
	}
	opts := Options{Steps: 1}
	a, err := FaultSweep(perfect.FLO52(), arch.Cedar8, plans, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(perfect.FLO52(), arch.Cedar8, plans, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if (a[i].Err == nil) != (b[i].Err == nil) {
			t.Fatalf("plan %d: error status differs between runs", i)
		}
		if a[i].Err != nil {
			continue
		}
		if a[i].Run.Result.CT != b[i].Run.Result.CT {
			t.Fatalf("plan %d: degraded CT differs: %d vs %d",
				i, a[i].Run.Result.CT, b[i].Run.Result.CT)
		}
		if core.FormatDegraded(a[i].Report) != core.FormatDegraded(b[i].Report) {
			t.Fatalf("plan %d: reports differ between identical sweeps", i)
		}
	}
}

// TestFaultDeadlockNamesBlockedProcs: killing every CE of the main
// cluster mid-run orphans the helper clusters, which wait forever for
// work. The run must come back with ErrDeadlock naming the blocked
// processes — not hang, panic, or return a silently truncated result.
func TestFaultDeadlockNamesBlockedProcs(t *testing.T) {
	var plan faults.Plan
	for ce := 0; ce < arch.Cedar16.CEsPerCluster; ce++ {
		plan = append(plan, faults.Event{Kind: faults.CEFail, Target: ce, At: 50_000})
	}
	run, err := SimulateRunErr(perfect.FLO52(), arch.Cedar16, Options{Steps: 1, Faults: plan})
	if err == nil {
		t.Fatal("killing the whole main cluster did not error")
	}
	if !errors.Is(err, sim.ErrDeadlock) {
		t.Fatalf("error %v is not sim.ErrDeadlock", err)
	}
	var de *sim.DeadlockError
	if !errors.As(err, &de) || len(de.Blocked) == 0 {
		t.Fatalf("deadlock error carries no blocked processes: %v", err)
	}
	if !strings.Contains(err.Error(), "waits on") {
		t.Fatalf("diagnostic does not name what processes wait on: %v", err)
	}
	if run == nil || run.Result == nil {
		t.Fatal("no partial result returned alongside the deadlock")
	}
	if run.Result.FailedCEs != arch.Cedar16.CEsPerCluster {
		t.Fatalf("FailedCEs = %d, want %d", run.Result.FailedCEs, arch.Cedar16.CEsPerCluster)
	}
}

func TestFaultMaxCyclesBudget(t *testing.T) {
	run, err := SimulateRunErr(perfect.FLO52(), arch.Cedar8,
		Options{Steps: 1, MaxCycles: 10_000})
	if err == nil {
		t.Fatal("10k-cycle budget did not stop the run")
	}
	if !errors.Is(err, sim.ErrCycleBudget) {
		t.Fatalf("error %v is not sim.ErrCycleBudget", err)
	}
	if run == nil || run.Result == nil {
		t.Fatal("no partial result returned alongside the budget stop")
	}
}

func TestFaultInvalidPlanRejectedBeforeRun(t *testing.T) {
	plan := faults.Plan{{Kind: faults.CEFail, Target: 99, At: 1}}
	if _, err := SimulateErr(perfect.FLO52(), arch.Cedar8, Options{Steps: 1, Faults: plan}); err == nil {
		t.Fatal("out-of-range CE target accepted")
	}
}

// faultQuickSeed picks the randomized-sweep seed: CEDAR_FAULT_SEED
// pins it (the value a previous failure logged), otherwise the wall
// clock varies it so every CI run sweeps fresh schedules. The seed is
// always logged, so any failure is one env var away from a replay.
func faultQuickSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("CEDAR_FAULT_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CEDAR_FAULT_SEED=%q: %v", env, err)
		}
		t.Logf("fault sweep seed pinned by CEDAR_FAULT_SEED: %d", seed)
		return seed
	}
	seed := time.Now().UnixNano()
	t.Logf("fault sweep seed %d (pin with CEDAR_FAULT_SEED=%d)", seed, seed)
	return seed
}

// TestQuickFaultConservation is the fault-plan conservation property:
// under any valid fault plan, every surviving CE's accounting
// categories still sum exactly to the completion time, a failed CE's
// sum never exceeds it, and the degraded report's (clamped) contention
// share is non-negative and finite. Each failing plan is reported as a
// ready-to-paste replay scenario line for cedarsim -replay.
func TestQuickFaultConservation(t *testing.T) {
	app := perfect.FLO52()
	cfg := arch.Cedar8
	opts := Options{Steps: 1}
	seed := faultQuickSeed(t)
	base1p, err := SimulateErr(app, arch.Cedar1, opts)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := SimulateErr(app, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}

	f := func(r uint64) bool {
		plan := randomPlan(r, cfg)
		if err := plan.Validate(cfg); err != nil {
			t.Errorf("generated plan %s invalid: %v", plan, err)
			return false
		}
		po := opts
		po.Faults = plan
		run, err := SimulateRunErr(app, cfg, po)
		if err != nil {
			// A deadlock here is a hand-off bug. Print the scenario in
			// its canonical form so the schedule goes straight into
			// cedarsim -replay / testdata/faultcorpus — no reconstruction
			// from the quick-check log needed.
			t.Errorf("plan %s: run failed: %v\nreplay with: %s",
				plan, err, RecordScenario(app, cfg, po))
			return false
		}
		res := run.Result
		for _, a := range res.Accounts {
			if failed := run.Machine.CE(a.CE()).Failed(); failed {
				if a.Total() > res.CT {
					t.Errorf("plan %s: failed CE %d accounted %d > CT %d",
						plan, a.CE(), a.Total(), res.CT)
					return false
				}
			} else if a.Total() != res.CT {
				t.Errorf("plan %s: surviving CE %d accounted %d != CT %d",
					plan, a.CE(), a.Total(), res.CT)
				return false
			}
		}
		rep, err := core.CompareDegraded(base1p, baseline, res, plan.String())
		if err != nil {
			t.Errorf("plan %s: compare failed: %v", plan, err)
			return false
		}
		for _, row := range rep.Rows {
			if math.IsNaN(row.Degraded) || math.IsInf(row.Degraded, 0) {
				t.Errorf("plan %s: row %q not finite: %v", plan, row.Name, row.Degraded)
				return false
			}
			if row.Name == "contention share" && row.Degraded < 0 {
				t.Errorf("plan %s: contention share %v < 0", plan, row.Degraded)
				return false
			}
		}
		return true
	}
	cfgq := &quick.Config{MaxCount: 16, Rand: rand.New(rand.NewSource(seed))}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatalf("%v (re-run with CEDAR_FAULT_SEED=%d)", err, seed)
	}
}

// randomPlan derives a valid fault plan from 64 random bits. CE 0 (the
// main task's lead) is never fail-stopped so the plan cannot deadlock
// the machine by design; every other fault kind is fair game.
func randomPlan(r uint64, cfg arch.Config) faults.Plan {
	ces := cfg.CEs()
	bits := func(n uint) uint64 {
		v := r & (1<<n - 1)
		r >>= n
		return v
	}
	var plan faults.Plan
	// Slow one CE by 1.25x..4x.
	plan = append(plan, faults.Event{
		Kind:   faults.CESlow,
		Target: int(bits(3)) % ces,
		At:     sim.Time(10_000 + bits(16)),
		Factor: 1.25 + float64(bits(2)),
	})
	// Maybe fail-stop a non-lead CE.
	if bits(1) == 1 && ces > 1 {
		plan = append(plan, faults.Event{
			Kind:   faults.CEFail,
			Target: 1 + int(bits(3))%(ces-1),
			At:     sim.Time(20_000 + bits(16)),
		})
	}
	// Degrade one memory module: offline or latency-inflated.
	mod := int(bits(5)) % cfg.GMModules
	if bits(1) == 1 {
		plan = append(plan, faults.Event{
			Kind: faults.ModuleOffline, Target: mod, At: sim.Time(5_000 + bits(15)),
		})
	} else {
		plan = append(plan, faults.Event{
			Kind: faults.ModuleSlow, Target: mod, At: sim.Time(5_000 + bits(15)),
			Factor: 2 + float64(bits(2)),
		})
	}
	// Maybe a kernel-lock stall or a page-fault storm.
	switch bits(2) {
	case 1:
		plan = append(plan, faults.Event{
			Kind: faults.LockStall, Target: -1,
			At: sim.Time(30_000 + bits(15)), Span: sim.Duration(1_000 + bits(13)),
		})
	case 2:
		plan = append(plan, faults.Event{
			Kind: faults.PageStorm, Target: int(bits(2)) % cfg.Clusters,
			At: sim.Time(30_000 + bits(15)),
		})
	}
	return plan
}

func mustPlan(t *testing.T, spec string) faults.Plan {
	t.Helper()
	plan, err := faults.Parse(spec)
	if err != nil {
		t.Fatalf("bad plan %q: %v", spec, err)
	}
	return plan
}
