package cedar

import (
	"repro/internal/hpm"
	"repro/internal/metricreg"
	"repro/internal/metrics"
)

// Metrics returns the run's metric registry — the central directory
// (internal/metricreg) every exporter renders from. When the run was
// observed (Options.Observe), the registry already holds the live
// series probes; the first call adds the post-run result metrics:
// completion time, fault classification counters, exact and sampled
// concurrency, the Table-2 OS breakdown as a univariate distribution,
// every CE's per-category account as a bivariate distribution, the hpm
// event counts, and the drop/overflow counters of each bounded buffer.
//
// The registry is built lazily so an unobserved Simulate pays nothing
// for it; StatfxText renders from the same registry, which is what
// makes the accounting block and the metric exporters structurally
// consistent.
func (r *Run) Metrics() *metricreg.Registry {
	r.regOnce.Do(func() {
		if r.reg == nil {
			r.reg = metricreg.New()
		}
		r.populateMetrics()
	})
	return r.reg
}

// osAxis keys the OS-breakdown distributions by metrics.OSCategory.
var osAxis = metricreg.Axis{Name: "os_category", Label: func(k int64) string {
	return metrics.OSCategory(k).String()
}}

// categoryAxis keys per-CE accounts by metrics.Category.
var categoryAxis = metricreg.Axis{Name: "category", Label: func(k int64) string {
	return metrics.Category(k).String()
}}

// eventAxis keys hpm event counts by hpm.EventID.
var eventAxis = metricreg.Axis{Name: "event", Label: func(k int64) string {
	return hpm.EventID(k).String()
}}

// populateMetrics registers the result-derived metrics. Every cell of
// the distributions is observed — zeros included — so the snapshot is
// dense: StatfxText and the exporters render complete tables without
// special-casing absent keys.
func (r *Run) populateMetrics() {
	reg, res := r.reg, r.Result

	reg.Gauge("ct_cycles", "completion time of the run", "cycles").Set(float64(res.CT))
	reg.Gauge("result_failed_ces", "processors fail-stopped by fault injection", "ces").
		Set(float64(res.FailedCEs))
	reg.Counter("faults_sequential_total", "page faults serviced sequentially", "faults").
		Add(uint64(r.OS.SeqFaults()))
	reg.Counter("faults_concurrent_total", "page faults serviced concurrently", "faults").
		Add(uint64(r.OS.ConcFaults()))
	reg.Gauge("concurrency_sampled", "machine concurrency sampled by the statfx monitor", "ces").
		Set(res.SampledConcurrency)

	cc := reg.Univariate("concurrency_cluster",
		"exact per-cluster average concurrency, integrated from accounts", "ces",
		metricreg.Axis{Name: "cluster"})
	for c, v := range res.Concurrency {
		cc.Observe(int64(c), v)
	}

	ot := reg.Univariate("os_time_cycles", "time per OS activity category (Table 2)", "cycles", osAxis)
	oc := reg.Univariate("os_events_total", "occurrences per OS activity category (Table 2)", "events", osAxis)
	for c := metrics.OSCategory(0); c < metrics.NumOSCategories; c++ {
		ot.Observe(int64(c), float64(res.OS.Time[c]))
		oc.Observe(int64(c), float64(res.OS.Count[c]))
	}

	bc := reg.Bivariate("ce_category_cycles", "cycles per CE and accounting category", "cycles",
		metricreg.Axis{Name: "ce"}, categoryAxis)
	for _, a := range res.Accounts {
		for c := metrics.Category(0); c < metrics.NumCategories; c++ {
			bc.Observe(int64(a.CE()), int64(c), float64(a.Get(c)))
		}
	}

	if r.Monitor != nil {
		ev := reg.Univariate("hpm_events_total", "events posted to the hardware performance monitor", "events", eventAxis)
		for e := hpm.EventID(0); e < hpm.NumEvents; e++ {
			ev.Observe(int64(e), float64(r.Monitor.Count(e)))
		}
		reg.Counter("hpm_trace_dropped_total",
			"hpm events dropped because the trace buffer was full", "events").
			Add(r.Monitor.Dropped())
	}
	if r.Obs != nil {
		reg.Counter("obs_spans_dropped_total",
			"recorder spans and instants dropped at the capacity cap", "events").
			Add(r.Obs.Dropped())
	}
	if r.Series != nil {
		reg.Counter("obs_series_samples_total", "time-series samples taken", "samples").
			Add(r.Series.Taken())
		reg.Counter("obs_series_evicted_total",
			"time-series samples evicted from the ring buffer", "samples").
			Add(r.Series.Taken() - uint64(r.Series.Len()))
	}
}

// DroppedEvents sums every drop/overflow counter the run's bounded
// buffers kept: hpm trace drops, recorder span drops, and series ring
// evictions. Non-zero means some instrumentation was lost and folds
// over the trace (Figure 4) may be skewed; the CLIs warn on stderr
// when they see it.
func (r *Run) DroppedEvents() uint64 {
	var n uint64
	if r.Monitor != nil {
		n += r.Monitor.Dropped()
	}
	if r.Obs != nil {
		n += r.Obs.Dropped()
	}
	if r.Series != nil {
		n += r.Series.Taken() - uint64(r.Series.Len())
	}
	return n
}
