package cedar

// Tests for the parallel sweep engine's core promise: wall-clock
// parallelism never touches virtual-time results. Every batch helper
// must produce byte-identical output at any Options.Parallel setting,
// because each simulation owns its kernel and deterministic seed and
// results are assembled in input order (see internal/engine).

import (
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/faults/replay"
	"repro/internal/perfect"
)

// renderSweeps flattens every table the paper regenerates into one
// comparable byte string.
func renderSweeps(sweeps []*core.Sweep) string {
	var at32 []*core.Result
	for _, s := range sweeps {
		if r, ok := s.Results[32]; ok {
			at32 = append(at32, r)
		}
	}
	return core.Table1CSV(sweeps) + core.Figure3CSV(sweeps) + core.UserTimeCSV(sweeps) +
		core.Table2CSV(at32) + core.Table3CSV(sweeps) + core.Table4CSV(sweeps)
}

func TestSweepParallelByteIdentical(t *testing.T) {
	app := perfect.FLO52()
	seq := Sweep(app, Options{Steps: 1, Parallel: 1})
	for _, workers := range []int{2, 4, 16} {
		par := Sweep(app, Options{Steps: 1, Parallel: workers})
		a := renderSweeps([]*core.Sweep{seq})
		b := renderSweeps([]*core.Sweep{par})
		if a != b {
			t.Fatalf("Sweep output differs between -parallel 1 and -parallel %d:\n%s\nvs\n%s",
				workers, a, b)
		}
	}
}

func TestSweepsParallelByteIdentical(t *testing.T) {
	apps := []perfect.App{perfect.FLO52(), perfect.OCEAN()}
	seq := renderSweeps(Sweeps(apps, Options{Steps: 1, Parallel: 1}))
	par := renderSweeps(Sweeps(apps, Options{Steps: 1, Parallel: 4}))
	if seq != par {
		t.Fatalf("Sweeps output differs between sequential and parallel paths:\n%s\nvs\n%s", seq, par)
	}
}

func TestSweepConfigsParallelByteIdentical(t *testing.T) {
	cfgs := []arch.Config{arch.Cedar1, arch.Cedar8, arch.Cedar32}
	seq := SweepConfigs(perfect.OCEAN(), cfgs, Options{Steps: 1, Parallel: 1})
	par := SweepConfigs(perfect.OCEAN(), cfgs, Options{Steps: 1, Parallel: 3})
	a := renderSweeps([]*core.Sweep{seq})
	b := renderSweeps([]*core.Sweep{par})
	if a != b {
		t.Fatalf("SweepConfigs output differs between sequential and parallel paths")
	}
}

func TestFaultSweepParallelByteIdentical(t *testing.T) {
	plans := []faults.Plan{
		mustPlan(t, "ce:5@1e5"),
		mustPlan(t, "ce:2x2@5e4,module:7x3@1e5"),
		mustPlan(t, "storm:0@1e5,lock:-1@5e4+1e4"),
	}
	seq, err := FaultSweep(perfect.FLO52(), arch.Cedar8, plans, Options{Steps: 1, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := FaultSweep(perfect.FLO52(), arch.Cedar8, plans, Options{Steps: 1, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if (seq[i].Err == nil) != (par[i].Err == nil) {
			t.Fatalf("plan %d: error status differs between sequential and parallel", i)
		}
		if seq[i].Err != nil {
			continue
		}
		if a, b := seq[i].Run.StatfxText(), par[i].Run.StatfxText(); a != b {
			t.Fatalf("plan %d: accounting differs between sequential and parallel:\n%s\nvs\n%s", i, a, b)
		}
		if seq[i].Report != nil && par[i].Report != nil {
			if a, b := core.FormatDegraded(seq[i].Report), core.FormatDegraded(par[i].Report); a != b {
				t.Fatalf("plan %d: degraded report differs:\n%s\nvs\n%s", i, a, b)
			}
		}
	}
}

func TestCheckCorpusParallelMatchesSequential(t *testing.T) {
	entries, err := replay.LoadCorpus("testdata/faultcorpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Skip("empty corpus")
	}
	seq := CheckCorpus(entries, 1)
	par := CheckCorpus(entries, 4)
	if len(seq) != len(entries) || len(par) != len(entries) {
		t.Fatalf("result counts: seq %d, par %d, want %d", len(seq), len(par), len(entries))
	}
	for i := range entries {
		if seq[i].Entry.Scenario.String() != entries[i].Scenario.String() {
			t.Fatalf("entry %d: results not in corpus order", i)
		}
		if seq[i].Err != nil {
			t.Fatalf("entry %d (%s:%d): %v", i, seq[i].Entry.File, seq[i].Entry.Line, seq[i].Err)
		}
		if par[i].Err != nil {
			t.Fatalf("entry %d (%s:%d) parallel: %v", i, par[i].Entry.File, par[i].Entry.Line, par[i].Err)
		}
	}
}

// TestParallelSweepSpeedup is the benchmark job's wall-clock gate: the
// full five-application paper sweep at -parallel 4 must run at least
// twice as fast as at -parallel 1. Timing whole sweeps on shared CI
// runners is inherently noisy, so the gate only runs where it is
// meaningful: when CEDAR_SPEEDUP_GATE=1 is set (the CI benchmark job)
// and at least 4 CPUs are available.
func TestParallelSweepSpeedup(t *testing.T) {
	if os.Getenv("CEDAR_SPEEDUP_GATE") != "1" {
		t.Skip("speedup gate disabled; set CEDAR_SPEEDUP_GATE=1 to run")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 CPUs for the 2x gate, have %d", runtime.GOMAXPROCS(0))
	}
	timeIt := func(parallel int) time.Duration {
		start := time.Now()
		sweeps := AllSweeps(Options{Parallel: parallel})
		if len(sweeps) != len(perfect.Apps()) {
			t.Fatalf("AllSweeps returned %d sweeps", len(sweeps))
		}
		return time.Since(start)
	}
	timeIt(4) // warm-up: page in code and stabilize the heap
	seq := timeIt(1)
	par := timeIt(4)
	speedup := float64(seq) / float64(par)
	t.Logf("five-app paper sweep: -parallel 1 %v, -parallel 4 %v, speedup %.2fx", seq, par, speedup)
	if speedup < 2 {
		t.Fatalf("parallel sweep speedup %.2fx < 2x (sequential %v, parallel %v)", speedup, seq, par)
	}
}
